//! Property-based tests for dataset synthesis and the concept space.

use proptest::prelude::*;
use uhscm_data::{canonical, prototype, share_label, Dataset, DatasetConfig, DatasetKind};
use uhscm_linalg::vecops;

fn any_kind() -> impl Strategy<Value = DatasetKind> {
    prop::sample::select(vec![
        DatasetKind::Cifar10Like,
        DatasetKind::NusWideLike,
        DatasetKind::FlickrLike,
    ])
}

fn small_config() -> impl Strategy<Value = DatasetConfig> {
    (20usize..80, 5usize..20, 60usize..150).prop_map(|(n_train, n_query, n_database)| {
        // `Dataset::generate` requires the train split to fit in the
        // database partition.
        let n_train = n_train.min(n_database);
        DatasetConfig { n_train, n_query, n_database, ..DatasetConfig::default() }
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn dataset_invariants(kind in any_kind(), cfg in small_config(), seed in any::<u64>()) {
        let ds = Dataset::generate(kind, &cfg, seed);
        // Sizes.
        prop_assert_eq!(ds.len(), cfg.n_query + cfg.n_database);
        prop_assert_eq!(ds.split.query.len(), cfg.n_query);
        prop_assert_eq!(ds.split.database.len(), cfg.n_database);
        prop_assert_eq!(ds.split.train.len(), cfg.n_train);
        // Labels valid, sorted, non-empty.
        for l in &ds.labels {
            prop_assert!(!l.is_empty());
            prop_assert!(l.windows(2).all(|w| w[0] < w[1]));
            prop_assert!(l.iter().all(|&c| c < ds.class_names.len()));
        }
        // Latents unit-norm.
        for row in ds.latents.iter_rows() {
            prop_assert!((vecops::norm(row) - 1.0).abs() < 1e-9);
        }
        // Train ⊆ database, query ∩ database = ∅.
        let db: std::collections::HashSet<_> = ds.split.database.iter().collect();
        prop_assert!(ds.split.train.iter().all(|i| db.contains(i)));
        prop_assert!(ds.split.query.iter().all(|i| !db.contains(i)));
    }

    #[test]
    fn generation_deterministic(kind in any_kind(), seed in any::<u64>()) {
        let cfg = DatasetConfig { n_train: 30, n_query: 10, n_database: 80, ..DatasetConfig::default() };
        let a = Dataset::generate(kind, &cfg, seed);
        let b = Dataset::generate(kind, &cfg, seed);
        prop_assert_eq!(a.labels, b.labels);
        prop_assert_eq!(a.latents.as_slice(), b.latents.as_slice());
    }

    #[test]
    fn share_label_is_symmetric_intersection(
        a in prop::collection::btree_set(0usize..20, 0..6),
        b in prop::collection::btree_set(0usize..20, 0..6),
    ) {
        let av: Vec<usize> = a.iter().copied().collect();
        let bv: Vec<usize> = b.iter().copied().collect();
        let expected = a.intersection(&b).next().is_some();
        prop_assert_eq!(share_label(&av, &bv), expected);
        prop_assert_eq!(share_label(&bv, &av), expected);
    }

    #[test]
    fn canonical_is_idempotent(name in "[a-z ]{1,20}") {
        let once = canonical(&name);
        prop_assert_eq!(canonical(&once), once);
    }

    #[test]
    fn prototypes_unit_norm_any_dim(name in "[a-z]{1,12}", dim in 2usize..128) {
        let p = prototype(&name, dim);
        prop_assert_eq!(p.len(), dim);
        prop_assert!((vecops::norm(&p) - 1.0).abs() < 1e-9);
    }
}
