//! Synthetic dataset generator with the paper's split protocol.
//!
//! Each generated item carries a ground-truth label set over the dataset's
//! evaluation classes and a *latent semantic vector*: the weighted sum of the
//! prototypes of its labels, plus an occasional unlabeled distractor object
//! (real photos contain more than their annotations), plus isotropic context
//! noise. Downstream, `uhscm-vlp` derives both CLIP-style embeddings and
//! (noisier) CNN-style features from these latents; retrieval ground truth
//! — "two images are similar iff they share at least one label" (§4.2) —
//! uses the label sets directly.

use crate::concepts::prototype;
use crate::vocab;
use rand::Rng;
use uhscm_linalg::{rng, vecops, Matrix};

/// Which benchmark dataset to emulate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DatasetKind {
    /// CIFAR-10: single-label, 10 classes.
    Cifar10Like,
    /// NUS-WIDE: multi-label over the 21 most frequent classes.
    NusWideLike,
    /// MIRFlickr-25K: multi-label over 24 classes.
    FlickrLike,
}

impl DatasetKind {
    /// All three benchmark datasets, in the paper's order.
    pub const ALL: [DatasetKind; 3] =
        [DatasetKind::Cifar10Like, DatasetKind::NusWideLike, DatasetKind::FlickrLike];

    /// Human-readable name matching the paper's tables.
    pub fn name(self) -> &'static str {
        match self {
            DatasetKind::Cifar10Like => "CIFAR10",
            DatasetKind::NusWideLike => "NUS-WIDE",
            DatasetKind::FlickrLike => "MIRFlickr-25K",
        }
    }

    /// The evaluation class names.
    pub fn class_names(self) -> Vec<String> {
        match self {
            DatasetKind::Cifar10Like => vocab::cifar10_classes(),
            DatasetKind::NusWideLike => vocab::nus_wide_21(),
            DatasetKind::FlickrLike => vocab::mirflickr_24(),
        }
    }

    /// Whether items carry multiple labels.
    pub fn multi_label(self) -> bool {
        !matches!(self, DatasetKind::Cifar10Like)
    }

    /// Label co-occurrence groups (by class name). Multi-label sampling
    /// first picks a group, then includes each member with probability 0.55,
    /// which produces the overlapping label sets that make NUS-WIDE and
    /// MIRFlickr harder than CIFAR10 in the paper.
    pub(crate) fn cooccurrence_groups(self) -> Vec<Vec<&'static str>> {
        match self {
            DatasetKind::Cifar10Like => Vec::new(),
            DatasetKind::NusWideLike => vec![
                vec!["sky", "clouds", "sunset"],
                vec!["ocean", "beach", "water"],
                vec!["mountain", "snow", "rocks"],
                vec!["lake", "water", "reflection"],
                vec!["grass", "plants", "flowers"],
                vec!["buildings", "road", "window"],
                vec!["cars", "road"],
                vec!["person", "buildings"],
                vec!["animal", "grass"],
                vec!["toy", "person"],
                vec!["snow", "sky"],
                vec!["water", "rocks", "sky"],
            ],
            DatasetKind::FlickrLike => vec![
                vec!["sky", "clouds", "sunset"],
                vec!["sea", "water", "sky"],
                vec!["river", "water", "tree"],
                vec!["lake", "water"],
                vec!["people", "portrait", "female"],
                vec!["people", "portrait", "male"],
                vec!["baby", "people", "indoor"],
                vec!["animals", "dog"],
                vec!["animals", "bird", "tree"],
                vec!["flower", "plant life"],
                vec!["tree", "plant life", "sky"],
                vec!["car", "transport", "structures"],
                vec!["night", "structures", "sky"],
                vec!["food", "indoor"],
                vec!["indoor", "people"],
            ],
        }
    }
}

/// Size and noise parameters for dataset synthesis.
#[derive(Debug, Clone)]
pub struct DatasetConfig {
    /// Training-set size (sampled from the database, as in §4.1).
    pub n_train: usize,
    /// Query (test) set size.
    pub n_query: usize,
    /// Database (retrieval target) size; disjoint from the query set.
    pub n_database: usize,
    /// Latent semantic dimensionality.
    pub latent_dim: usize,
    /// Standard deviation of the isotropic context noise added to latents.
    pub context_noise: f64,
    /// Probability that an image contains one unlabeled distractor object.
    pub distractor_prob: f64,
    /// Relative weight of a distractor prototype when present.
    pub distractor_weight: f64,
}

impl Default for DatasetConfig {
    /// Laptop-scale defaults (see DESIGN.md §7 for the mapping to the
    /// paper's sizes).
    fn default() -> Self {
        Self {
            n_train: 2_000,
            n_query: 500,
            n_database: 6_000,
            latent_dim: 64,
            context_noise: 0.40,
            distractor_prob: 0.4,
            distractor_weight: 0.55,
        }
    }
}

impl DatasetConfig {
    /// A very small configuration for unit tests.
    pub fn tiny() -> Self {
        Self { n_train: 100, n_query: 40, n_database: 300, ..Self::default() }
    }
}

/// Index split following §4.1: query and database are disjoint; the training
/// set is sampled from the database.
#[derive(Debug, Clone)]
pub struct Split {
    pub train: Vec<usize>,
    pub query: Vec<usize>,
    pub database: Vec<usize>,
}

/// A synthesized benchmark dataset.
#[derive(Debug, Clone)]
pub struct Dataset {
    pub kind: DatasetKind,
    /// Evaluation class names.
    pub class_names: Vec<String>,
    /// Ground-truth label sets (sorted class indices), one per item.
    pub labels: Vec<Vec<usize>>,
    /// `n × latent_dim` latent semantic vectors.
    pub latents: Matrix,
    pub split: Split,
}

impl Dataset {
    /// Generate a dataset deterministically from `seed`.
    ///
    /// ```
    /// use uhscm_data::{Dataset, DatasetConfig, DatasetKind};
    ///
    /// let ds = Dataset::generate(DatasetKind::NusWideLike, &DatasetConfig::tiny(), 42);
    /// assert_eq!(ds.class_names.len(), 21);
    /// assert_eq!(ds.split.query.len() + ds.split.database.len(), ds.len());
    /// // Multi-label: at least some items carry several labels.
    /// assert!(ds.labels.iter().any(|l| l.len() > 1));
    /// ```
    ///
    /// # Panics
    ///
    /// Panics if `config.n_train > config.n_database` (the train split is
    /// drawn from the database partition), or if a co-occurrence group
    /// names a class the dataset kind does not define.
    pub fn generate(kind: DatasetKind, config: &DatasetConfig, seed: u64) -> Self {
        assert!(config.n_train <= config.n_database, "train set must fit in database");
        let mut r = rng::seeded(seed);
        let class_names = kind.class_names();
        let n = config.n_query + config.n_database;

        // Resolve co-occurrence groups to class indices once.
        let groups: Vec<Vec<usize>> = kind
            .cooccurrence_groups()
            .iter()
            .map(|g| {
                g.iter()
                    .map(|name| {
                        class_names
                            .iter()
                            .position(|c| c == name)
                            .unwrap_or_else(|| panic!("group class {name} not in {kind:?}"))
                    })
                    .collect()
            })
            .collect();

        // Cache class prototypes and the distractor pool (NUS-WIDE 81).
        let class_protos: Vec<Vec<f64>> =
            class_names.iter().map(|c| prototype(c, config.latent_dim)).collect();
        let distractor_pool: Vec<Vec<f64>> =
            vocab::NUS_WIDE_81.iter().map(|c| prototype(c, config.latent_dim)).collect();

        let mut labels = Vec::with_capacity(n);
        let mut latents = Matrix::zeros(n, config.latent_dim);
        for i in 0..n {
            let item_labels = sample_labels(kind, &groups, class_names.len(), &mut r);
            let row = latents.row_mut(i);
            for &c in &item_labels {
                let w = r.gen_range(0.8..1.2);
                for (v, &p) in row.iter_mut().zip(&class_protos[c]) {
                    *v += w * p;
                }
            }
            if r.gen::<f64>() < config.distractor_prob {
                let d = r.gen_range(0..distractor_pool.len());
                for (v, &p) in row.iter_mut().zip(&distractor_pool[d]) {
                    *v += config.distractor_weight * p;
                }
            }
            // `context_noise` is the expected *norm* of the noise vector, so
            // the signal-to-noise ratio is independent of `latent_dim`.
            let sigma = config.context_noise / (config.latent_dim as f64).sqrt();
            for v in row.iter_mut() {
                *v += sigma * rng::gauss(&mut r);
            }
            vecops::normalize(row);
            labels.push(item_labels);
        }

        // Split: first n_query items are queries, the rest the database;
        // training indices are a random subset of the database.
        let query: Vec<usize> = (0..config.n_query).collect();
        let database: Vec<usize> = (config.n_query..n).collect();
        let train: Vec<usize> =
            rng::sample_without_replacement(&mut r, database.len(), config.n_train)
                .into_iter()
                .map(|offset| database[offset])
                .collect();

        Self { kind, class_names, labels, latents, split: Split { train, query, database } }
    }

    /// Total number of items (queries + database).
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// Whether the dataset is empty.
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// Latent vectors for a list of item indices, as a new matrix.
    pub fn latents_of(&self, indices: &[usize]) -> Matrix {
        self.latents.select_rows(indices)
    }

    /// Label sets for a list of item indices.
    pub fn labels_of(&self, indices: &[usize]) -> Vec<Vec<usize>> {
        indices.iter().map(|&i| self.labels[i].clone()).collect()
    }
}

/// Sample one item's label set.
pub(crate) fn sample_labels(
    kind: DatasetKind,
    groups: &[Vec<usize>],
    n_classes: usize,
    r: &mut impl Rng,
) -> Vec<usize> {
    if !kind.multi_label() {
        return vec![r.gen_range(0..n_classes)];
    }
    let group = &groups[r.gen_range(0..groups.len())];
    let mut set: Vec<usize> = group.iter().copied().filter(|_| r.gen::<f64>() < 0.55).collect();
    if set.is_empty() {
        set.push(group[r.gen_range(0..group.len())]);
    }
    // Occasional unrelated extra label, as in real multi-label corpora.
    if r.gen::<f64>() < 0.25 {
        set.push(r.gen_range(0..n_classes));
    }
    set.sort_unstable();
    set.dedup();
    set
}

/// Ground-truth relevance of §4.2: two items are similar iff their label
/// sets intersect. Inputs must be sorted ascending (as produced by
/// [`Dataset::generate`]).
pub fn share_label(a: &[usize], b: &[usize]) -> bool {
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => return true,
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn generation_is_deterministic() {
        let cfg = DatasetConfig::tiny();
        let a = Dataset::generate(DatasetKind::Cifar10Like, &cfg, 42);
        let b = Dataset::generate(DatasetKind::Cifar10Like, &cfg, 42);
        assert_eq!(a.labels, b.labels);
        assert_eq!(a.latents.as_slice(), b.latents.as_slice());
        assert_eq!(a.split.train, b.split.train);
    }

    #[test]
    fn different_seeds_differ() {
        let cfg = DatasetConfig::tiny();
        let a = Dataset::generate(DatasetKind::Cifar10Like, &cfg, 1);
        let b = Dataset::generate(DatasetKind::Cifar10Like, &cfg, 2);
        assert_ne!(a.latents.as_slice(), b.latents.as_slice());
    }

    #[test]
    fn split_respects_protocol() {
        let cfg = DatasetConfig::tiny();
        let d = Dataset::generate(DatasetKind::NusWideLike, &cfg, 7);
        assert_eq!(d.split.query.len(), cfg.n_query);
        assert_eq!(d.split.database.len(), cfg.n_database);
        assert_eq!(d.split.train.len(), cfg.n_train);
        let q: HashSet<_> = d.split.query.iter().collect();
        let db: HashSet<_> = d.split.database.iter().collect();
        assert!(q.is_disjoint(&db), "query and database overlap");
        assert!(d.split.train.iter().all(|i| db.contains(i)), "train not in database");
        let t: HashSet<_> = d.split.train.iter().collect();
        assert_eq!(t.len(), cfg.n_train, "duplicate training indices");
    }

    #[test]
    fn cifar_is_single_label() {
        let d = Dataset::generate(DatasetKind::Cifar10Like, &DatasetConfig::tiny(), 3);
        assert!(d.labels.iter().all(|l| l.len() == 1));
        assert!(d.labels.iter().all(|l| l[0] < 10));
    }

    #[test]
    fn multilabel_datasets_have_multilabel_items() {
        for kind in [DatasetKind::NusWideLike, DatasetKind::FlickrLike] {
            let d = Dataset::generate(kind, &DatasetConfig::tiny(), 5);
            assert!(d.labels.iter().any(|l| l.len() > 1), "{kind:?} never multi-label");
            assert!(d.labels.iter().all(|l| !l.is_empty()), "{kind:?} has empty label set");
            let n_classes = d.class_names.len();
            assert!(d.labels.iter().flatten().all(|&c| c < n_classes));
        }
    }

    #[test]
    fn labels_sorted_and_deduped() {
        let d = Dataset::generate(DatasetKind::FlickrLike, &DatasetConfig::tiny(), 9);
        for l in &d.labels {
            assert!(l.windows(2).all(|w| w[0] < w[1]), "unsorted/duplicated {l:?}");
        }
    }

    #[test]
    fn all_classes_eventually_sampled() {
        let cfg = DatasetConfig {
            n_query: 200,
            n_database: 2_000,
            n_train: 100,
            ..DatasetConfig::tiny()
        };
        for kind in DatasetKind::ALL {
            let d = Dataset::generate(kind, &cfg, 11);
            let seen: HashSet<usize> = d.labels.iter().flatten().copied().collect();
            assert_eq!(seen.len(), d.class_names.len(), "{kind:?} missing classes");
        }
    }

    #[test]
    fn latents_unit_norm() {
        let d = Dataset::generate(DatasetKind::NusWideLike, &DatasetConfig::tiny(), 13);
        for row in d.latents.iter_rows() {
            assert!((vecops::norm(row) - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn same_class_latents_more_similar() {
        let d = Dataset::generate(DatasetKind::Cifar10Like, &DatasetConfig::tiny(), 17);
        let mut same = Vec::new();
        let mut diff = Vec::new();
        for i in 0..60 {
            for j in (i + 1)..60 {
                let c = vecops::cosine(d.latents.row(i), d.latents.row(j));
                if d.labels[i] == d.labels[j] {
                    same.push(c);
                } else {
                    diff.push(c);
                }
            }
        }
        assert!(vecops::mean(&same) > vecops::mean(&diff) + 0.3);
    }

    #[test]
    fn share_label_logic() {
        assert!(share_label(&[1, 3, 5], &[0, 5]));
        assert!(!share_label(&[1, 3], &[0, 2, 4]));
        assert!(!share_label(&[], &[1]));
        assert!(share_label(&[7], &[7]));
    }

    #[test]
    #[should_panic(expected = "train set must fit")]
    fn oversized_train_rejected() {
        let cfg = DatasetConfig { n_train: 500, n_database: 100, ..DatasetConfig::tiny() };
        let _ = Dataset::generate(DatasetKind::Cifar10Like, &cfg, 1);
    }
}
