//! Concept vocabularies and synthetic image datasets for the UHSCM
//! reproduction.
//!
//! The paper evaluates on CIFAR10, NUS-WIDE and MIRFlickr-25K and mines
//! concepts from the 81 NUS-WIDE / 80 MS-COCO class vocabularies. Real image
//! corpora are not available in this environment, so this crate synthesizes
//! datasets with the same *label topology* (single- vs multi-label, class
//! counts, co-occurrence structure) over a shared latent semantic space:
//!
//! * [`vocab`] — the NUS-WIDE-81, MS-COCO-80, CIFAR-10, NUS-WIDE-21 and
//!   MIRFlickr-24 class-name lists, verbatim,
//! * [`concepts`] — a deterministic map from concept *names* to latent
//!   prototype directions, with a synonym table so that e.g. CIFAR10's
//!   "automobile" and NUS-WIDE's "cars" denote the same underlying semantics
//!   (as a pre-trained VLP model's text tower would),
//! * [`dataset`] — the synthetic dataset generator and the
//!   train/query/database split protocol of §4.1.

pub mod concepts;
pub mod dataset;
pub mod stream;
pub mod vocab;

pub use concepts::{canonical, prototype, stable_hash, ConceptSpace};
pub use dataset::{share_label, Dataset, DatasetConfig, DatasetKind, Split};
pub use stream::{share_mask, LatentStream, StreamChunk};
