//! A shared latent semantic space for concept names.
//!
//! A pre-trained VLP model places semantically equivalent words near each
//! other regardless of surface form: CLIP scores an image of a car highly
//! against both "car" (MS-COCO) and "cars" (NUS-WIDE). The simulated VLP
//! model in `uhscm-vlp` gets the same behaviour from this module:
//!
//! 1. [`canonical`] folds surface variants onto one canonical concept name
//!    (plural forms, synonyms like `automobile`/`car`, `sea`/`ocean`, …).
//! 2. [`prototype`] maps a canonical name deterministically (by FNV-1a hash
//!    of the name seeding an RNG) to a unit direction in the latent space, so
//!    the *same word means the same direction everywhere* — across datasets,
//!    vocabularies and processes.

use uhscm_linalg::rng;
use uhscm_linalg::vecops;

/// Surface-form → canonical-concept folding.
///
/// Covers the overlaps between the CIFAR-10 / NUS-WIDE-21 / MIRFlickr-24
/// label sets and the NUS-WIDE-81 / MS-COCO-80 mining vocabularies. Names
/// without an entry are already canonical (lower-cased, trimmed).
pub fn canonical(name: &str) -> String {
    let lower = name.trim().to_lowercase();
    let folded = match lower.as_str() {
        // vehicles
        "automobile" | "cars" => "car",
        "plane" => "airplane",
        "boats" | "ship" => "boat",
        "trucks" => "truck",
        "transport" => "vehicle",
        // animals
        "birds" => "bird",
        "horses" => "horse",
        "animals" => "animal",
        "elk" => "deer",
        "whales" => "whale",
        // people
        "people" => "person",
        "swimmers" => "swimmer",
        // plants & scenery
        "flowers" => "flower",
        "plants" | "plant life" | "potted plant" => "plant",
        "trees" => "tree",
        "sea" => "ocean",
        "nighttime" => "night",
        "structures" => "buildings",
        "rocks" => "rock",
        other => other,
    };
    folded.to_string()
}

/// Semantic relatedness: concepts that are distinct but share meaning with
/// a broader concept (a portrait *contains* a person, a river *is* water in
/// a landscape). A real VLP text tower embeds such pairs with substantial
/// cosine similarity; the simulated tower gets the same behaviour by mixing
/// the related base concept's direction into the prototype with the given
/// weight.
fn related(canonical_name: &str) -> Option<(&'static str, f64)> {
    match canonical_name {
        "portrait" => Some(("person", 0.9)),
        "female" => Some(("person", 0.9)),
        "male" => Some(("person", 0.9)),
        "baby" => Some(("person", 0.7)),
        "swimmer" => Some(("person", 0.8)),
        "river" => Some(("water", 0.9)),
        "indoor" => Some(("house", 0.7)),
        "cityscape" => Some(("buildings", 0.8)),
        "harbor" => Some(("boat", 0.7)),
        "garden" => Some(("plant", 0.7)),
        "glacier" => Some(("snow", 0.6)),
        "valley" => Some(("mountain", 0.6)),
        _ => None,
    }
}

/// Deterministic unit-norm latent prototype for a concept name.
///
/// Two calls with names that share a [`canonical`] form return the same
/// vector, for any process and any call order. Concepts with a related
/// base blend the base prototype into their own direction.
pub fn prototype(name: &str, dim: usize) -> Vec<f64> {
    let canon = canonical(name);
    let mut r = rng::seeded(fnv1a(canon.as_bytes()));
    let mut v = rng::gauss_vec(&mut r, dim, 1.0);
    vecops::normalize(&mut v);
    if let Some((base, weight)) = related(&canon) {
        let base_proto = prototype(base, dim);
        for (own, b) in v.iter_mut().zip(&base_proto) {
            *own += weight * b;
        }
        vecops::normalize(&mut v);
    }
    v
}

/// FNV-1a hash of a byte string (stable across runs and platforms, unlike
/// `DefaultHasher`). Public because `uhscm-vlp` derives deterministic
/// per-image encoder noise from hashed latent bytes.
pub fn stable_hash(bytes: &[u8]) -> u64 {
    fnv1a(bytes)
}

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// A cached prototype table over a fixed vocabulary.
#[derive(Debug, Clone)]
pub struct ConceptSpace {
    dim: usize,
    names: Vec<String>,
    prototypes: Vec<Vec<f64>>,
}

impl ConceptSpace {
    /// Build the space for `names`, caching one prototype per name.
    pub fn new(names: &[String], dim: usize) -> Self {
        let prototypes = names.iter().map(|n| prototype(n, dim)).collect();
        Self { dim, names: names.to_vec(), prototypes }
    }

    /// Latent dimensionality.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Number of concepts.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// Whether the space is empty.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Concept names in order.
    pub fn names(&self) -> &[String] {
        &self.names
    }

    /// Prototype of the `i`-th concept.
    pub fn prototype(&self, i: usize) -> &[f64] {
        &self.prototypes[i]
    }

    /// Index of a concept whose canonical form matches `name`'s, if any.
    pub fn find(&self, name: &str) -> Option<usize> {
        let target = canonical(name);
        self.names.iter().position(|n| canonical(n) == target)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn canonical_folds_synonyms() {
        assert_eq!(canonical("automobile"), canonical("cars"));
        assert_eq!(canonical("plane"), canonical("airplane"));
        assert_eq!(canonical("sea"), canonical("ocean"));
        assert_eq!(canonical("plant life"), canonical("plants"));
        assert_eq!(canonical("People"), canonical("person"));
    }

    #[test]
    fn canonical_keeps_distinct_concepts_distinct() {
        assert_ne!(canonical("cat"), canonical("dog"));
        assert_ne!(canonical("water"), canonical("ocean"));
        assert_ne!(canonical("sky"), canonical("clouds"));
    }

    #[test]
    fn prototypes_deterministic_and_unit_norm() {
        let a = prototype("cat", 32);
        let b = prototype("cat", 32);
        assert_eq!(a, b);
        assert!((vecops::norm(&a) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn synonym_prototypes_identical() {
        assert_eq!(prototype("automobile", 16), prototype("cars", 16));
        assert_eq!(prototype("birds", 16), prototype("bird", 16));
    }

    #[test]
    fn distinct_concepts_nearly_orthogonal() {
        // Random unit vectors in R^64 concentrate near orthogonality.
        let dim = 64;
        let names = ["cat", "dog", "airplane", "sunset", "pizza", "glacier"];
        for (i, a) in names.iter().enumerate() {
            for b in &names[i + 1..] {
                let c = vecops::cosine(&prototype(a, dim), &prototype(b, dim));
                assert!(c.abs() < 0.45, "{a} vs {b}: cos={c}");
            }
        }
    }

    #[test]
    fn concept_space_find_uses_canonical() {
        let names: Vec<String> = ["cars", "cat", "plane"].iter().map(|s| s.to_string()).collect();
        let space = ConceptSpace::new(&names, 8);
        assert_eq!(space.find("automobile"), Some(0));
        assert_eq!(space.find("airplane"), Some(2));
        assert_eq!(space.find("zebra"), None);
        assert_eq!(space.len(), 3);
    }
}

#[cfg(test)]
mod relatedness_tests {
    use super::*;

    #[test]
    fn related_concepts_share_direction() {
        let person = prototype("person", 64);
        for name in ["portrait", "female", "male", "baby"] {
            let p = prototype(name, 64);
            let c = vecops::cosine(&person, &p);
            assert!(c > 0.4, "{name} vs person: cos={c}");
        }
        let water = prototype("water", 64);
        let river = prototype("river", 64);
        assert!(vecops::cosine(&water, &river) > 0.4);
    }

    #[test]
    fn related_concepts_remain_distinct() {
        // Relatedness must not make them identical.
        let person = prototype("person", 64);
        let portrait = prototype("portrait", 64);
        assert!(vecops::cosine(&person, &portrait) < 0.95);
        assert_ne!(person, portrait);
    }

    #[test]
    fn relatedness_is_deterministic() {
        assert_eq!(prototype("portrait", 32), prototype("portrait", 32));
    }
}
