//! Chunked, out-of-core dataset generation for million-item databases.
//!
//! [`Dataset::generate`](crate::Dataset::generate) drives one sequential
//! RNG through every item, which is the right shape for the golden-seeded
//! experiment configs but forces the whole latent matrix into memory and
//! ties every item's bytes to its predecessors. The stream here makes the
//! opposite trade for the scale path (`db build`, the `scale` bench):
//!
//! * **Per-item seeding** — item `i`'s RNG is derived from `(seed, i)`
//!   alone, so the stream is *chunk-size invariant*: any chunking of
//!   `0..total` yields bitwise-identical latents and labels. A 1M-item
//!   build can be verified against a 10k re-read of the same indices.
//! * **Bounded memory** — [`LatentStream::next_chunk`] materializes one
//!   chunk of latents at a time; nothing retains earlier chunks. Peak
//!   memory is `chunk × latent_dim` floats regardless of `total`.
//! * **Compact labels** — ground truth is returned as one `u32` bitmask
//!   per item (every benchmark kind has ≤ 32 evaluation classes), so the
//!   relevance oracle for 1M items is 4 MB, not a `Vec<Vec<usize>>`.
//!
//! The per-item semantics (label sampling, prototype mixing, distractors,
//! context noise, normalization) are exactly those of `Dataset::generate`;
//! only the RNG schedule differs, which is why the two generators coexist
//! rather than one replacing the other.

use crate::concepts::prototype;
use crate::dataset::{sample_labels, DatasetConfig, DatasetKind};
use crate::vocab;
use rand::Rng;
use uhscm_linalg::{rng, vecops, Matrix};

/// One generated chunk: items `start .. start + latents.rows()` of the
/// stream, in order.
#[derive(Debug, Clone)]
pub struct StreamChunk {
    /// Global index of the chunk's first item.
    pub start: usize,
    /// `chunk_len × latent_dim` latent semantic vectors.
    pub latents: Matrix,
    /// One label bitmask per item (bit `c` ⇔ class `c` present).
    pub label_masks: Vec<u32>,
}

/// Ground-truth relevance of §4.2 over packed label masks: two items are
/// similar iff their label sets intersect.
#[inline]
pub fn share_mask(a: u32, b: u32) -> bool {
    a & b != 0
}

/// A deterministic, chunk-size-invariant generator of dataset items.
pub struct LatentStream {
    kind: DatasetKind,
    config: DatasetConfig,
    seed: u64,
    groups: Vec<Vec<usize>>,
    n_classes: usize,
    class_protos: Vec<Vec<f64>>,
    distractor_pool: Vec<Vec<f64>>,
    next: usize,
    total: usize,
}

impl LatentStream {
    /// Set up a stream of `total` items for `kind`, reusing the size-free
    /// fields of `config` (`latent_dim`, noise and distractor parameters).
    ///
    /// # Panics
    ///
    /// Panics if the kind defines more than 32 evaluation classes (the
    /// label-mask width) or if a co-occurrence group names a class the
    /// kind does not define.
    pub fn new(kind: DatasetKind, config: &DatasetConfig, total: usize, seed: u64) -> Self {
        let class_names = kind.class_names();
        assert!(class_names.len() <= 32, "label masks hold at most 32 classes");
        let groups: Vec<Vec<usize>> = kind
            .cooccurrence_groups()
            .iter()
            .map(|g| {
                g.iter()
                    .map(|name| {
                        class_names
                            .iter()
                            .position(|c| c == name)
                            .unwrap_or_else(|| panic!("group class {name} not in {kind:?}"))
                    })
                    .collect()
            })
            .collect();
        let class_protos: Vec<Vec<f64>> =
            class_names.iter().map(|c| prototype(c, config.latent_dim)).collect();
        let distractor_pool: Vec<Vec<f64>> =
            vocab::NUS_WIDE_81.iter().map(|c| prototype(c, config.latent_dim)).collect();
        Self {
            kind,
            config: config.clone(),
            seed,
            groups,
            n_classes: class_names.len(),
            class_protos,
            distractor_pool,
            next: 0,
            total,
        }
    }

    /// Total items the stream will produce.
    pub fn total(&self) -> usize {
        self.total
    }

    /// Items not yet produced.
    pub fn remaining(&self) -> usize {
        self.total - self.next
    }

    /// Generate the next at-most-`max_items` items; `None` once the stream
    /// is exhausted. Chunk boundaries never change the items produced.
    pub fn next_chunk(&mut self, max_items: usize) -> Option<StreamChunk> {
        let take = self.remaining().min(max_items.max(1));
        if take == 0 {
            return None;
        }
        let start = self.next;
        let mut latents = Matrix::zeros(take, self.config.latent_dim);
        let mut label_masks = Vec::with_capacity(take);
        for k in 0..take {
            label_masks.push(self.fill_item(start + k, latents.row_mut(k)));
        }
        self.next += take;
        Some(StreamChunk { start, latents, label_masks })
    }

    /// Generate item `index` into `row`, returning its label mask. The
    /// item RNG depends only on `(seed, index)`.
    fn fill_item(&self, index: usize, row: &mut [f64]) -> u32 {
        // SplitMix64-style index mix; `rng::seeded` scrambles further, so
        // adjacent indices still yield uncorrelated streams.
        let item_seed =
            self.seed ^ 0x9e37_79b9_7f4a_7c15u64.wrapping_mul(index as u64 ^ 0x243f_6a88_85a3_08d3);
        let mut r = rng::seeded(item_seed);
        let labels = sample_labels(self.kind, &self.groups, self.n_classes, &mut r);
        for &c in &labels {
            let w = r.gen_range(0.8..1.2);
            for (v, &p) in row.iter_mut().zip(&self.class_protos[c]) {
                *v += w * p;
            }
        }
        if r.gen::<f64>() < self.config.distractor_prob {
            let d = r.gen_range(0..self.distractor_pool.len());
            for (v, &p) in row.iter_mut().zip(&self.distractor_pool[d]) {
                *v += self.config.distractor_weight * p;
            }
        }
        let sigma = self.config.context_noise / (self.config.latent_dim as f64).sqrt();
        for v in row.iter_mut() {
            *v += sigma * rng::gauss(&mut r);
        }
        vecops::normalize(row);
        let mut mask = 0u32;
        for &c in &labels {
            mask |= 1 << c;
        }
        mask
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::share_label;

    fn drain(mut s: LatentStream, chunk: usize) -> (Vec<f64>, Vec<u32>) {
        let mut flat = Vec::new();
        let mut masks = Vec::new();
        let mut expect_start = 0;
        while let Some(c) = s.next_chunk(chunk) {
            assert_eq!(c.start, expect_start);
            assert_eq!(c.latents.rows(), c.label_masks.len());
            expect_start += c.latents.rows();
            flat.extend_from_slice(c.latents.as_slice());
            masks.extend_from_slice(&c.label_masks);
        }
        (flat, masks)
    }

    #[test]
    fn chunk_size_invariant() {
        let cfg = DatasetConfig::tiny();
        let full = drain(LatentStream::new(DatasetKind::NusWideLike, &cfg, 100, 9), 100);
        for chunk in [1usize, 7, 33, 64] {
            let part = drain(LatentStream::new(DatasetKind::NusWideLike, &cfg, 100, 9), chunk);
            assert_eq!(full, part, "chunk={chunk}");
        }
    }

    #[test]
    fn deterministic_and_seed_sensitive() {
        let cfg = DatasetConfig::tiny();
        let a = drain(LatentStream::new(DatasetKind::Cifar10Like, &cfg, 50, 1), 16);
        let b = drain(LatentStream::new(DatasetKind::Cifar10Like, &cfg, 50, 1), 16);
        let c = drain(LatentStream::new(DatasetKind::Cifar10Like, &cfg, 50, 2), 16);
        assert_eq!(a, b);
        assert_ne!(a.0, c.0);
    }

    #[test]
    fn items_are_unit_norm_and_labeled() {
        let cfg = DatasetConfig::tiny();
        let mut s = LatentStream::new(DatasetKind::FlickrLike, &cfg, 40, 5);
        let chunk = s.next_chunk(40).unwrap();
        for i in 0..chunk.latents.rows() {
            assert!((vecops::norm(chunk.latents.row(i)) - 1.0).abs() < 1e-9);
        }
        assert!(chunk.label_masks.iter().all(|&m| m != 0), "empty label set");
        assert!(chunk.label_masks.iter().all(|&m| m >> 24 == 0), "class out of range");
        assert!(chunk.label_masks.iter().any(|&m| m.count_ones() > 1), "never multi-label");
    }

    #[test]
    fn share_mask_matches_share_label() {
        let to_set = |m: u32| -> Vec<usize> { (0..32).filter(|b| m >> b & 1 == 1).collect() };
        for (a, b) in [(0b101u32, 0b010u32), (0b101, 0b100), (0b1, 0b1), (0b110, 0b1)] {
            assert_eq!(share_mask(a, b), share_label(&to_set(a), &to_set(b)), "{a:b} {b:b}");
        }
    }

    #[test]
    fn exhausted_stream_returns_none() {
        let mut s = LatentStream::new(DatasetKind::Cifar10Like, &DatasetConfig::tiny(), 10, 3);
        assert_eq!(s.total(), 10);
        assert!(s.next_chunk(4).is_some());
        assert!(s.next_chunk(4).is_some());
        assert_eq!(s.remaining(), 2);
        assert_eq!(s.next_chunk(4).unwrap().latents.rows(), 2);
        assert!(s.next_chunk(4).is_none());
        assert_eq!(s.remaining(), 0);
    }
}
