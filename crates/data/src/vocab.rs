//! The concept vocabularies and dataset class lists used by the paper.
//!
//! * [`nus_wide_81`] — the 81 NUS-WIDE concepts, the paper's default
//!   "randomly collected" concept set `C` for *all three* datasets (§4.1).
//! * [`coco_80`] — the 80 MS-COCO categories, used by the `UHSCM_coco`
//!   ablation (Table 2 row 1).
//! * [`nus_and_coco`] — their union with duplicates removed; the paper
//!   reports 153 distinct categories (Table 2 row 2).
//! * [`cifar10_classes`], [`nus_wide_21`], [`mirflickr_24`] — the evaluation
//!   label sets of the three datasets.

/// The 81 NUS-WIDE concept labels.
pub const NUS_WIDE_81: [&str; 81] = [
    "airport",
    "animal",
    "beach",
    "bear",
    "birds",
    "boats",
    "book",
    "bridge",
    "buildings",
    "cars",
    "castle",
    "cat",
    "cityscape",
    "clouds",
    "computer",
    "coral",
    "cow",
    "dancing",
    "dog",
    "earthquake",
    "elk",
    "fire",
    "fish",
    "flags",
    "flowers",
    "food",
    "fox",
    "frost",
    "garden",
    "glacier",
    "grass",
    "harbor",
    "horses",
    "house",
    "lake",
    "leaf",
    "map",
    "military",
    "moon",
    "mountain",
    "nighttime",
    "ocean",
    "person",
    "plane",
    "plants",
    "police",
    "protest",
    "railroad",
    "rainbow",
    "reflection",
    "road",
    "rocks",
    "running",
    "sand",
    "sign",
    "sky",
    "snow",
    "soccer",
    "sports",
    "statue",
    "street",
    "sun",
    "sunset",
    "surf",
    "swimmers",
    "tattoo",
    "temple",
    "tiger",
    "tower",
    "town",
    "toy",
    "train",
    "tree",
    "valley",
    "vehicle",
    "water",
    "waterfall",
    "wedding",
    "whales",
    "window",
    "zebra",
];

/// The 80 MS-COCO object categories.
pub const COCO_80: [&str; 80] = [
    "person",
    "bicycle",
    "car",
    "motorcycle",
    "airplane",
    "bus",
    "train",
    "truck",
    "boat",
    "traffic light",
    "fire hydrant",
    "stop sign",
    "parking meter",
    "bench",
    "bird",
    "cat",
    "dog",
    "horse",
    "sheep",
    "cow",
    "elephant",
    "bear",
    "zebra",
    "giraffe",
    "backpack",
    "umbrella",
    "handbag",
    "tie",
    "suitcase",
    "frisbee",
    "skis",
    "snowboard",
    "sports ball",
    "kite",
    "baseball bat",
    "baseball glove",
    "skateboard",
    "surfboard",
    "tennis racket",
    "bottle",
    "wine glass",
    "cup",
    "fork",
    "knife",
    "spoon",
    "bowl",
    "banana",
    "apple",
    "sandwich",
    "orange",
    "broccoli",
    "carrot",
    "hot dog",
    "pizza",
    "donut",
    "cake",
    "chair",
    "couch",
    "potted plant",
    "bed",
    "dining table",
    "toilet",
    "tv",
    "laptop",
    "mouse",
    "remote",
    "keyboard",
    "cell phone",
    "microwave",
    "oven",
    "toaster",
    "sink",
    "refrigerator",
    "book",
    "clock",
    "vase",
    "scissors",
    "teddy bear",
    "hair drier",
    "toothbrush",
];

/// The 10 CIFAR-10 classes.
pub const CIFAR10_CLASSES: [&str; 10] =
    ["airplane", "automobile", "bird", "cat", "deer", "dog", "frog", "horse", "ship", "truck"];

/// The 21 most-frequent NUS-WIDE classes used for retrieval evaluation.
pub const NUS_WIDE_21: [&str; 21] = [
    "animal",
    "beach",
    "buildings",
    "cars",
    "clouds",
    "flowers",
    "grass",
    "lake",
    "mountain",
    "ocean",
    "person",
    "plants",
    "reflection",
    "road",
    "rocks",
    "sky",
    "snow",
    "sunset",
    "toy",
    "water",
    "window",
];

/// The 24 MIRFlickr-25K annotation classes.
pub const MIRFLICKR_24: [&str; 24] = [
    "animals",
    "baby",
    "bird",
    "car",
    "clouds",
    "dog",
    "female",
    "flower",
    "food",
    "indoor",
    "lake",
    "male",
    "night",
    "people",
    "plant life",
    "portrait",
    "river",
    "sea",
    "sky",
    "structures",
    "sunset",
    "transport",
    "tree",
    "water",
];

/// NUS-WIDE 81 as owned strings.
pub fn nus_wide_81() -> Vec<String> {
    NUS_WIDE_81.iter().map(|s| s.to_string()).collect()
}

/// MS-COCO 80 as owned strings.
pub fn coco_80() -> Vec<String> {
    COCO_80.iter().map(|s| s.to_string()).collect()
}

/// Union of NUS-WIDE 81 and MS-COCO 80 with duplicates removed.
///
/// The paper reports "a total of 153 different categories" for this union
/// (§4.4.1), implying 8 shared names; with these verbatim lists the shared
/// names are `person, train, cow, bear, zebra, cat, dog, book` — exactly 8.
pub fn nus_and_coco() -> Vec<String> {
    let mut out = nus_wide_81();
    for c in COCO_80 {
        if !out.iter().any(|existing| existing == c) {
            out.push(c.to_string());
        }
    }
    out
}

/// CIFAR-10 classes as owned strings.
pub fn cifar10_classes() -> Vec<String> {
    CIFAR10_CLASSES.iter().map(|s| s.to_string()).collect()
}

/// NUS-WIDE 21 evaluation classes as owned strings.
pub fn nus_wide_21() -> Vec<String> {
    NUS_WIDE_21.iter().map(|s| s.to_string()).collect()
}

/// MIRFlickr 24 classes as owned strings.
pub fn mirflickr_24() -> Vec<String> {
    MIRFLICKR_24.iter().map(|s| s.to_string()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn vocabulary_sizes_match_paper() {
        assert_eq!(NUS_WIDE_81.len(), 81);
        assert_eq!(COCO_80.len(), 80);
        assert_eq!(CIFAR10_CLASSES.len(), 10);
        assert_eq!(NUS_WIDE_21.len(), 21);
        assert_eq!(MIRFLICKR_24.len(), 24);
    }

    #[test]
    fn union_has_153_categories() {
        assert_eq!(nus_and_coco().len(), 153);
    }

    #[test]
    fn no_duplicates_within_each_vocabulary() {
        for list in [&NUS_WIDE_81[..], &COCO_80[..], &CIFAR10_CLASSES[..], &MIRFLICKR_24[..]] {
            let set: HashSet<_> = list.iter().collect();
            assert_eq!(set.len(), list.len());
        }
    }

    #[test]
    fn nus21_is_subset_of_nus81() {
        let full: HashSet<_> = NUS_WIDE_81.iter().collect();
        assert!(NUS_WIDE_21.iter().all(|c| full.contains(c)));
    }
}
