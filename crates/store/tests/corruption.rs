//! Adversarial properties of the segment store format. `serve --db-store`
//! and `db build`/`db info` read store files from operator-supplied paths,
//! so *every* byte-level mutation — bit flips anywhere, truncation at any
//! offset, a forged count or a forged-but-checksummed payload — must
//! surface as a typed `StoreError`: never a panic, never a misindexed or
//! wrong-but-accepted database, never an attacker-sized allocation.

use proptest::prelude::*;
use uhscm_eval::BitCodes;
use uhscm_linalg::rng::seeded;
use uhscm_store::{StoreError, StoreReader, StoreWriter};

use rand::Rng;
use std::io::Cursor;

/// Header prefix (magic + version + bits + segment count + total) and its
/// trailing checksum — kept in sync with the format doc in
/// `segment.rs`.
const HEADER_PREFIX: usize = 4 + 4 + 8 + 8 + 8;

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

fn fnv(bytes: &[u8]) -> u64 {
    bytes.iter().fold(FNV_OFFSET, |h, &b| (h ^ b as u64).wrapping_mul(FNV_PRIME))
}

/// A small three-segment store; varying the seed varies every payload
/// byte, so corruption offsets land on different content across cases.
/// 70-bit codes leave live padding bits in every second word.
fn saved_store(seed: u64) -> Vec<u8> {
    let mut rng = seeded(seed);
    let mut cur = Cursor::new(Vec::new());
    let mut w = StoreWriter::new(&mut cur, 70).expect("width in range");
    for n in [5usize, 3, 9] {
        let rows: Vec<Vec<bool>> =
            (0..n).map(|_| (0..70).map(|_| rng.gen_bool(0.5)).collect()).collect();
        w.append(&BitCodes::from_bools(&rows)).expect("writing to a Vec cannot fail");
    }
    w.finish().expect("writing to a Vec cannot fail");
    cur.into_inner()
}

/// Open and fully drain a store, which also runs the terminal
/// total/trailing-bytes cross-checks.
fn read_fully(bytes: &[u8]) -> Result<usize, StoreError> {
    let mut r = StoreReader::new(bytes)?;
    let mut total = 0usize;
    while let Some(seg) = r.next_segment()? {
        total += seg.len();
    }
    Ok(total)
}

proptest! {
    /// Flipping any bits of any single byte is always detected: the header
    /// carries its own FNV-1a trailer, every segment carries one over its
    /// count field and payload, and each hash step is a state bijection,
    /// so a single-byte difference can never collide.
    #[test]
    fn single_byte_corruption_always_rejected(
        seed in any::<u64>(),
        offset in 0usize..100_000,
        flip in 1u8..=255,
    ) {
        let mut buf = saved_store(seed);
        let offset = offset % buf.len();
        buf[offset] ^= flip;
        match read_fully(&buf) {
            Err(_) => {}
            Ok(_) => prop_assert!(false, "corruption at byte {offset} was silently accepted"),
        }
    }

    /// Truncation at any point — mid-header, mid-count, mid-payload, or
    /// inside a checksum trailer — is an error, never a panic and never an
    /// allocation beyond the bytes actually present.
    #[test]
    fn truncation_always_rejected(seed in any::<u64>(), cut in 0usize..100_000) {
        let buf = saved_store(seed);
        let cut = cut % buf.len(); // strictly shorter than the full file
        prop_assert!(read_fully(&buf[..cut]).is_err(), "truncation at {cut} accepted");
    }

    /// Forging a segment's count field — even with a correctly recomputed
    /// trailer for the forged bytes — is rejected: the shifted payload
    /// framing breaks a later checksum, runs past the header total, or
    /// hits EOF. An attacker who can recompute FNV still cannot make the
    /// reader misindex.
    #[test]
    fn forged_segment_count_rejected(seed in any::<u64>(), forged in 0u64..50) {
        let buf = saved_store(seed);
        let seg0 = HEADER_PREFIX + 8; // first segment's count field
        let words_per_code = 70usize.div_ceil(64);
        let true_count = 5u64;
        if forged != true_count {
            let mut forged_buf = buf.clone();
            forged_buf[seg0..seg0 + 8].copy_from_slice(&forged.to_le_bytes());
            // Recompute a *valid* trailer over the forged count + the payload
            // bytes the forged count claims, when they exist in the file.
            let payload = (forged as usize) * words_per_code * 8;
            let trailer_at = seg0 + 8 + payload;
            if trailer_at + 8 <= forged_buf.len() {
                let sum = fnv(&forged_buf[seg0..trailer_at]);
                forged_buf[trailer_at..trailer_at + 8].copy_from_slice(&sum.to_le_bytes());
            }
            prop_assert!(read_fully(&forged_buf).is_err(), "forged count {forged} accepted");
        }
    }
}

#[test]
fn untouched_store_still_round_trips() {
    let buf = saved_store(7);
    assert_eq!(read_fully(&buf).expect("pristine store must load"), 17);
}

/// A checksummed-but-forged payload that sets bits above the 70-bit code
/// width must be rejected: padding bits would silently corrupt whole-word
/// popcount distances (misindexing, not just misloading).
#[test]
fn forged_padding_bits_rejected() {
    let mut buf = saved_store(3);
    let seg0 = HEADER_PREFIX + 8;
    // Second word of the first code: bits 70..127 are padding; set bit 127.
    let word1 = seg0 + 8 + 8;
    buf[word1 + 7] |= 0x80;
    let words_per_code = 70usize.div_ceil(64);
    let trailer_at = seg0 + 8 + 5 * words_per_code * 8;
    let sum = fnv(&buf[seg0..trailer_at]);
    buf[trailer_at..trailer_at + 8].copy_from_slice(&sum.to_le_bytes());
    assert!(
        matches!(read_fully(&buf), Err(StoreError::Corrupt("padding bits set above code width"))),
        "forged padding bits must be a typed corruption error"
    );
}

/// A forged header declaring a huge database with no payload behind it
/// must fail fast on EOF without attempting an attacker-sized allocation
/// (the reader streams payloads through a bounded chunk buffer).
#[test]
fn forged_huge_count_fails_fast_without_huge_alloc() {
    let mut buf = Vec::new();
    buf.extend_from_slice(b"UHSS");
    buf.extend_from_slice(&1u32.to_le_bytes());
    buf.extend_from_slice(&64u64.to_le_bytes()); // bits
    buf.extend_from_slice(&1u64.to_le_bytes()); // one segment
    buf.extend_from_slice(&(1u64 << 32).to_le_bytes()); // 4G codes claimed
    let sum = fnv(&buf);
    buf.extend_from_slice(&sum.to_le_bytes());
    // The single segment claims all 4G codes but carries only 8 words.
    let seg_start = buf.len();
    buf.extend_from_slice(&(1u64 << 32).to_le_bytes());
    buf.extend_from_slice(&[0u8; 64]);
    let sum = fnv(&buf[seg_start..]);
    buf.extend_from_slice(&sum.to_le_bytes());
    assert!(matches!(read_fully(&buf), Err(StoreError::Io(_))), "must EOF, not allocate 32 GiB");
}

/// Counts past the format cap are rejected at the header, before any
/// segment is read.
#[test]
fn header_count_over_cap_rejected() {
    let mut buf = Vec::new();
    buf.extend_from_slice(b"UHSS");
    buf.extend_from_slice(&1u32.to_le_bytes());
    buf.extend_from_slice(&64u64.to_le_bytes());
    buf.extend_from_slice(&1u64.to_le_bytes());
    buf.extend_from_slice(&((1u64 << 32) + 1).to_le_bytes());
    let sum = fnv(&buf);
    buf.extend_from_slice(&sum.to_le_bytes());
    assert!(matches!(
        StoreReader::new(buf.as_slice()),
        Err(StoreError::Corrupt("header code count out of range"))
    ));
}
