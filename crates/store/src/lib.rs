//! `uhscm-store`: out-of-core segment store for packed bit codes.
//!
//! The offline pipeline and the serve path both held every database code in
//! RAM, capping experiments at toy sizes; the paper's retrieval regime is
//! Flickr-1M-scale (PAPERS.md: PSIDP, rank-preserving large-scale hashing).
//! This crate is the bridge: a versioned, checksummed on-disk format
//! ([`segment`]) that a generator streams into chunk by chunk (generate →
//! encode → [`StoreWriter::append`]) and that index construction drains
//! segment by segment ([`StoreReader::next_segment`]) — at no point does
//! either side hold more than one chunk of codes.
//!
//! Store segments become the contiguous bands of a `ShardedIndex` genesis
//! generation; its fan-out/merge determinism contract makes store-backed
//! retrieval bitwise identical to a fully materialized in-memory index at
//! any segment count.
//!
//! Everything on the read path treats the file as hostile input, in the
//! `Mlp::load` discipline: magic/version checks, dimension caps before
//! allocation, bounded incremental reads, per-segment FNV-1a checksums,
//! and padding-bit validation (via `BitCodes::from_words`) so a forged
//! payload can never corrupt whole-word Hamming popcounts. Failures are
//! typed [`StoreError`]s, never panics.

pub mod segment;

pub use segment::{store_path, StoreError, StoreReader, StoreSummary, StoreWriter, STORE_FILE};
