//! The on-disk segment format and its writer/reader.
//!
//! Layout (all integers little-endian):
//!
//! ```text
//! header   magic "UHSS" · version u32 · bits u64 · segment_count u64 ·
//!          total_count u64 · FNV-1a trailer over the preceding 32 bytes
//! segment  count u64 · count × bits.div_ceil(64) packed words ·
//!          FNV-1a trailer over the segment's count field and payload
//! ```
//!
//! The discipline mirrors `Mlp::load` (DESIGN.md §9): magic and version
//! first, dimension caps before any allocation, payloads read through a
//! hashing adapter in bounded chunks, and every checksum compared before
//! the bytes are trusted. A file is only valid once [`StoreWriter::finish`]
//! has patched the real counts into the header — a crashed or abandoned
//! write leaves a zero-count header that the reader rejects as corrupt.
//!
//! The reader never materializes more than one segment: peak memory is
//! bounded by the writer's chunk size, not the database size, which is the
//! whole point of the store (ROADMAP item 1: million-item databases).

use std::fmt;
use std::fs::File;
use std::io::{self, BufReader, BufWriter, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use uhscm_eval::BitCodes;
use uhscm_obs::registry;

const MAGIC: &[u8; 4] = b"UHSS";
const VERSION: u32 = 1;
/// Widest code the format accepts (matches the `BitCodes::load` cap).
const MAX_BITS: usize = 1 << 20;
/// Most codes a store may declare (matches the `BitCodes::load` cap).
const MAX_TOTAL_CODES: u64 = 1 << 32;
/// Hashed header prefix: magic + version + bits + segment_count + total.
const HEADER_PREFIX_BYTES: usize = 4 + 4 + 8 + 8 + 8;
/// Payload read granularity: segment bytes stream through a buffer of at
/// most this size, so a forged count cannot force a large allocation
/// before the missing bytes produce an EOF error.
const READ_CHUNK_BYTES: usize = 1 << 19;

/// Conventional store file name inside a `--db-store` directory.
pub const STORE_FILE: &str = "segments.uhss";

/// The store file path for a database directory.
pub fn store_path(dir: &Path) -> PathBuf {
    dir.join(STORE_FILE)
}

/// Typed failure of a store read or write. Hostile bytes must surface
/// here — never as a panic, never as silently misindexed codes.
#[derive(Debug)]
pub enum StoreError {
    /// Underlying I/O failure (including truncation mid-field).
    Io(io::Error),
    /// The file does not start with the `UHSS` magic.
    BadMagic,
    /// Unknown format version.
    BadVersion(u32),
    /// Structurally invalid or checksum-failing content.
    Corrupt(&'static str),
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io(e) => write!(f, "store i/o error: {e}"),
            StoreError::BadMagic => write!(f, "not a UHSCM segment store (bad magic)"),
            StoreError::BadVersion(v) => write!(f, "unsupported segment store version {v}"),
            StoreError::Corrupt(msg) => write!(f, "corrupt segment store: {msg}"),
        }
    }
}

impl std::error::Error for StoreError {}

impl From<io::Error> for StoreError {
    fn from(e: io::Error) -> Self {
        StoreError::Io(e)
    }
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

#[inline]
fn fnv1a_step(hash: u64, byte: u8) -> u64 {
    (hash ^ byte as u64).wrapping_mul(FNV_PRIME)
}

/// Write adapter folding every byte into a running FNV-1a hash.
struct HashingWriter<'a, W: Write> {
    inner: &'a mut W,
    hash: u64,
}

impl<'a, W: Write> HashingWriter<'a, W> {
    fn new(inner: &'a mut W) -> Self {
        Self { inner, hash: FNV_OFFSET }
    }
}

impl<W: Write> Write for HashingWriter<'_, W> {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        let n = self.inner.write(buf)?;
        for &b in &buf[..n] {
            self.hash = fnv1a_step(self.hash, b);
        }
        Ok(n)
    }

    fn flush(&mut self) -> io::Result<()> {
        self.inner.flush()
    }
}

/// Read adapter folding every byte into a running FNV-1a hash. Checksum
/// trailers are read through `inner` directly so they never hash
/// themselves.
struct HashingReader<'a, R: Read> {
    inner: &'a mut R,
    hash: u64,
}

impl<'a, R: Read> HashingReader<'a, R> {
    fn new(inner: &'a mut R) -> Self {
        Self { inner, hash: FNV_OFFSET }
    }
}

impl<R: Read> Read for HashingReader<'_, R> {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        let n = self.inner.read(buf)?;
        for &b in &buf[..n] {
            self.hash = fnv1a_step(self.hash, b);
        }
        Ok(n)
    }
}

fn read_u64_raw(r: &mut impl Read) -> Result<u64, StoreError> {
    let mut buf = [0u8; 8];
    r.read_exact(&mut buf)?;
    Ok(u64::from_le_bytes(buf))
}

/// What a finished write produced.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StoreSummary {
    /// Segments appended.
    pub segments: u64,
    /// Codes across all segments.
    pub codes: u64,
    /// Code width in bits.
    pub bits: usize,
    /// Total file size in bytes, header included.
    pub bytes: u64,
}

/// Chunked segment writer: open, [`append`](Self::append) one encoded
/// chunk at a time, [`finish`](Self::finish). Memory held is whatever the
/// caller's chunk is — the writer itself only streams.
pub struct StoreWriter<W: Write + Seek> {
    out: W,
    bits: usize,
    segments: u64,
    total: u64,
    bytes: u64,
}

impl StoreWriter<BufWriter<File>> {
    /// Create (truncating) a store file on disk for `bits`-bit codes.
    pub fn create(path: &Path, bits: usize) -> Result<Self, StoreError> {
        StoreWriter::new(BufWriter::new(File::create(path)?), bits)
    }
}

impl<W: Write + Seek> StoreWriter<W> {
    /// Start a store of `bits`-bit codes on a fresh seekable sink. Writes
    /// a placeholder header; the real counts and header checksum land in
    /// [`finish`](Self::finish).
    pub fn new(mut out: W, bits: usize) -> Result<Self, StoreError> {
        if bits == 0 || bits > MAX_BITS {
            return Err(StoreError::Corrupt("code width out of range"));
        }
        out.write_all(&[0u8; HEADER_PREFIX_BYTES + 8])?;
        Ok(Self { out, bits, segments: 0, total: 0, bytes: (HEADER_PREFIX_BYTES + 8) as u64 })
    }

    /// Append one chunk of codes as a segment (count, payload, FNV-1a
    /// trailer). Empty chunks are skipped — segments are never empty.
    ///
    /// # Panics
    ///
    /// Panics if `codes` has a different bit width than the store.
    pub fn append(&mut self, codes: &BitCodes) -> Result<(), StoreError> {
        assert_eq!(codes.bits(), self.bits, "store code width mismatch");
        if codes.is_empty() {
            return Ok(());
        }
        let count = codes.len() as u64;
        if self.total.saturating_add(count) > MAX_TOTAL_CODES {
            return Err(StoreError::Corrupt("store exceeds maximum code count"));
        }
        let mut hw = HashingWriter::new(&mut self.out);
        hw.write_all(&count.to_le_bytes())?;
        for &word in codes.as_words() {
            hw.write_all(&word.to_le_bytes())?;
        }
        let sum = hw.hash;
        self.out.write_all(&sum.to_le_bytes())?;
        let seg_bytes = 8 + codes.as_words().len() as u64 * 8 + 8;
        self.segments += 1;
        self.total += count;
        self.bytes += seg_bytes;
        registry::counter_add("store.write.codes", count);
        registry::counter_add("store.write.bytes", seg_bytes);
        registry::histogram_record("store.write.segment_bytes", seg_bytes as f64);
        Ok(())
    }

    /// Seal the store: seek back and write the real header (with its
    /// checksum), flush, and return the totals.
    pub fn finish(mut self) -> Result<StoreSummary, StoreError> {
        self.out.flush()?;
        self.out.seek(SeekFrom::Start(0))?;
        let mut hw = HashingWriter::new(&mut self.out);
        hw.write_all(MAGIC)?;
        hw.write_all(&VERSION.to_le_bytes())?;
        hw.write_all(&(self.bits as u64).to_le_bytes())?;
        hw.write_all(&self.segments.to_le_bytes())?;
        hw.write_all(&self.total.to_le_bytes())?;
        let sum = hw.hash;
        self.out.write_all(&sum.to_le_bytes())?;
        self.out.flush()?;
        Ok(StoreSummary {
            segments: self.segments,
            codes: self.total,
            bits: self.bits,
            bytes: self.bytes,
        })
    }
}

/// Bounded-memory segment reader: validates the header up front, then
/// yields one checksum-verified [`BitCodes`] segment per
/// [`next_segment`](Self::next_segment) call.
pub struct StoreReader<R: Read> {
    inner: R,
    bits: usize,
    declared_segments: u64,
    declared_total: u64,
    segments_read: u64,
    codes_read: u64,
    finished: bool,
    scratch: Vec<u8>,
}

impl StoreReader<BufReader<File>> {
    /// Open and validate a store file on disk.
    pub fn open(path: &Path) -> Result<Self, StoreError> {
        StoreReader::new(BufReader::new(File::open(path)?))
    }
}

impl<R: Read> StoreReader<R> {
    /// Read and validate the header from an untrusted byte source. Caps
    /// are enforced before anything is allocated.
    pub fn new(mut inner: R) -> Result<Self, StoreError> {
        let mut hr = HashingReader::new(&mut inner);
        let mut magic = [0u8; 4];
        hr.read_exact(&mut magic)?;
        if &magic != MAGIC {
            return Err(StoreError::BadMagic);
        }
        let mut ver = [0u8; 4];
        hr.read_exact(&mut ver)?;
        let version = u32::from_le_bytes(ver);
        if version != VERSION {
            return Err(StoreError::BadVersion(version));
        }
        let bits = read_u64_hashed(&mut hr)?;
        let declared_segments = read_u64_hashed(&mut hr)?;
        let declared_total = read_u64_hashed(&mut hr)?;
        if bits == 0 || bits > MAX_BITS as u64 {
            return Err(StoreError::Corrupt("code width out of range"));
        }
        if declared_total > MAX_TOTAL_CODES {
            return Err(StoreError::Corrupt("header code count out of range"));
        }
        if declared_segments > declared_total {
            return Err(StoreError::Corrupt("header segment count exceeds code count"));
        }
        if (declared_total == 0) != (declared_segments == 0) {
            return Err(StoreError::Corrupt("header segment/code counts disagree"));
        }
        let expected = hr.hash;
        let actual = read_u64_raw(&mut inner)?;
        if expected != actual {
            return Err(StoreError::Corrupt("header checksum mismatch"));
        }
        Ok(Self {
            inner,
            bits: bits as usize,
            declared_segments,
            declared_total,
            segments_read: 0,
            codes_read: 0,
            finished: false,
            scratch: Vec::new(),
        })
    }

    /// Code width in bits.
    pub fn bits(&self) -> usize {
        self.bits
    }

    /// Total codes the header declares.
    pub fn len(&self) -> usize {
        self.declared_total as usize
    }

    /// Whether the store declares zero codes.
    pub fn is_empty(&self) -> bool {
        self.declared_total == 0
    }

    /// Segments the header declares.
    pub fn segment_count(&self) -> u64 {
        self.declared_segments
    }

    /// Read, verify, and return the next segment; `Ok(None)` after the
    /// final one. The terminal call cross-checks the running code count
    /// against the header and rejects trailing bytes, so a file that
    /// iterates to `None` was consumed and validated in full.
    pub fn next_segment(&mut self) -> Result<Option<BitCodes>, StoreError> {
        if self.finished {
            return Ok(None);
        }
        if self.segments_read == self.declared_segments {
            if self.codes_read != self.declared_total {
                return Err(StoreError::Corrupt("segment code counts do not sum to header total"));
            }
            let mut probe = [0u8; 1];
            loop {
                match self.inner.read(&mut probe) {
                    Ok(0) => break,
                    Ok(_) => return Err(StoreError::Corrupt("trailing bytes after final segment")),
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                    Err(e) => return Err(StoreError::Io(e)),
                }
            }
            self.finished = true;
            return Ok(None);
        }
        let mut hr = HashingReader::new(&mut self.inner);
        let count = read_u64_hashed(&mut hr)?;
        if count == 0 {
            return Err(StoreError::Corrupt("empty segment"));
        }
        if self.codes_read.saturating_add(count) > self.declared_total {
            return Err(StoreError::Corrupt("segment count exceeds header total"));
        }
        let words_per_code = (self.bits as u64).div_ceil(64);
        let payload_bytes = count
            .checked_mul(words_per_code)
            .and_then(|w| w.checked_mul(8))
            .ok_or(StoreError::Corrupt("segment size overflows"))?;
        if self.scratch.is_empty() {
            self.scratch = vec![0u8; READ_CHUNK_BYTES.min(payload_bytes as usize).max(8)];
        }
        let mut data: Vec<u64> = Vec::new();
        let mut remaining = payload_bytes;
        while remaining > 0 {
            let take = (remaining as usize).min(self.scratch.len());
            hr.read_exact(&mut self.scratch[..take])?;
            for chunk in self.scratch[..take].chunks_exact(8) {
                let mut w = [0u8; 8];
                w.copy_from_slice(chunk);
                data.push(u64::from_le_bytes(w));
            }
            remaining -= take as u64;
        }
        let expected = hr.hash;
        let actual = read_u64_raw(&mut self.inner)?;
        if expected != actual {
            return Err(StoreError::Corrupt("segment checksum mismatch"));
        }
        let codes =
            BitCodes::from_words(count as usize, self.bits, data).map_err(StoreError::Corrupt)?;
        self.segments_read += 1;
        self.codes_read += count;
        let seg_bytes = 8 + payload_bytes + 8;
        registry::counter_add("store.read.codes", count);
        registry::counter_add("store.read.bytes", seg_bytes);
        registry::histogram_record("store.read.segment_bytes", seg_bytes as f64);
        Ok(Some(codes))
    }

    /// Drain every segment into one in-memory code set, validating the
    /// whole file. Convenience for small databases and verification paths;
    /// at scale, iterate [`next_segment`](Self::next_segment) instead.
    pub fn read_all(mut self) -> Result<BitCodes, StoreError> {
        let mut all =
            BitCodes::from_words(0, self.bits, Vec::new()).map_err(StoreError::Corrupt)?;
        while let Some(seg) = self.next_segment()? {
            all.extend(&seg);
        }
        Ok(all)
    }
}

fn read_u64_hashed<R: Read>(hr: &mut HashingReader<'_, R>) -> Result<u64, StoreError> {
    let mut buf = [0u8; 8];
    hr.read_exact(&mut buf)?;
    Ok(u64::from_le_bytes(buf))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    fn patterned(n: usize, bits: usize, salt: usize) -> BitCodes {
        let rows: Vec<Vec<bool>> =
            (0..n).map(|i| (0..bits).map(|b| (i * 31 + b * 7 + salt) % 4 < 2).collect()).collect();
        BitCodes::from_bools(&rows)
    }

    fn write_store(segments: &[BitCodes], bits: usize) -> Vec<u8> {
        let mut cur = Cursor::new(Vec::new());
        let mut w = StoreWriter::new(&mut cur, bits).unwrap();
        for seg in segments {
            w.append(seg).unwrap();
        }
        w.finish().unwrap();
        cur.into_inner()
    }

    #[test]
    fn round_trip_multiple_segments() {
        for bits in [1usize, 63, 64, 65, 128, 200] {
            let segs = vec![patterned(5, bits, 0), patterned(3, bits, 1), patterned(9, bits, 2)];
            let bytes = write_store(&segs, bits);
            let mut r = StoreReader::new(bytes.as_slice()).unwrap();
            assert_eq!(r.bits(), bits);
            assert_eq!(r.len(), 17);
            assert_eq!(r.segment_count(), 3);
            for seg in &segs {
                assert_eq!(r.next_segment().unwrap().as_ref(), Some(seg), "bits={bits}");
            }
            assert!(r.next_segment().unwrap().is_none());
            assert!(r.next_segment().unwrap().is_none());
        }
    }

    #[test]
    fn read_all_concatenates() {
        let segs = vec![patterned(4, 70, 0), patterned(6, 70, 5)];
        let bytes = write_store(&segs, 70);
        let all = StoreReader::new(bytes.as_slice()).unwrap().read_all().unwrap();
        let mut want = segs[0].clone();
        want.extend(&segs[1]);
        assert_eq!(all, want);
    }

    #[test]
    fn empty_store_round_trips() {
        let bytes = write_store(&[], 32);
        let mut r = StoreReader::new(bytes.as_slice()).unwrap();
        assert_eq!(r.len(), 0);
        assert!(r.is_empty());
        assert!(r.next_segment().unwrap().is_none());
    }

    #[test]
    fn empty_appends_are_skipped() {
        let mut cur = Cursor::new(Vec::new());
        let mut w = StoreWriter::new(&mut cur, 16).unwrap();
        let empty = patterned(1, 16, 0).slice(0..0);
        w.append(&empty).unwrap();
        w.append(&patterned(2, 16, 0)).unwrap();
        let summary = w.finish().unwrap();
        assert_eq!(summary.segments, 1);
        assert_eq!(summary.codes, 2);
        assert_eq!(summary.bytes as usize, cur.into_inner().len());
    }

    #[test]
    fn unfinished_store_is_rejected() {
        let mut cur = Cursor::new(Vec::new());
        let mut w = StoreWriter::new(&mut cur, 16).unwrap();
        w.append(&patterned(2, 16, 0)).unwrap();
        drop(w); // no finish(): header still the zeroed placeholder
        assert!(matches!(StoreReader::new(cur.into_inner().as_slice()), Err(StoreError::BadMagic)));
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let mut bytes = write_store(&[patterned(3, 32, 0)], 32);
        bytes.push(0);
        let mut r = StoreReader::new(bytes.as_slice()).unwrap();
        r.next_segment().unwrap();
        assert!(matches!(
            r.next_segment(),
            Err(StoreError::Corrupt("trailing bytes after final segment"))
        ));
    }

    #[test]
    fn bad_version_is_typed() {
        let mut bytes = write_store(&[patterned(1, 8, 0)], 8);
        bytes[4] = 99;
        // Version is covered by the header checksum; to observe BadVersion
        // the checksum must be recomputed the way the writer does it.
        let mut hash = FNV_OFFSET;
        for &b in &bytes[..HEADER_PREFIX_BYTES] {
            hash = fnv1a_step(hash, b);
        }
        bytes[HEADER_PREFIX_BYTES..HEADER_PREFIX_BYTES + 8].copy_from_slice(&hash.to_le_bytes());
        assert!(matches!(StoreReader::new(bytes.as_slice()), Err(StoreError::BadVersion(99))));
    }

    #[test]
    #[should_panic(expected = "store code width mismatch")]
    fn append_rejects_width_mismatch() {
        let mut cur = Cursor::new(Vec::new());
        let mut w = StoreWriter::new(&mut cur, 16).unwrap();
        let _ = w.append(&patterned(1, 32, 0));
    }

    #[test]
    fn writer_rejects_zero_width() {
        assert!(matches!(
            StoreWriter::new(Cursor::new(Vec::new()), 0),
            Err(StoreError::Corrupt("code width out of range"))
        ));
    }
}
