//! Edge-case and failure-injection tests for the UHSCM core.

use uhscm_core::loss::{hashing_loss_and_grad, LossParams};
use uhscm_core::pipeline::{Pipeline, Regularizer, SimilaritySource};
use uhscm_core::trainer::train_hashing_network;
use uhscm_core::UhscmConfig;
use uhscm_data::{vocab, Dataset, DatasetConfig, DatasetKind};
use uhscm_linalg::{rng, Matrix};
use uhscm_vlp::PromptTemplate;

fn tiny() -> Dataset {
    Dataset::generate(DatasetKind::Cifar10Like, &DatasetConfig::tiny(), 42)
}

#[test]
fn batch_size_larger_than_dataset_still_trains() {
    let mut r = rng::seeded(1);
    let x = rng::gauss_matrix(&mut r, 10, 6, 1.0);
    let q = Matrix::identity(10);
    let cfg = UhscmConfig { bits: 4, epochs: 2, batch_size: 512, ..UhscmConfig::default() };
    let model = train_hashing_network(&x, &q, &cfg, Regularizer::Modified, 3);
    assert_eq!(model.encode(&x).len(), 10);
}

#[test]
fn lambda_one_disables_positive_pairs_gracefully() {
    // λ = 1.0 makes Ψ_i empty for every i (only q_ii = 1 and the diagonal
    // is excluded) — the contrastive term must silently vanish, not panic.
    let mut r = rng::seeded(2);
    let z = rng::gauss_matrix(&mut r, 6, 4, 0.5);
    let mut q = Matrix::identity(6);
    for i in 0..6 {
        for j in 0..6 {
            if i != j {
                q[(i, j)] = 0.5;
            }
        }
    }
    let p = LossParams { alpha: 0.3, beta: 0.001, gamma: 0.2, lambda: 1.0 };
    let (breakdown, grad) = hashing_loss_and_grad(&z, &q, &p);
    assert_eq!(breakdown.contrastive, 0.0);
    assert!(grad.as_slice().iter().all(|v| v.is_finite()));
}

#[test]
fn lambda_zero_makes_every_pair_positive_gracefully() {
    // λ = 0 (with non-negative q) makes Φ_i empty — same requirement.
    let mut r = rng::seeded(3);
    let z = rng::gauss_matrix(&mut r, 6, 4, 0.5);
    let mut q = Matrix::identity(6);
    for i in 0..6 {
        for j in 0..6 {
            if i != j {
                q[(i, j)] = 0.5;
            }
        }
    }
    let p = LossParams { alpha: 0.3, beta: 0.001, gamma: 0.2, lambda: 0.0 };
    let (breakdown, _) = hashing_loss_and_grad(&z, &q, &p);
    assert_eq!(breakdown.contrastive, 0.0);
}

#[test]
fn tiny_gamma_stays_finite() {
    // γ = 0.01 drives exp(ĥ/γ) to e^100-scale; the loss must remain finite
    // for |ĥ| ≤ 1 (f64 overflows at e^709).
    let mut r = rng::seeded(4);
    let z = rng::gauss_matrix(&mut r, 8, 4, 0.5);
    let mut q = Matrix::identity(8);
    for i in 0..8 {
        for j in 0..8 {
            if i != j {
                q[(i, j)] = if (i + j) % 2 == 0 { 0.9 } else { 0.1 };
            }
        }
    }
    let p = LossParams { alpha: 0.3, beta: 0.001, gamma: 0.01, lambda: 0.5 };
    let (breakdown, grad) = hashing_loss_and_grad(&z, &q, &p);
    assert!(breakdown.total.is_finite());
    assert!(grad.as_slice().iter().all(|v| v.is_finite()));
}

#[test]
fn zero_vector_codes_do_not_poison_gradients() {
    // A dead network output (all zeros) must not produce NaNs through the
    // cosine normalization.
    let z = Matrix::zeros(4, 3);
    let q = Matrix::identity(4);
    let p = LossParams { alpha: 0.2, beta: 0.001, gamma: 0.2, lambda: 0.5 };
    let (breakdown, grad) = hashing_loss_and_grad(&z, &q, &p);
    assert!(breakdown.total.is_finite());
    assert!(grad.as_slice().iter().all(|v| v.is_finite()));
}

#[test]
fn single_concept_vocabulary_works() {
    let ds = tiny();
    let pipeline = Pipeline::new(&ds, 7);
    let source = SimilaritySource::ConceptsRaw {
        vocab: vec!["cat".to_string()],
        template: PromptTemplate::PhotoOfThe,
    };
    let outcome = pipeline.build_similarity(&source, 3.0);
    // One concept ⇒ all distributions identical ⇒ all-ones similarity.
    assert!(outcome.q.as_slice().iter().all(|&v| (v - 1.0).abs() < 1e-9));
}

#[test]
fn duplicate_concepts_in_vocabulary_are_harmless() {
    let ds = tiny();
    let pipeline = Pipeline::new(&ds, 7);
    let mut vocab = vocab::nus_wide_81();
    vocab.push("cat".to_string()); // duplicate of an existing entry
    let source = SimilaritySource::ConceptsDenoised { vocab, template: PromptTemplate::PhotoOfThe };
    let outcome = pipeline.build_similarity(&source, 3.0);
    assert!(outcome.q.as_slice().iter().all(|v| v.is_finite()));
}

#[test]
fn invalid_config_is_rejected_before_training() {
    let mut r = rng::seeded(5);
    let x = rng::gauss_matrix(&mut r, 6, 4, 1.0);
    let q = Matrix::identity(6);
    let cfg = UhscmConfig { gamma: -1.0, ..UhscmConfig::test_profile() };
    let result =
        std::panic::catch_unwind(|| train_hashing_network(&x, &q, &cfg, Regularizer::Modified, 1));
    assert!(result.is_err(), "negative gamma must be rejected");
}

#[test]
fn asymmetric_q_is_consumed_without_panic() {
    // Q built by the generator is symmetric, but the trainer must tolerate
    // externally supplied (slightly asymmetric) matrices.
    let mut r = rng::seeded(6);
    let x = rng::gauss_matrix(&mut r, 8, 4, 1.0);
    let mut q = Matrix::identity(8);
    q[(0, 1)] = 0.9;
    q[(1, 0)] = 0.7; // asymmetric on purpose
    let cfg = UhscmConfig { bits: 4, epochs: 1, batch_size: 8, ..UhscmConfig::default() };
    let model = train_hashing_network(&x, &q, &cfg, Regularizer::Modified, 2);
    assert!(model.relaxed(&x).as_slice().iter().all(|v| v.is_finite()));
}
