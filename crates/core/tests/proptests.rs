//! Property-based tests for the UHSCM core algorithms.

use proptest::prelude::*;
use uhscm_core::loss::{hashing_loss_and_grad, LossParams};
use uhscm_core::similarity::similarity_from_distributions;
use uhscm_core::{concept_distributions, concept_frequencies, denoise_concepts, discard};
use uhscm_linalg::{rng, vecops, Matrix};

/// Random score matrices in the simulated CLIP range.
fn score_matrix() -> impl Strategy<Value = Matrix> {
    (2usize..30, 2usize..12).prop_flat_map(|(n, m)| {
        prop::collection::vec(0.0..0.5f64, n * m).prop_map(move |data| Matrix::from_vec(n, m, data))
    })
}

proptest! {
    #[test]
    fn distributions_are_rowwise_simplex(scores in score_matrix(), tau in 0.5..5.0f64) {
        let d = concept_distributions(&scores, tau);
        prop_assert_eq!(d.shape(), scores.shape());
        for i in 0..d.rows() {
            let row = d.row(i);
            prop_assert!((row.iter().sum::<f64>() - 1.0).abs() < 1e-9);
            prop_assert!(row.iter().all(|&p| (0.0..=1.0 + 1e-12).contains(&p)));
            // Argmax of the distribution equals argmax of the scores.
            prop_assert_eq!(vecops::argmax(row), vecops::argmax(scores.row(i)));
        }
    }

    #[test]
    fn frequencies_sum_to_n(scores in score_matrix()) {
        let d = concept_distributions(&scores, 3.0);
        let freq = concept_frequencies(&d);
        prop_assert_eq!(freq.iter().sum::<usize>(), d.rows());
    }

    #[test]
    fn denoise_never_empty_and_respects_eq5(scores in score_matrix()) {
        let d = concept_distributions(&scores, 3.0);
        let kept = denoise_concepts(&d);
        prop_assert!(!kept.is_empty());
        prop_assert!(kept.windows(2).all(|w| w[0] < w[1]));
        prop_assert!(kept.iter().all(|&j| j < d.cols()));
        // When more than one concept is kept, each satisfies Eq. 5.
        let freq = concept_frequencies(&d);
        if kept.len() > 1 {
            for &j in &kept {
                prop_assert!(!discard(freq[j], d.rows(), d.cols()));
            }
        }
    }

    /// Eq. 5 keeps exactly the integer band `⌈0.5·n/m⌉ ≤ f ≤ ⌊0.5·n⌋`.
    #[test]
    fn discard_keeps_exactly_the_integer_band(n in 1usize..200, m in 1usize..40) {
        let lower = (n + 2 * m - 1) / (2 * m); // ⌈n / (2m)⌉
        let upper = n / 2; // ⌊n / 2⌋
        for f in 0..=n {
            let kept = !discard(f, n, m);
            prop_assert_eq!(
                kept,
                (lower..=upper).contains(&f),
                "f={} n={} m={} band=[{}, {}]",
                f, n, m, lower, upper
            );
        }
    }

    /// When every image claims the same concept, Eq. 5 discards the whole
    /// vocabulary (f = n > n/2 for the claimed one, f = 0 < n/(2m) for the
    /// rest) and the fallback must keep exactly one valid concept.
    #[test]
    fn denoise_fallback_keeps_exactly_one(n in 1usize..40, m in 2usize..10, j in 0usize..10) {
        let j = j % m;
        let rows: Vec<Vec<f64>> = (0..n)
            .map(|_| {
                let mut row = vec![0.05 / m as f64; m];
                row[j] = 0.9;
                row
            })
            .collect();
        let d = Matrix::from_rows(&rows);
        let freq = concept_frequencies(&d);
        prop_assert!((0..m).all(|c| discard(freq[c], n, m)));
        let kept = denoise_concepts(&d);
        prop_assert_eq!(kept.len(), 1);
        prop_assert!(kept[0] < m);
    }

    #[test]
    fn similarity_matrix_is_valid_gram(scores in score_matrix()) {
        let d = concept_distributions(&scores, 3.0);
        let q = similarity_from_distributions(&d);
        let n = d.rows();
        prop_assert_eq!(q.shape(), (n, n));
        for i in 0..n {
            prop_assert!((q[(i, i)] - 1.0).abs() < 1e-9);
            for j in 0..n {
                prop_assert!((q[(i, j)] - q[(j, i)]).abs() < 1e-9);
                // Distributions are non-negative ⇒ cosines in [0, 1].
                prop_assert!((-1e-9..=1.0 + 1e-9).contains(&q[(i, j)]));
            }
        }
    }

    #[test]
    fn loss_gradient_is_descent_direction(
        seed in any::<u64>(),
        t in 4usize..12,
        k in 2usize..8,
        alpha in 0.0..0.5f64,
        beta in 0.0..0.1f64,
    ) {
        let mut r = rng::seeded(seed);
        let z = rng::gauss_matrix(&mut r, t, k, 0.5);
        let mut q = Matrix::identity(t);
        for i in 0..t {
            for j in (i + 1)..t {
                let v = if (i + j) % 3 == 0 { 0.9 } else { 0.1 };
                q[(i, j)] = v;
                q[(j, i)] = v;
            }
        }
        let p = LossParams { alpha, beta, gamma: 0.3, lambda: 0.5 };
        let (l0, grad) = hashing_loss_and_grad(&z, &q, &p);
        prop_assert!(l0.total.is_finite());
        prop_assert!(grad.as_slice().iter().all(|v| v.is_finite()));
        // A small step along −grad must not increase the loss.
        if grad.max_abs() > 1e-9 {
            let mut z2 = z.clone();
            z2.axpy(-1e-4 / grad.max_abs(), &grad);
            let (l1, _) = hashing_loss_and_grad(&z2, &q, &p);
            prop_assert!(l1.total <= l0.total + 1e-9, "{} -> {}", l0.total, l1.total);
        }
    }

    #[test]
    fn loss_breakdown_components_nonnegative(
        seed in any::<u64>(),
        t in 3usize..10,
    ) {
        let mut r = rng::seeded(seed);
        let z = rng::gauss_matrix(&mut r, t, 4, 0.7);
        let q = Matrix::identity(t);
        let p = LossParams { alpha: 0.2, beta: 0.01, gamma: 0.2, lambda: 0.5 };
        let (b, _) = hashing_loss_and_grad(&z, &q, &p);
        prop_assert!(b.similarity >= 0.0);
        prop_assert!(b.quantization >= 0.0);
        // The −log contrastive term is non-negative (probability ≤ 1).
        prop_assert!(b.contrastive >= -1e-12);
        prop_assert!((b.total - b.similarity - b.quantization - b.contrastive).abs() < 1e-9);
    }
}

proptest! {
    #[test]
    fn cosine_gram_parallel_matches_serial_bitwise(scores in score_matrix()) {
        use uhscm_core::similarity::cosine_gram;
        use uhscm_linalg::par;
        let serial = par::with_threads(1, || cosine_gram(&scores));
        for threads in [2usize, 3, 8] {
            let parallel = par::with_threads(threads, || cosine_gram(&scores));
            prop_assert_eq!(serial.as_slice(), parallel.as_slice());
        }
    }

    #[test]
    fn similarity_parallel_matches_serial_bitwise(scores in score_matrix(), tau in 0.5..5.0f64) {
        use uhscm_linalg::par;
        let d = concept_distributions(&scores, tau);
        let serial = par::with_threads(1, || similarity_from_distributions(&d));
        for threads in [2usize, 3, 8] {
            let parallel = par::with_threads(threads, || similarity_from_distributions(&d));
            prop_assert_eq!(serial.as_slice(), parallel.as_slice());
        }
    }
}
