//! Semantic concept denoising (§3.3.2, Eq. 4-5).
//!
//! A concept is kept only if the number of images for which it is the
//! *most probable* concept lies in `[0.5·n/m, 0.5·n]`: concepts claimed by
//! more than half the images cannot distinguish them, and concepts claimed
//! by almost no image are likely out-of-domain noise.

use uhscm_linalg::{vecops, Matrix};

/// Eq. 4: per-concept frequency `f(c_j)` — the number of images whose
/// argmax concept is `j`.
pub fn concept_frequencies(distributions: &Matrix) -> Vec<usize> {
    let mut freq = vec![0usize; distributions.cols()];
    for i in 0..distributions.rows() {
        freq[vecops::argmax(distributions.row(i))] += 1;
    }
    freq
}

/// Eq. 5: should concept with frequency `f` be discarded, given `n` images
/// and `m` concepts? Keeps `0.5·n/m ≤ f ≤ 0.5·n`.
pub fn discard(f: usize, n: usize, m: usize) -> bool {
    let f = f as f64;
    let n = n as f64;
    let m = m as f64;
    !(0.5 * n / m <= f && f <= 0.5 * n)
}

/// Apply Eq. 4-5: return the indices of retained concepts, in order.
///
/// If the criterion would discard *everything* (possible on pathological
/// inputs), the single most balanced concept is kept so downstream code
/// always has a non-empty vocabulary; the paper does not define this edge
/// case because it cannot occur at its data scales.
pub fn denoise_concepts(distributions: &Matrix) -> Vec<usize> {
    let n = distributions.rows();
    let m = distributions.cols();
    let freq = concept_frequencies(distributions);
    let kept: Vec<usize> = (0..m).filter(|&j| !discard(freq[j], n, m)).collect();
    if !kept.is_empty() {
        return kept;
    }
    // Fallback: keep the concept whose frequency is closest to n/m.
    let ideal = n as f64 / m as f64;
    let best = (0..m)
        .min_by(|&a, &b| {
            let da = (freq[a] as f64 - ideal).abs();
            let db = (freq[b] as f64 - ideal).abs();
            da.partial_cmp(&db).expect("denoise: concept-frequency gaps are finite by construction")
        })
        .expect("denoise fallback: the distribution matrix has at least one concept column");
    vec![best]
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Distribution matrix with specified argmax per image.
    fn dist_with_argmax(argmaxes: &[usize], m: usize) -> Matrix {
        let rows: Vec<Vec<f64>> = argmaxes
            .iter()
            .map(|&a| {
                let mut row = vec![0.1 / (m as f64 - 1.0); m];
                row[a] = 0.9;
                row
            })
            .collect();
        Matrix::from_rows(&rows)
    }

    #[test]
    fn frequencies_count_argmaxes() {
        let d = dist_with_argmax(&[0, 0, 1, 2, 2, 2], 4);
        assert_eq!(concept_frequencies(&d), vec![2, 1, 3, 0]);
    }

    #[test]
    fn discard_bounds_match_eq5() {
        // n=100, m=10: keep 5 ≤ f ≤ 50.
        assert!(discard(4, 100, 10));
        assert!(!discard(5, 100, 10));
        assert!(!discard(50, 100, 10));
        assert!(discard(51, 100, 10));
        assert!(discard(0, 100, 10));
        assert!(discard(100, 100, 10));
    }

    #[test]
    fn denoise_drops_dominant_and_absent_concepts() {
        // 10 images, 5 concepts: concept 0 claims 6 (> 0.5n = 5, drop),
        // concept 3 claims 0 (< 0.5 n/m = 1, drop), 1 and 2 balanced.
        let d = dist_with_argmax(&[0, 0, 0, 0, 0, 0, 1, 1, 2, 2], 5);
        assert_eq!(denoise_concepts(&d), vec![1, 2]);
    }

    #[test]
    fn denoise_keeps_balanced_vocabulary() {
        // Perfectly balanced argmaxes: everything kept.
        let d = dist_with_argmax(&[0, 1, 2, 3, 0, 1, 2, 3], 4);
        assert_eq!(denoise_concepts(&d), vec![0, 1, 2, 3]);
    }

    #[test]
    fn fallback_when_everything_discarded() {
        // 2 images, 2 concepts, both argmax concept 0: f = [2, 0];
        // upper bound 0.5n = 1 discards concept 0, lower bound 0.5 discards
        // concept 1 → fallback keeps the one closest to n/m = 1.
        let d = dist_with_argmax(&[0, 0], 2);
        assert_eq!(denoise_concepts(&d), vec![0]);
    }

    #[test]
    fn retained_indices_sorted_unique() {
        let d = dist_with_argmax(&[0, 1, 1, 2, 3, 3, 3, 3, 3, 3, 4, 4], 6);
        let kept = denoise_concepts(&d);
        assert!(kept.windows(2).all(|w| w[0] < w[1]));
    }
}
