//! Semantic concept mining (§3.3.1, Eq. 1-2).

use uhscm_linalg::{vecops, Matrix};

/// Convert an `n × m` image-text score matrix (Eq. 1) into per-image concept
/// distributions (Eq. 2): row `i` becomes `softmax(τ · s_i)` with
/// `τ = tau_factor · m`.
///
/// Each returned row is a probability distribution over the `m` concepts;
/// `d_ij` is the model's belief that image `i` contains concept `j`.
///
/// ```
/// use uhscm_core::concept_distributions;
/// use uhscm_linalg::Matrix;
///
/// // Two images scored against three concepts (CLIP-like score range).
/// let scores = Matrix::from_rows(&[vec![0.32, 0.21, 0.20], vec![0.20, 0.19, 0.30]]);
/// let d = concept_distributions(&scores, 3.0); // τ = 3m, the paper's setting
/// assert!((d.row(0).iter().sum::<f64>() - 1.0).abs() < 1e-12);
/// assert!(d[(0, 0)] > 0.5); // image 0 is confidently concept 0
/// ```
///
/// # Panics
///
/// Panics if `scores` has no concept columns or `tau_factor` is not
/// positive.
pub fn concept_distributions(scores: &Matrix, tau_factor: f64) -> Matrix {
    assert!(scores.cols() > 0, "no concepts to distribute over");
    assert!(tau_factor > 0.0, "temperature factor must be positive");
    let tau = tau_factor * scores.cols() as f64;
    let mut out = Matrix::zeros(scores.rows(), scores.cols());
    for i in 0..scores.rows() {
        let row = vecops::softmax_scaled(scores.row(i), tau);
        out.row_mut(i).copy_from_slice(&row);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rows_are_distributions() {
        let scores = Matrix::from_rows(&[vec![0.3, 0.25, 0.2], vec![0.2, 0.2, 0.31]]);
        let d = concept_distributions(&scores, 3.0);
        for row in d.iter_rows() {
            assert!((row.iter().sum::<f64>() - 1.0).abs() < 1e-12);
            assert!(row.iter().all(|&p| p >= 0.0));
        }
    }

    #[test]
    fn argmax_preserved() {
        let scores = Matrix::from_rows(&[vec![0.22, 0.31, 0.2], vec![0.33, 0.2, 0.21]]);
        let d = concept_distributions(&scores, 3.0);
        assert_eq!(vecops::argmax(d.row(0)), 1);
        assert_eq!(vecops::argmax(d.row(1)), 0);
    }

    #[test]
    fn higher_tau_factor_sharpens() {
        let scores = Matrix::from_rows(&[vec![0.30, 0.25]]);
        let soft = concept_distributions(&scores, 1.0);
        let sharp = concept_distributions(&scores, 4.0);
        assert!(sharp[(0, 0)] > soft[(0, 0)]);
    }

    #[test]
    fn temperature_scales_with_concept_count() {
        // τ = factor · m: the same score gap is sharpened more when the
        // vocabulary is larger.
        let two = Matrix::from_rows(&[vec![0.30, 0.25]]);
        let four = Matrix::from_rows(&[vec![0.30, 0.25, 0.0, 0.0]]);
        let d2 = concept_distributions(&two, 1.0);
        let d4 = concept_distributions(&four, 1.0);
        // Gap between top-2 masses, renormalized to the top-2 only.
        let g2 = d2[(0, 0)] / (d2[(0, 0)] + d2[(0, 1)]);
        let g4 = d4[(0, 0)] / (d4[(0, 0)] + d4[(0, 1)]);
        assert!(g4 > g2);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_tau_rejected() {
        let scores = Matrix::from_rows(&[vec![0.1, 0.2]]);
        let _ = concept_distributions(&scores, 0.0);
    }
}
