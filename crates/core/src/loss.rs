//! The UHSCM hashing objective (Eq. 7-11) and CIB's contrastive loss
//! (Eq. 10, for the `UHSCM_CL` ablation).
//!
//! The full objective over a mini-batch of relaxed codes `Z` (network
//! outputs, `t × k`) with the batch's similarity sub-matrix `Q` is
//!
//! ```text
//! L = 1/t² Σ_ij (ĥ_ij − q_ij)²                     (similarity, Eq. 7)
//!   + β/t Σ_i ‖z_i − sgn(z_i)‖²                     (quantization)
//!   + α/t Σ_i Σ_{j∈Ψ_i} 1/|Ψ_i| · ℓ_c(i, j)        (contrastive, Eq. 8)
//! ```
//!
//! with `ĥ_ij = cos(z_i, z_j)`, `Ψ_i = {j ≠ i | q_ij ≥ λ}` and
//! `Φ_i = {j ≠ i | q_ij < λ}`.
//!
//! **Faithful-to-intent correction.** Eq. 8 as printed is the bare softmax
//! fraction `e^{ĥ/γ} / (e^{ĥ/γ} + Σ e^{ĥ/γ})`; *minimizing* that fraction
//! would push similar pairs apart, contradicting the paper's own description
//! ("the Hamming similarity between b_i and b_j will be larger than…"). As
//! in every contrastive objective (InfoNCE, NT-Xent, and CIB's published
//! code), the intended term is the negative log of the fraction, which is
//! what this module implements — for both `L_c` and `J_c`. DESIGN.md records
//! the substitution.

use uhscm_linalg::Matrix;
use uhscm_nn::pairwise::{cosine_grad, cosine_matrix};

/// Weights of the three loss terms for one batch.
#[derive(Debug, Clone, Copy)]
pub struct LossParams {
    pub alpha: f64,
    pub beta: f64,
    pub gamma: f64,
    pub lambda: f64,
}

/// Loss values per term (for logging and the ablation harness).
#[derive(Debug, Clone, Copy, Default)]
pub struct LossBreakdown {
    pub total: f64,
    pub similarity: f64,
    pub quantization: f64,
    pub contrastive: f64,
}

/// Full Eq. 11 loss and its gradient `dL/dZ` for a batch.
///
/// # Panics
/// Panics if `q` is not `t × t` for a `t × k` batch.
pub fn hashing_loss_and_grad(z: &Matrix, q: &Matrix, p: &LossParams) -> (LossBreakdown, Matrix) {
    let t = z.rows();
    assert_eq!(q.shape(), (t, t), "batch similarity must be t × t");
    let (h, norms) = cosine_matrix(z);
    let mut g = Matrix::zeros(t, t); // dL/dĥ

    // --- similarity term (Eq. 7) ---
    let mut loss_s = 0.0;
    let inv_t2 = 1.0 / (t * t) as f64;
    for i in 0..t {
        for j in 0..t {
            let e = h[(i, j)] - q[(i, j)];
            loss_s += e * e * inv_t2;
            if i != j {
                g[(i, j)] += 2.0 * e * inv_t2;
            }
        }
    }

    // --- modified contrastive term (Eq. 8, -log form) ---
    let mut loss_c = 0.0;
    if p.alpha > 0.0 {
        let inv_gamma = 1.0 / p.gamma;
        for i in 0..t {
            let psi: Vec<usize> = (0..t).filter(|&j| j != i && q[(i, j)] >= p.lambda).collect();
            let phi: Vec<usize> = (0..t).filter(|&j| j != i && q[(i, j)] < p.lambda).collect();
            if psi.is_empty() || phi.is_empty() {
                continue;
            }
            let b: f64 = phi.iter().map(|&l| (h[(i, l)] * inv_gamma).exp()).sum();
            let w = p.alpha / (t as f64 * psi.len() as f64);
            let mut inv_denom_sum = 0.0;
            for &j in &psi {
                let a = (h[(i, j)] * inv_gamma).exp();
                let denom = a + b;
                loss_c += w * (denom.ln() - h[(i, j)] * inv_gamma);
                // d/dĥ_ij of (ln(A+B) − ĥ_ij/γ) = (A/(A+B) − 1)/γ.
                g[(i, j)] += w * inv_gamma * (a / denom - 1.0);
                inv_denom_sum += 1.0 / denom;
            }
            for &l in &phi {
                // d/dĥ_il: each positive term contributes e^{ĥ_il/γ}/(A_j+B).
                let e_l = (h[(i, l)] * inv_gamma).exp();
                g[(i, l)] += w * inv_gamma * e_l * inv_denom_sum;
            }
        }
    }

    // --- gradient of the cosine terms back to Z ---
    let mut grad = cosine_grad(z, &h, &norms, &g);

    // --- quantization term ---
    let mut loss_q = 0.0;
    if p.beta > 0.0 {
        let scale = p.beta / t as f64;
        for i in 0..t {
            let gi = grad.row_mut(i);
            for (col, &v) in z.row(i).iter().enumerate() {
                let b = if v > 0.0 { 1.0 } else { -1.0 };
                let d = v - b;
                loss_q += scale * d * d;
                gi[col] += 2.0 * scale * d;
            }
        }
    }

    uhscm_linalg::check_scalar_finite!("hashing_loss", "similarity term (Eq. 7)", loss_s);
    uhscm_linalg::check_scalar_finite!("hashing_loss", "contrastive term (Eq. 8)", loss_c);
    uhscm_linalg::check_scalar_finite!("hashing_loss", "quantization term", loss_q);
    uhscm_linalg::check_finite!("hashing_loss", "dL/dZ", &grad);

    let breakdown = LossBreakdown {
        total: loss_s + loss_q + loss_c,
        similarity: loss_s,
        quantization: loss_q,
        contrastive: loss_c,
    };
    (breakdown, grad)
}

/// Loss value only (used by finite-difference gradient checks).
pub fn hashing_loss(z: &Matrix, q: &Matrix, p: &LossParams) -> f64 {
    hashing_loss_and_grad(z, q, p).0.total
}

/// CIB's original contrastive loss `J_c` (Eq. 10, -log form) over two
/// augmented views of the same batch. Returns the loss and the gradients
/// with respect to each view.
///
/// Delegates to the shared two-view contrastive kernel in
/// [`uhscm_nn::pairwise`], which the CIB baseline also uses.
pub fn cib_contrastive_loss_and_grad(
    z1: &Matrix,
    z2: &Matrix,
    gamma: f64,
) -> (f64, Matrix, Matrix) {
    let (jc, g1, g2) = uhscm_nn::pairwise::two_view_contrastive_loss_and_grad(z1, z2, gamma);
    uhscm_linalg::check_scalar_finite!("cib_contrastive_loss", "J_c (Eq. 10)", jc);
    uhscm_linalg::check_finite!("cib_contrastive_loss", "dJ_c/dZ1", &g1);
    uhscm_linalg::check_finite!("cib_contrastive_loss", "dJ_c/dZ2", &g2);
    (jc, g1, g2)
}

/// Loss value only, for gradient checks.
pub fn cib_contrastive_loss(z1: &Matrix, z2: &Matrix, gamma: f64) -> f64 {
    cib_contrastive_loss_and_grad(z1, z2, gamma).0
}

#[cfg(test)]
mod tests {
    use super::*;
    use uhscm_linalg::rng;

    fn params() -> LossParams {
        LossParams { alpha: 0.2, beta: 0.001, gamma: 0.2, lambda: 0.6 }
    }

    /// Random batch with a similarity matrix that has both positives and
    /// negatives under λ.
    fn batch(seed: u64, t: usize, k: usize) -> (Matrix, Matrix) {
        let mut r = rng::seeded(seed);
        let z = rng::gauss_matrix(&mut r, t, k, 0.5);
        let mut q = Matrix::zeros(t, t);
        for i in 0..t {
            q[(i, i)] = 1.0;
            for j in (i + 1)..t {
                let v = if (i + j) % 3 == 0 { 0.9 } else { 0.2 };
                q[(i, j)] = v;
                q[(j, i)] = v;
            }
        }
        (z, q)
    }

    /// Central finite differences on the full loss.
    fn numeric_grad(z: &Matrix, q: &Matrix, p: &LossParams) -> Matrix {
        let eps = 1e-6;
        let mut grad = Matrix::zeros(z.rows(), z.cols());
        for i in 0..z.rows() {
            for j in 0..z.cols() {
                let mut zp = z.clone();
                zp[(i, j)] += eps;
                let lp = hashing_loss(&zp, q, p);
                let mut zm = z.clone();
                zm[(i, j)] -= eps;
                let lm = hashing_loss(&zm, q, p);
                grad[(i, j)] = (lp - lm) / (2.0 * eps);
            }
        }
        grad
    }

    #[test]
    fn gradient_matches_finite_differences() {
        let (z, q) = batch(1, 8, 5);
        let p = params();
        let (_, analytic) = hashing_loss_and_grad(&z, &q, &p);
        let numeric = numeric_grad(&z, &q, &p);
        let err = analytic.sub(&numeric).max_abs();
        let scale = numeric.max_abs().max(1e-8);
        assert!(err / scale < 1e-4, "relative grad error {}", err / scale);
    }

    #[test]
    fn gradient_each_term_isolated() {
        let (z, q) = batch(2, 6, 4);
        for p in [
            LossParams { alpha: 0.0, beta: 0.0, gamma: 0.2, lambda: 0.6 }, // L_s only
            LossParams { alpha: 0.0, beta: 0.01, gamma: 0.2, lambda: 0.6 }, // + quantization
            LossParams { alpha: 0.5, beta: 0.0, gamma: 0.3, lambda: 0.6 }, // + contrastive
        ] {
            let (_, analytic) = hashing_loss_and_grad(&z, &q, &p);
            let numeric = numeric_grad(&z, &q, &p);
            let err = analytic.sub(&numeric).max_abs() / numeric.max_abs().max(1e-8);
            assert!(err < 1e-4, "relative grad error {err} for {p:?}");
        }
    }

    #[test]
    fn perfect_codes_minimize_similarity_term() {
        // Codes whose cosine equals q exactly → L_s = 0.
        let z = Matrix::from_rows(&[vec![1.0, 1.0], vec![1.0, 1.0], vec![-1.0, -1.0]]);
        let mut q = Matrix::zeros(3, 3);
        for i in 0..3 {
            q[(i, i)] = 1.0;
        }
        q[(0, 1)] = 1.0;
        q[(1, 0)] = 1.0;
        q[(0, 2)] = -1.0;
        q[(2, 0)] = -1.0;
        q[(1, 2)] = -1.0;
        q[(2, 1)] = -1.0;
        let p = LossParams { alpha: 0.0, beta: 0.0, gamma: 0.2, lambda: 0.6 };
        let (b, _) = hashing_loss_and_grad(&z, &q, &p);
        assert!(b.similarity < 1e-12);
    }

    #[test]
    fn quantization_zero_at_corners() {
        let z = Matrix::from_rows(&[vec![1.0, -1.0], vec![-1.0, 1.0]]);
        let q = Matrix::identity(2);
        let p = LossParams { alpha: 0.0, beta: 0.5, gamma: 0.2, lambda: 0.6 };
        let (b, _) = hashing_loss_and_grad(&z, &q, &p);
        assert!(b.quantization < 1e-12);
        // And positive away from corners.
        let z2 = Matrix::from_rows(&[vec![0.3, -0.2], vec![-0.1, 0.4]]);
        let (b2, _) = hashing_loss_and_grad(&z2, &q, &p);
        assert!(b2.quantization > 0.0);
    }

    #[test]
    fn contrastive_lower_when_positives_aligned() {
        // Three items: (0,1) similar, 2 dissimilar. Contrastive loss must be
        // lower when z_0 ≈ z_1 and both far from z_2.
        let mut q = Matrix::identity(3);
        q[(0, 1)] = 0.9;
        q[(1, 0)] = 0.9;
        let p = LossParams { alpha: 1.0, beta: 0.0, gamma: 0.2, lambda: 0.5 };
        let good = Matrix::from_rows(&[vec![1.0, 1.0], vec![1.0, 0.9], vec![-1.0, -1.0]]);
        let bad = Matrix::from_rows(&[vec![1.0, 1.0], vec![-1.0, -1.0], vec![1.0, 0.9]]);
        let (lg, _) = hashing_loss_and_grad(&good, &q, &p);
        let (lb, _) = hashing_loss_and_grad(&bad, &q, &p);
        assert!(lg.contrastive < lb.contrastive);
    }

    #[test]
    fn descent_direction_reduces_loss() {
        let (z, q) = batch(3, 10, 6);
        let p = params();
        let (l0, grad) = hashing_loss_and_grad(&z, &q, &p);
        let mut z2 = z.clone();
        z2.axpy(-0.01, &grad);
        let l1 = hashing_loss(&z2, &q, &p);
        assert!(l1 < l0.total, "step along -grad increased loss: {l0:?} -> {l1}");
    }

    #[test]
    fn cib_gradient_matches_finite_differences() {
        let mut r = rng::seeded(5);
        let z1 = rng::gauss_matrix(&mut r, 5, 4, 0.5);
        let z2 = rng::gauss_matrix(&mut r, 5, 4, 0.5);
        let gamma = 0.3;
        let (_, g1, g2) = cib_contrastive_loss_and_grad(&z1, &z2, gamma);
        let eps = 1e-6;
        for (view, analytic) in [(0, &g1), (1, &g2)] {
            for i in 0..5 {
                for j in 0..4 {
                    let perturb = |delta: f64| {
                        let mut a = z1.clone();
                        let mut b = z2.clone();
                        if view == 0 {
                            a[(i, j)] += delta;
                        } else {
                            b[(i, j)] += delta;
                        }
                        cib_contrastive_loss(&a, &b, gamma)
                    };
                    let numeric = (perturb(eps) - perturb(-eps)) / (2.0 * eps);
                    let denom = numeric.abs().max(analytic[(i, j)].abs()).max(1e-8);
                    assert!(
                        (numeric - analytic[(i, j)]).abs() / denom < 1e-4,
                        "view {view} ({i},{j}): numeric {numeric} vs {}",
                        analytic[(i, j)]
                    );
                }
            }
        }
    }

    #[test]
    fn cib_loss_lower_for_aligned_views() {
        let mut r = rng::seeded(8);
        let z = rng::gauss_matrix(&mut r, 6, 4, 1.0);
        let aligned = cib_contrastive_loss(&z, &z, 0.3);
        let shuffled = {
            let rows: Vec<Vec<f64>> = (0..6).map(|i| z.row((i + 1) % 6).to_vec()).collect();
            Matrix::from_rows(&rows)
        };
        let misaligned = cib_contrastive_loss(&z, &shuffled, 0.3);
        assert!(aligned < misaligned);
    }

    #[test]
    #[should_panic(expected = "t × t")]
    fn mismatched_q_rejected() {
        let z = Matrix::zeros(3, 2);
        let q = Matrix::zeros(2, 2);
        let _ = hashing_loss_and_grad(&z, &q, &params());
    }
}
