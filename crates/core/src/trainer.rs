//! Algorithm 1: learning the hashing network.

use crate::loss::{
    cib_contrastive_loss_and_grad, hashing_loss_and_grad, LossBreakdown, LossParams,
};
use crate::UhscmConfig;
use rand::Rng;
use uhscm_eval::BitCodes;
use uhscm_linalg::{rng, Matrix};
use uhscm_nn::{Mlp, Sgd};

/// Which contrastive regularizer accompanies the ℓ2 + quantization core.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Regularizer {
    /// The paper's modified contrastive loss `L_c` (full UHSCM).
    Modified,
    /// CIB's original `J_c` over two augmented views (`UHSCM_CL`).
    OriginalCib,
    /// No contrastive term (`UHSCM_w/o MCL`).
    None,
}

/// A trained hashing network.
#[derive(Debug, Clone)]
pub struct TrainedHasher {
    mlp: Mlp,
    /// Mean loss per epoch, for diagnostics and the convergence tests.
    pub loss_history: Vec<LossBreakdown>,
}

impl TrainedHasher {
    /// Relaxed codes `Z ∈ [-1, 1]^{n × k}` for a feature matrix.
    pub fn relaxed(&self, features: &Matrix) -> Matrix {
        self.mlp.infer(features)
    }

    /// Binary codes `B = sgn(Z)`, bit-packed.
    pub fn encode(&self, features: &Matrix) -> BitCodes {
        BitCodes::from_real(&self.relaxed(features))
    }

    /// Code length in bits.
    pub fn bits(&self) -> usize {
        self.mlp.output_dim()
    }

    /// The underlying network (e.g. for persistence via `Mlp::save`).
    pub fn network(&self) -> &Mlp {
        &self.mlp
    }
}

/// Train the hashing network of Algorithm 1.
///
/// * `features` — `n × d` inputs to the network (the simulated VGG backbone
///   output for the training images),
/// * `q` — the `n × n` semantic similarity matrix built by the generator,
/// * `regularizer` — which variant of the contrastive term to use.
///
/// # Panics
/// Panics if the config is invalid or shapes disagree.
pub fn train_hashing_network(
    features: &Matrix,
    q: &Matrix,
    config: &UhscmConfig,
    regularizer: Regularizer,
    seed: u64,
) -> TrainedHasher {
    config.validate().expect("invalid UHSCM configuration");
    let n = features.rows();
    assert_eq!(q.shape(), (n, n), "similarity matrix must be n × n");
    assert!(n >= 2, "need at least two training items");

    let mut r = rng::seeded(seed ^ 0x415c_u64);
    let mut mlp = Mlp::hashing_network(features.cols(), &config.hidden, config.bits, &mut r);
    let mut sgd = Sgd::new(config.learning_rate, config.momentum, config.weight_decay);
    let params = LossParams {
        alpha: config.alpha,
        beta: config.beta,
        gamma: config.gamma,
        lambda: config.lambda,
    };
    // For the Modified/None cases the contrastive weight is folded into the
    // shared loss function; None simply zeroes it.
    let base_params = match regularizer {
        Regularizer::Modified => params,
        Regularizer::OriginalCib | Regularizer::None => LossParams { alpha: 0.0, ..params },
    };

    let mut history = Vec::with_capacity(config.epochs);
    for epoch in 0..config.epochs {
        let order = rng::permutation(&mut r, n);
        let mut epoch_loss = LossBreakdown::default();
        let mut batches = 0usize;
        // Epoch telemetry accumulators; only filled when tracing is on.
        let mut grad_norm_sum = 0.0;
        let mut saturation_sum = 0.0;
        let mut balance_sum = 0.0;
        for chunk in order.chunks(config.batch_size) {
            if chunk.len() < 2 {
                continue; // pairwise losses need at least two items
            }
            let x = features.select_rows(chunk);
            let qb = sub_similarity(q, chunk);

            let z = mlp.infer(&x);
            if uhscm_obs::enabled() {
                saturation_sum += tanh_saturation(&z);
                balance_sum += bit_balance(&z);
            }
            let (mut breakdown, mut grad) = hashing_loss_and_grad(&z, &qb, &base_params);

            match regularizer {
                Regularizer::Modified | Regularizer::None => {
                    let _ = mlp.forward(&x);
                    mlp.backward(&grad);
                }
                Regularizer::OriginalCib => {
                    // Two augmented views (input-noise augmentation stands in
                    // for the paper's image augmentations). J_c's instance-
                    // discrimination gradient is concentrated (one positive
                    // per anchor vs. L_s's 1/t² pair weights), so its weight
                    // is scaled down to keep the terms comparable — without
                    // this the repulsion between genuinely similar items
                    // overwhelms L_s, which the paper's pretrained backbone
                    // does not suffer from.
                    let alpha = 0.08 * config.alpha;
                    let x2 = augment(&x, &mut r);
                    let z2 = mlp.infer(&x2);
                    let (jc, g1, g2) = cib_contrastive_loss_and_grad(&z, &z2, config.gamma);
                    breakdown.contrastive = alpha * jc;
                    breakdown.total += breakdown.contrastive;
                    grad.axpy(alpha, &g1);
                    let mut grad2 = g2;
                    grad2.scale(alpha);
                    let _ = mlp.forward(&x2);
                    mlp.backward(&grad2);
                    let _ = mlp.forward(&x);
                    mlp.backward(&grad);
                }
            }
            if uhscm_obs::enabled() {
                grad_norm_sum += frobenius(&mlp.flat_grads());
            }
            sgd.step(&mut mlp);
            epoch_loss.total += breakdown.total;
            epoch_loss.similarity += breakdown.similarity;
            epoch_loss.quantization += breakdown.quantization;
            epoch_loss.contrastive += breakdown.contrastive;
            batches += 1;
        }
        if batches > 0 {
            let inv = 1.0 / batches as f64;
            epoch_loss.total *= inv;
            epoch_loss.similarity *= inv;
            epoch_loss.quantization *= inv;
            epoch_loss.contrastive *= inv;
        }
        if uhscm_obs::enabled() && batches > 0 {
            use uhscm_obs::sink::Field;
            let inv = 1.0 / batches as f64;
            uhscm_obs::sink::emit(
                "epoch",
                &[
                    ("epoch", Field::U64(epoch as u64)),
                    ("loss_total", Field::F64(epoch_loss.total)),
                    ("loss_similarity", Field::F64(epoch_loss.similarity)),
                    ("loss_quantization", Field::F64(epoch_loss.quantization)),
                    ("loss_contrastive", Field::F64(epoch_loss.contrastive)),
                    ("grad_norm", Field::F64(grad_norm_sum * inv)),
                    ("tanh_saturation", Field::F64(saturation_sum * inv)),
                    ("bit_balance", Field::F64(balance_sum * inv)),
                ],
            );
            uhscm_obs::registry::counter_add("train.epochs", 1);
            uhscm_obs::registry::histogram_record("train.epoch.loss_total", epoch_loss.total);
        }
        history.push(epoch_loss);
        // End-of-epoch audit: every parameter must still be finite, so a
        // divergence is pinned to the epoch where it happened.
        #[cfg(feature = "checked")]
        for (i, layer) in mlp.layers().iter().enumerate() {
            let op = format!("train_hashing_network (epoch {epoch})");
            uhscm_linalg::checked::assert_matrix_finite(
                &op,
                &format!("layer {i} weight"),
                &layer.weight,
            );
            uhscm_linalg::checked::assert_slice_finite(
                &op,
                &format!("layer {i} bias"),
                &layer.bias,
            );
        }
    }
    TrainedHasher { mlp, loss_history: history }
}

/// Extract the `|idx| × |idx|` sub-block of the similarity matrix.
fn sub_similarity(q: &Matrix, idx: &[usize]) -> Matrix {
    let t = idx.len();
    let mut out = Matrix::zeros(t, t);
    for (a, &i) in idx.iter().enumerate() {
        // Batch indices come from the sampler, which draws from 0..n, so
        // every `j` is in range; the `get` keeps this total regardless.
        let src = q.row(i);
        for (slot, &j) in out.row_mut(a).iter_mut().zip(idx) {
            *slot = src.get(j).copied().unwrap_or_default();
        }
    }
    out
}

/// Frobenius norm of a flat parameter-gradient vector (telemetry only).
fn frobenius(v: &[f64]) -> f64 {
    v.iter().map(|g| g * g).sum::<f64>().sqrt()
}

/// Fraction of relaxed code entries saturated past |z| > 0.9 — high values
/// mean the tanh head has committed to its corners (telemetry only).
fn tanh_saturation(z: &Matrix) -> f64 {
    let total = z.as_slice().len();
    if total == 0 {
        return 0.0;
    }
    let sat = z.as_slice().iter().filter(|v| v.abs() > 0.9).count();
    sat as f64 / total as f64
}

/// Mean over bits of |Σ_i sgn(z_ik)| / n — 0 means every bit splits the
/// batch evenly (the balanced-bit ideal), 1 means a constant bit
/// (telemetry only).
fn bit_balance(z: &Matrix) -> f64 {
    let (rows, cols) = z.shape();
    if rows == 0 || cols == 0 {
        return 0.0;
    }
    let mut signed = vec![0i64; cols];
    for i in 0..rows {
        for (acc, &v) in signed.iter_mut().zip(z.row(i)) {
            *acc += if v > 0.0 { 1 } else { -1 };
        }
    }
    let acc: f64 = signed.iter().map(|s| s.unsigned_abs() as f64 / rows as f64).sum();
    acc / cols as f64
}

/// Gaussian input-noise augmentation (norm ≈ 0.1 of a unit feature).
fn augment(x: &Matrix, r: &mut impl Rng) -> Matrix {
    let sigma = 0.1 / (x.cols() as f64).sqrt();
    let mut out = x.clone();
    for v in out.as_mut_slice() {
        *v += sigma * rng::gauss(r);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use uhscm_linalg::vecops;

    /// Toy problem: two feature clusters; Q says "same cluster ⇒ similar".
    fn toy(n_per: usize, d: usize, seed: u64) -> (Matrix, Matrix, Vec<usize>) {
        let mut r = rng::seeded(seed);
        let mut rows = Vec::new();
        let mut labels = Vec::new();
        for c in 0..2 {
            for _ in 0..n_per {
                let mut v = rng::gauss_vec(&mut r, d, 0.15);
                v[c] += 1.0;
                vecops::normalize(&mut v);
                rows.push(v);
                labels.push(c);
            }
        }
        let features = Matrix::from_rows(&rows);
        let n = 2 * n_per;
        let mut q = Matrix::zeros(n, n);
        for i in 0..n {
            for j in 0..n {
                q[(i, j)] = if labels[i] == labels[j] { 1.0 } else { 0.0 };
            }
        }
        (features, q, labels)
    }

    fn quick_config() -> UhscmConfig {
        UhscmConfig {
            bits: 8,
            epochs: 30,
            batch_size: 16,
            learning_rate: 0.05,
            ..UhscmConfig::default()
        }
    }

    #[test]
    fn loss_decreases_over_training() {
        let (x, q, _) = toy(20, 8, 1);
        let model = train_hashing_network(&x, &q, &quick_config(), Regularizer::Modified, 3);
        let first = model.loss_history.first().unwrap().total;
        let last = model.loss_history.last().unwrap().total;
        assert!(last < first, "loss did not decrease: {first} -> {last}");
    }

    #[test]
    fn codes_separate_clusters() {
        let (x, q, labels) = toy(20, 8, 2);
        let model = train_hashing_network(&x, &q, &quick_config(), Regularizer::Modified, 4);
        let codes = model.encode(&x);
        // Mean intra-cluster Hamming distance must be far below inter.
        let mut intra = (0.0, 0);
        let mut inter = (0.0, 0);
        for i in 0..codes.len() {
            for j in (i + 1)..codes.len() {
                let d = codes.hamming(i, &codes, j) as f64;
                if labels[i] == labels[j] {
                    intra.0 += d;
                    intra.1 += 1;
                } else {
                    inter.0 += d;
                    inter.1 += 1;
                }
            }
        }
        let intra_mean = intra.0 / intra.1 as f64;
        let inter_mean = inter.0 / inter.1 as f64;
        assert!(
            inter_mean > intra_mean + 1.0,
            "codes not separated: intra {intra_mean} vs inter {inter_mean}"
        );
    }

    #[test]
    fn deterministic_under_seed() {
        let (x, q, _) = toy(10, 6, 5);
        let cfg = UhscmConfig { epochs: 5, ..quick_config() };
        let a = train_hashing_network(&x, &q, &cfg, Regularizer::Modified, 9);
        let b = train_hashing_network(&x, &q, &cfg, Regularizer::Modified, 9);
        let za = a.relaxed(&x);
        let zb = b.relaxed(&x);
        assert_eq!(za.as_slice(), zb.as_slice());
    }

    #[test]
    fn all_regularizers_train() {
        let (x, q, _) = toy(10, 6, 6);
        let cfg = UhscmConfig { epochs: 5, ..quick_config() };
        for reg in [Regularizer::Modified, Regularizer::OriginalCib, Regularizer::None] {
            let model = train_hashing_network(&x, &q, &cfg, reg, 11);
            assert_eq!(model.bits(), cfg.bits);
            let z = model.relaxed(&x);
            assert!(z.as_slice().iter().all(|v| v.is_finite()));
        }
    }

    #[test]
    fn quantization_pushes_codes_to_corners() {
        let (x, q, _) = toy(15, 6, 7);
        let weak = UhscmConfig { beta: 0.0, epochs: 40, ..quick_config() };
        let strong = UhscmConfig { beta: 0.5, epochs: 40, ..quick_config() };
        let mean_abs = |cfg: &UhscmConfig| {
            let m = train_hashing_network(&x, &q, cfg, Regularizer::None, 13);
            let z = m.relaxed(&x);
            z.as_slice().iter().map(|v| v.abs()).sum::<f64>() / z.as_slice().len() as f64
        };
        assert!(mean_abs(&strong) > mean_abs(&weak));
    }

    #[test]
    #[should_panic(expected = "n × n")]
    fn shape_mismatch_rejected() {
        let x = Matrix::zeros(4, 3);
        let q = Matrix::zeros(3, 3);
        let _ = train_hashing_network(&x, &q, &quick_config(), Regularizer::None, 1);
    }
}
