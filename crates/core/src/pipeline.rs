//! End-to-end UHSCM pipeline: dataset → similarity matrix → trained codes.
//!
//! Wires together the simulated VLP model (`uhscm-vlp`), the semantic
//! similarity generator (steps 2-5 of Algorithm 1) and the hashing-network
//! trainer (steps 6-13), covering the full model *and* every similarity
//! construction the ablation study compares.

use crate::similarity::{mean_similarity, similarity_from_distributions, similarity_from_features};
pub use crate::trainer::Regularizer;
use crate::trainer::{train_hashing_network, TrainedHasher};
use crate::{concept_distributions, denoise_concepts, UhscmConfig};
use uhscm_data::{share_label, vocab, Dataset};
use uhscm_eval::{mean_average_precision, BitCodes, HammingRanker};
use uhscm_linalg::{kmeans, rng, vecops, Matrix};
use uhscm_vlp::{PromptTemplate, SimClip, VggFeatures};

/// How the semantic similarity matrix `Q` is constructed.
#[derive(Debug, Clone)]
pub enum SimilaritySource {
    /// Full UHSCM: mine over `vocab`, denoise (Eq. 4-5), re-mine, cosine.
    ConceptsDenoised { vocab: Vec<String>, template: PromptTemplate },
    /// `UHSCM_w/o de`: skip denoising (Eq. 3 directly).
    ConceptsRaw { vocab: Vec<String>, template: PromptTemplate },
    /// `UHSCM_cn`: k-means the concept prompt embeddings into `clusters`
    /// groups and mine over the cluster centroids.
    ConceptsClustered { vocab: Vec<String>, template: PromptTemplate, clusters: usize },
    /// `UHSCM_avg`: average the denoised similarity matrices of several
    /// templates.
    ConceptsAveraged { vocab: Vec<String>, templates: Vec<PromptTemplate> },
    /// `UHSCM_IF`: cosine similarity of raw VLP image features.
    ClipFeatures,
}

impl Default for SimilaritySource {
    /// The paper's default: NUS-WIDE-81 vocabulary, "a photo of the {c}".
    fn default() -> Self {
        SimilaritySource::ConceptsDenoised {
            vocab: vocab::nus_wide_81(),
            template: PromptTemplate::PhotoOfThe,
        }
    }
}

/// Result of similarity construction, including what survived denoising.
#[derive(Debug, Clone)]
pub struct SimilarityOutcome {
    /// The `n × n` semantic similarity matrix over the training items.
    pub q: Matrix,
    /// Names of retained concepts (when concept mining was used).
    pub kept_concepts: Option<Vec<String>>,
}

/// A dataset bound to frozen VLP and feature-extraction checkpoints.
pub struct Pipeline<'a> {
    dataset: &'a Dataset,
    clip: SimClip,
    vgg: VggFeatures,
    /// Cached backbone features of the training split.
    train_features: Matrix,
    /// Cached latents of the training split (VLP input).
    train_latents: Matrix,
    seed: u64,
}

impl<'a> Pipeline<'a> {
    /// Bind `dataset` to VLP/VGG checkpoints derived from `seed`.
    pub fn new(dataset: &'a Dataset, seed: u64) -> Self {
        let latent_dim = dataset.latents.cols();
        let clip = SimClip::with_defaults(latent_dim, seed ^ 0xc11b);
        let vgg = VggFeatures::with_defaults(latent_dim, seed ^ 0x7667);
        let train_latents = dataset.latents_of(&dataset.split.train);
        let train_features = vgg.extract(&train_latents);
        Self { dataset, clip, vgg, train_features, train_latents, seed }
    }

    /// The bound dataset.
    pub fn dataset(&self) -> &Dataset {
        self.dataset
    }

    /// The simulated CLIP checkpoint.
    pub fn clip(&self) -> &SimClip {
        &self.clip
    }

    /// Backbone (simulated VGG) features for arbitrary item indices.
    pub fn features_of(&self, indices: &[usize]) -> Matrix {
        self.vgg.extract(&self.dataset.latents_of(indices))
    }

    /// Backbone features of the training split (cached).
    pub fn train_features(&self) -> &Matrix {
        &self.train_features
    }

    /// Build the semantic similarity matrix per `source` (steps 2-5 of
    /// Algorithm 1 or the relevant ablation).
    ///
    /// # Panics
    ///
    /// Panics if an ablation source is misconfigured: fewer than two
    /// clusters for `ConceptsClustered`, or an empty template list for
    /// `PromptAverage`.
    pub fn build_similarity(
        &self,
        source: &SimilaritySource,
        tau_factor: f64,
    ) -> SimilarityOutcome {
        let _span = uhscm_obs::span("build_similarity");
        match source {
            SimilaritySource::ConceptsDenoised { vocab, template } => {
                let (scores, d) = {
                    let _s = uhscm_obs::span("score_concepts");
                    let scores = self.clip.score_matrix(&self.train_latents, vocab, *template);
                    let d = concept_distributions(&scores, tau_factor);
                    (scores, d)
                };
                let (kept, d2) = {
                    let _s = uhscm_obs::span("denoise");
                    let kept = denoise_concepts(&d);
                    let kept_scores = select_columns(&scores, &kept);
                    let d2 = concept_distributions(&kept_scores, tau_factor);
                    (kept, d2)
                };
                if uhscm_obs::enabled() {
                    uhscm_obs::registry::gauge_set("pipeline.concepts.total", vocab.len() as f64);
                    uhscm_obs::registry::gauge_set("pipeline.concepts.kept", kept.len() as f64);
                }
                let q = {
                    let _s = uhscm_obs::span("build_q");
                    similarity_from_distributions(&d2)
                };
                SimilarityOutcome {
                    q,
                    kept_concepts: Some(kept.iter().map(|&j| vocab[j].clone()).collect()),
                }
            }
            SimilaritySource::ConceptsRaw { vocab, template } => {
                let scores = self.clip.score_matrix(&self.train_latents, vocab, *template);
                let d = concept_distributions(&scores, tau_factor);
                SimilarityOutcome {
                    q: similarity_from_distributions(&d),
                    kept_concepts: Some(vocab.clone()),
                }
            }
            SimilaritySource::ConceptsClustered { vocab, template, clusters } => {
                assert!(*clusters >= 2, "need at least 2 clusters");
                // Cluster prompt embeddings; centroids become the concepts.
                let embs: Vec<Vec<f64>> =
                    vocab.iter().map(|c| self.clip.embed_text(c, *template)).collect();
                let emb_matrix = Matrix::from_rows(&embs);
                let mut r = rng::seeded(self.seed ^ 0x6b6d);
                let result = kmeans(&emb_matrix, *clusters, 100, &mut r);
                let mut centroids = result.centroids;
                for i in 0..centroids.rows() {
                    vecops::normalize(centroids.row_mut(i));
                }
                let scores = self.clip.score_images_against(&self.train_latents, &centroids);
                let d = concept_distributions(&scores, tau_factor);
                SimilarityOutcome { q: similarity_from_distributions(&d), kept_concepts: None }
            }
            SimilaritySource::ConceptsAveraged { vocab, templates } => {
                assert!(!templates.is_empty(), "need at least one template");
                let qs: Vec<Matrix> = templates
                    .iter()
                    .map(|t| {
                        let src = SimilaritySource::ConceptsDenoised {
                            vocab: vocab.clone(),
                            template: *t,
                        };
                        self.build_similarity(&src, tau_factor).q
                    })
                    .collect();
                SimilarityOutcome { q: mean_similarity(&qs), kept_concepts: None }
            }
            SimilaritySource::ClipFeatures => {
                let features = self.clip.embed_images(&self.train_latents);
                SimilarityOutcome { q: similarity_from_features(&features), kept_concepts: None }
            }
        }
    }

    /// Full training: build `Q` per `source`, then run Algorithm 1 with the
    /// modified contrastive regularizer.
    pub fn train(&self, source: &SimilaritySource, config: &UhscmConfig) -> TrainedHasher {
        self.train_with_regularizer(source, config, Regularizer::Modified)
    }

    /// Training with an explicit regularizer choice (ablations 13-14).
    pub fn train_with_regularizer(
        &self,
        source: &SimilaritySource,
        config: &UhscmConfig,
        regularizer: Regularizer,
    ) -> TrainedHasher {
        let _span = uhscm_obs::span("train");
        let outcome = self.build_similarity(source, config.tau_factor);
        let _fit = uhscm_obs::span("fit");
        train_hashing_network(
            &self.train_features,
            &outcome.q,
            config,
            regularizer,
            self.seed ^ 0x7261,
        )
    }

    /// Encode the query and database splits with a trained model.
    pub fn encode_splits(&self, model: &TrainedHasher) -> (BitCodes, BitCodes) {
        let _span = uhscm_obs::span("encode");
        let q = model.encode(&self.features_of(&self.dataset.split.query));
        let db = model.encode(&self.features_of(&self.dataset.split.database));
        (q, db)
    }

    /// MAP of a trained model over the dataset's query/database splits,
    /// using the paper's share-a-label relevance (top `top_n` results).
    pub fn evaluate_map(&self, model: &TrainedHasher, top_n: usize) -> f64 {
        let _span = uhscm_obs::span("evaluate_map");
        let (query_codes, db_codes) = self.encode_splits(model);
        let ranker = HammingRanker::new(db_codes);
        let rel = self.relevance();
        mean_average_precision(&ranker, &query_codes, &rel, top_n)
    }

    /// The share-a-label relevance predicate between query and database
    /// positions (indices into the respective splits).
    pub fn relevance(&self) -> impl Fn(usize, usize) -> bool + '_ {
        let ds = self.dataset;
        move |qi: usize, di: usize| {
            let q = &ds.labels[ds.split.query[qi]];
            let d = &ds.labels[ds.split.database[di]];
            share_label(q, d)
        }
    }
}

/// Copy a subset of columns into a new matrix.
fn select_columns(m: &Matrix, cols: &[usize]) -> Matrix {
    let mut out = Matrix::zeros(m.rows(), cols.len());
    for i in 0..m.rows() {
        let src = m.row(i);
        for (k, &c) in cols.iter().enumerate() {
            out[(i, k)] = src[c];
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use uhscm_data::{DatasetConfig, DatasetKind};

    fn tiny_pipeline(dataset: &Dataset) -> Pipeline<'_> {
        Pipeline::new(dataset, 7)
    }

    fn tiny_dataset() -> Dataset {
        Dataset::generate(DatasetKind::Cifar10Like, &DatasetConfig::tiny(), 42)
    }

    #[test]
    fn denoising_removes_out_of_domain_concepts() {
        let ds = tiny_dataset();
        let p = tiny_pipeline(&ds);
        let out = p.build_similarity(&SimilaritySource::default(), 3.0);
        let kept = out.kept_concepts.expect("concept mining used");
        // CIFAR-like data over the 81 NUS-WIDE concepts: most concepts are
        // out-of-domain and must be discarded.
        assert!(kept.len() < 81, "nothing denoised");
        assert!(!kept.is_empty());
        // Concepts matching actual CIFAR classes should survive.
        let canon: Vec<String> = kept.iter().map(|c| uhscm_data::canonical(c)).collect();
        let survivors = ["cat", "dog", "car", "airplane", "bird", "horse", "boat"]
            .iter()
            .filter(|c| canon.iter().any(|k| k == *c))
            .count();
        assert!(survivors >= 4, "too few in-domain survivors: {kept:?}");
    }

    #[test]
    fn similarity_matrix_well_formed() {
        let ds = tiny_dataset();
        let p = tiny_pipeline(&ds);
        for source in [
            SimilaritySource::default(),
            SimilaritySource::ClipFeatures,
            SimilaritySource::ConceptsRaw {
                vocab: vocab::nus_wide_81(),
                template: PromptTemplate::PhotoOfThe,
            },
        ] {
            let out = p.build_similarity(&source, 3.0);
            let n = ds.split.train.len();
            assert_eq!(out.q.shape(), (n, n));
            for i in 0..n.min(10) {
                assert!((out.q[(i, i)] - 1.0).abs() < 1e-9);
                for j in 0..n.min(10) {
                    assert!((out.q[(i, j)] - out.q[(j, i)]).abs() < 1e-9);
                    assert!(out.q[(i, j)] <= 1.0 + 1e-9 && out.q[(i, j)] >= -1.0 - 1e-9);
                }
            }
        }
    }

    /// Similarity matrices at a scale where the Eq. 5 thresholds are
    /// non-degenerate (0.5·n/m ≥ 1 needs n ≥ 2m).
    fn mid_scale(kind: DatasetKind) -> Dataset {
        let cfg =
            DatasetConfig { n_train: 400, n_query: 50, n_database: 800, ..DatasetConfig::tiny() };
        Dataset::generate(kind, &cfg, 42)
    }

    #[test]
    fn denoising_improves_multilabel_similarity_fidelity() {
        // On NUS-WIDE-like data the paper's fidelity gain shows directly in
        // the same-vs-different similarity margin.
        let ds = mid_scale(DatasetKind::NusWideLike);
        let p = tiny_pipeline(&ds);
        let vocab = vocab::nus_wide_81();
        let template = PromptTemplate::PhotoOfThe;
        let q_full = p
            .build_similarity(
                &SimilaritySource::ConceptsDenoised { vocab: vocab.clone(), template },
                3.0,
            )
            .q;
        let q_raw = p.build_similarity(&SimilaritySource::ConceptsRaw { vocab, template }, 3.0).q;
        let fidelity = |q: &Matrix| {
            let train = &ds.split.train;
            let mut same = Vec::new();
            let mut diff = Vec::new();
            for a in 0..train.len() {
                for b in (a + 1)..train.len() {
                    let gt = share_label(&ds.labels[train[a]], &ds.labels[train[b]]);
                    if gt {
                        same.push(q[(a, b)]);
                    } else {
                        diff.push(q[(a, b)]);
                    }
                }
            }
            vecops::mean(&same) - vecops::mean(&diff)
        };
        assert!(
            fidelity(&q_full) > fidelity(&q_raw),
            "denoising did not improve similarity fidelity"
        );
    }

    #[test]
    fn denoising_removes_false_positive_pairs() {
        // The paper's stated failure mode of raw concepts (§3.3.1): two
        // dissimilar images both claimed by a noise concept become falsely
        // similar. Count dissimilar pairs with q ≥ 0.8 ("positives" under
        // the CIFAR λ) before and after denoising.
        let ds = mid_scale(DatasetKind::Cifar10Like);
        let p = tiny_pipeline(&ds);
        let vocab = vocab::nus_wide_81();
        let template = PromptTemplate::PhotoOfThe;
        let false_positives = |q: &Matrix| {
            let train = &ds.split.train;
            let mut fp = 0usize;
            for a in 0..train.len() {
                for b in (a + 1)..train.len() {
                    if q[(a, b)] >= 0.8 && !share_label(&ds.labels[train[a]], &ds.labels[train[b]])
                    {
                        fp += 1;
                    }
                }
            }
            fp
        };
        let fp_full = false_positives(
            &p.build_similarity(
                &SimilaritySource::ConceptsDenoised { vocab: vocab.clone(), template },
                3.0,
            )
            .q,
        );
        let fp_raw = false_positives(
            &p.build_similarity(&SimilaritySource::ConceptsRaw { vocab, template }, 3.0).q,
        );
        assert!(
            fp_full * 2 < fp_raw.max(1) * 3,
            "denoising left too many false positives: {fp_full} vs raw {fp_raw}"
        );
    }

    #[test]
    fn clustered_source_produces_valid_q() {
        let ds = tiny_dataset();
        let p = tiny_pipeline(&ds);
        let out = p.build_similarity(
            &SimilaritySource::ConceptsClustered {
                vocab: vocab::nus_wide_81(),
                template: PromptTemplate::PhotoOfThe,
                clusters: 20,
            },
            3.0,
        );
        assert_eq!(out.q.rows(), ds.split.train.len());
        assert!(out.q.as_slice().iter().all(|v| v.is_finite()));
    }

    #[test]
    fn end_to_end_training_beats_random_codes() {
        let ds = tiny_dataset();
        let p = tiny_pipeline(&ds);
        let config = UhscmConfig {
            bits: 16,
            epochs: 15,
            batch_size: 32,
            ..UhscmConfig::for_dataset(ds.kind)
        };
        let model = p.train(&SimilaritySource::default(), &config);
        let map = p.evaluate_map(&model, ds.split.database.len());
        // Random 10-class single-label MAP ≈ 0.1; trained must clear it well.
        assert!(map > 0.25, "MAP {map} barely above chance");
    }

    #[test]
    fn averaged_source_matches_component_shape() {
        let ds = tiny_dataset();
        let p = tiny_pipeline(&ds);
        let out = p.build_similarity(
            &SimilaritySource::ConceptsAveraged {
                vocab: vocab::nus_wide_81(),
                templates: PromptTemplate::ALL.to_vec(),
            },
            3.0,
        );
        assert_eq!(out.q.rows(), ds.split.train.len());
    }
}
