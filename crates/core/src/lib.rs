//! UHSCM — Unsupervised Hashing with Semantic Concept Mining.
//!
//! This crate is the paper's primary contribution (§3):
//!
//! * [`mining`] — concept distributions from VLP image-text scores
//!   (Eq. 1-2),
//! * [`denoise`] — frequency-based concept denoising (Eq. 4-5),
//! * [`similarity`] — the semantic similarity matrix `Q` (Eq. 3 / Eq. 6),
//! * [`loss`] — the hashing objective (Eq. 7-11): ℓ2 similarity
//!   preservation, quantization, and the modified contrastive regularizer,
//!   plus CIB's original contrastive loss for the `UHSCM_CL` ablation,
//! * [`trainer`] — Algorithm 1 (mini-batch SGD over the hashing network),
//! * [`pipeline`] — end-to-end orchestration from a dataset + simulated VLP
//!   model to binary codes,
//! * [`variants`] — every ablation row of Table 2 as a named configuration.
//!
//! # Quick start
//!
//! ```
//! use uhscm_core::pipeline::{Pipeline, SimilaritySource};
//! use uhscm_core::UhscmConfig;
//! use uhscm_data::{Dataset, DatasetConfig, DatasetKind};
//!
//! let dataset = Dataset::generate(DatasetKind::Cifar10Like, &DatasetConfig::tiny(), 42);
//! let config = UhscmConfig { bits: 16, epochs: 3, ..UhscmConfig::for_dataset(dataset.kind) };
//! let pipeline = Pipeline::new(&dataset, 7);
//! let model = pipeline.train(&SimilaritySource::default(), &config);
//! let codes = model.encode(&pipeline.features_of(&dataset.split.query));
//! assert_eq!(codes.bits(), 16);
//! ```

pub mod config;
pub mod denoise;
pub mod loss;
pub mod mining;
pub mod pipeline;
pub mod similarity;
pub mod trainer;
pub mod variants;

pub use config::UhscmConfig;
pub use denoise::{concept_frequencies, denoise_concepts, discard};
pub use mining::concept_distributions;
pub use pipeline::{Pipeline, Regularizer, SimilaritySource};
pub use similarity::{similarity_from_distributions, similarity_from_features};
pub use trainer::{train_hashing_network, TrainedHasher};
