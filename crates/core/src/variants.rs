//! The ablation variants of Table 2 (§4.4) as named configurations.

use crate::pipeline::{Pipeline, Regularizer, SimilaritySource};
use crate::trainer::TrainedHasher;
use crate::UhscmConfig;
use uhscm_data::vocab;
use uhscm_vlp::PromptTemplate;

/// One row of Table 2.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Variant {
    /// `UHSCM` — the full model ("Ours").
    Full,
    /// Row 1, `UHSCM_coco` — MS-COCO-80 as the original concept set.
    Coco,
    /// Row 2, `UHSCM_nus&coco` — the 153-category union.
    NusAndCoco,
    /// Row 3, `UHSCM_IF` — raw VLP image-feature cosine similarity.
    ImageFeatures,
    /// Row 4, `UHSCM_P1` — prompt "the {c}".
    Prompt1,
    /// Row 5, `UHSCM_P2` — prompt "it contains the {c}".
    Prompt2,
    /// Row 6, `UHSCM_avg` — mean of the three templates' matrices.
    AveragedPrompts,
    /// Row 7, `UHSCM_w/o de` — no concept denoising.
    WithoutDenoise,
    /// Rows 8-12, `UHSCM_cN` — k-means the concepts into `N` clusters.
    Clustered(usize),
    /// Row 13, `UHSCM_w/o MCL` — drop the contrastive regularizer.
    WithoutMcl,
    /// Row 14, `UHSCM_CL` — CIB's original contrastive loss instead.
    OriginalCl,
}

impl Variant {
    /// Every row of Table 2 in the paper's order, "Ours" last.
    pub fn table2() -> Vec<Variant> {
        vec![
            Variant::Coco,
            Variant::NusAndCoco,
            Variant::ImageFeatures,
            Variant::Prompt1,
            Variant::Prompt2,
            Variant::AveragedPrompts,
            Variant::WithoutDenoise,
            Variant::Clustered(20),
            Variant::Clustered(30),
            Variant::Clustered(40),
            Variant::Clustered(50),
            Variant::Clustered(60),
            Variant::WithoutMcl,
            Variant::OriginalCl,
            Variant::Full,
        ]
    }

    /// The label used in the paper's table.
    pub fn name(&self) -> String {
        match self {
            Variant::Full => "UHSCM".into(),
            Variant::Coco => "UHSCM_coco".into(),
            Variant::NusAndCoco => "UHSCM_nus&coco".into(),
            Variant::ImageFeatures => "UHSCM_IF".into(),
            Variant::Prompt1 => "UHSCM_P1".into(),
            Variant::Prompt2 => "UHSCM_P2".into(),
            Variant::AveragedPrompts => "UHSCM_avg".into(),
            Variant::WithoutDenoise => "UHSCM_w/o de".into(),
            Variant::Clustered(n) => format!("UHSCM_c{n}"),
            Variant::WithoutMcl => "UHSCM_w/o MCL".into(),
            Variant::OriginalCl => "UHSCM_CL".into(),
        }
    }

    /// How this variant constructs its similarity matrix.
    pub fn similarity_source(&self) -> SimilaritySource {
        let default_vocab = vocab::nus_wide_81();
        let template = PromptTemplate::PhotoOfThe;
        match self {
            Variant::Full | Variant::WithoutMcl | Variant::OriginalCl => {
                SimilaritySource::ConceptsDenoised { vocab: default_vocab, template }
            }
            Variant::Coco => {
                SimilaritySource::ConceptsDenoised { vocab: vocab::coco_80(), template }
            }
            Variant::NusAndCoco => {
                SimilaritySource::ConceptsDenoised { vocab: vocab::nus_and_coco(), template }
            }
            Variant::ImageFeatures => SimilaritySource::ClipFeatures,
            Variant::Prompt1 => SimilaritySource::ConceptsDenoised {
                vocab: default_vocab,
                template: PromptTemplate::The,
            },
            Variant::Prompt2 => SimilaritySource::ConceptsDenoised {
                vocab: default_vocab,
                template: PromptTemplate::ItContains,
            },
            Variant::AveragedPrompts => SimilaritySource::ConceptsAveraged {
                vocab: default_vocab,
                templates: PromptTemplate::ALL.to_vec(),
            },
            Variant::WithoutDenoise => {
                SimilaritySource::ConceptsRaw { vocab: default_vocab, template }
            }
            Variant::Clustered(n) => {
                SimilaritySource::ConceptsClustered { vocab: default_vocab, template, clusters: *n }
            }
        }
    }

    /// Which contrastive regularizer this variant trains with.
    pub fn regularizer(&self) -> Regularizer {
        match self {
            Variant::WithoutMcl => Regularizer::None,
            Variant::OriginalCl => Regularizer::OriginalCib,
            _ => Regularizer::Modified,
        }
    }

    /// Train this variant on a pipeline.
    pub fn train(&self, pipeline: &Pipeline<'_>, config: &UhscmConfig) -> TrainedHasher {
        pipeline.train_with_regularizer(&self.similarity_source(), config, self.regularizer())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uhscm_data::{Dataset, DatasetConfig, DatasetKind};

    #[test]
    fn table2_has_fifteen_rows() {
        let rows = Variant::table2();
        assert_eq!(rows.len(), 15);
        assert_eq!(rows.last(), Some(&Variant::Full));
    }

    #[test]
    fn names_match_paper_labels() {
        assert_eq!(Variant::Full.name(), "UHSCM");
        assert_eq!(Variant::Clustered(50).name(), "UHSCM_c50");
        assert_eq!(Variant::WithoutDenoise.name(), "UHSCM_w/o de");
        assert_eq!(Variant::NusAndCoco.name(), "UHSCM_nus&coco");
    }

    #[test]
    fn regularizers_assigned_correctly() {
        assert_eq!(Variant::Full.regularizer(), Regularizer::Modified);
        assert_eq!(Variant::WithoutMcl.regularizer(), Regularizer::None);
        assert_eq!(Variant::OriginalCl.regularizer(), Regularizer::OriginalCib);
    }

    #[test]
    fn vocabulary_sizes_per_variant() {
        match Variant::Coco.similarity_source() {
            SimilaritySource::ConceptsDenoised { vocab, .. } => assert_eq!(vocab.len(), 80),
            other => panic!("unexpected source {other:?}"),
        }
        match Variant::NusAndCoco.similarity_source() {
            SimilaritySource::ConceptsDenoised { vocab, .. } => assert_eq!(vocab.len(), 153),
            other => panic!("unexpected source {other:?}"),
        }
    }

    #[test]
    fn every_variant_trains_on_tiny_data() {
        let ds = Dataset::generate(DatasetKind::Cifar10Like, &DatasetConfig::tiny(), 21);
        let pipeline = Pipeline::new(&ds, 3);
        let config = UhscmConfig { bits: 8, epochs: 2, batch_size: 32, ..UhscmConfig::default() };
        // A representative subset (full Table 2 runs live in the bench
        // harness); includes each structurally distinct code path.
        for v in [
            Variant::Full,
            Variant::ImageFeatures,
            Variant::AveragedPrompts,
            Variant::Clustered(10),
            Variant::OriginalCl,
        ] {
            let model = v.train(&pipeline, &config);
            assert_eq!(model.bits(), 8, "variant {} failed", v.name());
        }
    }
}
