//! UHSCM hyper-parameters (§4.1 and §4.6).

use uhscm_data::DatasetKind;

/// All hyper-parameters of the UHSCM pipeline.
///
/// Defaults follow the paper: τ = 3m (Figure 4a), mini-batch 128, SGD with
/// momentum 0.9 / weight decay 1e-5 / lr 0.006, and the per-dataset
/// (α, λ, γ, β) settings of §4.6.
#[derive(Debug, Clone)]
pub struct UhscmConfig {
    /// Hash-code length `k`.
    pub bits: usize,
    /// Softmax temperature as a multiple of the concept count: τ = `tau_factor` · m.
    pub tau_factor: f64,
    /// Weight of the modified contrastive regularizer (Eq. 9/11).
    pub alpha: f64,
    /// Weight of the quantization term (Eq. 11).
    pub beta: f64,
    /// Temperature of the contrastive term (Eq. 8).
    pub gamma: f64,
    /// Similarity threshold defining positives: `Ψ_i = { j | q_ij ≥ λ }`.
    pub lambda: f64,
    /// Training epochs (outer `repeat` of Algorithm 1).
    pub epochs: usize,
    /// Mini-batch size `t`.
    pub batch_size: usize,
    /// SGD learning rate.
    pub learning_rate: f64,
    /// SGD momentum.
    pub momentum: f64,
    /// SGD weight decay.
    pub weight_decay: f64,
    /// Hidden layer widths of the hashing head.
    pub hidden: Vec<usize>,
}

impl Default for UhscmConfig {
    fn default() -> Self {
        Self {
            bits: 64,
            tau_factor: 3.0,
            alpha: 0.2,
            beta: 0.001,
            gamma: 0.2,
            lambda: 0.8,
            epochs: 40,
            batch_size: 128,
            learning_rate: 0.05,
            momentum: 0.9,
            weight_decay: 1e-5,
            hidden: vec![128],
        }
    }
}

impl UhscmConfig {
    /// The per-dataset hyper-parameters selected in §4.6:
    /// CIFAR10 (α=0.2, λ=0.8, γ=0.2, β=0.001),
    /// NUS-WIDE (α=0.1, λ=0.5, γ=0.2, β=0.001),
    /// MIRFlickr-25K (α=0.3, λ=0.6, γ=0.5, β=0.001).
    pub fn for_dataset(kind: DatasetKind) -> Self {
        let base = Self::default();
        match kind {
            DatasetKind::Cifar10Like => {
                Self { alpha: 0.2, lambda: 0.8, gamma: 0.2, beta: 0.001, ..base }
            }
            DatasetKind::NusWideLike => {
                Self { alpha: 0.1, lambda: 0.5, gamma: 0.2, beta: 0.001, ..base }
            }
            DatasetKind::FlickrLike => {
                Self { alpha: 0.3, lambda: 0.6, gamma: 0.5, beta: 0.001, ..base }
            }
        }
    }

    /// Fast settings for unit tests.
    pub fn test_profile() -> Self {
        Self { bits: 16, epochs: 5, batch_size: 32, ..Self::default() }
    }

    /// Validate internal consistency; returns a description of the first
    /// violated constraint, if any.
    pub fn validate(&self) -> Result<(), String> {
        if self.bits == 0 {
            return Err("bits must be positive".into());
        }
        if self.batch_size < 2 {
            return Err("batch_size must be at least 2 (pairwise losses)".into());
        }
        if self.tau_factor <= 0.0 || self.tau_factor.is_nan() {
            return Err("tau_factor must be positive".into());
        }
        if self.gamma <= 0.0 || self.gamma.is_nan() {
            return Err("gamma must be positive".into());
        }
        if !(0.0..=1.0).contains(&self.lambda) {
            return Err("lambda must lie in [0, 1]".into());
        }
        if self.alpha < 0.0 || self.beta < 0.0 {
            return Err("alpha and beta must be non-negative".into());
        }
        if self.learning_rate <= 0.0 || self.learning_rate.is_nan() {
            return Err("learning_rate must be positive".into());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_defaults_per_dataset() {
        let c = UhscmConfig::for_dataset(DatasetKind::Cifar10Like);
        assert_eq!((c.alpha, c.lambda, c.gamma, c.beta), (0.2, 0.8, 0.2, 0.001));
        let n = UhscmConfig::for_dataset(DatasetKind::NusWideLike);
        assert_eq!((n.alpha, n.lambda, n.gamma, n.beta), (0.1, 0.5, 0.2, 0.001));
        let f = UhscmConfig::for_dataset(DatasetKind::FlickrLike);
        assert_eq!((f.alpha, f.lambda, f.gamma, f.beta), (0.3, 0.6, 0.5, 0.001));
    }

    #[test]
    fn default_is_valid() {
        assert!(UhscmConfig::default().validate().is_ok());
    }

    #[test]
    fn validation_catches_bad_values() {
        let mut c = UhscmConfig::default();
        c.bits = 0;
        assert!(c.validate().is_err());
        c = UhscmConfig::default();
        c.lambda = 1.5;
        assert!(c.validate().is_err());
        c = UhscmConfig::default();
        c.gamma = 0.0;
        assert!(c.validate().is_err());
        c = UhscmConfig::default();
        c.batch_size = 1;
        assert!(c.validate().is_err());
    }
}
