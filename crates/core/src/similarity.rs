//! The semantic similarity matrix `Q` (§3.3, Eq. 3 and Eq. 6).

use uhscm_linalg::{par, vecops, Matrix};

/// Eq. 3 / Eq. 6: `q_ij = cos(d_i, d_j)` over per-image concept
/// distributions. Returns a symmetric `n × n` matrix with unit diagonal.
pub fn similarity_from_distributions(distributions: &Matrix) -> Matrix {
    cosine_gram(distributions)
}

/// The `UHSCM_IF` ablation (Table 2 row 3): cosine similarity of raw VLP
/// image features, skipping concept mining entirely.
pub fn similarity_from_features(features: &Matrix) -> Matrix {
    cosine_gram(features)
}

/// Cosine Gram matrix of the rows of `x`.
///
/// Output rows fan out over the `uhscm-linalg::par` runtime. The banded
/// path computes each row `i` in full (`dot(r_i, r_j)` for all `j`), which
/// is bitwise identical to the serial symmetric pass: IEEE-754
/// multiplication commutes, and both paths sum over the feature index in
/// ascending order.
pub fn cosine_gram(x: &Matrix) -> Matrix {
    let n = x.rows();
    let d = x.cols();
    // Normalize rows once (each row is independent), …
    let mut unit = x.clone();
    let fanned =
        par::try_par_row_bands_mut(unit.as_mut_slice(), d, n.saturating_mul(d), |_, band| {
            for row in band.chunks_mut(d) {
                vecops::normalize(row);
            }
        });
    if !fanned {
        for i in 0..n {
            vecops::normalize(unit.row_mut(i));
        }
    }
    // … then one pass of dot products.
    let mut q = Matrix::zeros(n, n);
    let work = n.saturating_mul(n).saturating_mul(d);
    let fanned = par::try_par_row_bands_mut(q.as_mut_slice(), n, work, |row0, band| {
        for (bi, q_row) in band.chunks_mut(n).enumerate() {
            let i = row0 + bi;
            let ri = unit.row(i);
            for (j, slot) in q_row.iter_mut().enumerate() {
                *slot = if j == i { 1.0 } else { vecops::dot(ri, unit.row(j)) };
            }
        }
    });
    if !fanned {
        for i in 0..n {
            q[(i, i)] = 1.0;
            let ri = unit.row(i).to_vec();
            for j in (i + 1)..n {
                let v = vecops::dot(&ri, unit.row(j));
                q[(i, j)] = v;
                q[(j, i)] = v;
            }
        }
    }
    q
}

/// Element-wise mean of several similarity matrices (the `UHSCM_avg`
/// ablation, Table 2 row 6).
///
/// # Panics
/// Panics if the list is empty or shapes differ.
pub fn mean_similarity(matrices: &[Matrix]) -> Matrix {
    assert!(!matrices.is_empty(), "mean of zero similarity matrices");
    let mut acc = matrices[0].clone();
    for m in &matrices[1..] {
        acc.axpy(1.0, m);
    }
    acc.scale(1.0 / matrices.len() as f64);
    acc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_distributions_similarity_one() {
        let d = Matrix::from_rows(&[vec![0.5, 0.3, 0.2], vec![0.5, 0.3, 0.2]]);
        let q = similarity_from_distributions(&d);
        assert!((q[(0, 1)] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn disjoint_distributions_similarity_zero() {
        let d = Matrix::from_rows(&[vec![1.0, 0.0], vec![0.0, 1.0]]);
        let q = similarity_from_distributions(&d);
        assert!(q[(0, 1)].abs() < 1e-12);
    }

    #[test]
    fn symmetric_with_unit_diagonal() {
        let d = Matrix::from_rows(&[vec![0.6, 0.3, 0.1], vec![0.2, 0.5, 0.3], vec![0.1, 0.1, 0.8]]);
        let q = similarity_from_distributions(&d);
        for i in 0..3 {
            assert!((q[(i, i)] - 1.0).abs() < 1e-12);
            for j in 0..3 {
                assert!((q[(i, j)] - q[(j, i)]).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn nonnegative_for_distributions() {
        // Probability vectors have non-negative entries, so cosines are ≥ 0.
        let d = Matrix::from_rows(&[vec![0.9, 0.1, 0.0], vec![0.0, 0.2, 0.8]]);
        let q = similarity_from_distributions(&d);
        assert!(q.as_slice().iter().all(|&v| v >= 0.0));
    }

    #[test]
    fn mean_similarity_averages() {
        let a = Matrix::full(2, 2, 0.2);
        let b = Matrix::full(2, 2, 0.4);
        let m = mean_similarity(&[a, b]);
        assert!(m.as_slice().iter().all(|&v| (v - 0.3).abs() < 1e-12));
    }

    #[test]
    fn shared_concept_raises_similarity() {
        // Images {A,B} share concept 0 heavily; C is concentrated elsewhere.
        let d =
            Matrix::from_rows(&[vec![0.7, 0.2, 0.1], vec![0.6, 0.1, 0.3], vec![0.05, 0.05, 0.9]]);
        let q = similarity_from_distributions(&d);
        assert!(q[(0, 1)] > q[(0, 2)]);
        assert!(q[(0, 1)] > q[(1, 2)]);
    }
}
