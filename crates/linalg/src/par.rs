//! Deterministic data-parallel runtime — the workspace's only thread layer.
//!
//! Every parallel kernel in the repository fans out through this module
//! (enforced by the `raw-thread` lint rule in `uhscm-xtask`). The design
//! goal is *bitwise determinism*: a kernel run with any thread count
//! produces exactly the same `f64` bit patterns as the serial path, so
//! seeds, goldens and the `checked` sanitizer stay valid regardless of the
//! machine the workspace lands on.
//!
//! # Determinism contract
//!
//! * Work is split into **contiguous output bands** by [`partition`]: band
//!   boundaries depend only on the unit count and the thread count, never
//!   on timing.
//! * Each output element is written by exactly one thread, and every
//!   floating-point reduction that feeds an element (e.g. the `k` loop of a
//!   matmul row) runs in the same order as the serial loop. Threads change
//!   only the interleaving *across* elements, which IEEE-754 cannot observe.
//! * Cross-element reductions (gradient buffers, per-query metric sums) are
//!   collected per unit and folded on the calling thread in ascending unit
//!   order — the exact serial order.
//!
//! # Thread-count resolution
//!
//! 1. innermost [`with_threads`] override on the current thread (used by
//!    tests and benches; forces fan-out even below the work threshold),
//! 2. the `UHSCM_THREADS` environment variable (a positive integer; `1`
//!    forces the exact serial path, unparseable values fall back to 3.),
//! 3. `std::thread::available_parallelism()`.
//!
//! Without an explicit override, kernels whose estimated work is below
//! [`MIN_PAR_WORK`] element-ops stay serial — spawn cost would dominate.

use std::cell::Cell;
use std::ops::Range;
use std::sync::OnceLock;

/// Below this many estimated element-ops a kernel stays serial unless a
/// [`with_threads`] override forces fan-out.
pub const MIN_PAR_WORK: usize = 1 << 15;

thread_local! {
    static OVERRIDE: Cell<Option<usize>> = const { Cell::new(None) };
}

/// `UHSCM_THREADS`, else available cores; cached for the process lifetime.
fn configured_threads() -> usize {
    static CONFIGURED: OnceLock<usize> = OnceLock::new();
    *CONFIGURED.get_or_init(|| {
        match std::env::var("UHSCM_THREADS").ok().and_then(|v| v.trim().parse::<usize>().ok()) {
            Some(n) if n >= 1 => n,
            _ => std::thread::available_parallelism().map_or(1, usize::from),
        }
    })
}

/// Thread-count configuration for every parallel kernel in the workspace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Parallelism {
    threads: usize,
}

impl Parallelism {
    /// The effective configuration: innermost [`with_threads`] override on
    /// this thread, else `UHSCM_THREADS`, else available cores.
    pub fn effective() -> Self {
        Self { threads: OVERRIDE.with(Cell::get).unwrap_or_else(configured_threads) }
    }

    /// Exactly the serial path.
    pub fn serial() -> Self {
        Self { threads: 1 }
    }

    /// A fixed thread count (clamped to at least 1).
    pub fn fixed(threads: usize) -> Self {
        Self { threads: threads.max(1) }
    }

    /// Number of worker threads kernels may use.
    pub fn threads(self) -> usize {
        self.threads
    }
}

/// Run `f` with the effective thread count forced to `threads` on the
/// current thread (restored afterwards, even on panic). An override also
/// bypasses the [`MIN_PAR_WORK`] threshold, so small inputs genuinely fan
/// out — this is how the parallel-equals-serial property tests exercise
/// real thread boundaries.
pub fn with_threads<R>(threads: usize, f: impl FnOnce() -> R) -> R {
    struct Restore(Option<usize>);
    impl Drop for Restore {
        fn drop(&mut self) {
            OVERRIDE.with(|o| o.set(self.0));
        }
    }
    let prev = OVERRIDE.with(|o| o.replace(Some(threads.max(1))));
    let _restore = Restore(prev);
    f()
}

/// Deterministic contiguous partition of `0..n` into at most `parts`
/// non-empty ranges whose lengths differ by at most one. Depends only on
/// `(n, parts)` — never on timing — so band boundaries are reproducible.
pub fn partition(n: usize, parts: usize) -> Vec<Range<usize>> {
    let parts = parts.clamp(1, n.max(1));
    let base = n / parts;
    let extra = n % parts;
    (0..parts)
        .map(|p| {
            let start = p * base + p.min(extra);
            start..start + base + usize::from(p < extra)
        })
        .filter(|r| !r.is_empty())
        .collect()
}

/// How many bands to fan `units` work items out over; `1` means "run the
/// caller's serial path".
fn plan(units: usize, work: usize) -> usize {
    let forced = OVERRIDE.with(Cell::get);
    let threads = forced.unwrap_or_else(configured_threads);
    let serial = threads <= 1 || units < 2 || (forced.is_none() && work < MIN_PAR_WORK);
    let parts = if serial { 1 } else { threads.min(units) };
    if uhscm_obs::enabled() {
        if parts <= 1 {
            uhscm_obs::registry::counter_add("par.plan.serial", 1);
        } else {
            uhscm_obs::registry::counter_add("par.plan.fanout", 1);
            uhscm_obs::registry::gauge_set("par.threads.effective", threads as f64);
        }
    }
    parts
}

/// Record the band sizes of one fan-out (no-op when tracing is off).
fn record_bands(ranges: &[Range<usize>]) {
    if uhscm_obs::enabled() {
        for r in ranges {
            uhscm_obs::registry::histogram_record("par.band_size", r.len() as f64);
        }
    }
}

/// Fan a mutable row-major buffer (`cols` elements per row) out over
/// contiguous row bands, calling `f(first_row, band)` on each band. The
/// final band runs inline on the calling thread, so a fan-out over `p`
/// bands spawns only `p - 1` workers — at one effective thread no thread is
/// ever spawned, and the calling core does real work instead of parking in
/// `join`. Workers (and the inline band) run with their own override pinned
/// to `1`, so kernels called from inside a band never nest another fan-out.
///
/// Returns `false` — without calling `f` — when the plan is serial (one
/// band, zero `cols`, or sub-threshold work): the caller then runs its own
/// serial loop, which may use a different (cache-friendlier) traversal
/// order as long as every output element sees the same operation order.
pub fn try_par_row_bands_mut<T, F>(buf: &mut [T], cols: usize, work: usize, f: F) -> bool
where
    T: Send,
    F: Fn(usize, &mut [T]) + Sync,
{
    if cols == 0 {
        return false;
    }
    let rows = buf.len() / cols;
    let parts = plan(rows, work);
    if parts <= 1 {
        return false;
    }
    let ranges = partition(rows, parts);
    record_bands(&ranges);
    std::thread::scope(|s| {
        let mut rest: &mut [T] = buf;
        let last = ranges.len() - 1;
        let mut inline: Option<(usize, &mut [T])> = None;
        for (bi, r) in ranges.into_iter().enumerate() {
            let (band, tail) = std::mem::take(&mut rest).split_at_mut(r.len() * cols);
            rest = tail;
            if bi == last {
                inline = Some((r.start, band));
            } else {
                let f = &f;
                s.spawn(move || with_threads(1, || f(r.start, band)));
            }
        }
        if let Some((start, band)) = inline {
            with_threads(1, || f(start, band));
        }
    });
    true
}

/// Map `0..n` through `f` by contiguous chunks, collecting the per-chunk
/// results in ascending chunk order. A serial plan runs `f(0..n)` inline on
/// the calling thread (the exact serial path); `n == 0` yields no chunks.
/// Like [`try_par_row_bands_mut`], the final chunk runs inline on the
/// calling thread — `p` chunks cost `p - 1` spawns.
///
/// Callers that reduce floating-point values across units must emit one
/// value *per unit* (not per chunk) and fold them in unit order — chunk
/// partial sums would make the result depend on the thread count.
pub fn par_map_chunks<R, F>(n: usize, work: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(Range<usize>) -> R + Sync,
{
    let parts = plan(n, work);
    if parts <= 1 {
        return if n == 0 { Vec::new() } else { vec![f(0..n)] };
    }
    let mut ranges = partition(n, parts);
    record_bands(&ranges);
    // `parts >= 2` so the pop always succeeds; the last chunk is the
    // caller's share.
    let last_range = ranges.pop();
    std::thread::scope(|s| {
        let handles: Vec<_> = ranges
            .into_iter()
            .map(|r| {
                let f = &f;
                s.spawn(move || with_threads(1, || f(r)))
            })
            .collect();
        let last = last_range.map(|r| with_threads(1, || f(r)));
        let mut out: Vec<R> = handles
            .into_iter()
            .map(|h| match h.join() {
                Ok(v) => v,
                Err(payload) => std::panic::resume_unwind(payload),
            })
            .collect();
        out.extend(last);
        out
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn partition_covers_contiguously() {
        for n in 0..40usize {
            for parts in 1..10usize {
                let ranges = partition(n, parts);
                let mut next = 0;
                for r in &ranges {
                    assert_eq!(r.start, next, "gap at n={n} parts={parts}");
                    assert!(!r.is_empty());
                    next = r.end;
                }
                assert_eq!(next, n, "partition must cover 0..{n}");
                assert!(ranges.len() <= parts);
            }
        }
    }

    #[test]
    fn partition_band_sizes_balanced() {
        let ranges = partition(10, 3);
        let sizes: Vec<usize> = ranges.iter().map(Range::len).collect();
        assert_eq!(sizes, vec![4, 3, 3]);
    }

    #[test]
    fn with_threads_overrides_and_restores() {
        let outer = Parallelism::effective().threads();
        let inner = with_threads(5, || Parallelism::effective().threads());
        assert_eq!(inner, 5);
        assert_eq!(Parallelism::effective().threads(), outer);
    }

    #[test]
    fn with_threads_nests() {
        with_threads(4, || {
            assert_eq!(Parallelism::effective().threads(), 4);
            with_threads(2, || assert_eq!(Parallelism::effective().threads(), 2));
            assert_eq!(Parallelism::effective().threads(), 4);
        });
    }

    #[test]
    fn override_restored_after_worker_panic() {
        with_threads(3, || {
            let caught = std::panic::catch_unwind(|| {
                par_map_chunks(4, 0, |r| {
                    assert!(r.start < 100, "unreachable");
                    if r.start >= 2 {
                        std::panic::panic_any("boom")
                    }
                    r.len()
                })
            });
            assert!(caught.is_err(), "worker panic must propagate");
            assert_eq!(Parallelism::effective().threads(), 3);
        });
    }

    #[test]
    fn serial_plan_returns_false() {
        let mut buf = vec![0.0f64; 8];
        // No override, tiny work: must refuse to fan out.
        let fanned = try_par_row_bands_mut(&mut buf, 2, 8, |_, _| {});
        assert!(!fanned);
        // cols == 0 is always serial.
        assert!(!try_par_row_bands_mut(&mut buf, 0, usize::MAX, |_, _| {}));
    }

    #[test]
    fn forced_fanout_writes_disjoint_bands() {
        let mut buf = vec![0.0f64; 10 * 3];
        let fanned = with_threads(4, || {
            try_par_row_bands_mut(&mut buf, 3, 0, |first_row, band| {
                for (k, row) in band.chunks_exact_mut(3).enumerate() {
                    for v in row {
                        *v = (first_row + k) as f64;
                    }
                }
            })
        });
        assert!(fanned);
        for (i, row) in buf.chunks_exact(3).enumerate() {
            assert!(row.iter().all(|&v| v == i as f64), "row {i} corrupted: {row:?}");
        }
    }

    #[test]
    fn workers_do_not_nest_fanout() {
        with_threads(4, || {
            let depth: Vec<usize> = par_map_chunks(4, 0, |_| Parallelism::effective().threads());
            assert!(depth.iter().all(|&t| t == 1), "workers must be pinned serial");
        });
    }

    #[test]
    fn one_chunk_runs_on_the_calling_thread() {
        let caller = std::thread::current().id();
        let ids = with_threads(4, || par_map_chunks(4, 0, |_| std::thread::current().id()));
        assert_eq!(ids.len(), 4);
        assert_eq!(
            ids.iter().filter(|&&id| id == caller).count(),
            1,
            "exactly one chunk must execute inline on the caller"
        );
        assert_eq!(*ids.last().unwrap(), caller, "the caller takes the final chunk");
    }

    #[test]
    fn one_band_runs_on_the_calling_thread() {
        use std::sync::Mutex;
        let caller = std::thread::current().id();
        let seen: Mutex<Vec<(usize, std::thread::ThreadId)>> = Mutex::new(Vec::new());
        let mut buf = vec![0.0f64; 8 * 2];
        let fanned = with_threads(4, || {
            try_par_row_bands_mut(&mut buf, 2, 0, |first_row, _| {
                seen.lock().unwrap().push((first_row, std::thread::current().id()));
            })
        });
        assert!(fanned);
        let mut seen = seen.into_inner().unwrap();
        seen.sort_unstable_by_key(|&(row, _)| row);
        assert_eq!(seen.len(), 4);
        let on_caller: Vec<usize> =
            seen.iter().filter(|&&(_, id)| id == caller).map(|&(row, _)| row).collect();
        assert_eq!(on_caller, vec![6], "only the final band (rows 6..8) runs inline");
    }

    #[test]
    fn par_map_chunks_orders_results() {
        let chunks = with_threads(3, || par_map_chunks(10, 0, |r| r.collect::<Vec<_>>()));
        let flat: Vec<usize> = chunks.into_iter().flatten().collect();
        assert_eq!(flat, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn par_map_chunks_empty_input() {
        let chunks: Vec<Vec<usize>> = par_map_chunks(0, 0, |r| r.collect());
        assert!(chunks.is_empty());
    }
}
