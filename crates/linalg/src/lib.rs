//! Dense linear-algebra substrate for the UHSCM reproduction.
//!
//! Everything downstream — the simulated VLP model, the neural-network
//! runtime, the shallow hashing baselines (ITQ, SH, AGH, …) and the
//! evaluation stack (t-SNE) — is built on the small, allocation-conscious
//! kernels in this crate:
//!
//! * [`Matrix`] — row-major dense matrix with the handful of BLAS-like
//!   operations the paper's algorithms need,
//! * [`kernels`] — the register-tiled band microkernels behind the three
//!   matrix products, plus their naive bitwise-reference implementations,
//! * [`par`] — the deterministic data-parallel runtime every multi-threaded
//!   kernel in the workspace routes through (`UHSCM_THREADS`),
//! * [`eigen`] — a Jacobi eigensolver for symmetric matrices,
//! * [`pca`] — principal component analysis on top of the eigensolver,
//! * [`kmeans`] — k-means++ clustering (used by the `UHSCM_cn` ablations),
//! * [`rng`] — seeded Gaussian/uniform sampling helpers,
//! * [`vecops`] — vector kernels (dot, cosine, softmax, …).

pub mod checked;
pub mod eigen;
pub mod hadamard;
pub mod kernels;
pub mod kmeans;
pub mod matrix;
pub mod par;
pub mod pca;
pub mod rng;
pub mod svd;
pub mod vecops;

pub use eigen::{jacobi_eigen, EigenDecomposition};
pub use kmeans::{kmeans, KMeansResult};
pub use matrix::Matrix;
pub use par::Parallelism;
pub use pca::Pca;
pub use svd::{gram_schmidt, random_orthogonal, svd, Svd};
