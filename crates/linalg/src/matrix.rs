//! Row-major dense matrix.
//!
//! A deliberately small surface: exactly the operations the UHSCM pipeline
//! and its baselines use, with no per-element allocation. The three matrix
//! products run the register-tiled band kernels of [`crate::kernels`] on
//! both the serial and the [`crate::par`] row-band paths.

use std::fmt;
use std::ops::{Index, IndexMut};

/// Row-major dense `rows × cols` matrix of `f64`.
#[derive(Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Create a matrix filled with zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self { rows, cols, data: vec![0.0; rows * cols] }
    }

    /// Create a matrix filled with a constant.
    pub fn full(rows: usize, cols: usize, value: f64) -> Self {
        Self { rows, cols, data: vec![value; rows * cols] }
    }

    /// Identity matrix of size `n × n`.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Build from a flat row-major buffer.
    ///
    /// # Panics
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert_eq!(
            data.len(),
            rows * cols,
            "buffer length {} does not match {rows}x{cols}",
            data.len()
        );
        Self { rows, cols, data }
    }

    /// Build from a slice of equally sized rows.
    ///
    /// # Panics
    /// Panics if rows have differing lengths.
    pub fn from_rows(rows: &[Vec<f64>]) -> Self {
        let r = rows.len();
        let c = rows.first().map_or(0, Vec::len);
        let mut data = Vec::with_capacity(r * c);
        for (i, row) in rows.iter().enumerate() {
            assert_eq!(
                row.len(),
                c,
                "from_rows: ragged rows — row {i} has {} elements, row 0 has {c}",
                row.len()
            );
            data.extend_from_slice(row);
        }
        Self { rows: r, cols: c, data }
    }

    /// Build an `n × n` diagonal matrix from `diag`.
    pub fn from_diag(diag: &[f64]) -> Self {
        let n = diag.len();
        let mut m = Self::zeros(n, n);
        for (i, &d) in diag.iter().enumerate() {
            m[(i, i)] = d;
        }
        m
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)`.
    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Borrow row `i` as a slice.
    #[inline]
    pub fn row(&self, i: usize) -> &[f64] {
        debug_assert!(i < self.rows);
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Mutably borrow row `i` as a slice.
    #[inline]
    pub fn row_mut(&mut self, i: usize) -> &mut [f64] {
        debug_assert!(i < self.rows);
        &mut self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Copy column `j` into a new vector.
    ///
    /// # Panics
    /// Panics if `j >= cols`.
    pub fn col(&self, j: usize) -> Vec<f64> {
        let mut out = Vec::with_capacity(self.rows);
        self.col_into(j, &mut out);
        out
    }

    /// Copy column `j` into `out` (cleared first), letting callers reuse one
    /// buffer across a loop instead of allocating per column. Reads the
    /// strided buffer directly rather than going through per-element
    /// indexing.
    ///
    /// # Panics
    /// Panics if `j >= cols`.
    pub fn col_into(&self, j: usize, out: &mut Vec<f64>) {
        assert!(j < self.cols, "column {j} out of bounds for a {}x{} matrix", self.rows, self.cols);
        out.clear();
        out.reserve(self.rows);
        for i in 0..self.rows {
            out.push(self.data[i * self.cols + j]);
        }
    }

    /// Flat row-major view of the underlying buffer.
    #[inline]
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Flat mutable row-major view of the underlying buffer.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Consume the matrix, returning its flat row-major buffer.
    pub fn into_vec(self) -> Vec<f64> {
        self.data
    }

    /// Iterator over rows as slices.
    pub fn iter_rows(&self) -> impl Iterator<Item = &[f64]> {
        self.data.chunks_exact(self.cols)
    }

    /// Matrix transpose.
    pub fn transpose(&self) -> Matrix {
        let mut t = Matrix::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            let row = self.row(i);
            for (j, &v) in row.iter().enumerate() {
                t[(j, i)] = v;
            }
        }
        t
    }

    /// Matrix product `self * other`.
    ///
    /// Runs the register-tiled band kernel of [`crate::kernels`] (4×8
    /// output tiles, `k` innermost). Output rows fan out over the
    /// [`crate::par`] runtime; every band runs the identical kernel and
    /// every output element accumulates its terms in ascending-`k` order,
    /// so the result is bitwise independent of the thread count *and*
    /// bitwise identical to [`crate::kernels::matmul_naive`].
    ///
    /// # Panics
    /// Panics on inner-dimension mismatch.
    pub fn matmul(&self, other: &Matrix) -> Matrix {
        assert_eq!(
            self.cols, other.rows,
            "matmul dim mismatch: {}x{} * {}x{}",
            self.rows, self.cols, other.rows, other.cols
        );
        let mut out = Matrix::zeros(self.rows, other.cols);
        let cols = other.cols;
        let work = self.rows.saturating_mul(self.cols).saturating_mul(cols);
        let fanned = crate::par::try_par_row_bands_mut(&mut out.data, cols, work, |row0, band| {
            crate::kernels::matmul_band(self, row0, other, band);
        });
        if !fanned {
            crate::kernels::matmul_band(self, 0, other, &mut out.data);
        }
        out
    }

    /// `self^T * other` without materializing the transpose.
    ///
    /// Both paths run the 2×8 register-tiled band kernel of
    /// [`crate::kernels`]: each output row `k` (a column of `self`)
    /// accumulates over `i` in the same ascending order as the naive
    /// i-outer loop — bitwise identical per element, only the interleaving
    /// across elements differs.
    ///
    /// # Panics
    /// Panics on row-count mismatch.
    pub fn t_matmul(&self, other: &Matrix) -> Matrix {
        assert_eq!(
            self.rows, other.rows,
            "t_matmul dim mismatch: {}x{} ^T * {}x{}",
            self.rows, self.cols, other.rows, other.cols
        );
        let mut out = Matrix::zeros(self.cols, other.cols);
        let cols = other.cols;
        let work = self.rows.saturating_mul(self.cols).saturating_mul(cols);
        let fanned = crate::par::try_par_row_bands_mut(&mut out.data, cols, work, |row0, band| {
            crate::kernels::t_matmul_band(self, row0, other, band);
        });
        if !fanned {
            crate::kernels::t_matmul_band(self, 0, other, &mut out.data);
        }
        out
    }

    /// `self * other^T` without materializing the transpose.
    ///
    /// Runs the 2×4 register-tiled dot-product band kernel of
    /// [`crate::kernels`]; each output element is the plain ascending-`k`
    /// dot, bitwise identical to [`crate::kernels::matmul_t_naive`].
    ///
    /// # Panics
    /// Panics on column-count mismatch.
    pub fn matmul_t(&self, other: &Matrix) -> Matrix {
        assert_eq!(
            self.cols, other.cols,
            "matmul_t dim mismatch: {}x{} * ({}x{})^T",
            self.rows, self.cols, other.rows, other.cols
        );
        let mut out = Matrix::zeros(self.rows, other.rows);
        let cols = other.rows;
        let work = self.rows.saturating_mul(self.cols).saturating_mul(cols);
        let fanned = crate::par::try_par_row_bands_mut(&mut out.data, cols, work, |row0, band| {
            crate::kernels::matmul_t_band(self, row0, other, band);
        });
        if !fanned {
            crate::kernels::matmul_t_band(self, 0, other, &mut out.data);
        }
        out
    }

    /// Element-wise in-place map.
    pub fn map_inplace(&mut self, mut f: impl FnMut(f64) -> f64) {
        for v in &mut self.data {
            *v = f(*v);
        }
    }

    /// Element-wise map into a new matrix.
    pub fn map(&self, f: impl FnMut(f64) -> f64) -> Matrix {
        let mut out = self.clone();
        out.map_inplace(f);
        out
    }

    /// In-place `self += alpha * other`.
    ///
    /// # Panics
    /// Panics on shape mismatch.
    pub fn axpy(&mut self, alpha: f64, other: &Matrix) {
        assert_eq!(
            self.shape(),
            other.shape(),
            "axpy shape mismatch: {}x{} += alpha * {}x{}",
            self.rows,
            self.cols,
            other.rows,
            other.cols
        );
        for (a, &b) in self.data.iter_mut().zip(&other.data) {
            *a += alpha * b;
        }
    }

    /// In-place scale by a scalar.
    pub fn scale(&mut self, alpha: f64) {
        for v in &mut self.data {
            *v *= alpha;
        }
    }

    /// `self - other` as a new matrix.
    ///
    /// # Panics
    /// Panics on shape mismatch.
    pub fn sub(&self, other: &Matrix) -> Matrix {
        assert_eq!(
            self.shape(),
            other.shape(),
            "sub shape mismatch: {}x{} - {}x{}",
            self.rows,
            self.cols,
            other.rows,
            other.cols
        );
        let data = self.data.iter().zip(&other.data).map(|(a, b)| a - b).collect();
        Matrix::from_vec(self.rows, self.cols, data)
    }

    /// `self + other` as a new matrix.
    ///
    /// # Panics
    /// Panics on shape mismatch.
    pub fn add(&self, other: &Matrix) -> Matrix {
        assert_eq!(
            self.shape(),
            other.shape(),
            "add shape mismatch: {}x{} + {}x{}",
            self.rows,
            self.cols,
            other.rows,
            other.cols
        );
        let data = self.data.iter().zip(&other.data).map(|(a, b)| a + b).collect();
        Matrix::from_vec(self.rows, self.cols, data)
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f64 {
        self.data.iter().map(|v| v * v).sum::<f64>().sqrt()
    }

    /// Mean of each column.
    pub fn col_means(&self) -> Vec<f64> {
        let mut means = vec![0.0; self.cols];
        for row in self.iter_rows() {
            for (m, &v) in means.iter_mut().zip(row) {
                *m += v;
            }
        }
        let n = self.rows.max(1) as f64;
        for m in &mut means {
            *m /= n;
        }
        means
    }

    /// Subtract `center` from every row, in place.
    ///
    /// # Panics
    /// Panics if `center.len() != cols`.
    pub fn center_rows(&mut self, center: &[f64]) {
        assert_eq!(
            center.len(),
            self.cols,
            "center_rows length mismatch: center has {} elements for a {}x{} matrix",
            center.len(),
            self.rows,
            self.cols
        );
        for i in 0..self.rows {
            for (v, &c) in self.row_mut(i).iter_mut().zip(center) {
                *v -= c;
            }
        }
    }

    /// Covariance matrix of the rows (biased, divides by `n`).
    pub fn covariance(&self) -> Matrix {
        let means = self.col_means();
        let mut centered = self.clone();
        centered.center_rows(&means);
        let mut cov = centered.t_matmul(&centered);
        cov.scale(1.0 / self.rows.max(1) as f64);
        cov
    }

    /// Select a subset of rows by index into a new matrix.
    pub fn select_rows(&self, indices: &[usize]) -> Matrix {
        let mut out = Matrix::zeros(indices.len(), self.cols);
        for (k, &i) in indices.iter().enumerate() {
            out.row_mut(k).copy_from_slice(self.row(i));
        }
        out
    }

    /// Maximum absolute element.
    pub fn max_abs(&self) -> f64 {
        self.data.iter().fold(0.0_f64, |m, &v| m.max(v.abs()))
    }
}

impl Index<(usize, usize)> for Matrix {
    type Output = f64;
    #[inline]
    fn index(&self, (i, j): (usize, usize)) -> &f64 {
        debug_assert!(i < self.rows && j < self.cols);
        &self.data[i * self.cols + j]
    }
}

impl IndexMut<(usize, usize)> for Matrix {
    #[inline]
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f64 {
        debug_assert!(i < self.rows && j < self.cols);
        &mut self.data[i * self.cols + j]
    }
}

impl fmt::Debug for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Matrix {}x{} [", self.rows, self.cols)?;
        for i in 0..self.rows.min(8) {
            write!(f, "  [")?;
            for j in 0..self.cols.min(8) {
                write!(f, "{:8.4} ", self[(i, j)])?;
            }
            writeln!(f, "{}]", if self.cols > 8 { "…" } else { "" })?;
        }
        if self.rows > 8 {
            writeln!(f, "  …")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_and_shape() {
        let m = Matrix::zeros(3, 4);
        assert_eq!(m.shape(), (3, 4));
        assert!(m.as_slice().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn identity_diagonal() {
        let m = Matrix::identity(3);
        for i in 0..3 {
            for j in 0..3 {
                assert_eq!(m[(i, j)], if i == j { 1.0 } else { 0.0 });
            }
        }
    }

    #[test]
    fn from_rows_matches_indexing() {
        let m = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        assert_eq!(m[(0, 1)], 2.0);
        assert_eq!(m[(1, 0)], 3.0);
        assert_eq!(m.row(1), &[3.0, 4.0]);
        assert_eq!(m.col(0), vec![1.0, 3.0]);
    }

    #[test]
    #[should_panic(expected = "ragged")]
    fn from_rows_rejects_ragged() {
        let _ = Matrix::from_rows(&[vec![1.0], vec![1.0, 2.0]]);
    }

    #[test]
    fn matmul_hand_computed() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        let b = Matrix::from_rows(&[vec![5.0, 6.0], vec![7.0, 8.0]]);
        let c = a.matmul(&b);
        assert_eq!(c.row(0), &[19.0, 22.0]);
        assert_eq!(c.row(1), &[43.0, 50.0]);
    }

    #[test]
    fn matmul_identity_is_noop() {
        let a = Matrix::from_rows(&[vec![1.0, -2.0, 0.5], vec![3.0, 4.0, -1.0]]);
        let c = a.matmul(&Matrix::identity(3));
        assert_eq!(c, a);
    }

    #[test]
    fn t_matmul_equals_explicit_transpose() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0, 3.0], vec![4.0, 5.0, 6.0]]);
        let b = Matrix::from_rows(&[vec![1.0, 0.0], vec![0.0, 1.0]]);
        let direct = a.t_matmul(&b);
        let via_transpose = a.transpose().matmul(&b);
        assert_eq!(direct, via_transpose);
    }

    #[test]
    fn matmul_t_equals_explicit_transpose() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        let b = Matrix::from_rows(&[vec![5.0, 6.0], vec![7.0, 8.0], vec![9.0, 10.0]]);
        let direct = a.matmul_t(&b);
        let via_transpose = a.matmul(&b.transpose());
        assert_eq!(direct, via_transpose);
    }

    #[test]
    fn transpose_involution() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0, 3.0], vec![4.0, 5.0, 6.0]]);
        assert_eq!(a.transpose().transpose(), a);
    }

    #[test]
    fn covariance_of_constant_rows_is_zero() {
        let a = Matrix::from_rows(&[vec![2.0, -1.0], vec![2.0, -1.0], vec![2.0, -1.0]]);
        let cov = a.covariance();
        assert!(cov.max_abs() < 1e-12);
    }

    #[test]
    fn covariance_hand_computed() {
        // Two points (0,0) and (2,2): mean (1,1), cov = [[1,1],[1,1]].
        let a = Matrix::from_rows(&[vec![0.0, 0.0], vec![2.0, 2.0]]);
        let cov = a.covariance();
        for i in 0..2 {
            for j in 0..2 {
                assert!((cov[(i, j)] - 1.0).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn axpy_and_scale() {
        let mut a = Matrix::full(2, 2, 1.0);
        let b = Matrix::full(2, 2, 2.0);
        a.axpy(0.5, &b);
        assert!(a.as_slice().iter().all(|&v| (v - 2.0).abs() < 1e-12));
        a.scale(2.0);
        assert!(a.as_slice().iter().all(|&v| (v - 4.0).abs() < 1e-12));
    }

    #[test]
    fn select_rows_picks_expected() {
        let a = Matrix::from_rows(&[vec![1.0], vec![2.0], vec![3.0]]);
        let s = a.select_rows(&[2, 0]);
        assert_eq!(s.row(0), &[3.0]);
        assert_eq!(s.row(1), &[1.0]);
    }

    #[test]
    fn frobenius_norm_hand_computed() {
        let a = Matrix::from_rows(&[vec![3.0, 0.0], vec![0.0, 4.0]]);
        assert!((a.frobenius_norm() - 5.0).abs() < 1e-12);
    }
}
