//! Principal component analysis.
//!
//! PCA is the preprocessing step of ITQ and Spectral Hashing: data is
//! mean-centered and projected onto the top-`k` eigenvectors of the
//! covariance matrix.

use crate::{jacobi_eigen, Matrix};

/// A fitted PCA transform: mean vector plus top-`k` principal directions.
#[derive(Debug, Clone)]
pub struct Pca {
    mean: Vec<f64>,
    /// `d × k` projection: columns are principal directions.
    components: Matrix,
    /// Eigenvalues for the retained components, descending.
    explained: Vec<f64>,
}

impl Pca {
    /// Fit PCA on the rows of `data`, keeping `k` components.
    ///
    /// # Panics
    /// Panics if `k` exceeds the data dimensionality or `data` is empty.
    pub fn fit(data: &Matrix, k: usize) -> Self {
        assert!(data.rows() > 0, "PCA on empty data");
        assert!(k <= data.cols(), "k={k} exceeds dimensionality {}", data.cols());
        let mean = data.col_means();
        let cov = data.covariance();
        let ed = jacobi_eigen(&cov);
        let d = data.cols();
        let mut components = Matrix::zeros(d, k);
        for j in 0..k {
            for i in 0..d {
                components[(i, j)] = ed.vectors[(i, j)];
            }
        }
        Self { mean, components, explained: ed.values[..k].to_vec() }
    }

    /// Project the rows of `data` into the `k`-dimensional PCA space.
    pub fn transform(&self, data: &Matrix) -> Matrix {
        let mut centered = data.clone();
        centered.center_rows(&self.mean);
        centered.matmul(&self.components)
    }

    /// Number of retained components.
    pub fn k(&self) -> usize {
        self.components.cols()
    }

    /// Eigenvalues of the retained components (descending).
    pub fn explained_variance(&self) -> &[f64] {
        &self.explained
    }

    /// The fitted mean vector.
    pub fn mean(&self) -> &[f64] {
        &self.mean
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng;
    use crate::vecops;

    #[test]
    fn recovers_dominant_direction() {
        // Points spread along (1,1) with tiny orthogonal noise: PC1 ≈ ±(1,1)/√2.
        let mut r = rng::seeded(3);
        let mut rows = Vec::new();
        for _ in 0..200 {
            let t = rng::gauss(&mut r) * 5.0;
            let e = rng::gauss(&mut r) * 0.01;
            rows.push(vec![t + e, t - e]);
        }
        let data = Matrix::from_rows(&rows);
        let pca = Pca::fit(&data, 1);
        let pc1 = pca.components.col(0);
        let cos = vecops::cosine(&pc1, &[1.0, 1.0]).abs();
        assert!(cos > 0.999, "cos={cos}");
    }

    #[test]
    fn transformed_data_is_centered() {
        let mut r = rng::seeded(4);
        let data = rng::gauss_matrix(&mut r, 100, 6, 1.0);
        let pca = Pca::fit(&data, 3);
        let proj = pca.transform(&data);
        let means = proj.col_means();
        assert!(means.iter().all(|m| m.abs() < 1e-10));
    }

    #[test]
    fn transformed_dims_decorrelated() {
        let mut r = rng::seeded(8);
        let data = rng::gauss_matrix(&mut r, 300, 5, 1.0);
        let pca = Pca::fit(&data, 5);
        let proj = pca.transform(&data);
        let cov = proj.covariance();
        for i in 0..5 {
            for j in 0..5 {
                if i != j {
                    assert!(cov[(i, j)].abs() < 1e-8, "cov[{i}{j}]={}", cov[(i, j)]);
                }
            }
        }
    }

    #[test]
    fn explained_variance_descending() {
        let mut r = rng::seeded(12);
        let data = rng::gauss_matrix(&mut r, 80, 7, 1.0);
        let pca = Pca::fit(&data, 7);
        let ev = pca.explained_variance();
        assert!(ev.windows(2).all(|w| w[0] >= w[1] - 1e-12));
    }

    #[test]
    #[should_panic(expected = "exceeds dimensionality")]
    fn k_too_large_panics() {
        let data = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        let _ = Pca::fit(&data, 3);
    }
}
