//! Symmetric eigendecomposition via the cyclic Jacobi method.
//!
//! Spectral Hashing, ITQ (through PCA), Anchor Graph Hashing and t-SNE all
//! need eigenpairs of small symmetric matrices (covariances, graph
//! Laplacians). The cyclic Jacobi method is simple, numerically robust, and
//! more than fast enough at the dimensionalities this reproduction uses
//! (≤ a few hundred).

use crate::Matrix;

/// Result of a symmetric eigendecomposition: `A = V diag(λ) V^T`.
#[derive(Debug, Clone)]
pub struct EigenDecomposition {
    /// Eigenvalues, sorted in descending order.
    pub values: Vec<f64>,
    /// Eigenvectors as *columns*, in the same order as `values`.
    pub vectors: Matrix,
}

impl EigenDecomposition {
    /// The eigenvector for `values[k]`, copied out as a vector.
    pub fn vector(&self, k: usize) -> Vec<f64> {
        self.vectors.col(k)
    }
}

/// Eigendecomposition of a symmetric matrix by cyclic Jacobi rotations.
///
/// Sweeps annihilate off-diagonal entries until the off-diagonal Frobenius
/// mass falls below `1e-12 * ||A||_F` or `max_sweeps` is reached (both are
/// ample for the well-conditioned covariance/affinity matrices used here).
///
/// # Panics
/// Panics if `a` is not square.
pub fn jacobi_eigen(a: &Matrix) -> EigenDecomposition {
    assert_eq!(a.rows(), a.cols(), "jacobi_eigen requires a square matrix");
    let n = a.rows();
    let mut m = a.clone();
    let mut v = Matrix::identity(n);
    let tol = 1e-12 * a.frobenius_norm().max(1e-300);
    let max_sweeps = 100;

    for _ in 0..max_sweeps {
        let off: f64 = (0..n)
            .flat_map(|i| (0..n).filter(move |&j| j != i).map(move |j| (i, j)))
            .map(|(i, j)| m[(i, j)] * m[(i, j)])
            .sum::<f64>()
            .sqrt();
        if off <= tol {
            break;
        }
        for p in 0..n {
            for q in (p + 1)..n {
                let apq = m[(p, q)];
                if apq.abs() <= tol / (n as f64) {
                    continue;
                }
                let app = m[(p, p)];
                let aqq = m[(q, q)];
                let theta = (aqq - app) / (2.0 * apq);
                let t = theta.signum() / (theta.abs() + (theta * theta + 1.0).sqrt());
                let c = 1.0 / (t * t + 1.0).sqrt();
                let s = t * c;

                // Apply the rotation G(p,q,θ): M = Gᵀ M G, V = V G.
                for k in 0..n {
                    let mkp = m[(k, p)];
                    let mkq = m[(k, q)];
                    m[(k, p)] = c * mkp - s * mkq;
                    m[(k, q)] = s * mkp + c * mkq;
                }
                for k in 0..n {
                    let mpk = m[(p, k)];
                    let mqk = m[(q, k)];
                    m[(p, k)] = c * mpk - s * mqk;
                    m[(q, k)] = s * mpk + c * mqk;
                }
                for k in 0..n {
                    let vkp = v[(k, p)];
                    let vkq = v[(k, q)];
                    v[(k, p)] = c * vkp - s * vkq;
                    v[(k, q)] = s * vkp + c * vkq;
                }
            }
        }
    }

    // Extract and sort by descending eigenvalue.
    let mut order: Vec<usize> = (0..n).collect();
    let diag: Vec<f64> = (0..n).map(|i| m[(i, i)]).collect();
    order.sort_by(|&i, &j| diag[j].partial_cmp(&diag[i]).expect("NaN eigenvalue"));

    let values: Vec<f64> = order.iter().map(|&i| diag[i]).collect();
    let mut vectors = Matrix::zeros(n, n);
    for (new_col, &old_col) in order.iter().enumerate() {
        for r in 0..n {
            vectors[(r, new_col)] = v[(r, old_col)];
        }
    }
    EigenDecomposition { values, vectors }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng;
    use rand::Rng;

    fn reconstruct(ed: &EigenDecomposition) -> Matrix {
        let lam = Matrix::from_diag(&ed.values);
        ed.vectors.matmul(&lam).matmul(&ed.vectors.transpose())
    }

    #[test]
    fn diagonal_matrix_eigenvalues() {
        let a = Matrix::from_diag(&[3.0, 1.0, 2.0]);
        let ed = jacobi_eigen(&a);
        assert!((ed.values[0] - 3.0).abs() < 1e-10);
        assert!((ed.values[1] - 2.0).abs() < 1e-10);
        assert!((ed.values[2] - 1.0).abs() < 1e-10);
    }

    #[test]
    fn two_by_two_hand_computed() {
        // [[2,1],[1,2]] has eigenvalues 3 and 1.
        let a = Matrix::from_rows(&[vec![2.0, 1.0], vec![1.0, 2.0]]);
        let ed = jacobi_eigen(&a);
        assert!((ed.values[0] - 3.0).abs() < 1e-10);
        assert!((ed.values[1] - 1.0).abs() < 1e-10);
        // Eigenvector for λ=3 is ±(1,1)/√2.
        let v0 = ed.vector(0);
        assert!((v0[0].abs() - std::f64::consts::FRAC_1_SQRT_2).abs() < 1e-8);
        assert!((v0[0] - v0[1]).abs() < 1e-8);
    }

    #[test]
    fn reconstructs_random_symmetric_matrix() {
        let mut r = rng::seeded(11);
        let n = 12;
        let mut a = Matrix::zeros(n, n);
        for i in 0..n {
            for j in i..n {
                let x = r.gen_range(-1.0..1.0);
                a[(i, j)] = x;
                a[(j, i)] = x;
            }
        }
        let ed = jacobi_eigen(&a);
        let diff = reconstruct(&ed).sub(&a);
        assert!(diff.max_abs() < 1e-8, "reconstruction error {}", diff.max_abs());
    }

    #[test]
    fn eigenvectors_are_orthonormal() {
        let mut r = rng::seeded(5);
        let n = 10;
        let x = rng::gauss_matrix(&mut r, 40, n, 1.0);
        let cov = x.covariance();
        let ed = jacobi_eigen(&cov);
        let gram = ed.vectors.t_matmul(&ed.vectors);
        let diff = gram.sub(&Matrix::identity(n));
        assert!(diff.max_abs() < 1e-8);
    }

    #[test]
    fn covariance_eigenvalues_nonnegative() {
        let mut r = rng::seeded(6);
        let x = rng::gauss_matrix(&mut r, 30, 8, 1.0);
        let ed = jacobi_eigen(&x.covariance());
        assert!(ed.values.iter().all(|&l| l > -1e-10));
        // Descending order.
        assert!(ed.values.windows(2).all(|w| w[0] >= w[1] - 1e-12));
    }
}
