//! Seeded random sampling helpers.
//!
//! Every stochastic component of the reproduction (dataset synthesis, SimClip
//! noise, network initialization, SGD shuffling, LSH projections, …) draws
//! through these helpers from an explicitly seeded [`rand::rngs::StdRng`], so
//! whole experiments are bit-reproducible from a single seed.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Construct a deterministically seeded RNG.
pub fn seeded(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

/// Sample a standard normal via the Box–Muller transform.
///
/// `rand` 0.8 does not ship a Gaussian distribution (that lives in
/// `rand_distr`, which is outside the sanctioned dependency set), so we
/// implement the classic transform directly.
pub fn gauss(rng: &mut impl Rng) -> f64 {
    // Guard u1 away from 0 so ln() is finite.
    let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    let u2: f64 = rng.gen::<f64>();
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

/// Sample a length-`n` vector of i.i.d. `N(0, sigma^2)` entries.
pub fn gauss_vec(rng: &mut impl Rng, n: usize, sigma: f64) -> Vec<f64> {
    (0..n).map(|_| sigma * gauss(rng)).collect()
}

/// Fill a matrix buffer with i.i.d. `N(0, sigma^2)` entries.
pub fn gauss_matrix(rng: &mut impl Rng, rows: usize, cols: usize, sigma: f64) -> crate::Matrix {
    crate::Matrix::from_vec(rows, cols, gauss_vec(rng, rows * cols, sigma))
}

/// Fisher–Yates shuffled index permutation `0..n`.
pub fn permutation(rng: &mut impl Rng, n: usize) -> Vec<usize> {
    let mut idx: Vec<usize> = (0..n).collect();
    for i in (1..n).rev() {
        let j = rng.gen_range(0..=i);
        idx.swap(i, j);
    }
    idx
}

/// Sample `k` distinct indices from `0..n` (first `k` of a permutation).
///
/// # Panics
/// Panics if `k > n`.
pub fn sample_without_replacement(rng: &mut impl Rng, n: usize, k: usize) -> Vec<usize> {
    assert!(k <= n, "cannot sample {k} from {n} without replacement");
    let mut perm = permutation(rng, n);
    perm.truncate(k);
    perm
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeded_is_deterministic() {
        let a: Vec<f64> = {
            let mut r = seeded(42);
            (0..10).map(|_| r.gen::<f64>()).collect()
        };
        let b: Vec<f64> = {
            let mut r = seeded(42);
            (0..10).map(|_| r.gen::<f64>()).collect()
        };
        assert_eq!(a, b);
    }

    #[test]
    fn gauss_moments_roughly_standard() {
        let mut rng = seeded(1);
        let xs: Vec<f64> = (0..50_000).map(|_| gauss(&mut rng)).collect();
        let m = crate::vecops::mean(&xs);
        let v = crate::vecops::variance(&xs);
        assert!(m.abs() < 0.03, "mean {m}");
        assert!((v - 1.0).abs() < 0.05, "variance {v}");
    }

    #[test]
    fn permutation_is_a_permutation() {
        let mut rng = seeded(7);
        let mut p = permutation(&mut rng, 100);
        p.sort_unstable();
        assert_eq!(p, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn sampling_without_replacement_distinct() {
        let mut rng = seeded(9);
        let s = sample_without_replacement(&mut rng, 50, 20);
        let mut t = s.clone();
        t.sort_unstable();
        t.dedup();
        assert_eq!(t.len(), 20);
        assert!(t.iter().all(|&i| i < 50));
    }

    #[test]
    #[should_panic(expected = "without replacement")]
    fn oversampling_panics() {
        let mut rng = seeded(3);
        let _ = sample_without_replacement(&mut rng, 3, 4);
    }
}
