//! Numeric sanitizer — the runtime half of the correctness tooling.
//!
//! With the `checked` cargo feature enabled, the hot paths of the pipeline
//! (layer forward/backward, the optimizer step, every loss term, a
//! per-epoch parameter audit) call the assertions here to trap the first
//! NaN/Inf the moment it is produced, with a message naming the operation
//! and operand shapes. Without the feature the [`check_finite!`] /
//! [`check_slice_finite!`] / [`check_scalar_finite!`] call sites expand to
//! nothing, so release throughput is untouched.
//!
//! Enable it on any workspace crate or the facade:
//!
//! ```text
//! cargo test --features checked
//! cargo run --release --features checked --example quickstart
//! ```

#[cfg(feature = "checked")]
use crate::Matrix;

/// Abort with a sanitizer diagnostic if any element of `m` is NaN/Inf.
///
/// `op` names the computation (e.g. `"Linear::backward"`), `operand` the
/// tensor within it (e.g. `"grad_weight"`).
///
/// # Panics
/// Panics on the first non-finite element, reporting op, operand, the
/// matrix shape and the offending coordinate.
#[cfg(feature = "checked")]
pub fn assert_matrix_finite(op: &str, operand: &str, m: &Matrix) {
    let (rows, cols) = m.shape();
    for (idx, &v) in m.as_slice().iter().enumerate() {
        if !v.is_finite() {
            panic!(
                "checked[{op}]: non-finite value {v} in {operand} ({rows}x{cols}) \
                 at row {}, col {}",
                idx / cols.max(1),
                idx % cols.max(1),
            );
        }
    }
}

/// Slice version of [`assert_matrix_finite`] (biases, per-item weights).
///
/// # Panics
/// Panics on the first non-finite element, reporting op, operand, length
/// and index.
#[cfg(feature = "checked")]
pub fn assert_slice_finite(op: &str, operand: &str, s: &[f64]) {
    for (idx, &v) in s.iter().enumerate() {
        if !v.is_finite() {
            panic!(
                "checked[{op}]: non-finite value {v} in {operand} (len {}) at index {idx}",
                s.len(),
            );
        }
    }
}

/// Scalar version of [`assert_matrix_finite`] (loss terms, step sizes).
///
/// # Panics
/// Panics if `v` is NaN/Inf, reporting op and operand.
#[cfg(feature = "checked")]
pub fn assert_scalar_finite(op: &str, operand: &str, v: f64) {
    if !v.is_finite() {
        panic!("checked[{op}]: non-finite value {v} in {operand}");
    }
}

/// Sanitize a [`Matrix`](crate::Matrix) expression under the `checked`
/// feature; expands to nothing otherwise. The feature is resolved in the
/// *calling* crate, so every crate using this macro forwards a `checked`
/// feature to `uhscm-linalg/checked`.
#[macro_export]
macro_rules! check_finite {
    ($op:expr, $operand:expr, $m:expr) => {
        #[cfg(feature = "checked")]
        {
            $crate::checked::assert_matrix_finite($op, $operand, $m);
        }
    };
}

/// Sanitize a `&[f64]` expression under the `checked` feature.
#[macro_export]
macro_rules! check_slice_finite {
    ($op:expr, $operand:expr, $s:expr) => {
        #[cfg(feature = "checked")]
        {
            $crate::checked::assert_slice_finite($op, $operand, $s);
        }
    };
}

/// Sanitize an `f64` expression under the `checked` feature.
#[macro_export]
macro_rules! check_scalar_finite {
    ($op:expr, $operand:expr, $v:expr) => {
        #[cfg(feature = "checked")]
        {
            $crate::checked::assert_scalar_finite($op, $operand, $v);
        }
    };
}

#[cfg(all(test, feature = "checked"))]
mod tests {
    use super::*;
    use crate::Matrix;

    #[test]
    fn finite_values_pass() {
        let m = Matrix::full(2, 3, 1.5);
        assert_matrix_finite("test", "m", &m);
        assert_slice_finite("test", "s", &[0.0, -1.0]);
        assert_scalar_finite("test", "v", 2.0);
    }

    #[test]
    #[should_panic(
        expected = "checked[matmul]: non-finite value NaN in output (2x2) at row 1, col 0"
    )]
    fn nan_reports_op_shape_and_coordinate() {
        let mut m = Matrix::zeros(2, 2);
        m[(1, 0)] = f64::NAN;
        assert_matrix_finite("matmul", "output", &m);
    }

    #[test]
    #[should_panic(
        expected = "checked[Sgd::step]: non-finite value inf in bias (len 2) at index 1"
    )]
    fn inf_in_slice_reports_index() {
        assert_slice_finite("Sgd::step", "bias", &[1.0, f64::INFINITY]);
    }

    #[test]
    #[should_panic(expected = "checked[loss]: non-finite value NaN in similarity term")]
    fn scalar_nan_reports() {
        assert_scalar_finite("loss", "similarity term", f64::NAN);
    }

    #[test]
    fn macros_compile_and_check() {
        let m = Matrix::identity(2);
        check_finite!("test", "m", &m);
        check_slice_finite!("test", "s", &[1.0]);
        check_scalar_finite!("test", "v", 0.5);
    }
}
