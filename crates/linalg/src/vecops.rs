//! Vector kernels: dot products, norms, cosine similarity, softmax.
//!
//! These are the inner loops of concept mining (Eq. 1-3 of the paper) and of
//! Hamming-similarity computation, so they are written to be branch-free and
//! auto-vectorizable.

/// Dot product of two equal-length slices.
///
/// # Panics
/// Panics (in debug builds) on length mismatch.
#[inline]
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

/// Euclidean (ℓ2) norm.
#[inline]
pub fn norm(a: &[f64]) -> f64 {
    dot(a, a).sqrt()
}

/// Squared Euclidean distance between two slices.
#[inline]
pub fn sq_dist(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum()
}

/// Cosine similarity; returns 0 when either vector is (numerically) zero.
///
/// This is the similarity used throughout the paper (Eq. 3, Eq. 6, and the
/// relaxed Hamming similarity ĥ of Eq. 11).
#[inline]
pub fn cosine(a: &[f64], b: &[f64]) -> f64 {
    let na = norm(a);
    let nb = norm(b);
    if na < 1e-12 || nb < 1e-12 {
        return 0.0;
    }
    dot(a, b) / (na * nb)
}

/// Normalize `a` to unit ℓ2 norm in place; leaves zero vectors untouched.
pub fn normalize(a: &mut [f64]) {
    let n = norm(a);
    if n > 1e-12 {
        for v in a {
            *v /= n;
        }
    }
}

/// Numerically stable softmax of `logits` scaled by `temperature`
/// (computes `softmax(temperature * logits)`, Eq. 2 of the paper).
pub fn softmax_scaled(logits: &[f64], temperature: f64) -> Vec<f64> {
    let max = logits.iter().fold(f64::NEG_INFINITY, |m, &v| m.max(temperature * v));
    let mut out: Vec<f64> = logits.iter().map(|&v| (temperature * v - max).exp()).collect();
    let sum: f64 = out.iter().sum();
    if sum > 0.0 {
        for v in &mut out {
            *v /= sum;
        }
    }
    out
}

/// Index of the maximum element (first occurrence on ties).
///
/// # Panics
/// Panics on an empty slice.
pub fn argmax(a: &[f64]) -> usize {
    assert!(!a.is_empty(), "argmax of empty slice");
    let mut best = 0;
    for (i, &v) in a.iter().enumerate().skip(1) {
        if v > a[best] {
            best = i;
        }
    }
    best
}

/// Arithmetic mean; 0 for an empty slice.
pub fn mean(a: &[f64]) -> f64 {
    if a.is_empty() {
        0.0
    } else {
        a.iter().sum::<f64>() / a.len() as f64
    }
}

/// Population variance; 0 for slices shorter than 2.
pub fn variance(a: &[f64]) -> f64 {
    if a.len() < 2 {
        return 0.0;
    }
    let m = mean(a);
    a.iter().map(|&v| (v - m) * (v - m)).sum::<f64>() / a.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_hand_computed() {
        assert_eq!(dot(&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]), 32.0);
    }

    #[test]
    fn norm_pythagoras() {
        assert!((norm(&[3.0, 4.0]) - 5.0).abs() < 1e-12);
    }

    #[test]
    fn cosine_parallel_and_orthogonal() {
        assert!((cosine(&[1.0, 0.0], &[2.0, 0.0]) - 1.0).abs() < 1e-12);
        assert!(cosine(&[1.0, 0.0], &[0.0, 5.0]).abs() < 1e-12);
        assert!((cosine(&[1.0, 0.0], &[-3.0, 0.0]) + 1.0).abs() < 1e-12);
    }

    #[test]
    fn cosine_zero_vector_is_zero() {
        assert_eq!(cosine(&[0.0, 0.0], &[1.0, 1.0]), 0.0);
    }

    #[test]
    fn normalize_unit_norm() {
        let mut v = vec![3.0, 4.0];
        normalize(&mut v);
        assert!((norm(&v) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn softmax_sums_to_one_and_orders() {
        let p = softmax_scaled(&[1.0, 2.0, 3.0], 1.0);
        assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert!(p[2] > p[1] && p[1] > p[0]);
    }

    #[test]
    fn softmax_high_temperature_sharpens() {
        let soft = softmax_scaled(&[0.1, 0.2], 1.0);
        let sharp = softmax_scaled(&[0.1, 0.2], 100.0);
        assert!(sharp[1] > soft[1]);
        assert!(sharp[1] > 0.99);
    }

    #[test]
    fn softmax_extreme_logits_stable() {
        let p = softmax_scaled(&[1e6, -1e6], 1.0);
        assert!(p[0].is_finite() && p[1].is_finite());
        assert!((p[0] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn argmax_first_tie() {
        assert_eq!(argmax(&[1.0, 3.0, 3.0, 2.0]), 1);
    }

    #[test]
    fn mean_variance_hand_computed() {
        let a = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert!((mean(&a) - 5.0).abs() < 1e-12);
        assert!((variance(&a) - 4.0).abs() < 1e-12);
    }

    #[test]
    fn sq_dist_hand_computed() {
        assert_eq!(sq_dist(&[0.0, 0.0], &[3.0, 4.0]), 25.0);
    }
}
