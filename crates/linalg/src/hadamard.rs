//! Hadamard matrices (Sylvester construction).
//!
//! Central Similarity Quantization (CSQ, described in the paper's §2.2)
//! uses the rows of a Hadamard matrix as hash centers: for `H ∈ {±1}^{k×k}`
//! with `H Hᵀ = k·I`, any two distinct rows are at Hamming distance exactly
//! `k/2` — maximally separated centers for free.

use crate::Matrix;

/// The Sylvester Hadamard matrix of order `n` (`n` must be a power of two).
///
/// Returns an `n × n` ±1 matrix with mutually orthogonal rows.
///
/// # Panics
/// Panics if `n` is zero or not a power of two.
pub fn hadamard(n: usize) -> Matrix {
    assert!(n > 0 && n.is_power_of_two(), "Hadamard order must be a power of two, got {n}");
    let mut h = Matrix::zeros(n, n);
    // H[i][j] = (−1)^{popcount(i & j)} — the closed form of the Sylvester
    // recursion H_{2n} = [[H, H], [H, −H]].
    for i in 0..n {
        for j in 0..n {
            h[(i, j)] = if (i & j).count_ones() % 2 == 0 { 1.0 } else { -1.0 };
        }
    }
    h
}

/// `count` maximally separated ±1 hash centers of length `bits`.
///
/// Rows of the order-`bits` Hadamard matrix (and, if more are needed, their
/// negations) — following CSQ's construction. `bits` must be a power of two
/// and `count ≤ 2·bits`.
///
/// # Panics
/// Panics if the construction cannot supply `count` centers.
pub fn hadamard_centers(count: usize, bits: usize) -> Matrix {
    assert!(count <= 2 * bits, "cannot place {count} centers in {bits} bits (max {})", 2 * bits);
    let h = hadamard(bits);
    let mut centers = Matrix::zeros(count, bits);
    for c in 0..count {
        let row = h.row(c % bits);
        let sign = if c < bits { 1.0 } else { -1.0 };
        for (dst, &v) in centers.row_mut(c).iter_mut().zip(row) {
            *dst = sign * v;
        }
    }
    centers
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vecops;

    #[test]
    fn rows_orthogonal() {
        for n in [1usize, 2, 4, 8, 16, 64] {
            let h = hadamard(n);
            for i in 0..n {
                for j in 0..n {
                    let d = vecops::dot(h.row(i), h.row(j));
                    let expected = if i == j { n as f64 } else { 0.0 };
                    assert_eq!(d, expected, "n={n} rows {i},{j}");
                }
            }
        }
    }

    #[test]
    fn entries_are_pm_one() {
        let h = hadamard(8);
        assert!(h.as_slice().iter().all(|&v| v == 1.0 || v == -1.0));
    }

    #[test]
    fn distinct_centers_at_half_hamming() {
        // Orthogonal ±1 rows disagree in exactly k/2 positions.
        let centers = hadamard_centers(10, 16);
        for i in 0..10 {
            for j in (i + 1)..10 {
                let hd = centers.row(i).iter().zip(centers.row(j)).filter(|(a, b)| a != b).count();
                assert!(hd == 8 || hd == 16, "centers {i},{j} at distance {hd} (expected 8 or 16)");
            }
        }
    }

    #[test]
    fn negated_rows_used_beyond_order() {
        let centers = hadamard_centers(20, 16);
        for c in 0..4 {
            let pos = centers.row(c).to_vec();
            let neg = centers.row(16 + c).to_vec();
            assert!(pos.iter().zip(&neg).all(|(a, b)| *a == -*b));
        }
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_rejected() {
        let _ = hadamard(12);
    }

    #[test]
    #[should_panic(expected = "cannot place")]
    fn too_many_centers_rejected() {
        let _ = hadamard_centers(40, 16);
    }
}
