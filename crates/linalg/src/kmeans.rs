//! K-means clustering with k-means++ initialization.
//!
//! Used by the paper's clustering-based denoising ablations (`UHSCM_c20` …
//! `UHSCM_c60`, Table 2 rows 8-12), which cluster the raw concept set into
//! `n` groups instead of frequency-denoising it, and by Anchor Graph Hashing
//! to pick anchors.

use crate::vecops::sq_dist;
use crate::Matrix;
use rand::Rng;

/// Result of a k-means run.
#[derive(Debug, Clone)]
pub struct KMeansResult {
    /// `k × d` centroid matrix.
    pub centroids: Matrix,
    /// Cluster assignment per input row.
    pub assignments: Vec<usize>,
    /// Final within-cluster sum of squares.
    pub inertia: f64,
    /// Lloyd iterations actually executed.
    pub iterations: usize,
}

/// Run k-means++ followed by Lloyd iterations on the rows of `data`.
///
/// Converges when assignments stop changing or after `max_iter` rounds.
/// Empty clusters are re-seeded with the point farthest from its centroid.
///
/// # Panics
/// Panics if `k == 0` or `k` exceeds the number of rows.
pub fn kmeans(data: &Matrix, k: usize, max_iter: usize, rng: &mut impl Rng) -> KMeansResult {
    let n = data.rows();
    let d = data.cols();
    assert!(k > 0, "k must be positive");
    assert!(k <= n, "k={k} exceeds number of points {n}");

    let mut centroids = kmeanspp_init(data, k, rng);
    let mut assignments = vec![0usize; n];
    let mut iterations = 0;

    for iter in 0..max_iter {
        iterations = iter + 1;
        // Assign step.
        let mut changed = false;
        for (i, slot) in assignments.iter_mut().enumerate() {
            let row = data.row(i);
            let mut best = 0;
            let mut best_d = f64::INFINITY;
            for c in 0..k {
                let dist = sq_dist(row, centroids.row(c));
                if dist < best_d {
                    best_d = dist;
                    best = c;
                }
            }
            if *slot != best {
                *slot = best;
                changed = true;
            }
        }
        if !changed && iter > 0 {
            break;
        }
        // Update step.
        let mut sums = Matrix::zeros(k, d);
        let mut counts = vec![0usize; k];
        for (i, &a) in assignments.iter().enumerate() {
            counts[a] += 1;
            for (s, &v) in sums.row_mut(a).iter_mut().zip(data.row(i)) {
                *s += v;
            }
        }
        for (c, &count) in counts.iter().enumerate() {
            if count == 0 {
                // Re-seed an empty cluster with the worst-fit point.
                let far = (0..n)
                    .max_by(|&a, &b| {
                        let da = sq_dist(data.row(a), centroids.row(assignments[a]));
                        let db = sq_dist(data.row(b), centroids.row(assignments[b]));
                        da.partial_cmp(&db).expect("NaN distance")
                    })
                    .expect("nonempty data");
                centroids.row_mut(c).copy_from_slice(data.row(far));
            } else {
                let inv = 1.0 / count as f64;
                for (cv, &s) in centroids.row_mut(c).iter_mut().zip(sums.row(c)) {
                    *cv = s * inv;
                }
            }
        }
    }

    let inertia = (0..n).map(|i| sq_dist(data.row(i), centroids.row(assignments[i]))).sum();
    KMeansResult { centroids, assignments, inertia, iterations }
}

/// k-means++ seeding: first centroid uniform, subsequent ones proportional to
/// squared distance from the nearest already-chosen centroid.
fn kmeanspp_init(data: &Matrix, k: usize, rng: &mut impl Rng) -> Matrix {
    let n = data.rows();
    let d = data.cols();
    let mut centroids = Matrix::zeros(k, d);
    let first = rng.gen_range(0..n);
    centroids.row_mut(0).copy_from_slice(data.row(first));

    let mut min_d: Vec<f64> = (0..n).map(|i| sq_dist(data.row(i), centroids.row(0))).collect();
    for c in 1..k {
        let total: f64 = min_d.iter().sum();
        let pick = if total <= 0.0 {
            rng.gen_range(0..n)
        } else {
            let mut target = rng.gen::<f64>() * total;
            let mut chosen = n - 1;
            for (i, &w) in min_d.iter().enumerate() {
                target -= w;
                if target <= 0.0 {
                    chosen = i;
                    break;
                }
            }
            chosen
        };
        centroids.row_mut(c).copy_from_slice(data.row(pick));
        for (i, slot) in min_d.iter_mut().enumerate() {
            let dnew = sq_dist(data.row(i), centroids.row(c));
            if dnew < *slot {
                *slot = dnew;
            }
        }
    }
    centroids
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng;

    fn blobs(rng: &mut impl Rng, per_blob: usize) -> Matrix {
        // Three well-separated 2-D blobs.
        let centers = [[0.0, 0.0], [10.0, 0.0], [0.0, 10.0]];
        let mut rows = Vec::new();
        for c in &centers {
            for _ in 0..per_blob {
                rows.push(vec![c[0] + 0.3 * rng::gauss(rng), c[1] + 0.3 * rng::gauss(rng)]);
            }
        }
        Matrix::from_rows(&rows)
    }

    #[test]
    fn separates_well_formed_blobs() {
        let mut r = rng::seeded(2);
        let data = blobs(&mut r, 30);
        let res = kmeans(&data, 3, 100, &mut r);
        // All points of one blob share an assignment.
        for blob in 0..3 {
            let first = res.assignments[blob * 30];
            for i in 0..30 {
                assert_eq!(res.assignments[blob * 30 + i], first, "blob {blob} split");
            }
        }
        assert!(res.inertia < 3.0 * 30.0 * 0.5, "inertia {}", res.inertia);
    }

    #[test]
    fn k_equals_n_gives_zero_inertia() {
        let data = Matrix::from_rows(&[vec![0.0], vec![5.0], vec![9.0]]);
        let mut r = rng::seeded(1);
        let res = kmeans(&data, 3, 50, &mut r);
        assert!(res.inertia < 1e-12);
    }

    #[test]
    fn one_cluster_centroid_is_mean() {
        let data = Matrix::from_rows(&[vec![1.0, 1.0], vec![3.0, 5.0]]);
        let mut r = rng::seeded(1);
        let res = kmeans(&data, 1, 50, &mut r);
        assert!((res.centroids[(0, 0)] - 2.0).abs() < 1e-12);
        assert!((res.centroids[(0, 1)] - 3.0).abs() < 1e-12);
    }

    #[test]
    fn assignments_cover_all_points() {
        let mut r = rng::seeded(4);
        let data = rng::gauss_matrix(&mut r, 50, 4, 1.0);
        let res = kmeans(&data, 5, 30, &mut r);
        assert_eq!(res.assignments.len(), 50);
        assert!(res.assignments.iter().all(|&a| a < 5));
    }

    #[test]
    #[should_panic(expected = "exceeds number of points")]
    fn k_larger_than_n_panics() {
        let data = Matrix::from_rows(&[vec![0.0]]);
        let mut r = rng::seeded(1);
        let _ = kmeans(&data, 2, 10, &mut r);
    }
}
