//! Dense kernel layer: register-tiled microkernels + naive references.
//!
//! The three matrix products ([`Matrix::matmul`], [`Matrix::matmul_t`],
//! [`Matrix::t_matmul`]) all funnel through the *band kernels* in this
//! module: each computes a contiguous band of output rows, so the same
//! kernel serves both the serial path (one band covering the whole output)
//! and the [`crate::par`] row-band fan-out. On the 1-core containers this
//! workspace benches on, serial throughput is the only lever, and these
//! kernels are where it lives.
//!
//! # Tiling scheme
//!
//! Two shapes of kernel, chosen per product by what its reduction allows:
//!
//! * **`matmul` / `t_matmul` — [`MR`]-row axpy blocks, reduction unrolled
//!   by four.** Both products accumulate whole output rows
//!   (`out_row += x · b_row`), so the inner update is a full-width
//!   [`axpy4`] the compiler vectorizes to the target's full register width
//!   (the workspace builds with `target-cpu=native`, see
//!   `.cargo/config.toml`). The blocking wins are memory traffic: eight
//!   output rows are updated per pass over the streamed `b` panel, so `b`
//!   is read once per *eight* output rows instead of once per row — an 8×
//!   traffic cut on the `256×4096 · 4096×64` bench shape whose `b` panel
//!   (2 MB) does not fit in L2 — while the four-term unroll loads and
//!   stores each L1-resident output element once per *four* reduction
//!   terms instead of once per term.
//! * **`matmul_t` — 2×4 register dot tile.** Its per-element reduction is
//!   the strict sequential [`crate::vecops::dot`] fold, which cannot
//!   vectorize without reordering terms; the tile instead runs eight
//!   independent scalar accumulator chains so the multiply-add latency of
//!   one element hides behind seven others.
//!
//! # Accumulation-order invariant
//!
//! Tiling reorders loops *across* output elements only. Within one output
//! element, the reduction runs in exactly the naive kernel's term order
//! (ascending `k` for `matmul`/`matmul_t`, ascending row `i` for
//! `t_matmul`, with the same exact-zero skips), starting from the same
//! `0.0`. IEEE-754 addition is deterministic for a fixed operand sequence
//! (vector lanes are element-wise — rustc enables neither FP contraction
//! nor fast-math), so every tiled kernel is **bitwise identical** to its
//! naive reference — pinned by the in-module tests and the randomized
//! shapes in `tests/proptests.rs` — and the `parallel == serial` contract
//! of [`crate::par`] holds by the same argument at any band split.
//!
//! The axpy-style band kernels accumulate in place and therefore require
//! their output band to arrive **zero-initialized**; every caller hands
//! them rows of a fresh [`Matrix::zeros`] buffer.
//!
//! The naive references stay here as public functions: they are the oracle
//! for the bitwise tests and the baseline the kernel bench
//! (`BENCH_kernels.json`) and the `kernel_regression` ci gate measure
//! against.

use crate::matrix::Matrix;

/// Row-block height for the axpy-style kernels (`matmul`, `t_matmul`): the
/// streamed operand panel is read once per MR output rows, dividing its
/// memory traffic by MR, while the MR output rows (a few KB) stay resident
/// in L1 across the whole reduction. Taller blocks stop paying once the
/// output block outgrows L1 alongside the streamed lines.
const MR: usize = 8;

/// Exact sparsity test, factored out so the deliberate bitwise comparison
/// against literal zero appears once (see the `float-cmp` baseline entry).
#[inline(always)]
fn nonzero(a: f64) -> bool {
    a != 0.0
}

/// `o[t] += x * b[t]` over the full row width — the vectorized inner update
/// shared by the axpy-style kernels. Term order per element: this adds
/// exactly one ascending-order term to each output element per call.
#[inline(always)]
fn axpy(o: &mut [f64], x: f64, b: &[f64]) {
    for (ov, &bv) in o.iter_mut().zip(b) {
        *ov += x * bv;
    }
}

/// Four sequential axpy terms per output-element load/store: each element
/// is read once, accumulates `x[0]*b0 + x[1]*b1 + x[2]*b2 + x[3]*b3` in
/// exactly that order, and is stored once — the same term sequence as four
/// separate [`axpy`] calls at a quarter of the output-row memory traffic.
#[inline(always)]
fn axpy4(o: &mut [f64], x: [f64; 4], b0: &[f64], b1: &[f64], b2: &[f64], b3: &[f64]) {
    for ((((ov, &v0), &v1), &v2), &v3) in o.iter_mut().zip(b0).zip(b1).zip(b2).zip(b3) {
        let mut t = *ov;
        t += x[0] * v0;
        t += x[1] * v1;
        t += x[2] * v2;
        t += x[3] * v3;
        *ov = t;
    }
}

/// One 4-term reduction step for a single output row: [`axpy4`] when all
/// four coefficients are nonzero (the overwhelmingly common case for dense
/// data), per-term guarded [`axpy`] fallback otherwise. Either path adds
/// the surviving terms in ascending order, preserving the naive kernel's
/// exact-zero skips.
#[inline(always)]
fn step4(o: &mut [f64], x: [f64; 4], b0: &[f64], b1: &[f64], b2: &[f64], b3: &[f64]) {
    if nonzero(x[0]) && nonzero(x[1]) && nonzero(x[2]) && nonzero(x[3]) {
        axpy4(o, x, b0, b1, b2, b3);
    } else {
        if nonzero(x[0]) {
            axpy(o, x[0], b0);
        }
        if nonzero(x[1]) {
            axpy(o, x[1], b1);
        }
        if nonzero(x[2]) {
            axpy(o, x[2], b2);
        }
        if nonzero(x[3]) {
            axpy(o, x[3], b3);
        }
    }
}

// ---------------------------------------------------------------------------
// matmul: out[i][j] = Σ_k a[i][k] · b[k][j]
// ---------------------------------------------------------------------------

/// Tiled band kernel for [`Matrix::matmul`]: fills `out` (a contiguous,
/// zero-initialized band of output rows starting at global row `row0`)
/// from `a` and `b`.
///
/// # Panics
/// Panics (debug) if `out` is not a whole number of `b.cols()`-wide rows.
pub(crate) fn matmul_band(a: &Matrix, row0: usize, b: &Matrix, out: &mut [f64]) {
    let n = b.cols();
    if n == 0 {
        return;
    }
    debug_assert_eq!(out.len() % n, 0);
    let mut rest: &mut [f64] = out;
    let mut i = row0;
    // MR-row blocks, then single leftover rows (also used whenever the band
    // is shorter than a full block).
    while rest.len() >= MR * n {
        let (block, tail) = std::mem::take(&mut rest).split_at_mut(MR * n);
        rest = tail;
        matmul_rows8(a, i, b, block);
        i += MR;
    }
    for o in rest.chunks_exact_mut(n) {
        matmul_rows1(a.row(i), b, o);
        i += 1;
    }
}

/// MR-row block of [`matmul_band`]: eight output rows at once with the
/// reduction unrolled four `k` terms per pass, so each row of `b` is
/// loaded once per eight output rows and each output element is
/// loaded/stored once per four terms. Each element's terms accumulate in
/// ascending-`k` order with the naive kernel's exact-zero skip; `block`
/// must arrive zeroed.
fn matmul_rows8(a: &Matrix, i: usize, b: &Matrix, block: &mut [f64]) {
    let n = b.cols();
    let kk = a.cols();
    let bdata = b.as_slice();
    let (o0, r) = block.split_at_mut(n);
    let (o1, r) = r.split_at_mut(n);
    let (o2, r) = r.split_at_mut(n);
    let (o3, r) = r.split_at_mut(n);
    let (o4, r) = r.split_at_mut(n);
    let (o5, r) = r.split_at_mut(n);
    let (o6, o7) = r.split_at_mut(n);
    let ar: [&[f64]; MR] = [
        a.row(i),
        a.row(i + 1),
        a.row(i + 2),
        a.row(i + 3),
        a.row(i + 4),
        a.row(i + 5),
        a.row(i + 6),
        a.row(i + 7),
    ];
    let mut os: [&mut [f64]; MR] = [o0, o1, o2, o3, o4, o5, o6, o7];
    let mut k = 0;
    while k + 4 <= kk {
        let (b0, rest) = bdata[k * n..].split_at(n);
        let (b1, rest) = rest.split_at(n);
        let (b2, b3) = rest.split_at(n);
        let b3 = &b3[..n];
        for (r, o) in os.iter_mut().enumerate() {
            step4(o, [ar[r][k], ar[r][k + 1], ar[r][k + 2], ar[r][k + 3]], b0, b1, b2, b3);
        }
        k += 4;
    }
    while k < kk {
        let brow = &bdata[k * n..(k + 1) * n];
        for (r, o) in os.iter_mut().enumerate() {
            let x = ar[r][k];
            if nonzero(x) {
                axpy(o, x, brow);
            }
        }
        k += 1;
    }
}

/// Single-row tail of [`matmul_band`]: the same 4-term-unrolled reduction
/// as [`matmul_rows8`] for one row, same ascending-`k` order and zero
/// skip; `out` must arrive zeroed.
fn matmul_rows1(a_row: &[f64], b: &Matrix, out: &mut [f64]) {
    let n = b.cols();
    let kk = a_row.len();
    let bdata = b.as_slice();
    let mut k = 0;
    while k + 4 <= kk {
        let (b0, rest) = bdata[k * n..].split_at(n);
        let (b1, rest) = rest.split_at(n);
        let (b2, b3) = rest.split_at(n);
        let b3 = &b3[..n];
        step4(out, [a_row[k], a_row[k + 1], a_row[k + 2], a_row[k + 3]], b0, b1, b2, b3);
        k += 4;
    }
    while k < kk {
        let x = a_row[k];
        if nonzero(x) {
            axpy(out, x, &bdata[k * n..(k + 1) * n]);
        }
        k += 1;
    }
}

// ---------------------------------------------------------------------------
// matmul_t: out[i][j] = Σ_k a[i][k] · b[j][k]  (dot products of rows)
// ---------------------------------------------------------------------------

/// Tiled band kernel for [`Matrix::matmul_t`]: `out` is a band of output
/// rows starting at global row `row0`; output column `j` is the dot of
/// `a.row(i)` with `b.row(j)` (no zero skip — the naive kernel is a plain
/// `dot`).
pub(crate) fn matmul_t_band(a: &Matrix, row0: usize, b: &Matrix, out: &mut [f64]) {
    let n = b.rows();
    if n == 0 {
        return;
    }
    debug_assert_eq!(out.len() % n, 0);
    let mut rows = out.chunks_exact_mut(n);
    let mut i = row0;
    loop {
        let Some(o0) = rows.next() else { break };
        let Some(o1) = rows.next() else {
            matmul_t_rows1(a.row(i), b, o0);
            break;
        };
        matmul_t_rows2([a.row(i), a.row(i + 1)], b, [o0, o1]);
        i += 2;
    }
}

/// 2×4 register tile: two query rows against four `b` rows, `k` innermost,
/// eight scalar accumulators. Each element is the plain ascending-`k` dot.
///
/// The accumulators start at `-0.0`, not `0.0`: [`crate::vecops::dot`]
/// sums via `Iterator::sum`, whose float fold starts from `-0.0` (the
/// IEEE-754 additive identity), and the two starts differ bitwise exactly
/// when every accumulated term is a negative zero.
fn matmul_t_rows2(a: [&[f64]; 2], b: &Matrix, o: [&mut [f64]; 2]) {
    let n = b.rows();
    let [a0, a1] = a;
    let [o0, o1] = o;
    let mut j = 0;
    while j + 4 <= n {
        let (b0, b1, b2, b3) = (b.row(j), b.row(j + 1), b.row(j + 2), b.row(j + 3));
        let mut c = [[-0.0f64; 4]; 2];
        let ks = a0.iter().zip(a1).zip(b0).zip(b1).zip(b2).zip(b3);
        for (((((&x0, &x1), &y0), &y1), &y2), &y3) in ks {
            c[0][0] += x0 * y0;
            c[0][1] += x0 * y1;
            c[0][2] += x0 * y2;
            c[0][3] += x0 * y3;
            c[1][0] += x1 * y0;
            c[1][1] += x1 * y1;
            c[1][2] += x1 * y2;
            c[1][3] += x1 * y3;
        }
        o0[j..j + 4].copy_from_slice(&c[0]);
        o1[j..j + 4].copy_from_slice(&c[1]);
        j += 4;
    }
    while j < n {
        let brow = b.row(j);
        o0[j] = crate::vecops::dot(a0, brow);
        o1[j] = crate::vecops::dot(a1, brow);
        j += 1;
    }
}

/// Single-row tail of [`matmul_t_band`]: 1×4 tiles plus scalar dots. The
/// accumulators start at `-0.0` for the same signed-zero reason as
/// [`matmul_t_rows2`].
fn matmul_t_rows1(a_row: &[f64], b: &Matrix, out: &mut [f64]) {
    let n = b.rows();
    let mut j = 0;
    while j + 4 <= n {
        let (b0, b1, b2, b3) = (b.row(j), b.row(j + 1), b.row(j + 2), b.row(j + 3));
        let mut c = [-0.0f64; 4];
        let ks = a_row.iter().zip(b0).zip(b1).zip(b2).zip(b3);
        for ((((&x, &y0), &y1), &y2), &y3) in ks {
            c[0] += x * y0;
            c[1] += x * y1;
            c[2] += x * y2;
            c[3] += x * y3;
        }
        out[j..j + 4].copy_from_slice(&c);
        j += 4;
    }
    while j < n {
        out[j] = crate::vecops::dot(a_row, b.row(j));
        j += 1;
    }
}

// ---------------------------------------------------------------------------
// t_matmul: out[k][j] = Σ_i a[i][k] · b[i][j]
// ---------------------------------------------------------------------------

/// Tiled band kernel for [`Matrix::t_matmul`]: `out` is a contiguous,
/// zero-initialized band of output rows (columns `k` of `a`) starting at
/// global row `row0`. The reduction runs over `i` (rows of `a` and `b`)
/// innermost, in ascending order with the naive kernel's exact-zero skip
/// on `a[i][k]`.
pub(crate) fn t_matmul_band(a: &Matrix, row0: usize, b: &Matrix, out: &mut [f64]) {
    let n = b.cols();
    if n == 0 {
        return;
    }
    debug_assert_eq!(out.len() % n, 0);
    let mut rest: &mut [f64] = out;
    let mut k = row0;
    while rest.len() >= MR * n {
        let (block, tail) = std::mem::take(&mut rest).split_at_mut(MR * n);
        rest = tail;
        t_matmul_rows8(a, k, b, block);
        k += MR;
    }
    for o in rest.chunks_exact_mut(n) {
        t_matmul_rows1(a, k, b, o);
        k += 1;
    }
}

/// MR-row block of [`t_matmul_band`]: eight adjacent output rows (`a`
/// columns `k..k+8` — one cache line per `a` row) with the reduction
/// unrolled four `i` terms per pass, so each row of `b` is loaded once per
/// eight output rows and each output element is loaded/stored once per
/// four terms. Terms accumulate in ascending-`i` order with the naive
/// kernel's exact-zero skip; `block` must arrive zeroed.
fn t_matmul_rows8(a: &Matrix, k: usize, b: &Matrix, block: &mut [f64]) {
    let (ac, bc) = (a.cols(), b.cols());
    let rows = a.rows();
    let (adata, bdata) = (a.as_slice(), b.as_slice());
    let (o0, r) = block.split_at_mut(bc);
    let (o1, r) = r.split_at_mut(bc);
    let (o2, r) = r.split_at_mut(bc);
    let (o3, r) = r.split_at_mut(bc);
    let (o4, r) = r.split_at_mut(bc);
    let (o5, r) = r.split_at_mut(bc);
    let (o6, o7) = r.split_at_mut(bc);
    let mut os: [&mut [f64]; MR] = [o0, o1, o2, o3, o4, o5, o6, o7];
    let mut i = 0;
    while i + 4 <= rows {
        let (ar0, rest) = adata[i * ac..].split_at(ac);
        let (ar1, rest) = rest.split_at(ac);
        let (ar2, ar3) = rest.split_at(ac);
        let ar3 = &ar3[..ac];
        let (b0, rest) = bdata[i * bc..].split_at(bc);
        let (b1, rest) = rest.split_at(bc);
        let (b2, b3) = rest.split_at(bc);
        let b3 = &b3[..bc];
        for (j, o) in os.iter_mut().enumerate() {
            step4(o, [ar0[k + j], ar1[k + j], ar2[k + j], ar3[k + j]], b0, b1, b2, b3);
        }
        i += 4;
    }
    while i < rows {
        let arow = &adata[i * ac..(i + 1) * ac];
        let brow = &bdata[i * bc..(i + 1) * bc];
        for (j, o) in os.iter_mut().enumerate() {
            let x = arow[k + j];
            if nonzero(x) {
                axpy(o, x, brow);
            }
        }
        i += 1;
    }
}

/// Single-row tail of [`t_matmul_band`]: the same 4-term-unrolled
/// reduction as [`t_matmul_rows8`] for one output row, same ascending-`i`
/// order and zero skip; `out` must arrive zeroed.
fn t_matmul_rows1(a: &Matrix, k: usize, b: &Matrix, out: &mut [f64]) {
    let (ac, bc) = (a.cols(), b.cols());
    let rows = a.rows();
    let (adata, bdata) = (a.as_slice(), b.as_slice());
    let mut i = 0;
    while i + 4 <= rows {
        let (ar0, rest) = adata[i * ac..].split_at(ac);
        let (ar1, rest) = rest.split_at(ac);
        let (ar2, ar3) = rest.split_at(ac);
        let ar3 = &ar3[..ac];
        let (b0, rest) = bdata[i * bc..].split_at(bc);
        let (b1, rest) = rest.split_at(bc);
        let (b2, b3) = rest.split_at(bc);
        let b3 = &b3[..bc];
        step4(out, [ar0[k], ar1[k], ar2[k], ar3[k]], b0, b1, b2, b3);
        i += 4;
    }
    while i < rows {
        let x = adata[i * ac + k];
        if nonzero(x) {
            axpy(out, x, &bdata[i * bc..(i + 1) * bc]);
        }
        i += 1;
    }
}

// ---------------------------------------------------------------------------
// Naive references
// ---------------------------------------------------------------------------

/// Naive serial `a · b` — the streaming i-k-j loop the tiled kernel
/// replaced. Kept as the bitwise oracle for `tests/tiled_kernels.rs` and
/// the baseline for `BENCH_kernels.json` / the `kernel_regression` ci gate.
///
/// # Panics
/// Panics on inner-dimension mismatch.
pub fn matmul_naive(a: &Matrix, b: &Matrix) -> Matrix {
    assert_eq!(a.cols(), b.rows(), "matmul dim mismatch");
    let mut out = Matrix::zeros(a.rows(), b.cols());
    let n = b.cols();
    for i in 0..a.rows() {
        let out_row = &mut out.as_mut_slice()[i * n..(i + 1) * n];
        for (k, &x) in a.row(i).iter().enumerate() {
            if nonzero(x) {
                for (o, &bv) in out_row.iter_mut().zip(b.row(k)) {
                    *o += x * bv;
                }
            }
        }
    }
    out
}

/// Naive serial `a · bᵀ` — per-element dot products.
///
/// # Panics
/// Panics on column-count mismatch.
pub fn matmul_t_naive(a: &Matrix, b: &Matrix) -> Matrix {
    assert_eq!(a.cols(), b.cols(), "matmul_t dim mismatch");
    let mut out = Matrix::zeros(a.rows(), b.rows());
    let n = b.rows();
    for i in 0..a.rows() {
        let out_row = &mut out.as_mut_slice()[i * n..(i + 1) * n];
        for (j, o) in out_row.iter_mut().enumerate() {
            *o = crate::vecops::dot(a.row(i), b.row(j));
        }
    }
    out
}

/// Naive serial `aᵀ · b` — the streaming i-outer loop, skipping exact
/// zeros of `a`, accumulating each output element in ascending-`i` order.
///
/// # Panics
/// Panics on row-count mismatch.
pub fn t_matmul_naive(a: &Matrix, b: &Matrix) -> Matrix {
    assert_eq!(a.rows(), b.rows(), "t_matmul dim mismatch");
    let mut out = Matrix::zeros(a.cols(), b.cols());
    let n = b.cols();
    for i in 0..a.rows() {
        let b_row = b.row(i);
        for (k, &x) in a.row(i).iter().enumerate() {
            if nonzero(x) {
                let out_row = &mut out.as_mut_slice()[k * n..(k + 1) * n];
                for (o, &bv) in out_row.iter_mut().zip(b_row) {
                    *o += x * bv;
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng;

    fn pair(m: usize, k: usize, n: usize, seed: u64) -> (Matrix, Matrix) {
        let mut r = rng::seeded(seed);
        (rng::gauss_matrix(&mut r, m, k, 1.0), rng::gauss_matrix(&mut r, k, n, 1.0))
    }

    fn assert_bitwise_eq(a: &Matrix, b: &Matrix, what: &str) {
        assert_eq!(a.shape(), b.shape(), "{what}: shape");
        for (i, (x, y)) in a.as_slice().iter().zip(b.as_slice()).enumerate() {
            assert_eq!(x.to_bits(), y.to_bits(), "{what}: element {i}: {x} vs {y}");
        }
    }

    #[test]
    fn band_kernels_match_naive_on_awkward_shapes() {
        // Dims straddling every remainder path: MR=8 row blocks plus
        // single-row tails, matmul_t's 2-row/4-column tiles, including
        // degenerate 1-element matrices.
        for &(m, k, n) in &[
            (1, 1, 1),
            (2, 3, 5),
            (3, 7, 9),
            (4, 8, 8),
            (5, 16, 17),
            (7, 5, 23),
            (9, 33, 3),
            (13, 2, 31),
        ] {
            let (a, b) = pair(m, k, n, (m * 1000 + k * 10 + n) as u64);
            let mut tiled = Matrix::zeros(m, n);
            matmul_band(&a, 0, &b, tiled.as_mut_slice());
            assert_bitwise_eq(&tiled, &matmul_naive(&a, &b), "matmul");

            let bt = b.transpose();
            let mut tiled_t = Matrix::zeros(m, n);
            matmul_t_band(&a, 0, &bt, tiled_t.as_mut_slice());
            assert_bitwise_eq(&tiled_t, &matmul_t_naive(&a, &bt), "matmul_t");

            let c = matmul_naive(&a, &b);
            let mut tiled_tm = Matrix::zeros(k, n);
            t_matmul_band(&a, 0, &c, tiled_tm.as_mut_slice());
            assert_bitwise_eq(&tiled_tm, &t_matmul_naive(&a, &c), "t_matmul");
        }
    }

    #[test]
    fn band_kernels_handle_exact_zeros() {
        // Exact zeros exercise the sparsity skip on every kernel.
        let mut r = rng::seeded(99);
        let mut a = rng::gauss_matrix(&mut r, 6, 10, 1.0);
        for (i, v) in a.as_mut_slice().iter_mut().enumerate() {
            if i % 3 == 0 {
                *v = 0.0;
            }
        }
        let b = rng::gauss_matrix(&mut r, 10, 7, 1.0);
        let mut tiled = Matrix::zeros(6, 7);
        matmul_band(&a, 0, &b, tiled.as_mut_slice());
        assert_bitwise_eq(&tiled, &matmul_naive(&a, &b), "matmul with zeros");

        let c = matmul_naive(&a, &b);
        let mut tiled_tm = Matrix::zeros(10, 7);
        t_matmul_band(&a, 0, &c, tiled_tm.as_mut_slice());
        assert_bitwise_eq(&tiled_tm, &t_matmul_naive(&a, &c), "t_matmul with zeros");

        // An all-zero `a` row makes every matmul_t output in that row a
        // signed zero, pinning the tile accumulators to `Iterator::sum`'s
        // `-0.0` fold identity (the naive reference is a plain dot).
        for row in a.as_mut_slice()[..10].iter_mut() {
            *row = 0.0;
        }
        let bt = b.transpose();
        let mut tiled_t = Matrix::zeros(6, 7);
        matmul_t_band(&a, 0, &bt, tiled_t.as_mut_slice());
        assert_bitwise_eq(&tiled_t, &matmul_t_naive(&a, &bt), "matmul_t with zero row");
    }

    #[test]
    fn band_offset_matches_full_kernel() {
        // A band starting mid-matrix must reproduce the same rows as the
        // full-output kernel (this is what the par fan-out relies on).
        let (a, b) = pair(11, 9, 13, 42);
        let full = matmul_naive(&a, &b);
        let n = b.cols();
        for (start, rows) in [(0usize, 5usize), (5, 3), (8, 3), (3, 1)] {
            let mut band = vec![0.0; rows * n];
            matmul_band(&a, start, &b, &mut band);
            for (off, got) in band.chunks_exact(n).enumerate() {
                let want = full.row(start + off);
                assert!(
                    got.iter().zip(want).all(|(x, y)| x.to_bits() == y.to_bits()),
                    "band row {} differs",
                    start + off
                );
            }
        }
    }
}
