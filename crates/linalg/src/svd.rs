//! Small-matrix singular value decomposition and orthogonal factors.
//!
//! ITQ's rotation update solves an orthogonal Procrustes problem each
//! iteration, which needs the SVD of a `k × k` matrix (`k` = code length ≤
//! 128). The SVD here goes through the Jacobi symmetric eigensolver on
//! `AᵀA`, which is accurate and plenty fast at these sizes.

use crate::{jacobi_eigen, Matrix};
use rand::Rng;

/// Thin SVD `A = U Σ Vᵀ` of an `m × n` matrix with `m ≥ n`.
#[derive(Debug, Clone)]
pub struct Svd {
    /// `m × n`, orthonormal columns.
    pub u: Matrix,
    /// Singular values, descending, length `n`.
    pub sigma: Vec<f64>,
    /// `n × n`, orthonormal columns.
    pub v: Matrix,
}

/// Compute the thin SVD of `a` via the eigendecomposition of `AᵀA`.
///
/// Columns of `U` belonging to (numerically) zero singular values are
/// completed by Gram–Schmidt so `U` always has orthonormal columns.
///
/// # Panics
/// Panics if `a.rows() < a.cols()`.
pub fn svd(a: &Matrix) -> Svd {
    let (m, n) = a.shape();
    assert!(m >= n, "svd requires rows ≥ cols (got {m}×{n}); transpose first");
    let ata = a.t_matmul(a);
    let ed = jacobi_eigen(&ata);
    let sigma: Vec<f64> = ed.values.iter().map(|&l| l.max(0.0).sqrt()).collect();
    let v = ed.vectors;

    // U = A V Σ⁻¹ for non-degenerate columns.
    let av = a.matmul(&v);
    let mut u = Matrix::zeros(m, n);
    let tol = sigma.first().copied().unwrap_or(0.0) * 1e-12 + 1e-300;
    for j in 0..n {
        if sigma[j] > tol {
            let inv = 1.0 / sigma[j];
            for i in 0..m {
                u[(i, j)] = av[(i, j)] * inv;
            }
        }
    }
    complete_orthonormal(&mut u, &sigma, tol);
    Svd { u, sigma, v }
}

/// Replace zero columns of `u` with unit vectors orthogonal to the rest.
fn complete_orthonormal(u: &mut Matrix, sigma: &[f64], tol: f64) {
    let (m, n) = u.shape();
    for j in 0..n {
        if sigma[j] > tol {
            continue;
        }
        // Try standard basis vectors until Gram-Schmidt leaves a residual.
        for basis in 0..m {
            let mut cand = vec![0.0; m];
            cand[basis] = 1.0;
            for prev in 0..n {
                if prev == j || (sigma[prev] <= tol && prev > j) {
                    continue;
                }
                let proj: f64 = (0..m).map(|i| cand[i] * u[(i, prev)]).sum();
                for (i, c) in cand.iter_mut().enumerate() {
                    *c -= proj * u[(i, prev)];
                }
            }
            let norm = crate::vecops::norm(&cand);
            if norm > 1e-6 {
                for (i, c) in cand.iter().enumerate() {
                    u[(i, j)] = c / norm;
                }
                break;
            }
        }
    }
}

/// A uniformly random `n × n` rotation-ish matrix: QR (Gram–Schmidt) of a
/// Gaussian matrix. Used to initialize ITQ and as LSH-style projections.
pub fn random_orthogonal(n: usize, rng: &mut impl Rng) -> Matrix {
    let g = crate::rng::gauss_matrix(rng, n, n, 1.0);
    gram_schmidt(&g)
}

/// Orthonormalize the columns of `a` (modified Gram–Schmidt). Columns that
/// collapse numerically are replaced with random directions and re-run.
///
/// # Panics
///
/// Panics if a column remains numerically rank-deficient after
/// orthogonalization (norm below `1e-10`).
pub fn gram_schmidt(a: &Matrix) -> Matrix {
    let (m, n) = a.shape();
    let mut q = a.clone();
    for j in 0..n {
        for prev in 0..j {
            let proj: f64 = (0..m).map(|i| q[(i, j)] * q[(i, prev)]).sum();
            for i in 0..m {
                q[(i, j)] -= proj * q[(i, prev)];
            }
        }
        let norm: f64 = (0..m).map(|i| q[(i, j)] * q[(i, j)]).sum::<f64>().sqrt();
        assert!(norm > 1e-10, "rank-deficient input to gram_schmidt");
        for i in 0..m {
            q[(i, j)] /= norm;
        }
    }
    q
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng;

    fn assert_orthonormal_cols(m: &Matrix, tol: f64) {
        let gram = m.t_matmul(m);
        let diff = gram.sub(&Matrix::identity(m.cols()));
        assert!(diff.max_abs() < tol, "not orthonormal: {}", diff.max_abs());
    }

    #[test]
    fn svd_reconstructs() {
        let mut r = rng::seeded(1);
        let a = rng::gauss_matrix(&mut r, 8, 5, 1.0);
        let s = svd(&a);
        let rec = s.u.matmul(&Matrix::from_diag(&s.sigma)).matmul(&s.v.transpose());
        assert!(rec.sub(&a).max_abs() < 1e-8);
        assert_orthonormal_cols(&s.u, 1e-8);
        assert_orthonormal_cols(&s.v, 1e-8);
    }

    #[test]
    fn singular_values_descending_nonnegative() {
        let mut r = rng::seeded(2);
        let a = rng::gauss_matrix(&mut r, 10, 6, 1.0);
        let s = svd(&a);
        assert!(s.sigma.iter().all(|&x| x >= 0.0));
        assert!(s.sigma.windows(2).all(|w| w[0] >= w[1] - 1e-12));
    }

    #[test]
    fn svd_of_rank_deficient_matrix() {
        // Rank-1: second singular value zero; U still orthonormal.
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![2.0, 4.0], vec![3.0, 6.0]]);
        let s = svd(&a);
        assert!(s.sigma[1] < 1e-10);
        assert_orthonormal_cols(&s.u, 1e-6);
        let rec = s.u.matmul(&Matrix::from_diag(&s.sigma)).matmul(&s.v.transpose());
        assert!(rec.sub(&a).max_abs() < 1e-8);
    }

    #[test]
    fn random_orthogonal_is_orthogonal() {
        let mut r = rng::seeded(3);
        let q = random_orthogonal(7, &mut r);
        assert_orthonormal_cols(&q, 1e-10);
        // Rows too (square orthogonal).
        assert_orthonormal_cols(&q.transpose(), 1e-10);
    }

    #[test]
    fn procrustes_recovers_rotation() {
        // Given B = V R* for a known rotation, the Procrustes solution
        // R = U_s W_sᵀ from svd(VᵀB) = U_s Σ W_sᵀ recovers R*.
        let mut r = rng::seeded(4);
        let v = rng::gauss_matrix(&mut r, 20, 4, 1.0);
        let rstar = random_orthogonal(4, &mut r);
        let b = v.matmul(&rstar);
        let s = svd(&v.t_matmul(&b));
        let rhat = s.u.matmul(&s.v.transpose());
        assert!(rhat.sub(&rstar).max_abs() < 1e-8);
    }
}
