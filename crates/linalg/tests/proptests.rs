//! Property-based tests for the linear-algebra substrate.

use proptest::prelude::*;
use uhscm_linalg::{jacobi_eigen, kernels, par, vecops, Matrix};

fn small_vec() -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(-100.0..100.0f64, 1..16)
}

fn paired_vecs() -> impl Strategy<Value = (Vec<f64>, Vec<f64>)> {
    (1usize..16).prop_flat_map(|n| {
        (prop::collection::vec(-100.0..100.0f64, n), prop::collection::vec(-100.0..100.0f64, n))
    })
}

fn symmetric_matrix() -> impl Strategy<Value = Matrix> {
    (1usize..8).prop_flat_map(|n| {
        prop::collection::vec(-10.0..10.0f64, n * n).prop_map(move |data| {
            let raw = Matrix::from_vec(n, n, data);
            // Symmetrize: (A + Aᵀ)/2.
            let mut sym = raw.add(&raw.transpose());
            sym.scale(0.5);
            sym
        })
    })
}

proptest! {
    #[test]
    fn dot_commutes((a, b) in paired_vecs()) {
        prop_assert!((vecops::dot(&a, &b) - vecops::dot(&b, &a)).abs() < 1e-9);
    }

    #[test]
    fn cosine_bounded((a, b) in paired_vecs()) {
        let c = vecops::cosine(&a, &b);
        prop_assert!((-1.0 - 1e-9..=1.0 + 1e-9).contains(&c));
    }

    #[test]
    fn cosine_self_is_one_or_zero(a in small_vec()) {
        let c = vecops::cosine(&a, &a);
        let n = vecops::norm(&a);
        if n < 1e-12 {
            prop_assert_eq!(c, 0.0);
        } else {
            prop_assert!((c - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn softmax_is_simplex(a in small_vec(), tau in 0.01..10.0f64) {
        let p = vecops::softmax_scaled(&a, tau);
        prop_assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        prop_assert!(p.iter().all(|&x| (0.0..=1.0 + 1e-12).contains(&x)));
    }

    #[test]
    fn softmax_preserves_argmax(a in prop::collection::vec(-100.0..100.0f64, 2..16), tau in 0.1..10.0f64) {
        let p = vecops::softmax_scaled(&a, tau);
        prop_assert_eq!(vecops::argmax(&a), vecops::argmax(&p));
    }

    #[test]
    fn transpose_involution(rows in 1usize..8, cols in 1usize..8, seed in any::<u64>()) {
        let mut rng = uhscm_linalg::rng::seeded(seed);
        let m = uhscm_linalg::rng::gauss_matrix(&mut rng, rows, cols, 1.0);
        prop_assert_eq!(m.transpose().transpose(), m);
    }

    #[test]
    fn eigen_reconstructs(a in symmetric_matrix()) {
        let ed = jacobi_eigen(&a);
        let lam = Matrix::from_diag(&ed.values);
        let rec = ed.vectors.matmul(&lam).matmul(&ed.vectors.transpose());
        let err = rec.sub(&a).max_abs();
        prop_assert!(err < 1e-6, "reconstruction error {err}");
    }

    #[test]
    fn eigen_trace_preserved(a in symmetric_matrix()) {
        let trace: f64 = (0..a.rows()).map(|i| a[(i, i)]).sum();
        let ed = jacobi_eigen(&a);
        let lam_sum: f64 = ed.values.iter().sum();
        prop_assert!((trace - lam_sum).abs() < 1e-6);
    }

    #[test]
    fn matmul_associative_with_identity(rows in 1usize..6, cols in 1usize..6, seed in any::<u64>()) {
        let mut rng = uhscm_linalg::rng::seeded(seed);
        let m = uhscm_linalg::rng::gauss_matrix(&mut rng, rows, cols, 1.0);
        let left = Matrix::identity(rows).matmul(&m);
        let right = m.matmul(&Matrix::identity(cols));
        prop_assert_eq!(&left, &m);
        prop_assert_eq!(&right, &m);
    }

    #[test]
    fn normalize_idempotent(mut a in small_vec()) {
        vecops::normalize(&mut a);
        let mut b = a.clone();
        vecops::normalize(&mut b);
        for (x, y) in a.iter().zip(&b) {
            prop_assert!((x - y).abs() < 1e-12);
        }
    }
}

/// Ragged matmul operand pair: `a: n×k`, `b: k×m` with sizes chosen so row
/// bands rarely divide evenly across 2/3/8 threads.
fn matmul_pair() -> impl Strategy<Value = (Matrix, Matrix)> {
    (1usize..11, 1usize..11, 1usize..11).prop_flat_map(|(n, k, m)| {
        let a = prop::collection::vec(-10.0..10.0f64, n * k)
            .prop_map(move |data| Matrix::from_vec(n, k, data));
        let b = prop::collection::vec(-10.0..10.0f64, k * m)
            .prop_map(move |data| Matrix::from_vec(k, m, data));
        (a, b)
    })
}

proptest! {
    #[test]
    fn matmul_parallel_matches_serial_bitwise((a, b) in matmul_pair()) {
        let serial = par::with_threads(1, || a.matmul(&b));
        for threads in [2usize, 3, 8] {
            let parallel = par::with_threads(threads, || a.matmul(&b));
            prop_assert_eq!(serial.as_slice(), parallel.as_slice());
        }
    }

    #[test]
    fn matmul_t_parallel_matches_serial_bitwise((a, b) in matmul_pair()) {
        // a: n×k, b: k×m ⇒ a.matmul_t needs an operand with k columns.
        let bt = b.transpose(); // m×k
        let serial = par::with_threads(1, || a.matmul_t(&bt));
        for threads in [2usize, 3, 8] {
            let parallel = par::with_threads(threads, || a.matmul_t(&bt));
            prop_assert_eq!(serial.as_slice(), parallel.as_slice());
        }
    }

    #[test]
    fn t_matmul_parallel_matches_serial_bitwise((a, b) in matmul_pair()) {
        // a: n×k, b: k×m ⇒ aᵀ·c needs c with n rows.
        let c = a.matmul(&b); // n×m
        let serial = par::with_threads(1, || a.t_matmul(&c));
        for threads in [2usize, 3, 8] {
            let parallel = par::with_threads(threads, || a.t_matmul(&c));
            prop_assert_eq!(serial.as_slice(), parallel.as_slice());
        }
    }
}

/// Operand pair for the tiled-vs-naive kernel checks: sizes large enough
/// to cross the 8-row block and 4-term unroll boundaries of the tiled
/// kernels (plus their single-row / single-term tails), with exact zeros
/// sprinkled into `a` so the sparsity-skip paths run too.
fn tiled_pair() -> impl Strategy<Value = (Matrix, Matrix)> {
    (1usize..21, 1usize..21, 1usize..21).prop_flat_map(|(n, k, m)| {
        // ~20% exact zeros so the sparsity-skip paths run too.
        let elem = (-12.5..12.5f64).prop_map(|v| if v.abs() < 2.5 { 0.0 } else { v });
        let a =
            prop::collection::vec(elem, n * k).prop_map(move |data| Matrix::from_vec(n, k, data));
        let b = prop::collection::vec(-10.0..10.0f64, k * m)
            .prop_map(move |data| Matrix::from_vec(k, m, data));
        (a, b)
    })
}

fn bits(m: &Matrix) -> Vec<u64> {
    m.as_slice().iter().map(|v| v.to_bits()).collect()
}

proptest! {
    #[test]
    fn tiled_matmul_matches_naive_bitwise((a, b) in tiled_pair()) {
        prop_assert_eq!(bits(&a.matmul(&b)), bits(&kernels::matmul_naive(&a, &b)));
    }

    #[test]
    fn tiled_matmul_t_matches_naive_bitwise((a, b) in tiled_pair()) {
        let bt = b.transpose();
        prop_assert_eq!(bits(&a.matmul_t(&bt)), bits(&kernels::matmul_t_naive(&a, &bt)));
    }

    #[test]
    fn tiled_t_matmul_matches_naive_bitwise((a, b) in tiled_pair()) {
        let c = a.matmul(&b);
        prop_assert_eq!(bits(&a.t_matmul(&c)), bits(&kernels::t_matmul_naive(&a, &c)));
    }
}
