//! Property-based tests for the simulated VLP model.

use proptest::prelude::*;
use uhscm_linalg::{rng, vecops, Matrix};
use uhscm_vlp::{PromptTemplate, SimClip, VggFeatures};

fn any_template() -> impl Strategy<Value = PromptTemplate> {
    prop::sample::select(PromptTemplate::ALL.to_vec())
}

fn unit_latents(n: usize, dim: usize, seed: u64) -> Matrix {
    let mut r = rng::seeded(seed);
    let mut m = rng::gauss_matrix(&mut r, n, dim, 1.0);
    for i in 0..n {
        vecops::normalize(m.row_mut(i));
    }
    m
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn image_embeddings_unit_norm(seed in any::<u64>(), n in 1usize..10, dim in 4usize..32) {
        let clip = SimClip::with_defaults(dim, seed);
        let latents = unit_latents(n, dim, seed ^ 1);
        let emb = clip.embed_images(&latents);
        prop_assert_eq!(emb.shape(), (n, clip.embed_dim()));
        for row in emb.iter_rows() {
            prop_assert!((vecops::norm(row) - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn text_embeddings_unit_norm(name in "[a-z]{1,10}", tpl in any_template(), seed in any::<u64>()) {
        let clip = SimClip::with_defaults(16, seed);
        let emb = clip.embed_text(&name, tpl);
        prop_assert!((vecops::norm(&emb) - 1.0).abs() < 1e-9);
        // Deterministic.
        prop_assert_eq!(clip.embed_text(&name, tpl), emb);
    }

    #[test]
    fn scores_are_bounded_affine_cosines(seed in any::<u64>(), tpl in any_template()) {
        let clip = SimClip::with_defaults(16, seed);
        let latents = unit_latents(4, 16, seed ^ 2);
        let concepts: Vec<String> = ["cat", "dog", "sky"].iter().map(|s| s.to_string()).collect();
        let scores = clip.score_matrix(&latents, &concepts, tpl);
        prop_assert_eq!(scores.shape(), (4, 3));
        // s = 0.2 + 0.12·cos with cos ∈ [−1, 1].
        prop_assert!(scores.as_slice().iter().all(|&s| (0.079..=0.321).contains(&s)));
    }

    #[test]
    fn feature_extraction_deterministic_and_unit(seed in any::<u64>(), n in 1usize..8) {
        let vgg = VggFeatures::with_defaults(16, seed);
        let latents = unit_latents(n, 16, seed ^ 3);
        let a = vgg.extract(&latents);
        let b = vgg.extract(&latents);
        prop_assert_eq!(a.as_slice(), b.as_slice());
        for row in a.iter_rows() {
            prop_assert!((vecops::norm(row) - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn score_against_matches_embed_then_dot(seed in any::<u64>()) {
        let clip = SimClip::with_defaults(12, seed);
        let latents = unit_latents(3, 12, seed ^ 4);
        let text = clip.embed_text("sunset", PromptTemplate::PhotoOfThe);
        let text_m = Matrix::from_rows(&[text.clone()]);
        let scores = clip.score_images_against(&latents, &text_m);
        let img = clip.embed_images(&latents);
        for i in 0..3 {
            let expected = 0.2 + 0.12 * vecops::dot(img.row(i), &text);
            prop_assert!((scores[(i, 0)] - expected).abs() < 1e-12);
        }
    }
}
