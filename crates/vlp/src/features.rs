//! CNN-style image features.
//!
//! The paper feeds 4096-d VGG19 (ImageNet-pre-trained) features to the
//! shallow baselines and uses VGG19 as the deep methods' backbone. This
//! extractor is the simulated stand-in: a frozen random ReLU projection of
//! the image latent with heavier, per-image deterministic noise and a
//! structured nonlinear distortion. It deliberately carries *less* concept
//! information than [`crate::SimClip`]'s embeddings — the property the
//! paper's central claim (concept-mined similarity beats feature cosine
//! similarity) rests on.

use uhscm_data::concepts::stable_hash;
use uhscm_linalg::{rng, vecops, Matrix};

/// Dimensionality of the style (nuisance) subspace.
const STYLE_DIM: usize = 16;
/// Expected norm of the style component (the class signal has norm ≈ 1).
const STYLE_NORM: f64 = 1.0;

/// A frozen CNN-like feature extractor.
///
/// Besides white per-image noise, the extractor embeds a **low-rank style
/// subspace**: a per-image nuisance vector (think lighting, background,
/// colour cast) of large norm living in a fixed `style_dim`-dimensional
/// subspace of the feature space. Raw feature cosine — the signal every
/// feature-based baseline relies on — is dominated by style, while a
/// trained network given an accurate similarity matrix simply learns to
/// project the style directions away. This is the simulated analogue of
/// why CNN-feature similarity is unreliable on low-resolution CIFAR images
/// while the paper's CLIP-concept similarity is not.
#[derive(Debug, Clone)]
pub struct VggFeatures {
    /// `latent_dim × feature_dim` projection.
    projection: Matrix,
    /// `latent_dim × feature_dim` distortion mixing (second "layer path").
    distortion: Matrix,
    /// `style_dim × feature_dim` embedding of the nuisance subspace.
    style_projection: Matrix,
    bias: Vec<f64>,
    /// Expected norm of the per-image white feature noise.
    noise: f64,
    /// Expected norm of the per-image style component.
    style: f64,
    seed: u64,
    latent_dim: usize,
}

impl VggFeatures {
    /// Instantiate a frozen extractor producing `feature_dim`-d features.
    ///
    /// `noise` controls the per-image noise norm; the default used across
    /// the experiments is [`VggFeatures::with_defaults`].
    pub fn new(latent_dim: usize, feature_dim: usize, noise: f64, seed: u64) -> Self {
        Self::with_style(latent_dim, feature_dim, noise, STYLE_DIM, STYLE_NORM, seed)
    }

    /// Fully parameterized constructor (exposed for the calibration tests).
    pub fn with_style(
        latent_dim: usize,
        feature_dim: usize,
        noise: f64,
        style_dim: usize,
        style: f64,
        seed: u64,
    ) -> Self {
        let mut r = rng::seeded(seed ^ 0x90a1_c2d3_e4f5_0617);
        let scale = 1.0 / (latent_dim as f64).sqrt();
        let projection = rng::gauss_matrix(&mut r, latent_dim, feature_dim, scale);
        let distortion = rng::gauss_matrix(&mut r, latent_dim, feature_dim, scale);
        // Scaled so a style-coordinate vector of norm `s` embeds with norm ≈ s.
        let style_projection =
            rng::gauss_matrix(&mut r, style_dim, feature_dim, 1.0 / (feature_dim as f64).sqrt());
        let bias = rng::gauss_vec(&mut r, feature_dim, 0.1);
        Self { projection, distortion, style_projection, bias, noise, style, seed, latent_dim }
    }

    /// Default extractor: 128-d features, noise norm 0.80 (2× the
    /// simulated CLIP image-tower noise, giving the intended fidelity gap).
    pub fn with_defaults(latent_dim: usize, seed: u64) -> Self {
        Self::new(latent_dim, 128, 0.80, seed)
    }

    /// Output feature dimensionality.
    pub fn feature_dim(&self) -> usize {
        self.projection.cols()
    }

    /// Latent dimensionality this extractor accepts.
    pub fn latent_dim(&self) -> usize {
        self.latent_dim
    }

    /// Extract features for each row of `latents` (unit-norm rows).
    ///
    /// Deterministic: the same latent always maps to the same feature.
    ///
    /// # Panics
    ///
    /// Panics if `latents` does not have `latent_dim` columns.
    pub fn extract(&self, latents: &Matrix) -> Matrix {
        assert_eq!(latents.cols(), self.latent_dim, "latent dim mismatch");
        let linear = latents.matmul(&self.projection);
        let warped = latents.matmul(&self.distortion);
        let mut out = Matrix::zeros(latents.rows(), self.feature_dim());
        let sigma = self.noise / (self.feature_dim() as f64).sqrt();
        for i in 0..latents.rows() {
            let mut r = rng::seeded(self.seed ^ hash_floats(latents.row(i)));
            // Per-image style coordinates in the nuisance subspace.
            let style_dim = self.style_projection.rows();
            let style_coords =
                rng::gauss_vec(&mut r, style_dim, self.style / (style_dim as f64).sqrt());
            let row = out.row_mut(i);
            let lin = linear.row(i);
            let wrp = warped.row(i);
            for (k, v) in row.iter_mut().enumerate() {
                // ReLU main path + tanh-squashed distortion path + bias.
                let pre = lin[k] + 0.6 * wrp[k].tanh() + self.bias[k];
                let style_k: f64 = style_coords
                    .iter()
                    .enumerate()
                    .map(|(s, &c)| c * self.style_projection[(s, k)])
                    .sum();
                *v = pre.max(0.0) + style_k + sigma * rng::gauss(&mut r);
            }
            vecops::normalize(row);
        }
        out
    }
}

/// Stable hash of an f64 slice via its IEEE-754 bit patterns.
fn hash_floats(values: &[f64]) -> u64 {
    let mut bytes = Vec::with_capacity(values.len() * 8);
    for v in values {
        bytes.extend_from_slice(&v.to_bits().to_le_bytes());
    }
    stable_hash(&bytes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use uhscm_data::{Dataset, DatasetConfig, DatasetKind};

    fn setup() -> (Dataset, VggFeatures) {
        let ds = Dataset::generate(DatasetKind::Cifar10Like, &DatasetConfig::tiny(), 42);
        let vgg = VggFeatures::with_defaults(ds.latents.cols(), 9);
        (ds, vgg)
    }

    #[test]
    fn deterministic() {
        let (ds, vgg) = setup();
        let a = vgg.extract(&ds.latents_of(&[0, 1]));
        let b = vgg.extract(&ds.latents_of(&[0, 1]));
        assert_eq!(a.as_slice(), b.as_slice());
    }

    #[test]
    fn unit_norm_rows() {
        let (ds, vgg) = setup();
        let f = vgg.extract(&ds.latents_of(&[0, 3, 7]));
        for row in f.iter_rows() {
            assert!((vecops::norm(row) - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn features_preserve_class_structure() {
        // Same-class features should still be more similar on average —
        // VGG features are weaker than CLIP, not useless.
        let (ds, vgg) = setup();
        let idx: Vec<usize> = (0..80).collect();
        let f = vgg.extract(&ds.latents_of(&idx));
        let mut same = Vec::new();
        let mut diff = Vec::new();
        for i in 0..80 {
            for j in (i + 1)..80 {
                let c = vecops::cosine(f.row(i), f.row(j));
                if ds.labels[idx[i]] == ds.labels[idx[j]] {
                    same.push(c);
                } else {
                    diff.push(c);
                }
            }
        }
        assert!(vecops::mean(&same) > vecops::mean(&diff) + 0.05);
    }

    #[test]
    fn weaker_than_clip_embeddings() {
        // The class-separation margin of VGG features must be smaller than
        // that of SimClip image embeddings (the paper's premise).
        let (ds, vgg) = setup();
        let clip = crate::SimClip::with_defaults(ds.latents.cols(), 9);
        let idx: Vec<usize> = (0..80).collect();
        let margin = |feats: &Matrix| {
            let mut same = Vec::new();
            let mut diff = Vec::new();
            for i in 0..80 {
                for j in (i + 1)..80 {
                    let c = vecops::cosine(feats.row(i), feats.row(j));
                    if ds.labels[idx[i]] == ds.labels[idx[j]] {
                        same.push(c);
                    } else {
                        diff.push(c);
                    }
                }
            }
            vecops::mean(&same) - vecops::mean(&diff)
        };
        let vgg_margin = margin(&vgg.extract(&ds.latents_of(&idx)));
        let clip_margin = margin(&clip.embed_images(&ds.latents_of(&idx)));
        assert!(
            vgg_margin < clip_margin,
            "vgg margin {vgg_margin} not below clip margin {clip_margin}"
        );
    }

    #[test]
    #[should_panic(expected = "latent dim mismatch")]
    fn wrong_latent_dim_panics() {
        let vgg = VggFeatures::with_defaults(16, 1);
        let _ = vgg.extract(&Matrix::zeros(1, 8));
    }
}
