//! A simulated vision-language pretraining (VLP) model.
//!
//! The paper uses OpenAI's pre-trained CLIP model in exactly two ways:
//!
//! 1. **Image–text scoring** (Eq. 1): `s_ij = F_VLP(x_i, t_j)` where `t_j`
//!    is a concept rendered through a prompt template;
//! 2. **Image features** (ablation `UHSCM_IF`, Table 2 row 3): the image
//!    tower's embedding used directly.
//!
//! CLIP itself (400M-pair contrastive pretraining, ViT towers) cannot be run
//! in this environment, so [`SimClip`] reproduces the *interface and
//! statistics* of those two operations over the synthetic latent space of
//! `uhscm-data`: images and prompted concept texts are mapped into a shared
//! embedding space such that cosine scores are high for concepts an image
//! truly contains, noisy for absent ones, miscalibrated for out-of-domain
//! concepts, and sensitive to the prompt template — the four properties the
//! paper's pipeline (mining, denoising, prompt ablations) depends on.
//!
//! [`VggFeatures`] plays the role of ImageNet-pre-trained VGG19 fc7
//! features: a *weaker* representation of the same images (heavier
//! per-image noise, structured distortion), used as the backbone input of
//! every deep hashing method and as the raw features of the shallow ones.

pub mod clip;
pub mod features;
pub mod prompt;

pub use clip::{SimClip, SimClipConfig};
pub use features::VggFeatures;
pub use prompt::PromptTemplate;
