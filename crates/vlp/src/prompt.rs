//! Prompt templates (§3.3.1 and the ablation of §4.4.3).

/// The three prompt templates studied by the paper.
///
/// The ablation (Table 2 rows 4-6) finds `"a photo of the {c}"` best; the
/// simulated text tower models this as template-dependent encoding noise
/// (see [`PromptTemplate::text_noise_sigma`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PromptTemplate {
    /// `"a photo of the {c}"` — the paper's default (UHSCM).
    PhotoOfThe,
    /// `"the {c}"` — variant P1.
    The,
    /// `"it contains the {c}"` — variant P2.
    ItContains,
}

impl PromptTemplate {
    /// All templates, default first.
    pub const ALL: [PromptTemplate; 3] =
        [PromptTemplate::PhotoOfThe, PromptTemplate::The, PromptTemplate::ItContains];

    /// Render the template for a concept, exactly as written in the paper.
    pub fn render(self, concept: &str) -> String {
        match self {
            PromptTemplate::PhotoOfThe => format!("a photo of the {concept}"),
            PromptTemplate::The => format!("the {concept}"),
            PromptTemplate::ItContains => format!("it contains the {concept}"),
        }
    }

    /// Standard deviation of the text-tower encoding noise for this
    /// template. A well-formed caption-like prompt anchors the text
    /// embedding closer to the concept's true direction; terser or awkward
    /// prompts drift further — which is how the prompt ablation's ordering
    /// (UHSCM > P1 > P2) arises in the simulation.
    pub fn text_noise_sigma(self) -> f64 {
        match self {
            PromptTemplate::PhotoOfThe => 0.15,
            PromptTemplate::The => 0.45,
            PromptTemplate::ItContains => 0.75,
        }
    }

    /// Short identifier used in experiment output.
    pub fn id(self) -> &'static str {
        match self {
            PromptTemplate::PhotoOfThe => "a photo of the {c}",
            PromptTemplate::The => "the {c}",
            PromptTemplate::ItContains => "it contains the {c}",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_match_paper() {
        assert_eq!(PromptTemplate::PhotoOfThe.render("cat"), "a photo of the cat");
        assert_eq!(PromptTemplate::The.render("cat"), "the cat");
        assert_eq!(PromptTemplate::ItContains.render("cat"), "it contains the cat");
    }

    #[test]
    fn default_template_has_least_noise() {
        let base = PromptTemplate::PhotoOfThe.text_noise_sigma();
        assert!(base < PromptTemplate::The.text_noise_sigma());
        assert!(
            PromptTemplate::The.text_noise_sigma() < PromptTemplate::ItContains.text_noise_sigma()
        );
    }
}
