//! The simulated CLIP model.

use crate::PromptTemplate;
use uhscm_data::concepts::{canonical, prototype, stable_hash};
use uhscm_linalg::{par, rng, vecops, Matrix};

/// Tunable knobs of the simulated VLP model.
#[derive(Debug, Clone)]
pub struct SimClipConfig {
    /// Joint embedding dimensionality.
    pub embed_dim: usize,
    /// Per-image encoder noise norm (image-tower imperfection).
    pub image_noise: f64,
    /// Affine mapping of cosine similarity to the reported score
    /// `s = score_base + score_gain · cos`, emulating CLIP's compressed
    /// similarity range (real CLIP cosines live in roughly `[0.1, 0.4]`).
    pub score_base: f64,
    /// See [`Self::score_base`].
    pub score_gain: f64,
}

impl Default for SimClipConfig {
    fn default() -> Self {
        Self { embed_dim: 64, image_noise: 0.90, score_base: 0.20, score_gain: 0.12 }
    }
}

/// A simulated vision-language model with frozen, deterministic towers.
///
/// Both towers are pure functions: the same image latent (or the same
/// concept + template) always yields the same embedding, exactly like a
/// frozen pre-trained CLIP checkpoint. Per-input "encoder noise" is derived
/// from a stable hash of the input, so it is reproducible without any shared
/// mutable RNG.
///
/// ```
/// use uhscm_data::{Dataset, DatasetConfig, DatasetKind};
/// use uhscm_vlp::{PromptTemplate, SimClip};
///
/// let ds = Dataset::generate(DatasetKind::Cifar10Like, &DatasetConfig::tiny(), 42);
/// let clip = SimClip::with_defaults(ds.latents.cols(), 7);
/// let concepts = vec!["cat".to_string(), "airplane".to_string()];
/// let scores = clip.score_matrix(
///     &ds.latents_of(&[0, 1]),
///     &concepts,
///     PromptTemplate::PhotoOfThe,
/// );
/// assert_eq!(scores.shape(), (2, 2)); // Eq. 1: one score per (image, concept)
/// ```
#[derive(Debug, Clone)]
pub struct SimClip {
    cfg: SimClipConfig,
    /// `latent_dim × embed_dim` shared projection into the joint space.
    projection: Matrix,
    /// Seed namespace separating this model instance's noise streams.
    seed: u64,
    latent_dim: usize,
}

impl SimClip {
    /// Instantiate a "pre-trained checkpoint" for a given latent
    /// dimensionality. `seed` selects the checkpoint; all noise is derived
    /// from it deterministically.
    pub fn new(latent_dim: usize, cfg: SimClipConfig, seed: u64) -> Self {
        let mut r = rng::seeded(seed ^ 0x5f37_68dc_a7b6_91e2);
        // A random Gaussian projection is near-isometric for our scales;
        // scaled by 1/sqrt(latent_dim) to keep embeddings O(1).
        let projection =
            rng::gauss_matrix(&mut r, latent_dim, cfg.embed_dim, 1.0 / (latent_dim as f64).sqrt());
        Self { cfg, projection, seed, latent_dim }
    }

    /// Checkpoint with default configuration.
    pub fn with_defaults(latent_dim: usize, seed: u64) -> Self {
        Self::new(latent_dim, SimClipConfig::default(), seed)
    }

    /// Latent dimensionality this checkpoint accepts.
    pub fn latent_dim(&self) -> usize {
        self.latent_dim
    }

    /// Joint embedding dimensionality.
    pub fn embed_dim(&self) -> usize {
        self.cfg.embed_dim
    }

    /// Image tower: embed each row of `latents` into the joint space
    /// (unit-norm rows). This is also what the `UHSCM_IF` ablation consumes
    /// as "image features extracted by the CLIP model".
    ///
    /// # Panics
    ///
    /// Panics if `latents` does not have `latent_dim` columns.
    pub fn embed_images(&self, latents: &Matrix) -> Matrix {
        let _span = uhscm_obs::span("vlp_embed_images");
        assert_eq!(latents.cols(), self.latent_dim, "latent dim mismatch");
        let mut emb = latents.matmul(&self.projection);
        let sigma = self.cfg.image_noise / (self.cfg.embed_dim as f64).sqrt();
        let d = self.cfg.embed_dim;
        // Noise streams are keyed per image, so rows are independent and
        // band order cannot change the draws. Gaussian draws dominate the
        // per-element cost, hence the inflated work estimate.
        let work = emb.rows().saturating_mul(d).saturating_mul(16);
        let fanned = par::try_par_row_bands_mut(emb.as_mut_slice(), d, work, |row0, band| {
            for (bi, row) in band.chunks_mut(d).enumerate() {
                self.perturb_image_row(latents.row(row0 + bi), sigma, row);
            }
        });
        if !fanned {
            for i in 0..emb.rows() {
                self.perturb_image_row(latents.row(i), sigma, emb.row_mut(i));
            }
        }
        emb
    }

    /// Add the deterministic per-image encoder noise (keyed on the latent
    /// bytes) and normalize — the per-row body of [`Self::embed_images`].
    fn perturb_image_row(&self, latent: &[f64], sigma: f64, row: &mut [f64]) {
        let mut r = rng::seeded(self.seed ^ hash_floats(latent));
        for v in row.iter_mut() {
            *v += sigma * rng::gauss(&mut r);
        }
        vecops::normalize(row);
    }

    /// Text tower: embed a concept rendered through `template`
    /// (unit-norm). Template quality manifests as noise around the
    /// concept's true direction; fully out-of-vocabulary text still maps to
    /// a stable (arbitrary) direction, as a real text tower would.
    pub fn embed_text(&self, concept: &str, template: PromptTemplate) -> Vec<f64> {
        let proto = prototype(concept, self.latent_dim);
        let mut emb = vec![0.0; self.cfg.embed_dim];
        for (k, &p) in proto.iter().enumerate() {
            if p == 0.0 {
                continue;
            }
            for (e, &w) in emb.iter_mut().zip(self.projection.row(k)) {
                *e += p * w;
            }
        }
        // Template-dependent drift, fixed per (checkpoint, concept, template).
        let key = format!("{}|{}", template.id(), canonical(concept));
        let mut r = rng::seeded(self.seed ^ stable_hash(key.as_bytes()));
        let sigma = template.text_noise_sigma() / (self.cfg.embed_dim as f64).sqrt();
        for e in &mut emb {
            *e += sigma * rng::gauss(&mut r);
        }
        vecops::normalize(&mut emb);
        emb
    }

    /// Eq. 1 of the paper: the `n × m` image-text score matrix for a batch
    /// of images against a concept vocabulary under one prompt template.
    pub fn score_matrix(
        &self,
        latents: &Matrix,
        concepts: &[String],
        template: PromptTemplate,
    ) -> Matrix {
        let _span = uhscm_obs::span("vlp_score_matrix");
        uhscm_obs::registry::counter_add("vlp.score_matrix.calls", 1);
        let img = self.embed_images(latents);
        let txt: Vec<Vec<f64>> = concepts.iter().map(|c| self.embed_text(c, template)).collect();
        let m = concepts.len();
        let mut scores = Matrix::zeros(img.rows(), m);
        let work = img.rows().saturating_mul(m).saturating_mul(self.cfg.embed_dim);
        let fanned = par::try_par_row_bands_mut(scores.as_mut_slice(), m, work, |row0, band| {
            for (bi, srow) in band.chunks_mut(m).enumerate() {
                let ir = img.row(row0 + bi);
                for (s, t) in srow.iter_mut().zip(&txt) {
                    // Rows are unit-norm, so the dot product is the cosine.
                    *s = self.cfg.score_base + self.cfg.score_gain * vecops::dot(ir, t);
                }
            }
        });
        if !fanned {
            for i in 0..img.rows() {
                let ir = img.row(i);
                for (j, t) in txt.iter().enumerate() {
                    scores[(i, j)] = self.cfg.score_base + self.cfg.score_gain * vecops::dot(ir, t);
                }
            }
        }
        scores
    }

    /// Score images against *precomputed* text-side embeddings (rows of
    /// `text_embeddings`, unit-norm, in this model's joint space). Used by
    /// the clustering-based denoising ablations, whose "concepts" are
    /// k-means centroids of prompt embeddings rather than single prompts.
    ///
    /// # Panics
    ///
    /// Panics if `text_embeddings` columns differ from the joint embedding
    /// dimensionality.
    pub fn score_images_against(&self, latents: &Matrix, text_embeddings: &Matrix) -> Matrix {
        assert_eq!(text_embeddings.cols(), self.cfg.embed_dim, "embedding dim mismatch");
        let img = self.embed_images(latents);
        let m = text_embeddings.rows();
        let mut scores = Matrix::zeros(img.rows(), m);
        let work = img.rows().saturating_mul(m).saturating_mul(self.cfg.embed_dim);
        let fanned = par::try_par_row_bands_mut(scores.as_mut_slice(), m, work, |row0, band| {
            for (bi, srow) in band.chunks_mut(m).enumerate() {
                let ir = img.row(row0 + bi);
                for (j, s) in srow.iter_mut().enumerate() {
                    *s = self.cfg.score_base
                        + self.cfg.score_gain * vecops::dot(ir, text_embeddings.row(j));
                }
            }
        });
        if !fanned {
            for i in 0..img.rows() {
                let ir = img.row(i);
                for j in 0..m {
                    scores[(i, j)] = self.cfg.score_base
                        + self.cfg.score_gain * vecops::dot(ir, text_embeddings.row(j));
                }
            }
        }
        scores
    }
}

/// Stable hash of an f64 slice via its IEEE-754 bit patterns.
fn hash_floats(values: &[f64]) -> u64 {
    let mut bytes = Vec::with_capacity(values.len() * 8);
    for v in values {
        bytes.extend_from_slice(&v.to_bits().to_le_bytes());
    }
    stable_hash(&bytes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use uhscm_data::{Dataset, DatasetConfig, DatasetKind};

    fn test_setup() -> (Dataset, SimClip) {
        let ds = Dataset::generate(DatasetKind::Cifar10Like, &DatasetConfig::tiny(), 42);
        let clip = SimClip::with_defaults(ds.latents.cols(), 7);
        (ds, clip)
    }

    #[test]
    fn towers_are_deterministic() {
        let (ds, clip) = test_setup();
        let a = clip.embed_images(&ds.latents_of(&[0, 1, 2]));
        let b = clip.embed_images(&ds.latents_of(&[0, 1, 2]));
        assert_eq!(a.as_slice(), b.as_slice());
        assert_eq!(
            clip.embed_text("cat", PromptTemplate::PhotoOfThe),
            clip.embed_text("cat", PromptTemplate::PhotoOfThe)
        );
    }

    #[test]
    fn embeddings_unit_norm() {
        let (ds, clip) = test_setup();
        let emb = clip.embed_images(&ds.latents_of(&[0, 5, 9]));
        for row in emb.iter_rows() {
            assert!((vecops::norm(row) - 1.0).abs() < 1e-9);
        }
        let t = clip.embed_text("sunset", PromptTemplate::The);
        assert!((vecops::norm(&t) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn true_concept_scores_higher() {
        let (ds, clip) = test_setup();
        let concepts: Vec<String> = ds.class_names.clone();
        let idx: Vec<usize> = (0..60).collect();
        let scores = clip.score_matrix(&ds.latents_of(&idx), &concepts, PromptTemplate::PhotoOfThe);
        let mut correct = 0;
        for (row, &i) in idx.iter().enumerate() {
            let j = vecops::argmax(scores.row(row));
            if ds.labels[i].contains(&j) {
                correct += 1;
            }
        }
        // The simulated CLIP should be a strong but imperfect zero-shot
        // classifier over in-domain concepts.
        assert!(correct >= 48, "only {correct}/60 argmax matches");
    }

    #[test]
    fn scores_in_clip_like_range() {
        let (ds, clip) = test_setup();
        let concepts: Vec<String> = ds.class_names.clone();
        let scores =
            clip.score_matrix(&ds.latents_of(&[0, 1]), &concepts, PromptTemplate::PhotoOfThe);
        for &s in scores.as_slice() {
            assert!((0.0..=0.5).contains(&s), "score {s} outside CLIP-like range");
        }
    }

    #[test]
    fn synonym_prompts_score_alike() {
        let (_, clip) = test_setup();
        let a = clip.embed_text("automobile", PromptTemplate::PhotoOfThe);
        let b = clip.embed_text("cars", PromptTemplate::PhotoOfThe);
        assert_eq!(a, b);
    }

    #[test]
    fn default_template_better_aligned_than_p2() {
        // Across many concepts, "a photo of the c" embeds closer to the
        // clean projected prototype than "it contains the c".
        let (_, clip) = test_setup();
        let concepts = uhscm_data::vocab::nus_wide_81();
        let mut gap = 0.0;
        for c in &concepts {
            let clean = {
                let proto = prototype(c, clip.latent_dim());
                let m = Matrix::from_rows(&[proto]);
                let mut e = m.matmul(&clip.projection);
                vecops::normalize(e.row_mut(0));
                e.row(0).to_vec()
            };
            let good = clip.embed_text(c, PromptTemplate::PhotoOfThe);
            let bad = clip.embed_text(c, PromptTemplate::ItContains);
            gap += vecops::dot(&clean, &good) - vecops::dot(&clean, &bad);
        }
        assert!(gap / concepts.len() as f64 > 0.0, "P2 aligned better on average");
    }

    #[test]
    fn different_checkpoints_differ() {
        let (ds, _) = test_setup();
        let c1 = SimClip::with_defaults(ds.latents.cols(), 1);
        let c2 = SimClip::with_defaults(ds.latents.cols(), 2);
        let e1 = c1.embed_images(&ds.latents_of(&[0]));
        let e2 = c2.embed_images(&ds.latents_of(&[0]));
        assert_ne!(e1.as_slice(), e2.as_slice());
    }

    #[test]
    #[should_panic(expected = "latent dim mismatch")]
    fn wrong_latent_dim_panics() {
        let clip = SimClip::with_defaults(16, 1);
        let _ = clip.embed_images(&Matrix::zeros(2, 8));
    }
}
