//! Metamorphic tests for the retrieval metrics (MAP@n, P@N, PR curves).
//!
//! Each test applies a transformation to the inputs that provably must not
//! change the metric, and demands *bitwise* equality of the outputs:
//!
//! * **Global bit-flip** — complementing every bit of all queries and all
//!   database codes preserves every pairwise Hamming distance (and the
//!   within-distance tie order), so all three metrics are exactly invariant
//!   for arbitrary relevance.
//! * **Database permutation** — shuffling the database while relabelling
//!   the ground truth through the same permutation. Hamming ranking breaks
//!   distance ties by database index, so ranked metrics are only invariant
//!   when ties cannot straddle the relevant/irrelevant boundary; the tests
//!   force that either with all-distinct distances or with distance-defined
//!   relevance (every item in a tie band shares one flag). The PR curve is
//!   set-based (no ranking), so it is permutation-invariant unconditionally.

use uhscm_eval::{mean_average_precision, pr_curve, precision_at_n, BitCodes, HammingRanker};
use uhscm_linalg::{rng, Matrix};

/// Complement of a ±1 code matrix.
fn negated(m: &Matrix) -> Matrix {
    Matrix::from_vec(m.rows(), m.cols(), m.as_slice().iter().map(|v| -v).collect())
}

/// Database rows reordered so that new row `i` is old row `perm[i]`.
fn permuted(codes: &BitCodes, perm: &[usize]) -> BitCodes {
    BitCodes::from_real(&codes.unpack_all().select_rows(perm))
}

fn pr_bits(points: &[uhscm_eval::PrPoint]) -> Vec<(u32, u64, u64)> {
    points.iter().map(|p| (p.radius, p.precision.to_bits(), p.recall.to_bits())).collect()
}

#[test]
fn global_bit_flip_preserves_all_metrics() {
    for seed in 0..8u64 {
        let mut r = rng::seeded(seed);
        let db = rng::gauss_matrix(&mut r, 50, 24, 1.0);
        let q = rng::gauss_matrix(&mut r, 6, 24, 1.0);
        let rel = move |qi: usize, dj: usize| (qi * 13 + dj * 7 + seed as usize) % 3 == 0;
        let top_n = 50;

        let ranker = HammingRanker::new(BitCodes::from_real(&db));
        let qc = BitCodes::from_real(&q);
        let flipped_ranker = HammingRanker::new(BitCodes::from_real(&negated(&db)));
        let flipped_qc = BitCodes::from_real(&negated(&q));

        let map = mean_average_precision(&ranker, &qc, &rel, top_n);
        let map_flipped = mean_average_precision(&flipped_ranker, &flipped_qc, &rel, top_n);
        assert_eq!(map.to_bits(), map_flipped.to_bits(), "seed {seed}: MAP under bit-flip");

        let ns = [1usize, 5, 20, 50];
        let pn = precision_at_n(&ranker, &qc, &rel, &ns);
        let pn_flipped = precision_at_n(&flipped_ranker, &flipped_qc, &rel, &ns);
        let bits = |v: &[f64]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
        assert_eq!(bits(&pn), bits(&pn_flipped), "seed {seed}: P@N under bit-flip");

        let pr = pr_curve(&ranker, &qc, &rel);
        let pr_flipped = pr_curve(&flipped_ranker, &flipped_qc, &rel);
        assert_eq!(pr_bits(&pr), pr_bits(&pr_flipped), "seed {seed}: PR under bit-flip");
    }
}

#[test]
fn database_permutation_preserves_metrics_when_distances_are_distinct() {
    // Database item j (j = 0..=16) = the 16-bit code with the first j bits
    // set. Both the all-zeros and the all-ones query then see
    // pairwise-distinct distances (j and 16-j respectively), so the Hamming
    // ranking is unique and the tie-break order cannot leak into any metric.
    let bits = 16;
    let db_rows: Vec<Vec<bool>> = (0..=bits).map(|j| (0..bits).map(|b| b < j).collect()).collect();
    let queries = BitCodes::from_bools(&[vec![false; bits], vec![true; bits]]);
    let rel = |qi: usize, dj: usize| (qi * 5 + dj * 3) % 4 == 0;

    for seed in 0..8u64 {
        let mut r = rng::seeded(0xbeef ^ seed);
        let perm = rng::permutation(&mut r, db_rows.len());
        let perm_rows: Vec<Vec<bool>> = perm.iter().map(|&j| db_rows[j].clone()).collect();
        let rel_perm = |qi: usize, dj: usize| rel(qi, perm[dj]);

        let ranker = HammingRanker::new(BitCodes::from_bools(&db_rows));
        let ranker_perm = HammingRanker::new(BitCodes::from_bools(&perm_rows));
        let n = db_rows.len();

        let map = mean_average_precision(&ranker, &queries, &rel, n);
        let map_perm = mean_average_precision(&ranker_perm, &queries, &rel_perm, n);
        assert_eq!(map.to_bits(), map_perm.to_bits(), "seed {seed}: MAP under permutation");

        let ns = [1usize, 3, 9, n];
        let pn = precision_at_n(&ranker, &queries, &rel, &ns);
        let pn_perm = precision_at_n(&ranker_perm, &queries, &rel_perm, &ns);
        let as_bits = |v: &[f64]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
        assert_eq!(as_bits(&pn), as_bits(&pn_perm), "seed {seed}: P@N under permutation");
    }
}

#[test]
fn database_permutation_preserves_metrics_for_distance_defined_relevance() {
    // With relevance defined as "within Hamming radius 8", every item in a
    // distance-tie band carries the same flag, so the per-rank relevance
    // sequence — all MAP/P@N ever look at — is permutation-invariant even
    // though the ranking itself is not.
    for seed in 0..8u64 {
        let mut r = rng::seeded(0xd15c0 ^ seed);
        let db = BitCodes::from_real(&rng::gauss_matrix(&mut r, 60, 24, 1.0));
        let qc = BitCodes::from_real(&rng::gauss_matrix(&mut r, 5, 24, 1.0));
        let perm = rng::permutation(&mut r, db.len());
        let db_perm = permuted(&db, &perm);

        let ranker = HammingRanker::new(db);
        let rel = |qi: usize, dj: usize| qc.hamming(qi, ranker.database(), dj) <= 8;
        let ranker_perm = HammingRanker::new(db_perm);
        let rel_perm = |qi: usize, dj: usize| qc.hamming(qi, ranker_perm.database(), dj) <= 8;
        // The relabelled ground truth is the same set of items: item dj of
        // the permuted database is item perm[dj] of the original.
        for qi in 0..qc.len() {
            for dj in 0..ranker_perm.database().len() {
                assert_eq!(rel_perm(qi, dj), rel(qi, perm[dj]));
            }
        }

        let n = ranker.database().len();
        let map = mean_average_precision(&ranker, &qc, &rel, n);
        let map_perm = mean_average_precision(&ranker_perm, &qc, &rel_perm, n);
        assert_eq!(map.to_bits(), map_perm.to_bits(), "seed {seed}: MAP under permutation");

        let ns = [1usize, 4, 16, n];
        let pn = precision_at_n(&ranker, &qc, &rel, &ns);
        let pn_perm = precision_at_n(&ranker_perm, &qc, &rel_perm, &ns);
        let as_bits = |v: &[f64]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
        assert_eq!(as_bits(&pn), as_bits(&pn_perm), "seed {seed}: P@N under permutation");
    }
}

#[test]
fn pr_curve_is_permutation_invariant_for_arbitrary_relevance() {
    // The PR curve counts the *set* of items within each radius — no
    // ranking, no tie-breaking — so it must survive a database shuffle for
    // any relevance labelling whatsoever.
    for seed in 0..8u64 {
        let mut r = rng::seeded(0xfeed ^ seed);
        let db = BitCodes::from_real(&rng::gauss_matrix(&mut r, 40, 20, 1.0));
        let qc = BitCodes::from_real(&rng::gauss_matrix(&mut r, 4, 20, 1.0));
        let perm = rng::permutation(&mut r, db.len());
        let db_perm = permuted(&db, &perm);
        let rel = move |qi: usize, dj: usize| (qi * 17 + dj * 11 + seed as usize) % 3 == 1;
        let rel_perm = move |qi: usize, dj: usize| rel(qi, perm[dj]);

        let pr = pr_curve(&HammingRanker::new(db), &qc, &rel);
        let pr_perm = pr_curve(&HammingRanker::new(db_perm), &qc, &rel_perm);
        assert_eq!(pr_bits(&pr), pr_bits(&pr_perm), "seed {seed}: PR under permutation");
    }
}
