//! Property test for [`HashIndex`] under arbitrary insert/remove
//! interleavings.
//!
//! The oracle is a mirror of the index's logical contents — every code ever
//! inserted plus a liveness flag. After each operation and at the end,
//! `lookup` at *every* radius must return exactly what a linear scan over
//! the live mirror returns: tombstoned items never resurface (not even
//! after later inserts reuse their bucket), double-removes report absence,
//! and `live_len` tracks the flags.

use proptest::prelude::*;
use uhscm_eval::{BitCodes, HashIndex};
use uhscm_linalg::rng;

/// One step of an interleaving: `true` inserts `1 + (param % 3)` fresh
/// codes, `false` removes item `param % len` (possibly already removed).
fn ops() -> impl Strategy<Value = Vec<(bool, u64)>> {
    prop::collection::vec((any::<bool>(), any::<u64>()), 1..32)
}

/// Ground truth: brute-force scan over the live items, sorted the way
/// `lookup` sorts (distance, then index).
fn linear_scan(all: &BitCodes, alive: &[bool], q: &BitCodes, radius: u32) -> Vec<(u32, u32)> {
    let mut v: Vec<(u32, u32)> = (0..all.len())
        .filter(|&j| alive[j])
        .filter_map(|j| {
            let d = q.hamming(0, all, j);
            (d <= radius).then_some((j as u32, d))
        })
        .collect();
    v.sort_unstable_by_key(|&(j, d)| (d, j));
    v
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn lookup_matches_linear_scan_after_interleaved_inserts_and_removes(
        seed in any::<u64>(),
        n0 in 1usize..24,
        bits in 4usize..24,
        prefix in 1usize..12,
        ops in ops(),
    ) {
        let mut r = rng::seeded(seed);
        let initial = BitCodes::from_real(&rng::gauss_matrix(&mut r, n0, bits, 1.0));
        let q = BitCodes::from_real(&rng::gauss_matrix(&mut r, 1, bits, 1.0));

        let mut index = HashIndex::build(initial.clone(), prefix);
        let mut all = initial; // mirror of everything ever inserted
        let mut alive = vec![true; all.len()];

        for (step, &(is_insert, param)) in ops.iter().enumerate() {
            if is_insert {
                let count = 1 + (param % 3) as usize;
                let fresh = BitCodes::from_real(&rng::gauss_matrix(&mut r, count, bits, 1.0));
                let first = index.insert(&fresh);
                prop_assert_eq!(first, all.len(), "step {}: insert offset", step);
                all.extend(&fresh);
                alive.resize(all.len(), true);
            } else {
                let target = (param % all.len() as u64) as usize;
                let was_alive = alive[target];
                prop_assert_eq!(index.remove(target), was_alive,
                    "step {}: remove({}) presence", step, target);
                // A second remove of the same item must report absence.
                prop_assert!(!index.remove(target), "step {}: double remove", step);
                alive[target] = false;
            }
            prop_assert_eq!(index.live_len(), alive.iter().filter(|&&a| a).count());
        }

        // Tombstones must stay dead at every radius, from the empty ring to
        // the whole space (which exercises both the multi-probe walk and
        // the linear fallback).
        for radius in 0..=bits as u32 {
            prop_assert_eq!(
                index.lookup(&q, 0, radius),
                linear_scan(&all, &alive, &q, radius),
                "radius {}", radius
            );
        }
    }
}
