//! Sampled-vs-exhaustive agreement on a 10k-item database (ISSUE 10
//! satellite): the sampled estimator must degrade *gracefully* from the
//! exhaustive metrics — a full-population sample reproduces exhaustive MAP
//! bitwise, and a seeded 10% sample's confidence interval covers the
//! exhaustive value.

use rand::Rng;
use uhscm_eval::{mean_average_precision, sample_indices, sampled_map, BitCodes, HammingRanker};
use uhscm_linalg::rng::seeded;

const N_DB: usize = 10_000;
const N_QUERY: usize = 200;
const BITS: usize = 32;
const TOP_N: usize = 100;
const N_CLASSES: usize = 10;

/// Seeded codes with class-correlated bits plus per-item noise, and a
/// label per item — enough structure that MAP is far from both 0 and 1.
fn corpus(seed: u64) -> (HammingRanker, BitCodes, Vec<usize>, Vec<usize>) {
    let mut r = seeded(seed);
    let class_patterns: Vec<Vec<bool>> =
        (0..N_CLASSES).map(|_| (0..BITS).map(|_| r.gen_bool(0.5)).collect()).collect();
    let mut make = |n: usize| -> (Vec<Vec<bool>>, Vec<usize>) {
        let mut rows = Vec::with_capacity(n);
        let mut labels = Vec::with_capacity(n);
        for _ in 0..n {
            let c = r.gen_range(0..N_CLASSES);
            rows.push(
                class_patterns[c].iter().map(|&b| if r.gen_bool(0.2) { !b } else { b }).collect(),
            );
            labels.push(c);
        }
        (rows, labels)
    };
    let (db_rows, db_labels) = make(N_DB);
    let (q_rows, q_labels) = make(N_QUERY);
    (
        HammingRanker::new(BitCodes::from_bools(&db_rows)),
        BitCodes::from_bools(&q_rows),
        db_labels,
        q_labels,
    )
}

#[test]
fn full_population_sample_reproduces_exhaustive_map_bitwise() {
    let (ranker, queries, db_labels, q_labels) = corpus(42);
    let relevant = move |qi: usize, di: usize| q_labels[qi] == db_labels[di];
    let exhaustive = mean_average_precision(&ranker, &queries, &relevant, TOP_N);
    assert!(exhaustive > 0.05 && exhaustive < 0.999, "degenerate fixture: MAP={exhaustive}");

    let full = sample_indices(N_QUERY, N_QUERY, 7);
    let est = sampled_map(&ranker, &queries, &relevant, TOP_N, &full);
    assert_eq!(
        est.estimate.to_bits(),
        exhaustive.to_bits(),
        "full-population sampled MAP must be bitwise identical to exhaustive"
    );
    assert_eq!(est.std_error.to_bits(), 0f64.to_bits());
    assert_eq!(est.sample_size, N_QUERY);
    assert!(est.covers(exhaustive));
}

#[test]
fn ten_percent_sample_interval_covers_exhaustive_map() {
    let (ranker, queries, db_labels, q_labels) = corpus(42);
    let relevant = move |qi: usize, di: usize| q_labels[qi] == db_labels[di];
    let exhaustive = mean_average_precision(&ranker, &queries, &relevant, TOP_N);

    let sample = sample_indices(N_QUERY, N_QUERY / 10, 2026);
    assert_eq!(sample.len(), 20);
    let est = sampled_map(&ranker, &queries, &relevant, TOP_N, &sample);
    assert!(est.std_error > 0.0, "a strict subsample must carry uncertainty");
    assert!(
        est.covers(exhaustive),
        "10% sample CI [{}, {}] must cover exhaustive MAP {} (estimate {})",
        est.ci_low,
        est.ci_high,
        exhaustive,
        est.estimate,
    );
    // Determinism: the same seed reproduces the identical estimate.
    let again = sampled_map(&ranker, &queries, &relevant, TOP_N, &sample);
    assert_eq!(est.estimate.to_bits(), again.estimate.to_bits());
}
