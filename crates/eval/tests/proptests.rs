//! Property-based tests for the evaluation stack.

use proptest::prelude::*;
use uhscm_eval::{mean_average_precision, pr_curve, precision_at_n, BitCodes, HammingRanker};
use uhscm_linalg::Matrix;

/// Random ±1 code matrices: (db, queries) with matching bit width.
fn code_pair() -> impl Strategy<Value = (Matrix, Matrix)> {
    (2usize..40, 1usize..8, 1usize..96).prop_flat_map(|(ndb, nq, bits)| {
        let db = prop::collection::vec(prop::bool::ANY, ndb * bits)
            .prop_map(move |v| sign_matrix(ndb, bits, &v));
        let q = prop::collection::vec(prop::bool::ANY, nq * bits)
            .prop_map(move |v| sign_matrix(nq, bits, &v));
        (db, q)
    })
}

fn sign_matrix(rows: usize, cols: usize, bools: &[bool]) -> Matrix {
    Matrix::from_vec(rows, cols, bools.iter().map(|&b| if b { 1.0 } else { -1.0 }).collect())
}

proptest! {
    #[test]
    fn scan_matches_pairwise_hamming((db, q) in code_pair()) {
        let dbc = BitCodes::from_real(&db);
        let qc = BitCodes::from_real(&q);
        let mut out = vec![0u32; dbc.len()];
        for qi in 0..qc.len() {
            uhscm_eval::bitcode::hamming_scan::scan_into(&qc, qi, &dbc, &mut out);
            for (j, &d) in out.iter().enumerate() {
                prop_assert_eq!(d, qc.hamming(qi, &dbc, j));
            }
        }
    }

    #[test]
    fn hamming_is_a_metric((db, q) in code_pair()) {
        let dbc = BitCodes::from_real(&db);
        let qc = BitCodes::from_real(&q);
        // Symmetry and identity on the db set.
        for i in 0..dbc.len().min(6) {
            prop_assert_eq!(dbc.hamming(i, &dbc, i), 0);
            for j in 0..dbc.len().min(6) {
                prop_assert_eq!(dbc.hamming(i, &dbc, j), dbc.hamming(j, &dbc, i));
                // Triangle inequality through the first query code.
                let via = dbc.hamming(i, &qc, 0) + qc.hamming(0, &dbc, j);
                prop_assert!(dbc.hamming(i, &dbc, j) <= via);
            }
        }
    }

    #[test]
    fn hamming_bounded_by_bits((db, q) in code_pair()) {
        let dbc = BitCodes::from_real(&db);
        let qc = BitCodes::from_real(&q);
        for i in 0..qc.len() {
            for j in 0..dbc.len() {
                prop_assert!(qc.hamming(i, &dbc, j) as usize <= dbc.bits());
            }
        }
    }

    #[test]
    fn pack_unpack_round_trip((db, _q) in code_pair()) {
        let codes = BitCodes::from_real(&db);
        let again = BitCodes::from_real(&codes.unpack_all());
        prop_assert_eq!(codes, again);
    }

    #[test]
    fn ranking_is_sorted_permutation((db, q) in code_pair()) {
        let dbc = BitCodes::from_real(&db);
        let qc = BitCodes::from_real(&q);
        let ranker = HammingRanker::new(dbc);
        for qi in 0..qc.len() {
            let ranked = ranker.rank(&qc, qi);
            // Permutation.
            let mut sorted = ranked.clone();
            sorted.sort_unstable();
            prop_assert_eq!(sorted, (0..ranker.database().len() as u32).collect::<Vec<_>>());
            // Non-decreasing distances.
            let dists: Vec<u32> = ranked
                .iter()
                .map(|&j| qc.hamming(qi, ranker.database(), j as usize))
                .collect();
            prop_assert!(dists.windows(2).all(|w| w[0] <= w[1]));
        }
    }

    #[test]
    fn map_in_unit_interval((db, q) in code_pair(), mask in any::<u64>()) {
        let dbc = BitCodes::from_real(&db);
        let qc = BitCodes::from_real(&q);
        let ranker = HammingRanker::new(dbc);
        let rel = move |qi: usize, di: usize| (mask >> ((qi * 7 + di) % 64)) & 1 == 1;
        let map = mean_average_precision(&ranker, &qc, &rel, ranker.database().len());
        prop_assert!((0.0..=1.0 + 1e-12).contains(&map));
    }

    #[test]
    fn all_relevant_gives_perfect_metrics((db, q) in code_pair()) {
        let dbc = BitCodes::from_real(&db);
        let qc = BitCodes::from_real(&q);
        let n = dbc.len();
        let ranker = HammingRanker::new(dbc);
        let rel = |_: usize, _: usize| true;
        let map = mean_average_precision(&ranker, &qc, &rel, n);
        prop_assert!((map - 1.0).abs() < 1e-12);
        for p in precision_at_n(&ranker, &qc, &rel, &[1, n]) {
            prop_assert!((p - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn pr_curve_recall_monotone_and_terminal((db, q) in code_pair(), mask in any::<u64>()) {
        let dbc = BitCodes::from_real(&db);
        let qc = BitCodes::from_real(&q);
        let bits = dbc.bits();
        let ranker = HammingRanker::new(dbc);
        let rel = move |qi: usize, di: usize| (mask >> ((qi * 11 + di * 3) % 64)) & 1 == 1;
        let pr = pr_curve(&ranker, &qc, &rel);
        prop_assert_eq!(pr.len(), bits + 1);
        prop_assert!(pr.windows(2).all(|w| w[0].recall <= w[1].recall + 1e-12));
        // At the maximal radius everything is retrieved.
        let any_relevant = (0..qc.len()).any(|qi| (0..ranker.database().len()).any(|di| rel(qi, di)));
        if any_relevant {
            prop_assert!((pr[bits].recall - 1.0).abs() < 1e-12);
        }
    }
}

mod index_props {
    use proptest::prelude::*;
    use uhscm_eval::{BitCodes, HashIndex};
    use uhscm_linalg::rng;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]

        /// The multi-probe index must agree exactly with a brute-force scan
        /// for every radius and any prefix width.
        #[test]
        fn index_lookup_is_exact(
            seed in any::<u64>(),
            n in 2usize..120,
            bits in 4usize..48,
            prefix in 1usize..20,
            radius in 0u32..48,
        ) {
            let mut r = rng::seeded(seed);
            let db = BitCodes::from_real(&rng::gauss_matrix(&mut r, n, bits, 1.0));
            let q = BitCodes::from_real(&rng::gauss_matrix(&mut r, 1, bits, 1.0));
            let radius = radius.min(bits as u32);
            let expected: Vec<(u32, u32)> = {
                let mut v: Vec<(u32, u32)> = (0..n)
                    .filter_map(|j| {
                        let d = q.hamming(0, &db, j);
                        (d <= radius).then_some((j as u32, d))
                    })
                    .collect();
                v.sort_unstable_by_key(|&(j, d)| (d, j));
                v
            };
            let index = HashIndex::build(db, prefix);
            prop_assert_eq!(index.lookup(&q, 0, radius), expected);
        }

        /// knn returns exactly the k smallest distances (as a multiset).
        #[test]
        fn index_knn_is_exact(seed in any::<u64>(), n in 3usize..80, k in 1usize..10) {
            let mut r = rng::seeded(seed);
            let db = BitCodes::from_real(&rng::gauss_matrix(&mut r, n, 16, 1.0));
            let q = BitCodes::from_real(&rng::gauss_matrix(&mut r, 1, 16, 1.0));
            let k = k.min(n);
            let mut all: Vec<u32> = (0..n).map(|j| q.hamming(0, &db, j)).collect();
            all.sort_unstable();
            let index = HashIndex::with_default_prefix(db);
            let got: Vec<u32> = index.knn(&q, 0, k).iter().map(|&(_, d)| d).collect();
            prop_assert_eq!(got, all[..k].to_vec());
        }
    }
}

proptest! {
    #[test]
    fn map_parallel_matches_serial_bitwise((db, q) in code_pair(), top_n in 1usize..12) {
        use uhscm_linalg::par;
        let ranker = HammingRanker::new(BitCodes::from_real(&db));
        let qc = BitCodes::from_real(&q);
        let rel = |qi: usize, dj: usize| (qi + dj) % 3 == 0;
        let serial = par::with_threads(1, || mean_average_precision(&ranker, &qc, &rel, top_n));
        for threads in [2usize, 3, 8] {
            let parallel =
                par::with_threads(threads, || mean_average_precision(&ranker, &qc, &rel, top_n));
            prop_assert_eq!(serial.to_bits(), parallel.to_bits());
        }
    }

    #[test]
    fn precision_at_n_parallel_matches_serial_bitwise((db, q) in code_pair()) {
        use uhscm_linalg::par;
        let ranker = HammingRanker::new(BitCodes::from_real(&db));
        let qc = BitCodes::from_real(&q);
        let rel = |qi: usize, dj: usize| (qi * 7 + dj) % 2 == 0;
        let ns = [1usize, 3, 10];
        let serial = par::with_threads(1, || precision_at_n(&ranker, &qc, &rel, &ns));
        for threads in [2usize, 3, 8] {
            let parallel = par::with_threads(threads, || precision_at_n(&ranker, &qc, &rel, &ns));
            prop_assert_eq!(
                serial.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                parallel.iter().map(|v| v.to_bits()).collect::<Vec<_>>()
            );
        }
    }

    #[test]
    fn pr_curve_parallel_matches_serial_bitwise((db, q) in code_pair()) {
        use uhscm_linalg::par;
        let ranker = HammingRanker::new(BitCodes::from_real(&db));
        let qc = BitCodes::from_real(&q);
        let rel = |qi: usize, dj: usize| (qi + dj) % 2 == 1;
        let serial = par::with_threads(1, || pr_curve(&ranker, &qc, &rel));
        for threads in [2usize, 3, 8] {
            let parallel = par::with_threads(threads, || pr_curve(&ranker, &qc, &rel));
            prop_assert_eq!(serial.len(), parallel.len());
            for (s, p) in serial.iter().zip(&parallel) {
                prop_assert_eq!(s.radius, p.radius);
                prop_assert_eq!(s.precision.to_bits(), p.precision.to_bits());
                prop_assert_eq!(s.recall.to_bits(), p.recall.to_bits());
            }
        }
    }

    #[test]
    fn top_n_is_prefix_of_full_rank((db, q) in code_pair(), n in 0usize..50) {
        let ranker = HammingRanker::new(BitCodes::from_real(&db));
        let qc = BitCodes::from_real(&q);
        for qi in 0..qc.len() {
            let full = ranker.rank(&qc, qi);
            let top = ranker.rank_top_n(&qc, qi, n);
            prop_assert_eq!(&full[..n.min(full.len())], top.as_slice());
        }
    }
}
