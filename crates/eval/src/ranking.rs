//! Hamming ranking over a code database.

use crate::BitCodes;

/// Ranks database codes by Hamming distance from query codes.
///
/// Because distances are integers in `0..=bits`, ranking is a counting sort:
/// `O(n + k)` per query with stable (index-ascending) order inside each
/// distance bucket — deterministic tie-breaking matters for reproducible
/// MAP numbers.
#[derive(Debug, Clone)]
pub struct HammingRanker {
    db: BitCodes,
}

impl HammingRanker {
    /// Build a ranker over `db`.
    pub fn new(db: BitCodes) -> Self {
        Self { db }
    }

    /// The database codes.
    pub fn database(&self) -> &BitCodes {
        &self.db
    }

    /// Distances from query `qi` of `queries` to every database code.
    pub fn distances(&self, queries: &BitCodes, qi: usize) -> Vec<u32> {
        (0..self.db.len()).map(|j| queries.hamming(qi, &self.db, j)).collect()
    }

    /// Database indices sorted by ascending Hamming distance (stable).
    pub fn rank(&self, queries: &BitCodes, qi: usize) -> Vec<u32> {
        let dists = self.distances(queries, qi);
        counting_rank(&dists, self.db.bits())
    }

    /// Per-distance histogram of database points: `hist[d]` = how many
    /// database codes lie at exactly distance `d`. Used by the hash-lookup
    /// protocol (PR curves over Hamming radii).
    pub fn distance_histogram(&self, queries: &BitCodes, qi: usize) -> Vec<u32> {
        let mut hist = vec![0u32; self.db.bits() + 1];
        for d in self.distances(queries, qi) {
            hist[d as usize] += 1;
        }
        hist
    }
}

/// Counting sort of indices by distance value.
fn counting_rank(dists: &[u32], max_dist: usize) -> Vec<u32> {
    let mut buckets = vec![0u32; max_dist + 2];
    for &d in dists {
        buckets[d as usize + 1] += 1;
    }
    for i in 1..buckets.len() {
        buckets[i] += buckets[i - 1];
    }
    let mut out = vec![0u32; dists.len()];
    for (idx, &d) in dists.iter().enumerate() {
        let slot = &mut buckets[d as usize];
        out[*slot as usize] = idx as u32;
        *slot += 1;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use uhscm_linalg::Matrix;

    fn codes(rows: &[Vec<f64>]) -> BitCodes {
        BitCodes::from_real(&Matrix::from_rows(rows))
    }

    #[test]
    fn rank_orders_by_distance() {
        let db = codes(&[
            vec![1.0, 1.0, 1.0, 1.0],    // d=4 from query
            vec![-1.0, -1.0, -1.0, -1.0], // d=0
            vec![1.0, -1.0, -1.0, -1.0],  // d=1
        ]);
        let q = codes(&[vec![-1.0, -1.0, -1.0, -1.0]]);
        let ranker = HammingRanker::new(db);
        assert_eq!(ranker.rank(&q, 0), vec![1, 2, 0]);
    }

    #[test]
    fn ties_break_by_index() {
        let db = codes(&[
            vec![1.0, -1.0], // d=1
            vec![-1.0, 1.0], // d=1
            vec![-1.0, -1.0], // d=0
        ]);
        let q = codes(&[vec![-1.0, -1.0]]);
        let ranker = HammingRanker::new(db);
        assert_eq!(ranker.rank(&q, 0), vec![2, 0, 1]);
    }

    #[test]
    fn histogram_counts_all_points() {
        let db = codes(&[
            vec![1.0, 1.0],
            vec![1.0, -1.0],
            vec![-1.0, -1.0],
            vec![-1.0, 1.0],
        ]);
        let q = codes(&[vec![1.0, 1.0]]);
        let ranker = HammingRanker::new(db);
        let hist = ranker.distance_histogram(&q, 0);
        assert_eq!(hist, vec![1, 2, 1]);
        assert_eq!(hist.iter().sum::<u32>(), 4);
    }

    #[test]
    fn rank_is_permutation() {
        let db = codes(&[
            vec![1.0, -1.0, 1.0],
            vec![-1.0, -1.0, 1.0],
            vec![1.0, 1.0, 1.0],
            vec![-1.0, 1.0, -1.0],
            vec![1.0, 1.0, -1.0],
        ]);
        let q = codes(&[vec![1.0, 1.0, 1.0]]);
        let ranker = HammingRanker::new(db);
        let mut r = ranker.rank(&q, 0);
        r.sort_unstable();
        assert_eq!(r, vec![0, 1, 2, 3, 4]);
    }
}
