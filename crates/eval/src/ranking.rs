//! Hamming ranking over a code database.

use crate::bitcode::hamming_scan;
use crate::BitCodes;
use std::collections::BinaryHeap;

/// Ranks database codes by Hamming distance from query codes.
///
/// Because distances are integers in `0..=bits`, ranking is a counting sort:
/// `O(n + k)` per query with stable (index-ascending) order inside each
/// distance bucket — deterministic tie-breaking matters for reproducible
/// MAP numbers.
#[derive(Debug, Clone)]
pub struct HammingRanker {
    db: BitCodes,
}

impl HammingRanker {
    /// Build a ranker over `db`.
    pub fn new(db: BitCodes) -> Self {
        Self { db }
    }

    /// The database codes.
    pub fn database(&self) -> &BitCodes {
        &self.db
    }

    /// Distances from query `qi` of `queries` to every database code.
    pub fn distances(&self, queries: &BitCodes, qi: usize) -> Vec<u32> {
        let mut out = vec![0u32; self.db.len()];
        self.distances_into(queries, qi, &mut out);
        out
    }

    /// [`Self::distances`] into a caller-provided buffer, so per-query loops
    /// (MAP, P@N, PR curves) reuse one allocation across the whole query set.
    ///
    /// # Panics
    /// Panics on code-length mismatch or if `out.len() != self.database().len()`.
    pub(crate) fn distances_into(&self, queries: &BitCodes, qi: usize, out: &mut [u32]) {
        hamming_scan::scan_into(queries, qi, &self.db, out);
    }

    /// Database indices sorted by ascending Hamming distance (stable).
    pub fn rank(&self, queries: &BitCodes, qi: usize) -> Vec<u32> {
        let dists = self.distances(queries, qi);
        counting_rank(&dists, self.db.bits())
    }

    /// The first `n` entries of [`Self::rank`] without materializing the
    /// full ranking: a bounded max-heap over `(distance, index)` keeps the
    /// `n` best candidates in `O(db · log n)` and no `O(db)` output
    /// allocation. Tie-breaking is identical to the counting sort —
    /// ascending distance, then ascending database index — because the heap
    /// orders candidates by exactly that lexicographic key.
    pub fn rank_top_n(&self, queries: &BitCodes, qi: usize, n: usize) -> Vec<u32> {
        self.rank_top_n_with_dist(queries, qi, n).into_iter().map(|(_, j)| j).collect()
    }

    /// [`Self::rank_top_n`] with the Hamming distance attached: the first
    /// `n` `(distance, index)` pairs in ascending `(distance, index)` order.
    /// This is the candidate format the online shard-merge
    /// ([`merge_top_n`]) consumes, so sharded serving can reproduce the
    /// offline ranking bit-for-bit.
    pub fn rank_top_n_with_dist(&self, queries: &BitCodes, qi: usize, n: usize) -> Vec<(u32, u32)> {
        let total = self.db.len();
        let n = n.min(total);
        if n == 0 {
            return Vec::new();
        }
        // When most of the database is requested, heap maintenance costs
        // more than the O(db + bits) counting sort; the prefix is the same.
        // Distances are computed once and reused for the output pairs —
        // re-deriving them per ranked index would double the popcount work
        // and this branch sits on the serve hot path.
        if n * 4 >= total {
            let dists = self.distances(queries, qi);
            let order = counting_rank(&dists, self.db.bits());
            return order.into_iter().take(n).map(|j| (dists[j as usize], j)).collect();
        }
        // Distances come from the batched scan kernel in SCAN_BLOCK-sized
        // stack chunks: the popcount sweep runs at full width-specialized
        // speed and the heap only ever sees a 2 KB resident buffer.
        let mut heap: BinaryHeap<(u32, u32)> = BinaryHeap::with_capacity(n + 1);
        let mut block = [0u32; hamming_scan::SCAN_BLOCK];
        let mut start = 0;
        while start < total {
            let end = (start + hamming_scan::SCAN_BLOCK).min(total);
            let dists = &mut block[..end - start];
            hamming_scan::scan_range_into(queries, qi, &self.db, start..end, dists);
            for (off, &d) in dists.iter().enumerate() {
                let cand = (d, (start + off) as u32);
                if heap.len() < n {
                    heap.push(cand);
                } else if let Some(&worst) = heap.peek() {
                    if cand < worst {
                        heap.pop();
                        heap.push(cand);
                    }
                }
            }
            start = end;
        }
        heap.into_sorted_vec()
    }

    /// Per-distance histogram of database points: `hist[d]` = how many
    /// database codes lie at exactly distance `d`. Used by the hash-lookup
    /// protocol (PR curves over Hamming radii).
    pub fn distance_histogram(&self, queries: &BitCodes, qi: usize) -> Vec<u32> {
        let mut hist = vec![0u32; self.db.bits() + 1];
        for d in self.distances(queries, qi) {
            hist[d as usize] += 1;
        }
        hist
    }
}

/// Merge per-shard top-`n` candidate lists into the global top-`n`.
///
/// Each shard list holds `(distance, global_index)` pairs — that shard's
/// best `min(n, shard_len)` candidates, e.g. from
/// [`HammingRanker::rank_top_n_with_dist`] over a contiguous slice of the
/// database with the slice offset added to every index. The merged result
/// is ordered by ascending `(distance, index)` — exactly the counting-sort
/// tie-breaking contract of [`HammingRanker::rank`] — so a sharded deployment
/// returns bitwise-identical rankings to a single-shard one, for any shard
/// count, as long as the shards partition the database into contiguous
/// index ranges.
pub fn merge_top_n(shards: &[Vec<(u32, u32)>], n: usize) -> Vec<(u32, u32)> {
    let mut all: Vec<(u32, u32)> = shards.concat();
    // Indices are unique across shards, so the lexicographic key is unique
    // and an unstable sort is deterministic.
    all.sort_unstable();
    all.truncate(n);
    all
}

/// Counting sort of indices by distance value.
fn counting_rank(dists: &[u32], max_dist: usize) -> Vec<u32> {
    let mut buckets = vec![0u32; max_dist + 2];
    for &d in dists {
        buckets[d as usize + 1] += 1;
    }
    for i in 1..buckets.len() {
        buckets[i] += buckets[i - 1];
    }
    let mut out = vec![0u32; dists.len()];
    for (idx, &d) in dists.iter().enumerate() {
        let slot = &mut buckets[d as usize];
        out[*slot as usize] = idx as u32;
        *slot += 1;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use uhscm_linalg::Matrix;

    fn codes(rows: &[Vec<f64>]) -> BitCodes {
        BitCodes::from_real(&Matrix::from_rows(rows))
    }

    #[test]
    fn rank_orders_by_distance() {
        let db = codes(&[
            vec![1.0, 1.0, 1.0, 1.0],     // d=4 from query
            vec![-1.0, -1.0, -1.0, -1.0], // d=0
            vec![1.0, -1.0, -1.0, -1.0],  // d=1
        ]);
        let q = codes(&[vec![-1.0, -1.0, -1.0, -1.0]]);
        let ranker = HammingRanker::new(db);
        assert_eq!(ranker.rank(&q, 0), vec![1, 2, 0]);
    }

    #[test]
    fn ties_break_by_index() {
        let db = codes(&[
            vec![1.0, -1.0],  // d=1
            vec![-1.0, 1.0],  // d=1
            vec![-1.0, -1.0], // d=0
        ]);
        let q = codes(&[vec![-1.0, -1.0]]);
        let ranker = HammingRanker::new(db);
        assert_eq!(ranker.rank(&q, 0), vec![2, 0, 1]);
    }

    #[test]
    fn top_n_breaks_ties_like_full_rank() {
        // Six codes, all tied at distance 1 except one exact match — the
        // heap path (n*4 < total) must order ties by ascending index just
        // like the counting sort.
        let db = codes(&[
            vec![1.0, -1.0, -1.0],  // d=1
            vec![-1.0, 1.0, -1.0],  // d=1
            vec![-1.0, -1.0, -1.0], // d=0
            vec![-1.0, -1.0, 1.0],  // d=1
            vec![1.0, -1.0, -1.0],  // d=1 (duplicate of 0)
            vec![-1.0, 1.0, -1.0],  // d=1 (duplicate of 1)
        ]);
        let q = codes(&[vec![-1.0, -1.0, -1.0]]);
        let ranker = HammingRanker::new(db);
        let full = ranker.rank(&q, 0);
        assert_eq!(full, vec![2, 0, 1, 3, 4, 5]);
        for n in 0..=6 {
            assert_eq!(ranker.rank_top_n(&q, 0, n), full[..n].to_vec(), "n={n}");
        }
    }

    #[test]
    fn top_n_heap_path_matches_counting_sort() {
        // 16 codes with many duplicate distances; n=2 forces the bounded
        // heap (2*4 < 16) and must reproduce the stable prefix.
        let rows: Vec<Vec<f64>> = (0..16)
            .map(|i| (0..4).map(|b| if (i >> b) & 1 == 1 { 1.0 } else { -1.0 }).collect())
            .collect();
        let db = codes(&rows);
        let q = codes(&[vec![-1.0, -1.0, -1.0, -1.0]]);
        let ranker = HammingRanker::new(db);
        let full = ranker.rank(&q, 0);
        for n in [1usize, 2, 3] {
            assert_eq!(ranker.rank_top_n(&q, 0, n), full[..n].to_vec(), "n={n}");
        }
    }

    /// Global top-n via `shards` contiguous slices + [`merge_top_n`].
    fn sharded_top_n(db: &BitCodes, q: &BitCodes, shards: usize, n: usize) -> Vec<(u32, u32)> {
        let bands = uhscm_linalg::par::partition(db.len(), shards);
        let per_shard: Vec<Vec<(u32, u32)>> = bands
            .into_iter()
            .map(|r| {
                let offset = r.start as u32;
                let local = HammingRanker::new(db.slice(r));
                local
                    .rank_top_n_with_dist(q, 0, n)
                    .into_iter()
                    .map(|(d, j)| (d, j + offset))
                    .collect()
            })
            .collect();
        merge_top_n(&per_shard, n)
    }

    #[test]
    fn sharded_merge_matches_single_shard_on_crafted_ties() {
        // 24 codes built so nearly everything ties: only 3 bits => distances
        // in 0..=3, eight codes per distance bucket on average. Tie-breaking
        // by ascending global index is the whole test.
        let rows: Vec<Vec<f64>> = (0..24)
            .map(|i| (0..3).map(|b| if (i >> b) & 1 == 1 { 1.0 } else { -1.0 }).collect())
            .collect();
        let db = codes(&rows);
        let q = codes(&[vec![-1.0, 1.0, -1.0]]);
        let ranker = HammingRanker::new(db.clone());
        for n in [0usize, 1, 3, 5, 8, 24, 30] {
            let oracle = ranker.rank_top_n_with_dist(&q, 0, n);
            assert_eq!(
                oracle.iter().map(|&(_, j)| j).collect::<Vec<_>>(),
                ranker.rank_top_n(&q, 0, n),
                "with_dist must agree with rank_top_n at n={n}"
            );
            for shards in [1usize, 2, 4] {
                assert_eq!(
                    sharded_top_n(&db, &q, shards, n),
                    oracle,
                    "shards={shards} n={n} must be bit-for-bit identical"
                );
            }
        }
    }

    #[test]
    fn sharded_merge_handles_duplicate_codes_across_shard_boundaries() {
        // Every code identical: all distances tie, so the merged ranking
        // must be exactly 0..n in index order for any shard count.
        let db = codes(&vec![vec![1.0, -1.0, 1.0, 1.0]; 10]);
        let q = codes(&[vec![-1.0, -1.0, 1.0, 1.0]]);
        let ranker = HammingRanker::new(db.clone());
        for shards in [1usize, 2, 4] {
            let merged = sharded_top_n(&db, &q, shards, 7);
            assert_eq!(merged, ranker.rank_top_n_with_dist(&q, 0, 7), "shards={shards}");
            assert_eq!(
                merged.iter().map(|&(_, j)| j).collect::<Vec<_>>(),
                vec![0, 1, 2, 3, 4, 5, 6]
            );
        }
    }

    #[test]
    fn merge_top_n_orders_by_distance_then_index() {
        let a = vec![(0u32, 4u32), (2, 5)];
        let b = vec![(0u32, 1u32), (2, 2)];
        assert_eq!(merge_top_n(&[a, b], 3), vec![(0, 1), (0, 4), (2, 2)]);
        assert_eq!(merge_top_n(&[], 3), Vec::<(u32, u32)>::new());
    }

    #[test]
    fn histogram_counts_all_points() {
        let db = codes(&[vec![1.0, 1.0], vec![1.0, -1.0], vec![-1.0, -1.0], vec![-1.0, 1.0]]);
        let q = codes(&[vec![1.0, 1.0]]);
        let ranker = HammingRanker::new(db);
        let hist = ranker.distance_histogram(&q, 0);
        assert_eq!(hist, vec![1, 2, 1]);
        assert_eq!(hist.iter().sum::<u32>(), 4);
    }

    #[test]
    fn rank_is_permutation() {
        let db = codes(&[
            vec![1.0, -1.0, 1.0],
            vec![-1.0, -1.0, 1.0],
            vec![1.0, 1.0, 1.0],
            vec![-1.0, 1.0, -1.0],
            vec![1.0, 1.0, -1.0],
        ]);
        let q = codes(&[vec![1.0, 1.0, 1.0]]);
        let ranker = HammingRanker::new(db);
        let mut r = ranker.rank(&q, 0);
        r.sort_unstable();
        assert_eq!(r, vec![0, 1, 2, 3, 4]);
    }
}
