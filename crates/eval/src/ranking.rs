//! Hamming ranking over a code database.

use crate::BitCodes;
use std::collections::BinaryHeap;

/// Ranks database codes by Hamming distance from query codes.
///
/// Because distances are integers in `0..=bits`, ranking is a counting sort:
/// `O(n + k)` per query with stable (index-ascending) order inside each
/// distance bucket — deterministic tie-breaking matters for reproducible
/// MAP numbers.
#[derive(Debug, Clone)]
pub struct HammingRanker {
    db: BitCodes,
}

impl HammingRanker {
    /// Build a ranker over `db`.
    pub fn new(db: BitCodes) -> Self {
        Self { db }
    }

    /// The database codes.
    pub fn database(&self) -> &BitCodes {
        &self.db
    }

    /// Distances from query `qi` of `queries` to every database code.
    pub fn distances(&self, queries: &BitCodes, qi: usize) -> Vec<u32> {
        (0..self.db.len()).map(|j| queries.hamming(qi, &self.db, j)).collect()
    }

    /// Database indices sorted by ascending Hamming distance (stable).
    pub fn rank(&self, queries: &BitCodes, qi: usize) -> Vec<u32> {
        let dists = self.distances(queries, qi);
        counting_rank(&dists, self.db.bits())
    }

    /// The first `n` entries of [`Self::rank`] without materializing the
    /// full ranking: a bounded max-heap over `(distance, index)` keeps the
    /// `n` best candidates in `O(db · log n)` and no `O(db)` output
    /// allocation. Tie-breaking is identical to the counting sort —
    /// ascending distance, then ascending database index — because the heap
    /// orders candidates by exactly that lexicographic key.
    pub fn rank_top_n(&self, queries: &BitCodes, qi: usize, n: usize) -> Vec<u32> {
        let total = self.db.len();
        let n = n.min(total);
        if n == 0 {
            return Vec::new();
        }
        // When most of the database is requested, heap maintenance costs
        // more than the O(db + bits) counting sort; the prefix is the same.
        if n * 4 >= total {
            let mut full = self.rank(queries, qi);
            full.truncate(n);
            return full;
        }
        let mut heap: BinaryHeap<(u32, u32)> = BinaryHeap::with_capacity(n + 1);
        for j in 0..total {
            let cand = (queries.hamming(qi, &self.db, j), j as u32);
            if heap.len() < n {
                heap.push(cand);
            } else if let Some(&worst) = heap.peek() {
                if cand < worst {
                    heap.pop();
                    heap.push(cand);
                }
            }
        }
        heap.into_sorted_vec().into_iter().map(|(_, j)| j).collect()
    }

    /// Per-distance histogram of database points: `hist[d]` = how many
    /// database codes lie at exactly distance `d`. Used by the hash-lookup
    /// protocol (PR curves over Hamming radii).
    pub fn distance_histogram(&self, queries: &BitCodes, qi: usize) -> Vec<u32> {
        let mut hist = vec![0u32; self.db.bits() + 1];
        for d in self.distances(queries, qi) {
            hist[d as usize] += 1;
        }
        hist
    }
}

/// Counting sort of indices by distance value.
fn counting_rank(dists: &[u32], max_dist: usize) -> Vec<u32> {
    let mut buckets = vec![0u32; max_dist + 2];
    for &d in dists {
        buckets[d as usize + 1] += 1;
    }
    for i in 1..buckets.len() {
        buckets[i] += buckets[i - 1];
    }
    let mut out = vec![0u32; dists.len()];
    for (idx, &d) in dists.iter().enumerate() {
        let slot = &mut buckets[d as usize];
        out[*slot as usize] = idx as u32;
        *slot += 1;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use uhscm_linalg::Matrix;

    fn codes(rows: &[Vec<f64>]) -> BitCodes {
        BitCodes::from_real(&Matrix::from_rows(rows))
    }

    #[test]
    fn rank_orders_by_distance() {
        let db = codes(&[
            vec![1.0, 1.0, 1.0, 1.0],     // d=4 from query
            vec![-1.0, -1.0, -1.0, -1.0], // d=0
            vec![1.0, -1.0, -1.0, -1.0],  // d=1
        ]);
        let q = codes(&[vec![-1.0, -1.0, -1.0, -1.0]]);
        let ranker = HammingRanker::new(db);
        assert_eq!(ranker.rank(&q, 0), vec![1, 2, 0]);
    }

    #[test]
    fn ties_break_by_index() {
        let db = codes(&[
            vec![1.0, -1.0],  // d=1
            vec![-1.0, 1.0],  // d=1
            vec![-1.0, -1.0], // d=0
        ]);
        let q = codes(&[vec![-1.0, -1.0]]);
        let ranker = HammingRanker::new(db);
        assert_eq!(ranker.rank(&q, 0), vec![2, 0, 1]);
    }

    #[test]
    fn top_n_breaks_ties_like_full_rank() {
        // Six codes, all tied at distance 1 except one exact match — the
        // heap path (n*4 < total) must order ties by ascending index just
        // like the counting sort.
        let db = codes(&[
            vec![1.0, -1.0, -1.0],  // d=1
            vec![-1.0, 1.0, -1.0],  // d=1
            vec![-1.0, -1.0, -1.0], // d=0
            vec![-1.0, -1.0, 1.0],  // d=1
            vec![1.0, -1.0, -1.0],  // d=1 (duplicate of 0)
            vec![-1.0, 1.0, -1.0],  // d=1 (duplicate of 1)
        ]);
        let q = codes(&[vec![-1.0, -1.0, -1.0]]);
        let ranker = HammingRanker::new(db);
        let full = ranker.rank(&q, 0);
        assert_eq!(full, vec![2, 0, 1, 3, 4, 5]);
        for n in 0..=6 {
            assert_eq!(ranker.rank_top_n(&q, 0, n), full[..n].to_vec(), "n={n}");
        }
    }

    #[test]
    fn top_n_heap_path_matches_counting_sort() {
        // 16 codes with many duplicate distances; n=2 forces the bounded
        // heap (2*4 < 16) and must reproduce the stable prefix.
        let rows: Vec<Vec<f64>> = (0..16)
            .map(|i| (0..4).map(|b| if (i >> b) & 1 == 1 { 1.0 } else { -1.0 }).collect())
            .collect();
        let db = codes(&rows);
        let q = codes(&[vec![-1.0, -1.0, -1.0, -1.0]]);
        let ranker = HammingRanker::new(db);
        let full = ranker.rank(&q, 0);
        for n in [1usize, 2, 3] {
            assert_eq!(ranker.rank_top_n(&q, 0, n), full[..n].to_vec(), "n={n}");
        }
    }

    #[test]
    fn histogram_counts_all_points() {
        let db = codes(&[vec![1.0, 1.0], vec![1.0, -1.0], vec![-1.0, -1.0], vec![-1.0, 1.0]]);
        let q = codes(&[vec![1.0, 1.0]]);
        let ranker = HammingRanker::new(db);
        let hist = ranker.distance_histogram(&q, 0);
        assert_eq!(hist, vec![1, 2, 1]);
        assert_eq!(hist.iter().sum::<u32>(), 4);
    }

    #[test]
    fn rank_is_permutation() {
        let db = codes(&[
            vec![1.0, -1.0, 1.0],
            vec![-1.0, -1.0, 1.0],
            vec![1.0, 1.0, 1.0],
            vec![-1.0, 1.0, -1.0],
            vec![1.0, 1.0, -1.0],
        ]);
        let q = codes(&[vec![1.0, 1.0, 1.0]]);
        let ranker = HammingRanker::new(db);
        let mut r = ranker.rank(&q, 0);
        r.sort_unstable();
        assert_eq!(r, vec![0, 1, 2, 3, 4]);
    }
}
