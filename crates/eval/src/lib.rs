//! Retrieval evaluation for hashing methods (§4.2 of the paper).
//!
//! * [`bitcode`] — bit-packed binary hash codes with fast XOR/popcount
//!   Hamming distance,
//! * [`ranking`] — Hamming-ranking (counting-sort by distance) and
//!   per-distance histograms for the hash-lookup protocol,
//! * [`metrics`] — MAP@n (Eq. 12), precision@N curves (Figure 2) and
//!   precision-recall curves over Hamming radii (Figure 3),
//! * [`sampled`] — seeded query-subsampled MAP/P@N estimates with
//!   confidence intervals, keeping eval tractable at million-item scale,
//! * [`tsne`] — exact t-SNE for the qualitative study of Figure 5,
//! * [`retrieval`] — top-k inspection with relevance flags (Figure 6),
//! * [`index`] — a bucketed multi-probe Hamming index, the data structure a
//!   production deployment of the hash-lookup protocol uses.

pub mod bitcode;
pub mod index;
pub mod metrics;
pub mod ranking;
pub mod retrieval;
pub mod sampled;
pub mod tsne;

pub use bitcode::BitCodes;
pub use index::HashIndex;
pub use metrics::{mean_average_precision, pr_curve, precision_at_n, PrPoint};
pub use ranking::{merge_top_n, HammingRanker};
pub use retrieval::{top_k, RetrievalHit};
pub use sampled::{estimate_from_samples, sample_indices, sampled_map, SampledMetric};
pub use tsne::{cluster_separation, tsne_2d, TsneConfig};
