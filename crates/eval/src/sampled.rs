//! Sampled-query evaluation: MAP/P@N point estimates with confidence
//! intervals from a deterministic query subsample.
//!
//! Exhaustive evaluation ranks every query against every database item —
//! quadratic work that caps eval at toy sizes (ROADMAP item 1). At 1M
//! database items the metrics stay tractable by scoring a seeded subsample
//! of the queries and reporting a normal-approximation interval around the
//! sample mean:
//!
//! `estimate ± 1.96 · s/√n · √((N−n)/(N−1))`
//!
//! where `s` is the sample standard deviation and the last factor is the
//! finite-population correction — sampling *without* replacement from `N`
//! queries shrinks the interval, and collapses it to the point estimate
//! when the sample is the whole population.
//!
//! Two agreement contracts, pinned by tests:
//! * a full-population sample reproduces the exhaustive
//!   [`mean_average_precision`](crate::mean_average_precision) **bitwise**
//!   (same per-query AP routine, same ascending fold order), and
//! * subsampling is deterministic in `(population, sample_size, seed)` —
//!   the indices come from the seeded `rand` shim, sorted ascending.

use crate::metrics::average_precision;
use crate::{BitCodes, HammingRanker};
use uhscm_linalg::{par, rng};

/// Two-sided z for a 95% normal-approximation interval.
const Z_95: f64 = 1.96;

/// A sampled metric estimate with its 95% confidence interval.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SampledMetric {
    /// Sample mean (equals the exhaustive value when the sample is the
    /// whole population).
    pub estimate: f64,
    /// Standard error of the mean, finite-population corrected.
    pub std_error: f64,
    /// Lower 95% bound, clamped to the metric's `[0, 1]` range.
    pub ci_low: f64,
    /// Upper 95% bound, clamped to the metric's `[0, 1]` range.
    pub ci_high: f64,
    /// Queries actually scored.
    pub sample_size: usize,
    /// Queries the estimate generalizes over.
    pub population: usize,
}

impl SampledMetric {
    /// Whether `value` lies inside the confidence interval.
    pub fn covers(&self, value: f64) -> bool {
        (self.ci_low..=self.ci_high).contains(&value)
    }
}

/// Deterministic seeded sample of `sample_size` distinct query indices
/// from `0..population`, sorted ascending. A full-population request
/// returns `0..population` verbatim (no RNG involved), so downstream
/// folds visit queries in exactly the exhaustive order.
///
/// # Panics
///
/// Panics if `sample_size > population`.
pub fn sample_indices(population: usize, sample_size: usize, seed: u64) -> Vec<usize> {
    assert!(sample_size <= population, "sample larger than population");
    if sample_size == population {
        return (0..population).collect();
    }
    let mut r = rng::seeded(seed);
    let mut idx = rng::sample_without_replacement(&mut r, population, sample_size);
    idx.sort_unstable();
    idx
}

/// Point estimate and interval from per-query metric values drawn from a
/// population of `population` queries. The mean is folded in slice order
/// (callers pass values in ascending query order, preserving the
/// exhaustive addition sequence).
///
/// # Panics
///
/// Panics if `values` is empty or longer than `population`.
pub fn estimate_from_samples(values: &[f64], population: usize) -> SampledMetric {
    let n = values.len();
    assert!(n > 0, "estimate over zero sampled queries");
    assert!(n <= population, "sample larger than population");
    let mut total = 0.0;
    for &v in values {
        total += v;
    }
    let estimate = total / n as f64;
    let std_error = if n > 1 && population > 1 {
        let mut ss = 0.0;
        for &v in values {
            let d = v - estimate;
            ss += d * d;
        }
        let variance = ss / (n - 1) as f64;
        // Finite-population correction: zero when the sample is the
        // whole population — the interval collapses to the point.
        let fpc = ((population - n) as f64 / (population - 1) as f64).sqrt();
        (variance / n as f64).sqrt() * fpc
    } else {
        0.0
    };
    SampledMetric {
        estimate,
        std_error,
        ci_low: (estimate - Z_95 * std_error).max(0.0),
        ci_high: (estimate + Z_95 * std_error).min(1.0),
        sample_size: n,
        population,
    }
}

/// Sampled MAP@`top_n`: scores only the queries in `sample` (ascending
/// indices into `queries`, e.g. from [`sample_indices`]) and generalizes
/// over all of them. With `sample == 0..queries.len()` the estimate equals
/// the exhaustive [`mean_average_precision`](crate::mean_average_precision)
/// bitwise.
///
/// # Panics
///
/// Panics if `sample` is empty or contains an index `≥ queries.len()`.
pub fn sampled_map(
    ranker: &HammingRanker,
    queries: &BitCodes,
    relevant: &(dyn Fn(usize, usize) -> bool + Sync),
    top_n: usize,
    sample: &[usize],
) -> SampledMetric {
    let _span = uhscm_obs::span("sampled_map");
    let values = per_query_values(ranker, queries, sample, |qi| {
        average_precision(ranker, queries, qi, relevant, top_n)
    });
    uhscm_obs::registry::counter_add("eval.sampled.map.queries", values.len() as u64);
    estimate_from_samples(&values, queries.len())
}

/// Sampled P@`n`: precision among each sampled query's top `n` returns
/// (divisor `n` clamped to the database size, matching
/// [`precision_at_n`](crate::precision_at_n)).
///
/// # Panics
///
/// Panics if `sample` is empty, contains an index `≥ queries.len()`, or
/// `n == 0`.
pub fn sampled_precision_at_n(
    ranker: &HammingRanker,
    queries: &BitCodes,
    relevant: &(dyn Fn(usize, usize) -> bool + Sync),
    n: usize,
    sample: &[usize],
) -> SampledMetric {
    let _span = uhscm_obs::span("sampled_pn");
    assert!(n > 0, "P@0 is undefined");
    let n = n.min(ranker.database().len()).max(1);
    let values = per_query_values(ranker, queries, sample, |qi| {
        let ranked = ranker.rank_top_n(queries, qi, n);
        let mut hits = 0usize;
        for &db_idx in &ranked {
            if relevant(qi, db_idx as usize) {
                hits += 1;
            }
        }
        hits as f64 / n as f64
    });
    uhscm_obs::registry::counter_add("eval.sampled.pn.queries", values.len() as u64);
    estimate_from_samples(&values, queries.len())
}

/// Fan the sampled queries out over the deterministic worker pool and
/// return their metric values in `sample` order (ascending query index) —
/// the same fold discipline as the exhaustive metrics.
fn per_query_values(
    ranker: &HammingRanker,
    queries: &BitCodes,
    sample: &[usize],
    value: impl Fn(usize) -> f64 + Sync,
) -> Vec<f64> {
    assert!(!sample.is_empty(), "empty query sample");
    assert!(sample.iter().all(|&qi| qi < queries.len()), "sampled query index out of range");
    let work = sample.len().saturating_mul(ranker.database().len().max(1));
    par::par_map_chunks(sample.len(), work, |range| {
        range.map(|k| value(sample[k])).collect::<Vec<_>>()
    })
    .into_iter()
    .flatten()
    .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mean_average_precision;
    use uhscm_linalg::Matrix;

    fn fixture(n_db: usize, nq: usize, bits: usize) -> (HammingRanker, BitCodes) {
        let rows = |n: usize, salt: usize| -> Vec<Vec<f64>> {
            (0..n)
                .map(|i| {
                    (0..bits)
                        .map(|b| if (i * 29 + b * 11 + salt) % 7 < 3 { 1.0 } else { -1.0 })
                        .collect()
                })
                .collect()
        };
        let db = BitCodes::from_real(&Matrix::from_rows(&rows(n_db, 0)));
        let q = BitCodes::from_real(&Matrix::from_rows(&rows(nq, 5)));
        (HammingRanker::new(db), q)
    }

    #[test]
    fn full_population_sample_is_bitwise_exhaustive() {
        let (ranker, q) = fixture(200, 37, 24);
        let rel = |qi: usize, di: usize| (qi + di) % 3 == 0;
        let exhaustive = mean_average_precision(&ranker, &q, &rel, 25);
        let sample = sample_indices(q.len(), q.len(), 123);
        let est = sampled_map(&ranker, &q, &rel, 25, &sample);
        assert_eq!(est.estimate.to_bits(), exhaustive.to_bits());
        assert_eq!(est.std_error, 0.0);
        assert_eq!(
            (est.ci_low.to_bits(), est.ci_high.to_bits()),
            (exhaustive.to_bits(), exhaustive.to_bits())
        );
        assert!(est.covers(exhaustive));
    }

    #[test]
    fn sample_indices_deterministic_sorted_distinct() {
        let a = sample_indices(1000, 100, 7);
        let b = sample_indices(1000, 100, 7);
        let c = sample_indices(1000, 100, 8);
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(a.len(), 100);
        assert!(a.windows(2).all(|w| w[0] < w[1]), "unsorted or duplicated");
        assert!(a.iter().all(|&i| i < 1000));
        assert_eq!(sample_indices(5, 5, 9), vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn interval_shrinks_with_sample_size() {
        let (ranker, q) = fixture(300, 100, 16);
        let rel = |qi: usize, di: usize| (qi * 13 + di) % 4 == 0;
        let small = sampled_map(&ranker, &q, &rel, 50, &sample_indices(q.len(), 10, 1));
        let large = sampled_map(&ranker, &q, &rel, 50, &sample_indices(q.len(), 80, 1));
        assert!(large.std_error <= small.std_error, "{} vs {}", large.std_error, small.std_error);
        assert!(small.ci_low <= small.estimate && small.estimate <= small.ci_high);
        assert!((0.0..=1.0).contains(&small.ci_low) && (0.0..=1.0).contains(&small.ci_high));
    }

    #[test]
    fn precision_estimates_match_exhaustive_on_full_population() {
        let (ranker, q) = fixture(150, 20, 16);
        let rel = |qi: usize, di: usize| (qi + 2 * di) % 5 == 0;
        let full = sample_indices(q.len(), q.len(), 0);
        let est = sampled_precision_at_n(&ranker, &q, &rel, 10, &full);
        let exhaustive = crate::precision_at_n(&ranker, &q, &rel, &[10]);
        assert!((est.estimate - exhaustive[0]).abs() < 1e-12);
        assert_eq!(est.std_error, 0.0);
    }

    #[test]
    fn estimate_from_samples_hand_computed() {
        // Sample {0.2, 0.4, 0.6} from a population of 30: mean 0.4,
        // s² = 0.04, fpc = √(27/29).
        let est = estimate_from_samples(&[0.2, 0.4, 0.6], 30);
        assert!((est.estimate - 0.4).abs() < 1e-12);
        let fpc = (27.0f64 / 29.0).sqrt();
        let want_se = (0.04f64 / 3.0).sqrt() * fpc;
        assert!((est.std_error - want_se).abs() < 1e-12);
        assert!(est.covers(0.4));
        assert!(!est.covers(0.95));
    }

    #[test]
    #[should_panic(expected = "sample larger than population")]
    fn oversized_sample_rejected() {
        let _ = sample_indices(10, 11, 0);
    }

    #[test]
    #[should_panic(expected = "empty query sample")]
    fn empty_sample_rejected() {
        let (ranker, q) = fixture(10, 2, 8);
        let _ = sampled_map(&ranker, &q, &|_, _| true, 5, &[]);
    }
}
