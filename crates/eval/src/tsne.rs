//! Exact t-SNE [van der Maaten & Hinton 2008] for Figure 5.
//!
//! The paper visualizes 64-bit hash codes of the CIFAR10 database with
//! t-SNE to compare cluster structure across methods. The databases used in
//! this reproduction are small (≤ a few thousand points), so the exact
//! `O(n²)` algorithm suffices — no Barnes–Hut approximation needed.

use uhscm_linalg::{rng, vecops, Matrix};

/// t-SNE hyper-parameters.
#[derive(Debug, Clone)]
pub struct TsneConfig {
    /// Target perplexity of the conditional distributions.
    pub perplexity: f64,
    /// Gradient-descent iterations.
    pub iterations: usize,
    /// Learning rate.
    pub learning_rate: f64,
    /// Early-exaggeration factor applied for the first quarter of training.
    pub exaggeration: f64,
    pub seed: u64,
}

impl Default for TsneConfig {
    fn default() -> Self {
        Self {
            perplexity: 30.0,
            iterations: 400,
            learning_rate: 120.0,
            exaggeration: 12.0,
            seed: 0,
        }
    }
}

/// Embed the rows of `data` into 2-D with exact t-SNE.
///
/// # Panics
/// Panics if `data` has fewer than 3 rows or the perplexity is infeasible
/// (`3 · perplexity ≥ n` is clamped instead of panicking).
pub fn tsne_2d(data: &Matrix, config: &TsneConfig) -> Matrix {
    let n = data.rows();
    assert!(n >= 3, "t-SNE needs at least 3 points");
    let perplexity = config.perplexity.min((n as f64 - 1.0) / 3.0).max(2.0);

    // Pairwise squared distances in the input space.
    let mut d2 = vec![0.0; n * n];
    for i in 0..n {
        for j in (i + 1)..n {
            let d = vecops::sq_dist(data.row(i), data.row(j));
            d2[i * n + j] = d;
            d2[j * n + i] = d;
        }
    }

    // Symmetrized affinities with per-point bandwidth from binary search.
    let mut p = vec![0.0; n * n];
    for i in 0..n {
        let row = &d2[i * n..(i + 1) * n];
        let cond = conditional_probabilities(row, i, perplexity);
        for (j, &pj) in cond.iter().enumerate() {
            p[i * n + j] += pj;
            p[j * n + i] += pj;
        }
    }
    let psum: f64 = p.iter().sum();
    for v in &mut p {
        *v = (*v / psum).max(1e-12);
    }

    // Gradient descent on the 2-D embedding.
    let mut r = rng::seeded(config.seed ^ 0x7e5e_a1b2);
    let mut y: Vec<[f64; 2]> =
        (0..n).map(|_| [1e-2 * rng::gauss(&mut r), 1e-2 * rng::gauss(&mut r)]).collect();
    let mut vel = vec![[0.0f64; 2]; n];
    let exaggeration_end = config.iterations / 4;
    let mut q = vec![0.0; n * n];
    let mut grad = vec![[0.0f64; 2]; n];

    for iter in 0..config.iterations {
        let exag = if iter < exaggeration_end { config.exaggeration } else { 1.0 };
        let momentum = if iter < config.iterations / 2 { 0.5 } else { 0.8 };

        // Student-t affinities in the embedding.
        let mut qsum = 0.0;
        for i in 0..n {
            for j in (i + 1)..n {
                let dx = y[i][0] - y[j][0];
                let dy = y[i][1] - y[j][1];
                let w = 1.0 / (1.0 + dx * dx + dy * dy);
                q[i * n + j] = w;
                q[j * n + i] = w;
                qsum += 2.0 * w;
            }
        }

        grad.fill([0.0, 0.0]);
        for i in 0..n {
            for j in 0..n {
                if i == j {
                    continue;
                }
                let w = q[i * n + j];
                let qij = (w / qsum).max(1e-12);
                let coef = 4.0 * (exag * p[i * n + j] - qij) * w;
                grad[i][0] += coef * (y[i][0] - y[j][0]);
                grad[i][1] += coef * (y[i][1] - y[j][1]);
            }
        }
        for i in 0..n {
            for c in 0..2 {
                vel[i][c] = momentum * vel[i][c] - config.learning_rate * grad[i][c];
                y[i][c] += vel[i][c];
            }
        }
        // Keep the embedding centered.
        let mx = y.iter().map(|p| p[0]).sum::<f64>() / n as f64;
        let my = y.iter().map(|p| p[1]).sum::<f64>() / n as f64;
        for pt in &mut y {
            pt[0] -= mx;
            pt[1] -= my;
        }
    }

    let mut out = Matrix::zeros(n, 2);
    for (i, pt) in y.iter().enumerate() {
        out[(i, 0)] = pt[0];
        out[(i, 1)] = pt[1];
    }
    out
}

/// Binary-search the Gaussian bandwidth for point `i` so the conditional
/// distribution over `j ≠ i` reaches the target perplexity; returns the
/// conditional probabilities (entry `i` is zero).
fn conditional_probabilities(d2_row: &[f64], i: usize, perplexity: f64) -> Vec<f64> {
    let target_entropy = perplexity.ln();
    let mut beta = 1.0; // 1 / (2σ²)
    let (mut beta_min, mut beta_max) = (0.0f64, f64::INFINITY);
    let n = d2_row.len();
    let mut probs = vec![0.0; n];
    for _ in 0..64 {
        let mut sum = 0.0;
        for (j, &d) in d2_row.iter().enumerate() {
            probs[j] = if j == i { 0.0 } else { (-beta * d).exp() };
            sum += probs[j];
        }
        if sum <= 0.0 {
            // All mass collapsed; soften.
            beta /= 2.0;
            continue;
        }
        let mut entropy = 0.0;
        for pj in probs.iter_mut() {
            *pj /= sum;
            if *pj > 1e-12 {
                entropy -= *pj * pj.ln();
            }
        }
        let diff = entropy - target_entropy;
        if diff.abs() < 1e-5 {
            break;
        }
        if diff > 0.0 {
            beta_min = beta;
            beta = if beta_max.is_finite() { (beta + beta_max) / 2.0 } else { beta * 2.0 };
        } else {
            beta_max = beta;
            beta = (beta + beta_min) / 2.0;
        }
    }
    probs
}

/// Cluster-separation score for an embedding: mean pairwise distance between
/// points of *different* classes divided by mean distance within the *same*
/// class (higher = clearer structure, quantifying Figure 5's visual claim).
pub fn cluster_separation(embedding: &Matrix, same_class: &dyn Fn(usize, usize) -> bool) -> f64 {
    let n = embedding.rows();
    let mut intra = (0.0, 0usize);
    let mut inter = (0.0, 0usize);
    for i in 0..n {
        for j in (i + 1)..n {
            let d = vecops::sq_dist(embedding.row(i), embedding.row(j)).sqrt();
            if same_class(i, j) {
                intra.0 += d;
                intra.1 += 1;
            } else {
                inter.0 += d;
                inter.1 += 1;
            }
        }
    }
    if intra.1 == 0 || inter.1 == 0 || intra.0 <= 0.0 {
        return 1.0;
    }
    (inter.0 / inter.1 as f64) / (intra.0 / intra.1 as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Two tight, well-separated input clusters.
    fn two_clusters(per: usize) -> (Matrix, Vec<usize>) {
        let mut r = rng::seeded(1);
        let mut rows = Vec::new();
        let mut labels = Vec::new();
        for c in 0..2 {
            for _ in 0..per {
                let center = if c == 0 { -5.0 } else { 5.0 };
                rows.push(vec![
                    center + 0.1 * rng::gauss(&mut r),
                    center + 0.1 * rng::gauss(&mut r),
                    0.1 * rng::gauss(&mut r),
                ]);
                labels.push(c);
            }
        }
        (Matrix::from_rows(&rows), labels)
    }

    #[test]
    fn separates_clusters() {
        let (data, labels) = two_clusters(25);
        let cfg = TsneConfig { iterations: 250, seed: 3, ..TsneConfig::default() };
        let emb = tsne_2d(&data, &cfg);
        let sep = cluster_separation(&emb, &|i, j| labels[i] == labels[j]);
        assert!(sep > 2.0, "separation {sep}");
    }

    #[test]
    fn output_shape_and_finiteness() {
        let (data, _) = two_clusters(10);
        let emb = tsne_2d(&data, &TsneConfig { iterations: 50, ..TsneConfig::default() });
        assert_eq!(emb.shape(), (20, 2));
        assert!(emb.as_slice().iter().all(|v| v.is_finite()));
    }

    #[test]
    fn deterministic_under_seed() {
        let (data, _) = two_clusters(8);
        let cfg = TsneConfig { iterations: 60, seed: 9, ..TsneConfig::default() };
        let a = tsne_2d(&data, &cfg);
        let b = tsne_2d(&data, &cfg);
        assert_eq!(a.as_slice(), b.as_slice());
    }

    #[test]
    fn separation_score_on_mixed_embedding_near_one() {
        // Random labels on a random embedding → inter ≈ intra.
        let mut r = rng::seeded(5);
        let emb = rng::gauss_matrix(&mut r, 100, 2, 1.0);
        let sep = cluster_separation(&emb, &|i, j| (i + j) % 2 == 0);
        assert!((0.7..1.3).contains(&sep), "sep {sep}");
    }

    #[test]
    #[should_panic(expected = "at least 3 points")]
    fn too_few_points_panics() {
        let data = Matrix::from_rows(&[vec![0.0], vec![1.0]]);
        let _ = tsne_2d(&data, &TsneConfig::default());
    }
}
