//! A bucketed Hamming-space index for hash-lookup retrieval.
//!
//! The paper's hash-lookup protocol (§4.2) retrieves "the returned points
//! given any Hamming radius". A linear scan does that in `O(n)` per query;
//! this index does better for small radii the way production systems do:
//! codes are bucketed by a `prefix_bits`-bit substring, and a query probes
//! every bucket whose prefix lies within the radius (multi-index probing).
//! For radius `r < prefix_bits` this visits only `Σ_{i≤r} C(prefix_bits, i)`
//! buckets instead of all `n` codes.

use crate::bitcode::hamming_scan;
use crate::BitCodes;
use std::collections::{BTreeMap, BTreeSet};

/// A multi-probe Hamming index over a set of binary codes.
///
/// Supports incremental growth ([`Self::insert`]) and logical deletion
/// ([`Self::remove`]): a production database adds new images continuously
/// and retires stale ones without rebuilding the index.
///
/// ```
/// use uhscm_eval::{BitCodes, HashIndex};
/// use uhscm_linalg::Matrix;
///
/// let db = BitCodes::from_real(&Matrix::from_rows(&[
///     vec![1.0, 1.0, 1.0, 1.0],
///     vec![-1.0, 1.0, 1.0, 1.0],
///     vec![-1.0, -1.0, -1.0, -1.0],
/// ]));
/// let index = HashIndex::build(db, 2);
/// let query = BitCodes::from_real(&Matrix::from_rows(&[vec![1.0, 1.0, 1.0, 1.0]]));
/// // Items within Hamming radius 1 of the query, as (index, distance):
/// assert_eq!(index.lookup(&query, 0, 1), vec![(0, 0), (1, 1)]);
/// ```
#[derive(Debug, Clone)]
pub struct HashIndex {
    codes: BitCodes,
    prefix_bits: usize,
    /// Bucket id (code prefix) → item indices. Ordered so bucket-stats
    /// telemetry and any future whole-index walk iterate deterministically.
    buckets: BTreeMap<u64, Vec<u32>>,
    /// Logically deleted items (skipped by lookups).
    tombstones: BTreeSet<u32>,
}

impl HashIndex {
    /// Build an index with a prefix of `prefix_bits` bits (≤ 24 keeps probe
    /// fan-out reasonable; clamped to the code length and to 24).
    ///
    /// # Panics
    /// Panics on an empty code set or zero-width codes.
    pub fn build(codes: BitCodes, prefix_bits: usize) -> Self {
        assert!(!codes.is_empty(), "cannot index zero codes");
        assert!(codes.bits() > 0, "cannot index zero-width codes");
        let prefix_bits = prefix_bits.clamp(1, codes.bits().min(24));
        let mut buckets: BTreeMap<u64, Vec<u32>> = BTreeMap::new();
        for i in 0..codes.len() {
            let key = prefix_of(&codes, i, prefix_bits);
            buckets.entry(key).or_default().push(i as u32);
        }
        let index = Self { codes, prefix_bits, buckets, tombstones: BTreeSet::new() };
        index.record_bucket_stats();
        index
    }

    /// Live (non-tombstoned) items in one bucket.
    fn live_in_bucket(&self, items: &[u32]) -> usize {
        items.iter().filter(|i| !self.tombstones.contains(i)).count()
    }

    /// Publish bucket-occupancy telemetry (no-op when tracing is off).
    /// Occupancy counts *live* items only — a bucket whose members are all
    /// tombstoned contributes occupancy 0 and does not count as a bucket,
    /// matching what a lookup probing it would actually find.
    ///
    /// Called from [`Self::build`] only: `insert`/`remove` share names with
    /// map/set mutators, so routing telemetry through them would thread the
    /// obs registry lock through the lint's name-resolved call graph.
    fn record_bucket_stats(&self) {
        if uhscm_obs::enabled() {
            uhscm_obs::registry::gauge_set("index.buckets", self.bucket_count() as f64);
            uhscm_obs::registry::gauge_set("index.prefix_bits", self.prefix_bits as f64);
            for items in self.buckets.values() {
                let live = self.live_in_bucket(items);
                if live > 0 {
                    uhscm_obs::registry::histogram_record("index.bucket_occupancy", live as f64);
                }
            }
        }
    }

    /// Append new codes to the index, returning the index of the first
    /// inserted item. `O(added)`, no rebuild.
    ///
    /// # Panics
    /// Panics if the new codes' bit width differs from the indexed codes'.
    pub fn insert(&mut self, added: &BitCodes) -> usize {
        assert_eq!(added.bits(), self.codes.bits(), "code length mismatch");
        let first = self.codes.len();
        self.codes.extend(added);
        for offset in 0..added.len() {
            let i = first + offset;
            let key = prefix_of(&self.codes, i, self.prefix_bits);
            self.buckets.entry(key).or_default().push(i as u32);
        }
        first
    }

    /// Logically delete item `i`: it no longer appears in lookups, `len`,
    /// or bucket-occupancy stats. Returns whether the item was present (not
    /// already removed).
    ///
    /// # Panics
    /// Panics if `i` is out of range.
    pub fn remove(&mut self, i: usize) -> bool {
        assert!(i < self.codes.len(), "item {i} out of range");
        self.tombstones.insert(i as u32)
    }

    /// Number of live (non-deleted) items.
    pub fn live_len(&self) -> usize {
        self.codes.len() - self.tombstones.len()
    }

    /// Reasonable default prefix: 16 bits (or fewer for short codes).
    pub fn with_default_prefix(codes: BitCodes) -> Self {
        let p = codes.bits().min(16);
        Self::build(codes, p)
    }

    /// Number of live (non-removed) codes — an alias of [`Self::live_len`],
    /// so `len` and lookup results always agree. Use [`Self::total_len`]
    /// for the physical code count including tombstones.
    pub fn len(&self) -> usize {
        self.live_len()
    }

    /// Number of codes ever inserted, including tombstoned ones. Item
    /// indices range over `0..total_len()`.
    pub fn total_len(&self) -> usize {
        self.codes.len()
    }

    /// Whether no live items remain (construction requires codes, but every
    /// item can be removed afterwards).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Width of the bucketing prefix actually used.
    pub fn prefix_bits(&self) -> usize {
        self.prefix_bits
    }

    /// Number of buckets holding at least one *live* item — the buckets a
    /// lookup can actually hit something in.
    pub fn bucket_count(&self) -> usize {
        self.buckets.values().filter(|items| self.live_in_bucket(items) > 0).count()
    }

    /// The indexed codes.
    pub fn codes(&self) -> &BitCodes {
        &self.codes
    }

    /// All items within Hamming distance `radius` of query `qi`, with their
    /// exact distances, sorted by (distance, index).
    ///
    /// Exact: multi-probes every bucket whose prefix is within `radius` of
    /// the query's prefix (a necessary condition for a full-code match), then
    /// verifies the full distance. Falls back to a linear scan when the
    /// probe fan-out would exceed the collection size.
    ///
    /// # Panics
    ///
    /// Panics if the query code length differs from the indexed codes.
    pub fn lookup(&self, queries: &BitCodes, qi: usize, radius: u32) -> Vec<(u32, u32)> {
        assert_eq!(queries.bits(), self.codes.bits(), "code length mismatch");
        let mut out = Vec::new();
        // Probe statistics; folded into the registry once per call, so the
        // hot loops only bump locals.
        let mut probed_buckets = 0u64;
        let mut scanned_codes = 0u64;
        let mut linear = false;
        let fanout = probe_fanout(self.prefix_bits, radius.min(self.prefix_bits as u32));
        if fanout >= self.codes.len() as u128 {
            // Probing would touch more buckets than there are points.
            linear = true;
            scanned_codes = self.codes.len() as u64;
            // Blocked batched scan: the width-specialized kernel fills a
            // stack buffer of distances, the filter loop stays branch-light.
            let mut block = [0u32; hamming_scan::SCAN_BLOCK];
            let mut start = 0;
            while start < self.codes.len() {
                let end = (start + hamming_scan::SCAN_BLOCK).min(self.codes.len());
                let dists = &mut block[..end - start];
                hamming_scan::scan_range_into(queries, qi, &self.codes, start..end, dists);
                for (off, &d) in dists.iter().enumerate() {
                    let j = (start + off) as u32;
                    if d <= radius && !self.tombstones.contains(&j) {
                        out.push((j, d));
                    }
                }
                start = end;
            }
        } else {
            let qprefix = prefix_of(queries, qi, self.prefix_bits);
            let mut probe = |key: u64, out: &mut Vec<(u32, u32)>| {
                probed_buckets += 1;
                if let Some(items) = self.buckets.get(&key) {
                    scanned_codes += items.len() as u64;
                    // Scattered twin of the linear scan: the query words and
                    // width dispatch are hoisted once per bucket.
                    hamming_scan::gather_each(queries, qi, &self.codes, items, |j, d| {
                        if d <= radius && !self.tombstones.contains(&j) {
                            out.push((j, d));
                        }
                    });
                }
            };
            // Enumerate prefixes at distance 0..=min(radius, prefix_bits).
            let max_flip = radius.min(self.prefix_bits as u32) as usize;
            let mut flips: Vec<usize> = Vec::with_capacity(max_flip);
            enumerate_probes(
                qprefix,
                self.prefix_bits,
                max_flip,
                0,
                &mut flips,
                &mut probe,
                &mut out,
            );
        }
        if uhscm_obs::enabled() {
            uhscm_obs::registry::counter_add("index.lookup.calls", 1);
            uhscm_obs::registry::counter_add("index.lookup.probed_buckets", probed_buckets);
            uhscm_obs::registry::counter_add("index.lookup.scanned_codes", scanned_codes);
            if linear {
                uhscm_obs::registry::counter_add("index.lookup.linear_fallbacks", 1);
            }
        }
        out.sort_unstable_by_key(|&(j, d)| (d, j));
        out
    }

    /// Top-`k` nearest items to query `qi` by expanding-ring lookup:
    /// increases the radius until at least `k` items are found (or the ring
    /// covers the whole space), then truncates.
    pub fn knn(&self, queries: &BitCodes, qi: usize, k: usize) -> Vec<(u32, u32)> {
        let bits = self.codes.bits() as u32;
        let k = k.min(self.live_len());
        let mut radius = 0;
        loop {
            let hits = self.lookup(queries, qi, radius);
            if hits.len() >= k || radius >= bits {
                let mut hits = hits;
                hits.truncate(k);
                return hits;
            }
            // Exponential-ish ring growth amortizes re-probing.
            radius = (radius * 2 + 1).min(bits);
        }
    }
}

/// First `prefix_bits` bits of code `i` as a bucket key. Zero-width codes
/// cannot be constructed (`build` asserts), so the missing-word arm is
/// unreachable in practice; mapping it to key 0 keeps this total.
fn prefix_of(codes: &BitCodes, i: usize, prefix_bits: usize) -> u64 {
    let word = codes.code(i).first().copied().unwrap_or(0);
    if prefix_bits >= 64 {
        word
    } else {
        word & ((1u64 << prefix_bits) - 1)
    }
}

/// Number of buckets probed for a radius (`Σ_{i≤r} C(p, i)`).
fn probe_fanout(prefix_bits: usize, radius: u32) -> u128 {
    let mut total: u128 = 0;
    let mut binom: u128 = 1;
    for i in 0..=radius as usize {
        if i > 0 {
            binom = binom * (prefix_bits + 1 - i) as u128 / i as u128;
        }
        total = total.saturating_add(binom);
    }
    total
}

/// Recursively enumerate all prefixes within `max_flip` flips of `base`,
/// invoking `probe` on each.
fn enumerate_probes(
    base: u64,
    prefix_bits: usize,
    max_flip: usize,
    start: usize,
    flips: &mut Vec<usize>,
    probe: &mut impl FnMut(u64, &mut Vec<(u32, u32)>),
    out: &mut Vec<(u32, u32)>,
) {
    let mut key = base;
    for &f in flips.iter() {
        key ^= 1u64 << f;
    }
    probe(key, out);
    if flips.len() == max_flip {
        return;
    }
    for bit in start..prefix_bits {
        flips.push(bit);
        enumerate_probes(base, prefix_bits, max_flip, bit + 1, flips, probe, out);
        flips.pop();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uhscm_linalg::{rng, Matrix};

    fn random_codes(n: usize, bits: usize, seed: u64) -> BitCodes {
        let mut r = rng::seeded(seed);
        BitCodes::from_real(&rng::gauss_matrix(&mut r, n, bits, 1.0))
    }

    /// Brute-force reference lookup.
    fn linear_lookup(q: &BitCodes, qi: usize, db: &BitCodes, radius: u32) -> Vec<(u32, u32)> {
        let mut out: Vec<(u32, u32)> = (0..db.len())
            .filter_map(|j| {
                let d = q.hamming(qi, db, j);
                (d <= radius).then_some((j as u32, d))
            })
            .collect();
        out.sort_unstable_by_key(|&(j, d)| (d, j));
        out
    }

    #[test]
    fn lookup_matches_linear_scan() {
        let db = random_codes(300, 32, 1);
        let q = random_codes(5, 32, 2);
        let index = HashIndex::build(db.clone(), 12);
        for qi in 0..q.len() {
            for radius in [0u32, 2, 5, 9, 16, 32] {
                let expected = linear_lookup(&q, qi, &db, radius);
                let got = index.lookup(&q, qi, radius);
                assert_eq!(got, expected, "qi={qi} radius={radius}");
            }
        }
    }

    #[test]
    fn knn_returns_nearest() {
        let db = random_codes(200, 24, 3);
        let q = random_codes(3, 24, 4);
        let index = HashIndex::build(db.clone(), 10);
        for qi in 0..q.len() {
            let hits = index.knn(&q, qi, 7);
            assert_eq!(hits.len(), 7);
            // Compare against the 7 smallest brute-force distances.
            let mut all: Vec<u32> = (0..db.len()).map(|j| q.hamming(qi, &db, j)).collect();
            all.sort_unstable();
            let dists: Vec<u32> = hits.iter().map(|&(_, d)| d).collect();
            assert_eq!(dists, all[..7].to_vec());
        }
    }

    #[test]
    fn exact_duplicate_found_at_radius_zero() {
        let m = Matrix::from_rows(&[vec![1.0, -1.0, 1.0, 1.0], vec![-1.0, -1.0, 1.0, -1.0]]);
        let db = BitCodes::from_real(&m);
        let index = HashIndex::build(db, 3);
        let q = BitCodes::from_real(&Matrix::from_rows(&[vec![1.0, -1.0, 1.0, 1.0]]));
        let hits = index.lookup(&q, 0, 0);
        assert_eq!(hits, vec![(0, 0)]);
    }

    #[test]
    fn prefix_clamped_to_code_length() {
        let db = random_codes(50, 8, 5);
        let index = HashIndex::build(db, 64);
        assert_eq!(index.prefix_bits(), 8);
        assert!(index.bucket_count() <= 256);
    }

    #[test]
    fn buckets_partition_items() {
        let db = random_codes(500, 32, 6);
        let index = HashIndex::build(db, 10);
        let total: usize = index.buckets.values().map(Vec::len).sum();
        assert_eq!(total, 500);
        assert_eq!(index.len(), 500);
    }

    #[test]
    fn full_radius_returns_everything() {
        let db = random_codes(100, 16, 7);
        let q = random_codes(1, 16, 8);
        let index = HashIndex::build(db, 8);
        let hits = index.lookup(&q, 0, 16);
        assert_eq!(hits.len(), 100);
    }

    #[test]
    #[should_panic(expected = "code length mismatch")]
    fn mismatched_query_width_panics() {
        let db = random_codes(10, 16, 9);
        let q = random_codes(1, 32, 10);
        let index = HashIndex::build(db, 8);
        let _ = index.lookup(&q, 0, 1);
    }

    #[test]
    fn insert_extends_lookups() {
        let db = random_codes(50, 16, 11);
        let mut index = HashIndex::build(db.clone(), 8);
        let extra = random_codes(20, 16, 12);
        let first = index.insert(&extra);
        assert_eq!(first, 50);
        assert_eq!(index.len(), 70);
        // Every inserted item is findable at radius = bits.
        let q = random_codes(1, 16, 13);
        let hits = index.lookup(&q, 0, 16);
        assert_eq!(hits.len(), 70);
        // Lookup still matches a brute-force scan over the extended set.
        let mut all = db.clone();
        all.extend(&extra);
        assert_eq!(index.lookup(&q, 0, 5), linear_lookup(&q, 0, &all, 5));
    }

    #[test]
    fn removed_items_disappear_from_lookups_and_knn() {
        let db = random_codes(30, 16, 14);
        let mut index = HashIndex::build(db, 8);
        let q = random_codes(1, 16, 15);
        let nearest = index.knn(&q, 0, 1)[0].0 as usize;
        assert!(index.remove(nearest));
        assert!(!index.remove(nearest), "double-remove should report absent");
        assert_eq!(index.live_len(), 29);
        let hits = index.lookup(&q, 0, 16);
        assert_eq!(hits.len(), 29);
        assert!(hits.iter().all(|&(j, _)| j as usize != nearest));
        let new_nearest = index.knn(&q, 0, 1)[0].0 as usize;
        assert_ne!(new_nearest, nearest);
    }

    #[test]
    fn len_and_bucket_stats_exclude_removed_items_across_reinsert() {
        // Hand-built 4-bit codes bucketed on a 2-bit prefix:
        //   a = 1000 → prefix 0b01,  b = 1010 → prefix 0b01,  c = 0100 → prefix 0b10
        let a = vec![true, false, false, false];
        let b = vec![true, false, true, false];
        let c = vec![false, true, false, false];
        let mut index = HashIndex::build(BitCodes::from_bools(&[a, b, c.clone()]), 2);
        assert_eq!((index.len(), index.total_len(), index.bucket_count()), (3, 3, 2));

        // Removing c empties its bucket: len drops, the bucket no longer
        // counts, but the physical slot (and its index) remains.
        assert!(index.remove(2));
        assert_eq!((index.len(), index.total_len(), index.bucket_count()), (2, 3, 1));
        assert!(!index.is_empty());

        // Re-inserting into the emptied bucket revives the bucket without
        // resurrecting the tombstoned item.
        let d = vec![false, true, true, false]; // 0110 → prefix 0b10, like c
        let first = index.insert(&BitCodes::from_bools(&[d]));
        assert_eq!(first, 3, "insert offsets are total-length based");
        assert_eq!((index.len(), index.total_len(), index.bucket_count()), (3, 4, 2));

        // The tombstone stays dead through the reuse: a full-radius lookup
        // sees a, b, and d but never c.
        let q = BitCodes::from_bools(&[c]);
        let got: Vec<u32> = index.lookup(&q, 0, 4).iter().map(|&(j, _)| j).collect();
        let mut sorted = got.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, vec![0, 1, 3]);

        // Removing everything: len 0, no live buckets, is_empty.
        for i in [0usize, 1, 3] {
            assert!(index.remove(i));
        }
        assert_eq!((index.len(), index.bucket_count()), (0, 0));
        assert!(index.is_empty());
        assert_eq!(index.total_len(), 4);
    }

    #[test]
    fn knn_clamps_to_live_items() {
        let db = random_codes(5, 8, 16);
        let mut index = HashIndex::build(db, 4);
        index.remove(0);
        index.remove(1);
        let q = random_codes(1, 8, 17);
        assert_eq!(index.knn(&q, 0, 10).len(), 3);
    }

    #[test]
    fn probe_fanout_binomial_sums() {
        assert_eq!(probe_fanout(10, 0), 1);
        assert_eq!(probe_fanout(10, 1), 11);
        assert_eq!(probe_fanout(10, 2), 56);
        assert_eq!(probe_fanout(4, 4), 16);
    }
}
