//! Bit-packed binary hash codes.
//!
//! The paper's codes live in `{-1, +1}^k`; retrieval only ever consumes them
//! through Hamming distance, `H_d(b_i, b_j) = (k − b_i^T b_j) / 2`, which for
//! packed bits is exactly the popcount of the XOR. Packing 64 bits per word
//! makes Hamming ranking over the whole database a handful of XOR/popcount
//! instructions per pair.

use std::io::{self, Read, Write};
use uhscm_linalg::Matrix;

const MAGIC: &[u8; 4] = b"UHBC";
const FORMAT_VERSION: u32 = 1;

/// A set of `n` binary codes of `bits` bits each, packed 64 per word.
///
/// Bit convention: bit set ⇔ the real-valued code entry is `> 0` ⇔ `+1`
/// (`sgn` in the paper returns −1 at zero, matching "returns 1 if the input
/// is positive and −1 otherwise").
///
/// ```
/// use uhscm_eval::BitCodes;
/// use uhscm_linalg::Matrix;
///
/// let relaxed = Matrix::from_rows(&[vec![0.9, -0.2, 0.4], vec![-0.3, -0.8, 0.4]]);
/// let codes = BitCodes::from_real(&relaxed);
/// assert_eq!(codes.bits(), 3);
/// assert_eq!(codes.hamming(0, &codes, 1), 1); // only bit 0 differs
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BitCodes {
    n: usize,
    bits: usize,
    words_per_code: usize,
    data: Vec<u64>,
}

impl BitCodes {
    /// Quantize the rows of a real-valued code matrix with `sgn`.
    pub fn from_real(codes: &Matrix) -> Self {
        let n = codes.rows();
        let bits = codes.cols();
        let words_per_code = bits.div_ceil(64);
        let mut data = vec![0u64; n * words_per_code];
        for i in 0..n {
            let row = codes.row(i);
            let words = &mut data[i * words_per_code..(i + 1) * words_per_code];
            for (b, &v) in row.iter().enumerate() {
                if v > 0.0 {
                    words[b / 64] |= 1u64 << (b % 64);
                }
            }
        }
        Self { n, bits, words_per_code, data }
    }

    /// Build from explicit ±1 sign rows (`true` ⇔ +1).
    ///
    /// # Panics
    ///
    /// Panics if the rows have differing lengths.
    pub fn from_bools(rows: &[Vec<bool>]) -> Self {
        let n = rows.len();
        let bits = rows.first().map_or(0, Vec::len);
        let words_per_code = bits.div_ceil(64);
        let mut data = vec![0u64; n * words_per_code];
        for (i, row) in rows.iter().enumerate() {
            assert_eq!(row.len(), bits, "ragged code rows");
            let words = &mut data[i * words_per_code..(i + 1) * words_per_code];
            for (b, &set) in row.iter().enumerate() {
                if set {
                    words[b / 64] |= 1u64 << (b % 64);
                }
            }
        }
        Self { n, bits, words_per_code, data }
    }

    /// Number of codes.
    pub fn len(&self) -> usize {
        self.n
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Code length in bits (`k`).
    pub fn bits(&self) -> usize {
        self.bits
    }

    /// The packed words of code `i`.
    #[inline]
    pub fn code(&self, i: usize) -> &[u64] {
        &self.data[i * self.words_per_code..(i + 1) * self.words_per_code]
    }

    /// Hamming distance between code `i` of `self` and code `j` of `other`.
    ///
    /// # Panics
    /// Panics (debug) if the two sets have different code lengths.
    #[inline]
    pub fn hamming(&self, i: usize, other: &BitCodes, j: usize) -> u32 {
        debug_assert_eq!(self.bits, other.bits, "code length mismatch");
        self.code(i).iter().zip(other.code(j)).map(|(a, b)| (a ^ b).count_ones()).sum()
    }

    /// Unpack code `i` back to ±1 reals.
    pub fn unpack(&self, i: usize) -> Vec<f64> {
        let words = self.code(i);
        (0..self.bits)
            .map(|b| if words[b / 64] >> (b % 64) & 1 == 1 { 1.0 } else { -1.0 })
            .collect()
    }

    /// Serialize the packed codes (magic `UHBC`, version, dims, raw words —
    /// all little-endian). A trained system persists its database codes once
    /// and serves lookups from the reloaded set.
    pub fn save(&self, w: &mut impl Write) -> io::Result<()> {
        w.write_all(MAGIC)?;
        w.write_all(&FORMAT_VERSION.to_le_bytes())?;
        w.write_all(&(self.n as u64).to_le_bytes())?;
        w.write_all(&(self.bits as u64).to_le_bytes())?;
        for &word in &self.data {
            w.write_all(&word.to_le_bytes())?;
        }
        Ok(())
    }

    /// Deserialize codes written by [`Self::save`].
    ///
    /// Returns `InvalidData` errors for wrong magic/version or impossible
    /// dimensions, and `UnexpectedEof` for truncation.
    pub fn load(r: &mut impl Read) -> io::Result<BitCodes> {
        let bad = |msg: &str| io::Error::new(io::ErrorKind::InvalidData, msg.to_string());
        let mut magic = [0u8; 4];
        r.read_exact(&mut magic)?;
        if &magic != MAGIC {
            return Err(bad("not a UHSCM bitcode file"));
        }
        let mut buf4 = [0u8; 4];
        r.read_exact(&mut buf4)?;
        let version = u32::from_le_bytes(buf4);
        if version != FORMAT_VERSION {
            return Err(bad("unsupported bitcode format version"));
        }
        let mut buf8 = [0u8; 8];
        r.read_exact(&mut buf8)?;
        let n = u64::from_le_bytes(buf8) as usize;
        r.read_exact(&mut buf8)?;
        let bits = u64::from_le_bytes(buf8) as usize;
        if bits == 0 || bits > 1 << 20 || n > 1 << 32 {
            return Err(bad("bitcode dimensions out of range"));
        }
        let words_per_code = bits.div_ceil(64);
        let mut data = vec![0u64; n * words_per_code];
        for word in &mut data {
            r.read_exact(&mut buf8)?;
            *word = u64::from_le_bytes(buf8);
        }
        Ok(BitCodes { n, bits, words_per_code, data })
    }

    /// Append all codes from `other` (same bit width).
    ///
    /// # Panics
    /// Panics on bit-width mismatch.
    pub fn extend(&mut self, other: &BitCodes) {
        assert_eq!(self.bits, other.bits, "code length mismatch");
        self.data.extend_from_slice(&other.data);
        self.n += other.n;
    }

    /// Copy of the codes in `range` as their own set (same bit width).
    /// Shard builders cut a database into contiguous slices with this; the
    /// slice's local index `i` corresponds to global index `range.start + i`.
    ///
    /// # Panics
    /// Panics if `range` is out of bounds or decreasing.
    pub fn slice(&self, range: std::ops::Range<usize>) -> BitCodes {
        assert!(range.start <= range.end && range.end <= self.n, "slice out of bounds");
        BitCodes {
            n: range.len(),
            bits: self.bits,
            words_per_code: self.words_per_code,
            data: self.data[range.start * self.words_per_code..range.end * self.words_per_code]
                .to_vec(),
        }
    }

    /// Unpack every code into an `n × bits` ±1 matrix.
    pub fn unpack_all(&self) -> Matrix {
        let mut m = Matrix::zeros(self.n, self.bits);
        for i in 0..self.n {
            m.row_mut(i).copy_from_slice(&self.unpack(i));
        }
        m
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sign_convention_positive_only() {
        // 0.0 must quantize to −1 (paper: "returns -1 otherwise").
        let m = Matrix::from_rows(&[vec![0.5, -0.5, 0.0]]);
        let codes = BitCodes::from_real(&m);
        assert_eq!(codes.unpack(0), vec![1.0, -1.0, -1.0]);
    }

    #[test]
    fn hamming_hand_computed() {
        let a = BitCodes::from_bools(&[vec![true, true, false, false]]);
        let b = BitCodes::from_bools(&[vec![true, false, true, false]]);
        assert_eq!(a.hamming(0, &b, 0), 2);
        assert_eq!(a.hamming(0, &a, 0), 0);
    }

    #[test]
    fn hamming_matches_inner_product_identity() {
        // H_d = (k − bᵀb') / 2 for ±1 codes.
        let m =
            Matrix::from_rows(&[vec![1.0, -1.0, 1.0, 1.0, -1.0], vec![-1.0, -1.0, 1.0, -1.0, 1.0]]);
        let codes = BitCodes::from_real(&m);
        let dot: f64 = m.row(0).iter().zip(m.row(1)).map(|(a, b)| a * b).sum();
        let expected = (5.0 - dot) / 2.0;
        assert_eq!(codes.hamming(0, &codes, 1) as f64, expected);
    }

    #[test]
    fn multiword_codes() {
        // 130 bits spans three words.
        let row: Vec<bool> = (0..130).map(|i| i % 3 == 0).collect();
        let other: Vec<bool> = (0..130).map(|i| i % 3 == 1).collect();
        let a = BitCodes::from_bools(&[row.clone()]);
        let b = BitCodes::from_bools(&[other.clone()]);
        let expected = row.iter().zip(&other).filter(|(x, y)| x != y).count() as u32;
        assert_eq!(a.hamming(0, &b, 0), expected);
        assert_eq!(a.bits(), 130);
    }

    #[test]
    fn save_load_round_trip() {
        let m = Matrix::from_rows(&[vec![0.5; 130], vec![-0.5; 130]]);
        let codes = BitCodes::from_real(&m);
        let mut buf = Vec::new();
        codes.save(&mut buf).unwrap();
        let loaded = BitCodes::load(&mut buf.as_slice()).unwrap();
        assert_eq!(codes, loaded);
    }

    #[test]
    fn load_rejects_garbage() {
        let garbage = b"definitely not a bitcode file at all";
        assert!(BitCodes::load(&mut garbage.as_ref()).is_err());
    }

    #[test]
    fn load_rejects_truncation() {
        let m = Matrix::from_rows(&[vec![1.0; 64]]);
        let codes = BitCodes::from_real(&m);
        let mut buf = Vec::new();
        codes.save(&mut buf).unwrap();
        buf.truncate(buf.len() - 4);
        assert!(BitCodes::load(&mut buf.as_slice()).is_err());
    }

    #[test]
    fn extend_appends_codes() {
        let mut a = BitCodes::from_real(&Matrix::from_rows(&[vec![1.0, -1.0, 1.0]]));
        let b =
            BitCodes::from_real(&Matrix::from_rows(&[vec![-1.0, -1.0, 1.0], vec![1.0, 1.0, 1.0]]));
        a.extend(&b);
        assert_eq!(a.len(), 3);
        assert_eq!(a.unpack(1), vec![-1.0, -1.0, 1.0]);
        assert_eq!(a.unpack(2), vec![1.0, 1.0, 1.0]);
    }

    #[test]
    #[should_panic(expected = "code length mismatch")]
    fn extend_rejects_width_mismatch() {
        let mut a = BitCodes::from_real(&Matrix::from_rows(&[vec![1.0, -1.0]]));
        let b = BitCodes::from_real(&Matrix::from_rows(&[vec![1.0, -1.0, 1.0]]));
        a.extend(&b);
    }

    #[test]
    fn unpack_round_trip() {
        let m = Matrix::from_rows(&[vec![0.3, -0.2, 0.9, -0.7], vec![-0.1, 0.4, -0.6, 0.2]]);
        let codes = BitCodes::from_real(&m);
        let unpacked = codes.unpack_all();
        let recoded = BitCodes::from_real(&unpacked);
        assert_eq!(codes, recoded);
    }
}
