//! Bit-packed binary hash codes.
//!
//! The paper's codes live in `{-1, +1}^k`; retrieval only ever consumes them
//! through Hamming distance, `H_d(b_i, b_j) = (k − b_i^T b_j) / 2`, which for
//! packed bits is exactly the popcount of the XOR. Packing 64 bits per word
//! makes Hamming ranking over the whole database a handful of XOR/popcount
//! instructions per pair.

use std::io::{self, Read, Write};
use uhscm_linalg::Matrix;

const MAGIC: &[u8; 4] = b"UHBC";
const FORMAT_VERSION: u32 = 1;

/// A set of `n` binary codes of `bits` bits each, packed 64 per word.
///
/// Bit convention: bit set ⇔ the real-valued code entry is `> 0` ⇔ `+1`
/// (`sgn` in the paper returns −1 at zero, matching "returns 1 if the input
/// is positive and −1 otherwise").
///
/// ```
/// use uhscm_eval::BitCodes;
/// use uhscm_linalg::Matrix;
///
/// let relaxed = Matrix::from_rows(&[vec![0.9, -0.2, 0.4], vec![-0.3, -0.8, 0.4]]);
/// let codes = BitCodes::from_real(&relaxed);
/// assert_eq!(codes.bits(), 3);
/// assert_eq!(codes.hamming(0, &codes, 1), 1); // only bit 0 differs
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BitCodes {
    n: usize,
    bits: usize,
    words_per_code: usize,
    data: Vec<u64>,
}

impl BitCodes {
    /// Quantize the rows of a real-valued code matrix with `sgn`.
    pub fn from_real(codes: &Matrix) -> Self {
        let n = codes.rows();
        let bits = codes.cols();
        let words_per_code = bits.div_ceil(64);
        let mut data = vec![0u64; n * words_per_code];
        for i in 0..n {
            let row = codes.row(i);
            let words = &mut data[i * words_per_code..(i + 1) * words_per_code];
            for (b, &v) in row.iter().enumerate() {
                if v > 0.0 {
                    words[b / 64] |= 1u64 << (b % 64);
                }
            }
        }
        Self { n, bits, words_per_code, data }
    }

    /// Build from explicit ±1 sign rows (`true` ⇔ +1).
    ///
    /// # Panics
    ///
    /// Panics if the rows have differing lengths.
    pub fn from_bools(rows: &[Vec<bool>]) -> Self {
        let n = rows.len();
        let bits = rows.first().map_or(0, Vec::len);
        let words_per_code = bits.div_ceil(64);
        let mut data = vec![0u64; n * words_per_code];
        for (i, row) in rows.iter().enumerate() {
            assert_eq!(row.len(), bits, "ragged code rows");
            let words = &mut data[i * words_per_code..(i + 1) * words_per_code];
            for (b, &set) in row.iter().enumerate() {
                if set {
                    words[b / 64] |= 1u64 << (b % 64);
                }
            }
        }
        Self { n, bits, words_per_code, data }
    }

    /// Number of codes.
    pub fn len(&self) -> usize {
        self.n
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Code length in bits (`k`).
    pub fn bits(&self) -> usize {
        self.bits
    }

    /// The packed words of code `i`.
    #[inline]
    pub fn code(&self, i: usize) -> &[u64] {
        &self.data[i * self.words_per_code..(i + 1) * self.words_per_code]
    }

    /// The whole packed word buffer, codes laid out contiguously
    /// (`words_per_code` words per code). This is the serialization surface
    /// consumed by the segment store.
    #[inline]
    pub fn as_words(&self) -> &[u64] {
        &self.data
    }

    /// Rebuild a code set from a raw packed word buffer, validating the two
    /// invariants every scan kernel relies on: `data.len() == n ·
    /// bits.div_ceil(64)`, and no padding bit above `bits` is set in any
    /// word (whole-word popcounts would otherwise overcount distances).
    ///
    /// Returns a static description of the violated invariant on failure;
    /// deserializers map it into their own typed error. Hostile input must
    /// flow through this constructor — never into the private fields.
    pub fn from_words(n: usize, bits: usize, data: Vec<u64>) -> Result<BitCodes, &'static str> {
        let words_per_code = bits.div_ceil(64);
        let expect = n.checked_mul(words_per_code).ok_or("code buffer length overflows")?;
        if data.len() != expect {
            return Err("code buffer length mismatch");
        }
        if bits % 64 != 0 && words_per_code > 0 {
            let pad_mask = !0u64 << (bits % 64);
            let mut tail = data.iter().skip(words_per_code - 1).step_by(words_per_code);
            if tail.any(|&w| w & pad_mask != 0) {
                return Err("padding bits set above code width");
            }
        }
        Ok(BitCodes { n, bits, words_per_code, data })
    }

    /// Hamming distance between code `i` of `self` and code `j` of `other`.
    ///
    /// # Panics
    /// Panics (debug) if the two sets have different code lengths.
    #[inline]
    pub fn hamming(&self, i: usize, other: &BitCodes, j: usize) -> u32 {
        debug_assert_eq!(self.bits, other.bits, "code length mismatch");
        self.code(i).iter().zip(other.code(j)).map(|(a, b)| (a ^ b).count_ones()).sum()
    }

    /// Unpack code `i` back to ±1 reals.
    ///
    /// Walks each packed word with a shift instead of re-deriving a
    /// word/bit pair per output element (the old div/mod-per-bit loop).
    pub fn unpack(&self, i: usize) -> Vec<f64> {
        let mut out = Vec::with_capacity(self.bits);
        let mut remaining = self.bits;
        for &word in self.code(i) {
            let take = remaining.min(64);
            let mut w = word;
            for _ in 0..take {
                out.push(if w & 1 == 1 { 1.0 } else { -1.0 });
                w >>= 1;
            }
            remaining -= take;
        }
        out
    }

    /// Serialize the packed codes (magic `UHBC`, version, dims, raw words —
    /// all little-endian). A trained system persists its database codes once
    /// and serves lookups from the reloaded set.
    pub fn save(&self, w: &mut impl Write) -> io::Result<()> {
        w.write_all(MAGIC)?;
        w.write_all(&FORMAT_VERSION.to_le_bytes())?;
        w.write_all(&(self.n as u64).to_le_bytes())?;
        w.write_all(&(self.bits as u64).to_le_bytes())?;
        for &word in &self.data {
            w.write_all(&word.to_le_bytes())?;
        }
        Ok(())
    }

    /// Deserialize codes written by [`Self::save`].
    ///
    /// Returns `InvalidData` errors for wrong magic/version or impossible
    /// dimensions, and `UnexpectedEof` for truncation.
    pub fn load(r: &mut impl Read) -> io::Result<BitCodes> {
        let bad = |msg: &str| io::Error::new(io::ErrorKind::InvalidData, msg.to_string());
        let mut magic = [0u8; 4];
        r.read_exact(&mut magic)?;
        if &magic != MAGIC {
            return Err(bad("not a UHSCM bitcode file"));
        }
        let mut buf4 = [0u8; 4];
        r.read_exact(&mut buf4)?;
        let version = u32::from_le_bytes(buf4);
        if version != FORMAT_VERSION {
            return Err(bad("unsupported bitcode format version"));
        }
        let mut buf8 = [0u8; 8];
        r.read_exact(&mut buf8)?;
        let n = u64::from_le_bytes(buf8) as usize;
        r.read_exact(&mut buf8)?;
        let bits = u64::from_le_bytes(buf8) as usize;
        if bits == 0 || bits > 1 << 20 || n > 1 << 32 {
            return Err(bad("bitcode dimensions out of range"));
        }
        let words_per_code = bits.div_ceil(64);
        let mut data = vec![0u64; n * words_per_code];
        for word in &mut data {
            r.read_exact(&mut buf8)?;
            *word = u64::from_le_bytes(buf8);
        }
        Ok(BitCodes { n, bits, words_per_code, data })
    }

    /// Append all codes from `other` (same bit width).
    ///
    /// # Panics
    /// Panics on bit-width mismatch.
    pub fn extend(&mut self, other: &BitCodes) {
        assert_eq!(self.bits, other.bits, "code length mismatch");
        self.data.extend_from_slice(&other.data);
        self.n += other.n;
    }

    /// Copy of the codes in `range` as their own set (same bit width).
    /// Shard builders cut a database into contiguous slices with this; the
    /// slice's local index `i` corresponds to global index `range.start + i`.
    ///
    /// # Panics
    /// Panics if `range` is out of bounds or decreasing.
    pub fn slice(&self, range: std::ops::Range<usize>) -> BitCodes {
        assert!(range.start <= range.end && range.end <= self.n, "slice out of bounds");
        BitCodes {
            n: range.len(),
            bits: self.bits,
            words_per_code: self.words_per_code,
            data: self.data[range.start * self.words_per_code..range.end * self.words_per_code]
                .to_vec(),
        }
    }

    /// Unpack every code into an `n × bits` ±1 matrix.
    pub fn unpack_all(&self) -> Matrix {
        let mut m = Matrix::zeros(self.n, self.bits);
        for i in 0..self.n {
            m.row_mut(i).copy_from_slice(&self.unpack(i));
        }
        m
    }
}

/// Batched query-vs-database Hamming scans over the packed word buffer.
///
/// [`BitCodes::hamming`] builds two word slices per pair; fine for a single
/// distance, wasteful for the database-sweep shape every retrieval path
/// actually runs (`rank_top_n`, MAP/P@N/PR, `HashIndex` probing, the serve
/// shards). The kernels here hoist the query words once and walk the
/// database's packed `data` buffer directly, writing distances into a
/// caller-provided `&mut [u32]`.
///
/// The inner loop is monomorphized per code width: dedicated instantiations
/// for `words_per_code` ∈ {1, 2, 4} (bits ≤ 64, ≤ 128, ≤ 256 — every width
/// the paper uses lands on one of these) and a 4-unrolled generic fallback
/// for everything else. Padding bits above `bits` are never set by
/// construction, so whole-word popcounts are exact for any bit width.
///
/// Offline eval and online serving both funnel through these kernels (via
/// [`crate::HammingRanker`]), so offline == online bitwise identity of
/// rankings is preserved by construction rather than by parallel
/// maintenance of two scan loops.
pub mod hamming_scan {
    use super::BitCodes;
    use std::ops::Range;

    /// Block length used by callers that scan through a fixed stack buffer
    /// instead of materializing all `n` distances (top-`n` heaps, radius
    /// filters): 512 distances = 2 KB of stack.
    pub const SCAN_BLOCK: usize = 512;

    /// Distances from query `qi` of `queries` to every code of `db`,
    /// written to `out[j]` for database index `j`.
    ///
    /// # Panics
    /// Panics on code-length mismatch or if `out.len() != db.len()`.
    pub fn scan_into(queries: &BitCodes, qi: usize, db: &BitCodes, out: &mut [u32]) {
        scan_range_into(queries, qi, db, 0..db.n, out);
    }

    /// [`scan_into`] restricted to database indices `range`; `out[k]` holds
    /// the distance to code `range.start + k`.
    ///
    /// # Panics
    /// Panics on code-length mismatch, an out-of-bounds range, or if
    /// `out.len() != range.len()`.
    pub fn scan_range_into(
        queries: &BitCodes,
        qi: usize,
        db: &BitCodes,
        range: Range<usize>,
        out: &mut [u32],
    ) {
        assert_eq!(queries.bits, db.bits, "code length mismatch");
        assert!(range.start <= range.end && range.end <= db.n, "scan range out of bounds");
        assert_eq!(out.len(), range.len(), "scan output length mismatch");
        let w = db.words_per_code;
        if w == 0 {
            out.fill(0);
            return;
        }
        let q = queries.code(qi);
        let data = &db.data[range.start * w..range.end * w];
        match w {
            1 => scan_w::<1>(q, data, out),
            2 => scan_w::<2>(q, data, out),
            4 => scan_w::<4>(q, data, out),
            _ => scan_generic(q, data, out),
        }
    }

    /// Visit `(database_index, distance)` for each index in `indices` —
    /// the scattered-access twin of [`scan_into`] used by bucketed index
    /// probes. The query words and the width dispatch are hoisted out of
    /// the loop exactly like the contiguous scan.
    ///
    /// # Panics
    /// Panics on code-length mismatch or an out-of-range index.
    pub fn gather_each(
        queries: &BitCodes,
        qi: usize,
        db: &BitCodes,
        indices: &[u32],
        visit: impl FnMut(u32, u32),
    ) {
        assert_eq!(queries.bits, db.bits, "code length mismatch");
        let w = db.words_per_code;
        if w == 0 {
            let mut visit = visit;
            for &j in indices {
                assert!((j as usize) < db.n, "gather index out of range");
                visit(j, 0);
            }
            return;
        }
        let q = queries.code(qi);
        match w {
            1 => gather_w::<1>(q, &db.data, indices, visit),
            2 => gather_w::<2>(q, &db.data, indices, visit),
            4 => gather_w::<4>(q, &db.data, indices, visit),
            _ => gather_generic(q, &db.data, indices, visit),
        }
    }

    /// Width-monomorphized contiguous scan: the query lives in a `[u64; W]`
    /// register array and the XOR/popcount chain is fully unrolled.
    fn scan_w<const W: usize>(q: &[u64], data: &[u64], out: &mut [u32]) {
        let mut qw = [0u64; W];
        qw.copy_from_slice(q);
        for (o, code) in out.iter_mut().zip(data.chunks_exact(W)) {
            let mut d = 0u32;
            for t in 0..W {
                d += (qw[t] ^ code[t]).count_ones();
            }
            *o = d;
        }
    }

    /// Generic-width contiguous scan, manually unrolled by four words.
    fn scan_generic(q: &[u64], data: &[u64], out: &mut [u32]) {
        let w = q.len();
        for (o, code) in out.iter_mut().zip(data.chunks_exact(w)) {
            *o = wide_hamming(q, code);
        }
    }

    /// Width-monomorphized scattered gather.
    fn gather_w<const W: usize>(
        q: &[u64],
        data: &[u64],
        indices: &[u32],
        mut visit: impl FnMut(u32, u32),
    ) {
        let mut qw = [0u64; W];
        qw.copy_from_slice(q);
        for &j in indices {
            let code = &data[j as usize * W..j as usize * W + W];
            let mut d = 0u32;
            for t in 0..W {
                d += (qw[t] ^ code[t]).count_ones();
            }
            visit(j, d);
        }
    }

    /// Generic-width scattered gather.
    fn gather_generic(q: &[u64], data: &[u64], indices: &[u32], mut visit: impl FnMut(u32, u32)) {
        let w = q.len();
        for &j in indices {
            let code = &data[j as usize * w..(j as usize + 1) * w];
            visit(j, wide_hamming(q, code));
        }
    }

    /// XOR/popcount over two equal-length word slices, unrolled by four.
    #[inline]
    fn wide_hamming(q: &[u64], code: &[u64]) -> u32 {
        let mut d = 0u32;
        let mut qc = q.chunks_exact(4);
        let mut cc = code.chunks_exact(4);
        for (qs, cs) in (&mut qc).zip(&mut cc) {
            d += (qs[0] ^ cs[0]).count_ones()
                + (qs[1] ^ cs[1]).count_ones()
                + (qs[2] ^ cs[2]).count_ones()
                + (qs[3] ^ cs[3]).count_ones();
        }
        for (a, b) in qc.remainder().iter().zip(cc.remainder()) {
            d += (a ^ b).count_ones();
        }
        d
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sign_convention_positive_only() {
        // 0.0 must quantize to −1 (paper: "returns -1 otherwise").
        let m = Matrix::from_rows(&[vec![0.5, -0.5, 0.0]]);
        let codes = BitCodes::from_real(&m);
        assert_eq!(codes.unpack(0), vec![1.0, -1.0, -1.0]);
    }

    #[test]
    fn hamming_hand_computed() {
        let a = BitCodes::from_bools(&[vec![true, true, false, false]]);
        let b = BitCodes::from_bools(&[vec![true, false, true, false]]);
        assert_eq!(a.hamming(0, &b, 0), 2);
        assert_eq!(a.hamming(0, &a, 0), 0);
    }

    #[test]
    fn hamming_matches_inner_product_identity() {
        // H_d = (k − bᵀb') / 2 for ±1 codes.
        let m =
            Matrix::from_rows(&[vec![1.0, -1.0, 1.0, 1.0, -1.0], vec![-1.0, -1.0, 1.0, -1.0, 1.0]]);
        let codes = BitCodes::from_real(&m);
        let dot: f64 = m.row(0).iter().zip(m.row(1)).map(|(a, b)| a * b).sum();
        let expected = (5.0 - dot) / 2.0;
        assert_eq!(codes.hamming(0, &codes, 1) as f64, expected);
    }

    #[test]
    fn multiword_codes() {
        // 130 bits spans three words.
        let row: Vec<bool> = (0..130).map(|i| i % 3 == 0).collect();
        let other: Vec<bool> = (0..130).map(|i| i % 3 == 1).collect();
        let a = BitCodes::from_bools(&[row.clone()]);
        let b = BitCodes::from_bools(&[other.clone()]);
        let expected = row.iter().zip(&other).filter(|(x, y)| x != y).count() as u32;
        assert_eq!(a.hamming(0, &b, 0), expected);
        assert_eq!(a.bits(), 130);
    }

    #[test]
    fn save_load_round_trip() {
        let m = Matrix::from_rows(&[vec![0.5; 130], vec![-0.5; 130]]);
        let codes = BitCodes::from_real(&m);
        let mut buf = Vec::new();
        codes.save(&mut buf).unwrap();
        let loaded = BitCodes::load(&mut buf.as_slice()).unwrap();
        assert_eq!(codes, loaded);
    }

    #[test]
    fn load_rejects_garbage() {
        let garbage = b"definitely not a bitcode file at all";
        assert!(BitCodes::load(&mut garbage.as_ref()).is_err());
    }

    #[test]
    fn load_rejects_truncation() {
        let m = Matrix::from_rows(&[vec![1.0; 64]]);
        let codes = BitCodes::from_real(&m);
        let mut buf = Vec::new();
        codes.save(&mut buf).unwrap();
        buf.truncate(buf.len() - 4);
        assert!(BitCodes::load(&mut buf.as_slice()).is_err());
    }

    #[test]
    fn extend_appends_codes() {
        let mut a = BitCodes::from_real(&Matrix::from_rows(&[vec![1.0, -1.0, 1.0]]));
        let b =
            BitCodes::from_real(&Matrix::from_rows(&[vec![-1.0, -1.0, 1.0], vec![1.0, 1.0, 1.0]]));
        a.extend(&b);
        assert_eq!(a.len(), 3);
        assert_eq!(a.unpack(1), vec![-1.0, -1.0, 1.0]);
        assert_eq!(a.unpack(2), vec![1.0, 1.0, 1.0]);
    }

    #[test]
    #[should_panic(expected = "code length mismatch")]
    fn extend_rejects_width_mismatch() {
        let mut a = BitCodes::from_real(&Matrix::from_rows(&[vec![1.0, -1.0]]));
        let b = BitCodes::from_real(&Matrix::from_rows(&[vec![1.0, -1.0, 1.0]]));
        a.extend(&b);
    }

    #[test]
    fn unpack_round_trip() {
        let m = Matrix::from_rows(&[vec![0.3, -0.2, 0.9, -0.7], vec![-0.1, 0.4, -0.6, 0.2]]);
        let codes = BitCodes::from_real(&m);
        let unpacked = codes.unpack_all();
        let recoded = BitCodes::from_real(&unpacked);
        assert_eq!(codes, recoded);
    }

    /// Deterministic bit pattern for the width-sweep tests: varies with
    /// both the code index and the bit position so no word is all-zero or
    /// all-one.
    fn patterned_rows(n: usize, bits: usize, salt: usize) -> Vec<Vec<bool>> {
        (0..n).map(|i| (0..bits).map(|b| (i * 37 + b * 13 + salt) % 5 < 2).collect()).collect()
    }

    #[test]
    fn from_bools_unpack_round_trip_across_word_widths() {
        // Widths straddling the u64 word boundaries (and the word-at-a-time
        // unpack's final partial word).
        for bits in [1usize, 63, 64, 65, 128, 200] {
            let rows = patterned_rows(5, bits, 1);
            let codes = BitCodes::from_bools(&rows);
            let back: Vec<Vec<bool>> = (0..codes.len())
                .map(|i| codes.unpack(i).iter().map(|&v| v > 0.0).collect())
                .collect();
            assert_eq!(rows, back, "bits={bits}");
            assert_eq!(BitCodes::from_bools(&back), codes, "bits={bits}");
        }
    }

    #[test]
    fn hamming_scan_matches_pairwise_across_word_widths() {
        // Widths selecting every specialized scan kernel (1, 2, and 4
        // words per code) and the generic fallback (3 and 5 words), with
        // partial final words in most cases.
        for bits in [1usize, 63, 64, 65, 128, 192, 200, 320] {
            let db = BitCodes::from_bools(&patterned_rows(33, bits, 0));
            let queries = BitCodes::from_bools(&patterned_rows(7, bits, 3));
            let mut out = vec![0u32; db.len()];
            for qi in 0..queries.len() {
                hamming_scan::scan_into(&queries, qi, &db, &mut out);
                for (j, &d) in out.iter().enumerate() {
                    assert_eq!(d, queries.hamming(qi, &db, j), "bits={bits} qi={qi} j={j}");
                }

                let mut mid = vec![0u32; 20];
                hamming_scan::scan_range_into(&queries, qi, &db, 9..29, &mut mid);
                assert_eq!(mid, out[9..29], "range scan bits={bits} qi={qi}");

                let indices = [0u32, 7, 13, 32];
                let mut seen = Vec::new();
                hamming_scan::gather_each(&queries, qi, &db, &indices, |j, d| seen.push((j, d)));
                let want: Vec<(u32, u32)> = indices.iter().map(|&j| (j, out[j as usize])).collect();
                assert_eq!(seen, want, "gather bits={bits} qi={qi}");
            }
        }
    }

    #[test]
    fn from_words_round_trips_and_validates() {
        let codes = BitCodes::from_bools(&patterned_rows(6, 70, 2));
        let rebuilt =
            BitCodes::from_words(codes.len(), codes.bits(), codes.as_words().to_vec()).unwrap();
        assert_eq!(rebuilt, codes);

        // Wrong buffer length.
        let mut short = codes.as_words().to_vec();
        short.pop();
        assert_eq!(
            BitCodes::from_words(codes.len(), codes.bits(), short),
            Err("code buffer length mismatch")
        );

        // A set padding bit (above bit 70 in the second word) must be
        // rejected — it would corrupt whole-word popcount distances.
        let mut forged = codes.as_words().to_vec();
        forged[1] |= 1u64 << 63;
        assert_eq!(
            BitCodes::from_words(codes.len(), codes.bits(), forged),
            Err("padding bits set above code width")
        );

        // Word-aligned widths have no padding to check.
        let aligned = BitCodes::from_bools(&patterned_rows(3, 128, 4));
        let back = BitCodes::from_words(aligned.len(), aligned.bits(), aligned.as_words().to_vec());
        assert_eq!(back.unwrap(), aligned);
    }

    #[test]
    fn hamming_scan_empty_database_and_zero_width() {
        let q = BitCodes::from_bools(&[vec![true, false, true]]);
        let empty = q.slice(0..0);
        let mut out = [0u32; 0];
        hamming_scan::scan_into(&q, 0, &empty, &mut out);

        // Zero-width codes: every distance is 0.
        let zq = BitCodes::from_bools(&[vec![], vec![]]);
        let zdb = BitCodes::from_bools(&[vec![], vec![], vec![]]);
        let mut dists = [7u32; 3];
        hamming_scan::scan_into(&zq, 1, &zdb, &mut dists);
        assert_eq!(dists, [0, 0, 0]);
        let mut seen = Vec::new();
        hamming_scan::gather_each(&zq, 0, &zdb, &[2, 0], |j, d| seen.push((j, d)));
        assert_eq!(seen, vec![(2, 0), (0, 0)]);
    }
}
