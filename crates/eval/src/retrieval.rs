//! Top-k retrieval inspection (Figure 6 of the paper).
//!
//! The paper's Figure 6 shows, for a panel of queries, the top-10 retrieved
//! images framed green (relevant) or red (irrelevant). Without pixels we
//! report the same information structurally: ranked neighbour indices,
//! Hamming distances and relevance flags.

use crate::{BitCodes, HammingRanker};

/// One retrieved neighbour.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetrievalHit {
    /// Database index of the neighbour.
    pub index: usize,
    /// Hamming distance from the query.
    pub distance: u32,
    /// Whether the neighbour shares a label with the query.
    pub relevant: bool,
}

/// Top-`k` neighbours of query `qi`, with relevance flags.
///
/// Uses the bounded-heap selection of [`HammingRanker::rank_top_n`], so a
/// small `k` over a large database never sorts (or even allocates) the full
/// ranking; tie-breaking matches the full sort exactly.
pub fn top_k(
    ranker: &HammingRanker,
    queries: &BitCodes,
    qi: usize,
    relevant: &dyn Fn(usize, usize) -> bool,
    k: usize,
) -> Vec<RetrievalHit> {
    let ranked = ranker.rank_top_n(queries, qi, k);
    ranked
        .iter()
        .map(|&db_idx| RetrievalHit {
            index: db_idx as usize,
            distance: queries.hamming(qi, ranker.database(), db_idx as usize),
            relevant: relevant(qi, db_idx as usize),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use uhscm_linalg::Matrix;

    #[test]
    fn top_k_returns_sorted_hits() {
        let db = BitCodes::from_real(&Matrix::from_rows(&[
            vec![1.0, 1.0],   // d=2
            vec![-1.0, -1.0], // d=0
            vec![1.0, -1.0],  // d=1
        ]));
        let q = BitCodes::from_real(&Matrix::from_rows(&[vec![-1.0, -1.0]]));
        let ranker = HammingRanker::new(db);
        let rel = |_q: usize, d: usize| d == 1;
        let hits = top_k(&ranker, &q, 0, &rel, 2);
        assert_eq!(hits.len(), 2);
        assert_eq!(hits[0], RetrievalHit { index: 1, distance: 0, relevant: true });
        assert_eq!(hits[1], RetrievalHit { index: 2, distance: 1, relevant: false });
    }

    #[test]
    fn top_k_clamps_to_database_size() {
        let db = BitCodes::from_real(&Matrix::from_rows(&[vec![1.0]]));
        let q = BitCodes::from_real(&Matrix::from_rows(&[vec![1.0]]));
        let ranker = HammingRanker::new(db);
        let hits = top_k(&ranker, &q, 0, &|_, _| true, 10);
        assert_eq!(hits.len(), 1);
    }
}
