//! Retrieval metrics: MAP@n, P@N curves, PR curves (§4.2).
//!
//! Ground truth is supplied as a relevance predicate `relevant(query_index,
//! database_index)`; the paper's definition is "share at least one common
//! label". Rankings come from [`crate::HammingRanker`].

use crate::{BitCodes, HammingRanker};
use uhscm_linalg::par;

/// One point of a precision-recall curve.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PrPoint {
    /// Hamming radius that produced this point.
    pub radius: u32,
    pub precision: f64,
    pub recall: f64,
}

/// Mean Average Precision over the top `n` ranked results (Eq. 12).
///
/// For each query: `AP = Σ_i I(i)/N · Σ_{j≤i} I(j)/i` over the top `n`
/// returns, where `N` is the number of relevant results in the top `n`.
/// Queries with no relevant result in the top `n` contribute `AP = 0`.
///
/// # Panics
///
/// Panics if `queries` is empty.
pub fn mean_average_precision(
    ranker: &HammingRanker,
    queries: &BitCodes,
    relevant: &(dyn Fn(usize, usize) -> bool + Sync),
    top_n: usize,
) -> f64 {
    let _span = uhscm_obs::span("map");
    let nq = queries.len();
    assert!(nq > 0, "MAP over zero queries");
    uhscm_obs::registry::counter_add("eval.map.queries", nq as u64);
    // Queries are independent: fan out per-query APs, then fold them on
    // this thread in ascending query order — the serial addition sequence,
    // so the mean is bitwise identical for any thread count.
    let work = nq.saturating_mul(ranker.database().len().max(1));
    let per_query = par::par_map_chunks(nq, work, |range| {
        range.map(|qi| average_precision(ranker, queries, qi, relevant, top_n)).collect::<Vec<_>>()
    });
    let mut total = 0.0;
    for ap in per_query.into_iter().flatten() {
        total += ap;
    }
    total / nq as f64
}

/// AP of one query over the top `n` returns (zero when nothing relevant is
/// retrieved) — the per-query body of [`mean_average_precision`], shared
/// with the sampled estimator so a full-population sample reproduces the
/// exhaustive MAP bitwise.
pub(crate) fn average_precision(
    ranker: &HammingRanker,
    queries: &BitCodes,
    qi: usize,
    relevant: &(dyn Fn(usize, usize) -> bool + Sync),
    top_n: usize,
) -> f64 {
    let ranked = ranker.rank_top_n(queries, qi, top_n);
    let mut hits = 0u32;
    let mut precision_sum = 0.0;
    for (pos, &db_idx) in ranked.iter().enumerate() {
        if relevant(qi, db_idx as usize) {
            hits += 1;
            precision_sum += f64::from(hits) / (pos + 1) as f64;
        }
    }
    if hits > 0 {
        precision_sum / f64::from(hits)
    } else {
        0.0
    }
}

/// Precision among the top `n` results for each `n` in `ns`, averaged over
/// queries (the P@N curves of Figure 2).
///
/// # Panics
///
/// Panics if `queries` is empty.
pub fn precision_at_n(
    ranker: &HammingRanker,
    queries: &BitCodes,
    relevant: &(dyn Fn(usize, usize) -> bool + Sync),
    ns: &[usize],
) -> Vec<f64> {
    let _span = uhscm_obs::span("precision_at_n");
    let nq = queries.len();
    assert!(nq > 0, "P@N over zero queries");
    uhscm_obs::registry::counter_add("eval.pn.queries", nq as u64);
    let max_n = ns.iter().copied().max().unwrap_or(0).min(ranker.database().len());
    // Per-query precision vectors fan out; the fold below walks them in
    // ascending query order (the serial addition sequence per slot).
    let work = nq.saturating_mul(ranker.database().len().max(1));
    let per_query = par::par_map_chunks(nq, work, |range| {
        range
            .map(|qi| {
                let ranked = ranker.rank_top_n(queries, qi, max_n);
                // Prefix relevant counts up to max_n.
                let mut cum = Vec::with_capacity(max_n);
                let mut hits = 0usize;
                for &db_idx in &ranked {
                    if relevant(qi, db_idx as usize) {
                        hits += 1;
                    }
                    cum.push(hits);
                }
                let mut prec = vec![0.0; ns.len()];
                for (slot, &n) in prec.iter_mut().zip(ns) {
                    let n = n.min(max_n);
                    if n > 0 {
                        // A truncated ranking (fewer than n returns) keeps
                        // the final hit count; the divisor stays n.
                        *slot = cum.get(n - 1).copied().unwrap_or(hits) as f64 / n as f64;
                    }
                }
                prec
            })
            .collect::<Vec<_>>()
    });
    let mut out = vec![0.0; ns.len()];
    for prec in per_query.into_iter().flatten() {
        for (slot, p) in out.iter_mut().zip(prec) {
            *slot += p;
        }
    }
    for v in &mut out {
        *v /= nq as f64;
    }
    out
}

/// Precision-recall curve of the hash-lookup protocol (Figure 3): for each
/// Hamming radius `r ∈ 0..=k`, micro-averaged precision and recall of the
/// set of database points within distance `r` of the query.
///
/// # Panics
///
/// Panics if `queries` is empty.
pub fn pr_curve(
    ranker: &HammingRanker,
    queries: &BitCodes,
    relevant: &(dyn Fn(usize, usize) -> bool + Sync),
) -> Vec<PrPoint> {
    let _span = uhscm_obs::span("pr_curve");
    let nq = queries.len();
    assert!(nq > 0, "PR curve over zero queries");
    uhscm_obs::registry::counter_add("eval.pr.queries", nq as u64);
    let bits = ranker.database().bits();
    // Per-radius totals across all queries. Chunk partials are integer
    // counts, so merging them is exact regardless of the thread count.
    let work = nq.saturating_mul(ranker.database().len().max(1));
    let partials = par::par_map_chunks(nq, work, |range| {
        // (retrieved, retrieved_relevant) per Hamming distance; distances
        // are ≤ bits by construction, the `get_mut` guard keeps the
        // accumulation total even if a ranker ever violated that.
        let mut by_dist = vec![(0u64, 0u64); bits + 1];
        let mut total_relevant = 0u64;
        // One distance buffer per chunk, refilled by the batched scan kernel
        // — no per-query allocation on the radius sweep.
        let mut dists = vec![0u32; ranker.database().len()];
        for qi in range {
            ranker.distances_into(queries, qi, &mut dists);
            for (db_idx, &d) in dists.iter().enumerate() {
                if let Some((ret, rel)) = by_dist.get_mut(d as usize) {
                    *ret += 1;
                    if relevant(qi, db_idx) {
                        *rel += 1;
                        total_relevant += 1;
                    }
                }
            }
        }
        (by_dist, total_relevant)
    });
    let mut by_dist = vec![(0u64, 0u64); bits + 1];
    let mut total_relevant = 0u64;
    for (partial, tot) in partials {
        for ((ret_acc, rel_acc), (ret, rel)) in by_dist.iter_mut().zip(partial) {
            *ret_acc += ret;
            *rel_acc += rel;
        }
        total_relevant += tot;
    }
    // Prefix sums turn per-distance counts into within-radius counts.
    let mut points = Vec::with_capacity(bits + 1);
    let mut ret_cum = 0u64;
    let mut rel_cum = 0u64;
    for (r, &(ret, rel)) in by_dist.iter().enumerate() {
        ret_cum += ret;
        rel_cum += rel;
        let precision = if ret_cum == 0 { 1.0 } else { rel_cum as f64 / ret_cum as f64 };
        let recall = if total_relevant == 0 { 0.0 } else { rel_cum as f64 / total_relevant as f64 };
        points.push(PrPoint { radius: r as u32, precision, recall });
    }
    points
}

#[cfg(test)]
mod tests {
    use super::*;
    use uhscm_linalg::Matrix;

    /// DB with codes at distances 0,1,2,3 from the all-minus query.
    fn fixture() -> (HammingRanker, BitCodes) {
        let db = BitCodes::from_real(&Matrix::from_rows(&[
            vec![-1.0, -1.0, -1.0], // d=0
            vec![1.0, -1.0, -1.0],  // d=1
            vec![1.0, 1.0, -1.0],   // d=2
            vec![1.0, 1.0, 1.0],    // d=3
        ]));
        let q = BitCodes::from_real(&Matrix::from_rows(&[vec![-1.0, -1.0, -1.0]]));
        (HammingRanker::new(db), q)
    }

    #[test]
    fn perfect_ranking_gives_map_one() {
        let (ranker, q) = fixture();
        // Relevant = the two nearest.
        let rel = |_q: usize, d: usize| d <= 1;
        let map = mean_average_precision(&ranker, &q, &rel, 4);
        assert!((map - 1.0).abs() < 1e-12);
    }

    #[test]
    fn worst_ranking_map() {
        let (ranker, q) = fixture();
        // Relevant = the two farthest → ranked at positions 3,4.
        let rel = |_q: usize, d: usize| d >= 2;
        let map = mean_average_precision(&ranker, &q, &rel, 4);
        // AP = (1/2)(1/3 + 2/4) = 5/12.
        assert!((map - 5.0 / 12.0).abs() < 1e-12);
    }

    #[test]
    fn map_respects_top_n_cutoff() {
        let (ranker, q) = fixture();
        let rel = |_q: usize, d: usize| d == 3; // only the farthest is relevant
        let map = mean_average_precision(&ranker, &q, &rel, 2);
        assert_eq!(map, 0.0, "relevant item beyond cutoff must not count");
    }

    #[test]
    fn precision_at_n_hand_computed() {
        let (ranker, q) = fixture();
        let rel = |_q: usize, d: usize| d <= 1;
        let p = precision_at_n(&ranker, &q, &rel, &[1, 2, 4]);
        assert!((p[0] - 1.0).abs() < 1e-12);
        assert!((p[1] - 1.0).abs() < 1e-12);
        assert!((p[2] - 0.5).abs() < 1e-12);
    }

    #[test]
    fn pr_curve_shape() {
        let (ranker, q) = fixture();
        let rel = |_q: usize, d: usize| d <= 1;
        let pr = pr_curve(&ranker, &q, &rel);
        assert_eq!(pr.len(), 4); // radii 0..=3
                                 // Radius 0: retrieves exactly the relevant d=0 point.
        assert_eq!(pr[0].precision, 1.0);
        assert!((pr[0].recall - 0.5).abs() < 1e-12);
        // Radius 3: everything retrieved.
        assert!((pr[3].recall - 1.0).abs() < 1e-12);
        assert!((pr[3].precision - 0.5).abs() < 1e-12);
        // Recall is non-decreasing in the radius.
        assert!(pr.windows(2).all(|w| w[0].recall <= w[1].recall + 1e-12));
    }

    #[test]
    fn metrics_bounded() {
        let (ranker, q) = fixture();
        let rel = |_q: usize, d: usize| d % 2 == 0;
        let map = mean_average_precision(&ranker, &q, &rel, 4);
        assert!((0.0..=1.0).contains(&map));
        for p in precision_at_n(&ranker, &q, &rel, &[1, 2, 3, 4]) {
            assert!((0.0..=1.0).contains(&p));
        }
        for pt in pr_curve(&ranker, &q, &rel) {
            assert!((0.0..=1.0).contains(&pt.precision));
            assert!((0.0..=1.0).contains(&pt.recall));
        }
    }
}
