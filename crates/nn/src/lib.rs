//! Minimal neural-network runtime for the UHSCM reproduction.
//!
//! The paper trains a VGG19 backbone with a k-dimensional `tanh` head using
//! mini-batch SGD (momentum 0.9, weight decay 1e-5). PyTorch is not available
//! as a sanctioned dependency, so this crate implements the required subset
//! from scratch:
//!
//! * [`Linear`] layers with Xavier initialization,
//! * [`Activation`] functions (`tanh`, ReLU, sigmoid, identity),
//! * [`Mlp`] — a feed-forward stack with exact manual back-propagation,
//! * [`Sgd`] — SGD with momentum and weight decay,
//! * [`grad_check`] — finite-difference gradient verification used by the
//!   test suite to prove the backward passes correct.
//!
//! The hashing networks in `uhscm-core` and the deep baselines (`SSDH`,
//! `GH`, `BGAN`, `CIB`, `MLS3RDUH`, `UTH`) are all built on [`Mlp`].

pub mod activation;
pub mod gradcheck;
pub mod init;
pub mod layer;
pub mod mlp;
pub mod optimizer;
pub mod pairwise;
pub mod persist;

pub use activation::Activation;
pub use gradcheck::grad_check;
pub use layer::Linear;
pub use mlp::Mlp;
pub use optimizer::Sgd;
pub use persist::PersistError;
