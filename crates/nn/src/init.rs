//! Weight initialization.
//!
//! The paper initializes the replaced final layer of its hashing network with
//! Xavier initialization [Glorot & Bengio 2010]; we use the same scheme for
//! every layer of the (much smaller) MLPs here.

use rand::Rng;
use uhscm_linalg::Matrix;

/// Xavier/Glorot *uniform* initialization for a `fan_in × fan_out` weight
/// matrix: entries are drawn from `U(-a, a)` with `a = sqrt(6 / (fan_in +
/// fan_out))`.
pub fn xavier_uniform(rng: &mut impl Rng, fan_in: usize, fan_out: usize) -> Matrix {
    let a = (6.0 / (fan_in + fan_out) as f64).sqrt();
    let data = (0..fan_in * fan_out).map(|_| rng.gen_range(-a..a)).collect();
    Matrix::from_vec(fan_in, fan_out, data)
}

#[cfg(test)]
mod tests {
    use super::*;
    use uhscm_linalg::rng::seeded;
    use uhscm_linalg::vecops;

    #[test]
    fn entries_within_xavier_bound() {
        let mut rng = seeded(1);
        let w = xavier_uniform(&mut rng, 64, 16);
        let a = (6.0 / 80.0f64).sqrt();
        assert!(w.as_slice().iter().all(|&v| v.abs() <= a));
    }

    #[test]
    fn mean_near_zero() {
        let mut rng = seeded(2);
        let w = xavier_uniform(&mut rng, 100, 100);
        let m = vecops::mean(w.as_slice());
        assert!(m.abs() < 0.005, "mean {m}");
    }

    #[test]
    fn variance_matches_uniform_formula() {
        // Var(U(-a,a)) = a²/3 = 2/(fan_in+fan_out).
        let mut rng = seeded(3);
        let w = xavier_uniform(&mut rng, 200, 200);
        let v = vecops::variance(w.as_slice());
        let expected = 2.0 / 400.0;
        assert!((v - expected).abs() < expected * 0.1, "var {v} vs {expected}");
    }
}
