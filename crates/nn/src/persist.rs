//! Model persistence: a small, versioned, self-describing binary format.
//!
//! A deployed retrieval system trains the hashing network once and serves
//! it for months; [`Mlp::save`]/[`Mlp::load`] give it a stable on-disk
//! format without pulling a serialization framework into the hot path.
//! Layout (all integers little-endian):
//!
//! ```text
//! magic "UHNN" | u32 version | u32 n_layers |
//!   per layer: u32 fan_in | u32 fan_out | u8 activation |
//!              fan_in·fan_out f64 weights | fan_out f64 biases
//! ```

use crate::{Activation, Linear, Mlp};
use std::io::{self, Read, Write};

const MAGIC: &[u8; 4] = b"UHNN";
const VERSION: u32 = 1;

/// Errors from loading a persisted model.
#[derive(Debug)]
pub enum PersistError {
    Io(io::Error),
    /// Wrong magic bytes — not a UHSCM model file.
    BadMagic,
    /// Unsupported format version.
    BadVersion(u32),
    /// Corrupt structure (impossible sizes, unknown activation).
    Corrupt(&'static str),
}

impl From<io::Error> for PersistError {
    fn from(e: io::Error) -> Self {
        PersistError::Io(e)
    }
}

impl std::fmt::Display for PersistError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PersistError::Io(e) => write!(f, "i/o error: {e}"),
            PersistError::BadMagic => write!(f, "not a UHSCM model file (bad magic)"),
            PersistError::BadVersion(v) => write!(f, "unsupported model format version {v}"),
            PersistError::Corrupt(what) => write!(f, "corrupt model file: {what}"),
        }
    }
}

impl std::error::Error for PersistError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PersistError::Io(e) => Some(e),
            _ => None,
        }
    }
}

fn activation_tag(a: Activation) -> u8 {
    match a {
        Activation::Identity => 0,
        Activation::Tanh => 1,
        Activation::Relu => 2,
        Activation::Sigmoid => 3,
    }
}

fn activation_from_tag(tag: u8) -> Option<Activation> {
    match tag {
        0 => Some(Activation::Identity),
        1 => Some(Activation::Tanh),
        2 => Some(Activation::Relu),
        3 => Some(Activation::Sigmoid),
        _ => None,
    }
}

impl Mlp {
    /// Serialize the network to a writer.
    pub fn save(&self, w: &mut impl Write) -> io::Result<()> {
        w.write_all(MAGIC)?;
        w.write_all(&VERSION.to_le_bytes())?;
        w.write_all(&(self.layers().len() as u32).to_le_bytes())?;
        for layer in self.layers() {
            w.write_all(&(layer.fan_in() as u32).to_le_bytes())?;
            w.write_all(&(layer.fan_out() as u32).to_le_bytes())?;
            w.write_all(&[activation_tag(layer.activation)])?;
            for &v in layer.weight.as_slice() {
                w.write_all(&v.to_le_bytes())?;
            }
            for &v in &layer.bias {
                w.write_all(&v.to_le_bytes())?;
            }
        }
        Ok(())
    }

    /// Deserialize a network previously written by [`Self::save`].
    pub fn load(r: &mut impl Read) -> Result<Mlp, PersistError> {
        let mut magic = [0u8; 4];
        r.read_exact(&mut magic)?;
        if &magic != MAGIC {
            return Err(PersistError::BadMagic);
        }
        let version = read_u32(r)?;
        if version != VERSION {
            return Err(PersistError::BadVersion(version));
        }
        let n_layers = read_u32(r)? as usize;
        if n_layers == 0 || n_layers > 64 {
            return Err(PersistError::Corrupt("layer count out of range"));
        }
        let mut layers = Vec::with_capacity(n_layers);
        for _ in 0..n_layers {
            let fan_in = read_u32(r)? as usize;
            let fan_out = read_u32(r)? as usize;
            if fan_in == 0 || fan_out == 0 || fan_in > 1 << 20 || fan_out > 1 << 20 {
                return Err(PersistError::Corrupt("layer dimensions out of range"));
            }
            let mut tag = [0u8; 1];
            r.read_exact(&mut tag)?;
            let activation =
                activation_from_tag(tag[0]).ok_or(PersistError::Corrupt("unknown activation"))?;
            let mut weights = vec![0.0f64; fan_in * fan_out];
            for v in &mut weights {
                *v = read_f64(r)?;
            }
            let mut bias = vec![0.0f64; fan_out];
            for v in &mut bias {
                *v = read_f64(r)?;
            }
            layers.push(Linear::from_parts(
                uhscm_linalg::Matrix::from_vec(fan_in, fan_out, weights),
                bias,
                activation,
            ));
        }
        // Validate the chain.
        for pair in layers.windows(2) {
            if pair[0].fan_out() != pair[1].fan_in() {
                return Err(PersistError::Corrupt("layer dimensions do not chain"));
            }
        }
        Ok(Mlp::from_layers(layers))
    }
}

fn read_u32(r: &mut impl Read) -> io::Result<u32> {
    let mut buf = [0u8; 4];
    r.read_exact(&mut buf)?;
    Ok(u32::from_le_bytes(buf))
}

fn read_f64(r: &mut impl Read) -> io::Result<f64> {
    let mut buf = [0u8; 8];
    r.read_exact(&mut buf)?;
    Ok(f64::from_le_bytes(buf))
}

#[cfg(test)]
mod tests {
    use super::*;
    use uhscm_linalg::rng::seeded;

    #[test]
    fn round_trip_preserves_inference() {
        let mut rng = seeded(1);
        let mlp = Mlp::hashing_network(8, &[6, 5], 4, &mut rng);
        let mut buf = Vec::new();
        mlp.save(&mut buf).unwrap();
        let loaded = Mlp::load(&mut buf.as_slice()).unwrap();
        let x = uhscm_linalg::rng::gauss_matrix(&mut rng, 3, 8, 1.0);
        assert_eq!(mlp.infer(&x).as_slice(), loaded.infer(&x).as_slice());
        assert_eq!(mlp.flat_params(), loaded.flat_params());
    }

    #[test]
    fn bad_magic_rejected() {
        let data = b"NOPE....extra";
        match Mlp::load(&mut data.as_slice()) {
            Err(PersistError::BadMagic) => {}
            other => panic!("expected BadMagic, got {other:?}"),
        }
    }

    #[test]
    fn truncated_file_rejected() {
        let mut rng = seeded(2);
        let mlp = Mlp::hashing_network(4, &[3], 2, &mut rng);
        let mut buf = Vec::new();
        mlp.save(&mut buf).unwrap();
        buf.truncate(buf.len() / 2);
        assert!(matches!(Mlp::load(&mut buf.as_slice()), Err(PersistError::Io(_))));
    }

    #[test]
    fn wrong_version_rejected() {
        let mut rng = seeded(3);
        let mlp = Mlp::hashing_network(4, &[3], 2, &mut rng);
        let mut buf = Vec::new();
        mlp.save(&mut buf).unwrap();
        buf[4] = 99; // clobber version
        assert!(matches!(Mlp::load(&mut buf.as_slice()), Err(PersistError::BadVersion(99))));
    }

    #[test]
    fn corrupted_activation_rejected() {
        let mut rng = seeded(4);
        let mlp = Mlp::hashing_network(4, &[], 2, &mut rng);
        let mut buf = Vec::new();
        mlp.save(&mut buf).unwrap();
        // magic(4) + version(4) + n_layers(4) + fan_in(4) + fan_out(4) = 20
        buf[20] = 200;
        assert!(matches!(
            Mlp::load(&mut buf.as_slice()),
            Err(PersistError::Corrupt("unknown activation"))
        ));
    }
}
