//! Model persistence: a small, versioned, self-describing binary format.
//!
//! A deployed retrieval system trains the hashing network once and serves
//! it for months; [`Mlp::save`]/[`Mlp::load`] give it a stable on-disk
//! format without pulling a serialization framework into the hot path.
//! Layout (all integers little-endian):
//!
//! ```text
//! magic "UHNN" | u32 version | u32 n_layers |
//!   per layer: u32 fan_in | u32 fan_out | u8 activation |
//!              fan_in·fan_out f64 weights | fan_out f64 biases
//! | u64 FNV-1a checksum of every preceding byte
//! ```
//!
//! The online service (`uhscm-serve`) loads model files from
//! operator-supplied paths at startup, so [`Mlp::load`] treats its input as
//! hostile: dimensions are capped before anything is allocated, weights are
//! read incrementally (a truncated file fails at EOF without a
//! header-sized allocation), and the trailing checksum rejects any
//! bit-level corruption of the payload — every failure mode is a
//! [`PersistError`], never a panic or an attacker-chosen allocation.

use crate::{Activation, Linear, Mlp};
use std::io::{self, Read, Write};

const MAGIC: &[u8; 4] = b"UHNN";
const VERSION: u32 = 2;

/// Largest cumulative weight count a persisted model may declare (4M
/// parameters = 32 MiB of `f64`, an order of magnitude above any network
/// this workspace trains); guards allocations against hostile headers.
const MAX_TOTAL_PARAMS: usize = 1 << 22;

/// Errors from loading a persisted model.
#[derive(Debug)]
pub enum PersistError {
    Io(io::Error),
    /// Wrong magic bytes — not a UHSCM model file.
    BadMagic,
    /// Unsupported format version.
    BadVersion(u32),
    /// Corrupt structure (impossible sizes, unknown activation, bad
    /// checksum).
    Corrupt(&'static str),
}

impl From<io::Error> for PersistError {
    fn from(e: io::Error) -> Self {
        PersistError::Io(e)
    }
}

impl std::fmt::Display for PersistError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PersistError::Io(e) => write!(f, "i/o error: {e}"),
            PersistError::BadMagic => write!(f, "not a UHSCM model file (bad magic)"),
            PersistError::BadVersion(v) => write!(f, "unsupported model format version {v}"),
            PersistError::Corrupt(what) => write!(f, "corrupt model file: {what}"),
        }
    }
}

impl std::error::Error for PersistError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PersistError::Io(e) => Some(e),
            _ => None,
        }
    }
}

fn activation_tag(a: Activation) -> u8 {
    match a {
        Activation::Identity => 0,
        Activation::Tanh => 1,
        Activation::Relu => 2,
        Activation::Sigmoid => 3,
    }
}

fn activation_from_tag(tag: u8) -> Option<Activation> {
    match tag {
        0 => Some(Activation::Identity),
        1 => Some(Activation::Tanh),
        2 => Some(Activation::Relu),
        3 => Some(Activation::Sigmoid),
        _ => None,
    }
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

fn fnv1a_step(hash: u64, byte: u8) -> u64 {
    (hash ^ u64::from(byte)).wrapping_mul(FNV_PRIME)
}

/// Writer adapter that folds every byte into an FNV-1a state. Every step
/// of FNV-1a is a bijection of the state for a fixed input byte, so two
/// streams that differ in any single byte can never converge to the same
/// checksum — single-byte corruption is always detected.
struct HashingWriter<'a, W: Write> {
    inner: &'a mut W,
    hash: u64,
}

impl<W: Write> Write for HashingWriter<'_, W> {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        let n = self.inner.write(buf)?;
        for &b in &buf[..n] {
            self.hash = fnv1a_step(self.hash, b);
        }
        Ok(n)
    }

    fn flush(&mut self) -> io::Result<()> {
        self.inner.flush()
    }
}

/// Reader adapter mirroring [`HashingWriter`].
struct HashingReader<'a, R: Read> {
    inner: &'a mut R,
    hash: u64,
}

impl<R: Read> Read for HashingReader<'_, R> {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        let n = self.inner.read(buf)?;
        for &b in &buf[..n] {
            self.hash = fnv1a_step(self.hash, b);
        }
        Ok(n)
    }
}

impl Mlp {
    /// Serialize the network to a writer.
    pub fn save(&self, w: &mut impl Write) -> io::Result<()> {
        let mut hw = HashingWriter { inner: w, hash: FNV_OFFSET };
        hw.write_all(MAGIC)?;
        hw.write_all(&VERSION.to_le_bytes())?;
        hw.write_all(&(self.layers().len() as u32).to_le_bytes())?;
        for layer in self.layers() {
            hw.write_all(&(layer.fan_in() as u32).to_le_bytes())?;
            hw.write_all(&(layer.fan_out() as u32).to_le_bytes())?;
            hw.write_all(&[activation_tag(layer.activation)])?;
            for &v in layer.weight.as_slice() {
                hw.write_all(&v.to_le_bytes())?;
            }
            for &v in &layer.bias {
                hw.write_all(&v.to_le_bytes())?;
            }
        }
        let checksum = hw.hash;
        w.write_all(&checksum.to_le_bytes())?;
        Ok(())
    }

    /// Deserialize a network previously written by [`Self::save`].
    ///
    /// Treats the input as untrusted: declared dimensions are capped before
    /// any allocation (a hostile header cannot force an OOM-sized buffer),
    /// weights are read incrementally so truncation fails at EOF, and the
    /// trailing FNV-1a checksum rejects byte-level corruption anywhere in
    /// the stream.
    pub fn load(r: &mut impl Read) -> Result<Mlp, PersistError> {
        let mut hr = HashingReader { inner: r, hash: FNV_OFFSET };
        let mut magic = [0u8; 4];
        hr.read_exact(&mut magic)?;
        if &magic != MAGIC {
            return Err(PersistError::BadMagic);
        }
        let version = read_u32(&mut hr)?;
        if version != VERSION {
            return Err(PersistError::BadVersion(version));
        }
        let n_layers = read_u32(&mut hr)? as usize;
        if n_layers == 0 || n_layers > 64 {
            return Err(PersistError::Corrupt("layer count out of range"));
        }
        let mut layers = Vec::with_capacity(n_layers);
        let mut total_params = 0usize;
        for _ in 0..n_layers {
            let fan_in = read_u32(&mut hr)? as usize;
            let fan_out = read_u32(&mut hr)? as usize;
            if fan_in == 0 || fan_out == 0 || fan_in > 1 << 20 || fan_out > 1 << 20 {
                return Err(PersistError::Corrupt("layer dimensions out of range"));
            }
            let params =
                fan_in.checked_mul(fan_out).ok_or(PersistError::Corrupt("model too large"))?;
            total_params = total_params
                .checked_add(params)
                .filter(|&t| t <= MAX_TOTAL_PARAMS)
                .ok_or(PersistError::Corrupt("model too large"))?;
            let mut tag = [0u8; 1];
            hr.read_exact(&mut tag)?;
            let activation =
                activation_from_tag(tag[0]).ok_or(PersistError::Corrupt("unknown activation"))?;
            // Grow while reading instead of trusting the header with one
            // up-front allocation: a truncated stream errors out having
            // allocated no more than the bytes actually present.
            let mut weights = Vec::new();
            for _ in 0..params {
                weights.push(read_f64(&mut hr)?);
            }
            let mut bias = Vec::new();
            for _ in 0..fan_out {
                bias.push(read_f64(&mut hr)?);
            }
            layers.push(Linear::from_parts(
                uhscm_linalg::Matrix::from_vec(fan_in, fan_out, weights),
                bias,
                activation,
            ));
        }
        let computed = hr.hash;
        // The stored checksum is read from the raw reader — it covers every
        // byte before it, not itself.
        let mut buf = [0u8; 8];
        hr.inner.read_exact(&mut buf)?;
        if u64::from_le_bytes(buf) != computed {
            return Err(PersistError::Corrupt("checksum mismatch"));
        }
        // Validate the chain.
        for pair in layers.windows(2) {
            if pair[0].fan_out() != pair[1].fan_in() {
                return Err(PersistError::Corrupt("layer dimensions do not chain"));
            }
        }
        Ok(Mlp::from_layers(layers))
    }
}

fn read_u32(r: &mut impl Read) -> io::Result<u32> {
    let mut buf = [0u8; 4];
    r.read_exact(&mut buf)?;
    Ok(u32::from_le_bytes(buf))
}

fn read_f64(r: &mut impl Read) -> io::Result<f64> {
    let mut buf = [0u8; 8];
    r.read_exact(&mut buf)?;
    Ok(f64::from_le_bytes(buf))
}

#[cfg(test)]
mod tests {
    use super::*;
    use uhscm_linalg::rng::seeded;

    #[test]
    fn round_trip_preserves_inference() {
        let mut rng = seeded(1);
        let mlp = Mlp::hashing_network(8, &[6, 5], 4, &mut rng);
        let mut buf = Vec::new();
        mlp.save(&mut buf).unwrap();
        let loaded = Mlp::load(&mut buf.as_slice()).unwrap();
        let x = uhscm_linalg::rng::gauss_matrix(&mut rng, 3, 8, 1.0);
        assert_eq!(mlp.infer(&x).as_slice(), loaded.infer(&x).as_slice());
        assert_eq!(mlp.flat_params(), loaded.flat_params());
    }

    #[test]
    fn bad_magic_rejected() {
        let data = b"NOPE....extra";
        match Mlp::load(&mut data.as_slice()) {
            Err(PersistError::BadMagic) => {}
            other => panic!("expected BadMagic, got {other:?}"),
        }
    }

    #[test]
    fn truncated_file_rejected() {
        let mut rng = seeded(2);
        let mlp = Mlp::hashing_network(4, &[3], 2, &mut rng);
        let mut buf = Vec::new();
        mlp.save(&mut buf).unwrap();
        buf.truncate(buf.len() / 2);
        assert!(matches!(Mlp::load(&mut buf.as_slice()), Err(PersistError::Io(_))));
    }

    #[test]
    fn wrong_version_rejected() {
        let mut rng = seeded(3);
        let mlp = Mlp::hashing_network(4, &[3], 2, &mut rng);
        let mut buf = Vec::new();
        mlp.save(&mut buf).unwrap();
        buf[4] = 99; // clobber version
        assert!(matches!(Mlp::load(&mut buf.as_slice()), Err(PersistError::BadVersion(99))));
    }

    #[test]
    fn corrupted_activation_rejected() {
        let mut rng = seeded(4);
        let mlp = Mlp::hashing_network(4, &[], 2, &mut rng);
        let mut buf = Vec::new();
        mlp.save(&mut buf).unwrap();
        // magic(4) + version(4) + n_layers(4) + fan_in(4) + fan_out(4) = 20
        buf[20] = 200;
        assert!(matches!(
            Mlp::load(&mut buf.as_slice()),
            Err(PersistError::Corrupt("unknown activation"))
        ));
    }

    #[test]
    fn weight_corruption_fails_checksum() {
        let mut rng = seeded(5);
        let mlp = Mlp::hashing_network(4, &[3], 2, &mut rng);
        let mut buf = Vec::new();
        mlp.save(&mut buf).unwrap();
        // Flip a low-order mantissa bit of the first weight: the payload
        // still parses as a structurally valid model, so only the checksum
        // can catch it.
        buf[21] ^= 1;
        assert!(matches!(
            Mlp::load(&mut buf.as_slice()),
            Err(PersistError::Corrupt("checksum mismatch"))
        ));
    }

    #[test]
    fn hostile_header_cannot_force_huge_allocation() {
        // A header declaring a 2^20 × 2^20 layer (8 TiB of weights) must be
        // rejected by the parameter cap before any weight is read.
        let mut buf = Vec::new();
        buf.extend_from_slice(b"UHNN");
        buf.extend_from_slice(&2u32.to_le_bytes()); // version
        buf.extend_from_slice(&1u32.to_le_bytes()); // n_layers
        buf.extend_from_slice(&(1u32 << 20).to_le_bytes()); // fan_in
        buf.extend_from_slice(&(1u32 << 20).to_le_bytes()); // fan_out
        buf.push(1); // tanh
        assert!(matches!(
            Mlp::load(&mut buf.as_slice()),
            Err(PersistError::Corrupt("model too large"))
        ));
    }

    #[test]
    fn param_budget_enforced_just_past_the_cap() {
        // 2048×2049 = 4,196,352 parameters: each dimension is legal on its
        // own but the product exceeds the 2^22 budget by one row.
        let mut buf = Vec::new();
        buf.extend_from_slice(b"UHNN");
        buf.extend_from_slice(&2u32.to_le_bytes());
        buf.extend_from_slice(&1u32.to_le_bytes());
        buf.extend_from_slice(&2048u32.to_le_bytes());
        buf.extend_from_slice(&2049u32.to_le_bytes());
        buf.push(1);
        assert!(matches!(
            Mlp::load(&mut buf.as_slice()),
            Err(PersistError::Corrupt("model too large"))
        ));
    }
}
