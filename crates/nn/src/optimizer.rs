//! Mini-batch SGD with momentum and weight decay.
//!
//! Matches the paper's optimizer: "mini-batch stochastic gradient descent
//! (SGD) with 0.9 momentum … weight decay parameter 1e-5" (§4.1).

use crate::Mlp;
use uhscm_linalg::Matrix;

/// SGD with classical momentum and ℓ2 weight decay.
///
/// Update rule per parameter tensor `p` with gradient `g`:
/// `v ← momentum·v + (g + weight_decay·p)`, `p ← p − lr·v`.
#[derive(Debug, Clone)]
pub struct Sgd {
    pub learning_rate: f64,
    pub momentum: f64,
    pub weight_decay: f64,
    /// One (weight-velocity, bias-velocity) pair per layer, lazily sized.
    velocities: Vec<(Matrix, Vec<f64>)>,
}

impl Sgd {
    /// Create an optimizer; velocities are allocated on the first step.
    ///
    /// # Panics
    ///
    /// Panics if `learning_rate <= 0`, `momentum` is outside `[0, 1)`, or
    /// `weight_decay < 0`.
    pub fn new(learning_rate: f64, momentum: f64, weight_decay: f64) -> Self {
        assert!(learning_rate > 0.0, "learning rate must be positive");
        assert!((0.0..1.0).contains(&momentum), "momentum must be in [0,1)");
        assert!(weight_decay >= 0.0, "weight decay must be non-negative");
        Self { learning_rate, momentum, weight_decay, velocities: Vec::new() }
    }

    /// The paper's settings: lr 0.006, momentum 0.9, weight decay 1e-5.
    pub fn paper_defaults() -> Self {
        Self::new(0.006, 0.9, 1e-5)
    }

    /// Apply one update using the gradients accumulated in `mlp`, then zero
    /// them.
    pub fn step(&mut self, mlp: &mut Mlp) {
        let layers = mlp.layers_mut();
        if self.velocities.len() != layers.len() {
            self.velocities = layers
                .iter()
                .map(|l| (Matrix::zeros(l.weight.rows(), l.weight.cols()), vec![0.0; l.bias.len()]))
                .collect();
        }
        for (layer, (vw, vb)) in layers.iter_mut().zip(&mut self.velocities) {
            for ((v, &g), p) in vw
                .as_mut_slice()
                .iter_mut()
                .zip(layer.grad_weight.as_slice())
                .zip(layer.weight.as_mut_slice())
            {
                *v = self.momentum * *v + g + self.weight_decay * *p;
                *p -= self.learning_rate * *v;
            }
            for ((v, &g), p) in vb.iter_mut().zip(&layer.grad_bias).zip(&mut layer.bias) {
                *v = self.momentum * *v + g; // no decay on biases, per common practice
                *p -= self.learning_rate * *v;
            }
        }
        #[cfg(feature = "checked")]
        for (i, layer) in mlp.layers().iter().enumerate() {
            let op = format!("Sgd::step (layer {i})");
            uhscm_linalg::checked::assert_matrix_finite(&op, "weight", &layer.weight);
            uhscm_linalg::checked::assert_slice_finite(&op, "bias", &layer.bias);
        }
        mlp.zero_grad();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Activation;
    use uhscm_linalg::rng::seeded;
    use uhscm_linalg::Matrix;

    /// Train y = 2x with a single linear unit; SGD should reach it.
    #[test]
    fn learns_scalar_regression() {
        let mut rng = seeded(1);
        let mut mlp = Mlp::new(&[1, 1], &[Activation::Identity], &mut rng);
        let mut sgd = Sgd::new(0.1, 0.9, 0.0);
        let xs = Matrix::from_rows(&[vec![-1.0], vec![0.5], vec![1.0], vec![2.0]]);
        for _ in 0..200 {
            let y = mlp.forward(&xs);
            // L = Σ (y - 2x)² / n  ⇒ dL/dy = 2(y - 2x)/n
            let mut grad = Matrix::zeros(4, 1);
            for i in 0..4 {
                grad[(i, 0)] = 2.0 * (y[(i, 0)] - 2.0 * xs[(i, 0)]) / 4.0;
            }
            mlp.backward(&grad);
            sgd.step(&mut mlp);
        }
        let w = mlp.layers()[0].weight[(0, 0)];
        let b = mlp.layers()[0].bias[0];
        assert!((w - 2.0).abs() < 1e-3, "w={w}");
        assert!(b.abs() < 1e-3, "b={b}");
    }

    #[test]
    fn momentum_accelerates_descent() {
        // On a quadratic bowl, momentum reaches lower loss in the same steps.
        let run = |momentum: f64| {
            let mut rng = seeded(7);
            let mut mlp = Mlp::new(&[1, 1], &[Activation::Identity], &mut rng);
            let mut sgd = Sgd::new(0.01, momentum, 0.0);
            let xs = Matrix::from_rows(&[vec![1.0]]);
            let mut last = 0.0;
            for _ in 0..50 {
                let y = mlp.forward(&xs);
                let err = y[(0, 0)] - 3.0;
                last = err * err;
                let mut grad = Matrix::zeros(1, 1);
                grad[(0, 0)] = 2.0 * err;
                mlp.backward(&grad);
                sgd.step(&mut mlp);
            }
            last
        };
        assert!(run(0.9) < run(0.0));
    }

    #[test]
    fn weight_decay_shrinks_weights() {
        let mut rng = seeded(3);
        let mut mlp = Mlp::new(&[2, 2], &[Activation::Identity], &mut rng);
        let before = mlp.flat_params().iter().map(|v| v.abs()).sum::<f64>();
        let mut sgd = Sgd::new(0.1, 0.0, 0.5);
        let x = Matrix::from_rows(&[vec![0.0, 0.0]]); // zero input ⇒ zero data gradient
        for _ in 0..20 {
            let _ = mlp.forward(&x);
            mlp.backward(&Matrix::zeros(1, 2));
            sgd.step(&mut mlp);
        }
        let after: f64 = mlp
            .layers()
            .iter()
            .map(|l| l.weight.as_slice().iter().map(|v| v.abs()).sum::<f64>())
            .sum();
        assert!(after < before * 0.5, "decay had no effect: {before} -> {after}");
    }

    #[test]
    #[should_panic(expected = "learning rate")]
    fn zero_lr_rejected() {
        let _ = Sgd::new(0.0, 0.9, 0.0);
    }

    #[test]
    fn step_zeroes_gradients() {
        let mut rng = seeded(4);
        let mut mlp = Mlp::hashing_network(4, &[3], 2, &mut rng);
        let mut sgd = Sgd::paper_defaults();
        let x = uhscm_linalg::rng::gauss_matrix(&mut rng, 2, 4, 1.0);
        let y = mlp.forward(&x);
        mlp.backward(&y);
        sgd.step(&mut mlp);
        assert!(mlp.flat_grads().iter().all(|&g| g == 0.0));
    }
}
