//! Element-wise activation functions.

/// An element-wise activation function.
///
/// `Tanh` is the paper's output activation (the differentiable surrogate for
/// `sign`); `Relu` is used in hidden layers; `Sigmoid` appears in the BGAN
/// baseline's discriminator; `Identity` makes a layer purely linear.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Activation {
    Identity,
    Tanh,
    Relu,
    Sigmoid,
}

impl Activation {
    /// Apply the activation to a single value.
    #[inline]
    pub fn apply(self, x: f64) -> f64 {
        match self {
            Activation::Identity => x,
            Activation::Tanh => x.tanh(),
            Activation::Relu => x.max(0.0),
            Activation::Sigmoid => 1.0 / (1.0 + (-x).exp()),
        }
    }

    /// Derivative expressed in terms of the *output* `y = apply(x)`.
    ///
    /// All four activations admit this form, which lets the backward pass
    /// reuse the cached forward output instead of the pre-activation.
    #[inline]
    pub fn derivative_from_output(self, y: f64) -> f64 {
        match self {
            Activation::Identity => 1.0,
            Activation::Tanh => 1.0 - y * y,
            Activation::Relu => {
                if y > 0.0 {
                    1.0
                } else {
                    0.0
                }
            }
            Activation::Sigmoid => y * (1.0 - y),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const ACTS: [Activation; 4] =
        [Activation::Identity, Activation::Tanh, Activation::Relu, Activation::Sigmoid];

    #[test]
    fn apply_matches_reference() {
        assert_eq!(Activation::Identity.apply(-2.5), -2.5);
        assert!((Activation::Tanh.apply(0.5) - 0.5f64.tanh()).abs() < 1e-15);
        assert_eq!(Activation::Relu.apply(-1.0), 0.0);
        assert_eq!(Activation::Relu.apply(2.0), 2.0);
        assert!((Activation::Sigmoid.apply(0.0) - 0.5).abs() < 1e-15);
    }

    #[test]
    fn derivative_matches_finite_difference() {
        let eps = 1e-6;
        for act in ACTS {
            for &x in &[-2.0, -0.5, 0.3, 1.7] {
                let y = act.apply(x);
                let numeric = (act.apply(x + eps) - act.apply(x - eps)) / (2.0 * eps);
                let analytic = act.derivative_from_output(y);
                assert!(
                    (numeric - analytic).abs() < 1e-6,
                    "{act:?} at {x}: numeric {numeric} vs analytic {analytic}"
                );
            }
        }
    }

    #[test]
    fn tanh_output_bounded() {
        for &x in &[-100.0, -1.0, 0.0, 1.0, 100.0] {
            let y = Activation::Tanh.apply(x);
            assert!((-1.0..=1.0).contains(&y));
        }
    }

    #[test]
    fn sigmoid_output_in_unit_interval() {
        for &x in &[-50.0, 0.0, 50.0] {
            let y = Activation::Sigmoid.apply(x);
            assert!((0.0..=1.0).contains(&y));
        }
    }
}
