//! A feed-forward multi-layer perceptron.

use crate::{Activation, Linear};
use rand::Rng;
use uhscm_linalg::Matrix;

/// A stack of [`Linear`] layers.
///
/// This is the stand-in for the paper's VGG19 backbone: the pre-trained
/// convolutional tower is replaced by fixed feature extraction (see
/// `uhscm-vlp`), and the trainable part — "the last layer replaced by a
/// k-dimensional fully-connected layer with `tanh`" — becomes a small MLP
/// over those features.
///
/// ```
/// use uhscm_nn::Mlp;
/// use uhscm_linalg::rng;
///
/// let mut r = rng::seeded(7);
/// // 128-d features → 64 hidden (ReLU) → 16-bit tanh head.
/// let net = Mlp::hashing_network(128, &[64], 16, &mut r);
/// let x = rng::gauss_matrix(&mut r, 4, 128, 1.0);
/// let codes = net.infer(&x);
/// assert_eq!(codes.shape(), (4, 16));
/// assert!(codes.as_slice().iter().all(|v| (-1.0..=1.0).contains(v)));
/// ```
#[derive(Debug, Clone)]
pub struct Mlp {
    layers: Vec<Linear>,
}

impl Mlp {
    /// Build an MLP from `sizes` (e.g. `[512, 256, 64]`) and one activation
    /// per layer (`sizes.len() - 1` entries).
    ///
    /// # Panics
    /// Panics if fewer than two sizes are given or the activation count does
    /// not match.
    pub fn new(sizes: &[usize], activations: &[Activation], rng: &mut impl Rng) -> Self {
        assert!(sizes.len() >= 2, "MLP needs at least input and output sizes");
        assert_eq!(activations.len(), sizes.len() - 1, "need one activation per layer");
        let layers = sizes
            .windows(2)
            .zip(activations)
            .map(|(w, &act)| Linear::new(w[0], w[1], act, rng))
            .collect();
        Self { layers }
    }

    /// Convenience constructor for the paper's hashing head: hidden ReLU
    /// layers and a final `tanh` to produce relaxed codes in `[-1, 1]^k`.
    pub fn hashing_network(
        input_dim: usize,
        hidden: &[usize],
        bits: usize,
        rng: &mut impl Rng,
    ) -> Self {
        let mut sizes = Vec::with_capacity(hidden.len() + 2);
        sizes.push(input_dim);
        sizes.extend_from_slice(hidden);
        sizes.push(bits);
        let mut acts = vec![Activation::Relu; hidden.len()];
        acts.push(Activation::Tanh);
        Self::new(&sizes, &acts, rng)
    }

    /// Reassemble a network from persisted layers.
    ///
    /// # Panics
    /// Panics on an empty layer list or non-chaining dimensions.
    pub fn from_layers(layers: Vec<Linear>) -> Self {
        assert!(!layers.is_empty(), "MLP needs at least one layer");
        for pair in layers.windows(2) {
            assert_eq!(pair[0].fan_out(), pair[1].fan_in(), "layer dimensions do not chain");
        }
        Self { layers }
    }

    /// Input dimensionality.
    pub fn input_dim(&self) -> usize {
        self.layers.first().expect("Mlp::input_dim: network has no layers").fan_in()
    }

    /// Output dimensionality.
    pub fn output_dim(&self) -> usize {
        self.layers.last().expect("Mlp::output_dim: network has no layers").fan_out()
    }

    /// Training forward pass (caches activations for [`Self::backward`]).
    pub fn forward(&mut self, x: &Matrix) -> Matrix {
        let mut h = self.layers[0].forward(x);
        for layer in &mut self.layers[1..] {
            h = layer.forward(&h);
        }
        h
    }

    /// Inference forward pass (no caching, `&self`).
    pub fn infer(&self, x: &Matrix) -> Matrix {
        let mut h = self.layers[0].infer(x);
        for layer in &self.layers[1..] {
            h = layer.infer(&h);
        }
        h
    }

    /// Back-propagate `dL/dy` through the whole stack, accumulating parameter
    /// gradients; returns `dL/dx`.
    pub fn backward(&mut self, grad_output: &Matrix) -> Matrix {
        let mut g = grad_output.clone();
        for layer in self.layers.iter_mut().rev() {
            g = layer.backward(&g);
        }
        g
    }

    /// Zero all accumulated gradients.
    pub fn zero_grad(&mut self) {
        for layer in &mut self.layers {
            layer.zero_grad();
        }
    }

    /// Layers, for the optimizer.
    pub fn layers_mut(&mut self) -> &mut [Linear] {
        &mut self.layers
    }

    /// Layers, read-only.
    pub fn layers(&self) -> &[Linear] {
        &self.layers
    }

    /// Total trainable parameter count.
    pub fn param_count(&self) -> usize {
        self.layers.iter().map(Linear::param_count).sum()
    }

    /// Flatten all parameters into one vector (testing/serialization aid).
    pub fn flat_params(&self) -> Vec<f64> {
        let mut out = Vec::with_capacity(self.param_count());
        for layer in &self.layers {
            out.extend_from_slice(layer.weight.as_slice());
            out.extend_from_slice(&layer.bias);
        }
        out
    }

    /// Load parameters from a flat vector produced by [`Self::flat_params`].
    ///
    /// # Panics
    /// Panics on length mismatch.
    pub fn set_flat_params(&mut self, flat: &[f64]) {
        assert_eq!(flat.len(), self.param_count(), "flat parameter length mismatch");
        let mut offset = 0;
        for layer in &mut self.layers {
            let wlen = layer.weight.rows() * layer.weight.cols();
            layer.weight.as_mut_slice().copy_from_slice(&flat[offset..offset + wlen]);
            offset += wlen;
            let blen = layer.bias.len();
            layer.bias.copy_from_slice(&flat[offset..offset + blen]);
            offset += blen;
        }
    }

    /// Flatten all accumulated gradients (same layout as [`Self::flat_params`]).
    pub fn flat_grads(&self) -> Vec<f64> {
        let mut out = Vec::with_capacity(self.param_count());
        for layer in &self.layers {
            out.extend_from_slice(layer.grad_weight.as_slice());
            out.extend_from_slice(&layer.grad_bias);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uhscm_linalg::rng::seeded;

    #[test]
    fn shapes_flow_through() {
        let mut rng = seeded(1);
        let mut mlp = Mlp::hashing_network(16, &[8], 4, &mut rng);
        assert_eq!(mlp.input_dim(), 16);
        assert_eq!(mlp.output_dim(), 4);
        let x = uhscm_linalg::rng::gauss_matrix(&mut rng, 5, 16, 1.0);
        let y = mlp.forward(&x);
        assert_eq!(y.shape(), (5, 4));
        // tanh output bounded
        assert!(y.as_slice().iter().all(|&v| (-1.0..=1.0).contains(&v)));
    }

    #[test]
    fn infer_matches_forward() {
        let mut rng = seeded(2);
        let mut mlp = Mlp::hashing_network(8, &[6, 5], 3, &mut rng);
        let x = uhscm_linalg::rng::gauss_matrix(&mut rng, 4, 8, 1.0);
        assert_eq!(mlp.infer(&x), mlp.forward(&x));
    }

    #[test]
    fn flat_params_round_trip() {
        let mut rng = seeded(3);
        let mut mlp = Mlp::hashing_network(8, &[4], 2, &mut rng);
        let flat = mlp.flat_params();
        assert_eq!(flat.len(), mlp.param_count());
        let mut perturbed = flat.clone();
        for v in &mut perturbed {
            *v += 1.0;
        }
        mlp.set_flat_params(&perturbed);
        assert_eq!(mlp.flat_params(), perturbed);
        mlp.set_flat_params(&flat);
        assert_eq!(mlp.flat_params(), flat);
    }

    #[test]
    fn param_count_formula() {
        let mut rng = seeded(4);
        let mlp = Mlp::new(&[10, 7, 3], &[Activation::Relu, Activation::Tanh], &mut rng);
        assert_eq!(mlp.param_count(), 10 * 7 + 7 + 7 * 3 + 3);
    }

    #[test]
    fn backward_changes_grads() {
        let mut rng = seeded(5);
        let mut mlp = Mlp::hashing_network(6, &[4], 2, &mut rng);
        let x = uhscm_linalg::rng::gauss_matrix(&mut rng, 3, 6, 1.0);
        let y = mlp.forward(&x);
        mlp.backward(&y);
        assert!(mlp.flat_grads().iter().any(|&g| g != 0.0));
        mlp.zero_grad();
        assert!(mlp.flat_grads().iter().all(|&g| g == 0.0));
    }
}
