//! Pairwise-cosine building blocks shared by every similarity-preserving
//! hashing loss in this workspace.
//!
//! UHSCM's objective (Eq. 11), SSDH's semantic-structure loss, GreedyHash's
//! similarity term, MLS³RDUH's reconstruction loss and CIB's contrastive
//! loss all reduce to functions of the batch cosine matrix
//! `ĥ_ij = cos(z_i, z_j)`. This module provides the forward computation and
//! the exact chain rule from an arbitrary upstream gradient `dL/dĥ` back to
//! `dL/dZ`, so each method only has to differentiate its scalar loss with
//! respect to `ĥ`.

use uhscm_linalg::{vecops, Matrix};

/// Pairwise cosine matrix of the rows of `z`, plus the row norms
/// (clamped away from zero). The diagonal is exactly 1.
pub fn cosine_matrix(z: &Matrix) -> (Matrix, Vec<f64>) {
    let t = z.rows();
    let norms: Vec<f64> = (0..t).map(|i| vecops::norm(z.row(i)).max(1e-12)).collect();
    let mut h = Matrix::zeros(t, t);
    for i in 0..t {
        h[(i, i)] = 1.0;
        for j in (i + 1)..t {
            let v = vecops::dot(z.row(i), z.row(j)) / (norms[i] * norms[j]);
            h[(i, j)] = v;
            h[(j, i)] = v;
        }
    }
    (h, norms)
}

/// Chain rule from `g = dL/dĥ` (diagonal entries ignored — `ĥ_ii ≡ 1` has
/// zero gradient) back to `dL/dZ`.
///
/// For `ĥ_ij = z_iᵀz_j / (‖z_i‖‖z_j‖)`:
/// `dL/dz_i = Σ_{j≠i} (g_ij + g_ji) · (z_j/(‖z_i‖‖z_j‖) − ĥ_ij z_i/‖z_i‖²)`.
///
/// # Panics
///
/// Panics if `h` or `g` is not `t × t` for a `t × k` batch `z`.
pub fn cosine_grad(z: &Matrix, h: &Matrix, norms: &[f64], g: &Matrix) -> Matrix {
    let t = z.rows();
    let k = z.cols();
    assert_eq!(h.shape(), (t, t), "cosine matrix shape mismatch");
    assert_eq!(g.shape(), (t, t), "upstream gradient shape mismatch");
    assert_eq!(norms.len(), t, "norm count mismatch");

    // S = g + gᵀ with zero diagonal.
    let mut s = Matrix::zeros(t, t);
    for i in 0..t {
        for j in 0..t {
            if i != j {
                s[(i, j)] = g[(i, j)] + g[(j, i)];
            }
        }
    }
    // Row-normalized codes.
    let mut zn = z.clone();
    for (i, &norm) in norms.iter().enumerate() {
        let inv = 1.0 / norm;
        for v in zn.row_mut(i) {
            *v *= inv;
        }
    }
    // First term: (S · Zn) scaled per-row by 1/‖z_i‖.
    let mut grad = s.matmul(&zn);
    for (i, &norm) in norms.iter().enumerate() {
        let inv = 1.0 / norm;
        for v in grad.row_mut(i) {
            *v *= inv;
        }
    }
    // Second term: −(Σ_j S_ij ĥ_ij) z_i / ‖z_i‖².
    for i in 0..t {
        let coef: f64 = (0..t).map(|j| s[(i, j)] * h[(i, j)]).sum();
        let scale = coef / (norms[i] * norms[i]);
        let zi_row: Vec<f64> = z.row(i).to_vec();
        let gi = grad.row_mut(i);
        for c in 0..k {
            gi[c] -= scale * zi_row[c];
        }
    }
    grad
}

/// Masked ℓ2 similarity-preservation loss and gradient:
/// `L = (Σ_ij w_ij (ĥ_ij − s_ij)²) / Σ_ij w_ij` over off-diagonal pairs,
/// for a target matrix `s` and non-negative weights `w` (0 = pair unused).
///
/// This is the workhorse of SSDH and MLS³RDUH, whose pseudo-label matrices
/// leave many pairs unlabeled.
///
/// # Panics
///
/// Panics if `target` or `weights` is not `t × t` for a `t × k` batch `z`.
pub fn masked_l2_loss_and_grad(z: &Matrix, target: &Matrix, weights: &Matrix) -> (f64, Matrix) {
    let t = z.rows();
    assert_eq!(target.shape(), (t, t), "target must be t × t");
    assert_eq!(weights.shape(), (t, t), "weights must be t × t");
    let (h, norms) = cosine_matrix(z);
    let total_w: f64 = (0..t)
        .flat_map(|i| (0..t).filter(move |&j| j != i).map(move |j| (i, j)))
        .map(|(i, j)| weights[(i, j)])
        .sum();
    if total_w <= 0.0 {
        return (0.0, Matrix::zeros(t, z.cols()));
    }
    let inv_w = 1.0 / total_w;
    let mut loss = 0.0;
    let mut g = Matrix::zeros(t, t);
    for i in 0..t {
        for j in 0..t {
            if i == j {
                continue;
            }
            let w = weights[(i, j)];
            if w <= 0.0 {
                continue;
            }
            let e = h[(i, j)] - target[(i, j)];
            loss += w * e * e * inv_w;
            g[(i, j)] = 2.0 * w * e * inv_w;
        }
    }
    (loss, cosine_grad(z, &h, &norms, &g))
}

/// Quantization penalty `β/t Σ_i ‖z_i − sgn(z_i)‖²` and its gradient, added
/// onto an existing gradient accumulator.
pub fn add_quantization_loss(z: &Matrix, beta: f64, grad: &mut Matrix) -> f64 {
    if beta <= 0.0 {
        return 0.0;
    }
    let t = z.rows();
    let scale = beta / t as f64;
    let mut loss = 0.0;
    for i in 0..t {
        let gi = grad.row_mut(i);
        for (c, &v) in z.row(i).iter().enumerate() {
            let b = if v > 0.0 { 1.0 } else { -1.0 };
            let d = v - b;
            loss += scale * d * d;
            gi[c] += 2.0 * scale * d;
        }
    }
    loss
}

/// Two-view contrastive loss (NT-Xent-style, anchored on view 1) — CIB's
/// `J_c` (Qiu et al., IJCAI '21, Eq. 10 of the UHSCM paper) in the
/// conventional −log form. Returns the loss and the gradients with respect
/// to each view.
///
/// For each item `i`, the anchor is view-1 row `i`, the positive is view-2
/// row `i`, and the negatives are both views of every other item.
///
/// # Panics
///
/// Panics if the two views do not share the same `t × k` shape.
pub fn two_view_contrastive_loss_and_grad(
    z1: &Matrix,
    z2: &Matrix,
    gamma: f64,
) -> (f64, Matrix, Matrix) {
    let t = z1.rows();
    assert_eq!(z1.shape(), z2.shape(), "views must share a shape");
    assert!(t >= 2, "contrastive loss needs at least two items");
    assert!(gamma > 0.0, "temperature must be positive");

    // Stack views: rows 0..t are view 1, rows t..2t are view 2.
    let k = z1.cols();
    let mut stacked = Matrix::zeros(2 * t, k);
    for i in 0..t {
        stacked.row_mut(i).copy_from_slice(z1.row(i));
        stacked.row_mut(t + i).copy_from_slice(z2.row(i));
    }
    let (h, norms) = cosine_matrix(&stacked);
    let mut g = Matrix::zeros(2 * t, 2 * t);
    let inv_gamma = 1.0 / gamma;
    let mut loss = 0.0;
    for i in 0..t {
        let pos = t + i;
        let a = (h[(i, pos)] * inv_gamma).exp();
        let negatives: Vec<usize> = (0..2 * t).filter(|&j| j != i && j != pos).collect();
        let b: f64 = negatives.iter().map(|&j| (h[(i, j)] * inv_gamma).exp()).sum();
        let denom = a + b;
        loss += (denom.ln() - h[(i, pos)] * inv_gamma) / t as f64;
        let w = 1.0 / t as f64;
        g[(i, pos)] += w * inv_gamma * (a / denom - 1.0);
        for &j in &negatives {
            g[(i, j)] += w * inv_gamma * (h[(i, j)] * inv_gamma).exp() / denom;
        }
    }
    let grad = cosine_grad(&stacked, &h, &norms, &g);
    let mut g1 = Matrix::zeros(t, k);
    let mut g2 = Matrix::zeros(t, k);
    for i in 0..t {
        g1.row_mut(i).copy_from_slice(grad.row(i));
        g2.row_mut(i).copy_from_slice(grad.row(t + i));
    }
    (loss, g1, g2)
}

#[cfg(test)]
mod tests {
    use super::*;
    use uhscm_linalg::rng;

    #[test]
    fn cosine_matrix_matches_vecops() {
        let mut r = rng::seeded(1);
        let z = rng::gauss_matrix(&mut r, 5, 3, 1.0);
        let (h, _) = cosine_matrix(&z);
        for i in 0..5 {
            for j in 0..5 {
                let expected = if i == j { 1.0 } else { vecops::cosine(z.row(i), z.row(j)) };
                assert!((h[(i, j)] - expected).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn masked_l2_gradient_matches_finite_differences() {
        let mut r = rng::seeded(2);
        let z = rng::gauss_matrix(&mut r, 6, 4, 0.7);
        let mut target = Matrix::zeros(6, 6);
        let mut weights = Matrix::zeros(6, 6);
        for i in 0..6 {
            for j in 0..6 {
                if i != j {
                    target[(i, j)] = if (i + j) % 2 == 0 { 1.0 } else { -1.0 };
                    weights[(i, j)] = if (i * j) % 3 == 0 { 1.0 } else { 0.0 };
                }
            }
        }
        let (_, analytic) = masked_l2_loss_and_grad(&z, &target, &weights);
        let eps = 1e-6;
        for i in 0..6 {
            for c in 0..4 {
                let mut zp = z.clone();
                zp[(i, c)] += eps;
                let (lp, _) = masked_l2_loss_and_grad(&zp, &target, &weights);
                let mut zm = z.clone();
                zm[(i, c)] -= eps;
                let (lm, _) = masked_l2_loss_and_grad(&zm, &target, &weights);
                let numeric = (lp - lm) / (2.0 * eps);
                let denom = numeric.abs().max(analytic[(i, c)].abs()).max(1e-8);
                assert!(
                    (numeric - analytic[(i, c)]).abs() / denom < 1e-4,
                    "({i},{c}): numeric {numeric} vs {}",
                    analytic[(i, c)]
                );
            }
        }
    }

    #[test]
    fn fully_masked_loss_is_zero() {
        let mut r = rng::seeded(3);
        let z = rng::gauss_matrix(&mut r, 4, 3, 1.0);
        let (loss, grad) = masked_l2_loss_and_grad(&z, &Matrix::zeros(4, 4), &Matrix::zeros(4, 4));
        assert_eq!(loss, 0.0);
        assert_eq!(grad.max_abs(), 0.0);
    }

    #[test]
    fn quantization_gradient_matches_finite_differences() {
        let mut r = rng::seeded(4);
        let z = rng::gauss_matrix(&mut r, 4, 3, 0.4);
        let mut grad = Matrix::zeros(4, 3);
        let _ = add_quantization_loss(&z, 0.7, &mut grad);
        let eps = 1e-6;
        let loss_of = |zz: &Matrix| {
            let mut g = Matrix::zeros(4, 3);
            add_quantization_loss(zz, 0.7, &mut g)
        };
        for i in 0..4 {
            for c in 0..3 {
                let mut zp = z.clone();
                zp[(i, c)] += eps;
                let mut zm = z.clone();
                zm[(i, c)] -= eps;
                let numeric = (loss_of(&zp) - loss_of(&zm)) / (2.0 * eps);
                assert!((numeric - grad[(i, c)]).abs() < 1e-6);
            }
        }
    }
}
