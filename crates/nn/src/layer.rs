//! A fully-connected layer with a fused activation.

use crate::Activation;
use rand::Rng;
use uhscm_linalg::{par, Matrix};

/// `y = act(x W + b)` with cached forward state for back-propagation.
///
/// Shapes: `x: n × in`, `W: in × out`, `b: out`, `y: n × out`.
#[derive(Debug, Clone)]
pub struct Linear {
    pub weight: Matrix,
    pub bias: Vec<f64>,
    pub activation: Activation,
    /// Accumulated gradient for `weight` (same shape).
    pub grad_weight: Matrix,
    /// Accumulated gradient for `bias`.
    pub grad_bias: Vec<f64>,
    /// Input of the most recent training forward pass.
    input_cache: Option<Matrix>,
    /// Output (post-activation) of the most recent training forward pass.
    output_cache: Option<Matrix>,
}

impl Linear {
    /// Create a layer with Xavier-initialized weights and zero bias.
    pub fn new(fan_in: usize, fan_out: usize, activation: Activation, rng: &mut impl Rng) -> Self {
        Self {
            weight: crate::init::xavier_uniform(rng, fan_in, fan_out),
            bias: vec![0.0; fan_out],
            activation,
            grad_weight: Matrix::zeros(fan_in, fan_out),
            grad_bias: vec![0.0; fan_out],
            input_cache: None,
            output_cache: None,
        }
    }

    /// Reassemble a layer from persisted parts.
    ///
    /// # Panics
    /// Panics if the bias length does not match the weight columns.
    pub fn from_parts(weight: Matrix, bias: Vec<f64>, activation: Activation) -> Self {
        assert_eq!(bias.len(), weight.cols(), "bias length mismatch");
        let (rows, cols) = weight.shape();
        Self {
            weight,
            bias,
            activation,
            grad_weight: Matrix::zeros(rows, cols),
            grad_bias: vec![0.0; cols],
            input_cache: None,
            output_cache: None,
        }
    }

    /// Input dimensionality.
    pub fn fan_in(&self) -> usize {
        self.weight.rows()
    }

    /// Output dimensionality.
    pub fn fan_out(&self) -> usize {
        self.weight.cols()
    }

    /// Forward pass without caching (inference).
    pub fn infer(&self, x: &Matrix) -> Matrix {
        let mut y = x.matmul(&self.weight);
        // Checked before the activation: relu/clamp-style activations can
        // silently scrub a NaN (f64::max ignores it), hiding the layer
        // that actually produced the corruption.
        uhscm_linalg::check_finite!("Linear::forward", "pre-activation", &y);
        let cols = self.fan_out();
        let work = y.rows().saturating_mul(cols).saturating_mul(4);
        let fanned = par::try_par_row_bands_mut(y.as_mut_slice(), cols, work, |_, band| {
            for row in band.chunks_mut(cols) {
                bias_activate(row, &self.bias, self.activation);
            }
        });
        if !fanned {
            for i in 0..y.rows() {
                bias_activate(y.row_mut(i), &self.bias, self.activation);
            }
        }
        uhscm_linalg::check_finite!("Linear::forward", "output", &y);
        y
    }

    /// Forward pass that caches input and output for a later [`Self::backward`].
    pub fn forward(&mut self, x: &Matrix) -> Matrix {
        let y = self.infer(x);
        self.input_cache = Some(x.clone());
        self.output_cache = Some(y.clone());
        y
    }

    /// Backward pass: given `dL/dy`, accumulate `dL/dW`, `dL/db` and return
    /// `dL/dx`.
    ///
    /// # Panics
    /// Panics if called without a preceding [`Self::forward`].
    pub fn backward(&mut self, grad_output: &Matrix) -> Matrix {
        let x = self.input_cache.as_ref().expect("backward before forward");
        let y = self.output_cache.as_ref().expect("backward before forward");
        assert_eq!(grad_output.shape(), y.shape(), "grad_output shape mismatch");

        // δ = dL/dy ⊙ act'(y)   (n × out)
        let mut delta = grad_output.clone();
        let cols = delta.cols();
        let act = self.activation;
        let work = delta.rows().saturating_mul(cols).saturating_mul(2);
        let fanned = par::try_par_row_bands_mut(delta.as_mut_slice(), cols, work, |row0, band| {
            for (bi, drow) in band.chunks_mut(cols).enumerate() {
                scale_by_derivative(drow, y.row(row0 + bi), act);
            }
        });
        if !fanned {
            for i in 0..delta.rows() {
                scale_by_derivative(delta.row_mut(i), y.row(i), act);
            }
        }

        // dL/dW += xᵀ δ ;  dL/db += Σ_rows δ ;  dL/dx = δ Wᵀ.
        // The t_matmul and matmul_t kernels fan out over output rows; the
        // bias gradient fans out over *columns*, so every slot keeps the
        // serial ascending-row accumulation order (bitwise identical for
        // any thread count).
        self.grad_weight.axpy(1.0, &x.t_matmul(&delta));
        let n = delta.rows();
        let fanned = par::try_par_row_bands_mut(
            &mut self.grad_bias,
            1,
            n.saturating_mul(cols),
            |col0, band| {
                for i in 0..n {
                    let drow = delta.row(i);
                    for (t, g) in band.iter_mut().enumerate() {
                        *g += drow[col0 + t];
                    }
                }
            },
        );
        if !fanned {
            for i in 0..n {
                for (g, &d) in self.grad_bias.iter_mut().zip(delta.row(i)) {
                    *g += d;
                }
            }
        }
        let grad_input = delta.matmul_t(&self.weight);
        uhscm_linalg::check_finite!("Linear::backward", "grad_weight", &self.grad_weight);
        uhscm_linalg::check_slice_finite!("Linear::backward", "grad_bias", &self.grad_bias);
        uhscm_linalg::check_finite!("Linear::backward", "grad_input", &grad_input);
        grad_input
    }

    /// Reset accumulated gradients to zero.
    pub fn zero_grad(&mut self) {
        self.grad_weight.scale(0.0);
        for g in &mut self.grad_bias {
            *g = 0.0;
        }
    }

    /// Number of trainable parameters.
    pub fn param_count(&self) -> usize {
        self.weight.rows() * self.weight.cols() + self.bias.len()
    }
}

/// Fused bias-add + activation over one output row — the per-row body
/// shared by the serial and banded paths of [`Linear::infer`].
#[inline]
fn bias_activate(row: &mut [f64], bias: &[f64], act: Activation) {
    for (v, &b) in row.iter_mut().zip(bias) {
        *v = act.apply(*v + b);
    }
}

/// `δ_row ⊙= act'(y_row)` — the per-row body shared by the serial and
/// banded paths of [`Linear::backward`].
#[inline]
fn scale_by_derivative(drow: &mut [f64], y_row: &[f64], act: Activation) {
    for (d, &yv) in drow.iter_mut().zip(y_row) {
        *d *= act.derivative_from_output(yv);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uhscm_linalg::rng::seeded;

    #[test]
    fn forward_shape_and_linearity() {
        let mut rng = seeded(1);
        let mut layer = Linear::new(3, 2, Activation::Identity, &mut rng);
        let x = Matrix::from_rows(&[vec![1.0, 0.0, 0.0], vec![0.0, 2.0, 0.0]]);
        let y = layer.forward(&x);
        assert_eq!(y.shape(), (2, 2));
        // Row 0 should equal weight row 0; row 1 twice weight row 1.
        assert!((y[(0, 0)] - layer.weight[(0, 0)]).abs() < 1e-12);
        assert!((y[(1, 1)] - 2.0 * layer.weight[(1, 1)]).abs() < 1e-12);
    }

    #[test]
    fn bias_is_added_before_activation() {
        let mut rng = seeded(2);
        let mut layer = Linear::new(1, 1, Activation::Relu, &mut rng);
        layer.weight[(0, 0)] = 0.0;
        layer.bias[0] = -3.0;
        let y = layer.forward(&Matrix::from_rows(&[vec![5.0]]));
        assert_eq!(y[(0, 0)], 0.0); // relu(-3) = 0
        layer.bias[0] = 3.0;
        let y = layer.forward(&Matrix::from_rows(&[vec![5.0]]));
        assert_eq!(y[(0, 0)], 3.0);
    }

    #[test]
    #[should_panic(expected = "backward before forward")]
    fn backward_without_forward_panics() {
        let mut rng = seeded(3);
        let mut layer = Linear::new(2, 2, Activation::Tanh, &mut rng);
        let _ = layer.backward(&Matrix::zeros(1, 2));
    }

    #[test]
    fn zero_grad_clears() {
        let mut rng = seeded(4);
        let mut layer = Linear::new(2, 2, Activation::Tanh, &mut rng);
        let x = Matrix::from_rows(&[vec![1.0, -1.0]]);
        let y = layer.forward(&x);
        let _ = layer.backward(&y);
        assert!(layer.grad_weight.max_abs() > 0.0);
        layer.zero_grad();
        assert_eq!(layer.grad_weight.max_abs(), 0.0);
        assert!(layer.grad_bias.iter().all(|&g| g == 0.0));
    }

    #[test]
    fn infer_matches_forward() {
        let mut rng = seeded(5);
        let mut layer = Linear::new(4, 3, Activation::Tanh, &mut rng);
        let x = uhscm_linalg::rng::gauss_matrix(&mut rng, 5, 4, 1.0);
        let a = layer.infer(&x);
        let b = layer.forward(&x);
        assert_eq!(a, b);
    }
}
