//! Finite-difference gradient verification.
//!
//! Used throughout the test suites (here and in `uhscm-core`) to prove that
//! every analytic backward pass — layers, the MLP stack, and the full Eq. 11
//! hashing loss — matches the numerical gradient of the corresponding loss.

use crate::Mlp;
use uhscm_linalg::Matrix;

/// Maximum relative gradient error between the analytic gradients produced by
/// `Mlp::backward` and central finite differences of `loss`.
///
/// `loss` must be a deterministic function of the network *output*. The
/// caller provides `grad_of_loss`, the analytic `dL/dy`, evaluated at the
/// forward output.
///
/// Returns the worst relative error over all parameters; well-implemented
/// backward passes land below `1e-5`.
pub fn grad_check(
    mlp: &mut Mlp,
    x: &Matrix,
    loss: &dyn Fn(&Matrix) -> f64,
    grad_of_loss: &dyn Fn(&Matrix) -> Matrix,
) -> f64 {
    // Analytic gradients.
    mlp.zero_grad();
    let y = mlp.forward(x);
    let dy = grad_of_loss(&y);
    mlp.backward(&dy);
    let analytic = mlp.flat_grads();

    // Numeric gradients by central differences over flattened parameters.
    let params = mlp.flat_params();
    let eps = 1e-5;
    let mut worst = 0.0f64;
    for i in 0..params.len() {
        let mut p_plus = params.clone();
        p_plus[i] += eps;
        mlp.set_flat_params(&p_plus);
        let l_plus = loss(&mlp.infer(x));

        let mut p_minus = params.clone();
        p_minus[i] -= eps;
        mlp.set_flat_params(&p_minus);
        let l_minus = loss(&mlp.infer(x));

        let numeric = (l_plus - l_minus) / (2.0 * eps);
        let denom = analytic[i].abs().max(numeric.abs()).max(1e-8);
        worst = worst.max((analytic[i] - numeric).abs() / denom);
    }
    mlp.set_flat_params(&params);
    mlp.zero_grad();
    worst
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Activation;
    use uhscm_linalg::rng::seeded;

    fn sum_of_squares(y: &Matrix) -> f64 {
        y.as_slice().iter().map(|v| v * v).sum()
    }

    fn grad_sum_of_squares(y: &Matrix) -> Matrix {
        y.map(|v| 2.0 * v)
    }

    #[test]
    fn linear_identity_network() {
        let mut rng = seeded(1);
        let mut mlp = Mlp::new(&[3, 2], &[Activation::Identity], &mut rng);
        let x = uhscm_linalg::rng::gauss_matrix(&mut rng, 4, 3, 1.0);
        let err = grad_check(&mut mlp, &x, &sum_of_squares, &grad_sum_of_squares);
        assert!(err < 1e-5, "gradient error {err}");
    }

    #[test]
    fn tanh_network() {
        let mut rng = seeded(2);
        let mut mlp = Mlp::new(&[4, 3], &[Activation::Tanh], &mut rng);
        let x = uhscm_linalg::rng::gauss_matrix(&mut rng, 3, 4, 1.0);
        let err = grad_check(&mut mlp, &x, &sum_of_squares, &grad_sum_of_squares);
        assert!(err < 1e-5, "gradient error {err}");
    }

    #[test]
    fn deep_relu_tanh_network() {
        let mut rng = seeded(3);
        let mut mlp = Mlp::hashing_network(6, &[5, 4], 3, &mut rng);
        let x = uhscm_linalg::rng::gauss_matrix(&mut rng, 5, 6, 1.0);
        let err = grad_check(&mut mlp, &x, &sum_of_squares, &grad_sum_of_squares);
        assert!(err < 1e-4, "gradient error {err}");
    }

    #[test]
    fn sigmoid_network_with_nontrivial_loss() {
        // L = Σ (y − 0.25)³ — asymmetric, catches sign errors.
        let loss = |y: &Matrix| y.as_slice().iter().map(|v| (v - 0.25).powi(3)).sum();
        let grad = |y: &Matrix| y.map(|v| 3.0 * (v - 0.25) * (v - 0.25));
        let mut rng = seeded(4);
        let mut mlp = Mlp::new(&[3, 2], &[Activation::Sigmoid], &mut rng);
        let x = uhscm_linalg::rng::gauss_matrix(&mut rng, 4, 3, 1.0);
        let err = grad_check(&mut mlp, &x, &loss, &grad);
        assert!(err < 1e-5, "gradient error {err}");
    }
}
