//! Adversarial persistence properties: `Mlp::load` must survive arbitrary
//! corruption of a saved model. The online service (`uhscm-serve`) loads
//! model files from operator-supplied paths at startup, so *every* byte-level
//! mutation — bit flips anywhere in the stream, truncation at any offset —
//! has to surface as a `PersistError`, never a panic, a wrong-but-accepted
//! model, or an attacker-sized allocation.

use proptest::prelude::*;
use uhscm_linalg::rng::seeded;
use uhscm_nn::Mlp;

/// A small saved model with a couple of layers; varying the seed varies
/// every weight byte, so corruption offsets land on genuinely different
/// content across cases.
fn saved_model(seed: u64) -> Vec<u8> {
    let mut rng = seeded(seed);
    let mlp = Mlp::hashing_network(5, &[4], 3, &mut rng);
    let mut buf = Vec::new();
    mlp.save(&mut buf).expect("writing to a Vec cannot fail");
    buf
}

proptest! {
    /// Flipping any bits of any single byte is always detected: the header
    /// fields are validated and the FNV-1a trailer covers the payload (each
    /// hash step is a state bijection, so a single-byte difference can
    /// never collide).
    #[test]
    fn single_byte_corruption_always_rejected(
        seed in any::<u64>(),
        offset in 0usize..100_000,
        flip in 1u8..=255,
    ) {
        let mut buf = saved_model(seed);
        let offset = offset % buf.len();
        buf[offset] ^= flip;
        match Mlp::load(&mut buf.as_slice()) {
            Err(_) => {}
            Ok(_) => prop_assert!(false, "corruption at byte {offset} was silently accepted"),
        }
    }

    /// Truncation at any point — including mid-header, mid-weight and
    /// inside the checksum trailer — is an error, never a panic and never
    /// an allocation beyond the bytes actually present.
    #[test]
    fn truncation_always_rejected(seed in any::<u64>(), cut in 0usize..100_000) {
        let buf = saved_model(seed);
        let cut = cut % buf.len(); // strictly shorter than the full file
        let truncated = &buf[..cut];
        prop_assert!(Mlp::load(&mut &truncated[..]).is_err(), "truncation at {cut} accepted");
    }

    /// Corrupting a whole aligned 8-byte word (e.g. one weight) is detected
    /// even when the result is a perfectly plausible float payload.
    #[test]
    fn word_corruption_always_rejected(
        seed in any::<u64>(),
        word in 0usize..10_000,
        xor in 1u64..u64::MAX,
    ) {
        let mut buf = saved_model(seed);
        let words = buf.len() / 8;
        let start = (word % words) * 8;
        let mut w = [0u8; 8];
        w.copy_from_slice(&buf[start..start + 8]);
        let patched = (u64::from_le_bytes(w) ^ xor).to_le_bytes();
        buf[start..start + 8].copy_from_slice(&patched);
        prop_assert!(Mlp::load(&mut buf.as_slice()).is_err(), "word at {start} accepted");
    }
}

#[test]
fn untouched_model_still_round_trips() {
    let buf = saved_model(7);
    let loaded = Mlp::load(&mut buf.as_slice()).expect("pristine file must load");
    let mut rng = seeded(7);
    let original = Mlp::hashing_network(5, &[4], 3, &mut rng);
    assert_eq!(loaded.flat_params(), original.flat_params());
}
