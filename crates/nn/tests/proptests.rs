//! Property-based tests for the neural-network runtime.

use proptest::prelude::*;
use uhscm_linalg::rng;
use uhscm_nn::pairwise::{cosine_grad, cosine_matrix, two_view_contrastive_loss_and_grad};
use uhscm_nn::{Activation, Mlp, Sgd};

fn arch() -> impl Strategy<Value = (usize, Vec<usize>, usize)> {
    (1usize..8, prop::collection::vec(1usize..8, 0..3), 1usize..8)
}

proptest! {
    #[test]
    fn forward_backward_shapes((input, hidden, out) in arch(), n in 1usize..6, seed in any::<u64>()) {
        let mut r = rng::seeded(seed);
        let mut mlp = Mlp::hashing_network(input, &hidden, out, &mut r);
        let x = rng::gauss_matrix(&mut r, n, input, 1.0);
        let y = mlp.forward(&x);
        prop_assert_eq!(y.shape(), (n, out));
        let gx = mlp.backward(&y);
        prop_assert_eq!(gx.shape(), (n, input));
        prop_assert_eq!(mlp.flat_grads().len(), mlp.param_count());
    }

    #[test]
    fn persistence_round_trip((input, hidden, out) in arch(), seed in any::<u64>()) {
        let mut r = rng::seeded(seed);
        let mlp = Mlp::hashing_network(input, &hidden, out, &mut r);
        let mut blob = Vec::new();
        mlp.save(&mut blob).unwrap();
        let loaded = Mlp::load(&mut blob.as_slice()).unwrap();
        prop_assert_eq!(mlp.flat_params(), loaded.flat_params());
        let x = rng::gauss_matrix(&mut r, 3, input, 1.0);
        let original = mlp.infer(&x);
        let reloaded = loaded.infer(&x);
        prop_assert_eq!(original.as_slice(), reloaded.as_slice());
    }

    #[test]
    fn tanh_outputs_bounded((input, hidden, out) in arch(), seed in any::<u64>()) {
        let mut r = rng::seeded(seed);
        let mlp = Mlp::hashing_network(input, &hidden, out, &mut r);
        let x = rng::gauss_matrix(&mut r, 4, input, 10.0);
        let y = mlp.infer(&x);
        prop_assert!(y.as_slice().iter().all(|&v| (-1.0..=1.0).contains(&v)));
    }

    #[test]
    fn sgd_step_is_noop_with_zero_grads(seed in any::<u64>()) {
        let mut r = rng::seeded(seed);
        let mut mlp = Mlp::hashing_network(4, &[3], 2, &mut r);
        let mut sgd = Sgd::new(0.1, 0.9, 0.0);
        let before = mlp.flat_params();
        mlp.zero_grad();
        sgd.step(&mut mlp);
        prop_assert_eq!(mlp.flat_params(), before);
    }

    #[test]
    fn cosine_grad_orthogonal_to_scaling(seed in any::<u64>(), t in 2usize..8, k in 2usize..6) {
        // ĥ is scale-invariant in each z_i, so dL/dz_i ⊥ z_i for any
        // upstream gradient.
        let mut r = rng::seeded(seed);
        let z = rng::gauss_matrix(&mut r, t, k, 1.0);
        let g = rng::gauss_matrix(&mut r, t, t, 1.0);
        let (h, norms) = cosine_matrix(&z);
        let grad = cosine_grad(&z, &h, &norms, &g);
        for i in 0..t {
            let dot: f64 = grad.row(i).iter().zip(z.row(i)).map(|(a, b)| a * b).sum();
            let scale = uhscm_linalg::vecops::norm(grad.row(i)) * norms[i];
            prop_assert!(dot.abs() <= 1e-8 * scale.max(1.0), "row {i}: dot {dot}");
        }
    }

    #[test]
    fn contrastive_loss_nonnegative_and_finite(seed in any::<u64>(), t in 2usize..8, k in 2usize..6) {
        let mut r = rng::seeded(seed);
        let z1 = rng::gauss_matrix(&mut r, t, k, 0.8);
        let z2 = rng::gauss_matrix(&mut r, t, k, 0.8);
        let (loss, g1, g2) = two_view_contrastive_loss_and_grad(&z1, &z2, 0.3);
        prop_assert!(loss.is_finite());
        prop_assert!(loss >= -1e-12, "negative −log loss {loss}");
        prop_assert!(g1.as_slice().iter().all(|v| v.is_finite()));
        prop_assert!(g2.as_slice().iter().all(|v| v.is_finite()));
    }

    #[test]
    fn activations_monotone_nondecreasing(a in -5.0..5.0f64, b in -5.0..5.0f64) {
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        for act in [Activation::Identity, Activation::Tanh, Activation::Relu, Activation::Sigmoid] {
            prop_assert!(act.apply(lo) <= act.apply(hi) + 1e-12, "{act:?}");
        }
    }
}

proptest! {
    #[test]
    fn batched_backward_parallel_matches_serial_bitwise(
        (input, hidden, out) in arch(),
        n in 1usize..7,
        seed in any::<u64>(),
    ) {
        use uhscm_linalg::par;
        let mut r = rng::seeded(seed);
        let mlp = Mlp::hashing_network(input, &hidden, out, &mut r);
        let x = rng::gauss_matrix(&mut r, n, input, 1.0);
        let run = |threads: usize| {
            par::with_threads(threads, || {
                let mut net = mlp.clone();
                let y = net.forward(&x);
                let gx = net.backward(&y);
                (y, gx, net.flat_grads())
            })
        };
        let (y1, gx1, g1) = run(1);
        for threads in [2usize, 3, 8] {
            let (yt, gxt, gt) = run(threads);
            prop_assert_eq!(y1.as_slice(), yt.as_slice());
            prop_assert_eq!(gx1.as_slice(), gxt.as_slice());
            prop_assert_eq!(&g1, &gt);
        }
    }
}
