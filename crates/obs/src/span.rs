//! Hierarchical timed spans.
//!
//! A span is an RAII guard: [`span`] pushes the name onto a thread-local
//! stack and takes a clock reading; dropping the guard pops the stack and
//! emits one `"span"` event carrying the name, the slash-joined ancestry
//! path and the duration. Because children drop before their parents, the
//! `path` field alone reconstructs the span tree offline — no span ids and
//! no open/close event pairing needed.
//!
//! When tracing is disabled the guard is inert: no clock read, no stack
//! push, no allocation.

use std::cell::RefCell;
use std::time::Instant;

use crate::{registry, sink};

thread_local! {
    /// Names of the spans currently open on this thread, outermost first.
    static STACK: RefCell<Vec<&'static str>> = const { RefCell::new(Vec::new()) };
}

/// RAII guard returned by [`span`]. Emits the span event when dropped.
#[must_use = "a span measures the scope it is bound to; dropping it immediately records nothing useful"]
pub struct Span {
    name: &'static str,
    /// `None` means tracing was disabled at creation: drop does nothing.
    start: Option<Instant>,
}

/// Open a gated timed span. When tracing is disabled this returns an inert
/// guard and costs one relaxed atomic load.
#[inline]
pub fn span(name: &'static str) -> Span {
    if !crate::enabled() {
        return Span { name, start: None };
    }
    STACK.with(|s| s.borrow_mut().push(name));
    Span { name, start: Some(Instant::now()) }
}

impl Drop for Span {
    fn drop(&mut self) {
        let Some(start) = self.start else {
            return;
        };
        let dur_ns = start.elapsed().as_nanos() as u64;
        let path = STACK.with(|s| {
            let mut stack = s.borrow_mut();
            let joined = stack.join("/");
            stack.pop();
            joined
        });
        // The guard was created with tracing on, so keep the record coherent
        // even if tracing was toggled while the span was open.
        sink::emit_unguarded(
            "span",
            &[
                ("name", sink::Field::Str(self.name.to_string())),
                ("path", sink::Field::Str(path)),
                ("dur_ns", sink::Field::U64(dur_ns)),
            ],
        );
        registry::counter_add_unguarded(&format!("span.{}.count", self.name), 1);
        registry::counter_add_unguarded(&format!("span.{}.total_ns", self.name), dur_ns);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_span_is_inert() {
        let _guard = crate::test_lock::hold();
        crate::disable();
        crate::reset();
        {
            let _s = span("never");
            STACK.with(|s| assert!(s.borrow().is_empty(), "inert span must not touch the stack"));
        }
        assert!(registry::snapshot().counters.is_empty());
    }

    #[test]
    fn nested_spans_record_paths_and_counts() {
        let _guard = crate::test_lock::hold();
        crate::reset();
        let buf = std::sync::Arc::new(std::sync::Mutex::new(Vec::new()));
        crate::enable_with_writer(Box::new(SharedBuf(buf.clone())));
        {
            let _outer = span("outer");
            {
                let _inner = span("inner");
            }
        }
        crate::disable();
        let text = String::from_utf8(match buf.lock() {
            Ok(g) => g.clone(),
            Err(p) => p.into_inner().clone(),
        })
        .expect("utf8 trace");
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2, "{text}");
        assert!(lines[0].contains("\"path\":\"outer/inner\""), "{text}");
        assert!(lines[1].contains("\"path\":\"outer\""), "{text}");
        let snap = registry::snapshot();
        assert_eq!(snap.counters.get("span.outer.count"), Some(&1));
        assert_eq!(snap.counters.get("span.inner.count"), Some(&1));
        crate::reset();
    }

    struct SharedBuf(std::sync::Arc<std::sync::Mutex<Vec<u8>>>);

    impl std::io::Write for SharedBuf {
        fn write(&mut self, data: &[u8]) -> std::io::Result<usize> {
            match self.0.lock() {
                Ok(mut g) => g.extend_from_slice(data),
                Err(mut p) => p.get_mut().extend_from_slice(data),
            }
            Ok(data.len())
        }

        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }
}
