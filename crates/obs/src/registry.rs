//! The global metric registry: counters, gauges and histograms.
//!
//! All writers funnel through one mutex-guarded map set; that is deliberate.
//! Metrics are only recorded when tracing is enabled, so the lock is never
//! touched on the production fast path, and a single registry keeps the
//! end-of-process summary trivially consistent.

use std::collections::BTreeMap;
use std::sync::{Mutex, MutexGuard};

/// Aggregate view of one histogram.
#[derive(Debug, Clone, PartialEq)]
pub struct HistogramSnapshot {
    pub count: u64,
    pub sum: f64,
    pub min: f64,
    pub max: f64,
}

impl HistogramSnapshot {
    /// Mean recorded value (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }
}

/// Point-in-time copy of the whole registry, keys sorted.
#[derive(Debug, Clone, Default)]
pub struct RegistrySnapshot {
    pub counters: BTreeMap<String, u64>,
    pub gauges: BTreeMap<String, f64>,
    pub histograms: BTreeMap<String, HistogramSnapshot>,
}

#[derive(Default)]
struct Registry {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, f64>,
    histograms: BTreeMap<String, Histogram>,
}

#[derive(Clone)]
struct Histogram {
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
}

impl Histogram {
    fn record(&mut self, v: f64) {
        self.count += 1;
        self.sum += v;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }
}

static REGISTRY: Mutex<Option<Registry>> = Mutex::new(None);

/// Lock the registry, recovering from a poisoned lock: telemetry must keep
/// working even if some other thread panicked mid-update.
fn lock() -> MutexGuard<'static, Option<Registry>> {
    match REGISTRY.lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

/// Add `delta` to a monotone counter (gated: no-op when tracing is off).
#[inline]
pub fn counter_add(name: &str, delta: u64) {
    if crate::enabled() {
        counter_add_unguarded(name, delta);
    }
}

/// Set a gauge to its latest value (gated: no-op when tracing is off).
#[inline]
pub fn gauge_set(name: &str, value: f64) {
    if crate::enabled() {
        gauge_set_unguarded(name, value);
    }
}

/// Record one observation into a histogram (gated: no-op when tracing is
/// off).
#[inline]
pub fn histogram_record(name: &str, value: f64) {
    if crate::enabled() {
        histogram_record_unguarded(name, value);
    }
}

/// Ungated [`counter_add`]; only for code that already holds the gate
/// verdict (enforced outside `crates/obs` by the `obs-gated` lint rule).
pub fn counter_add_unguarded(name: &str, delta: u64) {
    let mut reg = lock();
    let reg = reg.get_or_insert_with(Registry::default);
    match reg.counters.get_mut(name) {
        Some(v) => *v += delta,
        None => {
            reg.counters.insert(name.to_string(), delta);
        }
    }
}

/// Ungated [`gauge_set`] (see [`counter_add_unguarded`]).
pub fn gauge_set_unguarded(name: &str, value: f64) {
    let mut reg = lock();
    let reg = reg.get_or_insert_with(Registry::default);
    match reg.gauges.get_mut(name) {
        Some(v) => *v = value,
        None => {
            reg.gauges.insert(name.to_string(), value);
        }
    }
}

/// Ungated [`histogram_record`] (see [`counter_add_unguarded`]).
pub fn histogram_record_unguarded(name: &str, value: f64) {
    let mut reg = lock();
    let reg = reg.get_or_insert_with(Registry::default);
    match reg.histograms.get_mut(name) {
        Some(h) => h.record(value),
        None => {
            let mut h =
                Histogram { count: 0, sum: 0.0, min: f64::INFINITY, max: f64::NEG_INFINITY };
            h.record(value);
            reg.histograms.insert(name.to_string(), h);
        }
    }
}

/// Copy out the current registry contents.
pub fn snapshot() -> RegistrySnapshot {
    let reg = lock();
    let Some(reg) = reg.as_ref() else {
        return RegistrySnapshot::default();
    };
    RegistrySnapshot {
        counters: reg.counters.clone(),
        gauges: reg.gauges.clone(),
        histograms: reg
            .histograms
            .iter()
            .map(|(k, h)| {
                (
                    k.clone(),
                    HistogramSnapshot { count: h.count, sum: h.sum, min: h.min, max: h.max },
                )
            })
            .collect(),
    }
}

/// Drop every recorded metric (tests; multi-run tools).
pub fn reset() {
    *lock() = None;
}

/// Human-readable dump of the registry, one metric per line — what the CLI
/// and examples print at process end.
pub fn summary_string() -> String {
    use std::fmt::Write as _;
    let snap = snapshot();
    let mut out = format!(
        "obs summary: {} counters, {} gauges, {} histograms\n",
        snap.counters.len(),
        snap.gauges.len(),
        snap.histograms.len()
    );
    for (k, v) in &snap.counters {
        let _ = writeln!(out, "  counter   {k} = {v}");
    }
    for (k, v) in &snap.gauges {
        let _ = writeln!(out, "  gauge     {k} = {v}");
    }
    for (k, h) in &snap.histograms {
        let _ = writeln!(
            out,
            "  histogram {k}: n={} mean={:.3} min={:.3} max={:.3}",
            h.count,
            h.mean(),
            h.min,
            h.max
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unguarded_writers_accumulate() {
        let _guard = crate::test_lock::hold();
        reset();
        counter_add_unguarded("c", 1);
        counter_add_unguarded("c", 2);
        gauge_set_unguarded("g", 1.5);
        gauge_set_unguarded("g", 2.5);
        histogram_record_unguarded("h", 1.0);
        histogram_record_unguarded("h", 3.0);
        let snap = snapshot();
        assert_eq!(snap.counters.get("c"), Some(&3));
        assert_eq!(snap.gauges.get("g"), Some(&2.5));
        let h = snap.histograms.get("h").expect("histogram recorded");
        assert_eq!(h.count, 2);
        assert!((h.mean() - 2.0).abs() < 1e-12);
        assert!((h.min - 1.0).abs() < 1e-12);
        assert!((h.max - 3.0).abs() < 1e-12);
        let text = summary_string();
        assert!(text.contains("counter   c = 3"), "{text}");
        reset();
        assert!(snapshot().counters.is_empty());
    }
}
