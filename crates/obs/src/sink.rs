//! The JSON-lines event sink.
//!
//! One JSON object per line, written to whatever writer is installed
//! (a `BufWriter<File>` in production, an in-memory buffer in tests).
//! Every event carries three envelope fields added here:
//!
//! * `seq`  — process-global monotone sequence number,
//! * `t_us` — microseconds since the first event was emitted,
//! * `type` — the event type string.
//!
//! Events are flushed line-by-line so a trace is readable even if the
//! process dies without calling [`crate::finish`]. The sink is only touched
//! when tracing is enabled, so this costs nothing on the production path.

use std::io::Write;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard, OnceLock};
use std::time::Instant;

use crate::registry;

/// A typed field value; rendered as a JSON scalar.
#[derive(Debug, Clone)]
pub enum Field {
    U64(u64),
    I64(i64),
    F64(f64),
    Str(String),
    Bool(bool),
}

static SINK: Mutex<Option<Box<dyn Write + Send>>> = Mutex::new(None);
static SEQ: AtomicU64 = AtomicU64::new(0);
static START: OnceLock<Instant> = OnceLock::new();

fn lock() -> MutexGuard<'static, Option<Box<dyn Write + Send>>> {
    match SINK.lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

/// Install a writer as the event sink, replacing (and flushing) any
/// previous one. Called by [`crate::enable_to_file`] and friends.
pub fn install(w: Box<dyn Write + Send>) {
    let mut sink = lock();
    if let Some(old) = sink.as_mut() {
        let _ = old.flush();
    }
    *sink = Some(w);
}

/// Flush and drop the current sink, if any.
pub fn uninstall() {
    let mut sink = lock();
    if let Some(old) = sink.as_mut() {
        let _ = old.flush();
    }
    *sink = None;
}

/// Flush the current sink without dropping it.
pub fn flush() {
    if let Some(w) = lock().as_mut() {
        let _ = w.flush();
    }
}

/// Emit one event (gated: no-op when tracing is off).
#[inline]
pub fn emit(event_type: &str, fields: &[(&str, Field)]) {
    if crate::enabled() {
        emit_unguarded(event_type, fields);
    }
}

/// Ungated [`emit`]; for obs-internal callers that already tested the gate
/// (banned outside `crates/obs` by the `obs-gated` lint rule). Silently does
/// nothing when no sink is installed — the registry may still be active.
pub fn emit_unguarded(event_type: &str, fields: &[(&str, Field)]) {
    let mut line = envelope(event_type);
    for (key, value) in fields {
        line.push(',');
        push_json_str(&mut line, key);
        line.push(':');
        push_field(&mut line, value);
    }
    line.push('}');
    line.push('\n');
    write_line(&line);
}

/// Write the `"summary"` event: the full registry contents as nested JSON
/// objects. Called once by [`crate::finish`].
pub fn emit_summary_unguarded() {
    let snap = registry::snapshot();
    let mut line = envelope("summary");
    line.push_str(",\"counters\":{");
    for (i, (k, v)) in snap.counters.iter().enumerate() {
        if i > 0 {
            line.push(',');
        }
        push_json_str(&mut line, k);
        line.push(':');
        line.push_str(&v.to_string());
    }
    line.push_str("},\"gauges\":{");
    for (i, (k, v)) in snap.gauges.iter().enumerate() {
        if i > 0 {
            line.push(',');
        }
        push_json_str(&mut line, k);
        line.push(':');
        push_f64(&mut line, *v);
    }
    line.push_str("},\"histograms\":{");
    for (i, (k, h)) in snap.histograms.iter().enumerate() {
        if i > 0 {
            line.push(',');
        }
        push_json_str(&mut line, k);
        line.push_str(":{\"count\":");
        line.push_str(&h.count.to_string());
        line.push_str(",\"sum\":");
        push_f64(&mut line, h.sum);
        line.push_str(",\"min\":");
        push_f64(&mut line, h.min);
        line.push_str(",\"max\":");
        push_f64(&mut line, h.max);
        line.push('}');
    }
    line.push_str("}}\n");
    write_line(&line);
}

/// Open a JSON object with the `seq`/`t_us`/`type` envelope fields (no
/// closing brace).
fn envelope(event_type: &str) -> String {
    let seq = SEQ.fetch_add(1, Ordering::Relaxed);
    let t_us = START.get_or_init(Instant::now).elapsed().as_micros() as u64;
    let mut line = String::with_capacity(96);
    line.push_str("{\"seq\":");
    line.push_str(&seq.to_string());
    line.push_str(",\"t_us\":");
    line.push_str(&t_us.to_string());
    line.push_str(",\"type\":");
    push_json_str(&mut line, event_type);
    line
}

fn write_line(line: &str) {
    if let Some(w) = lock().as_mut() {
        let _ = w.write_all(line.as_bytes());
        // Line-buffered on purpose: a crashed run still leaves a usable
        // trace, and the sink is off the production path entirely.
        let _ = w.flush();
    }
}

fn push_field(out: &mut String, field: &Field) {
    match field {
        Field::U64(v) => out.push_str(&v.to_string()),
        Field::I64(v) => out.push_str(&v.to_string()),
        Field::F64(v) => push_f64(out, *v),
        Field::Str(v) => push_json_str(out, v),
        Field::Bool(v) => out.push_str(if *v { "true" } else { "false" }),
    }
}

/// JSON has no NaN/Infinity literals; encode non-finite values as `null`.
fn push_f64(out: &mut String, v: f64) {
    if v.is_finite() {
        out.push_str(&v.to_string());
    } else {
        out.push_str("null");
    }
}

/// Append `s` as a JSON string literal (quotes and escapes included).
fn push_json_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
pub(crate) mod tests {
    use super::*;

    #[test]
    fn string_escaping() {
        let mut out = String::new();
        push_json_str(&mut out, "a\"b\\c\nd\u{1}");
        assert_eq!(out, "\"a\\\"b\\\\c\\nd\\u0001\"");
    }

    #[test]
    fn nonfinite_floats_become_null() {
        let mut out = String::new();
        push_f64(&mut out, f64::NAN);
        out.push(' ');
        push_f64(&mut out, f64::INFINITY);
        out.push(' ');
        push_f64(&mut out, 1.5);
        assert_eq!(out, "null null 1.5");
    }

    #[test]
    fn events_carry_monotone_seq_and_fields() {
        let _guard = crate::test_lock::hold();
        crate::reset();
        let buf = std::sync::Arc::new(std::sync::Mutex::new(Vec::new()));
        crate::enable_with_writer(Box::new(super::tests::SharedBuf(buf.clone())));
        emit("alpha", &[("x", Field::U64(7)), ("s", Field::Str("hi".into()))]);
        emit("beta", &[("y", Field::F64(0.5))]);
        crate::disable();
        let text = String::from_utf8(match buf.lock() {
            Ok(g) => g.clone(),
            Err(p) => p.into_inner().clone(),
        })
        .expect("utf8 trace");
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2, "{text}");
        assert!(lines[0].contains("\"type\":\"alpha\""), "{text}");
        assert!(lines[0].contains("\"x\":7"), "{text}");
        assert!(lines[0].contains("\"s\":\"hi\""), "{text}");
        assert!(lines[1].contains("\"type\":\"beta\""), "{text}");
        let seq_of = |line: &str| {
            let rest = line.strip_prefix("{\"seq\":").expect("envelope starts with seq");
            rest.split(',').next().and_then(|v| v.parse::<u64>().ok()).expect("seq number")
        };
        assert!(seq_of(lines[0]) < seq_of(lines[1]), "seq must be monotone: {text}");
        crate::reset();
    }

    pub(crate) struct SharedBuf(pub std::sync::Arc<std::sync::Mutex<Vec<u8>>>);

    impl Write for SharedBuf {
        fn write(&mut self, data: &[u8]) -> std::io::Result<usize> {
            match self.0.lock() {
                Ok(mut g) => g.extend_from_slice(data),
                Err(mut p) => p.get_mut().extend_from_slice(data),
            }
            Ok(data.len())
        }

        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }
}
