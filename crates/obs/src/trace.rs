//! Reading a trace back: a minimal JSON parser and typed accessors.
//!
//! The workspace's vendored `serde_json` shim only *encodes*; this module is
//! the decoder for the one format the workspace produces — `trace.jsonl`
//! event lines. It is a small recursive-descent parser over the full JSON
//! grammar (objects, arrays, strings with escapes, numbers, literals), used
//! by the golden-trace regression test and any offline trace tooling.

use std::collections::BTreeMap;
use std::fmt;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// Member lookup on an object (`None` for other variants / missing key).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(map) => map.get(key),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(v) => Some(*v),
            _ => None,
        }
    }

    /// Numeric value as `u64` when it is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(v) if *v >= 0.0 && *v <= u64::MAX as f64 => {
                let u = *v as u64;
                // Integer check without an exact float compare.
                if (u as f64 - *v).abs() < 1e-9 {
                    Some(u)
                } else {
                    None
                }
            }
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(v) => Some(v),
            _ => None,
        }
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(v) => Some(*v),
            _ => None,
        }
    }

    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    pub fn as_obj(&self) -> Option<&BTreeMap<String, Json>> {
        match self {
            Json::Obj(v) => Some(v),
            _ => None,
        }
    }
}

/// Where and why parsing failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset into the input.
    pub at: usize,
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON parse error at byte {}: {}", self.at, self.message)
    }
}

impl std::error::Error for ParseError {}

/// Parse one complete JSON value; trailing non-whitespace is an error.
///
/// # Errors
///
/// Returns [`ParseError`] on malformed input.
pub fn parse(input: &str) -> Result<Json, ParseError> {
    let mut p = Parser { bytes: input.as_bytes(), pos: 0 };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.error("trailing characters after JSON value"));
    }
    Ok(value)
}

/// Parse every non-empty line of a JSON-lines document, with the 1-based
/// line number attached to any error.
///
/// # Errors
///
/// Returns the first offending line's number and [`ParseError`].
pub fn parse_lines(input: &str) -> Result<Vec<Json>, (usize, ParseError)> {
    let mut out = Vec::new();
    for (idx, line) in input.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        match parse(line) {
            Ok(v) => out.push(v),
            Err(e) => return Err((idx + 1, e)),
        }
    }
    Ok(out)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn error(&self, message: &str) -> ParseError {
        ParseError { at: self.pos, message: message.to_string() }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn eat(&mut self, b: u8) -> Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.error(&format!("expected '{}'", b as char)))
        }
    }

    fn value(&mut self) -> Result<Json, ParseError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(_) => Err(self.error("unexpected character")),
            None => Err(self.error("unexpected end of input")),
        }
    }

    fn literal(&mut self, text: &str, value: Json) -> Result<Json, ParseError> {
        if self.bytes[self.pos..].starts_with(text.as_bytes()) {
            self.pos += text.len();
            Ok(value)
        } else {
            Err(self.error(&format!("expected '{text}'")))
        }
    }

    fn object(&mut self) -> Result<Json, ParseError> {
        self.eat(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            self.skip_ws();
            let value = self.value()?;
            map.insert(key, value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(map));
                }
                _ => return Err(self.error("expected ',' or '}' in object")),
            }
        }
    }

    fn array(&mut self) -> Result<Json, ParseError> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.error("expected ',' or ']' in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.error("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            self.pos += 1;
                            let cp = self.hex4()?;
                            // Surrogate pairs are not produced by the sink;
                            // map lone surrogates to the replacement char.
                            out.push(char::from_u32(cp).unwrap_or('\u{fffd}'));
                            continue;
                        }
                        _ => return Err(self.error("invalid escape sequence")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so byte
                    // boundaries are valid; take chars from the remainder).
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest)
                        .map_err(|_| self.error("invalid UTF-8 in string"))?;
                    match s.chars().next() {
                        Some(c) => {
                            out.push(c);
                            self.pos += c.len_utf8();
                        }
                        None => return Err(self.error("unterminated string")),
                    }
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, ParseError> {
        let mut cp = 0u32;
        for _ in 0..4 {
            let d = match self.peek() {
                Some(b @ b'0'..=b'9') => u32::from(b - b'0'),
                Some(b @ b'a'..=b'f') => u32::from(b - b'a') + 10,
                Some(b @ b'A'..=b'F') => u32::from(b - b'A') + 10,
                _ => return Err(self.error("invalid \\u escape")),
            };
            cp = cp * 16 + d;
            self.pos += 1;
        }
        Ok(cp)
    }

    fn number(&mut self) -> Result<Json, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.error("invalid number"))?;
        text.parse::<f64>().map(Json::Num).map_err(|_| self.error("invalid number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars_and_containers() {
        let v =
            parse(r#"{"a":1,"b":[true,null,"x\ny"],"c":{"d":-2.5e1}}"#).expect("well-formed input");
        assert_eq!(v.get("a").and_then(Json::as_u64), Some(1));
        let arr = v.get("b").and_then(Json::as_arr).expect("array");
        assert_eq!(arr[0].as_bool(), Some(true));
        assert_eq!(arr[1], Json::Null);
        assert_eq!(arr[2].as_str(), Some("x\ny"));
        let d = v.get("c").and_then(|c| c.get("d")).and_then(Json::as_f64).expect("num");
        assert!((d + 25.0).abs() < 1e-12);
    }

    #[test]
    fn as_u64_rejects_fractions_and_negatives() {
        assert_eq!(Json::Num(3.5).as_u64(), None);
        assert_eq!(Json::Num(-1.0).as_u64(), None);
        assert_eq!(Json::Num(42.0).as_u64(), Some(42));
    }

    #[test]
    fn unicode_escapes() {
        let v = parse(r#""café""#).expect("escape parses");
        assert_eq!(v.as_str(), Some("café"));
    }

    #[test]
    fn errors_carry_position() {
        let err = parse("{\"a\": }").expect_err("malformed");
        assert_eq!(err.at, 6);
        assert!(parse("[1,2").is_err());
        assert!(parse("1 2").is_err(), "trailing characters must error");
    }

    #[test]
    fn parse_lines_reports_line_numbers() {
        let ok = parse_lines("{\"a\":1}\n\n{\"b\":2}\n").expect("two lines");
        assert_eq!(ok.len(), 2);
        let (line, _) = parse_lines("{\"a\":1}\nnot json\n").expect_err("bad line");
        assert_eq!(line, 2);
    }

    #[test]
    fn round_trips_sink_output() {
        // Whatever the sink writes, the parser must read back.
        let _guard = crate::test_lock::hold();
        crate::reset();
        let buf = std::sync::Arc::new(std::sync::Mutex::new(Vec::new()));
        crate::enable_with_writer(Box::new(crate::sink::tests::SharedBuf(buf.clone())));
        crate::sink::emit(
            "demo",
            &[
                ("n", crate::sink::Field::U64(9)),
                ("s", crate::sink::Field::Str("a\"b".into())),
                ("f", crate::sink::Field::F64(f64::NAN)),
            ],
        );
        crate::registry::counter_add("demo.count", 3);
        let _ = crate::finish();
        crate::disable();
        let text = String::from_utf8(match buf.lock() {
            Ok(g) => g.clone(),
            Err(p) => p.into_inner().clone(),
        })
        .expect("utf8 trace");
        let events = parse_lines(&text).expect("sink output parses");
        assert_eq!(events.len(), 2, "{text}");
        assert_eq!(events[0].get("type").and_then(Json::as_str), Some("demo"));
        assert_eq!(events[0].get("n").and_then(Json::as_u64), Some(9));
        assert_eq!(events[0].get("s").and_then(Json::as_str), Some("a\"b"));
        assert_eq!(events[0].get("f"), Some(&Json::Null));
        assert_eq!(events[1].get("type").and_then(Json::as_str), Some("summary"));
        let counters = events[1].get("counters").and_then(Json::as_obj).expect("counters");
        assert_eq!(counters.get("demo.count").and_then(Json::as_u64), Some(3));
        crate::reset();
    }
}
