//! # uhscm-obs — observability for the UHSCM stack
//!
//! Hierarchical timed spans, a thread-safe metric registry
//! (counters/gauges/histograms) and a JSON-lines event sink, with one hard
//! contract: **when tracing is disabled, every instrumentation point costs a
//! single relaxed atomic load and a branch.** No clock reads, no locks, no
//! allocation. Hot loops may therefore stay instrumented permanently.
//!
//! ## Enabling
//!
//! * `UHSCM_OBS=1` (or `true`/`on`) — trace to `trace.jsonl` in the working
//!   directory,
//! * `UHSCM_OBS=path/to/file.jsonl` — trace to that file,
//! * `UHSCM_OBS=0` / unset — disabled (the cheap path),
//! * programmatically: [`enable_to_file`] / [`disable`] (used by the CLI's
//!   `--trace-out` flag and the test suite).
//!
//! ## Event stream
//!
//! One JSON object per line. Every event carries `seq` (monotone, process
//! global), `t_us` (microseconds since tracing started) and `type`:
//!
//! * `"span"` — emitted when a [`span`] guard drops: `name`, `path` (slash
//!   joined ancestry, e.g. `"train/build_similarity/denoise"`), `dur_ns`.
//! * `"epoch"`, `"lookup"`, … — free-form events from [`sink::emit`]; the
//!   trainer uses `"epoch"` for per-epoch loss/gradient/saturation records.
//! * `"summary"` — registry contents, written once by [`finish`].
//!
//! [`trace`] parses the stream back (the golden-trace tests and any offline
//! tooling consume it).
//!
//! ## Gated vs unguarded entry points
//!
//! The public surface ([`span`], [`registry::counter_add`], [`sink::emit`],
//! …) is *gated*: it checks [`enabled`] first and is safe to call anywhere,
//! including hot loops. The `*_unguarded` variants skip that check; they
//! exist for the crate's own internals (which have already tested the gate)
//! and are banned outside `crates/obs` by the `obs-gated` lint rule.

pub mod registry;
pub mod sink;
pub mod span;
pub mod trace;

pub use span::{span, Span};

use std::sync::atomic::{AtomicU8, Ordering};

const STATE_UNINIT: u8 = 0;
const STATE_OFF: u8 = 1;
const STATE_ON: u8 = 2;

/// Tri-state gate: 0 = not yet resolved from the environment, 1 = off,
/// 2 = on. Read with a relaxed load on every instrumentation call.
static STATE: AtomicU8 = AtomicU8::new(STATE_UNINIT);

/// Whether telemetry is being collected. This is the branch every gated
/// entry point takes; when the answer is `false` the caller does no further
/// work. The first call resolves the `UHSCM_OBS` environment variable;
/// subsequent calls are a single relaxed atomic load.
#[inline]
pub fn enabled() -> bool {
    match STATE.load(Ordering::Relaxed) {
        STATE_ON => true,
        STATE_OFF => false,
        _ => init_from_env(),
    }
}

/// Resolve `UHSCM_OBS` once and cache the verdict (cold path of
/// [`enabled`]).
#[cold]
fn init_from_env() -> bool {
    let var = std::env::var("UHSCM_OBS").unwrap_or_default();
    let trimmed = var.trim();
    let on = match trimmed {
        "" | "0" | "false" | "off" => false,
        _ => true,
    };
    if on {
        let path = match trimmed {
            "1" | "true" | "on" => "trace.jsonl",
            other => other,
        };
        match std::fs::File::create(path) {
            Ok(f) => sink::install(Box::new(std::io::BufWriter::new(f))),
            Err(e) => {
                // Telemetry must never take the process down: collect into
                // the registry only and say why the file sink is missing.
                eprintln!("uhscm-obs: cannot open trace file {path}: {e}");
            }
        }
    }
    // A concurrent initializer may have raced us; either writes the same
    // env-derived verdict, so a plain store is fine.
    STATE.store(if on { STATE_ON } else { STATE_OFF }, Ordering::Relaxed);
    on
}

/// Programmatically enable tracing to a JSON-lines file (the CLI's
/// `--trace-out`). Replaces any previously installed sink.
///
/// # Errors
///
/// Returns the I/O error if the file cannot be created; tracing is left
/// disabled in that case.
pub fn enable_to_file(path: &std::path::Path) -> std::io::Result<()> {
    let f = std::fs::File::create(path)?;
    sink::install(Box::new(std::io::BufWriter::new(f)));
    STATE.store(STATE_ON, Ordering::Relaxed);
    Ok(())
}

/// Programmatically enable tracing into an arbitrary writer (tests, custom
/// sinks). Replaces any previously installed sink.
pub fn enable_with_writer(w: Box<dyn std::io::Write + Send>) {
    sink::install(w);
    STATE.store(STATE_ON, Ordering::Relaxed);
}

/// Disable tracing: flushes and drops the sink. The registry keeps its
/// contents (so a summary can still be rendered afterwards).
pub fn disable() {
    sink::uninstall();
    STATE.store(STATE_OFF, Ordering::Relaxed);
}

/// End-of-process hook: when tracing is enabled, writes a `"summary"` event
/// with the registry contents, flushes the sink, and returns a
/// human-readable summary of every counter, gauge and histogram. Returns
/// `None` when tracing is disabled (callers can ignore it unconditionally).
pub fn finish() -> Option<String> {
    if !enabled() {
        return None;
    }
    sink::emit_summary_unguarded();
    sink::flush();
    Some(registry::summary_string())
}

/// Reset the registry and span bookkeeping (sequence numbers keep rising).
/// For tests and long-lived tools that trace several runs in one process.
pub fn reset() {
    registry::reset();
}

/// Open a gated timed span (macro form of [`span`]); binds the guard to a
/// hidden local so the span closes at the end of the enclosing block.
#[macro_export]
macro_rules! obs_span {
    ($name:literal) => {
        let _obs_span_guard = $crate::span($name);
    };
}

/// Gated counter increment (macro form of [`registry::counter_add`]).
#[macro_export]
macro_rules! obs_count {
    ($name:expr, $delta:expr) => {
        $crate::registry::counter_add($name, $delta)
    };
}

/// Gated gauge update (macro form of [`registry::gauge_set`]).
#[macro_export]
macro_rules! obs_gauge {
    ($name:expr, $value:expr) => {
        $crate::registry::gauge_set($name, $value)
    };
}

#[cfg(test)]
pub(crate) mod test_lock {
    use std::sync::{Mutex, MutexGuard};

    /// Serializes tests that touch the global gate/registry/sink.
    static LOCK: Mutex<()> = Mutex::new(());

    pub fn hold() -> MutexGuard<'static, ()> {
        match LOCK.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_by_default_in_tests() {
        let _guard = test_lock::hold();
        // The test environment does not set UHSCM_OBS; the gate must
        // resolve to off and the gated calls must be no-ops.
        disable();
        assert!(!enabled());
        registry::counter_add("never", 1);
        let snap = registry::snapshot();
        assert!(!snap.counters.contains_key("never"));
    }

    #[test]
    fn enable_disable_round_trip() {
        let _guard = test_lock::hold();
        reset();
        enable_with_writer(Box::new(std::io::sink()));
        assert!(enabled());
        registry::counter_add("seen", 2);
        assert_eq!(registry::snapshot().counters.get("seen"), Some(&2));
        let summary = finish().expect("tracing is on");
        assert!(summary.contains("seen"), "{summary}");
        disable();
        assert!(!enabled());
        reset();
    }
}
