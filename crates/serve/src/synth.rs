//! Seeded synthetic serving workloads.
//!
//! The loopback tests, the CI smoke test and the load generator all need a
//! model + database + query stream without running the full training
//! pipeline. Everything here is derived from a single seed through the
//! workspace RNG, so every consumer of the same parameters sees the same
//! bytes — which is what lets the loopback test compare online answers
//! against an offline oracle built independently from the same seed.

use uhscm_eval::BitCodes;
use uhscm_linalg::rng::{gauss_matrix, seeded};
use uhscm_linalg::Matrix;
use uhscm_nn::Mlp;

/// A ready-to-serve synthetic corpus.
pub struct SynthWorkload {
    /// Untrained (but fixed-seed) hashing network.
    pub model: Mlp,
    /// Database codes: the model's encoding of `n_db` Gaussian features.
    pub db: BitCodes,
    /// Query feature rows (`n_queries x dim`), NOT yet encoded.
    pub queries: Matrix,
}

/// Deterministically build a workload: a `dim → dim/2 → bits` hashing
/// network, `n_db` database vectors encoded through it, and `n_queries`
/// held-out query vectors.
pub fn workload(
    seed: u64,
    dim: usize,
    bits: usize,
    n_db: usize,
    n_queries: usize,
) -> SynthWorkload {
    let mut rng = seeded(seed);
    let model = Mlp::hashing_network(dim, &[dim.div_ceil(2).max(1)], bits, &mut rng);
    let db_features = gauss_matrix(&mut rng, n_db, dim, 1.0);
    let db = BitCodes::from_real(&model.infer(&db_features));
    let queries = gauss_matrix(&mut rng, n_queries, dim, 1.0);
    SynthWorkload { model, db, queries }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_workload() {
        let a = workload(5, 8, 16, 30, 4);
        let b = workload(5, 8, 16, 30, 4);
        assert_eq!(a.db, b.db);
        assert_eq!(a.queries.as_slice(), b.queries.as_slice());
        assert_eq!(a.model.flat_params(), b.model.flat_params());
    }

    #[test]
    fn different_seed_different_db() {
        let a = workload(5, 8, 16, 30, 4);
        let b = workload(6, 8, 16, 30, 4);
        assert_ne!(a.db, b.db);
    }

    #[test]
    fn shapes_are_as_requested() {
        let w = workload(1, 7, 12, 19, 3);
        assert_eq!(w.db.len(), 19);
        assert_eq!(w.db.bits(), 12);
        assert_eq!(w.queries.shape(), (3, 7));
        assert_eq!(w.model.input_dim(), 7);
        assert_eq!(w.model.output_dim(), 12);
    }
}
