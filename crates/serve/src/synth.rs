//! Seeded synthetic serving workloads.
//!
//! The loopback tests, the CI smoke test and the load generator all need a
//! model + database + query stream without running the full training
//! pipeline. Everything here is derived from a single seed through the
//! workspace RNG, so every consumer of the same parameters sees the same
//! bytes — which is what lets the loopback test compare online answers
//! against an offline oracle built independently from the same seed.

use uhscm_eval::BitCodes;
use uhscm_linalg::rng::{gauss_matrix, seeded};
use uhscm_linalg::Matrix;
use uhscm_nn::Mlp;

/// A ready-to-serve synthetic corpus.
pub struct SynthWorkload {
    /// Untrained (but fixed-seed) hashing network.
    pub model: Mlp,
    /// Database codes: the model's encoding of `n_db` Gaussian features.
    pub db: BitCodes,
    /// Query feature rows (`n_queries x dim`), NOT yet encoded.
    pub queries: Matrix,
}

/// Deterministically build a workload: a `dim → dim/2 → bits` hashing
/// network, `n_db` database vectors encoded through it, and `n_queries`
/// held-out query vectors.
pub fn workload(
    seed: u64,
    dim: usize,
    bits: usize,
    n_db: usize,
    n_queries: usize,
) -> SynthWorkload {
    let mut rng = seeded(seed);
    let model = Mlp::hashing_network(dim, &[dim.div_ceil(2).max(1)], bits, &mut rng);
    let db_features = gauss_matrix(&mut rng, n_db, dim, 1.0);
    let db = BitCodes::from_real(&model.infer(&db_features));
    let queries = gauss_matrix(&mut rng, n_queries, dim, 1.0);
    SynthWorkload { model, db, queries }
}

/// A second hashing network with the same topology as [`workload`]'s but
/// different (seed-derived) parameters: the "retrained model" for bundle
/// reload tests. Same `(dim, bits)`, so it installs cleanly; different
/// weights, so encodings demonstrably change at the swap.
pub fn alt_model(seed: u64, dim: usize, bits: usize) -> Mlp {
    let mut rng = seeded(seed ^ 0x5eed_a17e);
    Mlp::hashing_network(dim, &[dim.div_ceil(2).max(1)], bits, &mut rng)
}

/// Deterministic feature rows to insert during a mutation test, disjoint
/// from both the database and the query stream of the same seed (the RNG
/// stream is re-derived from a scrambled seed).
pub fn insert_rows(seed: u64, n: usize, dim: usize) -> Matrix {
    let mut rng = seeded(seed.wrapping_mul(0x9e37_79b9).wrapping_add(1));
    gauss_matrix(&mut rng, n, dim, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_workload() {
        let a = workload(5, 8, 16, 30, 4);
        let b = workload(5, 8, 16, 30, 4);
        assert_eq!(a.db, b.db);
        assert_eq!(a.queries.as_slice(), b.queries.as_slice());
        assert_eq!(a.model.flat_params(), b.model.flat_params());
    }

    #[test]
    fn different_seed_different_db() {
        let a = workload(5, 8, 16, 30, 4);
        let b = workload(6, 8, 16, 30, 4);
        assert_ne!(a.db, b.db);
    }

    #[test]
    fn alt_model_shares_topology_but_not_parameters() {
        let w = workload(5, 8, 16, 30, 4);
        let alt = alt_model(5, 8, 16);
        assert_eq!(alt.input_dim(), w.model.input_dim());
        assert_eq!(alt.output_dim(), w.model.output_dim());
        assert_ne!(alt.flat_params(), w.model.flat_params());
        assert_eq!(alt.flat_params(), alt_model(5, 8, 16).flat_params());
    }

    #[test]
    fn insert_rows_are_deterministic_and_shaped() {
        let a = insert_rows(5, 6, 8);
        let b = insert_rows(5, 6, 8);
        assert_eq!(a.as_slice(), b.as_slice());
        assert_eq!(a.shape(), (6, 8));
        assert_ne!(insert_rows(6, 6, 8).as_slice(), a.as_slice());
    }

    #[test]
    fn shapes_are_as_requested() {
        let w = workload(1, 7, 12, 19, 3);
        assert_eq!(w.db.len(), 19);
        assert_eq!(w.db.bits(), 12);
        assert_eq!(w.queries.shape(), (3, 7));
        assert_eq!(w.model.input_dim(), 7);
        assert_eq!(w.model.output_dim(), 12);
    }
}
