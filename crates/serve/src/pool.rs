//! The serve worker pool — alongside `uhscm_linalg::par`, the only module
//! in the workspace permitted to call `std::thread` (enforced by the
//! `raw-thread` lint rule in `xtask`). Every thread the service spawns —
//! acceptor, batch worker, per-connection handlers — goes through
//! [`WorkerPool`], so lifetimes are visible in one place and shutdown is a
//! single [`WorkerPool::join_all`].

use std::io;
use std::thread::JoinHandle;

/// A set of named OS threads joined together at shutdown.
#[derive(Default)]
pub struct WorkerPool {
    handles: Vec<JoinHandle<()>>,
}

impl WorkerPool {
    pub fn new() -> Self {
        Self::default()
    }

    /// Spawn a named thread into the pool.
    ///
    /// # Errors
    ///
    /// Propagates the OS error if the thread cannot be created (the caller
    /// decides whether that is fatal — for a per-connection handler it just
    /// drops the connection).
    pub fn spawn(&mut self, name: &str, f: impl FnOnce() + Send + 'static) -> io::Result<()> {
        let handle = std::thread::Builder::new().name(format!("uhscm-serve-{name}")).spawn(f)?;
        self.handles.push(handle);
        Ok(())
    }

    /// Threads spawned so far (joined ones are no longer counted).
    pub fn len(&self) -> usize {
        self.handles.len()
    }

    pub fn is_empty(&self) -> bool {
        self.handles.is_empty()
    }

    /// Join every thread in spawn order, re-raising the first panic payload
    /// after all threads have stopped (a worker panic must fail shutdown
    /// loudly, not vanish).
    pub fn join_all(&mut self) {
        let mut first_panic = None;
        for handle in self.handles.drain(..) {
            if let Err(payload) = handle.join() {
                first_panic.get_or_insert(payload);
            }
        }
        if let Some(payload) = first_panic {
            std::panic::resume_unwind(payload);
        }
    }
}

// No join-on-drop: a dropped pool detaches its threads. Joining in `drop`
// could deadlock shutdown paths where the threads are themselves waiting on
// state the dropper holds; explicit `join_all` keeps the ordering visible.

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    #[test]
    fn join_all_waits_for_every_worker() {
        let done = Arc::new(AtomicUsize::new(0));
        let mut pool = WorkerPool::new();
        for _ in 0..4 {
            let d = Arc::clone(&done);
            pool.spawn("t", move || {
                d.fetch_add(1, Ordering::SeqCst);
            })
            .expect("spawn");
        }
        assert_eq!(pool.len(), 4);
        pool.join_all();
        assert!(pool.is_empty());
        assert_eq!(done.load(Ordering::SeqCst), 4);
    }

    #[test]
    fn worker_panic_resurfaces_at_join() {
        let mut pool = WorkerPool::new();
        pool.spawn("boom", || panic!("worker died")).expect("spawn");
        let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| pool.join_all()))
            .expect_err("panic must propagate");
        let msg = err.downcast_ref::<&str>().copied().unwrap_or_default();
        assert_eq!(msg, "worker died");
    }
}
