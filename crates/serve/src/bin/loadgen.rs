//! Load generator for `uhscm-serve`: starts an in-process server on a
//! synthetic workload, drives it over real loopback TCP, and writes
//! `BENCH_serve.json` at the workspace root.
//!
//! Three phases:
//!
//! 1. **latency** — closed loop, one request in flight: per-request RTT
//!    percentiles (p50/p95/p99) under no queueing.
//! 2. **throughput** — pipelined bursts: sustained requests/second and the
//!    batch-size distribution the coalescing actually achieved.
//! 3. **overload** — a tiny admission queue and a long straggler window:
//!    proves shedding engages (shed responses, zero hangs, clean drain).
//!
//! Usage: `loadgen [requests] [burst]` (defaults 200 and 32).

use std::net::TcpStream;
use std::time::{Duration, Instant};

use serde::Serialize;
use uhscm_obs::registry;
use uhscm_serve::{
    decode_response, encode_request, read_frame_blocking, synth, write_frame, Engine, FrameReader,
    QueryRequest, Reason, Request, Response, ServeConfig, Server,
};

const SEED: u64 = 2023;
const DIM: usize = 64;
const BITS: usize = 32;
const N_DB: usize = 4096;
const TOP_K: usize = 10;

struct Client {
    stream: TcpStream,
    frames: FrameReader,
}

impl Client {
    fn connect(server: &Server) -> Client {
        let stream = TcpStream::connect(server.local_addr()).expect("connect to loopback");
        stream.set_read_timeout(Some(Duration::from_secs(30))).expect("set read timeout");
        stream.set_nodelay(true).expect("set nodelay");
        Client { stream, frames: FrameReader::new() }
    }

    fn send(&mut self, req: &Request) {
        write_frame(&mut self.stream, &encode_request(req)).expect("loadgen write");
    }

    fn recv(&mut self) -> Response {
        let body = read_frame_blocking(&mut self.stream, &mut self.frames).expect("loadgen read");
        decode_response(&body).expect("loadgen decode")
    }
}

fn query(id: u64, features: &[f64]) -> Request {
    Request::Query(QueryRequest {
        id,
        features: features.to_vec(),
        top_k: TOP_K,
        deadline_ms: None,
    })
}

fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = (p / 100.0 * (sorted.len() - 1) as f64).round() as usize;
    sorted[rank.min(sorted.len() - 1)]
}

#[derive(Serialize)]
struct LatencyStats {
    requests: usize,
    p50_us: f64,
    p95_us: f64,
    p99_us: f64,
    max_us: f64,
}

#[derive(Serialize)]
struct ThroughputStats {
    requests: usize,
    burst: usize,
    elapsed_s: f64,
    requests_per_s: f64,
    batch_count: u64,
    batch_mean: f64,
    batch_max: f64,
}

#[derive(Serialize)]
struct OverloadStats {
    offered: usize,
    answered: usize,
    shed: usize,
    shed_rate: f64,
    drained_cleanly: bool,
}

#[derive(Serialize)]
struct ServeBench {
    seed: u64,
    dim: usize,
    bits: usize,
    db_size: usize,
    top_k: usize,
    shards: usize,
    latency: LatencyStats,
    throughput: ThroughputStats,
    overload: OverloadStats,
}

fn start_server(w: &synth::SynthWorkload, config: &ServeConfig) -> Server {
    let engine = Engine::new(w.model.clone(), &w.db, config.shards).expect("engine config");
    Server::start(engine, config).expect("server start")
}

fn latency_phase(w: &synth::SynthWorkload, requests: usize, shards: usize) -> LatencyStats {
    let config = ServeConfig { shards, max_wait: Duration::ZERO, ..ServeConfig::default() };
    let server = start_server(w, &config);
    let mut client = Client::connect(&server);
    let n_queries = w.queries.rows();
    let mut rtts_us = Vec::with_capacity(requests);
    for i in 0..requests {
        let row = w.queries.row(i % n_queries);
        let t0 = Instant::now();
        client.send(&query(i as u64, row));
        match client.recv() {
            Response::Hits { .. } => {}
            other => panic!("latency phase: unexpected {other:?}"),
        }
        rtts_us.push(t0.elapsed().as_secs_f64() * 1e6);
    }
    server.shutdown();
    rtts_us.sort_by(f64::total_cmp);
    LatencyStats {
        requests,
        p50_us: percentile(&rtts_us, 50.0),
        p95_us: percentile(&rtts_us, 95.0),
        p99_us: percentile(&rtts_us, 99.0),
        max_us: rtts_us.last().copied().unwrap_or(0.0),
    }
}

fn throughput_phase(
    w: &synth::SynthWorkload,
    requests: usize,
    burst: usize,
    shards: usize,
) -> ThroughputStats {
    registry::reset();
    let config = ServeConfig {
        shards,
        max_batch: burst.max(1),
        max_wait: Duration::from_millis(2),
        queue_cap: 4 * burst.max(1),
        ..ServeConfig::default()
    };
    let server = start_server(w, &config);
    let mut client = Client::connect(&server);
    let n_queries = w.queries.rows();
    let t0 = Instant::now();
    let mut sent = 0usize;
    while sent < requests {
        let this_burst = burst.min(requests - sent);
        for b in 0..this_burst {
            let i = sent + b;
            client.send(&query(i as u64, w.queries.row(i % n_queries)));
        }
        for _ in 0..this_burst {
            match client.recv() {
                Response::Hits { .. } => {}
                other => panic!("throughput phase: unexpected {other:?}"),
            }
        }
        sent += this_burst;
    }
    let elapsed = t0.elapsed().as_secs_f64();
    server.shutdown();
    let snap = registry::snapshot();
    let (batch_count, batch_mean, batch_max) = snap
        .histograms
        .get("serve.batch.size")
        .map_or((0, 0.0, 0.0), |h| (h.count, h.mean(), h.max));
    ThroughputStats {
        requests,
        burst,
        elapsed_s: elapsed,
        requests_per_s: if elapsed > 0.0 { requests as f64 / elapsed } else { 0.0 },
        batch_count,
        batch_mean,
        batch_max,
    }
}

fn overload_phase(w: &synth::SynthWorkload, offered: usize, shards: usize) -> OverloadStats {
    registry::reset();
    // Tiny queue + long straggler window: most of a fast pipelined burst
    // must bounce off admission control.
    let config = ServeConfig {
        shards,
        queue_cap: 2,
        max_batch: 2,
        max_wait: Duration::from_millis(100),
        ..ServeConfig::default()
    };
    let server = start_server(w, &config);
    let mut client = Client::connect(&server);
    let n_queries = w.queries.rows();
    for i in 0..offered {
        client.send(&query(i as u64, w.queries.row(i % n_queries)));
    }
    let mut answered = 0usize;
    let mut shed = 0usize;
    for _ in 0..offered {
        match client.recv() {
            Response::Hits { .. } => answered += 1,
            Response::Error { reason: Reason::Overloaded, .. } => shed += 1,
            other => panic!("overload phase: unexpected {other:?}"),
        }
    }
    server.shutdown();
    OverloadStats {
        offered,
        answered,
        shed,
        shed_rate: shed as f64 / offered as f64,
        // Every offered request got exactly one reply and shutdown joined
        // every thread without panicking — that is the clean-drain claim.
        drained_cleanly: answered + shed == offered,
    }
}

fn main() {
    let mut args = std::env::args().skip(1);
    let requests: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(200);
    let burst: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(32);
    let shards = 2;

    // Metrics on, trace stream discarded: loadgen only reads the registry.
    uhscm_obs::enable_with_writer(Box::new(std::io::sink()));

    eprintln!("loadgen: synthesizing workload (dim={DIM}, bits={BITS}, db={N_DB})");
    let w = synth::workload(SEED, DIM, BITS, N_DB, 64);

    eprintln!("loadgen: latency phase ({requests} closed-loop requests)");
    let latency = latency_phase(&w, requests, shards);
    eprintln!("loadgen: throughput phase ({requests} requests, bursts of {burst})");
    let throughput = throughput_phase(&w, requests, burst, shards);
    eprintln!("loadgen: overload phase (burst of {} into a 2-slot queue)", 4 * burst);
    let overload = overload_phase(&w, 4 * burst, shards);

    let report = ServeBench {
        seed: SEED,
        dim: DIM,
        bits: BITS,
        db_size: N_DB,
        top_k: TOP_K,
        shards,
        latency,
        throughput,
        overload,
    };
    let json = serde_json::to_string_pretty(&report).expect("serialize report");

    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .map(|root| root.join("BENCH_serve.json"));
    match path {
        Some(path) => match std::fs::write(&path, json + "\n") {
            Ok(()) => println!("wrote {}", path.display()),
            Err(e) => eprintln!("warning: cannot write {}: {e}", path.display()),
        },
        None => eprintln!("warning: cannot locate the workspace root"),
    }
    println!(
        "p50 {:.0}us  p95 {:.0}us  p99 {:.0}us | {:.0} req/s (mean batch {:.1}) | shed rate {:.2}",
        report.latency.p50_us,
        report.latency.p95_us,
        report.latency.p99_us,
        report.throughput.requests_per_s,
        report.throughput.batch_mean,
        report.overload.shed_rate,
    );
}
