//! The TCP front-end: accepts connections, admits queries, and runs the
//! batch worker that coalesces them into single forward passes.
//!
//! Thread layout (all threads via [`crate::pool::WorkerPool`]):
//!
//! ```text
//! accept ──┬── conn #1 ──┬─┐        submit          ┌── batch worker
//!          ├── conn #2 …│ ├──▶ AdmissionQueue ─────▶┤  (encode + search,
//!          │             │ │   (bounded, shedding)  └─┐ replies as frames)
//!          │  conn-write ◀┴───────────────────────────┘
//!          └─ (one per conn: sole owner of the write half)
//! ```
//!
//! Each connection thread reads frames with a short socket timeout so it
//! can poll the drain flag between reads. Replies are serialized to frame
//! bytes by whichever thread produced them (connection thread for protocol
//! errors, batch worker for answers) and queued to a per-connection writer
//! thread that owns the socket's write half outright — responses stay
//! well-framed under pipelining without ever holding a lock across a
//! socket write, and a reply can still land after the read loop has
//! exited. The writer exits once every sender (the read loop plus any
//! in-flight reply closures) is gone. Shutdown: set the drain flag, close
//! the queue (new submits answer `draining`, admitted work still runs),
//! poke the acceptor awake, then join every thread.
//!
//! Mutations (`insert`/`remove`/`reload`) do not ride the batch queue:
//! they execute synchronously on the connection thread through the
//! engine's copy-on-write commit path, so a mutation receipt on the wire
//! means the commit is durable-in-memory before the next frame is read
//! from that connection. They share the queue's drain gate: once the queue
//! closes, mutation frames are answered `draining` — an admitted mutation
//! always commits, a refused one is explicit, nothing is silently dropped.
//! Queries take one [`EngineSnapshot`] per batch, so every answer in a
//! batch reports the exact `(generation, bundle)` pair it was evaluated at.

use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::Path;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc, Mutex, MutexGuard, RwLock, RwLockReadGuard, RwLockWriteGuard};
use std::time::{Duration, Instant};

use uhscm_eval::BitCodes;
use uhscm_linalg::Matrix;
use uhscm_nn::Mlp;
use uhscm_obs::{obs_count, obs_gauge, obs_span, registry};

use crate::batch::{AdmissionQueue, BatchPolicy, PendingQuery, SubmitError};
use crate::bundle::Bundle;
use crate::pool::WorkerPool;
use crate::protocol::{
    decode_request, encode_frame, encode_response, FrameReader, Reason, Request, Response,
};
use crate::shard::{Generation, InsertCommit, RemoveCommit, ShardedIndex};

/// How often a connection thread wakes from a blocking read to poll the
/// drain flag.
const READ_TICK: Duration = Duration::from_millis(25);

/// Everything that can go wrong bringing the service up.
#[derive(Debug)]
pub enum ServeError {
    Io(io::Error),
    /// Inconsistent configuration (e.g. model width vs. database width).
    Config(String),
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Io(e) => write!(f, "serve I/O error: {e}"),
            ServeError::Config(msg) => write!(f, "serve config error: {msg}"),
        }
    }
}

impl std::error::Error for ServeError {}

impl From<io::Error> for ServeError {
    fn from(e: io::Error) -> Self {
        ServeError::Io(e)
    }
}

/// Server tunables. `Default` binds an ephemeral loopback port with small
/// batching windows suited to tests; the CLI overrides from flags.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Bind address, e.g. `127.0.0.1:7878` (`:0` picks an ephemeral port).
    pub addr: String,
    /// Number of contiguous index shards (clamped to the database size).
    pub shards: usize,
    /// Most queries coalesced into one forward pass.
    pub max_batch: usize,
    /// How long the batch worker waits for stragglers once it has one query.
    pub max_wait: Duration,
    /// Admission queue bound; submissions beyond it are shed.
    pub queue_cap: usize,
    /// Whether mutation frames (insert/remove/reload) are accepted; a
    /// read-only server answers them `bad_request`.
    pub writable: bool,
    /// Largest `top_k` a query frame may request; anything above it is
    /// refused `bad_request` before the query is admitted, so a hostile
    /// client cannot size per-query heaps and result buffers at will.
    pub max_top_k: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:0".to_string(),
            shards: 2,
            max_batch: 16,
            max_wait: Duration::from_millis(1),
            queue_cap: 256,
            writable: true,
            max_top_k: 1024,
        }
    }
}

/// One coherent view of the engine for a batch of work: exactly one bundle
/// and exactly one generation. Later commits and reloads never touch a
/// taken snapshot, so everything computed through it is reproducible
/// offline at the `(generation, bundle)` pair it reports.
pub struct EngineSnapshot {
    /// The pinned serving bundle (model + vocab).
    pub bundle: Arc<Bundle>,
    /// The pinned committed generation of the code index.
    pub generation: Arc<Generation>,
}

impl EngineSnapshot {
    /// One batched forward pass + sign quantization with the pinned model.
    /// Row `i` of the result is bitwise-identical to encoding row `i`
    /// alone: inference computes each output row from its input row only,
    /// in fixed k-order.
    pub fn encode(&self, batch: &Matrix) -> BitCodes {
        obs_span!("serve_encode");
        BitCodes::from_real(&self.bundle.model.infer(batch))
    }
}

/// The query engine: the hot-swappable serving [`Bundle`] (hashing model +
/// vocabulary) plus the generation-swapped code index. Shared across worker
/// threads; readers pin snapshots, mutations commit via atomic swaps.
///
/// Lock discipline (checked by `xtask lint`'s lock passes): `reload` is a
/// plain writer-serialization mutex for bundle installs; `bundle` is the
/// published pointer. Installers take `reload`, read `bundle` for one line
/// to pick the next version, build the new bundle off-lock, and write
/// `bundle` for one line to swap. Readers touch `bundle` for one line only.
pub struct Engine {
    /// Current serving bundle; swapped whole by [`Engine::install_bundle`].
    bundle: RwLock<Arc<Bundle>>,
    /// Serializes bundle installs: one version assignment at a time.
    reload: Mutex<()>,
    index: ShardedIndex,
}

/// `bundle` poisoning requires an installer panicking mid-swap; the stored
/// value is a plain `Arc` (intact after any partial operation), so recover
/// the guard instead of cascading the panic into every query.
fn read_bundle(lock: &RwLock<Arc<Bundle>>) -> RwLockReadGuard<'_, Arc<Bundle>> {
    match lock.read() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

/// Write-side twin of [`read_bundle`]; same poisoning argument.
fn write_bundle(lock: &RwLock<Arc<Bundle>>) -> RwLockWriteGuard<'_, Arc<Bundle>> {
    match lock.write() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

/// Reload-gate recovery: the gate protects no data (it only serializes
/// version assignment), so a poisoned gate is always safe to reuse.
fn lock_reload(lock: &Mutex<()>) -> MutexGuard<'_, ()> {
    match lock.lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

impl Engine {
    /// Pair a model (with no vocabulary) with a code database.
    ///
    /// # Errors
    ///
    /// [`ServeError::Config`] if the model's output width differs from the
    /// database's code width.
    pub fn new(model: Mlp, db: &BitCodes, shards: usize) -> Result<Self, ServeError> {
        Self::with_vocab(model, Vec::new(), db, shards)
    }

    /// Pair a full bundle (model + concept vocabulary) with a code
    /// database; the bundle starts at version 0.
    ///
    /// # Errors
    ///
    /// [`ServeError::Config`] if the model's output width differs from the
    /// database's code width.
    pub fn with_vocab(
        model: Mlp,
        vocab: Vec<String>,
        db: &BitCodes,
        shards: usize,
    ) -> Result<Self, ServeError> {
        Self::with_vocab_index(model, vocab, ShardedIndex::new(db, shards))
    }

    /// Pair a bundle with an already-built index — the store-backed path:
    /// a `GenesisBuilder` fed segment by segment from an on-disk store
    /// yields the index without the database ever being concatenated in
    /// memory (the serve crate stays independent of the store format).
    ///
    /// # Errors
    ///
    /// [`ServeError::Config`] if the model's output width differs from the
    /// index's code width.
    pub fn with_vocab_index(
        model: Mlp,
        vocab: Vec<String>,
        index: ShardedIndex,
    ) -> Result<Self, ServeError> {
        if model.output_dim() != index.bits() {
            return Err(ServeError::Config(format!(
                "model emits {}-bit codes but the database stores {}-bit codes",
                model.output_dim(),
                index.bits()
            )));
        }
        Ok(Self {
            bundle: RwLock::new(Arc::new(Bundle::initial(model, vocab))),
            reload: Mutex::new(()),
            index,
        })
    }

    /// The current serving bundle, pinned.
    pub fn bundle(&self) -> Arc<Bundle> {
        Arc::clone(&read_bundle(&self.bundle))
    }

    /// Pin one coherent `(bundle, generation)` pair.
    pub fn snapshot(&self) -> EngineSnapshot {
        EngineSnapshot { bundle: self.bundle(), generation: self.index.snapshot() }
    }

    /// Feature dimension a query must supply *right now* (advisory: a
    /// reload can change it between this check and batching; the batch
    /// worker re-validates against its own pinned snapshot).
    pub fn input_dim(&self) -> usize {
        self.bundle().model.input_dim()
    }

    /// Code width in bits (fixed for the server's lifetime: bundle installs
    /// are rejected unless they emit this width).
    pub fn bits(&self) -> usize {
        self.index.bits()
    }

    /// Number of live database codes.
    pub fn db_len(&self) -> usize {
        self.index.len()
    }

    /// Number of index segments actually in use.
    pub fn num_shards(&self) -> usize {
        self.index.num_shards()
    }

    /// Encode with the current bundle (see [`EngineSnapshot::encode`]).
    pub fn encode(&self, batch: &Matrix) -> BitCodes {
        self.snapshot().encode(batch)
    }

    /// Sharded global top-`n` for query `qi` of `codes` against the current
    /// generation (see [`ShardedIndex::search`] for the determinism
    /// contract).
    pub fn search(&self, codes: &BitCodes, qi: usize, n: usize) -> Vec<(u32, u32)> {
        self.index.search(codes, qi, n)
    }

    /// Encode `rows` with one pinned bundle and append the codes as one
    /// committed generation. Returns the commit receipt plus the version of
    /// the bundle that encoded the rows, so a client (or the swap-boundary
    /// harness) can reproduce the inserted codes offline bit-for-bit.
    ///
    /// # Errors
    ///
    /// A human-readable `bad_request` detail if any row's width differs
    /// from the pinned bundle's input dimension.
    ///
    /// (Named `insert_rows`, not `insert`: mutation telemetry is emitted
    /// here, and the lint's name-resolved call graph would route every
    /// map/set `insert` — including the obs registry's own, under its
    /// lock — through a function named `insert`.)
    pub fn insert_rows(&self, rows: &[Vec<f64>]) -> Result<(InsertCommit, u64), String> {
        let bundle = self.bundle();
        let dim = bundle.model.input_dim();
        for (i, row) in rows.iter().enumerate() {
            if row.len() != dim {
                return Err(format!("row {i}: expected {dim} features, got {}", row.len()));
            }
        }
        if rows.is_empty() {
            // Nothing to commit; report the current state as a receipt.
            let generation = self.index.snapshot();
            let commit = InsertCommit {
                generation: generation.seq(),
                first_index: generation.total_len() as u32,
                count: 0,
                live: generation.live_len(),
            };
            return Ok((commit, bundle.version));
        }
        // Both factors arrive from outside (wire rows x bundle dim), so the
        // flat-buffer size is computed checked: overflow is a refused
        // request, not a wrapped allocation.
        let Some(flat_len) = rows.len().checked_mul(dim) else {
            return Err(format!("insert of {} rows x {dim} features overflows", rows.len()));
        };
        let mut flat = Vec::with_capacity(flat_len);
        for row in rows {
            flat.extend_from_slice(row);
        }
        let codes = {
            obs_span!("serve_encode");
            BitCodes::from_real(&bundle.model.infer(&Matrix::from_vec(rows.len(), dim, flat)))
        };
        let commit = self.index.insert(&codes);
        obs_count!("serve.mutations.insert", 1);
        obs_count!("serve.swaps.generation", 1);
        obs_gauge!("serve.generation", commit.generation as f64);
        Ok((commit, bundle.version))
    }

    /// Tombstone global index `index` (see [`ShardedIndex::remove`]).
    ///
    /// # Errors
    ///
    /// A human-readable `bad_request` detail if `index` is out of range.
    /// The total length never shrinks, so the range check cannot go stale
    /// between validation and commit.
    ///
    /// (Named `remove_index` for the same lint-call-graph reason as
    /// [`Engine::insert_rows`].)
    pub fn remove_index(&self, index: u64) -> Result<RemoveCommit, String> {
        let total = self.index.total_len();
        // `try_from` + range check replace the old `as` casts in both
        // directions: a wire index survives to the commit only as a value
        // proven to fit `usize` and to name an existing slot.
        let valid = usize::try_from(index).ok().filter(|&i| i < total);
        let Some(checked) = valid else {
            return Err(format!("index {index} out of range (total {total})"));
        };
        let commit = self.index.remove(checked);
        if commit.removed {
            obs_count!("serve.mutations.remove", 1);
            obs_count!("serve.swaps.generation", 1);
            obs_gauge!("serve.generation", commit.generation as f64);
        }
        Ok(commit)
    }

    /// Atomically install a new serving bundle; its version is the current
    /// version plus one. Returns `(version, vocabulary size)`.
    ///
    /// # Errors
    ///
    /// [`ServeError::Config`] if the model's output width differs from the
    /// index's code width; the serving bundle is left untouched.
    pub fn install_bundle(
        &self,
        model: Mlp,
        vocab: Vec<String>,
    ) -> Result<(u64, usize), ServeError> {
        if model.output_dim() != self.index.bits() {
            return Err(ServeError::Config(format!(
                "bundle model emits {}-bit codes but the index stores {}-bit codes",
                model.output_dim(),
                self.index.bits()
            )));
        }
        let vocab_len = vocab.len();
        let version = {
            let _installer = lock_reload(&self.reload);
            let version = self.bundle().version + 1;
            *write_bundle(&self.bundle) = Arc::new(Bundle { version, model, vocab });
            version
        };
        // Telemetry off the installer gate: nothing blocks behind a reload
        // for a registry write.
        obs_count!("serve.swaps.bundle", 1);
        obs_gauge!("serve.bundle.version", version as f64);
        Ok((version, vocab_len))
    }

    /// Load a bundle directory and hot-swap it in. All I/O happens before
    /// any lock is taken; a failed load leaves the serving bundle
    /// untouched.
    ///
    /// # Errors
    ///
    /// I/O and validation failures (see [`Bundle::load_dir`] and
    /// [`Engine::install_bundle`]).
    pub fn reload_from_dir(&self, dir: &Path) -> Result<(u64, usize), ServeError> {
        obs_span!("serve_reload");
        let (model, vocab) = Bundle::load_dir(dir)?;
        self.install_bundle(model, vocab)
    }
}

/// A running service; dropping it without [`Server::shutdown`] detaches the
/// worker threads (they keep serving until the process exits).
pub struct Server {
    addr: SocketAddr,
    queue: Arc<AdmissionQueue>,
    draining: Arc<AtomicBool>,
    pool: WorkerPool,
}

impl Server {
    /// Bind, spawn the batch worker and acceptor, and start serving.
    ///
    /// # Errors
    ///
    /// Propagates bind/spawn failures; a partially-started server is torn
    /// back down before the error is returned.
    pub fn start(engine: Engine, config: &ServeConfig) -> Result<Server, ServeError> {
        let listener = TcpListener::bind(config.addr.as_str())?;
        let addr = listener.local_addr()?;
        let engine = Arc::new(engine);
        let queue = Arc::new(AdmissionQueue::new(config.queue_cap));
        let draining = Arc::new(AtomicBool::new(false));
        let policy = BatchPolicy { max_batch: config.max_batch.max(1), max_wait: config.max_wait };

        let mut pool = WorkerPool::new();
        {
            let engine = Arc::clone(&engine);
            let queue = Arc::clone(&queue);
            pool.spawn("batch", move || batch_worker(&engine, &queue, policy))?;
        }
        {
            let accept_queue = Arc::clone(&queue);
            let draining = Arc::clone(&draining);
            let writable = config.writable;
            let max_top_k = config.max_top_k;
            if let Err(e) = pool.spawn("accept", move || {
                accept_loop(&listener, &engine, &accept_queue, &draining, writable, max_top_k)
            }) {
                // Unwind the batch worker we already started.
                queue.close();
                pool.join_all();
                return Err(ServeError::Io(e));
            }
        }
        Ok(Server { addr, queue, draining, pool })
    }

    /// The actually-bound address (resolves `:0` ephemeral ports).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Queries currently waiting for the batch worker (diagnostic).
    pub fn queue_depth(&self) -> usize {
        self.queue.depth()
    }

    /// Graceful drain: stop admitting, serve everything already admitted,
    /// then join every worker thread. Returns once the last reply is out.
    pub fn shutdown(mut self) {
        self.draining.store(true, Ordering::SeqCst);
        self.queue.close();
        // The acceptor blocks in `accept`; a throwaway connection wakes it
        // so it can observe the drain flag and exit.
        let _ = TcpStream::connect(self.addr);
        self.pool.join_all();
    }
}

fn accept_loop(
    listener: &TcpListener,
    engine: &Arc<Engine>,
    queue: &Arc<AdmissionQueue>,
    draining: &Arc<AtomicBool>,
    writable: bool,
    max_top_k: usize,
) {
    let mut conns = WorkerPool::new();
    for stream in listener.incoming() {
        if draining.load(Ordering::SeqCst) {
            break;
        }
        let Ok(stream) = stream else { continue };
        obs_count!("serve.connections", 1);
        let engine = Arc::clone(engine);
        let queue = Arc::clone(queue);
        let draining = Arc::clone(draining);
        // A failed spawn just drops this connection; the service lives on.
        let _ = conns.spawn("conn", move || {
            handle_conn(stream, &engine, &queue, &draining, writable, max_top_k)
        });
    }
    conns.join_all();
}

/// Serialize a response and queue its frame bytes to the connection's
/// writer thread. Encoding happens on the producing thread; the actual
/// socket write happens on the writer thread, so no lock is ever held
/// across a blocking write. Send errors are ignored: the writer is gone
/// only when the client is, and the read loop will notice on its own.
fn send(out: &mpsc::Sender<Vec<u8>>, resp: &Response) {
    let body = encode_response(resp);
    if let Ok(frame) = encode_frame(&body) {
        let _ = out.send(frame);
    }
}

/// The per-connection writer: sole owner of the socket's write half.
/// Frames arrive whole, so interleaved producers (connection thread and
/// batch worker) can never tear each other's frames. Runs until every
/// sender has dropped; after a write error it keeps draining so producers
/// are never left with a wedged channel.
fn writer_loop(mut write_half: TcpStream, rx: &mpsc::Receiver<Vec<u8>>) {
    let mut broken = false;
    while let Ok(frame) = rx.recv() {
        if broken {
            continue;
        }
        if write_half.write_all(&frame).and_then(|()| write_half.flush()).is_err() {
            broken = true; // client is gone; swallow the backlog
        }
    }
}

fn handle_conn(
    stream: TcpStream,
    engine: &Engine,
    queue: &AdmissionQueue,
    draining: &AtomicBool,
    writable: bool,
    max_top_k: usize,
) {
    if stream.set_read_timeout(Some(READ_TICK)).is_err() {
        return;
    }
    let _ = stream.set_nodelay(true);
    let write_half = match stream.try_clone() {
        Ok(w) => w,
        Err(_) => return,
    };
    let (out, rx) = mpsc::channel::<Vec<u8>>();
    let mut writers = WorkerPool::new();
    if writers.spawn("conn-write", move || writer_loop(write_half, &rx)).is_err() {
        return;
    }
    read_loop(stream, engine, queue, draining, writable, max_top_k, &out);
    // Drop our sender so the writer exits once every in-flight reply
    // closure (each holds a clone) has landed, then wait for it: the last
    // byte is on the wire before the connection thread retires.
    drop(out);
    writers.join_all();
}

fn read_loop(
    mut reader: TcpStream,
    engine: &Engine,
    queue: &AdmissionQueue,
    draining: &AtomicBool,
    writable: bool,
    max_top_k: usize,
    out: &mpsc::Sender<Vec<u8>>,
) {
    let mut frames = FrameReader::new();
    let mut buf = [0u8; 4096];
    loop {
        match reader.read(&mut buf) {
            Ok(0) => return, // peer closed
            Ok(n) => frames.push_bytes(&buf[..n]),
            Err(e)
                if matches!(
                    e.kind(),
                    io::ErrorKind::WouldBlock
                        | io::ErrorKind::TimedOut
                        | io::ErrorKind::Interrupted
                ) =>
            {
                if draining.load(Ordering::SeqCst) {
                    return;
                }
                continue;
            }
            Err(_) => return,
        }
        loop {
            match frames.next_frame() {
                Ok(Some(body)) => handle_frame(&body, engine, queue, out, writable, max_top_k),
                Ok(None) => break,
                Err(e) => {
                    // Framing is lost; report and hang up.
                    send(
                        out,
                        &Response::Error {
                            id: 0,
                            reason: Reason::BadRequest,
                            detail: e.to_string(),
                        },
                    );
                    return;
                }
            }
        }
    }
}

/// Why a mutation frame is refused before touching the engine. A read-only
/// server never mutates; a draining server refuses explicitly rather than
/// racing shutdown — an admitted mutation always commits before its
/// receipt is sent, a refused one gets `draining`, nothing is silently
/// dropped.
fn refuse_mutation(id: u64, queue: &AdmissionQueue, writable: bool) -> Option<Response> {
    if !writable {
        return Some(Response::Error {
            id,
            reason: Reason::BadRequest,
            detail: "server is read-only".to_string(),
        });
    }
    if !queue.is_open() {
        return Some(Response::Error {
            id,
            reason: Reason::Draining,
            detail: "server is draining".to_string(),
        });
    }
    None
}

fn handle_frame(
    body: &str,
    engine: &Engine,
    queue: &AdmissionQueue,
    out: &mpsc::Sender<Vec<u8>>,
    writable: bool,
    max_top_k: usize,
) {
    let req = match decode_request(body) {
        Ok(r) => r,
        Err(detail) => {
            send(out, &Response::Error { id: 0, reason: Reason::BadRequest, detail });
            return;
        }
    };
    let q = match req {
        Request::Ping => {
            send(out, &Response::Pong);
            return;
        }
        Request::Insert { id, rows } => {
            if let Some(refusal) = refuse_mutation(id, queue, writable) {
                send(out, &refusal);
                return;
            }
            match engine.insert_rows(&rows) {
                Ok((commit, bundle)) => send(
                    out,
                    &Response::Inserted {
                        id,
                        generation: commit.generation,
                        first_index: u64::from(commit.first_index),
                        count: commit.count as u64,
                        live: commit.live as u64,
                        bundle,
                    },
                ),
                Err(detail) => {
                    send(out, &Response::Error { id, reason: Reason::BadRequest, detail });
                }
            }
            return;
        }
        Request::Remove { id, index } => {
            if let Some(refusal) = refuse_mutation(id, queue, writable) {
                send(out, &refusal);
                return;
            }
            match engine.remove_index(index) {
                Ok(commit) => send(
                    out,
                    &Response::Removed {
                        id,
                        generation: commit.generation,
                        removed: commit.removed,
                        live: commit.live as u64,
                    },
                ),
                Err(detail) => {
                    send(out, &Response::Error { id, reason: Reason::BadRequest, detail });
                }
            }
            return;
        }
        Request::Flush { id } => {
            // Read-only state readback: answered even while draining or
            // read-only, so clients can always learn the committed state.
            let snap = engine.snapshot();
            send(
                out,
                &Response::Flushed {
                    id,
                    generation: snap.generation.seq(),
                    live: snap.generation.live_len() as u64,
                    total: snap.generation.total_len() as u64,
                    bundle: snap.bundle.version,
                },
            );
            return;
        }
        Request::Reload { id, path } => {
            if let Some(refusal) = refuse_mutation(id, queue, writable) {
                send(out, &refusal);
                return;
            }
            match engine.reload_from_dir(Path::new(&path)) {
                Ok((bundle, vocab)) => {
                    send(out, &Response::Reloaded { id, bundle, vocab: vocab as u64 });
                }
                Err(e) => send(
                    out,
                    &Response::Error { id, reason: Reason::BadRequest, detail: e.to_string() },
                ),
            }
            return;
        }
        Request::Query(q) => q,
    };
    obs_count!("serve.requests", 1);
    if q.features.len() != engine.input_dim() {
        send(
            out,
            &Response::Error {
                id: q.id,
                reason: Reason::BadRequest,
                detail: format!(
                    "expected {} features, got {}",
                    engine.input_dim(),
                    q.features.len()
                ),
            },
        );
        return;
    }
    if q.top_k == 0 {
        send(
            out,
            &Response::Error {
                id: q.id,
                reason: Reason::BadRequest,
                detail: "top_k must be at least 1".to_string(),
            },
        );
        return;
    }
    if q.top_k > max_top_k {
        // Capping here — before admission — keeps the wire value out of
        // every downstream heap- and buffer-sizing position.
        send(
            out,
            &Response::Error {
                id: q.id,
                reason: Reason::BadRequest,
                detail: format!("top_k {} exceeds the cap {max_top_k}", q.top_k),
            },
        );
        return;
    }
    let deadline = q.deadline_ms.map(|ms| Instant::now() + Duration::from_millis(ms));
    let w = out.clone();
    let pending = PendingQuery {
        id: q.id,
        features: q.features,
        top_k: q.top_k,
        deadline,
        reply: Box::new(move |resp| send(&w, &resp)),
    };
    match queue.submit(pending) {
        Ok(()) => {}
        Err((shed, SubmitError::Overloaded)) => {
            obs_count!("serve.shed", 1);
            send(
                out,
                &Response::Error {
                    id: shed.id,
                    reason: Reason::Overloaded,
                    detail: "admission queue full".to_string(),
                },
            );
        }
        Err((shed, SubmitError::Draining)) => {
            send(
                out,
                &Response::Error {
                    id: shed.id,
                    reason: Reason::Draining,
                    detail: "server is draining".to_string(),
                },
            );
        }
    }
}

fn batch_worker(engine: &Engine, queue: &AdmissionQueue, policy: BatchPolicy) {
    while let Some(batch) = queue.next_batch(&policy) {
        run_batch(engine, batch);
    }
}

fn run_batch(engine: &Engine, batch: Vec<PendingQuery>) {
    obs_span!("serve_batch");
    registry::histogram_record("serve.batch.size", batch.len() as f64);
    // One coherent snapshot per batch: every query in it is encoded by the
    // same bundle and searched against the same generation, and every reply
    // reports exactly that `(generation, bundle)` pair. Commits and reloads
    // that land mid-batch take effect from the next batch on.
    let snap = engine.snapshot();
    let cols = snap.bundle.model.input_dim();
    // Expire at dequeue time: a deadline that passed while queued means the
    // client has given up; encoding it would only delay live queries.
    let now = Instant::now();
    let mut live = Vec::with_capacity(batch.len());
    for p in batch {
        if p.deadline.is_some_and(|d| d <= now) {
            obs_count!("serve.deadline_exceeded", 1);
            let id = p.id;
            (p.reply)(Response::Error {
                id,
                reason: Reason::DeadlineExceeded,
                detail: "deadline passed while queued".to_string(),
            });
        } else if p.features.len() != cols {
            // The admission-time width check ran against an older bundle; a
            // reload swapped input dimensions while this query was queued.
            let id = p.id;
            let got = p.features.len();
            (p.reply)(Response::Error {
                id,
                reason: Reason::BadRequest,
                detail: format!("expected {cols} features, got {got} (bundle reloaded)"),
            });
        } else {
            live.push(p);
        }
    }
    if live.is_empty() {
        return;
    }
    let mut flat = Vec::with_capacity(live.len() * cols);
    for p in &live {
        flat.extend_from_slice(&p.features);
    }
    let codes = snap.encode(&Matrix::from_vec(live.len(), cols, flat));
    for (i, p) in live.into_iter().enumerate() {
        let hits = snap.generation.search(&codes, i, p.top_k);
        obs_count!("serve.answered", 1);
        (p.reply)(Response::Hits {
            id: p.id,
            hits,
            generation: snap.generation.seq(),
            bundle: snap.bundle.version,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::decode_response;
    use uhscm_linalg::rng::seeded;

    fn test_engine() -> Engine {
        let mut rng = seeded(21);
        let model = Mlp::hashing_network(4, &[3], 8, &mut rng);
        let db_input = uhscm_linalg::rng::gauss_matrix(&mut rng, 12, 4, 1.0);
        let db = BitCodes::from_real(&model.infer(&db_input));
        Engine::new(model, &db, 2).expect("widths match")
    }

    /// Run one frame through `handle_frame` and decode the reply it queued.
    fn one_frame(
        engine: &Engine,
        queue: &AdmissionQueue,
        body: &str,
        writable: bool,
        max_top_k: usize,
    ) -> Response {
        let (out, rx) = mpsc::channel::<Vec<u8>>();
        handle_frame(body, engine, queue, &out, writable, max_top_k);
        let frame = rx.try_recv().expect("a reply was queued");
        let body = String::from_utf8(frame[4..].to_vec()).expect("utf8 payload");
        decode_response(&body).expect("decodable reply")
    }

    #[test]
    fn engine_rejects_width_mismatch() {
        let mut rng = seeded(3);
        let model = Mlp::hashing_network(4, &[], 8, &mut rng);
        let db = BitCodes::from_bools(&[vec![true; 6]]);
        match Engine::new(model, &db, 2) {
            Err(ServeError::Config(msg)) => {
                assert!(msg.contains("8-bit") && msg.contains("6-bit"), "{msg}");
            }
            Err(other) => panic!("wrong error: {other}"),
            Ok(_) => panic!("mismatched widths accepted"),
        }
    }

    #[test]
    fn batched_encode_rows_match_single_row_encodes() {
        let mut rng = seeded(11);
        let model = Mlp::hashing_network(6, &[5], 16, &mut rng);
        let db_input = uhscm_linalg::rng::gauss_matrix(&mut rng, 20, 6, 1.0);
        let db = BitCodes::from_real(&model.infer(&db_input));
        let engine = Engine::new(model, &db, 3).expect("widths match");

        let queries = uhscm_linalg::rng::gauss_matrix(&mut rng, 7, 6, 1.0);
        let batched = engine.encode(&queries);
        for i in 0..queries.rows() {
            let single = engine.encode(&Matrix::from_vec(1, 6, queries.row(i).to_vec()));
            assert_eq!(single.code(0), batched.code(i), "row {i}");
        }
    }

    #[test]
    fn mutations_after_drain_are_rejected_not_dropped() {
        let engine = test_engine();
        let queue = AdmissionQueue::new(4);
        queue.close();

        let gen_before = engine.index.generation();
        for body in [
            r#"{"type":"insert","id":1,"rows":[[0.1,0.2,0.3,0.4]]}"#,
            r#"{"type":"remove","id":2,"index":0}"#,
            r#"{"type":"reload","id":3,"path":"/nowhere"}"#,
        ] {
            match one_frame(&engine, &queue, body, true, 1024) {
                Response::Error { reason: Reason::Draining, .. } => {}
                other => panic!("expected draining refusal for {body}, got {other:?}"),
            }
        }
        // Refused means refused: nothing committed behind the client's back.
        assert_eq!(engine.index.generation(), gen_before);

        // Flush is read-only state readback and still answers while
        // draining, so a client can confirm what did commit.
        match one_frame(&engine, &queue, r#"{"type":"flush","id":4}"#, true, 1024) {
            Response::Flushed { id: 4, generation, live, total, bundle } => {
                assert_eq!((generation, live, total, bundle), (0, 12, 12, 0));
            }
            other => panic!("expected flushed, got {other:?}"),
        }
    }

    #[test]
    fn readonly_server_refuses_mutations_but_answers_reads() {
        let engine = test_engine();
        let queue = AdmissionQueue::new(4);

        match one_frame(&engine, &queue, r#"{"type":"remove","id":7,"index":0}"#, false, 1024) {
            Response::Error { id: 7, reason: Reason::BadRequest, detail } => {
                assert!(detail.contains("read-only"), "{detail}");
            }
            other => panic!("expected read-only refusal, got {other:?}"),
        }
        match one_frame(&engine, &queue, r#"{"type":"flush","id":8}"#, false, 1024) {
            Response::Flushed { id: 8, .. } => {}
            other => panic!("expected flushed, got {other:?}"),
        }
    }

    #[test]
    fn insert_receipt_reports_the_encoding_bundle_and_commit() {
        let engine = test_engine();
        let (commit, bundle) =
            engine.insert_rows(&[vec![0.5, -0.5, 1.0, -1.0]]).expect("widths ok");
        assert_eq!(bundle, 0);
        assert_eq!(commit.generation, 1);
        assert_eq!(u64::from(commit.first_index), 12);
        assert_eq!(commit.count, 1);
        assert_eq!(commit.live, 13);

        // Width mismatch is a client error, not a panic.
        let err = engine.insert_rows(&[vec![0.5; 3]]).expect_err("wrong width");
        assert!(err.contains("expected 4 features"), "{err}");

        // Empty insert: a receipt of the current state, no commit.
        let (noop, _) = engine.insert_rows(&[]).expect("empty ok");
        assert_eq!((noop.generation, noop.count), (1, 0));
        assert_eq!(engine.index.generation(), 1);
    }

    #[test]
    fn remove_out_of_range_is_an_error_not_a_panic() {
        let engine = test_engine();
        let err = engine.remove_index(99).expect_err("out of range");
        assert!(err.contains("out of range"), "{err}");
        let commit = engine.remove_index(0).expect("in range");
        assert!(commit.removed);
        assert_eq!(commit.generation, 1);
    }

    #[test]
    fn install_bundle_bumps_version_and_rejects_width_mismatch() {
        let engine = test_engine();
        let mut rng = seeded(22);

        // Wrong output width: refused, serving bundle untouched.
        let narrow = Mlp::hashing_network(4, &[], 5, &mut rng);
        assert!(engine.install_bundle(narrow, Vec::new()).is_err());
        assert_eq!(engine.bundle().version, 0);

        // A compatible model installs as version 1 and serves immediately.
        let next = Mlp::hashing_network(4, &[2], 8, &mut rng);
        let next_params = next.flat_params();
        let (version, vocab) =
            engine.install_bundle(next, vec!["sky".into(), "sea".into()]).expect("compatible");
        assert_eq!((version, vocab), (1, 2));
        let bundle = engine.bundle();
        assert_eq!(bundle.version, 1);
        assert_eq!(bundle.model.flat_params(), next_params);
        assert_eq!(bundle.vocab, vec!["sky".to_string(), "sea".to_string()]);
    }
}
