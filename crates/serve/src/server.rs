//! The TCP front-end: accepts connections, admits queries, and runs the
//! batch worker that coalesces them into single forward passes.
//!
//! Thread layout (all threads via [`crate::pool::WorkerPool`]):
//!
//! ```text
//! accept ──┬── conn #1 ──┬─┐        submit          ┌── batch worker
//!          ├── conn #2 …│ ├──▶ AdmissionQueue ─────▶┤  (encode + search,
//!          │             │ │   (bounded, shedding)  └─┐ replies as frames)
//!          │  conn-write ◀┴───────────────────────────┘
//!          └─ (one per conn: sole owner of the write half)
//! ```
//!
//! Each connection thread reads frames with a short socket timeout so it
//! can poll the drain flag between reads. Replies are serialized to frame
//! bytes by whichever thread produced them (connection thread for protocol
//! errors, batch worker for answers) and queued to a per-connection writer
//! thread that owns the socket's write half outright — responses stay
//! well-framed under pipelining without ever holding a lock across a
//! socket write, and a reply can still land after the read loop has
//! exited. The writer exits once every sender (the read loop plus any
//! in-flight reply closures) is gone. Shutdown: set the drain flag, close
//! the queue (new submits answer `draining`, admitted work still runs),
//! poke the acceptor awake, then join every thread.

use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc};
use std::time::{Duration, Instant};

use uhscm_eval::BitCodes;
use uhscm_linalg::Matrix;
use uhscm_nn::Mlp;
use uhscm_obs::{obs_count, obs_span, registry};

use crate::batch::{AdmissionQueue, BatchPolicy, PendingQuery, SubmitError};
use crate::pool::WorkerPool;
use crate::protocol::{
    decode_request, encode_frame, encode_response, FrameReader, Reason, Request, Response,
};
use crate::shard::ShardedIndex;

/// How often a connection thread wakes from a blocking read to poll the
/// drain flag.
const READ_TICK: Duration = Duration::from_millis(25);

/// Everything that can go wrong bringing the service up.
#[derive(Debug)]
pub enum ServeError {
    Io(io::Error),
    /// Inconsistent configuration (e.g. model width vs. database width).
    Config(String),
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Io(e) => write!(f, "serve I/O error: {e}"),
            ServeError::Config(msg) => write!(f, "serve config error: {msg}"),
        }
    }
}

impl std::error::Error for ServeError {}

impl From<io::Error> for ServeError {
    fn from(e: io::Error) -> Self {
        ServeError::Io(e)
    }
}

/// Server tunables. `Default` binds an ephemeral loopback port with small
/// batching windows suited to tests; the CLI overrides from flags.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Bind address, e.g. `127.0.0.1:7878` (`:0` picks an ephemeral port).
    pub addr: String,
    /// Number of contiguous index shards (clamped to the database size).
    pub shards: usize,
    /// Most queries coalesced into one forward pass.
    pub max_batch: usize,
    /// How long the batch worker waits for stragglers once it has one query.
    pub max_wait: Duration,
    /// Admission queue bound; submissions beyond it are shed.
    pub queue_cap: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:0".to_string(),
            shards: 2,
            max_batch: 16,
            max_wait: Duration::from_millis(1),
            queue_cap: 256,
        }
    }
}

/// The query engine: a trained hashing model plus the sharded code index.
/// Immutable after construction, shared read-only across worker threads.
pub struct Engine {
    model: Mlp,
    index: ShardedIndex,
}

impl Engine {
    /// Pair a model with a code database.
    ///
    /// # Errors
    ///
    /// [`ServeError::Config`] if the model's output width differs from the
    /// database's code width.
    pub fn new(model: Mlp, db: &BitCodes, shards: usize) -> Result<Self, ServeError> {
        if model.output_dim() != db.bits() {
            return Err(ServeError::Config(format!(
                "model emits {}-bit codes but the database stores {}-bit codes",
                model.output_dim(),
                db.bits()
            )));
        }
        Ok(Self { index: ShardedIndex::new(db, shards), model })
    }

    /// Feature dimension a query must supply.
    pub fn input_dim(&self) -> usize {
        self.model.input_dim()
    }

    /// Code width in bits.
    pub fn bits(&self) -> usize {
        self.index.bits()
    }

    /// Number of database codes.
    pub fn db_len(&self) -> usize {
        self.index.len()
    }

    /// Number of index shards actually in use.
    pub fn num_shards(&self) -> usize {
        self.index.num_shards()
    }

    /// One batched forward pass + sign quantization. Row `i` of the result
    /// is bitwise-identical to encoding row `i` alone: inference computes
    /// each output row from its input row only, in fixed k-order.
    pub fn encode(&self, batch: &Matrix) -> BitCodes {
        obs_span!("serve_encode");
        BitCodes::from_real(&self.model.infer(batch))
    }

    /// Sharded global top-`n` for query `qi` of `codes` (see
    /// [`ShardedIndex::search`] for the determinism contract).
    pub fn search(&self, codes: &BitCodes, qi: usize, n: usize) -> Vec<(u32, u32)> {
        self.index.search(codes, qi, n)
    }
}

/// A running service; dropping it without [`Server::shutdown`] detaches the
/// worker threads (they keep serving until the process exits).
pub struct Server {
    addr: SocketAddr,
    queue: Arc<AdmissionQueue>,
    draining: Arc<AtomicBool>,
    pool: WorkerPool,
}

impl Server {
    /// Bind, spawn the batch worker and acceptor, and start serving.
    ///
    /// # Errors
    ///
    /// Propagates bind/spawn failures; a partially-started server is torn
    /// back down before the error is returned.
    pub fn start(engine: Engine, config: &ServeConfig) -> Result<Server, ServeError> {
        let listener = TcpListener::bind(config.addr.as_str())?;
        let addr = listener.local_addr()?;
        let engine = Arc::new(engine);
        let queue = Arc::new(AdmissionQueue::new(config.queue_cap));
        let draining = Arc::new(AtomicBool::new(false));
        let policy = BatchPolicy { max_batch: config.max_batch.max(1), max_wait: config.max_wait };

        let mut pool = WorkerPool::new();
        {
            let engine = Arc::clone(&engine);
            let queue = Arc::clone(&queue);
            pool.spawn("batch", move || batch_worker(&engine, &queue, policy))?;
        }
        {
            let accept_queue = Arc::clone(&queue);
            let draining = Arc::clone(&draining);
            if let Err(e) = pool
                .spawn("accept", move || accept_loop(&listener, &engine, &accept_queue, &draining))
            {
                // Unwind the batch worker we already started.
                queue.close();
                pool.join_all();
                return Err(ServeError::Io(e));
            }
        }
        Ok(Server { addr, queue, draining, pool })
    }

    /// The actually-bound address (resolves `:0` ephemeral ports).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Queries currently waiting for the batch worker (diagnostic).
    pub fn queue_depth(&self) -> usize {
        self.queue.depth()
    }

    /// Graceful drain: stop admitting, serve everything already admitted,
    /// then join every worker thread. Returns once the last reply is out.
    pub fn shutdown(mut self) {
        self.draining.store(true, Ordering::SeqCst);
        self.queue.close();
        // The acceptor blocks in `accept`; a throwaway connection wakes it
        // so it can observe the drain flag and exit.
        let _ = TcpStream::connect(self.addr);
        self.pool.join_all();
    }
}

fn accept_loop(
    listener: &TcpListener,
    engine: &Arc<Engine>,
    queue: &Arc<AdmissionQueue>,
    draining: &Arc<AtomicBool>,
) {
    let mut conns = WorkerPool::new();
    for stream in listener.incoming() {
        if draining.load(Ordering::SeqCst) {
            break;
        }
        let Ok(stream) = stream else { continue };
        obs_count!("serve.connections", 1);
        let engine = Arc::clone(engine);
        let queue = Arc::clone(queue);
        let draining = Arc::clone(draining);
        // A failed spawn just drops this connection; the service lives on.
        let _ = conns.spawn("conn", move || handle_conn(stream, &engine, &queue, &draining));
    }
    conns.join_all();
}

/// Serialize a response and queue its frame bytes to the connection's
/// writer thread. Encoding happens on the producing thread; the actual
/// socket write happens on the writer thread, so no lock is ever held
/// across a blocking write. Send errors are ignored: the writer is gone
/// only when the client is, and the read loop will notice on its own.
fn send(out: &mpsc::Sender<Vec<u8>>, resp: &Response) {
    let body = encode_response(resp);
    if let Ok(frame) = encode_frame(&body) {
        let _ = out.send(frame);
    }
}

/// The per-connection writer: sole owner of the socket's write half.
/// Frames arrive whole, so interleaved producers (connection thread and
/// batch worker) can never tear each other's frames. Runs until every
/// sender has dropped; after a write error it keeps draining so producers
/// are never left with a wedged channel.
fn writer_loop(mut write_half: TcpStream, rx: &mpsc::Receiver<Vec<u8>>) {
    let mut broken = false;
    while let Ok(frame) = rx.recv() {
        if broken {
            continue;
        }
        if write_half.write_all(&frame).and_then(|()| write_half.flush()).is_err() {
            broken = true; // client is gone; swallow the backlog
        }
    }
}

fn handle_conn(stream: TcpStream, engine: &Engine, queue: &AdmissionQueue, draining: &AtomicBool) {
    if stream.set_read_timeout(Some(READ_TICK)).is_err() {
        return;
    }
    let _ = stream.set_nodelay(true);
    let write_half = match stream.try_clone() {
        Ok(w) => w,
        Err(_) => return,
    };
    let (out, rx) = mpsc::channel::<Vec<u8>>();
    let mut writers = WorkerPool::new();
    if writers.spawn("conn-write", move || writer_loop(write_half, &rx)).is_err() {
        return;
    }
    read_loop(stream, engine, queue, draining, &out);
    // Drop our sender so the writer exits once every in-flight reply
    // closure (each holds a clone) has landed, then wait for it: the last
    // byte is on the wire before the connection thread retires.
    drop(out);
    writers.join_all();
}

fn read_loop(
    mut reader: TcpStream,
    engine: &Engine,
    queue: &AdmissionQueue,
    draining: &AtomicBool,
    out: &mpsc::Sender<Vec<u8>>,
) {
    let mut frames = FrameReader::new();
    let mut buf = [0u8; 4096];
    loop {
        match reader.read(&mut buf) {
            Ok(0) => return, // peer closed
            Ok(n) => frames.push_bytes(&buf[..n]),
            Err(e)
                if matches!(
                    e.kind(),
                    io::ErrorKind::WouldBlock
                        | io::ErrorKind::TimedOut
                        | io::ErrorKind::Interrupted
                ) =>
            {
                if draining.load(Ordering::SeqCst) {
                    return;
                }
                continue;
            }
            Err(_) => return,
        }
        loop {
            match frames.next_frame() {
                Ok(Some(body)) => handle_frame(&body, engine, queue, out),
                Ok(None) => break,
                Err(e) => {
                    // Framing is lost; report and hang up.
                    send(
                        out,
                        &Response::Error {
                            id: 0,
                            reason: Reason::BadRequest,
                            detail: e.to_string(),
                        },
                    );
                    return;
                }
            }
        }
    }
}

fn handle_frame(body: &str, engine: &Engine, queue: &AdmissionQueue, out: &mpsc::Sender<Vec<u8>>) {
    let req = match decode_request(body) {
        Ok(r) => r,
        Err(detail) => {
            send(out, &Response::Error { id: 0, reason: Reason::BadRequest, detail });
            return;
        }
    };
    let q = match req {
        Request::Ping => {
            send(out, &Response::Pong);
            return;
        }
        Request::Query(q) => q,
    };
    obs_count!("serve.requests", 1);
    if q.features.len() != engine.input_dim() {
        send(
            out,
            &Response::Error {
                id: q.id,
                reason: Reason::BadRequest,
                detail: format!(
                    "expected {} features, got {}",
                    engine.input_dim(),
                    q.features.len()
                ),
            },
        );
        return;
    }
    if q.top_k == 0 {
        send(
            out,
            &Response::Error {
                id: q.id,
                reason: Reason::BadRequest,
                detail: "top_k must be at least 1".to_string(),
            },
        );
        return;
    }
    let deadline = q.deadline_ms.map(|ms| Instant::now() + Duration::from_millis(ms));
    let w = out.clone();
    let pending = PendingQuery {
        id: q.id,
        features: q.features,
        top_k: q.top_k,
        deadline,
        reply: Box::new(move |resp| send(&w, &resp)),
    };
    match queue.submit(pending) {
        Ok(()) => {}
        Err((shed, SubmitError::Overloaded)) => {
            obs_count!("serve.shed", 1);
            send(
                out,
                &Response::Error {
                    id: shed.id,
                    reason: Reason::Overloaded,
                    detail: "admission queue full".to_string(),
                },
            );
        }
        Err((shed, SubmitError::Draining)) => {
            send(
                out,
                &Response::Error {
                    id: shed.id,
                    reason: Reason::Draining,
                    detail: "server is draining".to_string(),
                },
            );
        }
    }
}

fn batch_worker(engine: &Engine, queue: &AdmissionQueue, policy: BatchPolicy) {
    while let Some(batch) = queue.next_batch(&policy) {
        run_batch(engine, batch);
    }
}

fn run_batch(engine: &Engine, batch: Vec<PendingQuery>) {
    obs_span!("serve_batch");
    registry::histogram_record("serve.batch.size", batch.len() as f64);
    // Expire at dequeue time: a deadline that passed while queued means the
    // client has given up; encoding it would only delay live queries.
    let now = Instant::now();
    let mut live = Vec::with_capacity(batch.len());
    for p in batch {
        if p.deadline.is_some_and(|d| d <= now) {
            obs_count!("serve.deadline_exceeded", 1);
            let id = p.id;
            (p.reply)(Response::Error {
                id,
                reason: Reason::DeadlineExceeded,
                detail: "deadline passed while queued".to_string(),
            });
        } else {
            live.push(p);
        }
    }
    if live.is_empty() {
        return;
    }
    let cols = engine.input_dim();
    let mut flat = Vec::with_capacity(live.len() * cols);
    for p in &live {
        flat.extend_from_slice(&p.features);
    }
    let codes = engine.encode(&Matrix::from_vec(live.len(), cols, flat));
    for (i, p) in live.into_iter().enumerate() {
        let hits = engine.search(&codes, i, p.top_k);
        obs_count!("serve.answered", 1);
        (p.reply)(Response::Hits { id: p.id, hits });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uhscm_linalg::rng::seeded;

    #[test]
    fn engine_rejects_width_mismatch() {
        let mut rng = seeded(3);
        let model = Mlp::hashing_network(4, &[], 8, &mut rng);
        let db = BitCodes::from_bools(&[vec![true; 6]]);
        match Engine::new(model, &db, 2) {
            Err(ServeError::Config(msg)) => {
                assert!(msg.contains("8-bit") && msg.contains("6-bit"), "{msg}");
            }
            Err(other) => panic!("wrong error: {other}"),
            Ok(_) => panic!("mismatched widths accepted"),
        }
    }

    #[test]
    fn batched_encode_rows_match_single_row_encodes() {
        let mut rng = seeded(11);
        let model = Mlp::hashing_network(6, &[5], 16, &mut rng);
        let db_input = uhscm_linalg::rng::gauss_matrix(&mut rng, 20, 6, 1.0);
        let db = BitCodes::from_real(&model.infer(&db_input));
        let engine = Engine::new(model, &db, 3).expect("widths match");

        let queries = uhscm_linalg::rng::gauss_matrix(&mut rng, 7, 6, 1.0);
        let batched = engine.encode(&queries);
        for i in 0..queries.rows() {
            let single = engine.encode(&Matrix::from_vec(1, 6, queries.row(i).to_vec()));
            assert_eq!(single.code(0), batched.code(i), "row {i}");
        }
    }
}
