//! Hot-reloadable model bundle: the hashing network and its concept
//! vocabulary, swapped as one atomic unit.
//!
//! The serve path must never encode a query with a model from one bundle
//! and interpret it against the vocabulary of another — UHSCM's mined
//! concepts are only meaningful relative to the model that was trained
//! against them. Packaging both in a single [`Bundle`] behind one
//! `Arc` swap (see `Engine::install_bundle`) makes a torn pair
//! unrepresentable: every reader clones the `Arc` once and sees exactly one
//! `(model, vocab)` version for the lifetime of that reference.

use std::fs;
use std::io;
use std::path::Path;

use uhscm_nn::Mlp;

/// One immutable model + vocabulary pair, tagged with a monotonically
/// increasing version (0 for the bundle the server started with).
pub struct Bundle {
    pub version: u64,
    pub model: Mlp,
    /// Mined concept vocabulary, one term per `vocab.txt` line; empty when
    /// the bundle directory ships no vocabulary.
    pub vocab: Vec<String>,
}

impl Bundle {
    /// The bundle a server boots with (version 0). Crate-internal: outside
    /// callers go through [`crate::Engine::with_vocab`], which validates
    /// widths before wrapping.
    pub(crate) fn initial(model: Mlp, vocab: Vec<String>) -> Bundle {
        Bundle { version: 0, model, vocab }
    }

    /// Load the `(model, vocab)` pair from a bundle directory: `model.nn`
    /// (required, checksummed [`Mlp`] format) plus `vocab.txt` (optional,
    /// one term per line, blank lines skipped).
    ///
    /// # Errors
    ///
    /// I/O errors propagate; a corrupt `model.nn` surfaces as
    /// `InvalidData`. The caller assigns the version at install time, so a
    /// failed load leaves the serving bundle untouched.
    pub fn load_dir(dir: &Path) -> io::Result<(Mlp, Vec<String>)> {
        let mut net_file = fs::File::open(dir.join("model.nn"))?;
        let model = Mlp::load(&mut net_file)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
        let vocab = match fs::read_to_string(dir.join("vocab.txt")) {
            Ok(raw) => raw
                .lines()
                .map(str::trim)
                .filter(|line| !line.is_empty())
                .map(str::to_string)
                .collect(),
            Err(e) if e.kind() == io::ErrorKind::NotFound => Vec::new(),
            Err(e) => return Err(e),
        };
        Ok((model, vocab))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uhscm_linalg::rng::seeded;

    fn temp_dir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("uhscm-bundle-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).expect("create temp bundle dir");
        dir
    }

    #[test]
    fn load_dir_round_trips_model_and_vocab() {
        let dir = temp_dir("roundtrip");
        let mut rng = seeded(77);
        let model = Mlp::hashing_network(5, &[3], 8, &mut rng);
        let mut f = fs::File::create(dir.join("model.nn")).expect("create model.nn");
        model.save(&mut f).expect("save model");
        fs::write(dir.join("vocab.txt"), "sky\n\n  ocean \nforest\n").expect("write vocab");

        let (loaded, vocab) = Bundle::load_dir(&dir).expect("load bundle dir");
        assert_eq!(loaded.flat_params(), model.flat_params());
        assert_eq!(vocab, vec!["sky", "ocean", "forest"]);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn missing_vocab_is_empty_not_an_error() {
        let dir = temp_dir("novocab");
        let mut rng = seeded(78);
        let model = Mlp::hashing_network(4, &[], 6, &mut rng);
        let mut f = fs::File::create(dir.join("model.nn")).expect("create model.nn");
        model.save(&mut f).expect("save model");

        let (_, vocab) = Bundle::load_dir(&dir).expect("load without vocab");
        assert!(vocab.is_empty());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn missing_model_is_an_error() {
        let dir = temp_dir("nomodel");
        assert!(Bundle::load_dir(&dir).is_err());
        let _ = fs::remove_dir_all(&dir);
    }
}
