//! `uhscm-serve`: the online retrieval service for UHSCM hash codes.
//!
//! The offline pipeline (train → encode database → evaluate) produces a
//! hashing model and a packed code database; this crate puts them behind a
//! TCP endpoint. Four pieces:
//!
//! * [`protocol`] — length-prefixed JSON frames; requests carry raw feature
//!   vectors, responses carry `(distance, index)` hits or a structured
//!   error reason.
//! * [`shard`] — the database split into contiguous [`ShardedIndex`] bands,
//!   searched fan-out/merge with results bit-for-bit identical to the
//!   offline `HammingRanker` at any shard count.
//! * [`batch`] — bounded [`AdmissionQueue`] with load shedding, and the
//!   batch-formation policy that coalesces concurrent queries into one
//!   forward pass.
//! * [`server`] — the accept/connection/batch-worker thread layout (all
//!   threads via [`pool::WorkerPool`]) with per-request deadlines and
//!   graceful drain.
//!
//! Determinism is the headline contract: a query answered online returns
//! exactly the hits the offline evaluation pipeline would rank for the same
//! feature vector — same model, same tie-breaking, regardless of batch
//! composition or shard count. The loopback integration tests pin this
//! against the offline oracle.

pub mod batch;
pub mod pool;
pub mod protocol;
pub mod server;
pub mod shard;
pub mod synth;

pub use batch::{AdmissionQueue, BatchPolicy, PendingQuery, SubmitError};
pub use protocol::{
    decode_request, decode_response, encode_frame, encode_request, encode_response,
    read_frame_blocking, write_frame, FrameReader, QueryRequest, Reason, Request, Response,
    MAX_FRAME,
};
pub use server::{Engine, ServeConfig, ServeError, Server};
pub use shard::ShardedIndex;
pub use synth::{workload, SynthWorkload};
