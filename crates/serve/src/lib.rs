//! `uhscm-serve`: the online retrieval service for UHSCM hash codes.
//!
//! The offline pipeline (train → encode database → evaluate) produces a
//! hashing model and a packed code database; this crate puts them behind a
//! TCP endpoint. Four pieces:
//!
//! * [`protocol`] — length-prefixed JSON frames; requests carry raw feature
//!   vectors or mutations (`insert`/`remove`/`flush`/`reload`), responses
//!   carry `(distance, index)` hits tagged with the `(generation, bundle)`
//!   they were evaluated at, mutation receipts with an explicit
//!   `committed_generation`, or a structured error reason.
//! * [`shard`] — the generation-swapped [`ShardedIndex`]: immutable
//!   copy-on-write segments searched fan-out/merge with results bit-for-bit
//!   identical to the offline `HammingRanker` at any shard count; inserts
//!   and removes commit new generations via an atomic pointer swap while
//!   in-flight queries finish on the generation they pinned.
//! * [`bundle`] — the hot-reloadable serving [`Bundle`] (model + concept
//!   vocabulary), swapped as one atomic unit so a query never encodes with
//!   a torn pair.
//! * [`batch`] — bounded [`AdmissionQueue`] with load shedding, and the
//!   batch-formation policy that coalesces concurrent queries into one
//!   forward pass.
//! * [`server`] — the accept/connection/batch-worker thread layout (all
//!   threads via [`pool::WorkerPool`]) with per-request deadlines, a
//!   synchronous write path, and graceful drain (admitted mutations commit;
//!   late ones are answered `draining`, never silently dropped).
//!
//! Determinism is the headline contract: a query answered online returns
//! exactly the hits the offline evaluation pipeline would rank for the same
//! feature vector against the database state at the response's reported
//! generation — same model, same tie-breaking, regardless of batch
//! composition, shard count, or concurrent mutations. The loopback
//! integration tests and the swap-boundary harness pin this against the
//! offline oracle.

pub mod batch;
pub mod bundle;
pub mod pool;
pub mod protocol;
pub mod server;
pub mod shard;
pub mod synth;

pub use batch::{AdmissionQueue, BatchPolicy, PendingQuery, SubmitError};
pub use bundle::Bundle;
pub use protocol::{
    decode_request, decode_response, encode_frame, encode_request, encode_response,
    read_frame_blocking, write_frame, FrameReader, QueryRequest, Reason, Request, Response,
    MAX_FRAME,
};
pub use server::{Engine, EngineSnapshot, ServeConfig, ServeError, Server};
pub use shard::{Generation, GenesisBuilder, InsertCommit, RemoveCommit, ShardedIndex};
pub use synth::{workload, SynthWorkload};
