//! Generation-swapped sharded Hamming index: copy-on-write segments with
//! lock-free-for-readers commits.
//!
//! The database lives in immutable [`Generation`]s. A generation is a list
//! of contiguous, `Arc`-shared *segments* (each a [`BitCodes`] block whose
//! local index `i` is global index `offset + i`) plus a tombstone set of
//! logically deleted global indices. Readers grab the current generation
//! with one `Arc` clone ([`ShardedIndex::snapshot`]) and search it for as
//! long as they like; writers build the next generation off the current one
//! — sharing every existing segment, appending at most one new segment, or
//! adding one tombstone — and commit it with a single pointer swap. At any
//! commit instant at most two generations are materialized (the outgoing
//! one and its child), and they share all segment storage, so the extra
//! memory is `O(inserted codes + tombstones)`, never a second database.
//!
//! Determinism contract (unchanged from the read-only index): segments are
//! contiguous global-index bands, so a segment-local scan that emits
//! `(distance, global_index)` candidates in ascending order, merged with
//! [`uhscm_eval::merge_top_n`], reproduces the single-scan
//! `(distance, index)` ranking bit-for-bit at any segment count. Tombstoned
//! indices are skipped during the scan itself, which is exactly what a
//! linear scan over the live items would produce — the mutation proptest
//! and the swap-boundary loopback harness both pin this against oracles.
//!
//! Lock discipline (checked by `xtask lint`'s lock passes): `mutate` is a
//! plain writer-serialization mutex; `current` is the published pointer.
//! Writers take `mutate`, read `current` for one line to clone the base
//! `Arc`, build the child off-lock, and write `current` for one line to
//! swap. Readers touch `current` for one line only. No blocking I/O or
//! search work ever happens under either lock.

use std::collections::BTreeSet;
use std::collections::BinaryHeap;
use std::sync::{Arc, Mutex, MutexGuard, RwLock, RwLockReadGuard, RwLockWriteGuard};

use uhscm_eval::bitcode::hamming_scan;
use uhscm_eval::{merge_top_n, BitCodes};
use uhscm_linalg::par;
use uhscm_obs::obs_span;

/// One immutable, contiguous block of database codes. Shared by `Arc`
/// between generations: an insert-built child reuses every parent segment.
struct Segment {
    /// Global index of this segment's first code.
    offset: u32,
    codes: BitCodes,
}

impl Segment {
    /// Ascending `(distance, global_index)` top-`n` over this segment's
    /// *live* codes. The bounded max-heap keeps the best `n` candidates and
    /// `into_sorted_vec` emits them in exactly the counting-sort tie-break
    /// order (the lexicographic key is unique per candidate), so skipping
    /// tombstones here is indistinguishable from scanning a database that
    /// never contained them.
    fn top_n(
        &self,
        queries: &BitCodes,
        qi: usize,
        n: usize,
        tombstones: &BTreeSet<u32>,
    ) -> Vec<(u32, u32)> {
        let total = self.codes.len();
        // The heap is trimmed to `n` entries after every push and can never
        // hold more than this segment's code count, so its capacity is
        // bounded by what we store — a caller-supplied `n` (ultimately a
        // wire `top_k`) cannot size the allocation past the data.
        let cap = n.min(total).saturating_add(1);
        let mut heap: BinaryHeap<(u32, u32)> = BinaryHeap::with_capacity(cap);
        let mut block = [0u32; hamming_scan::SCAN_BLOCK];
        let mut start = 0;
        while start < total {
            let end = (start + hamming_scan::SCAN_BLOCK).min(total);
            let dists = &mut block[..end - start];
            hamming_scan::scan_range_into(queries, qi, &self.codes, start..end, dists);
            for (off, &d) in dists.iter().enumerate() {
                let global = self.offset + (start + off) as u32;
                if tombstones.contains(&global) {
                    continue;
                }
                let cand = (d, global);
                if heap.len() < n {
                    heap.push(cand);
                } else if let Some(&worst) = heap.peek() {
                    if cand < worst {
                        heap.pop();
                        heap.push(cand);
                    }
                }
            }
            start = end;
        }
        heap.into_sorted_vec()
    }
}

/// One immutable, committed state of the database: `Arc`-shared segments
/// plus the tombstone set. Queries that captured a generation keep searching
/// it unaffected by later commits.
pub struct Generation {
    /// Commit sequence number; the genesis build is 0, every committed
    /// mutation increments by exactly 1.
    seq: u64,
    bits: usize,
    segments: Vec<Arc<Segment>>,
    /// Logically deleted global indices (skipped during scans).
    tombstones: BTreeSet<u32>,
    /// Total codes across all segments, including tombstoned ones.
    total: usize,
}

impl Generation {
    /// Generation 0: `db` split into `num_shards` contiguous bands (clamped
    /// to `1..=len` non-empty bands; an empty database yields no segments).
    fn genesis(db: &BitCodes, num_shards: usize) -> Generation {
        let segments = par::partition(db.len(), num_shards.max(1))
            .into_iter()
            .map(|band| {
                Arc::new(Segment { offset: band.start as u32, codes: db.slice(band.clone()) })
            })
            .collect();
        Generation {
            seq: 0,
            bits: db.bits(),
            segments,
            tombstones: BTreeSet::new(),
            total: db.len(),
        }
    }

    /// The next generation sharing every segment of `self`: `O(segments)`
    /// `Arc` clones plus one tombstone-set clone, never a code copy.
    fn child(&self) -> Generation {
        Generation {
            seq: self.seq + 1,
            bits: self.bits,
            segments: self.segments.clone(),
            tombstones: self.tombstones.clone(),
            total: self.total,
        }
    }

    /// Append `codes` as one new segment at the end of the index space.
    fn push_segment(&mut self, codes: &BitCodes) {
        self.segments.push(Arc::new(Segment { offset: self.total as u32, codes: codes.clone() }));
        self.total += codes.len();
    }

    /// Commit sequence number of this generation.
    pub fn seq(&self) -> u64 {
        self.seq
    }

    /// Code width in bits.
    pub fn bits(&self) -> usize {
        self.bits
    }

    /// Codes ever inserted, including tombstoned ones.
    pub fn total_len(&self) -> usize {
        self.total
    }

    /// Live (non-tombstoned) codes.
    pub fn live_len(&self) -> usize {
        self.total - self.tombstones.len()
    }

    /// Number of segments (genesis bands plus one per committed insert).
    pub fn num_segments(&self) -> usize {
        self.segments.len()
    }

    /// Whether global index `i` exists and is not tombstoned.
    pub fn is_live(&self, i: usize) -> bool {
        match u32::try_from(i) {
            // Indices that cannot fit the tombstone key type cannot have
            // been stored either, so they are simply not live.
            Ok(key) => i < self.total && !self.tombstones.contains(&key),
            Err(_) => false,
        }
    }

    /// Global top-`n` for query `qi` of `queries`, as `(distance,
    /// global_index)` pairs in ascending `(distance, index)` order over the
    /// live codes — the offline ranker's counting-sort tie-break contract,
    /// restricted to non-tombstoned indices.
    ///
    /// Segments are searched via [`par::par_map_chunks`], so the fan-out
    /// uses the same deterministic worker pool as the dense kernels (and
    /// runs serially under a serial plan, bit-for-bit identically).
    pub fn search(&self, queries: &BitCodes, qi: usize, n: usize) -> Vec<(u32, u32)> {
        obs_span!("serve_search");
        if n == 0 || self.segments.is_empty() {
            return Vec::new();
        }
        // Clamp the caller-provided `n` into a fresh binding before it
        // reaches any heap- or buffer-sizing position: no search can return
        // more than `total` hits, so the clamp never changes a result, and
        // the taint pass's name-based tracking sees the sanitized value.
        let want = n.min(self.total);
        // Work estimate: one popcount pass over every stored word.
        let words = self.bits.div_ceil(64).max(1);
        let per_segment: Vec<Vec<(u32, u32)>> =
            par::par_map_chunks(self.segments.len(), self.total * words, |chunk| {
                chunk
                    .map(|s| self.segments[s].top_n(queries, qi, want, &self.tombstones))
                    .collect::<Vec<_>>()
            })
            .into_iter()
            .flatten()
            .collect();
        merge_top_n(&per_segment, want)
    }
}

/// Streaming constructor for a genesis generation: segments are pushed one
/// at a time (e.g. straight off a `uhscm-store` segment reader) and become
/// the contiguous bands of generation 0 — the database is never
/// concatenated in memory. By the determinism contract above, an index
/// built from *any* segmentation of the same codes answers every query
/// bit-for-bit identically to [`ShardedIndex::new`] on the materialized
/// database, at any shard count.
pub struct GenesisBuilder {
    bits: usize,
    segments: Vec<Arc<Segment>>,
    total: usize,
}

impl GenesisBuilder {
    /// Start an empty genesis of `bits`-bit codes.
    pub fn new(bits: usize) -> Self {
        Self { bits, segments: Vec::new(), total: 0 }
    }

    /// Append `codes` as the next contiguous band (taking ownership — the
    /// chunk is the only copy held). Empty chunks are skipped.
    ///
    /// # Panics
    ///
    /// Panics on a bit-width mismatch or if the total code count would
    /// exceed the `u32` global index space.
    pub fn push(&mut self, codes: BitCodes) {
        assert_eq!(codes.bits(), self.bits, "code length mismatch");
        if codes.is_empty() {
            return;
        }
        assert!(codes.len() <= (u32::MAX as usize) - self.total, "genesis exceeds u32 index space");
        let offset = self.total as u32;
        self.total += codes.len();
        self.segments.push(Arc::new(Segment { offset, codes }));
    }

    /// Codes pushed so far.
    pub fn total_len(&self) -> usize {
        self.total
    }

    /// Bands pushed so far.
    pub fn num_segments(&self) -> usize {
        self.segments.len()
    }

    /// Seal the bands into generation 0 of a [`ShardedIndex`].
    pub fn finish(self) -> ShardedIndex {
        let genesis = Arc::new(Generation {
            seq: 0,
            bits: self.bits,
            segments: self.segments,
            tombstones: BTreeSet::new(),
            total: self.total,
        });
        ShardedIndex { current: RwLock::new(genesis), mutate: Mutex::new(()), bits: self.bits }
    }
}

/// Receipt of a committed insert.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InsertCommit {
    /// Sequence number of the generation this insert committed as.
    pub generation: u64,
    /// Global index of the first inserted code.
    pub first_index: u32,
    /// How many codes were inserted.
    pub count: usize,
    /// Live codes after the commit.
    pub live: usize,
}

/// Receipt of a remove.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RemoveCommit {
    /// Sequence number of the committed generation. Unchanged (no commit)
    /// when `removed` is false.
    pub generation: u64,
    /// Whether the item was live; removing an already-dead item is a no-op
    /// and does not commit a new generation.
    pub removed: bool,
    /// Live codes after the operation.
    pub live: usize,
}

/// A sharded Hamming index with a copy-on-write write path.
///
/// Reads ([`Self::snapshot`], [`Self::search`]) are wait-free with respect
/// to writers apart from one briefly-held pointer read; writes
/// ([`Self::insert`], [`Self::remove`]) serialize on an internal mutex,
/// build the child generation off-lock, and publish it atomically.
pub struct ShardedIndex {
    /// The current committed generation; swapped whole on every commit.
    current: RwLock<Arc<Generation>>,
    /// Serializes writers: one copy-on-write child build at a time.
    mutate: Mutex<()>,
    bits: usize,
}

/// `current` poisoning requires a writer panicking mid-swap; the stored
/// value is a plain `Arc` (intact after any partial operation), so recover
/// the guard instead of cascading the panic into every query.
fn read_current(lock: &RwLock<Arc<Generation>>) -> RwLockReadGuard<'_, Arc<Generation>> {
    match lock.read() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

/// Write-side twin of [`read_current`]; same poisoning argument.
fn write_current(lock: &RwLock<Arc<Generation>>) -> RwLockWriteGuard<'_, Arc<Generation>> {
    match lock.write() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

/// Writer-gate recovery: the gate protects no data (it only serializes
/// copy-on-write builds), so a poisoned gate is always safe to reuse.
fn lock_mutate(lock: &Mutex<()>) -> MutexGuard<'_, ()> {
    match lock.lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

impl ShardedIndex {
    /// Build generation 0 from `db` split into `num_shards` contiguous
    /// bands (clamped to `1..=len` non-empty bands).
    pub fn new(db: &BitCodes, num_shards: usize) -> Self {
        let bits = db.bits();
        let genesis = Arc::new(Generation::genesis(db, num_shards));
        Self { current: RwLock::new(genesis), mutate: Mutex::new(()), bits }
    }

    /// The current committed generation, pinned: later commits never touch
    /// it, so a query (or a whole batch) can search one coherent state.
    pub fn snapshot(&self) -> Arc<Generation> {
        Arc::clone(&read_current(&self.current))
    }

    /// Live (non-tombstoned) codes in the current generation.
    pub fn len(&self) -> usize {
        self.snapshot().live_len()
    }

    /// Codes ever inserted (including tombstoned) in the current generation.
    pub fn total_len(&self) -> usize {
        self.snapshot().total_len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Code width in bits.
    pub fn bits(&self) -> usize {
        self.bits
    }

    /// Segments in the current generation (genesis bands + one per insert).
    pub fn num_shards(&self) -> usize {
        self.snapshot().num_segments()
    }

    /// Sequence number of the current committed generation.
    pub fn generation(&self) -> u64 {
        self.snapshot().seq()
    }

    /// Search the current generation (see [`Generation::search`]). Pins a
    /// snapshot first, so a concurrent commit cannot tear the scan.
    pub fn search(&self, queries: &BitCodes, qi: usize, n: usize) -> Vec<(u32, u32)> {
        self.snapshot().search(queries, qi, n)
    }

    /// Append `added` as a new segment and commit the child generation.
    /// Queries in flight keep their pinned generation; queries admitted
    /// after the swap see the new codes. An empty `added` commits nothing.
    ///
    /// # Panics
    /// Panics if `added`'s bit width differs from the index's.
    pub fn insert(&self, added: &BitCodes) -> InsertCommit {
        assert_eq!(added.bits(), self.bits, "code length mismatch");
        let _writer = lock_mutate(&self.mutate);
        let cur = self.snapshot();
        if added.is_empty() {
            return InsertCommit {
                generation: cur.seq(),
                first_index: cur.total_len() as u32,
                count: 0,
                live: cur.live_len(),
            };
        }
        let mut next = cur.child();
        next.push_segment(added);
        let commit = InsertCommit {
            generation: next.seq(),
            first_index: cur.total_len() as u32,
            count: added.len(),
            live: next.live_len(),
        };
        self.commit(next);
        commit
    }

    /// Tombstone global index `index` and commit the child generation.
    /// Removing an already-dead item reports `removed: false` without
    /// committing (idempotence keeps generation numbers meaningful: every
    /// committed sequence number corresponds to exactly one state change).
    ///
    /// # Panics
    /// Panics if `index` is out of range (the server validates client
    /// indices against [`Self::total_len`] before calling; total length
    /// never shrinks, so the check cannot go stale).
    pub fn remove(&self, index: usize) -> RemoveCommit {
        let _writer = lock_mutate(&self.mutate);
        let cur = self.snapshot();
        assert!(index < cur.total_len(), "remove index {index} out of range");
        if !cur.is_live(index) {
            return RemoveCommit { generation: cur.seq(), removed: false, live: cur.live_len() };
        }
        let mut next = cur.child();
        // The range assert above bounds `index` by the stored total, which
        // itself fits `u32` by construction, so the conversion is total;
        // `try_from` keeps the narrowing visibly checked.
        let Ok(key) = u32::try_from(index) else {
            return RemoveCommit { generation: cur.seq(), removed: false, live: cur.live_len() };
        };
        // `extend`, not `BTreeSet::insert`: the writer gate is held here,
        // and the name-based lint call graph would resolve an `insert` call
        // to `ShardedIndex::insert` (a false self-deadlock witness).
        next.tombstones.extend([key]);
        let commit = RemoveCommit { generation: next.seq(), removed: true, live: next.live_len() };
        self.commit(next);
        commit
    }

    /// Publish `next` as the current generation: one pointer swap, after
    /// which the old generation lives only as long as its pinned snapshots.
    /// Telemetry for the swap is emitted by the serving layer (off the
    /// writer gate, and outside functions named like map/set mutators).
    fn commit(&self, next: Generation) {
        *write_current(&self.current) = Arc::new(next);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uhscm_eval::{BitCodes, HammingRanker};

    /// Deterministic toy codes with heavy distance ties.
    fn toy_codes(n: usize, bits: usize) -> BitCodes {
        let rows: Vec<Vec<bool>> =
            (0..n).map(|i| (0..bits).map(|b| (i >> (b % 4)) & 1 == 1).collect()).collect();
        BitCodes::from_bools(&rows)
    }

    #[test]
    fn sharded_search_matches_single_ranker_at_all_shard_counts() {
        let db = toy_codes(33, 7);
        let queries = toy_codes(5, 7);
        let oracle = HammingRanker::new(db.clone());
        for shards in [1usize, 2, 4, 9, 33, 64] {
            let index = ShardedIndex::new(&db, shards);
            for qi in 0..queries.len() {
                for n in [0usize, 1, 3, 10, 33, 50] {
                    let got = index.search(&queries, qi, n);
                    let want = oracle.rank_top_n_with_dist(&queries, qi, n);
                    assert_eq!(got, want, "shards={shards} qi={qi} n={n}");
                }
            }
        }
    }

    #[test]
    fn empty_database_yields_no_hits() {
        let db = BitCodes::from_bools(&Vec::<Vec<bool>>::new());
        let index = ShardedIndex::new(&db, 4);
        assert!(index.is_empty());
        assert_eq!(index.num_shards(), 0);
        let queries = toy_codes(1, 0);
        assert_eq!(index.search(&queries, 0, 5), Vec::new());
    }

    #[test]
    fn shard_count_is_clamped_to_database_size() {
        let db = toy_codes(3, 4);
        let index = ShardedIndex::new(&db, 16);
        assert_eq!(index.num_shards(), 3);
        assert_eq!(index.len(), 3);
        assert_eq!(index.bits(), 4);
    }

    #[test]
    fn insert_appends_a_segment_and_bumps_the_generation() {
        let db = toy_codes(10, 5);
        let index = ShardedIndex::new(&db, 2);
        assert_eq!(index.generation(), 0);

        let added = toy_codes(3, 5);
        let commit = index.insert(&added);
        assert_eq!(commit.generation, 1);
        assert_eq!(commit.first_index, 10);
        assert_eq!(commit.count, 3);
        assert_eq!(commit.live, 13);
        assert_eq!(index.len(), 13);
        assert_eq!(index.total_len(), 13);
        assert_eq!(index.num_shards(), 3, "genesis bands plus one insert segment");

        // The combined index ranks exactly like a from-scratch database.
        let mut full = db.clone();
        full.extend(&added);
        let oracle = HammingRanker::new(full);
        let queries = toy_codes(2, 5);
        for qi in 0..2 {
            assert_eq!(
                index.search(&queries, qi, 13),
                oracle.rank_top_n_with_dist(&queries, qi, 13)
            );
        }

        // Inserting nothing commits nothing (empty codes of matching width).
        let noop = index.insert(&db.slice(0..0));
        assert_eq!((noop.generation, noop.count), (1, 0));
        assert_eq!(index.generation(), 1);
    }

    #[test]
    fn remove_tombstones_without_disturbing_other_indices() {
        let db = toy_codes(12, 4);
        let index = ShardedIndex::new(&db, 3);
        let queries = toy_codes(1, 4);

        let before = index.search(&queries, 0, 12);
        let victim = before[0].1;
        let commit = index.remove(victim as usize);
        assert!(commit.removed);
        assert_eq!(commit.generation, 1);
        assert_eq!(commit.live, 11);
        assert_eq!(index.len(), 11);
        assert_eq!(index.total_len(), 12);

        let after = index.search(&queries, 0, 12);
        assert_eq!(after.len(), 11);
        assert!(after.iter().all(|&(_, j)| j != victim));
        // Surviving hits keep their global indices and relative order.
        let expect: Vec<(u32, u32)> =
            before.iter().copied().filter(|&(_, j)| j != victim).collect();
        assert_eq!(after, expect);

        // Double remove: no commit, explicit absence.
        let again = index.remove(victim as usize);
        assert!(!again.removed);
        assert_eq!(again.generation, 1);
        assert_eq!(index.generation(), 1);
    }

    #[test]
    fn pinned_snapshots_survive_later_commits() {
        let db = toy_codes(8, 4);
        let index = ShardedIndex::new(&db, 2);
        let queries = toy_codes(1, 4);

        let pinned = index.snapshot();
        let want = pinned.search(&queries, 0, 8);

        index.insert(&toy_codes(4, 4));
        index.remove(0);
        assert_eq!(index.generation(), 2);

        // The pinned generation still answers exactly as it did at commit 0.
        assert_eq!(pinned.seq(), 0);
        assert_eq!(pinned.search(&queries, 0, 8), want);
        assert_eq!(pinned.total_len(), 8);
        // And the live index has moved on.
        assert_eq!(index.total_len(), 12);
        assert_eq!(index.len(), 11);
    }

    #[test]
    fn genesis_builder_matches_materialized_index_at_any_banding() {
        let db = toy_codes(33, 7);
        let queries = toy_codes(5, 7);
        let oracle = HammingRanker::new(db.clone());
        for band in [1usize, 2, 4, 5, 33] {
            let mut b = GenesisBuilder::new(db.bits());
            let mut at = 0;
            while at < db.len() {
                let end = (at + band).min(db.len());
                b.push(db.slice(at..end));
                at = end;
            }
            assert_eq!(b.total_len(), db.len());
            let index = b.finish();
            assert_eq!(index.len(), db.len());
            for qi in 0..queries.len() {
                for n in [1usize, 3, 33] {
                    assert_eq!(
                        index.search(&queries, qi, n),
                        oracle.rank_top_n_with_dist(&queries, qi, n),
                        "band={band} qi={qi} n={n}"
                    );
                }
            }
        }
    }

    #[test]
    fn genesis_builder_supports_mutations() {
        let db = toy_codes(10, 5);
        let mut b = GenesisBuilder::new(5);
        b.push(db.slice(0..6));
        b.push(db.slice(6..6)); // empty chunks are skipped
        b.push(db.slice(6..10));
        assert_eq!(b.num_segments(), 2);
        let index = b.finish();
        assert_eq!(index.generation(), 0);
        let commit = index.insert(&toy_codes(3, 5));
        assert_eq!((commit.generation, commit.first_index), (1, 10));
        assert!(index.remove(0).removed);
        assert_eq!(index.len(), 12);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn remove_out_of_range_panics() {
        let index = ShardedIndex::new(&toy_codes(3, 4), 1);
        index.remove(3);
    }
}
