//! Sharded read-only Hamming index.
//!
//! The database codes are split into contiguous index bands with
//! [`uhscm_linalg::par::partition`] — the same splitter the offline eval
//! path uses — and each band gets its own [`HammingRanker`]. A query fans
//! out to every shard, collects each shard's local top-`n` with distances,
//! shifts local indices back to global ones, and merges with
//! [`uhscm_eval::merge_top_n`].
//!
//! Determinism contract: because shards are *contiguous* bands in original
//! database order, a shard-local `(distance, local_index)` ordering plus the
//! band offset is exactly the global `(distance, global_index)` ordering
//! restricted to that band, and the lexicographic merge therefore reproduces
//! single-shard [`HammingRanker::rank_top_n`] output bit-for-bit at any
//! shard count. The loopback tests and `crates/eval`'s crafted-tie tests
//! both pin this.
//!
//! Each shard's per-query scan runs on the batched, width-specialized
//! Hamming kernels in `uhscm_eval::bitcode::hamming_scan` (via
//! [`HammingRanker::rank_top_n_with_dist`]), so the online serving path and
//! the offline eval path share one scan implementation — there is no second
//! distance loop to drift out of sync.

use uhscm_eval::{merge_top_n, BitCodes, HammingRanker};
use uhscm_linalg::par;
use uhscm_obs::obs_span;

struct Shard {
    /// Global index of this shard's first code.
    offset: u32,
    ranker: HammingRanker,
}

/// A read-only Hamming index split into contiguous shards, one ranker per
/// shard, searched fan-out/merge.
pub struct ShardedIndex {
    shards: Vec<Shard>,
    len: usize,
    bits: usize,
}

impl ShardedIndex {
    /// Split `db` into `num_shards` contiguous bands (clamped to `1..=len`
    /// non-empty bands; an empty database yields zero shards).
    pub fn new(db: &BitCodes, num_shards: usize) -> Self {
        let len = db.len();
        let bits = db.bits();
        let shards = par::partition(len, num_shards.max(1))
            .into_iter()
            .map(|band| Shard {
                offset: band.start as u32,
                ranker: HammingRanker::new(db.slice(band)),
            })
            .collect();
        Self { shards, len, bits }
    }

    /// Total number of database codes across all shards.
    pub fn len(&self) -> usize {
        self.len
    }

    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Code width in bits.
    pub fn bits(&self) -> usize {
        self.bits
    }

    /// Number of non-empty shards actually created.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// Global top-`n` for query `qi` of `queries`, as `(distance,
    /// global_index)` pairs in ascending `(distance, index)` order — the
    /// offline ranker's counting-sort tie-break contract.
    ///
    /// Shards are searched via [`par::par_map_chunks`], so the fan-out uses
    /// the same deterministic worker pool as the dense kernels (and runs
    /// serially under a serial plan, bit-for-bit identically).
    pub fn search(&self, queries: &BitCodes, qi: usize, n: usize) -> Vec<(u32, u32)> {
        obs_span!("serve_search");
        if n == 0 || self.shards.is_empty() {
            return Vec::new();
        }
        // Work estimate: one popcount pass over every stored word.
        let words = self.bits.div_ceil(64).max(1);
        let per_shard: Vec<Vec<(u32, u32)>> =
            par::par_map_chunks(self.shards.len(), self.len * words, |chunk| {
                chunk
                    .map(|s| {
                        let shard = &self.shards[s];
                        // Shift local indices to global ones in place: the
                        // candidate list is already owned, so no second
                        // per-shard vector on the query hot path.
                        let mut hits = shard.ranker.rank_top_n_with_dist(queries, qi, n);
                        for hit in &mut hits {
                            hit.1 += shard.offset;
                        }
                        hits
                    })
                    .collect::<Vec<_>>()
            })
            .into_iter()
            .flatten()
            .collect();
        merge_top_n(&per_shard, n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uhscm_eval::BitCodes;

    /// Deterministic toy codes with heavy distance ties.
    fn toy_codes(n: usize, bits: usize) -> BitCodes {
        let rows: Vec<Vec<bool>> =
            (0..n).map(|i| (0..bits).map(|b| (i >> (b % 4)) & 1 == 1).collect()).collect();
        BitCodes::from_bools(&rows)
    }

    #[test]
    fn sharded_search_matches_single_ranker_at_all_shard_counts() {
        let db = toy_codes(33, 7);
        let queries = toy_codes(5, 7);
        let oracle = HammingRanker::new(db.clone());
        for shards in [1usize, 2, 4, 9, 33, 64] {
            let index = ShardedIndex::new(&db, shards);
            for qi in 0..queries.len() {
                for n in [0usize, 1, 3, 10, 33, 50] {
                    let got = index.search(&queries, qi, n);
                    let want = oracle.rank_top_n_with_dist(&queries, qi, n);
                    assert_eq!(got, want, "shards={shards} qi={qi} n={n}");
                }
            }
        }
    }

    #[test]
    fn empty_database_yields_no_hits() {
        let db = BitCodes::from_bools(&Vec::<Vec<bool>>::new());
        let index = ShardedIndex::new(&db, 4);
        assert!(index.is_empty());
        assert_eq!(index.num_shards(), 0);
        let queries = toy_codes(1, 0);
        assert_eq!(index.search(&queries, 0, 5), Vec::new());
    }

    #[test]
    fn shard_count_is_clamped_to_database_size() {
        let db = toy_codes(3, 4);
        let index = ShardedIndex::new(&db, 16);
        assert_eq!(index.num_shards(), 3);
        assert_eq!(index.len(), 3);
        assert_eq!(index.bits(), 4);
    }
}
