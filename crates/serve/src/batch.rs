//! Admission control and batch formation.
//!
//! Connection handlers push [`PendingQuery`]s into a bounded
//! [`AdmissionQueue`]; a single batch worker pops them in arrival order,
//! coalescing up to `max_batch` queries per tick (waiting at most
//! `max_wait` for stragglers once the first query is in hand). The bound is
//! the overload valve: when the queue is full, `submit` hands the query
//! straight back with [`SubmitError::Overloaded`] so the caller can answer
//! `overloaded` immediately instead of letting latency grow without limit.
//!
//! Shutdown is cooperative: [`AdmissionQueue::close`] stops admissions
//! (subsequent submits get [`SubmitError::Draining`]) but the worker keeps
//! draining what was already admitted; [`AdmissionQueue::next_batch`]
//! returns `None` only once the queue is both closed and empty, which is
//! the worker's signal that the drain is complete.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex, MutexGuard};
use std::time::{Duration, Instant};

use uhscm_obs::obs_gauge;

use crate::protocol::Response;

/// How the batch worker answers a query; the connection handler captures
/// its write half in this closure.
pub type Reply = Box<dyn FnOnce(Response) + Send>;

/// A query admitted to the queue, waiting to be batched.
pub struct PendingQuery {
    pub id: u64,
    pub features: Vec<f64>,
    pub top_k: usize,
    /// Absolute deadline; if it passes before the query is dequeued, the
    /// worker answers `deadline_exceeded` without encoding.
    pub deadline: Option<Instant>,
    pub reply: Reply,
}

/// Batch formation knobs.
#[derive(Debug, Clone, Copy)]
pub struct BatchPolicy {
    /// Most queries coalesced into one forward pass.
    pub max_batch: usize,
    /// Once one query is in hand, how long to wait for more before running
    /// a short batch.
    pub max_wait: Duration,
}

/// Why a submission was refused. The query itself is handed back alongside
/// this so the caller still owns its reply channel.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SubmitError {
    /// Queue at capacity — request shed.
    Overloaded,
    /// Queue closed for shutdown.
    Draining,
}

struct QueueState {
    queue: VecDeque<PendingQuery>,
    open: bool,
}

/// Bounded MPSC hand-off between connection handlers and the batch worker.
pub struct AdmissionQueue {
    cap: usize,
    state: Mutex<QueueState>,
    ready: Condvar,
}

/// Mutex poisoning only happens if a peer thread panicked; the queue state
/// (a deque and a flag) is valid after any partial operation, so recover
/// the guard rather than cascading the panic into every connection.
fn recover<'a, T>(lock: &'a Mutex<T>) -> MutexGuard<'a, T> {
    match lock.lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

impl AdmissionQueue {
    /// A queue admitting at most `cap` (clamped to ≥ 1) waiting queries.
    pub fn new(cap: usize) -> Self {
        Self {
            cap: cap.max(1),
            state: Mutex::new(QueueState { queue: VecDeque::new(), open: true }),
            ready: Condvar::new(),
        }
    }

    /// Admit a query, or hand it back with the refusal reason.
    ///
    /// # Errors
    ///
    /// [`SubmitError::Overloaded`] when full, [`SubmitError::Draining`]
    /// after [`AdmissionQueue::close`].
    pub fn submit(&self, q: PendingQuery) -> Result<(), (PendingQuery, SubmitError)> {
        let mut state = recover(&self.state);
        if !state.open {
            return Err((q, SubmitError::Draining));
        }
        if state.queue.len() >= self.cap {
            return Err((q, SubmitError::Overloaded));
        }
        state.queue.push_back(q);
        obs_gauge!("serve.queue.depth", state.queue.len() as f64);
        self.ready.notify_one();
        Ok(())
    }

    /// Stop admitting; already-queued work will still be drained.
    pub fn close(&self) {
        recover(&self.state).open = false;
        self.ready.notify_all();
    }

    /// Queries currently waiting (diagnostic).
    pub fn depth(&self) -> usize {
        recover(&self.state).queue.len()
    }

    /// Whether the queue still admits new work. Mutations bypass the batch
    /// queue, so the connection handler consults this to give writes the
    /// same drain semantics as queries: once the queue closes, writes are
    /// answered `draining` instead of silently committing past shutdown.
    pub fn is_open(&self) -> bool {
        recover(&self.state).open
    }

    /// Block until a batch is available and pop it in arrival order.
    ///
    /// Waits for the first query, then keeps collecting until the batch is
    /// full, `max_wait` has elapsed, or the queue closes (a closing queue
    /// flushes immediately — drain should not dawdle). Returns `None` once
    /// the queue is closed *and* empty: the drain is complete and the
    /// worker should exit.
    pub fn next_batch(&self, policy: &BatchPolicy) -> Option<Vec<PendingQuery>> {
        let max_batch = policy.max_batch.max(1);
        let mut state = recover(&self.state);
        // Phase 1: wait for work.
        loop {
            if !state.queue.is_empty() {
                break;
            }
            if !state.open {
                return None;
            }
            state = match self.ready.wait(state) {
                Ok(g) => g,
                Err(poisoned) => poisoned.into_inner(),
            };
        }
        // Phase 2: give stragglers up to `max_wait` to join the batch.
        let flush_at = Instant::now() + policy.max_wait;
        while state.queue.len() < max_batch && state.open {
            let now = Instant::now();
            let Some(remaining) = flush_at.checked_duration_since(now).filter(|d| !d.is_zero())
            else {
                break;
            };
            let (guard, timeout) = match self.ready.wait_timeout(state, remaining) {
                Ok(pair) => pair,
                Err(poisoned) => {
                    let pair = poisoned.into_inner();
                    (pair.0, pair.1)
                }
            };
            state = guard;
            if timeout.timed_out() {
                break;
            }
        }
        let take = state.queue.len().min(max_batch);
        let batch: Vec<PendingQuery> = state.queue.drain(..take).collect();
        obs_gauge!("serve.queue.depth", state.queue.len() as f64);
        if !state.queue.is_empty() {
            // Leftovers beyond max_batch: wake the worker again promptly.
            self.ready.notify_one();
        }
        Some(batch)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    fn query(id: u64) -> PendingQuery {
        PendingQuery {
            id,
            features: vec![0.0; 2],
            top_k: 1,
            deadline: None,
            reply: Box::new(|_| {}),
        }
    }

    const FLUSH_NOW: BatchPolicy = BatchPolicy { max_batch: 8, max_wait: Duration::ZERO };

    #[test]
    fn batches_preserve_arrival_order() {
        let q = AdmissionQueue::new(16);
        for id in 0..5 {
            q.submit(query(id)).map_err(|(_, e)| e).expect("under capacity");
        }
        let batch = q.next_batch(&FLUSH_NOW).expect("queue open");
        let ids: Vec<u64> = batch.iter().map(|p| p.id).collect();
        assert_eq!(ids, [0, 1, 2, 3, 4]);
    }

    #[test]
    fn max_batch_splits_and_leftovers_survive() {
        let q = AdmissionQueue::new(16);
        for id in 0..5 {
            q.submit(query(id)).map_err(|(_, e)| e).expect("under capacity");
        }
        let policy = BatchPolicy { max_batch: 3, max_wait: Duration::ZERO };
        let first = q.next_batch(&policy).expect("open");
        assert_eq!(first.len(), 3);
        assert_eq!(q.depth(), 2);
        let second = q.next_batch(&policy).expect("open");
        let ids: Vec<u64> = second.iter().map(|p| p.id).collect();
        assert_eq!(ids, [3, 4]);
    }

    #[test]
    fn full_queue_sheds_and_returns_the_query() {
        let q = AdmissionQueue::new(2);
        q.submit(query(0)).map_err(|(_, e)| e).expect("slot 0");
        q.submit(query(1)).map_err(|(_, e)| e).expect("slot 1");
        match q.submit(query(7)) {
            Err((shed, SubmitError::Overloaded)) => assert_eq!(shed.id, 7),
            other => panic!("expected shed, got {:?}", other.map(|()| ()).map_err(|(_, e)| e)),
        }
        assert_eq!(q.depth(), 2);
    }

    #[test]
    fn closed_queue_drains_then_signals_exit() {
        let q = AdmissionQueue::new(8);
        q.submit(query(0)).map_err(|(_, e)| e).expect("open");
        assert!(q.is_open());
        q.close();
        assert!(!q.is_open());
        match q.submit(query(1)) {
            Err((back, SubmitError::Draining)) => assert_eq!(back.id, 1),
            other => panic!("expected draining, got {:?}", other.map(|()| ()).map_err(|(_, e)| e)),
        }
        // Admitted work still comes out...
        let batch = q.next_batch(&FLUSH_NOW).expect("drain");
        assert_eq!(batch.len(), 1);
        // ...and only then does the queue report drain-complete.
        assert!(q.next_batch(&FLUSH_NOW).is_none());
    }

    #[test]
    fn poisoned_queue_lock_recovers_and_keeps_serving() {
        // A worker that panics while holding the queue mutex poisons it;
        // every entry point goes through `recover`, so the queue must keep
        // admitting, reporting depth, and forming batches afterwards.
        let q = Arc::new(AdmissionQueue::new(8));
        q.submit(query(0)).map_err(|(_, e)| e).expect("open");

        let mut pool = crate::pool::WorkerPool::new();
        {
            let q = Arc::clone(&q);
            pool.spawn("poison", move || {
                let _guard = recover(&q.state);
                panic!("die holding the queue lock");
            })
            .expect("spawn");
        }
        let payload = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| pool.join_all()))
            .expect_err("worker panic must resurface at join");
        assert_eq!(
            payload.downcast_ref::<&str>().copied().unwrap_or_default(),
            "die holding the queue lock"
        );

        // The mutex is now poisoned. Nothing below may panic.
        assert_eq!(q.depth(), 1);
        q.submit(query(1)).map_err(|(_, e)| e).expect("poisoned queue still admits");
        let batch = q.next_batch(&FLUSH_NOW).expect("open");
        let ids: Vec<u64> = batch.iter().map(|p| p.id).collect();
        assert_eq!(ids, [0, 1], "arrival order survives the poisoning");
        q.close();
        assert!(q.next_batch(&FLUSH_NOW).is_none(), "drain still completes");
    }

    #[test]
    fn replies_are_owned_by_the_dequeued_batch() {
        let hits = Arc::new(AtomicUsize::new(0));
        let q = AdmissionQueue::new(4);
        let h = Arc::clone(&hits);
        let p = PendingQuery {
            id: 1,
            features: vec![1.0],
            top_k: 1,
            deadline: Some(Instant::now()),
            reply: Box::new(move |_| {
                h.fetch_add(1, Ordering::SeqCst);
            }),
        };
        q.submit(p).map_err(|(_, e)| e).expect("open");
        let batch = q.next_batch(&FLUSH_NOW).expect("open");
        for p in batch {
            (p.reply)(Response::Pong);
        }
        assert_eq!(hits.load(Ordering::SeqCst), 1);
    }
}
