//! Wire protocol of the retrieval service: length-prefixed JSON frames.
//!
//! Every message is one frame: a 4-byte little-endian payload length
//! followed by that many bytes of UTF-8 JSON. JSON keeps the protocol
//! debuggable (`nc` + eyes) and reuses workspace machinery on both sides —
//! the vendored `serde_json` shim encodes, [`uhscm_obs::trace`]'s JSON
//! parser decodes — while the length prefix makes framing trivial and
//! caps hostile input at [`MAX_FRAME`] before anything is buffered.
//!
//! Requests:
//!
//! ```text
//! {"type":"query","id":7,"top_k":10,"features":[0.25,-1.5,...],"deadline_ms":50}
//! {"type":"insert","id":8,"rows":[[0.25,-1.5,...],...]}    // feature rows
//! {"type":"remove","id":9,"index":412}
//! {"type":"flush","id":10}                                  // commit barrier/readback
//! {"type":"reload","id":11,"path":"/bundles/v2"}            // hot model+vocab swap
//! {"type":"ping"}
//! ```
//!
//! Responses:
//!
//! ```text
//! {"type":"hits","id":7,"hits":[[0,412],[1,9],...],         // [distance,index]
//!  "generation":3,"bundle":1}                               // state answered at
//! {"type":"inserted","id":8,"committed_generation":4,
//!  "first_index":1200,"count":2,"live":1198,"bundle":1}
//! {"type":"removed","id":9,"committed_generation":5,"removed":true,"live":1197}
//! {"type":"flushed","id":10,"committed_generation":5,"live":1197,"total":1202,"bundle":1}
//! {"type":"reloaded","id":11,"bundle":2,"vocab":4096}
//! {"type":"error","id":7,"reason":"overloaded","detail":"queue full (cap 256)"}
//! {"type":"pong"}
//! ```
//!
//! Mutation responses carry the explicit `committed_generation` the
//! operation landed as (a remove of an already-dead item echoes the current
//! generation with `removed:false` — no state change, no new generation),
//! and `hits` responses carry the generation and bundle version the query
//! was actually evaluated at, so a client — or the swap-boundary test
//! harness — can reconstruct the exact database state behind any answer.
//!
//! `features` are `f64`s; both the encoder (shortest round-trip formatting)
//! and the decoder (`f64` parsing) are exact for finite values, so a feature
//! vector survives the wire bit-for-bit and the online encoding is
//! bitwise-identical to encoding the same vector offline. Error responses
//! always carry a machine-readable `reason` from the closed [`Reason`] set
//! plus a human-readable `detail`.

use std::io::{self, Read, Write};
use uhscm_obs::trace::{self, Json};

/// Largest accepted frame payload (1 MiB — a 4096-dim query is ~100 KiB).
pub const MAX_FRAME: usize = 1 << 20;

/// Why a frame stream stopped being parseable. Protocol errors are
/// connection-fatal: framing is lost, so the peer must reconnect.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProtocolError {
    /// Declared payload length exceeds [`MAX_FRAME`].
    FrameTooLarge(usize),
    /// Payload is not valid UTF-8.
    BadUtf8,
}

impl std::fmt::Display for ProtocolError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProtocolError::FrameTooLarge(n) => {
                write!(f, "frame of {n} bytes exceeds the {MAX_FRAME}-byte cap")
            }
            ProtocolError::BadUtf8 => write!(f, "frame payload is not valid UTF-8"),
        }
    }
}

impl std::error::Error for ProtocolError {}

/// Serialize one frame (length prefix + payload) to bytes without touching
/// any transport. Separating serialization from transmission lets callers
/// build the frame wherever is convenient and hand the bytes to whichever
/// thread owns the socket — no socket write ever needs to happen under a
/// lock.
///
/// # Errors
///
/// A body over [`MAX_FRAME`] is `InvalidInput`.
pub fn encode_frame(body: &str) -> io::Result<Vec<u8>> {
    if body.len() > MAX_FRAME {
        return Err(io::Error::new(io::ErrorKind::InvalidInput, "frame body too large"));
    }
    // One contiguous buffer for prefix + payload: two small writes on a TCP
    // stream invite the Nagle / delayed-ACK stall (~40 ms per frame).
    let mut frame = Vec::with_capacity(4 + body.len());
    frame.extend_from_slice(&(body.len() as u32).to_le_bytes());
    frame.extend_from_slice(body.as_bytes());
    Ok(frame)
}

/// Write one frame (length prefix + payload).
///
/// # Errors
///
/// Propagates I/O errors; a body over [`MAX_FRAME`] is `InvalidInput`.
pub fn write_frame(w: &mut impl Write, body: &str) -> io::Result<()> {
    let frame = encode_frame(body)?;
    w.write_all(&frame)?;
    w.flush()
}

/// Incremental frame assembly over a byte stream. Feed whatever the socket
/// yields with [`FrameReader::push_bytes`]; [`FrameReader::next_frame`]
/// returns complete payloads as they materialize. Reading this way (rather
/// than `read_exact` on the socket) keeps partial frames intact across read
/// timeouts, which the server uses to poll its drain flag mid-connection.
#[derive(Debug, Default)]
pub struct FrameReader {
    buf: Vec<u8>,
}

impl FrameReader {
    pub fn new() -> Self {
        Self::default()
    }

    /// Append raw bytes from the transport.
    pub fn push_bytes(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Pop the next complete frame, `Ok(None)` while one is still partial.
    ///
    /// # Errors
    ///
    /// Returns [`ProtocolError`] on an oversized declared length or non-UTF-8
    /// payload; the stream is unrecoverable after that.
    pub fn next_frame(&mut self) -> Result<Option<String>, ProtocolError> {
        if self.buf.len() < 4 {
            return Ok(None);
        }
        let len = u32::from_le_bytes([self.buf[0], self.buf[1], self.buf[2], self.buf[3]]) as usize;
        if len > MAX_FRAME {
            return Err(ProtocolError::FrameTooLarge(len));
        }
        if self.buf.len() < 4 + len {
            return Ok(None);
        }
        let payload: Vec<u8> = self.buf.drain(..4 + len).skip(4).collect();
        match String::from_utf8(payload) {
            Ok(s) => Ok(Some(s)),
            Err(_) => Err(ProtocolError::BadUtf8),
        }
    }
}

/// One retrieval query.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryRequest {
    /// Client-chosen correlation id, echoed on the response.
    pub id: u64,
    /// Raw feature vector; must match the model's input dimension.
    pub features: Vec<f64>,
    /// How many neighbours to return.
    pub top_k: usize,
    /// Optional admission deadline: if the query is still queued this many
    /// milliseconds after arrival, it is answered `deadline_exceeded`
    /// instead of being encoded.
    pub deadline_ms: Option<u64>,
}

/// A parsed client→server message.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    Query(QueryRequest),
    /// Encode `rows` with the current bundle and append them to the index
    /// as one committed generation.
    Insert {
        id: u64,
        rows: Vec<Vec<f64>>,
    },
    /// Tombstone one database index.
    Remove {
        id: u64,
        index: u64,
    },
    /// Commit barrier / state readback: answers with the current committed
    /// generation, live/total counts and bundle version. Read-only.
    Flush {
        id: u64,
    },
    /// Hot-swap the serving bundle (model + vocab) from a directory.
    Reload {
        id: u64,
        path: String,
    },
    Ping,
}

/// Machine-readable failure reasons carried by error responses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Reason {
    /// The admission queue was full; the request was shed, not queued.
    Overloaded,
    /// The request's deadline passed while it waited in the queue.
    DeadlineExceeded,
    /// The server is draining and no longer admits new work.
    Draining,
    /// The request was malformed (bad JSON, wrong dimensions, zero `top_k`).
    BadRequest,
}

impl Reason {
    pub fn as_str(self) -> &'static str {
        match self {
            Reason::Overloaded => "overloaded",
            Reason::DeadlineExceeded => "deadline_exceeded",
            Reason::Draining => "draining",
            Reason::BadRequest => "bad_request",
        }
    }

    pub fn from_str(s: &str) -> Option<Reason> {
        match s {
            "overloaded" => Some(Reason::Overloaded),
            "deadline_exceeded" => Some(Reason::DeadlineExceeded),
            "draining" => Some(Reason::Draining),
            "bad_request" => Some(Reason::BadRequest),
            _ => None,
        }
    }
}

/// A server→client message.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// Successful retrieval: `(distance, database_index)` pairs in the exact
    /// `(distance, index)`-ascending order of the offline ranker, tagged
    /// with the generation and bundle version the query was evaluated at.
    Hits {
        id: u64,
        hits: Vec<(u32, u32)>,
        /// Generation sequence number the search ran against.
        generation: u64,
        /// Bundle version the features were encoded with.
        bundle: u64,
    },
    /// An insert committed as `generation`; the new codes occupy global
    /// indices `first_index..first_index + count`.
    Inserted {
        id: u64,
        generation: u64,
        first_index: u64,
        count: u64,
        live: u64,
        /// Bundle version that encoded the inserted rows.
        bundle: u64,
    },
    /// A remove receipt; `removed: false` means the item was already dead
    /// and `generation` echoes the unchanged current generation.
    Removed {
        id: u64,
        generation: u64,
        removed: bool,
        live: u64,
    },
    /// Flush/readback receipt: the committed state at the time the frame
    /// was handled.
    Flushed {
        id: u64,
        generation: u64,
        live: u64,
        total: u64,
        bundle: u64,
    },
    /// A bundle reload committed as version `bundle` with `vocab` terms.
    Reloaded {
        id: u64,
        bundle: u64,
        vocab: u64,
    },
    Error {
        id: u64,
        reason: Reason,
        detail: String,
    },
    Pong,
}

fn obj(fields: Vec<(&str, serde::Value)>) -> serde::Value {
    serde::Value::Map(fields.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
}

fn encode(value: &serde::Value) -> String {
    // The value-tree encoder is total; the Result exists for upstream
    // source compatibility only.
    serde_json::to_string(value).unwrap_or_default()
}

/// Encode a request frame body.
pub fn encode_request(req: &Request) -> String {
    use serde::Value;
    let v = match req {
        Request::Ping => obj(vec![("type", Value::Str("ping".into()))]),
        Request::Query(q) => {
            let mut fields = vec![
                ("type", Value::Str("query".into())),
                ("id", Value::UInt(q.id)),
                ("top_k", Value::UInt(q.top_k as u64)),
                ("features", Value::Seq(q.features.iter().map(|&f| Value::Float(f)).collect())),
            ];
            if let Some(ms) = q.deadline_ms {
                fields.push(("deadline_ms", Value::UInt(ms)));
            }
            obj(fields)
        }
        Request::Insert { id, rows } => obj(vec![
            ("type", Value::Str("insert".into())),
            ("id", Value::UInt(*id)),
            // Declared row count: lets the decoder reject frames whose
            // claimed batch size disagrees with the payload they carry.
            ("count", Value::UInt(rows.len() as u64)),
            (
                "rows",
                Value::Seq(
                    rows.iter()
                        .map(|row| Value::Seq(row.iter().map(|&f| Value::Float(f)).collect()))
                        .collect(),
                ),
            ),
        ]),
        Request::Remove { id, index } => obj(vec![
            ("type", Value::Str("remove".into())),
            ("id", Value::UInt(*id)),
            ("index", Value::UInt(*index)),
        ]),
        Request::Flush { id } => {
            obj(vec![("type", Value::Str("flush".into())), ("id", Value::UInt(*id))])
        }
        Request::Reload { id, path } => obj(vec![
            ("type", Value::Str("reload".into())),
            ("id", Value::UInt(*id)),
            ("path", Value::Str(path.clone())),
        ]),
    };
    encode(&v)
}

/// Encode a response frame body.
pub fn encode_response(resp: &Response) -> String {
    use serde::Value;
    let v = match resp {
        Response::Pong => obj(vec![("type", Value::Str("pong".into()))]),
        Response::Hits { id, hits, generation, bundle } => obj(vec![
            ("type", Value::Str("hits".into())),
            ("id", Value::UInt(*id)),
            (
                "hits",
                Value::Seq(
                    hits.iter()
                        .map(|&(d, i)| {
                            Value::Seq(vec![Value::UInt(u64::from(d)), Value::UInt(u64::from(i))])
                        })
                        .collect(),
                ),
            ),
            ("generation", Value::UInt(*generation)),
            ("bundle", Value::UInt(*bundle)),
        ]),
        Response::Inserted { id, generation, first_index, count, live, bundle } => obj(vec![
            ("type", Value::Str("inserted".into())),
            ("id", Value::UInt(*id)),
            ("committed_generation", Value::UInt(*generation)),
            ("first_index", Value::UInt(*first_index)),
            ("count", Value::UInt(*count)),
            ("live", Value::UInt(*live)),
            ("bundle", Value::UInt(*bundle)),
        ]),
        Response::Removed { id, generation, removed, live } => obj(vec![
            ("type", Value::Str("removed".into())),
            ("id", Value::UInt(*id)),
            ("committed_generation", Value::UInt(*generation)),
            ("removed", Value::Bool(*removed)),
            ("live", Value::UInt(*live)),
        ]),
        Response::Flushed { id, generation, live, total, bundle } => obj(vec![
            ("type", Value::Str("flushed".into())),
            ("id", Value::UInt(*id)),
            ("committed_generation", Value::UInt(*generation)),
            ("live", Value::UInt(*live)),
            ("total", Value::UInt(*total)),
            ("bundle", Value::UInt(*bundle)),
        ]),
        Response::Reloaded { id, bundle, vocab } => obj(vec![
            ("type", Value::Str("reloaded".into())),
            ("id", Value::UInt(*id)),
            ("bundle", Value::UInt(*bundle)),
            ("vocab", Value::UInt(*vocab)),
        ]),
        Response::Error { id, reason, detail } => obj(vec![
            ("type", Value::Str("error".into())),
            ("id", Value::UInt(*id)),
            ("reason", Value::Str(reason.as_str().into())),
            ("detail", Value::Str(detail.clone())),
        ]),
    };
    encode(&v)
}

fn parse_json(body: &str) -> Result<Json, String> {
    trace::parse(body).map_err(|e| format!("bad JSON: {e}"))
}

fn msg_type(v: &Json) -> Result<&str, String> {
    v.get("type").and_then(Json::as_str).ok_or_else(|| "missing 'type' field".to_string())
}

/// Decode a request frame body; the error string is a human-readable
/// `detail` the server echoes back in a `bad_request` response.
///
/// # Errors
///
/// Returns a description of the malformation.
pub fn decode_request(body: &str) -> Result<Request, String> {
    let v = parse_json(body)?;
    match msg_type(&v)? {
        "ping" => Ok(Request::Ping),
        "query" => {
            let id = v.get("id").and_then(Json::as_u64).ok_or("missing numeric 'id'")?;
            let top_k =
                v.get("top_k").and_then(Json::as_u64).ok_or("missing numeric 'top_k'")? as usize;
            let features = v
                .get("features")
                .and_then(Json::as_arr)
                .ok_or("missing 'features' array")?
                .iter()
                .map(|f| f.as_f64().ok_or("non-numeric feature"))
                .collect::<Result<Vec<f64>, &str>>()?;
            let deadline_ms = match v.get("deadline_ms") {
                None => None,
                Some(d) => Some(d.as_u64().ok_or("non-integer 'deadline_ms'")?),
            };
            Ok(Request::Query(QueryRequest { id, features, top_k, deadline_ms }))
        }
        "insert" => {
            let id = v.get("id").and_then(Json::as_u64).ok_or("missing numeric 'id'")?;
            let rows = v
                .get("rows")
                .and_then(Json::as_arr)
                .ok_or("missing 'rows' array")?
                .iter()
                .map(|row| {
                    row.as_arr()
                        .ok_or("non-array row")?
                        .iter()
                        .map(|f| f.as_f64().ok_or("non-numeric feature"))
                        .collect::<Result<Vec<f64>, &str>>()
                })
                .collect::<Result<Vec<Vec<f64>>, &str>>()?;
            // `count` is optional for wire compatibility with pre-count
            // clients, but when present it must match the payload: a
            // disagreement means the frame was truncated or forged, and
            // silently trusting either number would commit the wrong
            // batch under the client's id.
            if let Some(c) = v.get("count") {
                let declared = c.as_u64().ok_or("non-integer 'count'")?;
                if u64::try_from(rows.len()).ok() != Some(declared) {
                    return Err(format!(
                        "insert declared {declared} rows but the payload has {}",
                        rows.len()
                    ));
                }
            }
            Ok(Request::Insert { id, rows })
        }
        "remove" => {
            let id = v.get("id").and_then(Json::as_u64).ok_or("missing numeric 'id'")?;
            let index = v.get("index").and_then(Json::as_u64).ok_or("missing numeric 'index'")?;
            Ok(Request::Remove { id, index })
        }
        "flush" => {
            let id = v.get("id").and_then(Json::as_u64).ok_or("missing numeric 'id'")?;
            Ok(Request::Flush { id })
        }
        "reload" => {
            let id = v.get("id").and_then(Json::as_u64).ok_or("missing numeric 'id'")?;
            let path =
                v.get("path").and_then(Json::as_str).ok_or("missing 'path' string")?.to_string();
            Ok(Request::Reload { id, path })
        }
        other => Err(format!("unknown request type '{other}'")),
    }
}

/// Decode a response frame body (the client side of the protocol).
///
/// # Errors
///
/// Returns a description of the malformation.
pub fn decode_response(body: &str) -> Result<Response, String> {
    let v = parse_json(body)?;
    match msg_type(&v)? {
        "pong" => Ok(Response::Pong),
        "hits" => {
            let id = v.get("id").and_then(Json::as_u64).ok_or("missing numeric 'id'")?;
            let hits = v
                .get("hits")
                .and_then(Json::as_arr)
                .ok_or("missing 'hits' array")?
                .iter()
                .map(|pair| {
                    let arr = pair.as_arr().filter(|a| a.len() == 2).ok_or("bad hit pair")?;
                    let d = arr[0].as_u64().ok_or("bad hit distance")?;
                    let i = arr[1].as_u64().ok_or("bad hit index")?;
                    Ok((d as u32, i as u32))
                })
                .collect::<Result<Vec<(u32, u32)>, &str>>()?;
            let generation =
                v.get("generation").and_then(Json::as_u64).ok_or("missing numeric 'generation'")?;
            let bundle =
                v.get("bundle").and_then(Json::as_u64).ok_or("missing numeric 'bundle'")?;
            Ok(Response::Hits { id, hits, generation, bundle })
        }
        "inserted" => {
            let id = v.get("id").and_then(Json::as_u64).ok_or("missing numeric 'id'")?;
            let generation = v
                .get("committed_generation")
                .and_then(Json::as_u64)
                .ok_or("missing numeric 'committed_generation'")?;
            let first_index = v
                .get("first_index")
                .and_then(Json::as_u64)
                .ok_or("missing numeric 'first_index'")?;
            let count = v.get("count").and_then(Json::as_u64).ok_or("missing numeric 'count'")?;
            let live = v.get("live").and_then(Json::as_u64).ok_or("missing numeric 'live'")?;
            let bundle =
                v.get("bundle").and_then(Json::as_u64).ok_or("missing numeric 'bundle'")?;
            Ok(Response::Inserted { id, generation, first_index, count, live, bundle })
        }
        "removed" => {
            let id = v.get("id").and_then(Json::as_u64).ok_or("missing numeric 'id'")?;
            let generation = v
                .get("committed_generation")
                .and_then(Json::as_u64)
                .ok_or("missing numeric 'committed_generation'")?;
            let removed =
                v.get("removed").and_then(Json::as_bool).ok_or("missing boolean 'removed'")?;
            let live = v.get("live").and_then(Json::as_u64).ok_or("missing numeric 'live'")?;
            Ok(Response::Removed { id, generation, removed, live })
        }
        "flushed" => {
            let id = v.get("id").and_then(Json::as_u64).ok_or("missing numeric 'id'")?;
            let generation = v
                .get("committed_generation")
                .and_then(Json::as_u64)
                .ok_or("missing numeric 'committed_generation'")?;
            let live = v.get("live").and_then(Json::as_u64).ok_or("missing numeric 'live'")?;
            let total = v.get("total").and_then(Json::as_u64).ok_or("missing numeric 'total'")?;
            let bundle =
                v.get("bundle").and_then(Json::as_u64).ok_or("missing numeric 'bundle'")?;
            Ok(Response::Flushed { id, generation, live, total, bundle })
        }
        "reloaded" => {
            let id = v.get("id").and_then(Json::as_u64).ok_or("missing numeric 'id'")?;
            let bundle =
                v.get("bundle").and_then(Json::as_u64).ok_or("missing numeric 'bundle'")?;
            let vocab = v.get("vocab").and_then(Json::as_u64).ok_or("missing numeric 'vocab'")?;
            Ok(Response::Reloaded { id, bundle, vocab })
        }
        "error" => {
            let id = v.get("id").and_then(Json::as_u64).ok_or("missing numeric 'id'")?;
            let reason = v
                .get("reason")
                .and_then(Json::as_str)
                .and_then(Reason::from_str)
                .ok_or("missing or unknown 'reason'")?;
            let detail =
                v.get("detail").and_then(Json::as_str).ok_or("missing 'detail'")?.to_string();
            Ok(Response::Error { id, reason, detail })
        }
        other => Err(format!("unknown response type '{other}'")),
    }
}

/// Read frames from a blocking reader until one complete frame is
/// available (the synchronous client path: loadgen, tests, CLI probes).
///
/// # Errors
///
/// I/O errors propagate; protocol violations surface as `InvalidData`.
pub fn read_frame_blocking(r: &mut impl Read, frames: &mut FrameReader) -> io::Result<String> {
    let mut chunk = [0u8; 4096];
    loop {
        match frames.next_frame() {
            Ok(Some(body)) => return Ok(body),
            Ok(None) => {}
            Err(e) => return Err(io::Error::new(io::ErrorKind::InvalidData, e.to_string())),
        }
        let n = r.read(&mut chunk)?;
        if n == 0 {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "connection closed mid-frame",
            ));
        }
        frames.push_bytes(&chunk[..n]);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_round_trip() {
        let req = Request::Query(QueryRequest {
            id: 42,
            features: vec![0.5, -1.25, 3.0e-7, 1234.5],
            top_k: 10,
            deadline_ms: Some(50),
        });
        let body = encode_request(&req);
        assert_eq!(decode_request(&body).expect("round trip"), req);
        let ping = encode_request(&Request::Ping);
        assert_eq!(decode_request(&ping).expect("ping"), Request::Ping);
    }

    #[test]
    fn mutation_requests_round_trip() {
        for req in [
            Request::Insert { id: 3, rows: vec![vec![0.5, -1.25], vec![2.0, 0.125]] },
            Request::Insert { id: 4, rows: vec![] },
            Request::Remove { id: 5, index: 412 },
            Request::Flush { id: 6 },
            Request::Reload { id: 7, path: "/bundles/v2".into() },
        ] {
            let body = encode_request(&req);
            assert_eq!(decode_request(&body).expect("round trip"), req);
        }
    }

    #[test]
    fn mutation_responses_round_trip() {
        for resp in [
            Response::Inserted {
                id: 3,
                generation: 4,
                first_index: 1200,
                count: 2,
                live: 1198,
                bundle: 1,
            },
            Response::Removed { id: 5, generation: 5, removed: true, live: 1197 },
            Response::Removed { id: 5, generation: 5, removed: false, live: 1197 },
            Response::Flushed { id: 6, generation: 5, live: 1197, total: 1202, bundle: 1 },
            Response::Reloaded { id: 7, bundle: 2, vocab: 4096 },
        ] {
            let body = encode_response(&resp);
            assert_eq!(decode_response(&body).expect("round trip"), resp);
        }
    }

    #[test]
    fn features_survive_the_wire_bit_for_bit() {
        // Awkward values: subnormal-ish, negative zero, long mantissas.
        let feats = vec![0.1 + 0.2, -0.0, f64::MIN_POSITIVE, 1.0 / 3.0, -987654.321];
        let req = Request::Query(QueryRequest {
            id: 1,
            features: feats.clone(),
            top_k: 1,
            deadline_ms: None,
        });
        let decoded = match decode_request(&encode_request(&req)).expect("decodes") {
            Request::Query(q) => q.features,
            other => panic!("unexpected {other:?}"),
        };
        let bits = |v: &[f64]| v.iter().map(|f| f.to_bits()).collect::<Vec<_>>();
        assert_eq!(bits(&decoded), bits(&feats));
    }

    #[test]
    fn response_round_trip() {
        let ok =
            Response::Hits { id: 9, hits: vec![(0, 3), (1, 0), (1, 7)], generation: 2, bundle: 1 };
        assert_eq!(decode_response(&encode_response(&ok)).expect("hits"), ok);
        let err = Response::Error {
            id: 9,
            reason: Reason::Overloaded,
            detail: "queue full (cap 8)".into(),
        };
        assert_eq!(decode_response(&encode_response(&err)).expect("error"), err);
        assert_eq!(
            decode_response(&encode_response(&Response::Pong)).expect("pong"),
            Response::Pong
        );
    }

    #[test]
    fn every_reason_round_trips() {
        for r in
            [Reason::Overloaded, Reason::DeadlineExceeded, Reason::Draining, Reason::BadRequest]
        {
            assert_eq!(Reason::from_str(r.as_str()), Some(r));
        }
        assert_eq!(Reason::from_str("nope"), None);
    }

    #[test]
    fn frame_reader_reassembles_split_and_batched_frames() {
        let mut bytes = Vec::new();
        write_frame(&mut bytes, "\"first\"").expect("vec write");
        write_frame(&mut bytes, "\"second\"").expect("vec write");
        let mut fr = FrameReader::new();
        // Feed one byte at a time: frames must pop exactly when complete.
        let mut seen = Vec::new();
        for &b in &bytes {
            fr.push_bytes(&[b]);
            while let Some(frame) = fr.next_frame().expect("valid stream") {
                seen.push(frame);
            }
        }
        assert_eq!(seen, vec!["\"first\"".to_string(), "\"second\"".to_string()]);
    }

    #[test]
    fn encode_frame_matches_write_frame_bytes() {
        let mut written = Vec::new();
        write_frame(&mut written, "{\"type\":\"pong\"}").expect("vec write");
        let encoded = encode_frame("{\"type\":\"pong\"}").expect("under cap");
        assert_eq!(encoded, written);
    }

    #[test]
    fn oversized_frame_rejected() {
        let mut fr = FrameReader::new();
        fr.push_bytes(&(MAX_FRAME as u32 + 1).to_le_bytes());
        assert_eq!(fr.next_frame(), Err(ProtocolError::FrameTooLarge(MAX_FRAME + 1)));
        let mut sink = Vec::new();
        let huge = "x".repeat(MAX_FRAME + 1);
        assert!(write_frame(&mut sink, &huge).is_err());
    }

    #[test]
    fn malformed_requests_name_the_problem() {
        assert!(decode_request("{").expect_err("bad json").contains("bad JSON"));
        assert!(decode_request("{\"type\":\"nope\"}").expect_err("type").contains("nope"));
        let missing = decode_request("{\"type\":\"query\",\"id\":1,\"top_k\":3}");
        assert!(missing.expect_err("features").contains("features"));
    }
}
