//! End-to-end loopback tests: a real server on an ephemeral port, a real
//! TCP client, and the offline evaluation pipeline as the oracle.
//!
//! Concurrency on the client side comes from *pipelining* — writing many
//! frames before reading any responses — rather than client threads, so the
//! batch worker genuinely coalesces queries while the test itself stays
//! single-threaded (the `raw-thread` lint allows OS threads only inside
//! `linalg::par` and the serve worker pool).

use std::net::TcpStream;
use std::time::Duration;

use uhscm_eval::{BitCodes, HammingRanker};
use uhscm_serve::{
    encode_request, read_frame_blocking, synth, write_frame, Engine, FrameReader, QueryRequest,
    Reason, Request, Response, ServeConfig, Server,
};

/// A blocking test client over one connection.
struct Client {
    stream: TcpStream,
    frames: FrameReader,
}

impl Client {
    fn connect(server: &Server) -> Client {
        let stream = TcpStream::connect(server.local_addr()).expect("connect to loopback");
        stream.set_read_timeout(Some(Duration::from_secs(20))).expect("set client read timeout");
        stream.set_nodelay(true).expect("set nodelay");
        Client { stream, frames: FrameReader::new() }
    }

    fn send(&mut self, req: &Request) {
        write_frame(&mut self.stream, &encode_request(req)).expect("client write");
    }

    fn recv(&mut self) -> Response {
        let body =
            read_frame_blocking(&mut self.stream, &mut self.frames).expect("client read frame");
        uhscm_serve::decode_response(&body).expect("client decode response")
    }
}

fn query(id: u64, features: &[f64], top_k: usize, deadline_ms: Option<u64>) -> Request {
    Request::Query(QueryRequest { id, features: features.to_vec(), top_k, deadline_ms })
}

/// Few bits + many database codes = dense distance ties, including across
/// shard boundaries: exactly the regime where a sloppy merge would diverge
/// from the offline tie-break order.
const SEED: u64 = 42;
const DIM: usize = 8;
const BITS: usize = 6;
const N_DB: usize = 48;
const N_QUERIES: usize = 12;

#[test]
fn online_hits_are_bitwise_identical_to_the_offline_oracle_at_every_shard_count() {
    let w = synth::workload(SEED, DIM, BITS, N_DB, N_QUERIES);

    // Offline oracle: encode all queries in one batch, rank on one shard.
    let oracle_codes = BitCodes::from_real(&w.model.infer(&w.queries));
    let oracle = HammingRanker::new(w.db.clone());
    let top_k = 10;

    for shards in [1usize, 2, 4] {
        let engine = Engine::new(w.model.clone(), &w.db, shards).expect("widths match");
        assert_eq!(engine.num_shards(), shards);
        assert_eq!(engine.db_len(), N_DB);
        assert_eq!(engine.bits(), BITS);
        let config = ServeConfig {
            shards,
            // Generous straggler window: the pipelined burst below lands in
            // few (usually one) genuinely multi-query batches.
            max_wait: Duration::from_millis(50),
            ..ServeConfig::default()
        };
        let server = Server::start(engine, &config).expect("server starts");
        let mut client = Client::connect(&server);

        // Pipeline every query before reading anything.
        for qi in 0..N_QUERIES {
            client.send(&query(qi as u64, w.queries.row(qi), top_k, None));
        }
        for _ in 0..N_QUERIES {
            match client.recv() {
                Response::Hits { id, hits, .. } => {
                    let qi = id as usize;
                    let want = oracle.rank_top_n_with_dist(&oracle_codes, qi, top_k);
                    assert_eq!(hits, want, "shards={shards} query={qi}");
                }
                other => panic!("shards={shards}: unexpected response {other:?}"),
            }
        }
        server.shutdown();
    }
}

#[test]
fn ping_pong_and_structured_bad_requests() {
    let w = synth::workload(SEED, DIM, BITS, N_DB, 1);
    let engine = Engine::new(w.model.clone(), &w.db, 2).expect("widths match");
    let server = Server::start(engine, &ServeConfig::default()).expect("server starts");
    let mut client = Client::connect(&server);

    client.send(&Request::Ping);
    assert_eq!(client.recv(), Response::Pong);
    assert_eq!(server.queue_depth(), 0, "ping must not occupy a queue slot");

    // Wrong feature dimension: rejected with a reason, connection survives.
    client.send(&query(5, &[1.0, 2.0], 3, None));
    match client.recv() {
        Response::Error { id, reason, detail } => {
            assert_eq!(id, 5);
            assert_eq!(reason, Reason::BadRequest);
            assert!(detail.contains("features"), "unhelpful detail: {detail}");
        }
        other => panic!("unexpected {other:?}"),
    }

    // top_k == 0 is meaningless: also a structured rejection.
    client.send(&query(6, w.queries.row(0), 0, None));
    match client.recv() {
        Response::Error { id, reason, .. } => {
            assert_eq!((id, reason), (6, Reason::BadRequest));
        }
        other => panic!("unexpected {other:?}"),
    }

    // Malformed JSON in a well-formed frame: structured reject too.
    write_frame(&mut client.stream, "{not json").expect("client write");
    match client.recv() {
        Response::Error { reason, detail, .. } => {
            assert_eq!(reason, Reason::BadRequest);
            assert!(detail.contains("bad JSON"), "unhelpful detail: {detail}");
        }
        other => panic!("unexpected {other:?}"),
    }

    // The connection is still usable after all those rejections.
    client.send(&Request::Ping);
    assert_eq!(client.recv(), Response::Pong);
    server.shutdown();
}

#[test]
fn wire_integer_validation_rejects_oversized_top_k_and_count_mismatches() {
    let w = synth::workload(SEED, DIM, BITS, N_DB, 1);
    let engine = Engine::new(w.model.clone(), &w.db, 2).expect("widths match");
    let config = ServeConfig { max_top_k: 8, ..ServeConfig::default() };
    let server = Server::start(engine, &config).expect("server starts");
    let mut client = Client::connect(&server);

    // top_k above the configured cap: refused before admission, with the
    // limit spelled out, and the connection survives.
    client.send(&query(1, w.queries.row(0), 9, None));
    match client.recv() {
        Response::Error { id, reason, detail } => {
            assert_eq!((id, reason), (1, Reason::BadRequest));
            assert!(detail.contains("exceeds the cap 8"), "unhelpful detail: {detail}");
        }
        other => panic!("unexpected {other:?}"),
    }

    // Exactly at the cap is still a served query.
    client.send(&query(2, w.queries.row(0), 8, None));
    match client.recv() {
        Response::Hits { id, hits, .. } => {
            assert_eq!(id, 2);
            assert_eq!(hits.len(), 8);
        }
        other => panic!("unexpected {other:?}"),
    }

    // An insert whose declared row count disagrees with its payload is a
    // truncated or forged frame: structured rejection (decode-level, so the
    // reply carries id 0), and nothing commits behind the client's back.
    let features = vec!["0.0"; DIM].join(",");
    let forged = format!(r#"{{"type":"insert","id":3,"count":2,"rows":[[{features}]]}}"#);
    write_frame(&mut client.stream, &forged).expect("client write");
    match client.recv() {
        Response::Error { id, reason, detail } => {
            assert_eq!((id, reason), (0, Reason::BadRequest));
            assert!(
                detail.contains("declared 2 rows but the payload has 1"),
                "unhelpful detail: {detail}"
            );
        }
        other => panic!("unexpected {other:?}"),
    }

    // A well-formed insert (the encoder stamps the count itself) commits.
    client.send(&Request::Insert { id: 4, rows: vec![vec![0.25; DIM]] });
    match client.recv() {
        Response::Inserted { id, count, .. } => assert_eq!((id, count), (4, 1)),
        other => panic!("unexpected {other:?}"),
    }
    server.shutdown();
}

#[test]
fn deadline_already_expired_is_rejected_without_encoding() {
    let w = synth::workload(SEED, DIM, BITS, N_DB, 2);
    let engine = Engine::new(w.model.clone(), &w.db, 2).expect("widths match");
    let server = Server::start(engine, &ServeConfig::default()).expect("server starts");
    let mut client = Client::connect(&server);

    // deadline_ms = 0: the deadline passes the instant the query is
    // admitted, so dequeue must observe it as expired — deterministically.
    client.send(&query(1, w.queries.row(0), 5, Some(0)));
    match client.recv() {
        Response::Error { id, reason, .. } => {
            assert_eq!((id, reason), (1, Reason::DeadlineExceeded));
        }
        other => panic!("unexpected {other:?}"),
    }

    // A sibling query with a roomy deadline still gets answered.
    client.send(&query(2, w.queries.row(1), 5, Some(10_000)));
    match client.recv() {
        Response::Hits { id, hits, .. } => {
            assert_eq!(id, 2);
            assert_eq!(hits.len(), 5);
        }
        other => panic!("unexpected {other:?}"),
    }
    server.shutdown();
}

#[test]
fn overload_sheds_with_an_explicit_reason() {
    let w = synth::workload(SEED, DIM, BITS, N_DB, 2);
    let engine = Engine::new(w.model.clone(), &w.db, 2).expect("widths match");
    // One queue slot, and a straggler window long enough that the first
    // query is still occupying that slot when the second arrives (the batch
    // worker keeps queries queued while it waits for the batch to fill).
    let config = ServeConfig {
        queue_cap: 1,
        max_batch: 8,
        max_wait: Duration::from_millis(400),
        ..ServeConfig::default()
    };
    let server = Server::start(engine, &config).expect("server starts");
    let mut client = Client::connect(&server);

    client.send(&query(1, w.queries.row(0), 3, None));
    client.send(&query(2, w.queries.row(1), 3, None));

    // The shed reply is written immediately by the connection thread; the
    // admitted query's hits follow once the straggler window closes.
    match client.recv() {
        Response::Error { id, reason, detail } => {
            assert_eq!((id, reason), (2, Reason::Overloaded));
            assert!(detail.contains("queue"), "unhelpful detail: {detail}");
        }
        other => panic!("unexpected {other:?}"),
    }
    match client.recv() {
        Response::Hits { id, .. } => assert_eq!(id, 1),
        other => panic!("unexpected {other:?}"),
    }
    server.shutdown();
}

#[test]
fn graceful_drain_answers_admitted_queries_then_stops_listening() {
    let w = synth::workload(SEED, DIM, BITS, N_DB, 4);
    let engine = Engine::new(w.model.clone(), &w.db, 2).expect("widths match");
    let config = ServeConfig { max_wait: Duration::from_millis(200), ..ServeConfig::default() };
    let server = Server::start(engine, &config).expect("server starts");
    let addr = server.local_addr();
    let mut client = Client::connect(&server);

    for qi in 0..4u64 {
        client.send(&query(qi, w.queries.row(qi as usize), 4, None));
    }
    // The connection thread answers frames in order, so the pong proves all
    // four queries were admitted before we start draining (queries landing
    // after the drain flag would legitimately be rejected instead).
    client.send(&Request::Ping);
    assert_eq!(client.recv(), Response::Pong);
    // Shutdown while the straggler window is still open: every admitted
    // query must be answered before shutdown() returns.
    server.shutdown();

    let mut answered = 0;
    for _ in 0..4 {
        match client.recv() {
            Response::Hits { .. } => answered += 1,
            other => panic!("unexpected {other:?}"),
        }
    }
    assert_eq!(answered, 4);

    // The listener is gone: nobody is accepting anymore.
    assert!(TcpStream::connect(addr).is_err(), "listener survived shutdown");
}

#[test]
fn pipelined_mixed_valid_and_invalid_requests_stay_well_framed() {
    // Rejections are produced by the connection thread, hits by the batch
    // worker; with both racing onto one socket, every response must still
    // arrive as a complete, decodable frame (the per-connection writer
    // thread is the serialization point — nothing writes under a lock).
    let w = synth::workload(SEED, DIM, BITS, N_DB, N_QUERIES);
    let engine = Engine::new(w.model.clone(), &w.db, 2).expect("widths match");
    let config = ServeConfig { max_wait: Duration::from_millis(20), ..ServeConfig::default() };
    let server = Server::start(engine, &config).expect("server starts");
    let mut client = Client::connect(&server);

    // Pipeline the whole burst before reading anything: even ids are valid
    // queries, odd ids carry the wrong feature dimension.
    const BURST: u64 = 24;
    for i in 0..BURST {
        if i % 2 == 0 {
            client.send(&query(i, w.queries.row((i as usize / 2) % N_QUERIES), 5, None));
        } else {
            client.send(&query(i, &[0.5], 5, None));
        }
    }
    let mut hit_ids = std::collections::BTreeSet::new();
    let mut err_ids = std::collections::BTreeSet::new();
    // Client::recv decodes each frame; a torn or interleaved frame would
    // fail right here as a framing/decode panic.
    for _ in 0..BURST {
        match client.recv() {
            Response::Hits { id, hits, .. } => {
                assert_eq!(id % 2, 0, "hits for an invalid query {id}");
                assert_eq!(hits.len(), 5);
                assert!(hit_ids.insert(id), "duplicate hits for {id}");
            }
            Response::Error { id, reason, .. } => {
                assert_eq!((id % 2, reason), (1, Reason::BadRequest), "id={id}");
                assert!(err_ids.insert(id), "duplicate error for {id}");
            }
            other => panic!("unexpected {other:?}"),
        }
    }
    assert_eq!(hit_ids.len() as u64, BURST / 2);
    assert_eq!(err_ids.len() as u64, BURST / 2);
    server.shutdown();
}

#[test]
fn batched_and_sequential_queries_agree_with_each_other() {
    // The same queries sent one-at-a-time (sequential batches of 1) and in
    // one pipelined burst (coalesced batches) must produce identical hits:
    // batch composition must not leak into results.
    let w = synth::workload(SEED, DIM, BITS, N_DB, 6);
    let top_k = 7;

    let run = |max_wait: Duration, pipelined: bool| -> Vec<Vec<(u32, u32)>> {
        let engine = Engine::new(w.model.clone(), &w.db, 4).expect("widths match");
        let config = ServeConfig { max_wait, ..ServeConfig::default() };
        let server = Server::start(engine, &config).expect("server starts");
        let mut client = Client::connect(&server);
        let mut out = vec![Vec::new(); 6];
        if pipelined {
            for qi in 0..6u64 {
                client.send(&query(qi, w.queries.row(qi as usize), top_k, None));
            }
            for _ in 0..6 {
                match client.recv() {
                    Response::Hits { id, hits, .. } => out[id as usize] = hits,
                    other => panic!("unexpected {other:?}"),
                }
            }
        } else {
            for qi in 0..6u64 {
                client.send(&query(qi, w.queries.row(qi as usize), top_k, None));
                match client.recv() {
                    Response::Hits { id, hits, .. } => out[id as usize] = hits,
                    other => panic!("unexpected {other:?}"),
                }
            }
        }
        server.shutdown();
        out
    };

    let sequential = run(Duration::ZERO, false);
    let coalesced = run(Duration::from_millis(50), true);
    assert_eq!(sequential, coalesced);
}

#[test]
fn live_mutations_and_reload_answer_over_the_wire() {
    let w = synth::workload(SEED, DIM, BITS, N_DB, 2);
    let engine = Engine::new(w.model.clone(), &w.db, 2).expect("widths match");
    let server = Server::start(engine, &ServeConfig::default()).expect("server starts");
    let mut client = Client::connect(&server);

    // Insert two rows: the receipt reports the commit and where they landed.
    let rows = synth::insert_rows(SEED, 2, DIM);
    client.send(&Request::Insert { id: 1, rows: (0..2).map(|i| rows.row(i).to_vec()).collect() });
    match client.recv() {
        Response::Inserted { id, generation, first_index, count, live, bundle } => {
            assert_eq!(
                (id, generation, first_index, count, live, bundle),
                (1, 1, N_DB as u64, 2, N_DB as u64 + 2, 0)
            );
        }
        other => panic!("unexpected {other:?}"),
    }

    // Query with the first inserted row's features: the same bundle encodes
    // it to the same code, so the inserted item comes back at distance 0.
    client.send(&query(2, rows.row(0), N_DB + 2, None));
    match client.recv() {
        Response::Hits { id, hits, generation, bundle } => {
            assert_eq!((id, generation, bundle), (2, 1, 0));
            assert!(
                hits.iter().any(|&(d, j)| d == 0 && j == N_DB as u32),
                "inserted item not found at distance 0: {hits:?}"
            );
        }
        other => panic!("unexpected {other:?}"),
    }

    // Remove it; a full-depth query no longer returns it.
    client.send(&Request::Remove { id: 3, index: N_DB as u64 });
    match client.recv() {
        Response::Removed { id, generation, removed, live } => {
            assert_eq!((id, generation, removed, live), (3, 2, true, N_DB as u64 + 1));
        }
        other => panic!("unexpected {other:?}"),
    }
    client.send(&query(4, rows.row(0), N_DB + 2, None));
    match client.recv() {
        Response::Hits { id, hits, generation, .. } => {
            assert_eq!((id, generation), (4, 2));
            assert!(hits.iter().all(|&(_, j)| j != N_DB as u32), "tombstoned item returned");
        }
        other => panic!("unexpected {other:?}"),
    }

    // Removing it again: explicit no-op, no new generation.
    client.send(&Request::Remove { id: 5, index: N_DB as u64 });
    match client.recv() {
        Response::Removed { id, generation, removed, .. } => {
            assert_eq!((id, generation, removed), (5, 2, false));
        }
        other => panic!("unexpected {other:?}"),
    }

    // Hot-reload a retrained bundle from disk mid-connection.
    let dir = std::env::temp_dir().join(format!("uhscm-loopback-reload-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create bundle dir");
    let alt = synth::alt_model(SEED, DIM, BITS);
    let mut f = std::fs::File::create(dir.join("model.nn")).expect("create model.nn");
    alt.save(&mut f).expect("save alt model");
    std::fs::write(dir.join("vocab.txt"), "alpha\nbeta\n").expect("write vocab");

    client.send(&Request::Reload { id: 6, path: dir.to_string_lossy().into_owned() });
    match client.recv() {
        Response::Reloaded { id, bundle, vocab } => assert_eq!((id, bundle, vocab), (6, 1, 2)),
        other => panic!("unexpected {other:?}"),
    }

    // Queries still answer, now reporting the new bundle, and match the
    // offline oracle evaluated with the reloaded model over the live set.
    client.send(&query(7, w.queries.row(0), 5, None));
    match client.recv() {
        Response::Hits { id, hits, generation, bundle } => {
            assert_eq!((id, generation, bundle), (7, 2, 1));
            // Database codes are immutable: the genesis codes and the rows
            // inserted under bundle 0 keep their bundle-0 encodings. Only
            // the query is encoded by the reloaded model.
            let mut db = w.db.clone();
            db.extend(&BitCodes::from_real(&w.model.infer(&rows)).slice(0..2));
            let q = BitCodes::from_real(&alt.infer(&uhscm_linalg::Matrix::from_vec(
                1,
                DIM,
                w.queries.row(0).to_vec(),
            )));
            let mut want: Vec<(u32, u32)> = (0..db.len())
                .filter(|&j| j != N_DB) // the tombstoned insert
                .map(|j| (q.hamming(0, &db, j), j as u32))
                .collect();
            want.sort_unstable();
            want.truncate(5);
            assert_eq!(hits, want, "post-reload hits diverge from the offline oracle");
        }
        other => panic!("unexpected {other:?}"),
    }

    // A flush readback agrees with everything above.
    client.send(&Request::Flush { id: 8 });
    match client.recv() {
        Response::Flushed { id, generation, live, total, bundle } => {
            assert_eq!(
                (id, generation, live, total, bundle),
                (8, 2, N_DB as u64 + 1, N_DB as u64 + 2, 1)
            );
        }
        other => panic!("unexpected {other:?}"),
    }

    server.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn graceful_drain_commits_admitted_mutations_before_returning() {
    let w = synth::workload(SEED, DIM, BITS, N_DB, 1);
    let engine = Engine::new(w.model.clone(), &w.db, 2).expect("widths match");
    let server = Server::start(engine, &ServeConfig::default()).expect("server starts");
    let mut client = Client::connect(&server);

    // Pipeline a burst of inserts plus a trailing flush, then a ping. The
    // connection thread handles frames in order and mutations commit
    // synchronously, so the pong proves every mutation above it was already
    // admitted AND committed — not parked in a queue shutdown could drop.
    let rows = synth::insert_rows(SEED, 4, DIM);
    for i in 0..4u64 {
        client.send(&Request::Insert { id: i, rows: vec![rows.row(i as usize).to_vec()] });
    }
    client.send(&Request::Flush { id: 90 });
    client.send(&Request::Ping);

    let mut receipts = 0u64;
    loop {
        match client.recv() {
            Response::Inserted { id, generation, first_index, .. } => {
                // Single-connection writes commit in frame order: generation
                // i+1 holds row i at global index N_DB + i.
                assert_eq!(generation, id + 1, "insert {id} committed out of order");
                assert_eq!(first_index, N_DB as u64 + id);
                receipts += 1;
            }
            Response::Flushed { id, generation, live, total, .. } => {
                assert_eq!(id, 90);
                assert_eq!(generation, 4);
                assert_eq!(live, N_DB as u64 + 4);
                assert_eq!(total, N_DB as u64 + 4);
            }
            Response::Pong => break,
            other => panic!("unexpected {other:?}"),
        }
    }
    assert_eq!(receipts, 4, "an admitted insert went unanswered");

    // Drain with those commits in the log: shutdown returns cleanly, and
    // the receipts above are the durable record — every write the server
    // acknowledged had already committed before the drain began.
    server.shutdown();
}

#[test]
fn readonly_server_refuses_writes_over_the_wire() {
    let w = synth::workload(SEED, DIM, BITS, N_DB, 1);
    let engine = Engine::new(w.model.clone(), &w.db, 2).expect("widths match");
    let config = ServeConfig { writable: false, ..ServeConfig::default() };
    let server = Server::start(engine, &config).expect("server starts");
    let mut client = Client::connect(&server);

    client.send(&Request::Insert { id: 1, rows: vec![vec![0.0; DIM]] });
    match client.recv() {
        Response::Error { id, reason, detail } => {
            assert_eq!((id, reason), (1, Reason::BadRequest));
            assert!(detail.contains("read-only"), "unhelpful detail: {detail}");
        }
        other => panic!("unexpected {other:?}"),
    }

    // Reads are unaffected.
    client.send(&query(2, w.queries.row(0), 3, None));
    match client.recv() {
        Response::Hits { id, generation, bundle, .. } => {
            assert_eq!((id, generation, bundle), (2, 0, 0));
        }
        other => panic!("unexpected {other:?}"),
    }
    server.shutdown();
}
