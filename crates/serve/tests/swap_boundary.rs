//! The swap-boundary harness: the PR's headline test. Queriers and a
//! mutator drive one live server across many generation commits and a
//! mid-traffic bundle reload; **every** query response must be
//! bitwise-identical to an offline oracle evaluated at exactly the
//! `(generation, bundle)` pair the response reports, for shard counts
//! {1, 2, 4}, with zero failed or torn responses.
//!
//! Concurrency comes from *pipelining across connections*, not client
//! threads (the `raw-thread` lint allows OS threads only inside
//! `linalg::par` and the serve worker pool): three querier connections
//! pipeline bursts of unread queries while the mutator connection commits
//! inserts, removes, and one reload between bursts. Server-side, the batch
//! worker answers the queriers' backlog concurrently with the mutator's
//! synchronous commits, so batches genuinely land on both sides of every
//! swap — and each response self-reports which side it saw.
//!
//! The oracle never peeks at server state: it reconstructs the database at
//! every generation purely from the wire — mutation receipts name their
//! `committed_generation`, insert receipts name the bundle that encoded
//! their rows — then replays a linear scan over the reconstruction. A
//! torn swap (query encoded by one bundle but reported as another, a
//! search overlapping two generations, a lost or duplicated commit) has
//! nowhere to hide: generation numbers must be gapless and every ranking
//! must match bit-for-bit.

use std::collections::{BTreeMap, BTreeSet};
use std::net::TcpStream;
use std::path::Path;
use std::time::Duration;

use uhscm_eval::BitCodes;
use uhscm_linalg::Matrix;
use uhscm_nn::Mlp;
use uhscm_serve::{
    encode_request, read_frame_blocking, synth, write_frame, Engine, FrameReader, QueryRequest,
    Request, Response, ServeConfig, Server,
};

/// Few bits + many codes = dense distance ties, the regime where a sloppy
/// merge or a torn swap would first diverge from the oracle's tie-break.
const SEED: u64 = 42;
const DIM: usize = 8;
const BITS: usize = 6;
const N_DB: usize = 48;
const N_QUERIES: usize = 12;
/// Mutation rounds per shard count: each commits one insert + one remove.
const ROUNDS: usize = 8;
/// Querier connections pipelining concurrently with the mutator.
const N_QUERIERS: usize = 3;
/// Queries pipelined per querier per round.
const QPR: usize = 4;
const TOP_K: usize = 10;

/// A blocking test client over one connection.
struct Client {
    stream: TcpStream,
    frames: FrameReader,
}

impl Client {
    fn connect(server: &Server) -> Client {
        let stream = TcpStream::connect(server.local_addr()).expect("connect to loopback");
        stream.set_read_timeout(Some(Duration::from_secs(20))).expect("set client read timeout");
        stream.set_nodelay(true).expect("set nodelay");
        Client { stream, frames: FrameReader::new() }
    }

    fn send(&mut self, req: &Request) {
        write_frame(&mut self.stream, &encode_request(req)).expect("client write");
    }

    fn recv(&mut self) -> Response {
        let body =
            read_frame_blocking(&mut self.stream, &mut self.frames).expect("client read frame");
        uhscm_serve::decode_response(&body).expect("client decode response")
    }
}

/// One committed state change, reconstructed from its wire receipt.
#[derive(Debug)]
enum Event {
    Insert { first_index: usize, row: usize, bundle: u64 },
    Remove { index: usize },
}

#[test]
fn every_response_matches_the_oracle_at_its_reported_generation() {
    // One reload bundle on disk, shared by all three shard-count runs.
    let dir = std::env::temp_dir().join(format!("uhscm-swap-boundary-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create bundle dir");
    let alt = synth::alt_model(SEED, DIM, BITS);
    let mut f = std::fs::File::create(dir.join("model.nn")).expect("create model.nn");
    alt.save(&mut f).expect("save alt model");
    std::fs::write(dir.join("vocab.txt"), "alpha\nbeta\n").expect("write vocab");

    for shards in [1usize, 2, 4] {
        run_swap_boundary(shards, &dir, &alt);
    }
    let _ = std::fs::remove_dir_all(&dir);
}

fn run_swap_boundary(shards: usize, bundle_dir: &Path, alt: &Mlp) {
    let w = synth::workload(SEED, DIM, BITS, N_DB, N_QUERIES);
    let engine = Engine::with_vocab(w.model.clone(), vec!["seed-term".to_string()], &w.db, shards)
        .expect("widths match");
    let config = ServeConfig {
        shards,
        // A small straggler window keeps query batches multi-query while
        // mutations commit between them.
        max_wait: Duration::from_millis(5),
        ..ServeConfig::default()
    };
    let server = Server::start(engine, &config).expect("server starts");
    let mut mutator = Client::connect(&server);
    let mut queriers: Vec<Client> = (0..N_QUERIERS).map(|_| Client::connect(&server)).collect();

    let ins_rows = synth::insert_rows(SEED, ROUNDS, DIM);
    let mut next_id = 0u64;
    // Per-querier (id, query row) bookkeeping for the drain phase.
    let mut sent: Vec<Vec<(u64, usize)>> = (0..N_QUERIERS).map(|_| Vec::new()).collect();
    // committed_generation → the state change that produced it.
    let mut events: BTreeMap<u64, Event> = BTreeMap::new();

    for round in 0..ROUNDS {
        // Pipeline a burst of queries on every querier — all unread, so
        // they stay in flight server-side while the mutations below commit.
        for (c, querier) in queriers.iter_mut().enumerate() {
            for k in 0..QPR {
                let qi = (round * QPR + k + c) % N_QUERIES;
                let id = next_id;
                next_id += 1;
                sent[c].push((id, qi));
                querier.send(&Request::Query(QueryRequest {
                    id,
                    features: w.queries.row(qi).to_vec(),
                    top_k: TOP_K,
                    deadline_ms: None,
                }));
            }
        }

        // One insert + one remove, receipts read immediately: the commits
        // land while this round's query burst is still being batched.
        let iid = next_id;
        next_id += 1;
        mutator.send(&Request::Insert { id: iid, rows: vec![ins_rows.row(round).to_vec()] });
        match mutator.recv() {
            Response::Inserted { id, generation, first_index, count, live: _, bundle } => {
                assert_eq!((id, count), (iid, 1), "shards={shards} round={round}");
                let prev = events.insert(
                    generation,
                    Event::Insert { first_index: first_index as usize, row: round, bundle },
                );
                assert!(prev.is_none(), "two mutations claimed generation {generation}");
            }
            other => panic!("shards={shards} round={round}: unexpected {other:?}"),
        }

        let victim = (round * 3) % N_DB; // distinct genesis indices: always live
        let rid = next_id;
        next_id += 1;
        mutator.send(&Request::Remove { id: rid, index: victim as u64 });
        match mutator.recv() {
            Response::Removed { id, generation, removed, .. } => {
                assert_eq!(id, rid);
                assert!(removed, "shards={shards}: victim {victim} was live");
                let prev = events.insert(generation, Event::Remove { index: victim });
                assert!(prev.is_none(), "two mutations claimed generation {generation}");
            }
            other => panic!("shards={shards} round={round}: unexpected {other:?}"),
        }

        // Mid-traffic bundle reload: everything before keeps encoding with
        // bundle 0, everything after with bundle 1 — and each response says
        // which one it got.
        if round == ROUNDS / 2 {
            let id = next_id;
            next_id += 1;
            mutator.send(&Request::Reload { id, path: bundle_dir.to_string_lossy().into_owned() });
            match mutator.recv() {
                Response::Reloaded { bundle, vocab, .. } => {
                    assert_eq!((bundle, vocab), (1, 2), "shards={shards}");
                }
                other => panic!("shards={shards}: unexpected {other:?}"),
            }
        }
    }

    // Commit barrier: the flush readback must agree with the receipt log.
    let fid = next_id;
    mutator.send(&Request::Flush { id: fid });
    let (max_gen, final_live, final_total) = match mutator.recv() {
        Response::Flushed { id, generation, live, total, bundle } => {
            assert_eq!((id, bundle), (fid, 1), "shards={shards}");
            (generation, live, total)
        }
        other => panic!("shards={shards}: unexpected {other:?}"),
    };

    // Generation numbers must be gapless: every commit is accounted for,
    // none duplicated, none lost.
    assert_eq!(max_gen, 2 * ROUNDS as u64, "shards={shards}");
    let got_gens: Vec<u64> = events.keys().copied().collect();
    let want_gens: Vec<u64> = (1..=max_gen).collect();
    assert_eq!(got_gens, want_gens, "shards={shards}: generation gap or duplicate");

    // Replay the receipt log into the exact database state at every
    // generation: codes are append-only (a growing BitCodes), liveness is a
    // per-generation tombstone snapshot.
    let models: [&Mlp; 2] = [&w.model, alt];
    let mut all = w.db.clone();
    let mut dead: BTreeSet<u32> = BTreeSet::new();
    let mut states: Vec<(usize, BTreeSet<u32>)> = vec![(all.len(), dead.clone())];
    for g in 1..=max_gen {
        match &events[&g] {
            Event::Insert { first_index, row, bundle } => {
                assert_eq!(*first_index, all.len(), "shards={shards} gen={g}: insert offset");
                assert!(*bundle <= 1, "unknown bundle version {bundle}");
                let feats = Matrix::from_vec(1, DIM, ins_rows.row(*row).to_vec());
                all.extend(&BitCodes::from_real(&models[*bundle as usize].infer(&feats)));
            }
            Event::Remove { index } => {
                assert!(dead.insert(*index as u32), "shards={shards} gen={g}: double tombstone");
            }
        }
        states.push((all.len(), dead.clone()));
    }
    assert_eq!(final_total as usize, all.len(), "shards={shards}");
    assert_eq!(final_live as usize, all.len() - dead.len(), "shards={shards}");

    // Drain every querier. Every single response must be a well-formed
    // `hits` (zero failed responses) matching the offline oracle evaluated
    // at exactly the generation and bundle the response reports.
    for (c, querier) in queriers.iter_mut().enumerate() {
        let routed: BTreeMap<u64, usize> = sent[c].iter().copied().collect();
        for _ in 0..sent[c].len() {
            match querier.recv() {
                Response::Hits { id, hits, generation, bundle } => {
                    let qi = routed[&id];
                    assert!(generation <= max_gen, "shards={shards}: generation from the future");
                    assert!(bundle <= 1, "shards={shards}: unknown bundle {bundle}");
                    let (len_at, dead_at) = &states[generation as usize];
                    let feats = Matrix::from_vec(1, DIM, w.queries.row(qi).to_vec());
                    let qcode = BitCodes::from_real(&models[bundle as usize].infer(&feats));
                    let mut want: Vec<(u32, u32)> = (0..*len_at)
                        .filter(|&j| !dead_at.contains(&(j as u32)))
                        .map(|j| (qcode.hamming(0, &all, j), j as u32))
                        .collect();
                    want.sort_unstable();
                    want.truncate(TOP_K);
                    assert_eq!(
                        hits, want,
                        "shards={shards} id={id} qi={qi} generation={generation} bundle={bundle}"
                    );
                }
                other => panic!("shards={shards}: failed response {other:?}"),
            }
        }
    }
    server.shutdown();
}
