//! Property test for the generation-swapped [`ShardedIndex`] under
//! arbitrary insert/remove/query interleavings, seeded from the
//! `HashIndex` oracle test in `crates/eval/tests/index_prop.rs`.
//!
//! Two independent oracles pin each committed generation:
//!
//! * a **linear scan** over a mirror of everything ever inserted plus a
//!   liveness flag — ground truth for the `(distance, index)`-ascending
//!   top-`n` contract;
//! * the existing [`HashIndex`] (multi-probe buckets + tombstones), driven
//!   through the same interleaving — two unrelated index structures must
//!   agree bit-for-bit on every prefix of the ranking.
//!
//! The same operation stream is replayed against shard counts {1, 2, 4}:
//! segment layout must never leak into results, commits must bump the
//! generation by exactly one, and no-op removes must not commit.

use proptest::prelude::*;
use uhscm_eval::{BitCodes, HashIndex};
use uhscm_linalg::rng;
use uhscm_serve::ShardedIndex;

/// One step of an interleaving: `true` inserts `1 + (param % 3)` fresh
/// codes, `false` removes item `param % total` (possibly already removed).
fn ops() -> impl Strategy<Value = Vec<(bool, u64)>> {
    prop::collection::vec((any::<bool>(), any::<u64>()), 1..24)
}

/// Ground truth: brute-force top-`n` over the live mirror in the offline
/// ranker's `(distance, index)`-ascending order.
fn linear_top_n(all: &BitCodes, alive: &[bool], q: &BitCodes, n: usize) -> Vec<(u32, u32)> {
    let mut v: Vec<(u32, u32)> =
        (0..all.len()).filter(|&j| alive[j]).map(|j| (q.hamming(0, all, j), j as u32)).collect();
    v.sort_unstable();
    v.truncate(n);
    v
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn sharded_mutations_match_linear_scan_and_hash_index_oracles(
        seed in any::<u64>(),
        n0 in 1usize..24,
        bits in 4usize..24,
        ops in ops(),
    ) {
        let mut r = rng::seeded(seed);
        let initial = BitCodes::from_real(&rng::gauss_matrix(&mut r, n0, bits, 1.0));
        let q = BitCodes::from_real(&rng::gauss_matrix(&mut r, 1, bits, 1.0));

        let indexes: Vec<ShardedIndex> =
            [1usize, 2, 4].iter().map(|&s| ShardedIndex::new(&initial, s)).collect();
        // Genesis splits into at most `len` non-empty bands; every insert
        // afterwards appends exactly one segment.
        let genesis_segments: Vec<usize> =
            [1usize, 2, 4].iter().map(|&s| s.min(initial.len())).collect();
        let mut inserts_done = 0usize;
        let mut hash_oracle = HashIndex::build(initial.clone(), 4);
        let mut all = initial; // mirror of everything ever inserted
        let mut alive = vec![true; all.len()];
        let mut expected_gen = 0u64;

        for (step, &(is_insert, param)) in ops.iter().enumerate() {
            if is_insert {
                let count = 1 + (param % 3) as usize;
                let fresh = BitCodes::from_real(&rng::gauss_matrix(&mut r, count, bits, 1.0));
                expected_gen += 1;
                for (s, index) in indexes.iter().enumerate() {
                    let commit = index.insert(&fresh);
                    prop_assert_eq!(commit.generation, expected_gen,
                        "step {} shards#{}: generation", step, s);
                    prop_assert_eq!(commit.first_index as usize, all.len(),
                        "step {} shards#{}: insert offset", step, s);
                    prop_assert_eq!(commit.count, fresh.len());
                }
                prop_assert_eq!(hash_oracle.insert(&fresh), all.len());
                all.extend(&fresh);
                alive.resize(all.len(), true);
                inserts_done += 1;
            } else {
                let target = (param % all.len() as u64) as usize;
                let was_alive = alive[target];
                // A state change commits exactly one generation; a no-op
                // remove commits nothing (else generation numbers would
                // stop mapping 1:1 onto state changes).
                if was_alive {
                    expected_gen += 1;
                }
                for (s, index) in indexes.iter().enumerate() {
                    let commit = index.remove(target);
                    prop_assert_eq!(commit.removed, was_alive,
                        "step {} shards#{}: remove({}) presence", step, s, target);
                    prop_assert_eq!(commit.generation, expected_gen,
                        "step {} shards#{}: generation", step, s);
                    // Double remove: explicit absence, still no commit.
                    let again = index.remove(target);
                    prop_assert!(!again.removed, "step {} shards#{}: double remove", step, s);
                    prop_assert_eq!(again.generation, expected_gen);
                }
                prop_assert_eq!(hash_oracle.remove(target), was_alive);
                alive[target] = false;
            }

            let live = alive.iter().filter(|&&a| a).count();
            for (s, index) in indexes.iter().enumerate() {
                prop_assert_eq!(index.len(), live, "step {} shards#{}: live len", step, s);
                prop_assert_eq!(index.total_len(), all.len());
                prop_assert_eq!(index.generation(), expected_gen);
                // The pinned generation must agree item-by-item with the
                // liveness mirror, and hold exactly genesis-bands + one
                // segment per insert.
                let snap = index.snapshot();
                prop_assert_eq!(snap.num_segments(), genesis_segments[s] + inserts_done,
                    "step {} shards#{}: segment count", step, s);
                for (j, &a) in alive.iter().enumerate() {
                    prop_assert_eq!(snap.is_live(j), a, "step {} shards#{}: is_live({})",
                        step, s, j);
                }
            }
            prop_assert_eq!(hash_oracle.live_len(), live);

            // Every committed generation must rank bitwise-identically to
            // both oracles, at depths below, at, and beyond the live count.
            for n in [1usize, 3, all.len() + 2] {
                let want = linear_top_n(&all, &alive, &q, n);
                for (s, index) in indexes.iter().enumerate() {
                    let got = index.search(&q, 0, n);
                    prop_assert_eq!(got.as_slice(), want.as_slice(),
                        "step {} shards#{} n {}: vs linear scan", step, s, n);
                }
                // HashIndex::knn emits (index, distance) and clamps to the
                // live count; remap to the serve-side (distance, index).
                let hash_want: Vec<(u32, u32)> =
                    hash_oracle.knn(&q, 0, n).iter().map(|&(j, d)| (d, j)).collect();
                prop_assert_eq!(&want[..hash_want.len()], hash_want.as_slice(),
                    "step {} n {}: vs HashIndex", step, n);
            }
        }
    }
}
