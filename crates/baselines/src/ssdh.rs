//! Semantic Structure-based unsupervised Deep Hashing
//! [Yang et al., IJCAI 2018].
//!
//! SSDH estimates the distribution of pairwise feature cosine similarities
//! with a Gaussian model and labels the confident tails: pairs far above the
//! mean are pseudo-similar (+1), pairs below a lower threshold
//! pseudo-dissimilar (−1), everything in between is left unlabeled. The
//! hashing network is then trained to reproduce the pseudo structure.

use crate::deep::{train_masked_pairwise, DeepBaselineConfig, DeepHasher};
use uhscm_linalg::{vecops, Matrix};
use uhscm_nn::pairwise::cosine_matrix;

/// Thresholds in units of the cosine distribution's standard deviation.
#[derive(Debug, Clone, Copy)]
pub struct SsdhThresholds {
    /// Pairs with `cos ≥ μ + similar · σ` are labeled +1.
    pub similar: f64,
    /// Pairs with `cos ≤ μ − dissimilar · σ` are labeled −1.
    pub dissimilar: f64,
}

impl Default for SsdhThresholds {
    fn default() -> Self {
        Self { similar: 2.0, dissimilar: 0.0 }
    }
}

/// Build SSDH's pseudo-label structure from feature cosines.
///
/// Returns `(target, weights)`: ±1 targets with weight 1 on confidently
/// labeled pairs, weight 0 elsewhere.
pub fn semantic_structure(features: &Matrix, thresholds: SsdhThresholds) -> (Matrix, Matrix) {
    let n = features.rows();
    let (cos, _) = cosine_matrix(features);
    // Moments over off-diagonal entries.
    let mut values = Vec::with_capacity(n * (n - 1) / 2);
    for i in 0..n {
        for j in (i + 1)..n {
            values.push(cos[(i, j)]);
        }
    }
    let mu = vecops::mean(&values);
    let sigma = vecops::variance(&values).sqrt().max(1e-9);
    let hi = mu + thresholds.similar * sigma;
    let lo = mu - thresholds.dissimilar * sigma;

    let mut target = Matrix::zeros(n, n);
    let mut weights = Matrix::zeros(n, n);
    for i in 0..n {
        for j in 0..n {
            if i == j {
                continue;
            }
            let c = cos[(i, j)];
            if c >= hi {
                target[(i, j)] = 1.0;
                weights[(i, j)] = 1.0;
            } else if c <= lo {
                target[(i, j)] = -1.0;
                weights[(i, j)] = 1.0;
            }
        }
    }
    (target, weights)
}

/// Train SSDH.
pub fn train(features: &Matrix, bits: usize, config: &DeepBaselineConfig, seed: u64) -> DeepHasher {
    let (target, weights) = semantic_structure(features, SsdhThresholds::default());
    train_masked_pairwise(features, &target, &weights, bits, config, "SSDH", seed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::UnsupervisedHasher;
    use uhscm_linalg::rng;

    fn clustered_features(seed: u64) -> Matrix {
        let mut r = rng::seeded(seed);
        let mut rows = Vec::new();
        for c in 0..3 {
            for _ in 0..15 {
                let mut v = rng::gauss_vec(&mut r, 10, 0.25);
                v[c] += 1.0;
                vecops::normalize(&mut v);
                rows.push(v);
            }
        }
        Matrix::from_rows(&rows)
    }

    #[test]
    fn structure_labels_tails_only() {
        let x = clustered_features(8);
        let (target, weights) = semantic_structure(&x, SsdhThresholds::default());
        let n = x.rows();
        let labeled: usize = (0..n)
            .flat_map(|i| (0..n).map(move |j| (i, j)))
            .filter(|&(i, j)| i != j && weights[(i, j)] > 0.0)
            .count();
        let total = n * (n - 1);
        assert!(labeled > 0, "no pairs labeled");
        assert!(labeled < total, "everything labeled — thresholds degenerate");
        // Labeled targets are exactly ±1.
        for i in 0..n {
            for j in 0..n {
                if weights[(i, j)] > 0.0 {
                    assert!(target[(i, j)].abs() == 1.0);
                }
            }
        }
    }

    #[test]
    fn same_cluster_pairs_labeled_similar() {
        // Seed chosen so the +1 tail (cos >= mu + 2*sigma) is populated for
        // this draw; with only 45 points some seeds give an empty tail.
        let x = clustered_features(4);
        let (target, weights) = semantic_structure(&x, SsdhThresholds::default());
        // Count how many (+1)-labeled pairs are truly same-cluster.
        let mut correct = 0;
        let mut total = 0;
        for i in 0..x.rows() {
            for j in 0..x.rows() {
                if i != j && weights[(i, j)] > 0.0 && target[(i, j)] > 0.0 {
                    total += 1;
                    if i / 15 == j / 15 {
                        correct += 1;
                    }
                }
            }
        }
        assert!(total > 0);
        assert!(correct as f64 / total as f64 > 0.9, "{correct}/{total} correct");
    }

    #[test]
    fn end_to_end_training() {
        let x = clustered_features(8);
        let model = train(&x, 8, &DeepBaselineConfig::test_profile(), 5);
        assert_eq!(model.name(), "SSDH");
        let codes = model.encode(&x);
        // Same-cluster codes closer than cross-cluster on average.
        let d_same = codes.hamming(0, &codes, 1);
        let d_diff = codes.hamming(0, &codes, 44);
        assert!(d_diff >= d_same);
    }
}
