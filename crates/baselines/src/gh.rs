//! GreedyHash [Su, Zhang, Han & Tian, NeurIPS 2018].
//!
//! GreedyHash's unsupervised form learns codes by **feature reconstruction
//! through the code layer** with a cubic penalty `‖ |z| − 1 ‖³` pulling the
//! pre-binarization activations onto the hypercube corners, and applies
//! `sgn` in the forward pass with a straight-through gradient.
//!
//! *Reproduction note.* With the paper's ImageNet-pretrained backbone the
//! initial code layer is informative and the strict straight-through
//! estimator works; trained from random initialization (this environment),
//! `sgn` of the near-zero initial activations is uninformative and the STE
//! never escapes that regime (we verified collapse or chance-level codes
//! across step-size scales). We therefore relax the reconstruction path to
//! the continuous activations — the corner penalty still drives them onto
//! `{±1}`, so `sgn(z) ≈ z` at convergence and the encode-time binarization
//! is *greedy* exactly as in the paper. DESIGN.md records the deviation.

use crate::deep::{DeepBaselineConfig, DeepHasher};
use uhscm_linalg::{rng, Matrix};
use uhscm_nn::{Activation, Mlp, Sgd};

/// Weight of GreedyHash's cubic corner penalty.
const CORNER_PENALTY: f64 = 0.0001;

/// Train GreedyHash.
///
/// # Panics
///
/// Panics if `features` has fewer than two rows.
pub fn train(features: &Matrix, bits: usize, config: &DeepBaselineConfig, seed: u64) -> DeepHasher {
    let n = features.rows();
    let d = features.cols();
    assert!(n >= 2, "need at least two items");
    // Center the features: CNN features live in the positive orthant with a
    // dominant shared mean; without centering every item's linear-head sign
    // pattern coincides and the codes collapse to a single value.
    let mean = features.col_means();
    let mut features = features.clone();
    features.center_rows(&mean);
    let features = &features;
    let mut r = rng::seeded(seed ^ 0x6811);
    // GreedyHash signs a *linear* head: a tanh there would saturate under
    // the corner penalty and zero the straight-through gradients.
    let mut sizes = vec![d];
    sizes.extend_from_slice(&config.hidden);
    sizes.push(bits);
    let mut acts = vec![Activation::Relu; config.hidden.len()];
    acts.push(Activation::Identity);
    let mut encoder = Mlp::new(&sizes, &acts, &mut r);
    let mut decoder = Mlp::new(&[bits, d], &[Activation::Identity], &mut r);
    let mut enc_opt = Sgd::new(config.learning_rate, config.momentum, config.weight_decay);
    let mut dec_opt = Sgd::new(config.learning_rate, config.momentum, config.weight_decay);

    for _ in 0..config.epochs {
        let order = rng::permutation(&mut r, n);
        for chunk in order.chunks(config.batch_size) {
            if chunk.len() < 2 {
                continue;
            }
            let t = chunk.len();
            let x = features.select_rows(chunk);
            let z = encoder.infer(&x);

            // Reconstruction loss L = ‖x − dec(z)‖² / (t·√d̄) on the relaxed
            // codes (see the module docs for why the strict sign forward is
            // relaxed here).
            let recon = decoder.forward(&z);
            let mut grad_recon = recon.sub(&x);
            grad_recon.scale(2.0 / (t as f64 * (d as f64).sqrt()));
            let mut grad_z = decoder.backward(&grad_recon);
            dec_opt.step(&mut decoder);

            // Cubic corner penalty on the relaxed activations:
            // p = Σ | |z| − 1 |³ / t ⇒ dp/dz = 3(|z|−1)² sgn(|z|−1) sgn(z) / t.
            let inv_t = 1.0 / t as f64;
            for i in 0..t {
                let gi = grad_z.row_mut(i);
                for (c, &v) in z.row(i).iter().enumerate() {
                    let excess = v.abs() - 1.0;
                    gi[c] += CORNER_PENALTY
                        * 3.0
                        * excess
                        * excess
                        * excess.signum()
                        * v.signum()
                        * inv_t;
                }
            }
            let _ = encoder.forward(&x);
            encoder.backward(&grad_z);
            enc_opt.step(&mut encoder);
        }
    }
    DeepHasher::with_centering(encoder, "GH", mean)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::UnsupervisedHasher;
    use uhscm_linalg::vecops;

    fn clustered(seed: u64, per: usize) -> (Matrix, Vec<usize>) {
        let mut r = rng::seeded(seed);
        let mut rows = Vec::new();
        let mut labels = Vec::new();
        for c in 0..3 {
            for _ in 0..per {
                let mut v = rng::gauss_vec(&mut r, 12, 0.2);
                v[c * 2] += 1.0;
                vecops::normalize(&mut v);
                rows.push(v);
                labels.push(c);
            }
        }
        (Matrix::from_rows(&rows), labels)
    }

    #[test]
    fn trains_and_produces_bits() {
        let (x, _) = clustered(1, 12);
        let model = train(&x, 16, &DeepBaselineConfig::test_profile(), 2);
        assert_eq!(model.name(), "GH");
        assert_eq!(model.bits(), 16);
        assert_eq!(model.encode(&x).len(), 36);
    }

    #[test]
    fn codes_stay_diverse() {
        // Reconstruction through codes rules out the collapsed solution.
        let (x, _) = clustered(2, 15);
        let cfg = DeepBaselineConfig { epochs: 20, ..DeepBaselineConfig::test_profile() };
        let model = train(&x, 16, &cfg, 3);
        let codes = model.encode(&x);
        let distinct: std::collections::HashSet<Vec<u64>> =
            (0..codes.len()).map(|i| codes.code(i).to_vec()).collect();
        assert!(distinct.len() > codes.len() / 2, "only {} distinct codes", distinct.len());
    }

    #[test]
    fn preserves_feature_similarity_ordering() {
        let (x, labels) = clustered(3, 15);
        let cfg = DeepBaselineConfig { epochs: 25, ..DeepBaselineConfig::test_profile() };
        let model = train(&x, 16, &cfg, 4);
        let codes = model.encode(&x);
        let mut intra = (0.0, 0);
        let mut inter = (0.0, 0);
        for i in 0..codes.len() {
            for j in (i + 1)..codes.len() {
                let d = codes.hamming(i, &codes, j) as f64;
                if labels[i] == labels[j] {
                    intra.0 += d;
                    intra.1 += 1;
                } else {
                    inter.0 += d;
                    inter.1 += 1;
                }
            }
        }
        assert!(inter.0 / inter.1 as f64 > intra.0 / intra.1 as f64);
    }

    #[test]
    fn deterministic() {
        let (x, _) = clustered(5, 8);
        let cfg = DeepBaselineConfig::test_profile();
        let a = train(&x, 8, &cfg, 7).encode(&x);
        let b = train(&x, 8, &cfg, 7).encode(&x);
        assert_eq!(a, b);
    }
}
