//! Unsupervised hashing baselines (§4.1 of the paper).
//!
//! The paper compares UHSCM against four traditional shallow methods and six
//! deep ones. All ten are implemented here, from scratch, behind a common
//! [`UnsupervisedHasher`] trait:
//!
//! | module | method | reference |
//! |---|---|---|
//! | [`lsh`] | Locality-Sensitive Hashing | Gionis et al., VLDB '99 |
//! | [`sh`] | Spectral Hashing | Weiss et al., NeurIPS '09 |
//! | [`itq`] | Iterative Quantization | Gong et al., TPAMI '12 |
//! | [`agh`] | Anchor Graph Hashing | Liu et al., ICML '11 |
//! | [`ssdh`] | Semantic-Structure DH | Yang et al., IJCAI '18 |
//! | [`gh`] | GreedyHash | Su et al., NeurIPS '18 |
//! | [`bgan`] | Binary GAN hashing | Song et al., AAAI '18 |
//! | [`mls3rduh`] | MLS³RDUH | Tu et al., IJCAI '20 |
//! | [`cib`] | Contrastive Information Bottleneck | Qiu et al., IJCAI '21 |
//! | [`uth`] | Unsupervised Triplet Hashing | Huang et al., ACM MM '17 |
//! | [`csq`] | Central Similarity Quantization (supervised skyline) | Yuan et al., CVPR '20 |
//!
//! The shallow methods consume pre-extracted features directly; the deep
//! methods train an MLP head over the same features (the stand-in for the
//! shared VGG19 backbone — see DESIGN.md). Where a published method relies
//! on components outside this reproduction's scope (BGAN's adversarial
//! discriminator, CIB's variational bottleneck), the module documents the
//! simplification; the retained parts are the ones the paper's comparison
//! exercises (similarity structure + binarization).

pub mod agh;
pub mod bgan;
pub mod cib;
pub mod csq;
pub mod deep;
pub mod gh;
pub mod itq;
pub mod lsh;
pub mod mls3rduh;
pub mod registry;
pub mod sh;
pub mod ssdh;
pub mod uth;

pub use deep::DeepBaselineConfig;
pub use registry::BaselineKind;
use uhscm_eval::BitCodes;
use uhscm_linalg::Matrix;

/// A trained unsupervised hashing model: features in, binary codes out.
pub trait UnsupervisedHasher {
    /// Method name as it appears in the paper's tables.
    fn name(&self) -> &'static str;

    /// Hash a feature matrix (`n × d`, same `d` as training) into codes.
    fn encode(&self, features: &Matrix) -> BitCodes;

    /// Code length in bits.
    fn bits(&self) -> usize;
}
