//! Spectral Hashing [Weiss, Torralba & Fergus, NeurIPS 2009].
//!
//! PCA-align the data, then threshold the analytical eigenfunctions of the
//! 1-D Laplacian on each principal interval: candidate eigenfunctions
//! `Φ_{j,m}(x) = sin(π/2 + mπ x / (b_j − a_j))` have eigenvalues
//! `λ_{j,m} = (mπ / (b_j − a_j))²`; the `k` smallest eigenvalues across all
//! dimensions pick the bits.

use crate::UnsupervisedHasher;
use uhscm_eval::BitCodes;
use uhscm_linalg::{Matrix, Pca};

/// One selected eigenfunction: PCA dimension and mode number.
#[derive(Debug, Clone, Copy)]
struct EigenFn {
    dim: usize,
    mode: usize,
}

/// A fitted Spectral Hashing model.
#[derive(Debug, Clone)]
pub struct SpectralHashing {
    pca: Pca,
    /// Per-PCA-dimension interval `[a_j, b_j]` from the training data.
    ranges: Vec<(f64, f64)>,
    selected: Vec<EigenFn>,
}

impl SpectralHashing {
    /// Fit on training features.
    ///
    /// # Panics
    ///
    /// Panics if `bits == 0`.
    pub fn train(features: &Matrix, bits: usize, _seed: u64) -> Self {
        assert!(bits > 0, "bits must be positive");
        let n_pca = bits.min(features.cols());
        let pca = Pca::fit(features, n_pca);
        let projected = pca.transform(features);

        let ranges: Vec<(f64, f64)> = (0..n_pca)
            .map(|j| {
                let col = projected.col(j);
                let mn = col.iter().copied().fold(f64::INFINITY, f64::min);
                let mx = col.iter().copied().fold(f64::NEG_INFINITY, f64::max);
                // Guard degenerate intervals.
                if mx - mn < 1e-9 {
                    (mn - 0.5, mx + 0.5)
                } else {
                    (mn, mx)
                }
            })
            .collect();

        // Enumerate candidate eigenfunctions and keep the k smallest
        // eigenvalues. Modes per dimension capped at `bits` (more than
        // enough: eigenvalues grow quadratically in the mode).
        let mut candidates: Vec<(f64, EigenFn)> = Vec::new();
        for (j, &(a, b)) in ranges.iter().enumerate() {
            let len = b - a;
            for m in 1..=bits {
                let lambda = (m as f64 * std::f64::consts::PI / len).powi(2);
                candidates.push((lambda, EigenFn { dim: j, mode: m }));
            }
        }
        candidates.sort_by(|x, y| x.0.partial_cmp(&y.0).expect("finite eigenvalues"));
        let selected = candidates.into_iter().take(bits).map(|(_, f)| f).collect();
        Self { pca, ranges, selected }
    }

    fn eigenfunction_value(&self, f: EigenFn, x: f64) -> f64 {
        let (a, b) = self.ranges[f.dim];
        let t = ((x - a) / (b - a)).clamp(0.0, 1.0);
        (std::f64::consts::FRAC_PI_2 + f.mode as f64 * std::f64::consts::PI * t).sin()
    }
}

impl UnsupervisedHasher for SpectralHashing {
    fn name(&self) -> &'static str {
        "SH"
    }

    fn encode(&self, features: &Matrix) -> BitCodes {
        let projected = self.pca.transform(features);
        let mut codes = Matrix::zeros(features.rows(), self.selected.len());
        for i in 0..features.rows() {
            let row = projected.row(i).to_vec();
            for (b, &f) in self.selected.iter().enumerate() {
                codes[(i, b)] = self.eigenfunction_value(f, row[f.dim]);
            }
        }
        BitCodes::from_real(&codes)
    }

    fn bits(&self) -> usize {
        self.selected.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uhscm_linalg::rng;

    #[test]
    fn produces_requested_bits() {
        let mut r = rng::seeded(1);
        let x = rng::gauss_matrix(&mut r, 60, 10, 1.0);
        let sh = SpectralHashing::train(&x, 16, 0);
        assert_eq!(sh.bits(), 16);
        assert_eq!(sh.encode(&x).len(), 60);
    }

    #[test]
    fn more_bits_than_dims_reuses_modes() {
        // bits > feature dim: higher modes on the widest dimensions.
        let mut r = rng::seeded(2);
        let x = rng::gauss_matrix(&mut r, 60, 4, 1.0);
        let sh = SpectralHashing::train(&x, 12, 0);
        assert_eq!(sh.bits(), 12);
        // Some selected functions must use mode > 1.
        assert!(sh.selected.iter().any(|f| f.mode > 1));
    }

    #[test]
    fn widest_dimension_selected_first() {
        // One dominant-variance dimension ⇒ its mode-1 eigenfunction has the
        // smallest eigenvalue and must be among the selected bits.
        let mut r = rng::seeded(3);
        let mut rows = Vec::new();
        for _ in 0..100 {
            rows.push(vec![10.0 * rng::gauss(&mut r), rng::gauss(&mut r), rng::gauss(&mut r)]);
        }
        let x = Matrix::from_rows(&rows);
        let sh = SpectralHashing::train(&x, 2, 0);
        assert!(sh.selected.iter().any(|f| f.dim == 0 && f.mode == 1));
    }

    #[test]
    fn near_duplicates_collide() {
        let mut r = rng::seeded(4);
        let base = rng::gauss_vec(&mut r, 8, 1.0);
        let mut near = base.clone();
        near[1] += 1e-6;
        let mut train_rows = vec![base.clone(), near.clone()];
        for _ in 0..50 {
            train_rows.push(rng::gauss_vec(&mut r, 8, 1.0));
        }
        let x = Matrix::from_rows(&train_rows);
        let sh = SpectralHashing::train(&x, 16, 0);
        let codes = sh.encode(&x);
        assert_eq!(codes.hamming(0, &codes, 1), 0);
    }

    #[test]
    fn deterministic() {
        let mut r = rng::seeded(5);
        let x = rng::gauss_matrix(&mut r, 40, 6, 1.0);
        let a = SpectralHashing::train(&x, 8, 0).encode(&x);
        let b = SpectralHashing::train(&x, 8, 0).encode(&x);
        assert_eq!(a, b);
    }
}
