//! A uniform registry over all ten baselines, used by the experiment
//! harness to sweep Table 1 / Figures 2-3.

use crate::deep::DeepBaselineConfig;
use crate::{agh, bgan, cib, gh, itq, lsh, mls3rduh, sh, ssdh, uth, UnsupervisedHasher};
use uhscm_linalg::Matrix;

/// Every baseline compared in the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BaselineKind {
    Lsh,
    Sh,
    Itq,
    Agh,
    Ssdh,
    Gh,
    Bgan,
    Mls3rduh,
    Cib,
    Uth,
}

impl BaselineKind {
    /// The baselines of Table 1, in row order (UTH appears in §4.1's list
    /// but not in Table 1; it is kept at the end).
    pub const TABLE1: [BaselineKind; 9] = [
        BaselineKind::Lsh,
        BaselineKind::Sh,
        BaselineKind::Itq,
        BaselineKind::Agh,
        BaselineKind::Ssdh,
        BaselineKind::Gh,
        BaselineKind::Bgan,
        BaselineKind::Mls3rduh,
        BaselineKind::Cib,
    ];

    /// All implemented baselines.
    pub const ALL: [BaselineKind; 10] = [
        BaselineKind::Lsh,
        BaselineKind::Sh,
        BaselineKind::Itq,
        BaselineKind::Agh,
        BaselineKind::Ssdh,
        BaselineKind::Gh,
        BaselineKind::Bgan,
        BaselineKind::Mls3rduh,
        BaselineKind::Cib,
        BaselineKind::Uth,
    ];

    /// Paper-facing name.
    pub fn name(self) -> &'static str {
        match self {
            BaselineKind::Lsh => "LSH",
            BaselineKind::Sh => "SH",
            BaselineKind::Itq => "ITQ",
            BaselineKind::Agh => "AGH",
            BaselineKind::Ssdh => "SSDH",
            BaselineKind::Gh => "GH",
            BaselineKind::Bgan => "BGAN",
            BaselineKind::Mls3rduh => "MLS3RDUH",
            BaselineKind::Cib => "CIB",
            BaselineKind::Uth => "UTH",
        }
    }

    /// Whether the method trains a neural network (vs. a shallow transform).
    pub fn is_deep(self) -> bool {
        matches!(
            self,
            BaselineKind::Ssdh
                | BaselineKind::Gh
                | BaselineKind::Bgan
                | BaselineKind::Mls3rduh
                | BaselineKind::Cib
                | BaselineKind::Uth
        )
    }

    /// Train this baseline on `features`, producing `bits`-bit codes.
    /// Shallow methods ignore `config`.
    pub fn train(
        self,
        features: &Matrix,
        bits: usize,
        config: &DeepBaselineConfig,
        seed: u64,
    ) -> Box<dyn UnsupervisedHasher> {
        match self {
            BaselineKind::Lsh => Box::new(lsh::Lsh::train(features, bits, seed)),
            BaselineKind::Sh => Box::new(sh::SpectralHashing::train(features, bits, seed)),
            BaselineKind::Itq => Box::new(itq::Itq::train(features, bits, seed)),
            BaselineKind::Agh => Box::new(agh::Agh::train(features, bits, seed)),
            BaselineKind::Ssdh => Box::new(ssdh::train(features, bits, config, seed)),
            BaselineKind::Gh => Box::new(gh::train(features, bits, config, seed)),
            BaselineKind::Bgan => Box::new(bgan::train(features, bits, config, seed)),
            BaselineKind::Mls3rduh => Box::new(mls3rduh::train(features, bits, config, seed)),
            BaselineKind::Cib => Box::new(cib::train(features, bits, config, seed)),
            BaselineKind::Uth => Box::new(uth::train(features, bits, config, seed)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uhscm_linalg::{rng, vecops};

    #[test]
    fn names_unique() {
        let mut names: Vec<_> = BaselineKind::ALL.iter().map(|b| b.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), BaselineKind::ALL.len());
    }

    #[test]
    fn all_baselines_train_and_encode() {
        let mut r = rng::seeded(1);
        let mut rows = Vec::new();
        for c in 0..4 {
            for _ in 0..20 {
                let mut v = rng::gauss_vec(&mut r, 16, 0.25);
                v[c * 4] += 1.0;
                vecops::normalize(&mut v);
                rows.push(v);
            }
        }
        let x = Matrix::from_rows(&rows);
        let cfg = DeepBaselineConfig { epochs: 3, ..DeepBaselineConfig::test_profile() };
        for kind in BaselineKind::ALL {
            let model = kind.train(&x, 8, &cfg, 7);
            assert_eq!(model.bits(), 8, "{}", kind.name());
            let codes = model.encode(&x);
            assert_eq!(codes.len(), 80, "{}", kind.name());
            assert_eq!(model.name(), kind.name());
        }
    }

    #[test]
    fn table1_is_subset_of_all() {
        for b in BaselineKind::TABLE1 {
            assert!(BaselineKind::ALL.contains(&b));
        }
    }
}
