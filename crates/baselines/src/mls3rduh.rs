//! MLS³RDUH: Deep Unsupervised Hashing via Manifold-based Local Semantic
//! Similarity Structure Reconstructing [Tu, Mao & Wei, IJCAI 2020].
//!
//! The method reconstructs a local similarity structure by *intersecting*
//! two views of the data: raw cosine similarity and manifold similarity
//! from a two-step random walk on the kNN graph. Pairs that are close under
//! both views become pseudo-similar, pairs far under both views
//! pseudo-dissimilar, conflicting pairs stay unlabeled; a hashing network
//! is trained against the reconstructed structure.

use crate::deep::{train_masked_pairwise, DeepBaselineConfig, DeepHasher};
use uhscm_linalg::{vecops, Matrix};
use uhscm_nn::pairwise::cosine_matrix;

/// Structure-construction parameters.
#[derive(Debug, Clone, Copy)]
pub struct Mls3Params {
    /// Neighborhood size of the kNN graph.
    pub knn: usize,
    /// Cosine percentile (in σ units above the mean) for the similar view.
    pub sim_sigma: f64,
}

impl Default for Mls3Params {
    fn default() -> Self {
        Self { knn: 10, sim_sigma: 1.5 }
    }
}

/// Build the manifold-reconstructed similarity structure.
///
/// Returns `(target, weights)` in the masked-pairwise convention.
pub fn manifold_structure(features: &Matrix, params: Mls3Params) -> (Matrix, Matrix) {
    let n = features.rows();
    let k = params.knn.min(n.saturating_sub(1)).max(1);
    let (cos, _) = cosine_matrix(features);

    // kNN lists by cosine.
    let mut neighbors: Vec<Vec<usize>> = Vec::with_capacity(n);
    for i in 0..n {
        let mut order: Vec<usize> = (0..n).filter(|&j| j != i).collect();
        order.sort_by(|&a, &b| {
            cos[(i, b)]
                .partial_cmp(&cos[(i, a)])
                .expect("MLS3RDUH kNN: cosine similarities must be finite")
        });
        order.truncate(k);
        neighbors.push(order);
    }

    // Two-step manifold affinity M_ij = Σ_l W_il W_jl over the row-stochastic
    // kNN transition matrix, accumulated sparsely through an inverted index.
    let mut w_entries: Vec<Vec<(usize, f64)>> = vec![Vec::new(); n]; // column → (row, weight)
    for i in 0..n {
        let total: f64 = neighbors[i].iter().map(|&j| cos[(i, j)].max(0.0) + 1e-9).sum();
        for &j in &neighbors[i] {
            let w = (cos[(i, j)].max(0.0) + 1e-9) / total;
            w_entries[j].push((i, w));
        }
    }
    let mut manifold = Matrix::zeros(n, n);
    for col in w_entries.iter() {
        for &(i, wi) in col {
            for &(j, wj) in col {
                manifold[(i, j)] += wi * wj;
            }
        }
    }

    // Moments of the cosine view.
    let mut values = Vec::with_capacity(n * (n - 1) / 2);
    for i in 0..n {
        for j in (i + 1)..n {
            values.push(cos[(i, j)]);
        }
    }
    let mu = vecops::mean(&values);
    let sigma = vecops::variance(&values).sqrt().max(1e-9);
    let hi = mu + params.sim_sigma * sigma;

    let mut target = Matrix::zeros(n, n);
    let mut weights = Matrix::zeros(n, n);
    for i in 0..n {
        for j in 0..n {
            if i == j {
                continue;
            }
            let cos_close = cos[(i, j)] >= hi;
            let manifold_close = manifold[(i, j)] > 0.0;
            if cos_close && manifold_close {
                target[(i, j)] = 1.0;
                weights[(i, j)] = 1.0;
            } else if !manifold_close && cos[(i, j)] < mu {
                target[(i, j)] = -1.0;
                weights[(i, j)] = 1.0;
            }
            // Conflicting evidence → unlabeled.
        }
    }
    (target, weights)
}

/// Train MLS³RDUH.
pub fn train(features: &Matrix, bits: usize, config: &DeepBaselineConfig, seed: u64) -> DeepHasher {
    let (target, weights) = manifold_structure(features, Mls3Params::default());
    train_masked_pairwise(features, &target, &weights, bits, config, "MLS3RDUH", seed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::UnsupervisedHasher;
    use uhscm_linalg::rng;

    fn clustered(seed: u64, per: usize) -> (Matrix, Vec<usize>) {
        let mut r = rng::seeded(seed);
        let mut rows = Vec::new();
        let mut labels = Vec::new();
        for c in 0..3 {
            for _ in 0..per {
                let mut v = rng::gauss_vec(&mut r, 10, 0.25);
                v[c * 3] += 1.0;
                vecops::normalize(&mut v);
                rows.push(v);
                labels.push(c);
            }
        }
        (Matrix::from_rows(&rows), labels)
    }

    #[test]
    fn positive_labels_mostly_within_clusters() {
        let (x, labels) = clustered(1, 15);
        let (target, weights) = manifold_structure(&x, Mls3Params::default());
        let mut correct = 0;
        let mut total = 0;
        for i in 0..x.rows() {
            for j in 0..x.rows() {
                if i != j && weights[(i, j)] > 0.0 && target[(i, j)] > 0.0 {
                    total += 1;
                    if labels[i] == labels[j] {
                        correct += 1;
                    }
                }
            }
        }
        assert!(total > 0, "no positives labeled");
        assert!(correct as f64 / total as f64 > 0.9, "{correct}/{total}");
    }

    #[test]
    fn manifold_view_leaves_conflicts_unlabeled() {
        let (x, _) = clustered(2, 15);
        let (_, weights) = manifold_structure(&x, Mls3Params::default());
        let n = x.rows();
        let labeled: usize = (0..n)
            .flat_map(|i| (0..n).map(move |j| (i, j)))
            .filter(|&(i, j)| i != j && weights[(i, j)] > 0.0)
            .count();
        assert!(labeled < n * (n - 1), "no unlabeled band");
    }

    #[test]
    fn end_to_end_training() {
        let (x, labels) = clustered(3, 15);
        let cfg = DeepBaselineConfig { epochs: 25, ..DeepBaselineConfig::test_profile() };
        let model = train(&x, 12, &cfg, 4);
        assert_eq!(model.name(), "MLS3RDUH");
        let codes = model.encode(&x);
        let mut intra = (0.0, 0);
        let mut inter = (0.0, 0);
        for i in 0..codes.len() {
            for j in (i + 1)..codes.len() {
                let d = codes.hamming(i, &codes, j) as f64;
                if labels[i] == labels[j] {
                    intra.0 += d;
                    intra.1 += 1;
                } else {
                    inter.0 += d;
                    inter.1 += 1;
                }
            }
        }
        assert!(inter.0 / inter.1 as f64 > intra.0 / intra.1 as f64);
    }
}
