//! CIB: Unsupervised Hashing with Contrastive Information Bottleneck
//! [Qiu et al., IJCAI 2021].
//!
//! CIB trains the hashing network with a contrastive loss over two
//! augmented views of each image — the positives are the two views of the
//! *same* image, never cross-image pairs (the weakness UHSCM's modified
//! loss addresses). The published method adds a variational information-
//! bottleneck term; this reproduction keeps the parts the UHSCM comparison
//! exercises — the two-view contrastive objective plus quantization — and
//! realizes image augmentation as feature-space Gaussian jitter (DESIGN.md
//! documents the substitution).

use crate::deep::{DeepBaselineConfig, DeepHasher};
use rand::Rng;
use uhscm_linalg::{rng, Matrix};
use uhscm_nn::pairwise::{add_quantization_loss, two_view_contrastive_loss_and_grad};
use uhscm_nn::{Mlp, Sgd};

/// Contrastive temperature (CIB's default range).
const GAMMA: f64 = 0.3;
/// Augmentation noise norm relative to unit features.
const AUG_NOISE: f64 = 0.1;

/// Train CIB.
///
/// # Panics
///
/// Panics if `features` has fewer than two rows.
pub fn train(features: &Matrix, bits: usize, config: &DeepBaselineConfig, seed: u64) -> DeepHasher {
    let n = features.rows();
    assert!(n >= 2, "need at least two items");
    let mut r = rng::seeded(seed ^ 0xc1b0);
    let mut mlp = Mlp::hashing_network(features.cols(), &config.hidden, bits, &mut r);
    let mut sgd = Sgd::new(config.learning_rate, config.momentum, config.weight_decay);

    for _ in 0..config.epochs {
        let order = rng::permutation(&mut r, n);
        for chunk in order.chunks(config.batch_size) {
            if chunk.len() < 2 {
                continue;
            }
            let x = features.select_rows(chunk);
            let x1 = augment(&x, &mut r);
            let x2 = augment(&x, &mut r);
            let z1 = mlp.infer(&x1);
            let z2 = mlp.infer(&x2);
            let (_, mut g1, g2) = two_view_contrastive_loss_and_grad(&z1, &z2, GAMMA);
            let _ = add_quantization_loss(&z1, config.quantization, &mut g1);
            // Backprop each view through the shared network.
            let _ = mlp.forward(&x2);
            mlp.backward(&g2);
            let _ = mlp.forward(&x1);
            mlp.backward(&g1);
            sgd.step(&mut mlp);
        }
    }
    DeepHasher::new(mlp, "CIB")
}

/// Feature-space augmentation: Gaussian jitter of norm ≈ `AUG_NOISE`.
fn augment(x: &Matrix, r: &mut impl Rng) -> Matrix {
    let sigma = AUG_NOISE / (x.cols() as f64).sqrt();
    let mut out = x.clone();
    for v in out.as_mut_slice() {
        *v += sigma * rng::gauss(r);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::UnsupervisedHasher;
    use uhscm_linalg::vecops;

    fn clustered(seed: u64, per: usize) -> (Matrix, Vec<usize>) {
        let mut r = rng::seeded(seed);
        let mut rows = Vec::new();
        let mut labels = Vec::new();
        for c in 0..2 {
            for _ in 0..per {
                let mut v = rng::gauss_vec(&mut r, 10, 0.2);
                v[c * 4] += 1.0;
                vecops::normalize(&mut v);
                rows.push(v);
                labels.push(c);
            }
        }
        (Matrix::from_rows(&rows), labels)
    }

    #[test]
    fn trains_and_produces_codes() {
        let (x, _) = clustered(1, 12);
        let model = train(&x, 16, &DeepBaselineConfig::test_profile(), 2);
        assert_eq!(model.name(), "CIB");
        assert_eq!(model.bits(), 16);
    }

    #[test]
    fn instance_discrimination_keeps_clusters_apart() {
        // Contrastive instance discrimination on clustered features still
        // groups the clusters (views of same instance stay close, and
        // features drive the representation).
        let (x, labels) = clustered(3, 15);
        let cfg = DeepBaselineConfig { epochs: 30, ..DeepBaselineConfig::test_profile() };
        let model = train(&x, 16, &cfg, 4);
        let codes = model.encode(&x);
        let mut intra = (0.0, 0);
        let mut inter = (0.0, 0);
        for i in 0..codes.len() {
            for j in (i + 1)..codes.len() {
                let d = codes.hamming(i, &codes, j) as f64;
                if labels[i] == labels[j] {
                    intra.0 += d;
                    intra.1 += 1;
                } else {
                    inter.0 += d;
                    inter.1 += 1;
                }
            }
        }
        assert!(inter.0 / inter.1 as f64 > intra.0 / intra.1 as f64);
    }

    #[test]
    fn deterministic() {
        let (x, _) = clustered(5, 8);
        let cfg = DeepBaselineConfig::test_profile();
        let a = train(&x, 8, &cfg, 9).encode(&x);
        let b = train(&x, 8, &cfg, 9).encode(&x);
        assert_eq!(a, b);
    }
}
