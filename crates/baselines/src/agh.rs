//! Anchor Graph Hashing [Liu, Wang, Kumar & Chang, ICML 2011].
//!
//! Approximates the data manifold with a sparse anchor graph: each point is
//! connected to its `s` nearest of `a` k-means anchors with Gaussian kernel
//! weights (rows normalized). The binary codes come from thresholding the
//! graph-Laplacian eigenvectors, computed cheaply on the small `a × a`
//! matrix `M = Λ^{-1/2} Zᵀ Z Λ^{-1/2}`.

use crate::UnsupervisedHasher;
use uhscm_eval::BitCodes;
use uhscm_linalg::{jacobi_eigen, kmeans, rng, vecops, Matrix};

/// A fitted Anchor Graph Hashing model.
#[derive(Debug, Clone)]
pub struct Agh {
    /// `a × d` anchor points.
    anchors: Matrix,
    /// Gaussian kernel bandwidth (σ²).
    bandwidth: f64,
    /// Nearest anchors kept per point.
    s: usize,
    /// `a × k` spectral projection (already includes Λ^{-1/2} V Σ^{-1/2}).
    projection: Matrix,
}

impl Agh {
    /// Fit with `s = 3` nearest anchors and an anchor count that scales
    /// with the code length (`max(2k, 32)`, capped at `n/2`, always > k so
    /// enough non-trivial eigenvectors exist).
    pub fn train(features: &Matrix, bits: usize, seed: u64) -> Self {
        let a = (2 * bits).max(32).min(features.rows() / 2).max(bits + 1);
        Self::train_with(features, bits, a, 3, seed)
    }

    /// Fit with explicit anchor count and sparsity.
    ///
    /// # Panics
    /// Panics if `bits ≥ anchors` (the trivial eigenvector is excluded) or
    /// `s` is zero.
    pub fn train_with(
        features: &Matrix,
        bits: usize,
        n_anchors: usize,
        s: usize,
        seed: u64,
    ) -> Self {
        assert!(s > 0, "s must be positive");
        assert!(bits < n_anchors, "bits ({bits}) must be below the anchor count ({n_anchors})");
        let mut r = rng::seeded(seed ^ 0xa6_11);
        let km = kmeans(features, n_anchors, 50, &mut r);
        let anchors = km.centroids;

        // Bandwidth: mean squared distance to the s-th nearest anchor.
        let mut bandwidth = 0.0;
        for i in 0..features.rows() {
            let mut dists: Vec<f64> =
                (0..n_anchors).map(|c| vecops::sq_dist(features.row(i), anchors.row(c))).collect();
            dists.sort_by(|x, y| {
                x.partial_cmp(y).expect("AGH bandwidth: anchor distances must be finite")
            });
            bandwidth += dists[s - 1];
        }
        bandwidth = (bandwidth / features.rows() as f64).max(1e-9);

        let z = truncated_affinity(features, &anchors, s, bandwidth);

        // Λ = diag(Zᵀ1); M = Λ^{-1/2} ZᵀZ Λ^{-1/2}.
        let mut lambda = vec![0.0; n_anchors];
        for i in 0..z.rows() {
            for (c, &v) in z.row(i).iter().enumerate() {
                lambda[c] += v;
            }
        }
        let lam_inv_sqrt: Vec<f64> = lambda.iter().map(|&l| 1.0 / l.max(1e-12).sqrt()).collect();
        let ztz = z.t_matmul(&z);
        let mut m = ztz;
        for i in 0..n_anchors {
            for j in 0..n_anchors {
                m[(i, j)] *= lam_inv_sqrt[i] * lam_inv_sqrt[j];
            }
        }
        let ed = jacobi_eigen(&m);

        // Skip the trivial eigenvector (eigenvalue 1); keep the next `bits`.
        let mut projection = Matrix::zeros(n_anchors, bits);
        for b in 0..bits {
            let col = b + 1;
            let sigma = ed.values[col].max(1e-12).sqrt();
            for row in 0..n_anchors {
                projection[(row, b)] = lam_inv_sqrt[row] * ed.vectors[(row, col)] / sigma;
            }
        }
        Self { anchors, bandwidth, s, projection }
    }
}

/// `n × a` row-normalized truncated Gaussian affinities to the anchors.
fn truncated_affinity(features: &Matrix, anchors: &Matrix, s: usize, bandwidth: f64) -> Matrix {
    let n = features.rows();
    let a = anchors.rows();
    let mut z = Matrix::zeros(n, a);
    let mut dists: Vec<(f64, usize)> = Vec::with_capacity(a);
    for i in 0..n {
        dists.clear();
        for c in 0..a {
            dists.push((vecops::sq_dist(features.row(i), anchors.row(c)), c));
        }
        dists.sort_by(|x, y| {
            x.0.partial_cmp(&y.0).expect("AGH embedding: anchor distances must be finite")
        });
        let mut sum = 0.0;
        for &(d, c) in dists.iter().take(s) {
            let w = (-d / bandwidth).exp();
            z[(i, c)] = w;
            sum += w;
        }
        if sum > 0.0 {
            for v in z.row_mut(i) {
                *v /= sum;
            }
        }
    }
    z
}

impl UnsupervisedHasher for Agh {
    fn name(&self) -> &'static str {
        "AGH"
    }

    fn encode(&self, features: &Matrix) -> BitCodes {
        let z = truncated_affinity(features, &self.anchors, self.s, self.bandwidth);
        BitCodes::from_real(&z.matmul(&self.projection))
    }

    fn bits(&self) -> usize {
        self.projection.cols()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn blobs(seed: u64, per: usize) -> (Matrix, Vec<usize>) {
        let mut r = rng::seeded(seed);
        let mut rows = Vec::new();
        let mut labels = Vec::new();
        let centers = [[0.0, 0.0, 0.0], [6.0, 0.0, 0.0], [0.0, 6.0, 0.0], [0.0, 0.0, 6.0]];
        for (c, center) in centers.iter().enumerate() {
            for _ in 0..per {
                rows.push(vec![
                    center[0] + 0.4 * rng::gauss(&mut r),
                    center[1] + 0.4 * rng::gauss(&mut r),
                    center[2] + 0.4 * rng::gauss(&mut r),
                ]);
                labels.push(c);
            }
        }
        (Matrix::from_rows(&rows), labels)
    }

    #[test]
    fn codes_reflect_cluster_structure() {
        let (x, labels) = blobs(1, 30);
        let agh = Agh::train_with(&x, 4, 16, 3, 2);
        let codes = agh.encode(&x);
        let mut intra = (0.0, 0);
        let mut inter = (0.0, 0);
        for i in 0..codes.len() {
            for j in (i + 1)..codes.len() {
                let d = codes.hamming(i, &codes, j) as f64;
                if labels[i] == labels[j] {
                    intra.0 += d;
                    intra.1 += 1;
                } else {
                    inter.0 += d;
                    inter.1 += 1;
                }
            }
        }
        assert!(inter.0 / inter.1 as f64 > intra.0 / intra.1 as f64 + 0.5);
    }

    #[test]
    fn out_of_sample_encoding_consistent() {
        // Points near a training point should land on nearby codes.
        let (x, _) = blobs(3, 25);
        let agh = Agh::train_with(&x, 6, 16, 3, 4);
        let train_codes = agh.encode(&x);
        let mut probe = x.select_rows(&[0]);
        probe.row_mut(0)[0] += 0.05;
        let probe_code = agh.encode(&probe);
        assert!(probe_code.hamming(0, &train_codes, 0) <= 1);
    }

    #[test]
    fn affinity_rows_normalized_and_sparse() {
        let (x, _) = blobs(5, 20);
        let mut r = rng::seeded(6);
        let anchors = kmeans(&x, 10, 30, &mut r).centroids;
        let z = truncated_affinity(&x, &anchors, 3, 1.0);
        for i in 0..z.rows() {
            let row = z.row(i);
            assert!((row.iter().sum::<f64>() - 1.0).abs() < 1e-9);
            assert_eq!(row.iter().filter(|&&v| v > 0.0).count(), 3);
        }
    }

    #[test]
    #[should_panic(expected = "below the anchor count")]
    fn too_many_bits_rejected() {
        let (x, _) = blobs(7, 10);
        let _ = Agh::train_with(&x, 16, 16, 3, 1);
    }
}
