//! BGAN: Binary Generative Adversarial Networks for image retrieval
//! [Song et al., AAAI 2018], simplified.
//!
//! BGAN couples a binary encoder with a generator/discriminator pair; the
//! retrieval-relevant learning signals are (1) a neighborhood-structure
//! loss tying code similarity to feature similarity and (2) a
//! reconstruction loss through a decoder that forces the codes to retain
//! image content. This reproduction keeps both of those and drops the
//! adversarial discriminator (its role — sharpening reconstructions — does
//! not affect Hamming-space structure at this scale; DESIGN.md documents
//! the substitution).

use crate::deep::{DeepBaselineConfig, DeepHasher};
use uhscm_linalg::{rng, Matrix};
use uhscm_nn::pairwise::{add_quantization_loss, cosine_matrix, masked_l2_loss_and_grad};
use uhscm_nn::{Activation, Mlp, Sgd};

/// Weight of the reconstruction loss relative to the neighborhood loss.
const RECON_WEIGHT: f64 = 0.5;

/// Train the simplified BGAN (encoder + decoder, neighborhood + recon +
/// quantization losses).
///
/// # Panics
///
/// Panics if `features` has fewer than two rows.
pub fn train(features: &Matrix, bits: usize, config: &DeepBaselineConfig, seed: u64) -> DeepHasher {
    let n = features.rows();
    let d = features.cols();
    assert!(n >= 2, "need at least two items");
    let mut r = rng::seeded(seed ^ 0xb6a0);
    let mut encoder = Mlp::hashing_network(d, &config.hidden, bits, &mut r);
    let mut decoder = Mlp::new(
        &[bits, config.hidden.first().copied().unwrap_or(bits), d],
        &[Activation::Relu, Activation::Identity],
        &mut r,
    );
    let mut enc_opt = Sgd::new(config.learning_rate, config.momentum, config.weight_decay);
    let mut dec_opt = Sgd::new(config.learning_rate, config.momentum, config.weight_decay);

    for _ in 0..config.epochs {
        let order = rng::permutation(&mut r, n);
        for chunk in order.chunks(config.batch_size) {
            if chunk.len() < 2 {
                continue;
            }
            let t = chunk.len();
            let x = features.select_rows(chunk);
            let (target, _) = cosine_matrix(&x);

            let z = encoder.infer(&x);
            // Neighborhood loss on the relaxed codes.
            let ones = Matrix::full(t, t, 1.0);
            let (_, mut grad_z) = masked_l2_loss_and_grad(&z, &target, &ones);
            let _ = add_quantization_loss(&z, config.quantization, &mut grad_z);

            // Reconstruction: decoder(z) ≈ x, MSE. Backprop through the
            // decoder yields the reconstruction gradient at z.
            let recon = decoder.forward(&z);
            let mut grad_recon = recon.sub(&x);
            grad_recon.scale(2.0 * RECON_WEIGHT / (t * d) as f64);
            let grad_z_from_decoder = decoder.backward(&grad_recon);
            dec_opt.step(&mut decoder);
            grad_z.axpy(1.0, &grad_z_from_decoder);

            let _ = encoder.forward(&x);
            encoder.backward(&grad_z);
            enc_opt.step(&mut encoder);
        }
    }
    DeepHasher::new(encoder, "BGAN")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::UnsupervisedHasher;
    use uhscm_linalg::vecops;

    fn clustered(seed: u64, per: usize) -> (Matrix, Vec<usize>) {
        let mut r = rng::seeded(seed);
        let mut rows = Vec::new();
        let mut labels = Vec::new();
        for c in 0..3 {
            for _ in 0..per {
                let mut v = rng::gauss_vec(&mut r, 12, 0.2);
                v[c * 4] += 1.0;
                vecops::normalize(&mut v);
                rows.push(v);
                labels.push(c);
            }
        }
        (Matrix::from_rows(&rows), labels)
    }

    #[test]
    fn trains_and_produces_codes() {
        let (x, _) = clustered(1, 10);
        let model = train(&x, 12, &DeepBaselineConfig::test_profile(), 2);
        assert_eq!(model.name(), "BGAN");
        assert_eq!(model.bits(), 12);
        assert_eq!(model.encode(&x).len(), 30);
    }

    #[test]
    fn codes_follow_cluster_structure() {
        let (x, labels) = clustered(3, 15);
        let cfg = DeepBaselineConfig { epochs: 25, ..DeepBaselineConfig::test_profile() };
        let model = train(&x, 16, &cfg, 4);
        let codes = model.encode(&x);
        let mut intra = (0.0, 0);
        let mut inter = (0.0, 0);
        for i in 0..codes.len() {
            for j in (i + 1)..codes.len() {
                let d = codes.hamming(i, &codes, j) as f64;
                if labels[i] == labels[j] {
                    intra.0 += d;
                    intra.1 += 1;
                } else {
                    inter.0 += d;
                    inter.1 += 1;
                }
            }
        }
        assert!(inter.0 / inter.1 as f64 > intra.0 / intra.1 as f64);
    }

    #[test]
    fn deterministic() {
        let (x, _) = clustered(5, 8);
        let cfg = DeepBaselineConfig::test_profile();
        let a = train(&x, 8, &cfg, 9).encode(&x);
        let b = train(&x, 8, &cfg, 9).encode(&x);
        assert_eq!(a, b);
    }
}
