//! Locality-Sensitive Hashing [Gionis, Indyk & Motwani, VLDB 1999].
//!
//! The classic data-independent baseline: `k` random Gaussian hyperplanes
//! through the data mean. Its MAP anchors the bottom of Table 1.

use crate::UnsupervisedHasher;
use uhscm_eval::BitCodes;
use uhscm_linalg::{rng, Matrix};

/// Random-hyperplane LSH.
#[derive(Debug, Clone)]
pub struct Lsh {
    mean: Vec<f64>,
    /// `d × k` random projection.
    projection: Matrix,
}

impl Lsh {
    /// "Train" = record the data mean and draw random hyperplanes.
    ///
    /// # Panics
    ///
    /// Panics if `bits == 0`.
    pub fn train(features: &Matrix, bits: usize, seed: u64) -> Self {
        assert!(bits > 0, "bits must be positive");
        let mut r = rng::seeded(seed ^ 0x15a8);
        Self {
            mean: features.col_means(),
            projection: rng::gauss_matrix(&mut r, features.cols(), bits, 1.0),
        }
    }
}

impl UnsupervisedHasher for Lsh {
    fn name(&self) -> &'static str {
        "LSH"
    }

    fn encode(&self, features: &Matrix) -> BitCodes {
        let mut centered = features.clone();
        centered.center_rows(&self.mean);
        BitCodes::from_real(&centered.matmul(&self.projection))
    }

    fn bits(&self) -> usize {
        self.projection.cols()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uhscm_linalg::vecops;

    #[test]
    fn deterministic_and_correct_width() {
        let mut r = rng::seeded(1);
        let x = rng::gauss_matrix(&mut r, 30, 8, 1.0);
        let a = Lsh::train(&x, 12, 5);
        let b = Lsh::train(&x, 12, 5);
        assert_eq!(a.encode(&x), b.encode(&x));
        assert_eq!(a.bits(), 12);
        assert_eq!(a.encode(&x).len(), 30);
    }

    #[test]
    fn nearby_points_get_nearby_codes() {
        // LSH preserves angles in expectation: near-duplicate vectors must
        // collide on most hyperplanes.
        let mut r = rng::seeded(2);
        let base = rng::gauss_vec(&mut r, 16, 1.0);
        let mut near = base.clone();
        near[0] += 0.01;
        let far: Vec<f64> = base.iter().map(|v| -v).collect();
        let x = Matrix::from_rows(&[base, near, far]);
        let lsh = Lsh::train(&x, 64, 3);
        let codes = lsh.encode(&x);
        let d_near = codes.hamming(0, &codes, 1);
        let d_far = codes.hamming(0, &codes, 2);
        assert!(d_near < d_far, "near {d_near} !< far {d_far}");
        assert!(d_near <= 8);
    }

    #[test]
    fn different_seeds_give_different_planes() {
        let mut r = rng::seeded(3);
        let x = rng::gauss_matrix(&mut r, 10, 6, 1.0);
        let a = Lsh::train(&x, 16, 1).encode(&x);
        let b = Lsh::train(&x, 16, 2).encode(&x);
        assert_ne!(a, b);
    }

    #[test]
    fn mean_centering_balances_bits() {
        // Shifted data: without centering all projections would saturate.
        let mut r = rng::seeded(4);
        let mut x = rng::gauss_matrix(&mut r, 200, 8, 1.0);
        for v in x.as_mut_slice() {
            *v += 100.0;
        }
        let lsh = Lsh::train(&x, 32, 7);
        let codes = lsh.encode(&x);
        // Count +1 bits across all codes; should be near half.
        let total: f64 = (0..codes.len())
            .map(|i| codes.unpack(i).iter().filter(|&&b| b > 0.0).count() as f64)
            .sum();
        let frac = total / (200.0 * 32.0);
        assert!((0.3..0.7).contains(&frac), "bit balance {frac}");
        let _ = vecops::mean(&[frac]);
    }
}
