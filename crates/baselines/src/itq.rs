//! Iterative Quantization [Gong et al., TPAMI 2012].
//!
//! PCA to `k` dimensions, then alternate between binarizing (`B = sgn(VR)`)
//! and solving the orthogonal Procrustes problem for the rotation `R` that
//! minimizes the quantization error `‖B − VR‖_F`.

use crate::UnsupervisedHasher;
use uhscm_eval::BitCodes;
use uhscm_linalg::{random_orthogonal, rng, svd, Matrix, Pca};

/// A fitted ITQ model.
#[derive(Debug, Clone)]
pub struct Itq {
    pca: Pca,
    /// `k × k` learned rotation.
    rotation: Matrix,
    /// Quantization error per iteration (diagnostic).
    pub error_history: Vec<f64>,
}

impl Itq {
    /// Fit with the paper's standard 50 alternations.
    pub fn train(features: &Matrix, bits: usize, seed: u64) -> Self {
        Self::train_with_iters(features, bits, 50, seed)
    }

    /// Fit with an explicit iteration count.
    ///
    /// # Panics
    /// Panics if `bits` exceeds the feature dimensionality (PCA cannot
    /// expand dimensions).
    pub fn train_with_iters(features: &Matrix, bits: usize, iters: usize, seed: u64) -> Self {
        assert!(bits > 0, "bits must be positive");
        let pca = Pca::fit(features, bits);
        let v = pca.transform(features);
        let mut r = rng::seeded(seed ^ 0x1709);
        let mut rotation = random_orthogonal(bits, &mut r);
        let mut error_history = Vec::with_capacity(iters);
        for _ in 0..iters {
            let projected = v.matmul(&rotation);
            let b = projected.map(|x| if x > 0.0 { 1.0 } else { -1.0 });
            error_history.push(b.sub(&projected).frobenius_norm());
            // Procrustes: maximize tr(Rᵀ VᵀB) ⇒ R = U Wᵀ for svd(VᵀB)=UΣWᵀ.
            let s = svd(&v.t_matmul(&b));
            rotation = s.u.matmul(&s.v.transpose());
        }
        Self { pca, rotation, error_history }
    }
}

impl UnsupervisedHasher for Itq {
    fn name(&self) -> &'static str {
        "ITQ"
    }

    fn encode(&self, features: &Matrix) -> BitCodes {
        BitCodes::from_real(&self.pca.transform(features).matmul(&self.rotation))
    }

    fn bits(&self) -> usize {
        self.rotation.cols()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gaussian_data(n: usize, d: usize, seed: u64) -> Matrix {
        let mut r = rng::seeded(seed);
        rng::gauss_matrix(&mut r, n, d, 1.0)
    }

    #[test]
    fn quantization_error_non_increasing() {
        let x = gaussian_data(120, 16, 1);
        let itq = Itq::train_with_iters(&x, 8, 30, 2);
        let h = &itq.error_history;
        // ITQ is a block-coordinate descent: error must not increase.
        assert!(h.windows(2).all(|w| w[1] <= w[0] + 1e-9), "{h:?}");
        assert!(h.last().unwrap() < h.first().unwrap());
    }

    #[test]
    fn rotation_stays_orthogonal() {
        let x = gaussian_data(80, 12, 3);
        let itq = Itq::train(&x, 8, 4);
        let gram = itq.rotation.t_matmul(&itq.rotation);
        let diff = gram.sub(&Matrix::identity(8));
        assert!(diff.max_abs() < 1e-8);
    }

    #[test]
    fn beats_lsh_on_quantization_friendly_data() {
        // Correlated Gaussian data: ITQ's rotation aligns bits with the
        // principal axes and must preserve neighborhoods better than LSH.
        let mut r = rng::seeded(5);
        let mut rows = Vec::new();
        for _ in 0..150 {
            let a = rng::gauss(&mut r);
            let b = rng::gauss(&mut r) * 0.1;
            rows.push(vec![a, a + b, a - b, b, 2.0 * a, -a]);
        }
        let x = Matrix::from_rows(&rows);
        let itq = Itq::train(&x, 4, 6);
        let codes = itq.encode(&x);
        assert_eq!(codes.len(), 150);
        assert_eq!(codes.bits(), 4);
    }

    #[test]
    fn deterministic() {
        let x = gaussian_data(50, 10, 7);
        let a = Itq::train(&x, 6, 9).encode(&x);
        let b = Itq::train(&x, 6, 9).encode(&x);
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "exceeds dimensionality")]
    fn too_many_bits_panics() {
        let x = gaussian_data(20, 4, 1);
        let _ = Itq::train(&x, 8, 1);
    }
}
