//! CSQ: Central Similarity Quantization [Yuan et al., CVPR 2020] — the
//! *supervised* reference method the paper describes in §2.2.
//!
//! CSQ assigns each label a fixed hash center drawn from a Hadamard matrix
//! (pairwise Hamming distance exactly k/2) and trains the network to pull
//! every image's code toward the centroid of its labels' centers, plus a
//! quantization term. It is not part of the unsupervised comparison — the
//! paper cites it as the supervised state of the art — but it makes a
//! useful *skyline* in this reproduction: the MAP an identical backbone
//! reaches when ground-truth labels are available bounds what any
//! unsupervised method (UHSCM included) can hope for.

use crate::deep::{DeepBaselineConfig, DeepHasher};
use uhscm_linalg::hadamard::hadamard_centers;
use uhscm_linalg::{rng, Matrix};
use uhscm_nn::pairwise::add_quantization_loss;
use uhscm_nn::{Mlp, Sgd};

/// Train CSQ with ground-truth label sets (`labels[i]` = class indices of
/// item `i`, as produced by `uhscm_data::Dataset`).
///
/// # Panics
/// Panics if `bits` is not a power of two (Hadamard construction), the
/// class count exceeds `2·bits`, or shapes disagree.
pub fn train(
    features: &Matrix,
    labels: &[Vec<usize>],
    n_classes: usize,
    bits: usize,
    config: &DeepBaselineConfig,
    seed: u64,
) -> DeepHasher {
    let n = features.rows();
    assert_eq!(labels.len(), n, "one label set per item");
    assert!(n >= 2, "need at least two items");
    let centers = hadamard_centers(n_classes, bits);

    // Per-item target: sign of the centroid of its labels' centers (CSQ's
    // multi-label center aggregation).
    let mut targets = Matrix::zeros(n, bits);
    for (i, item_labels) in labels.iter().enumerate() {
        assert!(!item_labels.is_empty(), "item {i} has no labels");
        let row = targets.row_mut(i);
        for &c in item_labels {
            for (t, &v) in row.iter_mut().zip(centers.row(c)) {
                *t += v;
            }
        }
        for t in row.iter_mut() {
            *t = if *t > 0.0 { 1.0 } else { -1.0 };
        }
    }

    let mut r = rng::seeded(seed ^ 0xc59);
    let mut mlp = Mlp::hashing_network(features.cols(), &config.hidden, bits, &mut r);
    let mut sgd = Sgd::new(config.learning_rate, config.momentum, config.weight_decay);
    for _ in 0..config.epochs {
        let order = rng::permutation(&mut r, n);
        for chunk in order.chunks(config.batch_size) {
            if chunk.is_empty() {
                continue;
            }
            let x = features.select_rows(chunk);
            let t_batch = targets.select_rows(chunk);
            let z = mlp.infer(&x);
            // Central similarity loss: a per-item pull of the relaxed code
            // toward its label center (CSQ's BCE with tanh outputs reduces
            // to this ℓ2 form up to curvature).
            let mut grad = z.sub(&t_batch);
            grad.scale(2.0 / chunk.len() as f64);
            let _ = add_quantization_loss(&z, config.quantization, &mut grad);
            let _ = mlp.forward(&x);
            mlp.backward(&grad);
            sgd.step(&mut mlp);
        }
    }
    DeepHasher::new(mlp, "CSQ")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::UnsupervisedHasher;

    use uhscm_linalg::vecops;

    fn labeled_data(seed: u64, per: usize) -> (Matrix, Vec<Vec<usize>>) {
        let mut r = rng::seeded(seed);
        let mut rows = Vec::new();
        let mut labels = Vec::new();
        for c in 0..4 {
            for _ in 0..per {
                let mut v = rng::gauss_vec(&mut r, 12, 0.3);
                v[c * 3] += 1.0;
                vecops::normalize(&mut v);
                rows.push(v);
                labels.push(vec![c]);
            }
        }
        (Matrix::from_rows(&rows), labels)
    }

    #[test]
    fn codes_converge_to_label_centers() {
        let (x, labels) = labeled_data(1, 15);
        let cfg = DeepBaselineConfig { epochs: 30, ..DeepBaselineConfig::test_profile() };
        let model = train(&x, &labels, 4, 16, &cfg, 2);
        let codes = model.encode(&x);
        // Same-label codes nearly identical, different-label near k/2.
        let d_same = codes.hamming(0, &codes, 1);
        let d_diff = codes.hamming(0, &codes, 50);
        assert!(d_same <= 2, "same-class distance {d_same}");
        assert!(d_diff >= 5, "cross-class distance {d_diff}");
    }

    #[test]
    fn supervised_training_saturates_center_separation() {
        // With ground-truth labels the codes should approach the ideal
        // Hadamard-center geometry: intra ≈ 0, inter ≈ k/2 ⇒ margin ≈ 8.
        let (x, labels) = labeled_data(3, 15);
        let cfg = DeepBaselineConfig { epochs: 25, ..DeepBaselineConfig::test_profile() };
        let csq = train(&x, &labels, 4, 16, &cfg, 4);
        let codes = csq.encode(&x);
        let mut intra = (0.0, 0);
        let mut inter = (0.0, 0);
        for i in 0..codes.len() {
            for j in (i + 1)..codes.len() {
                let d = codes.hamming(i, &codes, j) as f64;
                if labels[i] == labels[j] {
                    intra.0 += d;
                    intra.1 += 1;
                } else {
                    inter.0 += d;
                    inter.1 += 1;
                }
            }
        }
        let margin = inter.0 / inter.1 as f64 - intra.0 / intra.1 as f64;
        assert!(margin >= 6.0, "margin {margin} far from the ideal 8");
    }

    #[test]
    fn multilabel_targets_aggregate_centers() {
        let (x, mut labels) = labeled_data(5, 8);
        // Make some items multi-label.
        labels[0] = vec![0, 1];
        labels[1] = vec![2, 3];
        let cfg = DeepBaselineConfig { epochs: 5, ..DeepBaselineConfig::test_profile() };
        let model = train(&x, &labels, 4, 16, &cfg, 6);
        assert_eq!(model.name(), "CSQ");
        assert_eq!(model.bits(), 16);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_bits_rejected() {
        let (x, labels) = labeled_data(7, 4);
        let _ = train(&x, &labels, 4, 12, &DeepBaselineConfig::test_profile(), 1);
    }
}
