//! UTH: Unsupervised Triplet Hashing [Huang et al., ACM MM Workshops 2017].
//!
//! Mines triplets from the feature space — the anchor's nearest neighbour
//! is the positive, a uniformly sampled far point the negative — and trains
//! the hashing network with a margin triplet loss on the relaxed codes:
//! `L = max(0, margin − ĥ(a,p) + ĥ(a,n))`.

use crate::deep::{DeepBaselineConfig, DeepHasher};
use rand::Rng;
use uhscm_linalg::{rng, Matrix};
use uhscm_nn::pairwise::{add_quantization_loss, cosine_grad, cosine_matrix};
use uhscm_nn::{Mlp, Sgd};

/// Triplet margin in cosine units.
const MARGIN: f64 = 0.4;

/// Train UTH.
///
/// # Panics
///
/// Panics if `features` has fewer than three rows (triplet mining needs an
/// anchor, a positive and a negative).
pub fn train(features: &Matrix, bits: usize, config: &DeepBaselineConfig, seed: u64) -> DeepHasher {
    let n = features.rows();
    assert!(n >= 3, "triplet mining needs at least three items");
    let mut r = rng::seeded(seed ^ 0x0717);
    let mut mlp = Mlp::hashing_network(features.cols(), &config.hidden, bits, &mut r);
    let mut sgd = Sgd::new(config.learning_rate, config.momentum, config.weight_decay);

    // Precompute each item's nearest neighbour (the positive).
    let (cos, _) = cosine_matrix(features);
    let positives: Vec<usize> = (0..n)
        .map(|i| {
            (0..n)
                .filter(|&j| j != i)
                .max_by(|&a, &b| {
                    cos[(i, a)]
                        .partial_cmp(&cos[(i, b)])
                        .expect("UTH: cosine similarities must be finite")
                })
                .expect("UTH: every anchor needs at least one other item (n >= 2)")
        })
        .collect();

    for _ in 0..config.epochs {
        let order = rng::permutation(&mut r, n);
        for chunk in order.chunks(config.batch_size.max(2)) {
            if chunk.is_empty() {
                continue;
            }
            // Assemble the batch: anchors, their positives, sampled negatives.
            let mut indices = Vec::with_capacity(chunk.len() * 3);
            let mut triplets = Vec::with_capacity(chunk.len());
            for &a in chunk {
                let p = positives[a];
                let mut neg = r.gen_range(0..n);
                // Reject the anchor, its positive, and near-duplicates.
                for _ in 0..10 {
                    if neg != a && neg != p && cos[(a, neg)] < cos[(a, p)] {
                        break;
                    }
                    neg = r.gen_range(0..n);
                }
                let base = indices.len();
                indices.extend_from_slice(&[a, p, neg]);
                triplets.push((base, base + 1, base + 2));
            }
            let x = features.select_rows(&indices);
            let z = mlp.infer(&x);
            let (h, norms) = cosine_matrix(&z);
            // dL/dĥ for active triplets.
            let mut g = Matrix::zeros(indices.len(), indices.len());
            let inv_t = 1.0 / triplets.len() as f64;
            for &(a, p, ng) in &triplets {
                let violation = MARGIN - h[(a, p)] + h[(a, ng)];
                if violation > 0.0 {
                    g[(a, p)] -= inv_t;
                    g[(a, ng)] += inv_t;
                }
            }
            let mut grad = cosine_grad(&z, &h, &norms, &g);
            let _ = add_quantization_loss(&z, config.quantization, &mut grad);
            let _ = mlp.forward(&x);
            mlp.backward(&grad);
            sgd.step(&mut mlp);
        }
    }
    DeepHasher::new(mlp, "UTH")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::UnsupervisedHasher;
    use uhscm_linalg::vecops;

    fn clustered(seed: u64, per: usize) -> (Matrix, Vec<usize>) {
        let mut r = rng::seeded(seed);
        let mut rows = Vec::new();
        let mut labels = Vec::new();
        for c in 0..3 {
            for _ in 0..per {
                let mut v = rng::gauss_vec(&mut r, 10, 0.2);
                v[c * 3] += 1.0;
                vecops::normalize(&mut v);
                rows.push(v);
                labels.push(c);
            }
        }
        (Matrix::from_rows(&rows), labels)
    }

    #[test]
    fn trains_and_produces_codes() {
        let (x, _) = clustered(1, 10);
        let model = train(&x, 12, &DeepBaselineConfig::test_profile(), 2);
        assert_eq!(model.name(), "UTH");
        assert_eq!(model.bits(), 12);
    }

    #[test]
    fn triplet_training_separates_clusters() {
        let (x, labels) = clustered(3, 15);
        let cfg = DeepBaselineConfig { epochs: 30, ..DeepBaselineConfig::test_profile() };
        let model = train(&x, 16, &cfg, 4);
        let codes = model.encode(&x);
        let mut intra = (0.0, 0);
        let mut inter = (0.0, 0);
        for i in 0..codes.len() {
            for j in (i + 1)..codes.len() {
                let d = codes.hamming(i, &codes, j) as f64;
                if labels[i] == labels[j] {
                    intra.0 += d;
                    intra.1 += 1;
                } else {
                    inter.0 += d;
                    inter.1 += 1;
                }
            }
        }
        assert!(inter.0 / inter.1 as f64 > intra.0 / intra.1 as f64);
    }

    #[test]
    fn deterministic() {
        let (x, _) = clustered(5, 8);
        let cfg = DeepBaselineConfig::test_profile();
        let a = train(&x, 8, &cfg, 9).encode(&x);
        let b = train(&x, 8, &cfg, 9).encode(&x);
        assert_eq!(a, b);
    }
}
