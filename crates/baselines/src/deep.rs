//! Shared infrastructure for the deep baselines.
//!
//! Every deep baseline trains an MLP head over the simulated VGG features
//! (the stand-in for fine-tuning a shared VGG19 backbone — see DESIGN.md)
//! with mini-batch SGD. What differs per method is the loss; the common
//! trainer here handles the masked pairwise-ℓ2 family (SSDH, MLS³RDUH),
//! while GH / BGAN / CIB / UTH drive their own loops on top of the same
//! pieces.

use crate::UnsupervisedHasher;
use uhscm_eval::BitCodes;
use uhscm_linalg::{rng, Matrix};
use uhscm_nn::pairwise::{add_quantization_loss, masked_l2_loss_and_grad};
use uhscm_nn::{Mlp, Sgd};

/// Training hyper-parameters shared by the deep baselines (the paper trains
/// all deep methods with the same backbone and comparable optimizers).
#[derive(Debug, Clone)]
pub struct DeepBaselineConfig {
    pub epochs: usize,
    pub batch_size: usize,
    pub learning_rate: f64,
    pub momentum: f64,
    pub weight_decay: f64,
    pub hidden: Vec<usize>,
    /// Weight of the quantization penalty used by methods that relax `sgn`.
    pub quantization: f64,
}

impl Default for DeepBaselineConfig {
    fn default() -> Self {
        Self {
            epochs: 40,
            batch_size: 128,
            learning_rate: 0.05,
            momentum: 0.9,
            weight_decay: 1e-5,
            hidden: vec![128],
            quantization: 0.001,
        }
    }
}

impl DeepBaselineConfig {
    /// Fast settings for unit tests.
    pub fn test_profile() -> Self {
        Self { epochs: 8, batch_size: 32, learning_rate: 0.02, ..Self::default() }
    }
}

/// A trained deep hashing model (MLP head + method name), with optional
/// input mean-centering (methods whose codes come from a *linear* head sign
/// pattern — GreedyHash — need it: ReLU'd CNN features share a dominant
/// mean direction that would otherwise pin every code to the same orthant).
#[derive(Debug, Clone)]
pub struct DeepHasher {
    pub(crate) mlp: Mlp,
    name: &'static str,
    center: Option<Vec<f64>>,
}

impl DeepHasher {
    pub(crate) fn new(mlp: Mlp, name: &'static str) -> Self {
        Self { mlp, name, center: None }
    }

    pub(crate) fn with_centering(mlp: Mlp, name: &'static str, center: Vec<f64>) -> Self {
        Self { mlp, name, center: Some(center) }
    }

    fn prepare(&self, features: &Matrix) -> Matrix {
        match &self.center {
            Some(mean) => {
                let mut x = features.clone();
                x.center_rows(mean);
                x
            }
            None => features.clone(),
        }
    }

    /// Relaxed (pre-`sgn`) codes.
    pub fn relaxed(&self, features: &Matrix) -> Matrix {
        self.mlp.infer(&self.prepare(features))
    }
}

impl UnsupervisedHasher for DeepHasher {
    fn name(&self) -> &'static str {
        self.name
    }

    fn encode(&self, features: &Matrix) -> BitCodes {
        BitCodes::from_real(&self.relaxed(features))
    }

    fn bits(&self) -> usize {
        self.mlp.output_dim()
    }
}

/// Train an MLP head to match a masked pairwise similarity `target`
/// (entries weighted by `weights`; zero weight = unlabeled pair), plus a
/// quantization penalty. This is the training loop of SSDH and MLS³RDUH.
///
/// # Panics
///
/// Panics if `target` or `weights` is not `n × n` for `n` feature rows.
pub fn train_masked_pairwise(
    features: &Matrix,
    target: &Matrix,
    weights: &Matrix,
    bits: usize,
    config: &DeepBaselineConfig,
    name: &'static str,
    seed: u64,
) -> DeepHasher {
    let n = features.rows();
    assert_eq!(target.shape(), (n, n), "target must be n × n");
    assert_eq!(weights.shape(), (n, n), "weights must be n × n");
    let mut r = rng::seeded(seed ^ 0xdeeb);
    let mut mlp = Mlp::hashing_network(features.cols(), &config.hidden, bits, &mut r);
    let mut sgd = Sgd::new(config.learning_rate, config.momentum, config.weight_decay);

    for _ in 0..config.epochs {
        let order = rng::permutation(&mut r, n);
        for chunk in order.chunks(config.batch_size) {
            if chunk.len() < 2 {
                continue;
            }
            let x = features.select_rows(chunk);
            let (tb, wb) = sub_square(target, weights, chunk);
            let z = mlp.infer(&x);
            let (_, mut grad) = masked_l2_loss_and_grad(&z, &tb, &wb);
            let _ = add_quantization_loss(&z, config.quantization, &mut grad);
            let _ = mlp.forward(&x);
            mlp.backward(&grad);
            sgd.step(&mut mlp);
        }
    }
    DeepHasher::new(mlp, name)
}

/// Extract matching sub-blocks of two square matrices.
pub(crate) fn sub_square(a: &Matrix, b: &Matrix, idx: &[usize]) -> (Matrix, Matrix) {
    let t = idx.len();
    let mut sa = Matrix::zeros(t, t);
    let mut sb = Matrix::zeros(t, t);
    for (x, &i) in idx.iter().enumerate() {
        for (y, &j) in idx.iter().enumerate() {
            sa[(x, y)] = a[(i, j)];
            sb[(x, y)] = b[(i, j)];
        }
    }
    (sa, sb)
}

#[cfg(test)]
mod tests {
    use super::*;
    use uhscm_linalg::vecops;

    #[test]
    fn masked_trainer_separates_labeled_clusters() {
        // Two feature clusters; pseudo labels mark within-cluster pairs +1,
        // across −1, and a band unlabeled.
        let mut r = rng::seeded(1);
        let mut rows = Vec::new();
        for c in 0..2 {
            for _ in 0..20 {
                let mut v = rng::gauss_vec(&mut r, 8, 0.2);
                v[c] += 1.0;
                vecops::normalize(&mut v);
                rows.push(v);
            }
        }
        let x = Matrix::from_rows(&rows);
        let mut target = Matrix::zeros(40, 40);
        let mut weights = Matrix::zeros(40, 40);
        for i in 0..40 {
            for j in 0..40 {
                if i == j {
                    continue;
                }
                if i % 3 == 0 || j % 3 == 0 {
                    continue; // leave a third unlabeled
                }
                target[(i, j)] = if (i < 20) == (j < 20) { 1.0 } else { -1.0 };
                weights[(i, j)] = 1.0;
            }
        }
        let model = train_masked_pairwise(
            &x,
            &target,
            &weights,
            8,
            &DeepBaselineConfig { epochs: 30, ..DeepBaselineConfig::test_profile() },
            "TEST",
            3,
        );
        let codes = model.encode(&x);
        let intra = codes.hamming(0, &codes, 1);
        let inter = codes.hamming(0, &codes, 39);
        assert!(inter > intra, "inter {inter} !> intra {intra}");
        assert_eq!(model.name(), "TEST");
        assert_eq!(model.bits(), 8);
    }

    #[test]
    #[should_panic(expected = "n × n")]
    fn mismatched_target_rejected() {
        let x = Matrix::zeros(4, 3);
        let t = Matrix::zeros(3, 3);
        let w = Matrix::zeros(3, 3);
        let _ = train_masked_pairwise(&x, &t, &w, 4, &DeepBaselineConfig::test_profile(), "X", 1);
    }
}
