//! Property-based tests across the baseline hashing methods.

use proptest::prelude::*;
use uhscm_baselines::{BaselineKind, DeepBaselineConfig};
use uhscm_linalg::{rng, vecops, Matrix};

/// Clustered unit-norm features with at least 2·bits rows (AGH's anchors).
fn features(seed: u64, n_per_cluster: usize, d: usize) -> Matrix {
    let mut r = rng::seeded(seed);
    let mut rows = Vec::new();
    for c in 0..4 {
        for _ in 0..n_per_cluster {
            let mut v = rng::gauss_vec(&mut r, d, 0.3);
            v[c % d] += 1.0;
            vecops::normalize(&mut v);
            rows.push(v);
        }
    }
    Matrix::from_rows(&rows)
}

fn shallow() -> impl Strategy<Value = BaselineKind> {
    prop::sample::select(vec![
        BaselineKind::Lsh,
        BaselineKind::Sh,
        BaselineKind::Itq,
        BaselineKind::Agh,
    ])
}

fn deep() -> impl Strategy<Value = BaselineKind> {
    prop::sample::select(vec![
        BaselineKind::Ssdh,
        BaselineKind::Gh,
        BaselineKind::Bgan,
        BaselineKind::Mls3rduh,
        BaselineKind::Cib,
        BaselineKind::Uth,
    ])
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn shallow_methods_well_formed(kind in shallow(), seed in any::<u64>(), bits in 2usize..10) {
        let x = features(seed, 20, 12);
        let cfg = DeepBaselineConfig { epochs: 2, ..DeepBaselineConfig::test_profile() };
        let model = kind.train(&x, bits, &cfg, seed);
        let codes = model.encode(&x);
        prop_assert_eq!(codes.len(), x.rows());
        prop_assert_eq!(codes.bits(), bits);
        prop_assert_eq!(model.bits(), bits);
        // Encoding is a pure function.
        prop_assert_eq!(model.encode(&x), codes);
    }

    #[test]
    fn deep_methods_well_formed(kind in deep(), seed in any::<u64>()) {
        let x = features(seed, 12, 10);
        let cfg = DeepBaselineConfig { epochs: 2, ..DeepBaselineConfig::test_profile() };
        let model = kind.train(&x, 8, &cfg, seed);
        let codes = model.encode(&x);
        prop_assert_eq!(codes.len(), x.rows());
        prop_assert_eq!(codes.bits(), 8);
        prop_assert_eq!(model.encode(&x), codes);
    }

    #[test]
    fn training_is_seed_deterministic(kind in deep(), seed in any::<u64>()) {
        let x = features(7, 10, 8);
        let cfg = DeepBaselineConfig { epochs: 2, ..DeepBaselineConfig::test_profile() };
        let a = kind.train(&x, 8, &cfg, seed).encode(&x);
        let b = kind.train(&x, 8, &cfg, seed).encode(&x);
        prop_assert_eq!(a, b);
    }

    #[test]
    fn out_of_sample_encoding_works(kind in shallow(), seed in any::<u64>()) {
        // Encode points never seen at fit time (query/database protocol).
        let train = features(seed, 20, 12);
        let test = features(seed.wrapping_add(1), 5, 12);
        let cfg = DeepBaselineConfig::test_profile();
        let model = kind.train(&train, 6, &cfg, seed);
        let codes = model.encode(&test);
        prop_assert_eq!(codes.len(), test.rows());
    }
}
