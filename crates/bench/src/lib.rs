//! Experiment harness regenerating every table and figure of the paper.
//!
//! Binaries (one per experiment):
//!
//! | binary | regenerates |
//! |---|---|
//! | `table1` | MAP of all methods × 3 datasets × {32,64,96,128} bits |
//! | `figure2` | P@N curves (64/128 bits) |
//! | `figure3` | precision-recall curves over Hamming radii |
//! | `table2` | the 15-row ablation study |
//! | `table3` | wall-clock time consumption per method |
//! | `figure4` | hyper-parameter sensitivity sweeps (τ, α, λ, γ, β) |
//! | `figure5` | t-SNE visualization + cluster-separation scores |
//! | `figure6` | top-10 retrieval panels with relevance flags |
//! | `ablation_sim` | *(extra)* simulation-design knob sweeps |
//! | `skyline` | *(extra)* supervised CSQ skyline vs UHSCM |
//!
//! Every binary accepts `--scale smoke|quick|full` (default `quick`; the
//! environment variable `UHSCM_SCALE` is the fallback) and writes both a
//! human-readable table to stdout and a JSON record under `results/`.

pub mod context;
pub mod methods;
pub mod report;

pub use context::{ExperimentData, Scale};
pub use methods::{run_method, Method, MethodCodes};
pub use report::{markdown_table, write_json};
