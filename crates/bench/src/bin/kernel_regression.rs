//! Kernel-regression gate: tiled dense kernels and the batched Hamming
//! scan must never be slower than their naive references on the standard
//! bench shapes, and must stay bitwise identical to them.
//!
//! `xtask ci` runs this binary after the test suite; it exits non-zero on
//! the first regression so a kernel "optimization" that loses to the naive
//! loop (or silently changes results) cannot land. Thresholds are 1.0x on
//! purpose — this is a floor against regressions, not a benchmark; the
//! measured speedups are recorded by `cargo bench -p uhscm-bench --bench
//! kernels` into `BENCH_kernels.json`.

use std::time::Instant;
use uhscm_eval::bitcode::hamming_scan;
use uhscm_eval::BitCodes;
use uhscm_linalg::{kernels, rng};

/// Interleaved best-of-N wall times of `naive` and `tuned`, in ns (first
/// calls are discarded warm-ups). The two kernels alternate within one
/// sampling loop so slow frequency drift on the host — which can swing
/// absolute times by ±30% across a few seconds — hits both sides equally
/// and cancels out of the ratio.
fn best_pair_ns(samples: usize, mut naive: impl FnMut(), mut tuned: impl FnMut()) -> (u64, u64) {
    naive();
    tuned();
    let (mut best_naive, mut best_tuned) = (u64::MAX, u64::MAX);
    for _ in 0..samples {
        let t0 = Instant::now();
        naive();
        best_naive = best_naive.min(t0.elapsed().as_nanos() as u64);
        let t0 = Instant::now();
        tuned();
        best_tuned = best_tuned.min(t0.elapsed().as_nanos() as u64);
    }
    (best_naive, best_tuned)
}

fn check(name: &str, naive_ns: u64, tuned_ns: u64, identical: bool, failures: &mut u32) {
    let speedup = naive_ns as f64 / tuned_ns.max(1) as f64;
    println!(
        "{name:<28} naive {naive_ns:>12} ns | tuned {tuned_ns:>12} ns | {speedup:.2}x | bitwise {identical}"
    );
    if !identical {
        eprintln!("kernel_regression: {name}: tuned kernel is NOT bitwise identical to naive");
        *failures += 1;
    }
    if tuned_ns > naive_ns {
        eprintln!("kernel_regression: {name}: tuned kernel slower than naive ({speedup:.2}x)");
        *failures += 1;
    }
}

fn main() {
    let mut failures = 0u32;
    let mut r = rng::seeded(7);

    // Standard dense shape: 256 images of 4096-d features projected to 64
    // bits — the matmul row of BENCH_kernels.json.
    let a = rng::gauss_matrix(&mut r, 256, 4096, 1.0);
    let b = rng::gauss_matrix(&mut r, 4096, 64, 1.0);
    let tiled = a.matmul(&b);
    let naive = kernels::matmul_naive(&a, &b);
    let identical =
        tiled.as_slice().iter().zip(naive.as_slice()).all(|(x, y)| x.to_bits() == y.to_bits());
    let (naive_ns, tiled_ns) = best_pair_ns(
        5,
        || {
            std::hint::black_box(kernels::matmul_naive(&a, &b));
        },
        || {
            std::hint::black_box(a.matmul(&b));
        },
    );
    check("matmul 256x4096*4096x64", naive_ns, tiled_ns, identical, &mut failures);

    // Standard Hamming shape: 128 queries against an 8192-code database at
    // 64 bits — the retrieval row of BENCH_kernels.json.
    let db = BitCodes::from_real(&rng::gauss_matrix(&mut r, 8192, 64, 1.0));
    let queries = BitCodes::from_real(&rng::gauss_matrix(&mut r, 128, 64, 1.0));
    let mut dists = vec![0u32; db.len()];
    let pairwise = |dists: &mut [u32]| {
        for qi in 0..queries.len() {
            for (j, d) in dists.iter_mut().enumerate() {
                *d = queries.hamming(qi, &db, j);
            }
            std::hint::black_box(&dists);
        }
    };
    let scan = |dists: &mut [u32]| {
        for qi in 0..queries.len() {
            hamming_scan::scan_into(&queries, qi, &db, dists);
            std::hint::black_box(&dists);
        }
    };
    let mut scan_out = vec![0u32; db.len()];
    pairwise(&mut dists);
    let identical = (0..queries.len()).all(|qi| {
        hamming_scan::scan_into(&queries, qi, &db, &mut scan_out);
        (0..db.len()).all(|j| scan_out[j] == queries.hamming(qi, &db, j))
    });
    let (pair_ns, scan_ns) = best_pair_ns(5, || pairwise(&mut dists), || scan(&mut scan_out));
    check("hamming_scan 128q x 8192db", pair_ns, scan_ns, identical, &mut failures);

    if failures > 0 {
        eprintln!("kernel_regression: {failures} failure(s)");
        std::process::exit(1);
    }
    println!("kernel_regression: all kernels at or above naive throughput, bitwise identical");
}
