//! Figure 5: t-SNE visualization of 64-bit database hash codes on CIFAR10
//! for UHSCM, CIB, MLS³RDUH and BGAN.
//!
//! The paper shows 2-D scatter plots; this harness writes the embedding
//! coordinates (JSON, plottable with any tool) and reports the
//! cluster-separation score of each embedding — the quantitative version of
//! "the clusters of each class are separated from each other".

use serde::Serialize;
use uhscm_baselines::BaselineKind;
use uhscm_bench::{markdown_table, run_method, write_json, ExperimentData, Method, Scale};
use uhscm_core::variants::Variant;
use uhscm_data::{share_label, DatasetKind};
use uhscm_eval::{cluster_separation, tsne_2d, TsneConfig};

#[derive(Serialize)]
struct Embedding {
    method: String,
    separation: f64,
    /// Item class (first label) per embedded point.
    class: Vec<usize>,
    x: Vec<f64>,
    y: Vec<f64>,
}

fn main() {
    let scale = Scale::from_env_args();
    let bits = 64;
    // Embed a database subsample (exact t-SNE is O(n²)).
    let sample = match scale {
        Scale::Smoke => 150,
        Scale::Quick => 600,
        Scale::Full => 1_000,
    };
    let methods = [
        Method::Uhscm(Variant::Full),
        Method::Baseline(BaselineKind::Cib),
        Method::Baseline(BaselineKind::Mls3rduh),
        Method::Baseline(BaselineKind::Bgan),
    ];
    println!(
        "# Figure 5 — t-SNE of CIFAR10 database codes @ {bits} bits (scale: {})\n",
        scale.id()
    );

    let data = ExperimentData::build(DatasetKind::Cifar10Like, scale);
    let db = &data.dataset.split.database;
    let take = sample.min(db.len());
    let labels: Vec<Vec<usize>> = (0..take).map(|i| data.dataset.labels[db[i]].clone()).collect();

    let mut rows = Vec::new();
    let mut records = Vec::new();
    for method in methods {
        let codes = run_method(&data, method, bits, scale);
        // Unpack the first `take` database codes into ±1 vectors for t-SNE.
        let unpacked = uhscm_linalg::Matrix::from_rows(
            &(0..take).map(|i| codes.db.unpack(i)).collect::<Vec<_>>(),
        );
        let emb = tsne_2d(&unpacked, &TsneConfig { seed: 5, ..TsneConfig::default() });
        let sep = cluster_separation(&emb, &|i, j| share_label(&labels[i], &labels[j]));
        eprintln!("[figure5] {} separation {sep:.3}", codes.name);
        rows.push(vec![codes.name.clone(), format!("{sep:.3}")]);
        records.push(Embedding {
            method: codes.name,
            separation: sep,
            class: labels.iter().map(|l| l[0]).collect(),
            x: (0..take).map(|i| emb[(i, 0)]).collect(),
            y: (0..take).map(|i| emb[(i, 1)]).collect(),
        });
    }
    println!(
        "{}",
        markdown_table(
            &["Method".to_string(), "cluster separation (inter/intra)".to_string()],
            &rows
        )
    );
    if let Some(path) = write_json(&format!("figure5_{}", scale.id()), &records) {
        println!("embeddings written to {}", path.display());
    }
}
