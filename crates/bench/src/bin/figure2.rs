//! Figure 2: Precision@N curves on the three datasets (64 and 128 bits).

use serde::Serialize;
use uhscm_bench::report::f3;
use uhscm_bench::{markdown_table, run_method, write_json, ExperimentData, Method, Scale};
use uhscm_data::DatasetKind;
use uhscm_eval::{precision_at_n, HammingRanker};

#[derive(Serialize)]
struct Series {
    dataset: String,
    method: String,
    bits: usize,
    n_values: Vec<usize>,
    precision: Vec<f64>,
}

fn main() {
    let scale = Scale::from_env_args();
    let bit_widths: Vec<usize> = scale
        .bit_widths()
        .into_iter()
        .filter(|&b| b == 64 || b == 128 || scale == Scale::Smoke)
        .collect();
    let methods = Method::table1();
    println!("# Figure 2 — Precision@N curves (scale: {})\n", scale.id());

    let mut records: Vec<Series> = Vec::new();
    for kind in DatasetKind::ALL {
        eprintln!("[figure2] building {} …", kind.name());
        let data = ExperimentData::build(kind, scale);
        let db_size = data.dataset.split.database.len();
        // N grid like the paper's x-axis (100..5000), clamped to database.
        let n_values: Vec<usize> = [100usize, 200, 500, 1000, 2000, 3000, 4000, 5000]
            .iter()
            .copied()
            .filter(|&n| n <= db_size)
            .collect();
        for &bits in &bit_widths {
            let mut rows = Vec::new();
            for &method in &methods {
                let codes = run_method(&data, method, bits, scale);
                let ranker = HammingRanker::new(codes.db);
                let p = precision_at_n(&ranker, &codes.query, &data.relevance(), &n_values);
                let mut row = vec![codes.name.clone()];
                row.extend(p.iter().map(|&v| f3(v)));
                rows.push(row);
                records.push(Series {
                    dataset: kind.name().into(),
                    method: codes.name,
                    bits,
                    n_values: n_values.clone(),
                    precision: p,
                });
            }
            let mut headers = vec!["Method".to_string()];
            headers.extend(n_values.iter().map(|n| format!("P@{n}")));
            println!("## {} @ {bits} bits\n", kind.name());
            println!("{}", markdown_table(&headers, &rows));
        }
    }
    if let Some(path) = write_json(&format!("figure2_{}", scale.id()), &records) {
        println!("results written to {}", path.display());
    }
}
