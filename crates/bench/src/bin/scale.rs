//! Scale benchmark for the out-of-core segment store: stream-build code
//! databases at several sizes (10k / 100k / 1M by default), load each one
//! through the store-backed sharded index, and measure every stage in
//! items per second. Writes `BENCH_scale.json` at the workspace root
//! (schema `uhscm-bench-scale/1`).
//!
//! Per size, five phases:
//!
//! 1. **generate+encode** — stream latents chunk by chunk through the
//!    hashing network (the memory high-water mark is one chunk),
//! 2. **store write** — append the packed chunk codes to the checksummed
//!    segment store,
//! 3. **index load** — stream the segments back into a `GenesisBuilder`
//!    (one index band per segment, no full-database concatenation),
//! 4. **query** — top-k searches against the store-backed index,
//! 5. **sampled eval** — seeded query-subsampled MAP with its 95% CI,
//!    the tractable stand-in for exhaustive MAP at million-item scale.
//!
//! The peak-allocation proxy comes from the `uhscm-obs` registry: the
//! largest single segment payload the store reader/writer ever touched —
//! the store's whole claim is that this, not the database size, bounds
//! its memory. At sizes up to 100k the run also cross-checks the
//! store-backed top-k against an in-memory `ShardedIndex` at shard counts
//! {1, 2, 4} and reports the verdict.
//!
//! Usage: `scale [--sizes 10000,100000,1000000]`

use std::path::Path;
use std::time::Instant;

use serde::Serialize;
use uhscm_data::{share_mask, DatasetConfig, DatasetKind, LatentStream};
use uhscm_eval::{sample_indices, sampled_map, BitCodes, HammingRanker};
use uhscm_nn::Mlp;
use uhscm_obs::registry;
use uhscm_serve::{GenesisBuilder, ShardedIndex};
use uhscm_store::{store_path, StoreReader, StoreWriter};

const SCHEMA: &str = "uhscm-bench-scale/1";
const SEED: u64 = 2023;
const KIND: DatasetKind = DatasetKind::Cifar10Like;
const DIM: usize = 64;
const BITS: usize = 64;
const CHUNK: usize = 16_384;
const TOP_K: usize = 100;
const N_QUERIES: usize = 128;
const SAMPLE: usize = 32;
const QUERY_ROUNDS: usize = 3;
/// Identity cross-check cap: above this the in-memory oracle build is
/// skipped (the contract is already pinned at smaller sizes and by
/// `uhscm db verify`).
const VERIFY_CAP: usize = 100_000;

#[derive(Serialize)]
struct SizeReport {
    items: usize,
    segments: u64,
    store_bytes: u64,
    generate_encode_items_per_sec: f64,
    store_write_items_per_sec: f64,
    index_load_items_per_sec: f64,
    queries_per_sec: f64,
    sampled_map: f64,
    sampled_map_ci_low: f64,
    sampled_map_ci_high: f64,
    sampled_queries: usize,
    query_population: usize,
    /// Largest single segment payload the writer buffered (bytes) — the
    /// write-side peak-allocation proxy from the obs registry.
    peak_write_segment_bytes: f64,
    /// Largest single segment payload the reader materialized (bytes).
    peak_read_segment_bytes: f64,
    /// `Some(true)` when the store-backed top-k matched the in-memory
    /// index bitwise at shards {1,2,4}; `None` above the verify cap.
    store_matches_memory: Option<bool>,
}

#[derive(Serialize)]
struct ScaleBench {
    schema: &'static str,
    seed: u64,
    dim: usize,
    bits: usize,
    chunk: usize,
    top_k: usize,
    sizes: Vec<SizeReport>,
}

fn histogram_max(name: &str) -> f64 {
    registry::snapshot().histograms.get(name).map(|h| h.max).unwrap_or(0.0)
}

fn rate(items: usize, secs: f64) -> f64 {
    items as f64 / secs.max(1e-9)
}

fn bench_size(items: usize, dir: &Path, model: &Mlp) -> SizeReport {
    let config = DatasetConfig { latent_dim: DIM, ..DatasetConfig::default() };
    std::fs::create_dir_all(dir).expect("create store dir");
    let file = store_path(dir);

    // Phases 1+2: stream-generate, encode, and write — one chunk resident.
    let mut stream = LatentStream::new(KIND, &config, items, SEED);
    let mut writer = StoreWriter::create(&file, BITS).expect("create store");
    let mut db_masks: Vec<u32> = Vec::with_capacity(items);
    let mut gen_secs = 0.0;
    let mut write_secs = 0.0;
    loop {
        let t0 = Instant::now();
        let Some(chunk) = stream.next_chunk(CHUNK) else { break };
        let codes = BitCodes::from_real(&model.infer(&chunk.latents));
        gen_secs += t0.elapsed().as_secs_f64();
        db_masks.extend_from_slice(&chunk.label_masks);
        let t1 = Instant::now();
        writer.append(&codes).expect("append segment");
        write_secs += t1.elapsed().as_secs_f64();
    }
    let t = Instant::now();
    let summary = writer.finish().expect("finish store");
    write_secs += t.elapsed().as_secs_f64();

    // Phase 3: stream the store back into a store-backed genesis index.
    let t = Instant::now();
    let mut reader = StoreReader::open(&file).expect("open store");
    let mut genesis = GenesisBuilder::new(reader.bits());
    while let Some(segment) = reader.next_segment().expect("read segment") {
        genesis.push(segment);
    }
    let store_index = genesis.finish();
    let load_secs = t.elapsed().as_secs_f64();

    // Fresh queries from a disjoint seeded stream, encoded by the same model.
    let mut qstream = LatentStream::new(KIND, &config, N_QUERIES, SEED ^ 0x9e37_79b9_7f4a_7c15);
    let qchunk = qstream.next_chunk(N_QUERIES).expect("query chunk");
    let qcodes = BitCodes::from_real(&model.infer(&qchunk.latents));
    let q_masks = qchunk.label_masks;

    // Phase 4: query throughput against the store-backed index.
    let t = Instant::now();
    let mut hits = 0usize;
    for _ in 0..QUERY_ROUNDS {
        for qi in 0..qcodes.len() {
            hits += store_index.search(&qcodes, qi, TOP_K).len();
        }
    }
    let query_secs = t.elapsed().as_secs_f64();
    assert!(hits >= QUERY_ROUNDS * qcodes.len().min(items), "queries returned no hits");

    // Identity cross-check against the in-memory index (small sizes only).
    let full = StoreReader::open(&file).expect("reopen store").read_all().expect("read all");
    let store_matches_memory = if items <= VERIFY_CAP {
        let mut ok = true;
        for shards in [1usize, 2, 4] {
            let mem_index = ShardedIndex::new(&full, shards);
            for qi in 0..qcodes.len() {
                if store_index.search(&qcodes, qi, TOP_K) != mem_index.search(&qcodes, qi, TOP_K) {
                    eprintln!(
                        "scale: MISMATCH store vs memory at {items} items, \
                         shards {shards}, query {qi}"
                    );
                    ok = false;
                }
            }
        }
        Some(ok)
    } else {
        None
    };

    // Phase 5: sampled MAP over a seeded query subsample.
    let ranker = HammingRanker::new(full);
    let sample = sample_indices(qcodes.len(), SAMPLE.min(qcodes.len()), SEED);
    let rel = move |qi: usize, di: usize| share_mask(q_masks[qi], db_masks[di]);
    let est = sampled_map(&ranker, &qcodes, &rel, TOP_K, &sample);

    SizeReport {
        items,
        segments: summary.segments,
        store_bytes: summary.bytes,
        generate_encode_items_per_sec: rate(items, gen_secs),
        store_write_items_per_sec: rate(items, write_secs),
        index_load_items_per_sec: rate(items, load_secs),
        queries_per_sec: rate(QUERY_ROUNDS * qcodes.len(), query_secs),
        sampled_map: est.estimate,
        sampled_map_ci_low: est.ci_low,
        sampled_map_ci_high: est.ci_high,
        sampled_queries: est.sample_size,
        query_population: est.population,
        peak_write_segment_bytes: histogram_max("store.write.segment_bytes"),
        peak_read_segment_bytes: histogram_max("store.read.segment_bytes"),
        store_matches_memory,
    }
}

fn parse_sizes(args: &[String]) -> Vec<usize> {
    let mut sizes = vec![10_000, 100_000, 1_000_000];
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--sizes" => {
                let csv = args.get(i + 1).expect("--sizes needs a comma-separated list");
                sizes = csv
                    .split(',')
                    .map(|s| s.trim().parse::<usize>().expect("--sizes expects numbers"))
                    .filter(|&n| n > 0)
                    .collect();
                assert!(!sizes.is_empty(), "--sizes must name at least one size");
                i += 2;
            }
            other => panic!("unknown argument '{other}' (usage: scale [--sizes CSV])"),
        }
    }
    sizes
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let sizes = parse_sizes(&args);

    // Metrics on, trace stream discarded: scale only reads the registry.
    uhscm_obs::enable_with_writer(Box::new(std::io::sink()));

    let mut rng = uhscm_linalg::rng::seeded(SEED);
    let model = Mlp::hashing_network(DIM, &[DIM.div_ceil(2).max(1)], BITS, &mut rng);

    let scratch = std::env::temp_dir().join(format!("uhscm-scale-{}", std::process::id()));
    let mut reports = Vec::with_capacity(sizes.len());
    for &items in &sizes {
        eprintln!("scale: {items} items (chunk {CHUNK}, {BITS} bits)");
        let dir = scratch.join(format!("db-{items}"));
        let report = bench_size(items, &dir, &model);
        eprintln!(
            "scale: {items} items -> gen+encode {:.0}/s, write {:.0}/s, load {:.0}/s, \
             query {:.0}/s, sampled MAP {:.4} [{:.4}, {:.4}]",
            report.generate_encode_items_per_sec,
            report.store_write_items_per_sec,
            report.index_load_items_per_sec,
            report.queries_per_sec,
            report.sampled_map,
            report.sampled_map_ci_low,
            report.sampled_map_ci_high,
        );
        assert!(
            report.store_matches_memory != Some(false),
            "store-backed index diverged from the in-memory oracle"
        );
        reports.push(report);
        let _ = std::fs::remove_dir_all(&dir);
    }
    let _ = std::fs::remove_dir_all(&scratch);

    let report = ScaleBench {
        schema: SCHEMA,
        seed: SEED,
        dim: DIM,
        bits: BITS,
        chunk: CHUNK,
        top_k: TOP_K,
        sizes: reports,
    };
    let json = serde_json::to_string_pretty(&report).expect("serialize report");
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .map(|root| root.join("BENCH_scale.json"));
    match path {
        Some(path) => match std::fs::write(&path, json + "\n") {
            Ok(()) => println!("wrote {}", path.display()),
            Err(e) => eprintln!("warning: cannot write {}: {e}", path.display()),
        },
        None => eprintln!("warning: cannot locate the workspace root"),
    }
}
