//! Figure 4: sensitivity of UHSCM to the hyper-parameters τ, α, λ, γ and β
//! at 64 bits on the three datasets (§4.6).

use serde::Serialize;
use uhscm_bench::context::EXPERIMENT_SEED;
use uhscm_bench::report::f3;
use uhscm_bench::{markdown_table, write_json, ExperimentData, Scale};
use uhscm_core::pipeline::SimilaritySource;
use uhscm_core::trainer::{train_hashing_network, Regularizer};
use uhscm_core::UhscmConfig;
use uhscm_data::DatasetKind;
use uhscm_eval::{mean_average_precision, HammingRanker};

#[derive(Serialize)]
struct Sweep {
    dataset: String,
    parameter: String,
    values: Vec<f64>,
    map: Vec<f64>,
}

/// One hyper-parameter sweep, following the paper's grids.
struct Axis {
    name: &'static str,
    values: Vec<f64>,
    apply: fn(&mut UhscmConfig, f64),
}

fn axes() -> Vec<Axis> {
    vec![
        Axis {
            name: "tau_factor", // τ = factor · m, swept 1m..4m (Fig. 4a)
            values: vec![1.0, 2.0, 3.0, 4.0],
            apply: |c, v| c.tau_factor = v,
        },
        Axis {
            name: "alpha", // Fig. 4b: 0.1..0.5
            values: vec![0.1, 0.2, 0.3, 0.4, 0.5],
            apply: |c, v| c.alpha = v,
        },
        Axis {
            name: "lambda", // Fig. 4c: 0.5..1.0
            values: vec![0.5, 0.6, 0.7, 0.8, 0.9, 1.0],
            apply: |c, v| c.lambda = v,
        },
        Axis {
            name: "gamma", // Fig. 4d: 0.1..0.6
            values: vec![0.1, 0.2, 0.3, 0.4, 0.5, 0.6],
            apply: |c, v| c.gamma = v,
        },
        Axis {
            name: "beta", // Fig. 4e: 0..0.1
            values: vec![0.0, 0.001, 0.01, 0.05, 0.1],
            apply: |c, v| c.beta = v,
        },
    ]
}

fn main() {
    let scale = Scale::from_env_args();
    let bits = 64;
    println!("# Figure 4 — hyper-parameter sensitivity @ {bits} bits (scale: {})\n", scale.id());

    let mut records: Vec<Sweep> = Vec::new();
    for kind in DatasetKind::ALL {
        eprintln!("[figure4] building {} …", kind.name());
        let data = ExperimentData::build(kind, scale);
        let top_n = data.map_top_n();
        let pipeline = data.pipeline();
        println!("## {}\n", kind.name());
        for axis in axes() {
            let mut maps = Vec::new();
            for &v in &axis.values {
                let mut config = scale.uhscm_config(kind, bits);
                (axis.apply)(&mut config, v);
                // τ affects the similarity matrix; rebuild inside the loop.
                let outcome =
                    pipeline.build_similarity(&SimilaritySource::default(), config.tau_factor);
                let model = train_hashing_network(
                    pipeline.train_features(),
                    &outcome.q,
                    &config,
                    Regularizer::Modified,
                    EXPERIMENT_SEED ^ 0x7261,
                );
                let ranker = HammingRanker::new(model.encode(&data.db_features));
                let map = mean_average_precision(
                    &ranker,
                    &model.encode(&data.query_features),
                    &data.relevance(),
                    top_n,
                );
                eprintln!("[figure4] {} {}={v} → MAP {map:.3}", kind.name(), axis.name);
                maps.push(map);
            }
            let headers: Vec<String> = std::iter::once(axis.name.to_string())
                .chain(axis.values.iter().map(|v| format!("{v}")))
                .collect();
            let mut row = vec!["MAP".to_string()];
            row.extend(maps.iter().map(|&m| f3(m)));
            println!("{}", markdown_table(&headers, &[row]));
            records.push(Sweep {
                dataset: kind.name().into(),
                parameter: axis.name.into(),
                values: axis.values.clone(),
                map: maps,
            });
        }
    }
    if let Some(path) = write_json(&format!("figure4_{}", scale.id()), &records) {
        println!("results written to {}", path.display());
    }
}
