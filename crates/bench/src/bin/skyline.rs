//! Supervised skyline: how close does unsupervised UHSCM get to CSQ, the
//! supervised method the paper cites as state of the art (§2.2)?
//!
//! Not an experiment from the paper's evaluation — an extra diagnostic this
//! reproduction adds: CSQ trains the *same* backbone with ground-truth
//! labels (Hadamard hash centers), upper-bounding what any unsupervised
//! similarity signal could achieve.

use serde::Serialize;
use uhscm_baselines::{csq, DeepBaselineConfig, UnsupervisedHasher};
use uhscm_bench::report::f3;
use uhscm_bench::{markdown_table, run_method, write_json, ExperimentData, Method, Scale};
use uhscm_core::variants::Variant;
use uhscm_data::DatasetKind;
use uhscm_eval::{mean_average_precision, HammingRanker};

#[derive(Serialize)]
struct Row {
    dataset: String,
    uhscm: f64,
    csq: f64,
    gap: f64,
}

fn main() {
    let scale = Scale::from_env_args();
    let bits = 64; // power of two, as the Hadamard construction requires
    println!("# Supervised skyline (CSQ) vs UHSCM @ {bits} bits (scale: {})\n", scale.id());

    let mut rows = Vec::new();
    let mut records = Vec::new();
    for kind in DatasetKind::ALL {
        eprintln!("[skyline] building {} …", kind.name());
        let data = ExperimentData::build(kind, scale);
        let top_n = data.map_top_n();

        let uhscm_codes = run_method(&data, Method::Uhscm(Variant::Full), bits, scale);
        let ranker = HammingRanker::new(uhscm_codes.db);
        let uhscm_map =
            mean_average_precision(&ranker, &uhscm_codes.query, &data.relevance(), top_n);

        // CSQ with ground-truth training labels.
        let ds = &data.dataset;
        let pipeline = data.pipeline();
        let train_labels = ds.labels_of(&ds.split.train);
        let cfg = DeepBaselineConfig { epochs: scale.epochs(), ..DeepBaselineConfig::default() };
        let model = csq::train(
            pipeline.train_features(),
            &train_labels,
            ds.class_names.len(),
            bits,
            &cfg,
            data.seed ^ 0xc59,
        );
        let ranker = HammingRanker::new(model.encode(&data.db_features));
        let csq_map = mean_average_precision(
            &ranker,
            &model.encode(&data.query_features),
            &data.relevance(),
            top_n,
        );
        eprintln!("[skyline] {}: UHSCM {uhscm_map:.3} vs CSQ {csq_map:.3}", kind.name());
        rows.push(vec![
            kind.name().to_string(),
            f3(uhscm_map),
            f3(csq_map),
            f3(csq_map - uhscm_map),
        ]);
        records.push(Row {
            dataset: kind.name().into(),
            uhscm: uhscm_map,
            csq: csq_map,
            gap: csq_map - uhscm_map,
        });
    }
    println!(
        "{}",
        markdown_table(
            &["Dataset".into(), "UHSCM (unsup.)".into(), "CSQ (supervised)".into(), "gap".into()],
            &rows
        )
    );
    if let Some(path) = write_json(&format!("skyline_{}", scale.id()), &records) {
        println!("results written to {}", path.display());
    }
}
