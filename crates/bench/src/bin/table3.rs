//! Table 3: wall-clock time consumption (preprocessing + training to
//! convergence) of the deep methods and UHSCM on each dataset.
//!
//! The paper reports minutes on a GPU testbed; this harness reports seconds
//! on the local machine. The comparison of interest is *relative*: UHSCM's
//! cost must be comparable to SSDH/GH/CIB and well below BGAN/MLS³RDUH.

use serde::Serialize;
use uhscm_baselines::BaselineKind;
use uhscm_bench::{markdown_table, run_method, write_json, ExperimentData, Method, Scale};
use uhscm_core::variants::Variant;
use uhscm_data::DatasetKind;

#[derive(Serialize)]
struct Timing {
    dataset: String,
    method: String,
    preprocess_secs: f64,
    train_secs: f64,
    total_secs: f64,
}

fn main() {
    let scale = Scale::from_env_args();
    // The paper's Table 3 compares the deep methods (+ UHSCM) at a fixed
    // code length; 64 bits is its running example.
    let bits = 64;
    let methods = [
        Method::Baseline(BaselineKind::Ssdh),
        Method::Baseline(BaselineKind::Gh),
        Method::Baseline(BaselineKind::Bgan),
        Method::Baseline(BaselineKind::Mls3rduh),
        Method::Baseline(BaselineKind::Cib),
        Method::Uhscm(Variant::Full),
    ];
    println!("# Table 3 — time consumption (seconds, scale: {})\n", scale.id());

    let mut records: Vec<Timing> = Vec::new();
    let mut rows: Vec<Vec<String>> = methods.iter().map(|m| vec![m.name()]).collect();
    for kind in DatasetKind::ALL {
        eprintln!("[table3] building {} …", kind.name());
        let data = ExperimentData::build(kind, scale);
        for (mi, &method) in methods.iter().enumerate() {
            let codes = run_method(&data, method, bits, scale);
            records.push(Timing {
                dataset: kind.name().into(),
                method: codes.name.clone(),
                preprocess_secs: codes.preprocess_secs,
                train_secs: codes.train_secs,
                total_secs: codes.total_secs(),
            });
            rows[mi].push(format!("{:.2}", codes.total_secs()));
            eprintln!(
                "[table3] {} {} → {:.2}s (prep {:.2}s + train {:.2}s)",
                kind.name(),
                codes.name,
                codes.total_secs(),
                codes.preprocess_secs,
                codes.train_secs
            );
        }
    }
    let mut headers = vec!["Method".to_string()];
    headers.extend(DatasetKind::ALL.iter().map(|k| k.name().to_string()));
    println!("{}", markdown_table(&headers, &rows));
    if let Some(path) = write_json(&format!("table3_{}", scale.id()), &records) {
        println!("results written to {}", path.display());
    }
}
