//! Figure 6: top-10 retrieved results on CIFAR10 (64 bits) for UHSCM, CIB,
//! BGAN and MLS³RDUH.
//!
//! The paper frames each retrieved image green (relevant) or red
//! (irrelevant); without pixels we print the structural equivalent — per
//! query, the retrieved class names with ✓/✗ relevance flags — and report
//! each method's error count over the query panel.

use serde::Serialize;
use uhscm_baselines::BaselineKind;
use uhscm_bench::{markdown_table, run_method, write_json, ExperimentData, Method, Scale};
use uhscm_core::variants::Variant;
use uhscm_data::DatasetKind;
use uhscm_eval::{top_k, HammingRanker};

#[derive(Serialize)]
struct Panel {
    method: String,
    query_class: Vec<String>,
    /// Per query: retrieved item classes.
    retrieved: Vec<Vec<String>>,
    /// Per query: relevance flags.
    relevant: Vec<Vec<bool>>,
    faults: usize,
}

fn main() {
    let scale = Scale::from_env_args();
    let bits = 64;
    let top = 10;
    let n_queries = 8;
    let methods = [
        Method::Uhscm(Variant::Full),
        Method::Baseline(BaselineKind::Cib),
        Method::Baseline(BaselineKind::Bgan),
        Method::Baseline(BaselineKind::Mls3rduh),
    ];
    println!("# Figure 6 — top-{top} retrieval on CIFAR10 @ {bits} bits (scale: {})\n", scale.id());

    let data = ExperimentData::build(DatasetKind::Cifar10Like, scale);
    let ds = &data.dataset;
    let class_of = |item: usize| ds.class_names[ds.labels[item][0]].clone();

    let mut fault_rows = Vec::new();
    let mut records = Vec::new();
    for method in methods {
        let codes = run_method(&data, method, bits, scale);
        let ranker = HammingRanker::new(codes.db);
        let rel = data.relevance();
        let mut faults = 0usize;
        let mut query_class = Vec::new();
        let mut retrieved = Vec::new();
        let mut relevant = Vec::new();
        println!("## {}\n", codes.name);
        for qi in 0..n_queries.min(ds.split.query.len()) {
            let hits = top_k(&ranker, &codes.query, qi, &rel, top);
            let q_class = class_of(ds.split.query[qi]);
            let line: Vec<String> = hits
                .iter()
                .map(|h| {
                    let c = class_of(ds.split.database[h.index]);
                    if h.relevant {
                        format!("✓{c}")
                    } else {
                        faults += 1;
                        format!("✗{c}")
                    }
                })
                .collect();
            println!("query[{qi}] ({q_class}): {}", line.join(" "));
            query_class.push(q_class);
            retrieved.push(hits.iter().map(|h| class_of(ds.split.database[h.index])).collect());
            relevant.push(hits.iter().map(|h| h.relevant).collect());
        }
        println!();
        fault_rows.push(vec![codes.name.clone(), faults.to_string()]);
        records.push(Panel { method: codes.name, query_class, retrieved, relevant, faults });
    }
    println!(
        "{}",
        markdown_table(
            &["Method".to_string(), format!("faults in {n_queries}×top-{top}")],
            &fault_rows
        )
    );
    if let Some(path) = write_json(&format!("figure6_{}", scale.id()), &records) {
        println!("panels written to {}", path.display());
    }
}
