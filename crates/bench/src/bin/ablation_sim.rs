//! Simulation-design ablation: how the reproduction's substitution knobs
//! shape the headline result.
//!
//! DESIGN.md claims three mechanics carry the paper's phenomena: the
//! low-rank style nuisance in the CNN-style features, the image-tower noise
//! that concept softmax suppresses, and the concept-relatedness model. This
//! harness sweeps the first two and reports the UHSCM-vs-ITQ MAP gap (the
//! paper's headline comparison) at each setting, demonstrating that the
//! reproduced gap is a *mechanism*, not a hand-tuned constant.

use serde::Serialize;
use uhscm_baselines::itq::Itq;
use uhscm_baselines::UnsupervisedHasher;
use uhscm_bench::context::EXPERIMENT_SEED;
use uhscm_bench::report::f3;
use uhscm_bench::{markdown_table, write_json, Scale};
use uhscm_core::pipeline::SimilaritySource;
use uhscm_data::{Dataset, DatasetKind};
use uhscm_eval::{mean_average_precision, HammingRanker};
use uhscm_linalg::Matrix;
use uhscm_vlp::{SimClip, SimClipConfig, VggFeatures};

#[derive(Serialize)]
struct Point {
    knob: String,
    value: f64,
    uhscm_map: f64,
    itq_map: f64,
    gap: f64,
}

fn main() {
    let scale = Scale::from_env_args();
    let bits = 32;
    let dataset =
        Dataset::generate(DatasetKind::Cifar10Like, &scale.dataset_config(), EXPERIMENT_SEED);
    let latent_dim = dataset.latents.cols();
    println!("# Simulation-design ablation (CIFAR10, {bits} bits, scale: {})\n", scale.id());

    let mut records = Vec::new();

    // --- Knob 1: style-nuisance norm in the CNN-style features -----------
    let mut rows = Vec::new();
    for &style in &[0.0, 0.5, 1.0, 1.5, 2.0] {
        let vgg =
            VggFeatures::with_style(latent_dim, 128, 0.8, 16, style, EXPERIMENT_SEED ^ 0x7667);
        let (u, i) = run_pair(&dataset, &vgg, None, bits, scale);
        rows.push(vec![format!("{style}"), f3(u), f3(i), f3(u - i)]);
        records.push(Point {
            knob: "style_norm".into(),
            value: style,
            uhscm_map: u,
            itq_map: i,
            gap: u - i,
        });
        eprintln!("[ablation_sim] style={style} → UHSCM {u:.3} ITQ {i:.3}");
    }
    println!("## Style-nuisance norm (features)\n");
    println!(
        "{}",
        markdown_table(&["style".into(), "UHSCM".into(), "ITQ".into(), "gap".into()], &rows)
    );

    // --- Knob 2: VLP image-tower noise ------------------------------------
    let mut rows = Vec::new();
    for &noise in &[0.0, 0.3, 0.6, 0.9, 1.2] {
        let clip_cfg = SimClipConfig { image_noise: noise, ..SimClipConfig::default() };
        let (u, i) = run_pair_with_clip(&dataset, clip_cfg, bits, scale);
        rows.push(vec![format!("{noise}"), f3(u), f3(i), f3(u - i)]);
        records.push(Point {
            knob: "image_noise".into(),
            value: noise,
            uhscm_map: u,
            itq_map: i,
            gap: u - i,
        });
        eprintln!("[ablation_sim] image_noise={noise} → UHSCM {u:.3} ITQ {i:.3}");
    }
    println!("## VLP image-tower noise\n");
    println!(
        "{}",
        markdown_table(&["image_noise".into(), "UHSCM".into(), "ITQ".into(), "gap".into()], &rows)
    );

    if let Some(path) = write_json(&format!("ablation_sim_{}", scale.id()), &records) {
        println!("results written to {}", path.display());
    }
}

/// Train UHSCM (with the default VLP checkpoint) and ITQ on custom features.
fn run_pair(
    dataset: &Dataset,
    vgg: &VggFeatures,
    clip_cfg: Option<SimClipConfig>,
    bits: usize,
    scale: Scale,
) -> (f64, f64) {
    let clip = SimClip::new(
        dataset.latents.cols(),
        clip_cfg.unwrap_or_default(),
        EXPERIMENT_SEED ^ 0xc11b,
    );
    let train_latents = dataset.latents_of(&dataset.split.train);
    let train_features = vgg.extract(&train_latents);
    let query_features = vgg.extract(&dataset.latents_of(&dataset.split.query));
    let db_features = vgg.extract(&dataset.latents_of(&dataset.split.database));

    // UHSCM: default concept-mined similarity over this checkpoint.
    let config = scale.uhscm_config(dataset.kind, bits);
    let source = SimilaritySource::default();
    let outcome = {
        // Build similarity manually so the custom clip/vgg are used.
        let scores = match &source {
            SimilaritySource::ConceptsDenoised { vocab, template } => {
                let s = clip.score_matrix(&train_latents, vocab, *template);
                let d = uhscm_core::concept_distributions(&s, config.tau_factor);
                let kept = uhscm_core::denoise_concepts(&d);
                let kept_scores = select_columns(&s, &kept);
                uhscm_core::concept_distributions(&kept_scores, config.tau_factor)
            }
            _ => unreachable!("default source is ConceptsDenoised"),
        };
        uhscm_core::similarity_from_distributions(&scores)
    };
    let model = uhscm_core::train_hashing_network(
        &train_features,
        &outcome,
        &config,
        uhscm_core::pipeline::Regularizer::Modified,
        EXPERIMENT_SEED ^ 0x7261,
    );
    let rel = relevance(dataset);
    let top_n = dataset.split.database.len();
    let ranker = HammingRanker::new(model.encode(&db_features));
    let uhscm_map = mean_average_precision(&ranker, &model.encode(&query_features), &rel, top_n);

    // ITQ on the same features.
    let itq = Itq::train(&train_features, bits, EXPERIMENT_SEED ^ 0xba5e);
    let ranker = HammingRanker::new(itq.encode(&db_features));
    let itq_map = mean_average_precision(&ranker, &itq.encode(&query_features), &rel, top_n);
    (uhscm_map, itq_map)
}

/// Vary the VLP checkpoint while keeping the default feature extractor.
fn run_pair_with_clip(
    dataset: &Dataset,
    clip_cfg: SimClipConfig,
    bits: usize,
    scale: Scale,
) -> (f64, f64) {
    let vgg = VggFeatures::with_defaults(dataset.latents.cols(), EXPERIMENT_SEED ^ 0x7667);
    run_pair(dataset, &vgg, Some(clip_cfg), bits, scale)
}

fn relevance(dataset: &Dataset) -> impl Fn(usize, usize) -> bool + '_ {
    move |qi, di| {
        uhscm_data::share_label(
            &dataset.labels[dataset.split.query[qi]],
            &dataset.labels[dataset.split.database[di]],
        )
    }
}

fn select_columns(m: &Matrix, cols: &[usize]) -> Matrix {
    let mut out = Matrix::zeros(m.rows(), cols.len());
    for i in 0..m.rows() {
        let src = m.row(i);
        for (k, &c) in cols.iter().enumerate() {
            out[(i, k)] = src[c];
        }
    }
    out
}
