//! Table 2: MAPs of UHSCM and its 14 ablation variants on the three
//! datasets across hash-code lengths (§4.4).

use serde::Serialize;
use uhscm_bench::report::f3;
use uhscm_bench::{markdown_table, run_method, write_json, ExperimentData, Method, Scale};
use uhscm_core::variants::Variant;
use uhscm_data::DatasetKind;
use uhscm_eval::{mean_average_precision, HammingRanker};

#[derive(Serialize)]
struct Cell {
    dataset: String,
    variant: String,
    bits: usize,
    map: f64,
}

fn main() {
    let scale = Scale::from_env_args();
    let bit_widths = scale.bit_widths();
    let variants = Variant::table2();
    println!("# Table 2 — ablation study (scale: {})\n", scale.id());

    let mut records: Vec<Cell> = Vec::new();
    for kind in DatasetKind::ALL {
        eprintln!("[table2] building {} …", kind.name());
        let data = ExperimentData::build(kind, scale);
        let top_n = data.map_top_n();
        let mut rows = Vec::new();
        for &variant in &variants {
            let mut row = vec![variant.name()];
            for &bits in &bit_widths {
                let codes = run_method(&data, Method::Uhscm(variant), bits, scale);
                let ranker = HammingRanker::new(codes.db);
                let map = mean_average_precision(&ranker, &codes.query, &data.relevance(), top_n);
                eprintln!("[table2] {} {} {bits}b → MAP {map:.3}", kind.name(), variant.name());
                records.push(Cell {
                    dataset: kind.name().into(),
                    variant: variant.name(),
                    bits,
                    map,
                });
                row.push(f3(map));
            }
            rows.push(row);
        }
        let mut headers = vec!["Variant".to_string()];
        headers.extend(bit_widths.iter().map(|b| format!("{b} bits")));
        println!("## {}\n", kind.name());
        println!("{}", markdown_table(&headers, &rows));
    }
    if let Some(path) = write_json(&format!("table2_{}", scale.id()), &records) {
        println!("results written to {}", path.display());
    }
}
