//! Figure 3: Precision-Recall curves (hash-lookup protocol) on the three
//! datasets (64 and 128 bits), Hamming radius swept from 0 to k.

use serde::Serialize;
use uhscm_bench::report::f3;
use uhscm_bench::{markdown_table, run_method, write_json, ExperimentData, Method, Scale};
use uhscm_data::DatasetKind;
use uhscm_eval::{pr_curve, HammingRanker};

#[derive(Serialize)]
struct Series {
    dataset: String,
    method: String,
    bits: usize,
    radius: Vec<u32>,
    precision: Vec<f64>,
    recall: Vec<f64>,
}

fn main() {
    let scale = Scale::from_env_args();
    let bit_widths: Vec<usize> = scale
        .bit_widths()
        .into_iter()
        .filter(|&b| b == 64 || b == 128 || scale == Scale::Smoke)
        .collect();
    let methods = Method::table1();
    println!("# Figure 3 — Precision-Recall curves (scale: {})\n", scale.id());

    let mut records: Vec<Series> = Vec::new();
    for kind in DatasetKind::ALL {
        eprintln!("[figure3] building {} …", kind.name());
        let data = ExperimentData::build(kind, scale);
        for &bits in &bit_widths {
            // Render precision at fixed recall grid points for the table.
            let recall_grid = [0.1, 0.25, 0.5, 0.75, 0.9, 1.0];
            let mut rows = Vec::new();
            for &method in &methods {
                let codes = run_method(&data, method, bits, scale);
                let ranker = HammingRanker::new(codes.db);
                let pr = pr_curve(&ranker, &codes.query, &data.relevance());
                // Precision at the first radius reaching each recall level.
                let mut row = vec![codes.name.clone()];
                for &target in &recall_grid {
                    let p = pr
                        .iter()
                        .find(|pt| pt.recall >= target - 1e-9)
                        .map_or(f64::NAN, |pt| pt.precision);
                    row.push(f3(p));
                }
                rows.push(row);
                records.push(Series {
                    dataset: kind.name().into(),
                    method: codes.name,
                    bits,
                    radius: pr.iter().map(|p| p.radius).collect(),
                    precision: pr.iter().map(|p| p.precision).collect(),
                    recall: pr.iter().map(|p| p.recall).collect(),
                });
            }
            let mut headers = vec!["Method".to_string()];
            headers.extend(recall_grid.iter().map(|r| format!("P@R≥{r}")));
            println!("## {} @ {bits} bits\n", kind.name());
            println!("{}", markdown_table(&headers, &rows));
        }
    }
    if let Some(path) = write_json(&format!("figure3_{}", scale.id()), &records) {
        println!("results written to {}", path.display());
    }
}
