//! Table 1: MAP of Hamming ranking for different numbers of hash bits on
//! the three image datasets, all methods.

use serde::Serialize;
use uhscm_bench::report::f3;
use uhscm_bench::{markdown_table, run_method, write_json, ExperimentData, Method, Scale};
use uhscm_data::DatasetKind;
use uhscm_eval::{mean_average_precision, HammingRanker};

#[derive(Serialize)]
struct Cell {
    dataset: String,
    method: String,
    bits: usize,
    map: f64,
}

fn main() {
    let scale = Scale::from_env_args();
    let bit_widths = scale.bit_widths();
    let methods = Method::table1();
    println!("# Table 1 — MAP of Hamming ranking (scale: {})\n", scale.id());

    let mut records: Vec<Cell> = Vec::new();
    for kind in DatasetKind::ALL {
        eprintln!("[table1] building {} …", kind.name());
        let data = ExperimentData::build(kind, scale);
        let top_n = data.map_top_n();
        let mut rows = Vec::new();
        for &method in &methods {
            let mut row = vec![method.name()];
            for &bits in &bit_widths {
                let codes = run_method(&data, method, bits, scale);
                let ranker = HammingRanker::new(codes.db);
                let map = mean_average_precision(&ranker, &codes.query, &data.relevance(), top_n);
                eprintln!("[table1] {} {} {bits}b → MAP {map:.3}", kind.name(), codes.name);
                records.push(Cell { dataset: kind.name().into(), method: codes.name, bits, map });
                row.push(f3(map));
            }
            rows.push(row);
        }
        let mut headers = vec!["Method".to_string()];
        headers.extend(bit_widths.iter().map(|b| format!("{b} bits")));
        println!("## {}\n", kind.name());
        println!("{}", markdown_table(&headers, &rows));
    }
    if let Some(path) = write_json(&format!("table1_{}", scale.id()), &records) {
        println!("results written to {}", path.display());
    }
}
