//! Experiment scales and per-dataset context.

use uhscm_core::pipeline::Pipeline;
use uhscm_core::UhscmConfig;
use uhscm_data::{share_label, Dataset, DatasetConfig, DatasetKind};
use uhscm_linalg::Matrix;

/// Master seed shared by all experiments (datasets, checkpoints, training).
pub const EXPERIMENT_SEED: u64 = 20230618; // SIGMOD '23 opening day

/// Experiment scale: trades fidelity for wall-clock time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Minutes-long sanity pass (used by the integration tests).
    Smoke,
    /// Default: faithful shapes at reduced n.
    Quick,
    /// The scale used for EXPERIMENTS.md.
    Full,
}

impl Scale {
    /// Resolve from CLI args (`--scale X`) or `UHSCM_SCALE`, default Quick.
    pub fn from_env_args() -> Scale {
        let args: Vec<String> = std::env::args().collect();
        let from_cli = args.windows(2).find(|w| w[0] == "--scale").map(|w| w[1].clone());
        let raw = from_cli
            .or_else(|| std::env::var("UHSCM_SCALE").ok())
            .unwrap_or_else(|| "quick".into());
        match raw.to_lowercase().as_str() {
            "smoke" => Scale::Smoke,
            "full" => Scale::Full,
            _ => Scale::Quick,
        }
    }

    /// Dataset sizes for this scale.
    pub fn dataset_config(self) -> DatasetConfig {
        match self {
            Scale::Smoke => DatasetConfig {
                n_train: 200,
                n_query: 80,
                n_database: 600,
                ..DatasetConfig::default()
            },
            Scale::Quick => DatasetConfig {
                n_train: 800,
                n_query: 300,
                n_database: 2_400,
                ..DatasetConfig::default()
            },
            Scale::Full => DatasetConfig::default(),
        }
    }

    /// Training epochs for UHSCM and the deep baselines.
    pub fn epochs(self) -> usize {
        match self {
            Scale::Smoke => 6,
            Scale::Quick => 25,
            Scale::Full => 40,
        }
    }

    /// Hash-code lengths swept by the tables.
    pub fn bit_widths(self) -> Vec<usize> {
        match self {
            Scale::Smoke => vec![16, 32],
            _ => vec![32, 64, 96, 128],
        }
    }

    /// UHSCM configuration for a dataset at this scale.
    pub fn uhscm_config(self, kind: DatasetKind, bits: usize) -> UhscmConfig {
        UhscmConfig { bits, epochs: self.epochs(), ..UhscmConfig::for_dataset(kind) }
    }

    /// Lower-case identifier (for file names).
    pub fn id(self) -> &'static str {
        match self {
            Scale::Smoke => "smoke",
            Scale::Quick => "quick",
            Scale::Full => "full",
        }
    }
}

/// Everything needed to run methods on one dataset: the data itself, a
/// bound pipeline, and cached backbone features of each split.
pub struct ExperimentData {
    pub dataset: Dataset,
    pub query_features: Matrix,
    pub db_features: Matrix,
    pub seed: u64,
}

impl ExperimentData {
    /// Generate the dataset for `kind` at `scale` and extract features.
    pub fn build(kind: DatasetKind, scale: Scale) -> Self {
        let dataset = Dataset::generate(kind, &scale.dataset_config(), EXPERIMENT_SEED);
        let pipeline = Pipeline::new(&dataset, EXPERIMENT_SEED);
        let query_features = pipeline.features_of(&dataset.split.query);
        let db_features = pipeline.features_of(&dataset.split.database);
        Self { dataset, query_features, db_features, seed: EXPERIMENT_SEED }
    }

    /// A pipeline bound to this dataset (cheap to rebuild: the checkpoints
    /// are derived deterministically from the seed).
    pub fn pipeline(&self) -> Pipeline<'_> {
        Pipeline::new(&self.dataset, self.seed)
    }

    /// Ground-truth relevance between query position and database position.
    pub fn relevance(&self) -> impl Fn(usize, usize) -> bool + '_ {
        let ds = &self.dataset;
        move |qi: usize, di: usize| {
            share_label(&ds.labels[ds.split.query[qi]], &ds.labels[ds.split.database[di]])
        }
    }

    /// MAP cut-off: the paper's 5 000, clamped to the database size.
    pub fn map_top_n(&self) -> usize {
        5_000.min(self.dataset.split.database.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_parsing_defaults_to_quick() {
        // No --scale in the test binary's args and env unset → Quick.
        std::env::remove_var("UHSCM_SCALE");
        assert_eq!(Scale::from_env_args(), Scale::Quick);
    }

    #[test]
    fn smoke_context_builds() {
        let data = ExperimentData::build(DatasetKind::Cifar10Like, Scale::Smoke);
        assert_eq!(data.query_features.rows(), 80);
        assert_eq!(data.db_features.rows(), 600);
        assert_eq!(data.map_top_n(), 600);
        let rel = data.relevance();
        // Relevance is well-defined on the full grid corners.
        let _ = rel(0, 0);
        let _ = rel(79, 599);
    }

    #[test]
    fn scales_are_ordered() {
        assert!(Scale::Smoke.dataset_config().n_train < Scale::Quick.dataset_config().n_train);
        assert!(Scale::Quick.dataset_config().n_train < Scale::Full.dataset_config().n_train);
        assert!(Scale::Smoke.epochs() < Scale::Full.epochs());
    }
}
