//! A uniform runner over UHSCM (and its ablation variants) plus all
//! baselines: train on the experiment's training split, encode the query
//! and database splits, and report wall-clock timings.

use crate::context::{ExperimentData, Scale};
use std::time::Instant;
use uhscm_baselines::{BaselineKind, DeepBaselineConfig};
use uhscm_core::variants::Variant;
use uhscm_eval::BitCodes;

/// A method under evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Method {
    /// UHSCM or one of its Table 2 variants.
    Uhscm(Variant),
    /// One of the ten baselines.
    Baseline(BaselineKind),
}

impl Method {
    /// Paper-facing name.
    pub fn name(&self) -> String {
        match self {
            Method::Uhscm(v) => v.name(),
            Method::Baseline(b) => b.name().to_string(),
        }
    }

    /// The Table 1 line-up: nine baselines then UHSCM.
    pub fn table1() -> Vec<Method> {
        let mut out: Vec<Method> =
            BaselineKind::TABLE1.iter().map(|&b| Method::Baseline(b)).collect();
        out.push(Method::Uhscm(Variant::Full));
        out
    }
}

/// Codes and timings produced by one training run.
pub struct MethodCodes {
    pub name: String,
    pub query: BitCodes,
    pub db: BitCodes,
    /// Similarity-matrix / pseudo-label construction time (preprocessing).
    pub preprocess_secs: f64,
    /// Network training (or shallow fitting) time.
    pub train_secs: f64,
}

impl MethodCodes {
    /// Total time, as reported in the paper's Table 3.
    pub fn total_secs(&self) -> f64 {
        self.preprocess_secs + self.train_secs
    }
}

/// Train `method` at `bits` on `data` and encode both evaluation splits.
pub fn run_method(data: &ExperimentData, method: Method, bits: usize, scale: Scale) -> MethodCodes {
    match method {
        Method::Uhscm(variant) => {
            let pipeline = data.pipeline();
            let config = scale.uhscm_config(data.dataset.kind, bits);
            let t0 = Instant::now();
            let outcome =
                pipeline.build_similarity(&variant.similarity_source(), config.tau_factor);
            let preprocess_secs = t0.elapsed().as_secs_f64();
            let t1 = Instant::now();
            let model = uhscm_core::trainer::train_hashing_network(
                pipeline.train_features(),
                &outcome.q,
                &config,
                variant.regularizer(),
                data.seed ^ 0x7261,
            );
            let train_secs = t1.elapsed().as_secs_f64();
            MethodCodes {
                name: variant.name(),
                query: model.encode(&data.query_features),
                db: model.encode(&data.db_features),
                preprocess_secs,
                train_secs,
            }
        }
        Method::Baseline(kind) => {
            let pipeline = data.pipeline();
            let train_features = pipeline.train_features().clone();
            let deep_cfg =
                DeepBaselineConfig { epochs: scale.epochs(), ..DeepBaselineConfig::default() };
            let t0 = Instant::now();
            let model = kind.train(&train_features, bits, &deep_cfg, data.seed ^ 0xba5e);
            let train_secs = t0.elapsed().as_secs_f64();
            MethodCodes {
                name: kind.name().to_string(),
                query: model.encode(&data.query_features),
                db: model.encode(&data.db_features),
                preprocess_secs: 0.0,
                train_secs,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uhscm_data::DatasetKind;
    use uhscm_eval::{mean_average_precision, HammingRanker};

    #[test]
    fn table1_lineup_matches_paper() {
        let methods = Method::table1();
        assert_eq!(methods.len(), 10);
        assert_eq!(methods[0].name(), "LSH");
        assert_eq!(methods.last().unwrap().name(), "UHSCM");
    }

    #[test]
    fn uhscm_beats_lsh_at_smoke_scale() {
        let data = ExperimentData::build(DatasetKind::Cifar10Like, Scale::Smoke);
        let top_n = data.map_top_n();
        let map_of = |m: Method| {
            let codes = run_method(&data, m, 16, Scale::Smoke);
            let ranker = HammingRanker::new(codes.db);
            mean_average_precision(&ranker, &codes.query, &data.relevance(), top_n)
        };
        let uhscm = map_of(Method::Uhscm(Variant::Full));
        let lsh = map_of(Method::Baseline(BaselineKind::Lsh));
        assert!(uhscm > lsh, "UHSCM ({uhscm:.3}) did not beat LSH ({lsh:.3}) even at smoke scale");
    }
}
