//! Result rendering: markdown tables to stdout, JSON records to `results/`.

use serde::Serialize;
use std::fs;
use std::io::Write as _;
use std::path::PathBuf;

/// Render a markdown table.
pub fn markdown_table(headers: &[String], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = headers.iter().map(String::len).collect();
    for row in rows {
        for (w, cell) in widths.iter_mut().zip(row) {
            *w = (*w).max(cell.len());
        }
    }
    let mut out = String::new();
    let fmt_row = |cells: &[String], widths: &[usize]| -> String {
        let padded: Vec<String> =
            cells.iter().zip(widths).map(|(c, w)| format!("{c:<w$}")).collect();
        format!("| {} |\n", padded.join(" | "))
    };
    out.push_str(&fmt_row(headers, &widths));
    let sep: Vec<String> = widths.iter().map(|w| "-".repeat(*w)).collect();
    out.push_str(&fmt_row(&sep, &widths));
    for row in rows {
        out.push_str(&fmt_row(row, &widths));
    }
    out
}

/// Serialize `record` as pretty JSON under `results/<name>.json`.
///
/// Returns the path written. Errors are reported, not fatal — a read-only
/// checkout still prints results to stdout.
pub fn write_json<T: Serialize>(name: &str, record: &T) -> Option<PathBuf> {
    let dir = PathBuf::from("results");
    if let Err(e) = fs::create_dir_all(&dir) {
        eprintln!("warning: cannot create results/: {e}");
        return None;
    }
    let path = dir.join(format!("{name}.json"));
    let json = match serde_json::to_string_pretty(record) {
        Ok(j) => j,
        Err(e) => {
            eprintln!("warning: serialization failed: {e}");
            return None;
        }
    };
    match fs::File::create(&path).and_then(|mut f| f.write_all(json.as_bytes())) {
        Ok(()) => Some(path),
        Err(e) => {
            eprintln!("warning: cannot write {}: {e}", path.display());
            None
        }
    }
}

/// Format a float like the paper's tables (three decimals).
pub fn f3(v: f64) -> String {
    format!("{v:.3}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_is_aligned() {
        let t = markdown_table(
            &["Method".into(), "MAP".into()],
            &[vec!["LSH".into(), "0.257".into()], vec!["UHSCM".into(), "0.831".into()]],
        );
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 4);
        let widths: Vec<usize> = lines.iter().map(|l| l.len()).collect();
        assert!(widths.windows(2).all(|w| w[0] == w[1]), "ragged table:\n{t}");
        assert!(t.contains("| UHSCM  | 0.831 |"));
    }

    #[test]
    fn f3_formats_three_decimals() {
        assert_eq!(f3(0.8314159), "0.831");
        assert_eq!(f3(1.0), "1.000");
    }
}
