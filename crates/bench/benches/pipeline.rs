//! Micro-benchmarks for the UHSCM pipeline stages: concept mining,
//! similarity construction, the Eq. 11 loss, and network training steps.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::time::Duration;
use uhscm_core::loss::{hashing_loss_and_grad, LossParams};
use uhscm_core::similarity::similarity_from_distributions;
use uhscm_core::{concept_distributions, denoise_concepts};
use uhscm_data::{vocab, Dataset, DatasetConfig, DatasetKind};
use uhscm_linalg::{rng, Matrix};
use uhscm_nn::{Mlp, Sgd};
use uhscm_vlp::{PromptTemplate, SimClip};

fn bench_pipeline(c: &mut Criterion) {
    let mut group = c.benchmark_group("pipeline");
    group.measurement_time(Duration::from_secs(2)).sample_size(10);

    let cfg =
        DatasetConfig { n_train: 400, n_query: 50, n_database: 800, ..DatasetConfig::default() };
    let ds = Dataset::generate(DatasetKind::Cifar10Like, &cfg, 42);
    let clip = SimClip::with_defaults(ds.latents.cols(), 7);
    let concepts = vocab::nus_wide_81();
    let latents = ds.latents_of(&ds.split.train);

    group.bench_function("clip_score_matrix_400x81", |bench| {
        bench
            .iter(|| black_box(clip.score_matrix(&latents, &concepts, PromptTemplate::PhotoOfThe)));
    });

    let scores = clip.score_matrix(&latents, &concepts, PromptTemplate::PhotoOfThe);
    group.bench_function("concept_distributions_400x81", |bench| {
        bench.iter(|| black_box(concept_distributions(&scores, 3.0)));
    });

    let dists = concept_distributions(&scores, 3.0);
    group.bench_function("denoise_concepts_400x81", |bench| {
        bench.iter(|| black_box(denoise_concepts(&dists)));
    });

    group.bench_function("similarity_matrix_400", |bench| {
        bench.iter(|| black_box(similarity_from_distributions(&dists)));
    });

    // Eq. 11 loss on a paper-sized batch (t=128, k=64).
    let mut r = rng::seeded(3);
    let z = rng::gauss_matrix(&mut r, 128, 64, 0.5);
    let mut q = Matrix::zeros(128, 128);
    for i in 0..128 {
        q[(i, i)] = 1.0;
        for j in (i + 1)..128 {
            let v = if (i + j) % 4 == 0 { 0.9 } else { 0.1 };
            q[(i, j)] = v;
            q[(j, i)] = v;
        }
    }
    let params = LossParams { alpha: 0.2, beta: 0.001, gamma: 0.2, lambda: 0.8 };
    group.bench_function("eq11_loss_and_grad_t128_k64", |bench| {
        bench.iter(|| black_box(hashing_loss_and_grad(&z, &q, &params)));
    });

    // One SGD step of the hashing network on a batch.
    let x = rng::gauss_matrix(&mut r, 128, 128, 1.0);
    group.bench_function("network_step_t128", |bench| {
        let mut mlp = Mlp::hashing_network(128, &[128], 64, &mut r);
        let mut sgd = Sgd::paper_defaults();
        bench.iter(|| {
            let zb = mlp.forward(&x);
            let (_, grad) = hashing_loss_and_grad(&zb, &q, &params);
            mlp.backward(&grad);
            sgd.step(&mut mlp);
        });
    });

    group.finish();
}

criterion_group!(benches, bench_pipeline);
criterion_main!(benches);
