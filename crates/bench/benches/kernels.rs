//! Micro-benchmarks for the linear-algebra kernels underneath everything,
//! plus a serial-vs-parallel comparison of every kernel the deterministic
//! runtime (`uhscm_linalg::par`) fans out.
//!
//! The comparison re-runs each workload pinned to one thread and at the
//! effective thread count (`UHSCM_THREADS` or the machine's core count),
//! checks the outputs are bitwise identical, and records the timings to
//! `BENCH_kernels.json` at the workspace root.

use criterion::{criterion_group, BatchSize, Criterion};
use serde::Serialize;
use std::hint::black_box;
use std::time::{Duration, Instant};
use uhscm_core::similarity::cosine_gram;
use uhscm_eval::bitcode::hamming_scan;
use uhscm_eval::{mean_average_precision, BitCodes, HammingRanker};
use uhscm_linalg::{jacobi_eigen, kernels, par, rng, vecops, Pca};
use uhscm_nn::pairwise::cosine_matrix;
use uhscm_nn::Mlp;
use uhscm_vlp::SimClip;

fn bench_kernels(c: &mut Criterion) {
    let mut group = c.benchmark_group("kernels");
    group.measurement_time(Duration::from_secs(2)).sample_size(20);

    let mut r = rng::seeded(1);
    let a = rng::gauss_matrix(&mut r, 128, 128, 1.0);
    let b = rng::gauss_matrix(&mut r, 128, 128, 1.0);
    group.bench_function("matmul_128x128", |bench| {
        bench.iter(|| black_box(a.matmul(&b)));
    });

    let data = rng::gauss_matrix(&mut r, 256, 64, 1.0);
    let cov = data.covariance();
    group.bench_function("jacobi_eigen_64", |bench| {
        bench.iter_batched(|| cov.clone(), |m| black_box(jacobi_eigen(&m)), BatchSize::SmallInput);
    });

    group.bench_function("pca_fit_256x64_k16", |bench| {
        bench.iter(|| black_box(Pca::fit(&data, 16)));
    });

    let batch = rng::gauss_matrix(&mut r, 128, 64, 1.0);
    group.bench_function("cosine_matrix_128x64", |bench| {
        bench.iter(|| black_box(cosine_matrix(&batch)));
    });

    let logits: Vec<f64> = (0..81).map(|i| 0.2 + 0.001 * i as f64).collect();
    group.bench_function("softmax_81", |bench| {
        bench.iter(|| black_box(vecops::softmax_scaled(&logits, 243.0)));
    });

    group.finish();
}

criterion_group!(benches, bench_kernels);

/// Machine configuration the sweep ran under — without this, timings in a
/// committed `BENCH_kernels.json` are not attributable to anything.
#[derive(Serialize)]
struct HardwareMeta {
    /// Cores the OS reports via `std::thread::available_parallelism`.
    available_cores: usize,
    /// Threads the deterministic runtime resolved to (after `UHSCM_THREADS`).
    effective_threads: usize,
    /// Raw `UHSCM_THREADS` value, or `"unset"`.
    uhscm_threads_env: String,
}

/// The full report written to `BENCH_kernels.json`.
#[derive(Serialize)]
struct BenchReport {
    /// Report schema version. v2 added per-kernel throughput
    /// (`throughput`/`throughput_unit` on kernel rows) and the
    /// `reference_deltas` section comparing tuned kernels against their
    /// naive bitwise references.
    schema: u32,
    hardware: HardwareMeta,
    kernels: Vec<KernelRecord>,
    reference_deltas: Vec<DeltaRecord>,
}

/// One serial-vs-parallel measurement of a fanned-out kernel.
#[derive(Serialize)]
struct KernelRecord {
    name: String,
    size: String,
    threads: usize,
    serial_ns: u64,
    parallel_ns: u64,
    speedup: f64,
    bitwise_identical: bool,
    /// Serial throughput in `throughput_unit` (`null` for composite
    /// workloads whose work count has no single natural unit).
    throughput: Option<f64>,
    throughput_unit: Option<&'static str>,
}

/// One tuned-vs-naive measurement: the register-tiled dense kernels and the
/// batched Hamming scan against their straight-loop bitwise references,
/// both pinned to one thread so the delta isolates the kernel itself.
#[derive(Serialize)]
struct DeltaRecord {
    name: String,
    size: String,
    naive_ns: u64,
    tuned_ns: u64,
    speedup_vs_naive: f64,
    bitwise_identical: bool,
    naive_throughput: f64,
    tuned_throughput: f64,
    throughput_unit: &'static str,
}

/// Best-of-N wall time of `run` pinned to `threads` threads, in ns.
fn best_ns(threads: usize, samples: usize, run: &dyn Fn() -> Vec<u64>) -> u64 {
    par::with_threads(threads, || {
        black_box(run()); // warm-up
        let mut best = u64::MAX;
        for _ in 0..samples {
            let t0 = Instant::now();
            black_box(run());
            best = best.min(t0.elapsed().as_nanos() as u64);
        }
        best
    })
}

/// Time `run` serially and at `threads` threads; `run` returns the output
/// as bit patterns so the determinism contract is checked alongside speed.
/// `work` is the per-invocation work count and its unit (e.g. flops →
/// "gflops"); throughput = work / serial_ns, i.e. giga-units per second.
fn compare(
    name: &str,
    size: &str,
    threads: usize,
    work: Option<(f64, &'static str)>,
    run: &dyn Fn() -> Vec<u64>,
) -> KernelRecord {
    let bitwise_identical = par::with_threads(1, run) == par::with_threads(threads, run);
    let serial_ns = best_ns(1, 3, run);
    let parallel_ns = best_ns(threads, 3, run);
    let record = KernelRecord {
        name: name.to_string(),
        size: size.to_string(),
        threads,
        serial_ns,
        parallel_ns,
        speedup: serial_ns as f64 / parallel_ns as f64,
        bitwise_identical,
        throughput: work.map(|(units, _)| units / serial_ns as f64),
        throughput_unit: work.map(|(_, unit)| unit),
    };
    println!(
        "{name:<28} {size:<24} serial {:>12} ns | x{threads} {:>12} ns | {:.2}x | bitwise {}",
        record.serial_ns, record.parallel_ns, record.speedup, record.bitwise_identical
    );
    record
}

/// Time a tuned kernel against its naive bitwise reference, both pinned to
/// one thread, and attach throughputs in giga-`unit`s per second.
fn compare_reference(
    name: &str,
    size: &str,
    (units, unit): (f64, &'static str),
    naive: &dyn Fn() -> Vec<u64>,
    tuned: &dyn Fn() -> Vec<u64>,
) -> DeltaRecord {
    let bitwise_identical = par::with_threads(1, naive) == par::with_threads(1, tuned);
    // The two kernels alternate within one sampling loop: slow frequency
    // drift on the host can swing absolute times by ±30% across a few
    // seconds, and interleaving lets the drift hit both sides equally so it
    // cancels out of the ratio.
    let (naive_ns, tuned_ns) = par::with_threads(1, || {
        black_box(naive());
        black_box(tuned());
        let (mut best_naive, mut best_tuned) = (u64::MAX, u64::MAX);
        for _ in 0..5 {
            let t0 = Instant::now();
            black_box(naive());
            best_naive = best_naive.min(t0.elapsed().as_nanos() as u64);
            let t0 = Instant::now();
            black_box(tuned());
            best_tuned = best_tuned.min(t0.elapsed().as_nanos() as u64);
        }
        (best_naive, best_tuned)
    });
    let record = DeltaRecord {
        name: name.to_string(),
        size: size.to_string(),
        naive_ns,
        tuned_ns,
        speedup_vs_naive: naive_ns as f64 / tuned_ns as f64,
        bitwise_identical,
        naive_throughput: units / naive_ns as f64,
        tuned_throughput: units / tuned_ns as f64,
        throughput_unit: unit,
    };
    println!(
        "{name:<28} {size:<24} naive  {:>12} ns | tuned {:>11} ns | {:.2}x | {:.3} -> {:.3} {unit} | bitwise {}",
        record.naive_ns,
        record.tuned_ns,
        record.speedup_vs_naive,
        record.naive_throughput,
        record.tuned_throughput,
        record.bitwise_identical
    );
    record
}

fn f64_bits(vals: &[f64]) -> Vec<u64> {
    vals.iter().map(|v| v.to_bits()).collect()
}

/// Serial-vs-parallel sweep over the four fanned-out layers; writes
/// `BENCH_kernels.json` at the workspace root.
fn parallel_comparison() {
    let threads = par::Parallelism::effective().threads();
    let hardware = HardwareMeta {
        available_cores: std::thread::available_parallelism()
            .map(std::num::NonZero::get)
            .unwrap_or(1),
        effective_threads: threads,
        uhscm_threads_env: std::env::var("UHSCM_THREADS").unwrap_or_else(|_| "unset".to_string()),
    };
    println!(
        "\nparallel kernels at {threads} thread(s) on {} core(s) \
         (override with UHSCM_THREADS, currently {}):",
        hardware.available_cores, hardware.uhscm_threads_env
    );

    let mut r = rng::seeded(7);
    let mut records = Vec::new();

    // Layer 1: dense matmul at the paper's feature scale (256 images of
    // 4096-d CLIP features projected to 64 bits). 2mn k flops per call.
    let a = rng::gauss_matrix(&mut r, 256, 4096, 1.0);
    let b = rng::gauss_matrix(&mut r, 4096, 64, 1.0);
    let matmul_flops = 2.0 * 256.0 * 4096.0 * 64.0;
    records.push(compare(
        "matmul",
        "256x4096 * 4096x64",
        threads,
        Some((matmul_flops, "gflops")),
        &|| f64_bits(a.matmul(&b).as_slice()),
    ));

    // Layer 1b: the cosine Gram matrix behind the semantic similarity graph.
    let feats = rng::gauss_matrix(&mut r, 512, 256, 1.0);
    records.push(compare("cosine_gram", "512x256", threads, None, &|| {
        f64_bits(cosine_gram(&feats).as_slice())
    }));

    // Layer 2: simulated CLIP image-tower embedding.
    let latents = rng::gauss_matrix(&mut r, 512, 128, 1.0);
    let clip = SimClip::with_defaults(128, 7);
    records.push(compare("clip_embed_images", "512x128", threads, None, &|| {
        f64_bits(clip.embed_images(&latents).as_slice())
    }));

    // Layer 3: mini-batch MLP forward + backward (gradients checked).
    let mlp = Mlp::hashing_network(512, &[256], 64, &mut r);
    let x = rng::gauss_matrix(&mut r, 256, 512, 1.0);
    records.push(compare("mlp_forward_backward", "batch 256, 512-256-64", threads, None, &|| {
        let mut net = mlp.clone();
        let y = net.forward(&x);
        let gx = net.backward(&y);
        let mut bits = f64_bits(gx.as_slice());
        bits.extend(f64_bits(&net.flat_grads()));
        bits
    }));

    // Layer 4: per-query Hamming retrieval (MAP@100 over an 8192-code db).
    // Work unit: query-database code pairs.
    let db = BitCodes::from_real(&rng::gauss_matrix(&mut r, 8192, 64, 1.0));
    let queries = BitCodes::from_real(&rng::gauss_matrix(&mut r, 128, 64, 1.0));
    let ranker = HammingRanker::new(db.clone());
    let relevant = |qi: usize, dj: usize| (qi * 31 + dj) % 7 == 0;
    let pairs = 128.0 * 8192.0;
    records.push(compare(
        "retrieval_map",
        "128q x 8192db @100",
        threads,
        Some((pairs, "gcodes/s")),
        &|| vec![mean_average_precision(&ranker, &queries, &relevant, 100).to_bits()],
    ));

    // Tuned-vs-naive deltas: the register-tiled dense kernels against the
    // straight-loop references in `uhscm_linalg::kernels`, and the batched
    // Hamming scan against the per-pair `hamming(i, j)` loop. All pinned to
    // one thread — this isolates the kernel rewrite from the fan-out.
    println!("\ntuned kernels vs naive references (serial):");
    let mut deltas = Vec::new();
    deltas.push(compare_reference(
        "matmul_tiled",
        "256x4096 * 4096x64",
        (matmul_flops, "gflops"),
        &|| f64_bits(kernels::matmul_naive(&a, &b).as_slice()),
        &|| f64_bits(a.matmul(&b).as_slice()),
    ));
    // matmul_t at the Gram-like shape 256x4096 · (64x4096)ᵀ.
    let bt = rng::gauss_matrix(&mut r, 64, 4096, 1.0);
    deltas.push(compare_reference(
        "matmul_t_tiled",
        "256x4096 * (64x4096)^T",
        (matmul_flops, "gflops"),
        &|| f64_bits(kernels::matmul_t_naive(&a, &bt).as_slice()),
        &|| f64_bits(a.matmul_t(&bt).as_slice()),
    ));
    // t_matmul at the gradient shape (4096x256)ᵀ · 4096x64.
    let at = rng::gauss_matrix(&mut r, 4096, 256, 1.0);
    deltas.push(compare_reference(
        "t_matmul_tiled",
        "(4096x256)^T * 4096x64",
        (matmul_flops, "gflops"),
        &|| f64_bits(kernels::t_matmul_naive(&at, &b).as_slice()),
        &|| f64_bits(at.t_matmul(&b).as_slice()),
    ));
    deltas.push(compare_reference(
        "hamming_scan",
        "128q x 8192db",
        (pairs, "gcodes/s"),
        // Both sides reduce each query's distances to a position-weighted
        // wrapping sum: order-sensitive (so a permuted scan cannot pass the
        // bitwise check) yet associative, so the compiler is free to
        // vectorize it. A sequential hash chain here would add a ~1M-deep
        // multiply dependency that dwarfs the scan itself and hides the
        // kernel delta being measured.
        &|| {
            let mut acc = Vec::with_capacity(queries.len());
            for qi in 0..queries.len() {
                let mut h = 0u64;
                for j in 0..db.len() {
                    h = h.wrapping_add(
                        u64::from(queries.hamming(qi, &db, j)).wrapping_mul(j as u64 + 1),
                    );
                }
                acc.push(h);
            }
            acc
        },
        &|| {
            let mut dists = vec![0u32; db.len()];
            let mut acc = Vec::with_capacity(queries.len());
            for qi in 0..queries.len() {
                hamming_scan::scan_into(&queries, qi, &db, &mut dists);
                let mut h = 0u64;
                for (j, &d) in dists.iter().enumerate() {
                    h = h.wrapping_add(u64::from(d).wrapping_mul(j as u64 + 1));
                }
                acc.push(h);
            }
            acc
        },
    ));

    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .map(|root| root.join("BENCH_kernels.json"));
    let Some(path) = path else {
        eprintln!("warning: cannot locate the workspace root; skipping BENCH_kernels.json");
        return;
    };
    let report = BenchReport { schema: 2, hardware, kernels: records, reference_deltas: deltas };
    match serde_json::to_string_pretty(&report) {
        Ok(json) => match std::fs::write(&path, json + "\n") {
            Ok(()) => println!("wrote {}", path.display()),
            Err(e) => eprintln!("warning: cannot write {}: {e}", path.display()),
        },
        Err(e) => eprintln!("warning: serialization failed: {e}"),
    }
}

fn main() {
    benches();
    parallel_comparison();
}
