//! Micro-benchmarks for the linear-algebra kernels underneath everything.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::hint::black_box;
use std::time::Duration;
use uhscm_linalg::{jacobi_eigen, rng, vecops, Pca};
use uhscm_nn::pairwise::cosine_matrix;

fn bench_kernels(c: &mut Criterion) {
    let mut group = c.benchmark_group("kernels");
    group.measurement_time(Duration::from_secs(2)).sample_size(20);

    let mut r = rng::seeded(1);
    let a = rng::gauss_matrix(&mut r, 128, 128, 1.0);
    let b = rng::gauss_matrix(&mut r, 128, 128, 1.0);
    group.bench_function("matmul_128x128", |bench| {
        bench.iter(|| black_box(a.matmul(&b)));
    });

    let data = rng::gauss_matrix(&mut r, 256, 64, 1.0);
    let cov = data.covariance();
    group.bench_function("jacobi_eigen_64", |bench| {
        bench.iter_batched(|| cov.clone(), |m| black_box(jacobi_eigen(&m)), BatchSize::SmallInput);
    });

    group.bench_function("pca_fit_256x64_k16", |bench| {
        bench.iter(|| black_box(Pca::fit(&data, 16)));
    });

    let batch = rng::gauss_matrix(&mut r, 128, 64, 1.0);
    group.bench_function("cosine_matrix_128x64", |bench| {
        bench.iter(|| black_box(cosine_matrix(&batch)));
    });

    let logits: Vec<f64> = (0..81).map(|i| 0.2 + 0.001 * i as f64).collect();
    group.bench_function("softmax_81", |bench| {
        bench.iter(|| black_box(vecops::softmax_scaled(&logits, 243.0)));
    });

    group.finish();
}

criterion_group!(benches, bench_kernels);
criterion_main!(benches);
