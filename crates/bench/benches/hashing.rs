//! Micro-benchmarks for the retrieval path: packing, ranking, metrics.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::time::Duration;
use uhscm_eval::{mean_average_precision, pr_curve, BitCodes, HammingRanker};
use uhscm_linalg::rng;

fn bench_hashing(c: &mut Criterion) {
    let mut group = c.benchmark_group("hashing");
    group.measurement_time(Duration::from_secs(2)).sample_size(20);

    let mut r = rng::seeded(2);
    let db_real = rng::gauss_matrix(&mut r, 2_000, 64, 1.0);
    let q_real = rng::gauss_matrix(&mut r, 50, 64, 1.0);

    group.bench_function("pack_2000x64", |bench| {
        bench.iter(|| black_box(BitCodes::from_real(&db_real)));
    });

    let db = BitCodes::from_real(&db_real);
    let q = BitCodes::from_real(&q_real);
    let ranker = HammingRanker::new(db);

    group.bench_function("rank_one_query_db2000", |bench| {
        bench.iter(|| black_box(ranker.rank(&q, 0)));
    });

    let rel = |qi: usize, di: usize| (qi * 31 + di * 7) % 5 == 0;
    group.bench_function("map_50q_db2000", |bench| {
        bench.iter(|| black_box(mean_average_precision(&ranker, &q, &rel, 2_000)));
    });

    group.bench_function("pr_curve_50q_db2000", |bench| {
        bench.iter(|| black_box(pr_curve(&ranker, &q, &rel)));
    });

    group.finish();
}

criterion_group!(benches, bench_hashing);
criterion_main!(benches);
