//! The `uhscm` command-line entry point. All logic lives in
//! [`uhscm::cli`]; this binary only wires argv/stdout/exit codes.

use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let inv = match uhscm::cli::parse_invocation(&args) {
        Ok(inv) => inv,
        Err(e) => {
            eprintln!("{e}\n\n{}", uhscm::cli::USAGE);
            return ExitCode::from(2);
        }
    };
    match uhscm::cli::run_invocation(&inv) {
        Ok(output) => {
            print!("{output}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("{e}");
            ExitCode::FAILURE
        }
    }
}
