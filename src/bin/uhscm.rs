//! The `uhscm` command-line entry point. All logic lives in
//! [`uhscm::cli`]; this binary only wires argv/stdout/exit codes.

use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cmd = match uhscm::cli::parse(&args) {
        Ok(cmd) => cmd,
        Err(e) => {
            eprintln!("{e}\n\n{}", uhscm::cli::USAGE);
            return ExitCode::from(2);
        }
    };
    match uhscm::cli::run(&cmd) {
        Ok(output) => {
            print!("{output}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("{e}");
            ExitCode::FAILURE
        }
    }
}
