//! The `uhscm` command-line tool: train, evaluate and query hashing models
//! over persisted artifacts.
//!
//! Because every dataset in this reproduction is synthesized
//! deterministically from a seed, a "model bundle" is three small files in
//! a directory:
//!
//! * `model.nn` — the hashing network ([`crate::nn::Mlp`] format),
//! * `db.codes` — bit-packed database codes ([`crate::eval::BitCodes`]),
//! * `meta.txt` — `key=value` lines recording the dataset recipe.
//!
//! Subcommands:
//!
//! ```text
//! uhscm train   --out DIR [--dataset cifar|nus|flickr] [--bits K]
//!               [--epochs N] [--seed S] [--train N --query N --database N]
//! uhscm eval    --bundle DIR          # MAP over the bundle's query split
//! uhscm query   --bundle DIR --id Q [--top K]
//! uhscm info    --bundle DIR
//! uhscm serve   --bundle DIR [--db-store DIR] [--addr HOST:PORT] [--shards N]
//!               [--max-batch N] [--max-wait-ms MS] [--queue-cap N]
//!               [--readonly true|false] [--max-top-k N]
//! uhscm db build  --out DIR [--items N] [--bits K] [--dim D] [--seed S]
//!                 [--chunk N] [--dataset cifar|nus|flickr]
//! uhscm db info   --store DIR
//! uhscm db verify --store DIR [--queries N] [--top K]
//! ```
//!
//! `serve` puts the bundle behind the `uhscm-serve` TCP front-end (sharded
//! Hamming index, batched encoding, admission control, and — unless
//! `--readonly true` — live `insert`/`remove`/`reload` mutations). It
//! prints the bound address, then drains gracefully when stdin closes —
//! which lets scripts and the CI smoke test drive a full start → mutate →
//! query → drain cycle without signals.
//!
//! The `db` family manages **out-of-core** code databases in the
//! `uhscm-store` segment format, sized beyond what a bundle's `db.codes`
//! comfortably holds: `db build` streams a synthetic database through a
//! randomly-initialized hashing network into `DIR/segments.uhss` in
//! bounded memory (one `--chunk` of latents at a time), `db info` verifies
//! and summarizes a store, and `db verify` proves the store-backed index
//! returns top-k hits bitwise-identical to the in-memory index. `serve
//! --db-store DIR` then serves straight from the store, one index band per
//! segment, without ever concatenating the database in memory.

use crate::core::pipeline::{Pipeline, SimilaritySource};
use crate::core::UhscmConfig;
use crate::data::{Dataset, DatasetConfig, DatasetKind, LatentStream};
use crate::eval::{mean_average_precision, top_k, BitCodes, HammingRanker};
use crate::nn::Mlp;
use crate::store::{store_path, StoreError, StoreReader, StoreWriter};
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::fs;
use std::path::{Path, PathBuf};

/// A parsed CLI invocation.
#[derive(Debug, Clone, PartialEq)]
pub enum Command {
    Train(TrainArgs),
    Eval { bundle: PathBuf },
    Query { bundle: PathBuf, id: usize, top: usize },
    Info { bundle: PathBuf },
    Serve(ServeArgs),
    DbBuild(DbBuildArgs),
    DbInfo { store: PathBuf },
    DbVerify { store: PathBuf, queries: usize, top: usize },
    Help,
}

/// Arguments of `uhscm serve`.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeArgs {
    pub bundle: PathBuf,
    /// Serve the database from an `uhscm-store` segment store directory
    /// instead of the bundle's `db.codes` (the bundle still provides the
    /// model). One index band per on-disk segment.
    pub db_store: Option<PathBuf>,
    pub addr: String,
    pub shards: usize,
    pub max_batch: usize,
    pub max_wait_ms: u64,
    pub queue_cap: usize,
    /// Refuse the write path (`insert`/`remove`/`reload`) at the protocol
    /// layer while still answering queries.
    pub readonly: bool,
    /// Largest `top_k` a query frame may request before it is refused
    /// `bad_request` (see [`uhscm_serve::ServeConfig::max_top_k`]).
    pub max_top_k: usize,
}

impl Default for ServeArgs {
    fn default() -> Self {
        let config = uhscm_serve::ServeConfig::default();
        Self {
            bundle: PathBuf::from("uhscm-bundle"),
            db_store: None,
            addr: config.addr,
            shards: config.shards,
            max_batch: config.max_batch,
            max_wait_ms: config.max_wait.as_millis() as u64,
            queue_cap: config.queue_cap,
            readonly: !config.writable,
            max_top_k: config.max_top_k,
        }
    }
}

/// Arguments of `uhscm train`.
#[derive(Debug, Clone, PartialEq)]
pub struct TrainArgs {
    pub out: PathBuf,
    pub dataset: DatasetKind,
    pub bits: usize,
    pub epochs: usize,
    pub seed: u64,
    pub n_train: usize,
    pub n_query: usize,
    pub n_database: usize,
}

impl Default for TrainArgs {
    fn default() -> Self {
        Self {
            out: PathBuf::from("uhscm-bundle"),
            dataset: DatasetKind::Cifar10Like,
            bits: 64,
            epochs: 30,
            seed: 42,
            n_train: 800,
            n_query: 200,
            n_database: 2_400,
        }
    }
}

/// Arguments of `uhscm db build`.
#[derive(Debug, Clone, PartialEq)]
pub struct DbBuildArgs {
    /// Output directory; receives `model.nn`, `segments.uhss`, `store.meta`.
    pub out: PathBuf,
    pub dataset: DatasetKind,
    /// Database items to generate, encode, and store.
    pub items: usize,
    pub bits: usize,
    /// Latent feature dimension (the hashing network's input width).
    pub dim: usize,
    pub seed: u64,
    /// Items generated and encoded per streaming chunk — the memory
    /// high-water mark, independent of `items`.
    pub chunk: usize,
}

impl Default for DbBuildArgs {
    fn default() -> Self {
        Self {
            out: PathBuf::from("uhscm-db"),
            dataset: DatasetKind::Cifar10Like,
            items: 10_000,
            bits: 64,
            dim: 64,
            seed: 42,
            chunk: 65_536,
        }
    }
}

/// Errors surfaced to the CLI user.
#[derive(Debug)]
pub enum CliError {
    Usage(String),
    Io(std::io::Error),
    Corrupt(String),
}

impl From<std::io::Error> for CliError {
    fn from(e: std::io::Error) -> Self {
        CliError::Io(e)
    }
}

impl std::fmt::Display for CliError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CliError::Usage(msg) => write!(f, "usage error: {msg}"),
            CliError::Io(e) => write!(f, "i/o error: {e}"),
            CliError::Corrupt(msg) => write!(f, "artifact error: {msg}"),
        }
    }
}

impl std::error::Error for CliError {}

/// The help text.
pub const USAGE: &str = "\
uhscm — unsupervised hashing with semantic concept mining

USAGE:
  uhscm train --out DIR [--dataset cifar|nus|flickr] [--bits K]
              [--epochs N] [--seed S] [--train N --query N --database N]
  uhscm eval  --bundle DIR
  uhscm query --bundle DIR --id QUERY_INDEX [--top K]
  uhscm info  --bundle DIR
  uhscm serve --bundle DIR [--db-store DIR] [--addr HOST:PORT] [--shards N]
              [--max-batch N] [--max-wait-ms MS] [--queue-cap N]
              [--readonly true|false] [--max-top-k N]
  uhscm db build  --out DIR [--items N] [--bits K] [--dim D] [--seed S]
                  [--chunk N] [--dataset cifar|nus|flickr]
  uhscm db info   --store DIR
  uhscm db verify --store DIR [--queries N] [--top K]

`db build` streams an `--items`-sized synthetic database through a seeded
hashing network into the checksummed `uhscm-store` segment format, holding
only `--chunk` items in memory at a time; `serve --db-store DIR` serves it
with one index band per segment, and `db verify` proves the store-backed
top-k matches the in-memory index bit for bit.

GLOBAL FLAGS:
  --trace-out FILE   write a JSON-lines telemetry trace to FILE and print a
                     metric summary (equivalent to UHSCM_OBS=FILE)
";

/// A full CLI invocation: the subcommand plus global flags.
#[derive(Debug, Clone, PartialEq)]
pub struct Invocation {
    pub command: Command,
    /// `--trace-out FILE`: enable `uhscm-obs` tracing to `FILE`.
    pub trace_out: Option<PathBuf>,
}

/// Parse argv, extracting the global `--trace-out FILE` flag (accepted
/// anywhere on the command line) and parsing the rest as a [`Command`].
pub fn parse_invocation(args: &[String]) -> Result<Invocation, CliError> {
    let mut trace_out = None;
    let mut rest = Vec::with_capacity(args.len());
    let mut i = 0;
    while i < args.len() {
        if args[i] == "--trace-out" {
            let v = args
                .get(i + 1)
                .ok_or_else(|| CliError::Usage("--trace-out needs a file path".into()))?;
            trace_out = Some(PathBuf::from(v));
            i += 2;
        } else {
            rest.push(args[i].clone());
            i += 1;
        }
    }
    Ok(Invocation { command: parse(&rest)?, trace_out })
}

/// Execute a full invocation: enable tracing if requested, run the command,
/// and append the telemetry summary when tracing was active (whether via
/// `--trace-out` or the `UHSCM_OBS` environment variable).
pub fn run_invocation(inv: &Invocation) -> Result<String, CliError> {
    if let Some(path) = &inv.trace_out {
        uhscm_obs::enable_to_file(path)?;
    }
    let mut out = run(&inv.command)?;
    if let Some(summary) = uhscm_obs::finish() {
        out.push_str(&summary);
    }
    Ok(out)
}

/// Parse a CLI argument vector (without the program name).
pub fn parse(args: &[String]) -> Result<Command, CliError> {
    let mut it = args.iter();
    let sub = match it.next() {
        None => return Ok(Command::Help),
        Some(s) => s.as_str(),
    };
    let mut flags: BTreeMap<String, String> = BTreeMap::new();
    let mut rest: Vec<&String> = it.collect();
    // `db` takes a nested action as a second positional before the flags.
    let mut db_action = "";
    if sub == "db" {
        match rest.first() {
            Some(a) if !a.starts_with("--") => db_action = rest.remove(0).as_str(),
            _ => {
                return Err(CliError::Usage(
                    "db needs an action: db build|info|verify [--flags]".into(),
                ))
            }
        }
    }
    let mut i = 0;
    while i < rest.len() {
        let key = rest[i]
            .strip_prefix("--")
            .ok_or_else(|| CliError::Usage(format!("expected --flag, got '{}'", rest[i])))?;
        let value =
            rest.get(i + 1).ok_or_else(|| CliError::Usage(format!("--{key} needs a value")))?;
        flags.insert(key.to_string(), value.to_string());
        i += 2;
    }
    let bundle = |flags: &BTreeMap<String, String>| -> Result<PathBuf, CliError> {
        flags
            .get("bundle")
            .map(PathBuf::from)
            .ok_or_else(|| CliError::Usage("--bundle DIR is required".into()))
    };
    match sub {
        "help" | "--help" | "-h" => Ok(Command::Help),
        "train" => {
            let mut t = TrainArgs::default();
            for (k, v) in &flags {
                match k.as_str() {
                    "out" => t.out = PathBuf::from(v),
                    "dataset" => t.dataset = parse_dataset(v)?,
                    "bits" => t.bits = parse_num(k, v)?,
                    "epochs" => t.epochs = parse_num(k, v)?,
                    "seed" => t.seed = parse_num(k, v)? as u64,
                    "train" => t.n_train = parse_num(k, v)?,
                    "query" => t.n_query = parse_num(k, v)?,
                    "database" => t.n_database = parse_num(k, v)?,
                    other => return Err(CliError::Usage(format!("unknown flag --{other}"))),
                }
            }
            Ok(Command::Train(t))
        }
        "eval" => Ok(Command::Eval { bundle: bundle(&flags)? }),
        "query" => {
            let id = flags
                .get("id")
                .ok_or_else(|| CliError::Usage("--id QUERY_INDEX is required".into()))
                .and_then(|v| parse_num("id", v))?;
            let top = match flags.get("top") {
                Some(v) => parse_num("top", v)?,
                None => 10,
            };
            Ok(Command::Query { bundle: bundle(&flags)?, id, top })
        }
        "info" => Ok(Command::Info { bundle: bundle(&flags)? }),
        "serve" => {
            let mut s = ServeArgs { bundle: bundle(&flags)?, ..ServeArgs::default() };
            for (k, v) in &flags {
                match k.as_str() {
                    "bundle" => {}
                    "db-store" => s.db_store = Some(PathBuf::from(v)),
                    "addr" => s.addr = v.clone(),
                    "shards" => s.shards = parse_num(k, v)?,
                    "max-batch" => s.max_batch = parse_num(k, v)?,
                    "max-wait-ms" => s.max_wait_ms = parse_num(k, v)? as u64,
                    "queue-cap" => s.queue_cap = parse_num(k, v)?,
                    "readonly" => s.readonly = parse_bool(k, v)?,
                    "max-top-k" => s.max_top_k = parse_num(k, v)?,
                    other => return Err(CliError::Usage(format!("unknown flag --{other}"))),
                }
            }
            Ok(Command::Serve(s))
        }
        "db" => {
            let store = |flags: &BTreeMap<String, String>| -> Result<PathBuf, CliError> {
                flags
                    .get("store")
                    .map(PathBuf::from)
                    .ok_or_else(|| CliError::Usage("--store DIR is required".into()))
            };
            match db_action {
                "build" => {
                    let mut b = DbBuildArgs::default();
                    for (k, v) in &flags {
                        match k.as_str() {
                            "out" => b.out = PathBuf::from(v),
                            "dataset" => b.dataset = parse_dataset(v)?,
                            "items" => b.items = parse_num(k, v)?,
                            "bits" => b.bits = parse_num(k, v)?,
                            "dim" => b.dim = parse_num(k, v)?,
                            "seed" => b.seed = parse_num(k, v)? as u64,
                            "chunk" => b.chunk = parse_num(k, v)?,
                            other => {
                                return Err(CliError::Usage(format!("unknown flag --{other}")))
                            }
                        }
                    }
                    Ok(Command::DbBuild(b))
                }
                "info" => {
                    for k in flags.keys() {
                        if k != "store" {
                            return Err(CliError::Usage(format!("unknown flag --{k}")));
                        }
                    }
                    Ok(Command::DbInfo { store: store(&flags)? })
                }
                "verify" => {
                    let mut queries = 25;
                    let mut top = 10;
                    for (k, v) in &flags {
                        match k.as_str() {
                            "store" => {}
                            "queries" => queries = parse_num(k, v)?,
                            "top" => top = parse_num(k, v)?,
                            other => {
                                return Err(CliError::Usage(format!("unknown flag --{other}")))
                            }
                        }
                    }
                    Ok(Command::DbVerify { store: store(&flags)?, queries, top })
                }
                other => Err(CliError::Usage(format!(
                    "unknown db action '{other}' (expected build|info|verify)"
                ))),
            }
        }
        other => Err(CliError::Usage(format!("unknown subcommand '{other}'"))),
    }
}

fn parse_dataset(v: &str) -> Result<DatasetKind, CliError> {
    match v.to_lowercase().as_str() {
        "cifar" | "cifar10" => Ok(DatasetKind::Cifar10Like),
        "nus" | "nuswide" | "nus-wide" => Ok(DatasetKind::NusWideLike),
        "flickr" | "mirflickr" => Ok(DatasetKind::FlickrLike),
        other => {
            Err(CliError::Usage(format!("unknown dataset '{other}' (expected cifar|nus|flickr)")))
        }
    }
}

fn parse_num(key: &str, v: &str) -> Result<usize, CliError> {
    v.parse::<usize>().map_err(|_| CliError::Usage(format!("--{key} expects a number, got '{v}'")))
}

/// Every flag takes a value, so booleans are spelled out explicitly
/// (`--readonly true`) rather than by bare presence.
fn parse_bool(key: &str, v: &str) -> Result<bool, CliError> {
    match v {
        "true" | "1" | "yes" => Ok(true),
        "false" | "0" | "no" => Ok(false),
        other => Err(CliError::Usage(format!("--{key} expects true|false, got '{other}'"))),
    }
}

/// Execute a command, writing human-readable output into a string
/// (separated from `main` so the logic is unit-testable).
pub fn run(cmd: &Command) -> Result<String, CliError> {
    match cmd {
        Command::Help => Ok(USAGE.to_string()),
        Command::Train(args) => run_train(args),
        Command::Eval { bundle } => run_eval(bundle),
        Command::Query { bundle, id, top } => run_query(bundle, *id, *top),
        Command::Info { bundle } => run_info(bundle),
        Command::Serve(args) => run_serve(args),
        Command::DbBuild(args) => run_db_build(args),
        Command::DbInfo { store } => run_db_info(store),
        Command::DbVerify { store, queries, top } => run_db_verify(store, *queries, *top),
    }
}

/// Store errors keep their i/o flavor; format violations surface as
/// corruption (same split `Mlp::load` failures get via [`CliError`]).
fn store_err(e: StoreError) -> CliError {
    match e {
        StoreError::Io(io) => CliError::Io(io),
        other => CliError::Corrupt(other.to_string()),
    }
}

fn dataset_from_meta(meta: &BTreeMap<String, String>) -> Result<(Dataset, u64), CliError> {
    let get =
        |k: &str| meta.get(k).ok_or_else(|| CliError::Corrupt(format!("meta.txt missing '{k}'")));
    let kind = parse_dataset(get("dataset")?)?;
    let parse_field = |k: &str| -> Result<usize, CliError> {
        get(k)?
            .parse::<usize>()
            .map_err(|_| CliError::Corrupt(format!("meta.txt field '{k}' is not a number")))
    };
    let seed = parse_field("seed")? as u64;
    let config = DatasetConfig {
        n_train: parse_field("n_train")?,
        n_query: parse_field("n_query")?,
        n_database: parse_field("n_database")?,
        ..DatasetConfig::default()
    };
    Ok((Dataset::generate(kind, &config, seed), seed))
}

fn run_train(args: &TrainArgs) -> Result<String, CliError> {
    let config = DatasetConfig {
        n_train: args.n_train,
        n_query: args.n_query,
        n_database: args.n_database,
        ..DatasetConfig::default()
    };
    let dataset = Dataset::generate(args.dataset, &config, args.seed);
    let pipeline = Pipeline::new(&dataset, args.seed);
    let uhscm = UhscmConfig {
        bits: args.bits,
        epochs: args.epochs,
        ..UhscmConfig::for_dataset(args.dataset)
    };
    let model = pipeline.train(&SimilaritySource::default(), &uhscm);
    let db_codes = model.encode(&pipeline.features_of(&dataset.split.database));

    fs::create_dir_all(&args.out)?;
    let mut net_file = fs::File::create(args.out.join("model.nn"))?;
    model.network().save(&mut net_file).map_err(CliError::Io)?;
    let mut codes_file = fs::File::create(args.out.join("db.codes"))?;
    db_codes.save(&mut codes_file)?;
    let meta = format!(
        "dataset={}\nbits={}\nepochs={}\nseed={}\nn_train={}\nn_query={}\nn_database={}\n",
        match args.dataset {
            DatasetKind::Cifar10Like => "cifar",
            DatasetKind::NusWideLike => "nus",
            DatasetKind::FlickrLike => "flickr",
        },
        args.bits,
        args.epochs,
        args.seed,
        args.n_train,
        args.n_query,
        args.n_database
    );
    fs::write(args.out.join("meta.txt"), meta)?;
    Ok(format!(
        "trained {}-bit UHSCM on {} ({} train items), bundle written to {}\n",
        args.bits,
        args.dataset.name(),
        args.n_train,
        args.out.display()
    ))
}

fn read_meta(bundle: &Path) -> Result<BTreeMap<String, String>, CliError> {
    let raw = fs::read_to_string(bundle.join("meta.txt"))?;
    let mut meta = BTreeMap::new();
    for line in raw.lines() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let (k, v) = line
            .split_once('=')
            .ok_or_else(|| CliError::Corrupt(format!("bad meta line '{line}'")))?;
        meta.insert(k.to_string(), v.to_string());
    }
    Ok(meta)
}

struct Bundle {
    dataset: Dataset,
    network: Mlp,
    db_codes: BitCodes,
    seed: u64,
}

fn load_bundle(bundle: &Path) -> Result<Bundle, CliError> {
    let meta = read_meta(bundle)?;
    let (dataset, seed) = dataset_from_meta(&meta)?;
    let mut net_file = fs::File::open(bundle.join("model.nn"))?;
    let network =
        Mlp::load(&mut net_file).map_err(|e| CliError::Corrupt(format!("model.nn: {e}")))?;
    let mut codes_file = fs::File::open(bundle.join("db.codes"))?;
    let db_codes = BitCodes::load(&mut codes_file)?;
    if db_codes.len() != dataset.split.database.len() {
        return Err(CliError::Corrupt(format!(
            "db.codes has {} codes but the dataset recipe yields {} database items",
            db_codes.len(),
            dataset.split.database.len()
        )));
    }
    Ok(Bundle { dataset, network, db_codes, seed })
}

fn query_codes(bundle: &Bundle) -> BitCodes {
    let pipeline = Pipeline::new(&bundle.dataset, bundle.seed);
    BitCodes::from_real(&bundle.network.infer(&pipeline.features_of(&bundle.dataset.split.query)))
}

fn run_eval(path: &Path) -> Result<String, CliError> {
    let bundle = load_bundle(path)?;
    let queries = query_codes(&bundle);
    let ranker = HammingRanker::new(bundle.db_codes.clone());
    let ds = &bundle.dataset;
    let rel = |qi: usize, di: usize| {
        crate::data::share_label(&ds.labels[ds.split.query[qi]], &ds.labels[ds.split.database[di]])
    };
    let map = mean_average_precision(&ranker, &queries, &rel, ds.split.database.len());
    Ok(format!(
        "{} | {} bits | {} queries vs {} database items | MAP {:.4}\n",
        ds.kind.name(),
        bundle.db_codes.bits(),
        queries.len(),
        bundle.db_codes.len(),
        map
    ))
}

fn run_query(path: &Path, id: usize, top: usize) -> Result<String, CliError> {
    let bundle = load_bundle(path)?;
    let queries = query_codes(&bundle);
    if id >= queries.len() {
        return Err(CliError::Usage(format!(
            "query index {id} out of range (bundle has {} queries)",
            queries.len()
        )));
    }
    let ds = &bundle.dataset;
    let ranker = HammingRanker::new(bundle.db_codes.clone());
    let rel = |qi: usize, di: usize| {
        crate::data::share_label(&ds.labels[ds.split.query[qi]], &ds.labels[ds.split.database[di]])
    };
    let labels_of = |item: usize| -> String {
        ds.labels[item].iter().map(|&c| ds.class_names[c].clone()).collect::<Vec<_>>().join("+")
    };
    let mut out =
        format!("query {id} labels [{}], top-{top} neighbours:\n", labels_of(ds.split.query[id]));
    for hit in top_k(&ranker, &queries, id, &rel, top) {
        writeln!(
            out,
            "  d={:>3}  db[{:>6}]  [{}] {}",
            hit.distance,
            hit.index,
            labels_of(ds.split.database[hit.index]),
            if hit.relevant { "✓" } else { "✗" }
        )
        .expect("writing to string cannot fail");
    }
    Ok(out)
}

/// Serve a bundle over TCP until stdin closes, then drain gracefully.
///
/// Unlike the offline subcommands this one only needs `model.nn` and the
/// code database — `db.codes`, or with `--db-store DIR` an `uhscm-store`
/// segment store streamed in segment by segment. The dataset recipe is not
/// regenerated, so startup is fast even for large databases. The bound address is printed (and flushed)
/// immediately so scripts driving a piped child can discover the ephemeral
/// port; the quiescent "close stdin to stop" loop doubles as the drain
/// trigger for the CI smoke test.
fn run_serve(args: &ServeArgs) -> Result<String, CliError> {
    use std::io::Write as _;

    let mut net_file = fs::File::open(args.bundle.join("model.nn"))?;
    let network =
        Mlp::load(&mut net_file).map_err(|e| CliError::Corrupt(format!("model.nn: {e}")))?;
    let engine = match &args.db_store {
        // Store-backed: stream segments straight into index bands (one
        // band per segment) without concatenating the database in memory.
        Some(dir) => {
            let mut reader = StoreReader::open(&store_path(dir)).map_err(store_err)?;
            let mut genesis = uhscm_serve::GenesisBuilder::new(reader.bits());
            while let Some(segment) = reader.next_segment().map_err(store_err)? {
                genesis.push(segment);
            }
            uhscm_serve::Engine::with_vocab_index(network, Vec::new(), genesis.finish())
                .map_err(|e| CliError::Corrupt(e.to_string()))?
        }
        None => {
            let mut codes_file = fs::File::open(args.bundle.join("db.codes"))?;
            let db_codes = BitCodes::load(&mut codes_file)?;
            uhscm_serve::Engine::new(network, &db_codes, args.shards)
                .map_err(|e| CliError::Corrupt(e.to_string()))?
        }
    };
    let (num_shards, db_len, db_bits) = (engine.num_shards(), engine.db_len(), engine.bits());
    let config = uhscm_serve::ServeConfig {
        addr: args.addr.clone(),
        shards: args.shards,
        max_batch: args.max_batch,
        max_wait: std::time::Duration::from_millis(args.max_wait_ms),
        queue_cap: args.queue_cap,
        writable: !args.readonly,
        max_top_k: args.max_top_k,
    };
    let server = uhscm_serve::Server::start(engine, &config).map_err(|e| match e {
        uhscm_serve::ServeError::Io(io) => CliError::Io(io),
        other => CliError::Corrupt(other.to_string()),
    })?;

    // Printed (not returned) so a parent process can read the ephemeral
    // port while the server is still running; flush because a piped stdout
    // is block-buffered.
    println!(
        "uhscm-serve listening on {} ({} shards, {} codes, {} bits, {}; close stdin to drain)",
        server.local_addr(),
        num_shards,
        db_len,
        db_bits,
        if args.readonly { "read-only" } else { "writable" }
    );
    std::io::stdout().flush()?;

    let mut line = String::new();
    let _ = std::io::stdin().read_line(&mut line);
    server.shutdown();
    Ok("uhscm-serve: drained cleanly\n".to_string())
}

fn run_info(path: &Path) -> Result<String, CliError> {
    let bundle = load_bundle(path)?;
    Ok(format!(
        "bundle: {}\n  dataset   : {}\n  bits      : {}\n  database  : {} codes\n  queries   : {}\n  network   : {} parameters\n",
        path.display(),
        bundle.dataset.kind.name(),
        bundle.db_codes.bits(),
        bundle.db_codes.len(),
        bundle.dataset.split.query.len(),
        bundle.network.param_count()
    ))
}

/// `db build`: stream-generate an `items`-sized database and encode it
/// into a segment store, never holding more than one `chunk` of latents
/// (plus one chunk's codes) in memory. The model is freshly initialized
/// from the seed and saved alongside the store so `serve --db-store` and
/// future queries encode with the exact network that built the database.
fn run_db_build(args: &DbBuildArgs) -> Result<String, CliError> {
    for (flag, v) in [("items", args.items), ("bits", args.bits), ("dim", args.dim)] {
        if v == 0 {
            return Err(CliError::Usage(format!("--{flag} must be at least 1")));
        }
    }
    let chunk = args.chunk.max(1);
    let started = std::time::Instant::now();

    let mut rng = crate::linalg::rng::seeded(args.seed);
    let hidden = [args.dim.div_ceil(2).max(1)];
    let model = Mlp::hashing_network(args.dim, &hidden, args.bits, &mut rng);
    fs::create_dir_all(&args.out)?;
    let mut net_file = fs::File::create(args.out.join("model.nn"))?;
    model.save(&mut net_file)?;

    let config = DatasetConfig { latent_dim: args.dim, ..DatasetConfig::default() };
    let mut stream = LatentStream::new(args.dataset, &config, args.items, args.seed);
    let mut writer = StoreWriter::create(&store_path(&args.out), args.bits).map_err(store_err)?;
    while let Some(batch) = stream.next_chunk(chunk) {
        writer.append(&BitCodes::from_real(&model.infer(&batch.latents))).map_err(store_err)?;
    }
    let summary = writer.finish().map_err(store_err)?;

    let meta = format!(
        "dataset={}\nitems={}\nbits={}\ndim={}\nseed={}\nchunk={}\n",
        args.dataset.name(),
        args.items,
        args.bits,
        args.dim,
        args.seed,
        chunk
    );
    fs::write(args.out.join("store.meta"), meta)?;

    let rate = summary.codes as f64 / started.elapsed().as_secs_f64().max(1e-9);
    Ok(format!(
        "built {}-bit store: {} codes in {} segments ({} payload bytes, {:.0} items/sec) -> {}\n",
        args.bits,
        summary.codes,
        summary.segments,
        summary.bytes,
        rate,
        args.out.display()
    ))
}

/// `db info`: verify every checksum by streaming the whole store through
/// the bounded-memory reader, then summarize it (with the build recipe
/// when a `store.meta` sits next to the segments).
fn run_db_info(store: &Path) -> Result<String, CliError> {
    let path = store_path(store);
    let mut reader = StoreReader::open(&path).map_err(store_err)?;
    let mut out = format!(
        "store: {}\n  bits      : {}\n  codes     : {}\n  segments  : {}\n",
        path.display(),
        reader.bits(),
        reader.len(),
        reader.segment_count()
    );
    let mut codes = 0usize;
    let mut largest = 0usize;
    while let Some(segment) = reader.next_segment().map_err(store_err)? {
        codes += segment.len();
        largest = largest.max(segment.len());
    }
    let _ =
        writeln!(out, "  verified  : {codes} codes, all checksums ok (largest segment {largest})");
    if let Ok(meta) = fs::read_to_string(store.join("store.meta")) {
        let recipe: Vec<&str> = meta.lines().map(str::trim).filter(|l| !l.is_empty()).collect();
        let _ = writeln!(out, "  recipe    : {}", recipe.join(" "));
    }
    Ok(out)
}

/// `db verify`: prove the store-backed genesis index (one band per on-disk
/// segment) returns hits bitwise-identical to an in-memory
/// [`uhscm_serve::ShardedIndex`] over the concatenated codes, at shard
/// counts 1, 2 and 4, using the store's own first codes as self-queries.
fn run_db_verify(store: &Path, queries: usize, top: usize) -> Result<String, CliError> {
    let path = store_path(store);
    let mut reader = StoreReader::open(&path).map_err(store_err)?;
    let mut genesis = uhscm_serve::GenesisBuilder::new(reader.bits());
    while let Some(segment) = reader.next_segment().map_err(store_err)? {
        genesis.push(segment);
    }
    let segments = genesis.num_segments();
    let store_index = genesis.finish();

    // Second pass: the oracle — everything concatenated in memory.
    let reader = StoreReader::open(&path).map_err(store_err)?;
    let full = reader.read_all().map_err(store_err)?;
    if full.is_empty() {
        return Ok(format!("store {} is empty; nothing to verify\n", path.display()));
    }
    let nq = queries.clamp(1, full.len());
    let top = top.clamp(1, full.len());
    let probes = full.slice(0..nq);
    for shards in [1usize, 2, 4] {
        let mem_index = uhscm_serve::ShardedIndex::new(&full, shards);
        for qi in 0..nq {
            let got = store_index.search(&probes, qi, top);
            let want = mem_index.search(&probes, qi, top);
            if got != want {
                return Err(CliError::Corrupt(format!(
                    "store-backed top-{top} diverges from the in-memory index at \
                     query {qi} with {shards} shards ({} segments)",
                    segments
                )));
            }
        }
    }
    Ok(format!(
        "store {}: {} codes in {} segments; store-backed top-{top} bitwise-identical \
         to the in-memory index (shards 1/2/4, {nq} self-queries)\n",
        path.display(),
        full.len(),
        segments
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn parse_train_with_defaults_and_overrides() {
        let cmd = parse(&argv(&["train", "--out", "/tmp/x", "--bits", "32", "--dataset", "nus"]))
            .unwrap();
        match cmd {
            Command::Train(t) => {
                assert_eq!(t.out, PathBuf::from("/tmp/x"));
                assert_eq!(t.bits, 32);
                assert_eq!(t.dataset, DatasetKind::NusWideLike);
                assert_eq!(t.epochs, TrainArgs::default().epochs);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parse_rejects_unknown_flags_and_commands() {
        assert!(matches!(parse(&argv(&["train", "--nope", "1"])), Err(CliError::Usage(_))));
        assert!(matches!(parse(&argv(&["frobnicate"])), Err(CliError::Usage(_))));
        assert!(matches!(parse(&argv(&["train", "--bits", "lots"])), Err(CliError::Usage(_))));
        assert!(matches!(
            parse(&argv(&["query", "--bundle", "x"])), // missing --id
            Err(CliError::Usage(_))
        ));
    }

    #[test]
    fn parse_serve_with_defaults_and_overrides() {
        let cmd = parse(&argv(&[
            "serve",
            "--bundle",
            "/tmp/b",
            "--addr",
            "127.0.0.1:9000",
            "--shards",
            "4",
            "--max-wait-ms",
            "3",
            "--readonly",
            "true",
            "--max-top-k",
            "64",
        ]))
        .unwrap();
        match cmd {
            Command::Serve(s) => {
                assert_eq!(s.bundle, PathBuf::from("/tmp/b"));
                assert_eq!(s.addr, "127.0.0.1:9000");
                assert_eq!(s.shards, 4);
                assert_eq!(s.max_wait_ms, 3);
                assert_eq!(s.max_batch, ServeArgs::default().max_batch);
                assert_eq!(s.queue_cap, ServeArgs::default().queue_cap);
                assert!(s.readonly);
                assert_eq!(s.max_top_k, 64);
            }
            other => panic!("unexpected {other:?}"),
        }
        // Writable is the default; booleans must be spelled out.
        assert!(!ServeArgs::default().readonly);
        assert!(matches!(
            parse(&argv(&["serve", "--bundle", "b", "--readonly", "maybe"])),
            Err(CliError::Usage(_))
        ));
        // --bundle is mandatory, unknown flags rejected.
        assert!(matches!(parse(&argv(&["serve"])), Err(CliError::Usage(_))));
        assert!(matches!(
            parse(&argv(&["serve", "--bundle", "b", "--nope", "1"])),
            Err(CliError::Usage(_))
        ));
    }

    #[test]
    fn parse_db_actions_with_defaults_and_overrides() {
        let cmd = parse(&argv(&[
            "db", "build", "--out", "/tmp/s", "--items", "500", "--bits", "16", "--dim", "8",
            "--chunk", "200", "--seed", "7",
        ]))
        .unwrap();
        match cmd {
            Command::DbBuild(b) => {
                assert_eq!(b.out, PathBuf::from("/tmp/s"));
                assert_eq!((b.items, b.bits, b.dim, b.chunk, b.seed), (500, 16, 8, 200, 7));
                assert_eq!(b.dataset, DbBuildArgs::default().dataset);
            }
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(
            parse(&argv(&["db", "info", "--store", "/tmp/s"])).unwrap(),
            Command::DbInfo { store: PathBuf::from("/tmp/s") }
        );
        assert_eq!(
            parse(&argv(&["db", "verify", "--store", "/tmp/s", "--queries", "9"])).unwrap(),
            Command::DbVerify { store: PathBuf::from("/tmp/s"), queries: 9, top: 10 }
        );
        // The action is a mandatory positional; flags and stores are checked.
        assert!(matches!(parse(&argv(&["db"])), Err(CliError::Usage(_))));
        assert!(matches!(parse(&argv(&["db", "--store", "x"])), Err(CliError::Usage(_))));
        assert!(matches!(parse(&argv(&["db", "shrink"])), Err(CliError::Usage(_))));
        assert!(matches!(parse(&argv(&["db", "info"])), Err(CliError::Usage(_))));
        assert!(matches!(parse(&argv(&["db", "build", "--nope", "1"])), Err(CliError::Usage(_))));
    }

    #[test]
    fn parse_serve_db_store_flag() {
        let cmd = parse(&argv(&["serve", "--bundle", "b", "--db-store", "/tmp/s"])).unwrap();
        match cmd {
            Command::Serve(s) => assert_eq!(s.db_store, Some(PathBuf::from("/tmp/s"))),
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(ServeArgs::default().db_store, None);
    }

    #[test]
    fn db_build_info_verify_round_trip() {
        let dir = std::env::temp_dir().join(format!("uhscm-cli-db-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        let args = DbBuildArgs {
            out: dir.clone(),
            items: 600,
            bits: 16,
            dim: 8,
            chunk: 250, // 600 items -> segments of 250/250/100
            ..DbBuildArgs::default()
        };
        let msg = run(&Command::DbBuild(args)).unwrap();
        assert!(msg.contains("600 codes in 3 segments"), "{msg}");
        assert!(dir.join("model.nn").exists() && dir.join("store.meta").exists());

        let info = run(&Command::DbInfo { store: dir.clone() }).unwrap();
        assert!(info.contains("codes     : 600"), "{info}");
        assert!(info.contains("all checksums ok"), "{info}");
        assert!(info.contains("items=600"), "{info}");

        let verify = run(&Command::DbVerify { store: dir.clone(), queries: 40, top: 12 }).unwrap();
        assert!(verify.contains("bitwise-identical"), "{verify}");
        assert!(verify.contains("3 segments"), "{verify}");

        // Rebuilding with the same recipe is byte-identical (stream +
        // model are both seed-deterministic).
        let dir2 = std::env::temp_dir().join(format!("uhscm-cli-db2-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir2);
        let args2 = DbBuildArgs {
            out: dir2.clone(),
            items: 600,
            bits: 16,
            dim: 8,
            chunk: 250,
            ..DbBuildArgs::default()
        };
        run(&Command::DbBuild(args2)).unwrap();
        assert_eq!(
            fs::read(store_path(&dir)).unwrap(),
            fs::read(store_path(&dir2)).unwrap(),
            "db build must be deterministic in its recipe"
        );
        let _ = fs::remove_dir_all(&dir);
        let _ = fs::remove_dir_all(&dir2);
    }

    #[test]
    fn db_info_on_missing_store_is_io_error() {
        let missing = PathBuf::from("/definitely/not/here");
        assert!(matches!(run(&Command::DbInfo { store: missing }), Err(CliError::Io(_))));
    }

    #[test]
    fn parse_help_variants() {
        assert_eq!(parse(&argv(&[])).unwrap(), Command::Help);
        assert_eq!(parse(&argv(&["help"])).unwrap(), Command::Help);
        assert_eq!(parse(&argv(&["--help"])).unwrap(), Command::Help);
    }

    #[test]
    fn train_eval_query_info_round_trip() {
        let dir = std::env::temp_dir().join(format!("uhscm-cli-test-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        let args = TrainArgs {
            out: dir.clone(),
            bits: 16,
            epochs: 3,
            n_train: 80,
            n_query: 20,
            n_database: 200,
            ..TrainArgs::default()
        };
        let msg = run(&Command::Train(args)).unwrap();
        assert!(msg.contains("bundle written"));

        let info = run(&Command::Info { bundle: dir.clone() }).unwrap();
        assert!(info.contains("16"), "{info}");
        assert!(info.contains("200 codes"), "{info}");

        let eval = run(&Command::Eval { bundle: dir.clone() }).unwrap();
        assert!(eval.contains("MAP"), "{eval}");

        let query = run(&Command::Query { bundle: dir.clone(), id: 0, top: 5 }).unwrap();
        assert_eq!(query.matches("d=").count(), 5, "{query}");

        // Out-of-range query id is a usage error.
        assert!(matches!(
            run(&Command::Query { bundle: dir.clone(), id: 999, top: 5 }),
            Err(CliError::Usage(_))
        ));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn eval_on_missing_bundle_is_io_error() {
        let missing = PathBuf::from("/definitely/not/here");
        assert!(matches!(run(&Command::Eval { bundle: missing }), Err(CliError::Io(_))));
    }

    #[test]
    fn corrupt_meta_is_detected() {
        let dir = std::env::temp_dir().join(format!("uhscm-cli-meta-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        fs::write(dir.join("meta.txt"), "this is not key value\n").unwrap();
        assert!(matches!(run(&Command::Info { bundle: dir.clone() }), Err(CliError::Corrupt(_))));
        let _ = fs::remove_dir_all(&dir);
    }
}
