//! The `uhscm` command-line tool: train, evaluate and query hashing models
//! over persisted artifacts.
//!
//! Because every dataset in this reproduction is synthesized
//! deterministically from a seed, a "model bundle" is three small files in
//! a directory:
//!
//! * `model.nn` — the hashing network ([`crate::nn::Mlp`] format),
//! * `db.codes` — bit-packed database codes ([`crate::eval::BitCodes`]),
//! * `meta.txt` — `key=value` lines recording the dataset recipe.
//!
//! Subcommands:
//!
//! ```text
//! uhscm train   --out DIR [--dataset cifar|nus|flickr] [--bits K]
//!               [--epochs N] [--seed S] [--train N --query N --database N]
//! uhscm eval    --bundle DIR          # MAP over the bundle's query split
//! uhscm query   --bundle DIR --id Q [--top K]
//! uhscm info    --bundle DIR
//! uhscm serve   --bundle DIR [--addr HOST:PORT] [--shards N]
//!               [--max-batch N] [--max-wait-ms MS] [--queue-cap N]
//!               [--readonly true|false] [--max-top-k N]
//! ```
//!
//! `serve` puts the bundle behind the `uhscm-serve` TCP front-end (sharded
//! Hamming index, batched encoding, admission control, and — unless
//! `--readonly true` — live `insert`/`remove`/`reload` mutations). It
//! prints the bound address, then drains gracefully when stdin closes —
//! which lets scripts and the CI smoke test drive a full start → mutate →
//! query → drain cycle without signals.

use crate::core::pipeline::{Pipeline, SimilaritySource};
use crate::core::UhscmConfig;
use crate::data::{Dataset, DatasetConfig, DatasetKind};
use crate::eval::{mean_average_precision, top_k, BitCodes, HammingRanker};
use crate::nn::Mlp;
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::fs;
use std::path::{Path, PathBuf};

/// A parsed CLI invocation.
#[derive(Debug, Clone, PartialEq)]
pub enum Command {
    Train(TrainArgs),
    Eval { bundle: PathBuf },
    Query { bundle: PathBuf, id: usize, top: usize },
    Info { bundle: PathBuf },
    Serve(ServeArgs),
    Help,
}

/// Arguments of `uhscm serve`.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeArgs {
    pub bundle: PathBuf,
    pub addr: String,
    pub shards: usize,
    pub max_batch: usize,
    pub max_wait_ms: u64,
    pub queue_cap: usize,
    /// Refuse the write path (`insert`/`remove`/`reload`) at the protocol
    /// layer while still answering queries.
    pub readonly: bool,
    /// Largest `top_k` a query frame may request before it is refused
    /// `bad_request` (see [`uhscm_serve::ServeConfig::max_top_k`]).
    pub max_top_k: usize,
}

impl Default for ServeArgs {
    fn default() -> Self {
        let config = uhscm_serve::ServeConfig::default();
        Self {
            bundle: PathBuf::from("uhscm-bundle"),
            addr: config.addr,
            shards: config.shards,
            max_batch: config.max_batch,
            max_wait_ms: config.max_wait.as_millis() as u64,
            queue_cap: config.queue_cap,
            readonly: !config.writable,
            max_top_k: config.max_top_k,
        }
    }
}

/// Arguments of `uhscm train`.
#[derive(Debug, Clone, PartialEq)]
pub struct TrainArgs {
    pub out: PathBuf,
    pub dataset: DatasetKind,
    pub bits: usize,
    pub epochs: usize,
    pub seed: u64,
    pub n_train: usize,
    pub n_query: usize,
    pub n_database: usize,
}

impl Default for TrainArgs {
    fn default() -> Self {
        Self {
            out: PathBuf::from("uhscm-bundle"),
            dataset: DatasetKind::Cifar10Like,
            bits: 64,
            epochs: 30,
            seed: 42,
            n_train: 800,
            n_query: 200,
            n_database: 2_400,
        }
    }
}

/// Errors surfaced to the CLI user.
#[derive(Debug)]
pub enum CliError {
    Usage(String),
    Io(std::io::Error),
    Corrupt(String),
}

impl From<std::io::Error> for CliError {
    fn from(e: std::io::Error) -> Self {
        CliError::Io(e)
    }
}

impl std::fmt::Display for CliError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CliError::Usage(msg) => write!(f, "usage error: {msg}"),
            CliError::Io(e) => write!(f, "i/o error: {e}"),
            CliError::Corrupt(msg) => write!(f, "bundle error: {msg}"),
        }
    }
}

impl std::error::Error for CliError {}

/// The help text.
pub const USAGE: &str = "\
uhscm — unsupervised hashing with semantic concept mining

USAGE:
  uhscm train --out DIR [--dataset cifar|nus|flickr] [--bits K]
              [--epochs N] [--seed S] [--train N --query N --database N]
  uhscm eval  --bundle DIR
  uhscm query --bundle DIR --id QUERY_INDEX [--top K]
  uhscm info  --bundle DIR
  uhscm serve --bundle DIR [--addr HOST:PORT] [--shards N]
              [--max-batch N] [--max-wait-ms MS] [--queue-cap N]
              [--readonly true|false] [--max-top-k N]

GLOBAL FLAGS:
  --trace-out FILE   write a JSON-lines telemetry trace to FILE and print a
                     metric summary (equivalent to UHSCM_OBS=FILE)
";

/// A full CLI invocation: the subcommand plus global flags.
#[derive(Debug, Clone, PartialEq)]
pub struct Invocation {
    pub command: Command,
    /// `--trace-out FILE`: enable `uhscm-obs` tracing to `FILE`.
    pub trace_out: Option<PathBuf>,
}

/// Parse argv, extracting the global `--trace-out FILE` flag (accepted
/// anywhere on the command line) and parsing the rest as a [`Command`].
pub fn parse_invocation(args: &[String]) -> Result<Invocation, CliError> {
    let mut trace_out = None;
    let mut rest = Vec::with_capacity(args.len());
    let mut i = 0;
    while i < args.len() {
        if args[i] == "--trace-out" {
            let v = args
                .get(i + 1)
                .ok_or_else(|| CliError::Usage("--trace-out needs a file path".into()))?;
            trace_out = Some(PathBuf::from(v));
            i += 2;
        } else {
            rest.push(args[i].clone());
            i += 1;
        }
    }
    Ok(Invocation { command: parse(&rest)?, trace_out })
}

/// Execute a full invocation: enable tracing if requested, run the command,
/// and append the telemetry summary when tracing was active (whether via
/// `--trace-out` or the `UHSCM_OBS` environment variable).
pub fn run_invocation(inv: &Invocation) -> Result<String, CliError> {
    if let Some(path) = &inv.trace_out {
        uhscm_obs::enable_to_file(path)?;
    }
    let mut out = run(&inv.command)?;
    if let Some(summary) = uhscm_obs::finish() {
        out.push_str(&summary);
    }
    Ok(out)
}

/// Parse a CLI argument vector (without the program name).
pub fn parse(args: &[String]) -> Result<Command, CliError> {
    let mut it = args.iter();
    let sub = match it.next() {
        None => return Ok(Command::Help),
        Some(s) => s.as_str(),
    };
    let mut flags: BTreeMap<String, String> = BTreeMap::new();
    let rest: Vec<&String> = it.collect();
    let mut i = 0;
    while i < rest.len() {
        let key = rest[i]
            .strip_prefix("--")
            .ok_or_else(|| CliError::Usage(format!("expected --flag, got '{}'", rest[i])))?;
        let value =
            rest.get(i + 1).ok_or_else(|| CliError::Usage(format!("--{key} needs a value")))?;
        flags.insert(key.to_string(), value.to_string());
        i += 2;
    }
    let bundle = |flags: &BTreeMap<String, String>| -> Result<PathBuf, CliError> {
        flags
            .get("bundle")
            .map(PathBuf::from)
            .ok_or_else(|| CliError::Usage("--bundle DIR is required".into()))
    };
    match sub {
        "help" | "--help" | "-h" => Ok(Command::Help),
        "train" => {
            let mut t = TrainArgs::default();
            for (k, v) in &flags {
                match k.as_str() {
                    "out" => t.out = PathBuf::from(v),
                    "dataset" => t.dataset = parse_dataset(v)?,
                    "bits" => t.bits = parse_num(k, v)?,
                    "epochs" => t.epochs = parse_num(k, v)?,
                    "seed" => t.seed = parse_num(k, v)? as u64,
                    "train" => t.n_train = parse_num(k, v)?,
                    "query" => t.n_query = parse_num(k, v)?,
                    "database" => t.n_database = parse_num(k, v)?,
                    other => return Err(CliError::Usage(format!("unknown flag --{other}"))),
                }
            }
            Ok(Command::Train(t))
        }
        "eval" => Ok(Command::Eval { bundle: bundle(&flags)? }),
        "query" => {
            let id = flags
                .get("id")
                .ok_or_else(|| CliError::Usage("--id QUERY_INDEX is required".into()))
                .and_then(|v| parse_num("id", v))?;
            let top = match flags.get("top") {
                Some(v) => parse_num("top", v)?,
                None => 10,
            };
            Ok(Command::Query { bundle: bundle(&flags)?, id, top })
        }
        "info" => Ok(Command::Info { bundle: bundle(&flags)? }),
        "serve" => {
            let mut s = ServeArgs { bundle: bundle(&flags)?, ..ServeArgs::default() };
            for (k, v) in &flags {
                match k.as_str() {
                    "bundle" => {}
                    "addr" => s.addr = v.clone(),
                    "shards" => s.shards = parse_num(k, v)?,
                    "max-batch" => s.max_batch = parse_num(k, v)?,
                    "max-wait-ms" => s.max_wait_ms = parse_num(k, v)? as u64,
                    "queue-cap" => s.queue_cap = parse_num(k, v)?,
                    "readonly" => s.readonly = parse_bool(k, v)?,
                    "max-top-k" => s.max_top_k = parse_num(k, v)?,
                    other => return Err(CliError::Usage(format!("unknown flag --{other}"))),
                }
            }
            Ok(Command::Serve(s))
        }
        other => Err(CliError::Usage(format!("unknown subcommand '{other}'"))),
    }
}

fn parse_dataset(v: &str) -> Result<DatasetKind, CliError> {
    match v.to_lowercase().as_str() {
        "cifar" | "cifar10" => Ok(DatasetKind::Cifar10Like),
        "nus" | "nuswide" | "nus-wide" => Ok(DatasetKind::NusWideLike),
        "flickr" | "mirflickr" => Ok(DatasetKind::FlickrLike),
        other => {
            Err(CliError::Usage(format!("unknown dataset '{other}' (expected cifar|nus|flickr)")))
        }
    }
}

fn parse_num(key: &str, v: &str) -> Result<usize, CliError> {
    v.parse::<usize>().map_err(|_| CliError::Usage(format!("--{key} expects a number, got '{v}'")))
}

/// Every flag takes a value, so booleans are spelled out explicitly
/// (`--readonly true`) rather than by bare presence.
fn parse_bool(key: &str, v: &str) -> Result<bool, CliError> {
    match v {
        "true" | "1" | "yes" => Ok(true),
        "false" | "0" | "no" => Ok(false),
        other => Err(CliError::Usage(format!("--{key} expects true|false, got '{other}'"))),
    }
}

/// Execute a command, writing human-readable output into a string
/// (separated from `main` so the logic is unit-testable).
pub fn run(cmd: &Command) -> Result<String, CliError> {
    match cmd {
        Command::Help => Ok(USAGE.to_string()),
        Command::Train(args) => run_train(args),
        Command::Eval { bundle } => run_eval(bundle),
        Command::Query { bundle, id, top } => run_query(bundle, *id, *top),
        Command::Info { bundle } => run_info(bundle),
        Command::Serve(args) => run_serve(args),
    }
}

fn dataset_from_meta(meta: &BTreeMap<String, String>) -> Result<(Dataset, u64), CliError> {
    let get =
        |k: &str| meta.get(k).ok_or_else(|| CliError::Corrupt(format!("meta.txt missing '{k}'")));
    let kind = parse_dataset(get("dataset")?)?;
    let parse_field = |k: &str| -> Result<usize, CliError> {
        get(k)?
            .parse::<usize>()
            .map_err(|_| CliError::Corrupt(format!("meta.txt field '{k}' is not a number")))
    };
    let seed = parse_field("seed")? as u64;
    let config = DatasetConfig {
        n_train: parse_field("n_train")?,
        n_query: parse_field("n_query")?,
        n_database: parse_field("n_database")?,
        ..DatasetConfig::default()
    };
    Ok((Dataset::generate(kind, &config, seed), seed))
}

fn run_train(args: &TrainArgs) -> Result<String, CliError> {
    let config = DatasetConfig {
        n_train: args.n_train,
        n_query: args.n_query,
        n_database: args.n_database,
        ..DatasetConfig::default()
    };
    let dataset = Dataset::generate(args.dataset, &config, args.seed);
    let pipeline = Pipeline::new(&dataset, args.seed);
    let uhscm = UhscmConfig {
        bits: args.bits,
        epochs: args.epochs,
        ..UhscmConfig::for_dataset(args.dataset)
    };
    let model = pipeline.train(&SimilaritySource::default(), &uhscm);
    let db_codes = model.encode(&pipeline.features_of(&dataset.split.database));

    fs::create_dir_all(&args.out)?;
    let mut net_file = fs::File::create(args.out.join("model.nn"))?;
    model.network().save(&mut net_file).map_err(CliError::Io)?;
    let mut codes_file = fs::File::create(args.out.join("db.codes"))?;
    db_codes.save(&mut codes_file)?;
    let meta = format!(
        "dataset={}\nbits={}\nepochs={}\nseed={}\nn_train={}\nn_query={}\nn_database={}\n",
        match args.dataset {
            DatasetKind::Cifar10Like => "cifar",
            DatasetKind::NusWideLike => "nus",
            DatasetKind::FlickrLike => "flickr",
        },
        args.bits,
        args.epochs,
        args.seed,
        args.n_train,
        args.n_query,
        args.n_database
    );
    fs::write(args.out.join("meta.txt"), meta)?;
    Ok(format!(
        "trained {}-bit UHSCM on {} ({} train items), bundle written to {}\n",
        args.bits,
        args.dataset.name(),
        args.n_train,
        args.out.display()
    ))
}

fn read_meta(bundle: &Path) -> Result<BTreeMap<String, String>, CliError> {
    let raw = fs::read_to_string(bundle.join("meta.txt"))?;
    let mut meta = BTreeMap::new();
    for line in raw.lines() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let (k, v) = line
            .split_once('=')
            .ok_or_else(|| CliError::Corrupt(format!("bad meta line '{line}'")))?;
        meta.insert(k.to_string(), v.to_string());
    }
    Ok(meta)
}

struct Bundle {
    dataset: Dataset,
    network: Mlp,
    db_codes: BitCodes,
    seed: u64,
}

fn load_bundle(bundle: &Path) -> Result<Bundle, CliError> {
    let meta = read_meta(bundle)?;
    let (dataset, seed) = dataset_from_meta(&meta)?;
    let mut net_file = fs::File::open(bundle.join("model.nn"))?;
    let network =
        Mlp::load(&mut net_file).map_err(|e| CliError::Corrupt(format!("model.nn: {e}")))?;
    let mut codes_file = fs::File::open(bundle.join("db.codes"))?;
    let db_codes = BitCodes::load(&mut codes_file)?;
    if db_codes.len() != dataset.split.database.len() {
        return Err(CliError::Corrupt(format!(
            "db.codes has {} codes but the dataset recipe yields {} database items",
            db_codes.len(),
            dataset.split.database.len()
        )));
    }
    Ok(Bundle { dataset, network, db_codes, seed })
}

fn query_codes(bundle: &Bundle) -> BitCodes {
    let pipeline = Pipeline::new(&bundle.dataset, bundle.seed);
    BitCodes::from_real(&bundle.network.infer(&pipeline.features_of(&bundle.dataset.split.query)))
}

fn run_eval(path: &Path) -> Result<String, CliError> {
    let bundle = load_bundle(path)?;
    let queries = query_codes(&bundle);
    let ranker = HammingRanker::new(bundle.db_codes.clone());
    let ds = &bundle.dataset;
    let rel = |qi: usize, di: usize| {
        crate::data::share_label(&ds.labels[ds.split.query[qi]], &ds.labels[ds.split.database[di]])
    };
    let map = mean_average_precision(&ranker, &queries, &rel, ds.split.database.len());
    Ok(format!(
        "{} | {} bits | {} queries vs {} database items | MAP {:.4}\n",
        ds.kind.name(),
        bundle.db_codes.bits(),
        queries.len(),
        bundle.db_codes.len(),
        map
    ))
}

fn run_query(path: &Path, id: usize, top: usize) -> Result<String, CliError> {
    let bundle = load_bundle(path)?;
    let queries = query_codes(&bundle);
    if id >= queries.len() {
        return Err(CliError::Usage(format!(
            "query index {id} out of range (bundle has {} queries)",
            queries.len()
        )));
    }
    let ds = &bundle.dataset;
    let ranker = HammingRanker::new(bundle.db_codes.clone());
    let rel = |qi: usize, di: usize| {
        crate::data::share_label(&ds.labels[ds.split.query[qi]], &ds.labels[ds.split.database[di]])
    };
    let labels_of = |item: usize| -> String {
        ds.labels[item].iter().map(|&c| ds.class_names[c].clone()).collect::<Vec<_>>().join("+")
    };
    let mut out =
        format!("query {id} labels [{}], top-{top} neighbours:\n", labels_of(ds.split.query[id]));
    for hit in top_k(&ranker, &queries, id, &rel, top) {
        writeln!(
            out,
            "  d={:>3}  db[{:>6}]  [{}] {}",
            hit.distance,
            hit.index,
            labels_of(ds.split.database[hit.index]),
            if hit.relevant { "✓" } else { "✗" }
        )
        .expect("writing to string cannot fail");
    }
    Ok(out)
}

/// Serve a bundle over TCP until stdin closes, then drain gracefully.
///
/// Unlike the offline subcommands this one only needs `model.nn` and
/// `db.codes` — the dataset recipe is not regenerated, so startup is fast
/// even for large bundles. The bound address is printed (and flushed)
/// immediately so scripts driving a piped child can discover the ephemeral
/// port; the quiescent "close stdin to stop" loop doubles as the drain
/// trigger for the CI smoke test.
fn run_serve(args: &ServeArgs) -> Result<String, CliError> {
    use std::io::Write as _;

    let mut net_file = fs::File::open(args.bundle.join("model.nn"))?;
    let network =
        Mlp::load(&mut net_file).map_err(|e| CliError::Corrupt(format!("model.nn: {e}")))?;
    let mut codes_file = fs::File::open(args.bundle.join("db.codes"))?;
    let db_codes = BitCodes::load(&mut codes_file)?;

    let engine = uhscm_serve::Engine::new(network, &db_codes, args.shards)
        .map_err(|e| CliError::Corrupt(e.to_string()))?;
    let config = uhscm_serve::ServeConfig {
        addr: args.addr.clone(),
        shards: args.shards,
        max_batch: args.max_batch,
        max_wait: std::time::Duration::from_millis(args.max_wait_ms),
        queue_cap: args.queue_cap,
        writable: !args.readonly,
        max_top_k: args.max_top_k,
    };
    let server = uhscm_serve::Server::start(engine, &config).map_err(|e| match e {
        uhscm_serve::ServeError::Io(io) => CliError::Io(io),
        other => CliError::Corrupt(other.to_string()),
    })?;

    // Printed (not returned) so a parent process can read the ephemeral
    // port while the server is still running; flush because a piped stdout
    // is block-buffered.
    println!(
        "uhscm-serve listening on {} ({} shards, {} codes, {} bits, {}; close stdin to drain)",
        server.local_addr(),
        server_shards(&args.shards, db_codes.len()),
        db_codes.len(),
        db_codes.bits(),
        if args.readonly { "read-only" } else { "writable" }
    );
    std::io::stdout().flush()?;

    let mut line = String::new();
    let _ = std::io::stdin().read_line(&mut line);
    server.shutdown();
    Ok("uhscm-serve: drained cleanly\n".to_string())
}

/// Shards actually usable (the index clamps to the database size).
fn server_shards(requested: &usize, db_len: usize) -> usize {
    (*requested).clamp(1, db_len.max(1))
}

fn run_info(path: &Path) -> Result<String, CliError> {
    let bundle = load_bundle(path)?;
    Ok(format!(
        "bundle: {}\n  dataset   : {}\n  bits      : {}\n  database  : {} codes\n  queries   : {}\n  network   : {} parameters\n",
        path.display(),
        bundle.dataset.kind.name(),
        bundle.db_codes.bits(),
        bundle.db_codes.len(),
        bundle.dataset.split.query.len(),
        bundle.network.param_count()
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn parse_train_with_defaults_and_overrides() {
        let cmd = parse(&argv(&["train", "--out", "/tmp/x", "--bits", "32", "--dataset", "nus"]))
            .unwrap();
        match cmd {
            Command::Train(t) => {
                assert_eq!(t.out, PathBuf::from("/tmp/x"));
                assert_eq!(t.bits, 32);
                assert_eq!(t.dataset, DatasetKind::NusWideLike);
                assert_eq!(t.epochs, TrainArgs::default().epochs);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parse_rejects_unknown_flags_and_commands() {
        assert!(matches!(parse(&argv(&["train", "--nope", "1"])), Err(CliError::Usage(_))));
        assert!(matches!(parse(&argv(&["frobnicate"])), Err(CliError::Usage(_))));
        assert!(matches!(parse(&argv(&["train", "--bits", "lots"])), Err(CliError::Usage(_))));
        assert!(matches!(
            parse(&argv(&["query", "--bundle", "x"])), // missing --id
            Err(CliError::Usage(_))
        ));
    }

    #[test]
    fn parse_serve_with_defaults_and_overrides() {
        let cmd = parse(&argv(&[
            "serve",
            "--bundle",
            "/tmp/b",
            "--addr",
            "127.0.0.1:9000",
            "--shards",
            "4",
            "--max-wait-ms",
            "3",
            "--readonly",
            "true",
            "--max-top-k",
            "64",
        ]))
        .unwrap();
        match cmd {
            Command::Serve(s) => {
                assert_eq!(s.bundle, PathBuf::from("/tmp/b"));
                assert_eq!(s.addr, "127.0.0.1:9000");
                assert_eq!(s.shards, 4);
                assert_eq!(s.max_wait_ms, 3);
                assert_eq!(s.max_batch, ServeArgs::default().max_batch);
                assert_eq!(s.queue_cap, ServeArgs::default().queue_cap);
                assert!(s.readonly);
                assert_eq!(s.max_top_k, 64);
            }
            other => panic!("unexpected {other:?}"),
        }
        // Writable is the default; booleans must be spelled out.
        assert!(!ServeArgs::default().readonly);
        assert!(matches!(
            parse(&argv(&["serve", "--bundle", "b", "--readonly", "maybe"])),
            Err(CliError::Usage(_))
        ));
        // --bundle is mandatory, unknown flags rejected.
        assert!(matches!(parse(&argv(&["serve"])), Err(CliError::Usage(_))));
        assert!(matches!(
            parse(&argv(&["serve", "--bundle", "b", "--nope", "1"])),
            Err(CliError::Usage(_))
        ));
    }

    #[test]
    fn parse_help_variants() {
        assert_eq!(parse(&argv(&[])).unwrap(), Command::Help);
        assert_eq!(parse(&argv(&["help"])).unwrap(), Command::Help);
        assert_eq!(parse(&argv(&["--help"])).unwrap(), Command::Help);
    }

    #[test]
    fn train_eval_query_info_round_trip() {
        let dir = std::env::temp_dir().join(format!("uhscm-cli-test-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        let args = TrainArgs {
            out: dir.clone(),
            bits: 16,
            epochs: 3,
            n_train: 80,
            n_query: 20,
            n_database: 200,
            ..TrainArgs::default()
        };
        let msg = run(&Command::Train(args)).unwrap();
        assert!(msg.contains("bundle written"));

        let info = run(&Command::Info { bundle: dir.clone() }).unwrap();
        assert!(info.contains("16"), "{info}");
        assert!(info.contains("200 codes"), "{info}");

        let eval = run(&Command::Eval { bundle: dir.clone() }).unwrap();
        assert!(eval.contains("MAP"), "{eval}");

        let query = run(&Command::Query { bundle: dir.clone(), id: 0, top: 5 }).unwrap();
        assert_eq!(query.matches("d=").count(), 5, "{query}");

        // Out-of-range query id is a usage error.
        assert!(matches!(
            run(&Command::Query { bundle: dir.clone(), id: 999, top: 5 }),
            Err(CliError::Usage(_))
        ));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn eval_on_missing_bundle_is_io_error() {
        let missing = PathBuf::from("/definitely/not/here");
        assert!(matches!(run(&Command::Eval { bundle: missing }), Err(CliError::Io(_))));
    }

    #[test]
    fn corrupt_meta_is_detected() {
        let dir = std::env::temp_dir().join(format!("uhscm-cli-meta-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        fs::write(dir.join("meta.txt"), "this is not key value\n").unwrap();
        assert!(matches!(run(&Command::Info { bundle: dir.clone() }), Err(CliError::Corrupt(_))));
        let _ = fs::remove_dir_all(&dir);
    }
}
