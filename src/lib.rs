//! # uhscm — Unsupervised Hashing with Semantic Concept Mining
//!
//! A from-scratch Rust reproduction of UHSCM (Tu et al., SIGMOD 2023),
//! including every substrate the paper depends on. This facade crate
//! re-exports the whole workspace:
//!
//! | module | crate | contents |
//! |---|---|---|
//! | [`linalg`] | `uhscm-linalg` | dense matrices, eigensolver, SVD, PCA, k-means |
//! | [`nn`] | `uhscm-nn` | MLP runtime, SGD, backprop, persistence |
//! | [`data`] | `uhscm-data` | concept vocabularies, synthetic datasets |
//! | [`vlp`] | `uhscm-vlp` | simulated CLIP + CNN feature extractor |
//! | [`eval`] | `uhscm-eval` | bit codes, Hamming ranking, MAP/P@N/PR, t-SNE, hash index |
//! | [`core`] | `uhscm-core` | concept mining, denoising, similarity matrix, hashing loss, trainer |
//! | [`baselines`] | `uhscm-baselines` | LSH, SH, ITQ, AGH, SSDH, GH, BGAN, MLS³RDUH, CIB, UTH |
//! | [`serve`] | `uhscm-serve` | online retrieval: sharded index, batched encoding, admission control |
//! | [`store`] | `uhscm-store` | out-of-core segment store: checksummed on-disk code databases |
//!
//! See the `examples/` directory for end-to-end usage and the `uhscm-bench`
//! crate for the harness that regenerates every table and figure of the
//! paper's evaluation.
//!
//! ```
//! use uhscm::core::pipeline::{Pipeline, SimilaritySource};
//! use uhscm::core::UhscmConfig;
//! use uhscm::data::{Dataset, DatasetConfig, DatasetKind};
//!
//! let dataset = Dataset::generate(DatasetKind::Cifar10Like, &DatasetConfig::tiny(), 42);
//! let pipeline = Pipeline::new(&dataset, 7);
//! let config = UhscmConfig { bits: 16, epochs: 2, ..UhscmConfig::for_dataset(dataset.kind) };
//! let model = pipeline.train(&SimilaritySource::default(), &config);
//! assert_eq!(model.bits(), 16);
//! ```

pub mod cli;

pub use uhscm_baselines as baselines;
pub use uhscm_core as core;
pub use uhscm_data as data;
pub use uhscm_eval as eval;
pub use uhscm_linalg as linalg;
pub use uhscm_nn as nn;
pub use uhscm_obs as obs;
pub use uhscm_serve as serve;
pub use uhscm_store as store;
pub use uhscm_vlp as vlp;
