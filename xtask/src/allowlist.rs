//! The lint baseline.
//!
//! `xtask/lint.allow` is a checked-in list of findings that are accepted,
//! each with a mandatory one-line justification. An entry matches on
//! (rule, path, trimmed source line) rather than a line number, so it
//! survives unrelated edits; if the offending line changes or disappears
//! the entry goes stale and the linter fails until it is removed.
//!
//! File format — tab-separated, one entry per line, `#` comments:
//!
//! ```text
//! rule<TAB>path<TAB>trimmed source line<TAB>justification
//! ```

use crate::rules::Finding;
use std::cell::Cell;

#[derive(Debug)]
pub struct Entry {
    pub rule: String,
    pub path: String,
    pub key: String,
    pub justification: String,
    /// Line in lint.allow, for stale-entry diagnostics.
    pub allow_line: usize,
    used: Cell<bool>,
}

#[derive(Debug)]
pub struct Allowlist {
    entries: Vec<Entry>,
}

impl Allowlist {
    /// Parse the allowlist. Returns `Err` with per-line messages for
    /// malformed entries: wrong field count, empty justification, a rule
    /// name the linter does not know (a typo'd entry can never match and
    /// would otherwise sit silently), or a duplicate (rule, path, line)
    /// triple.
    pub fn parse(src: &str, known_rules: &[&str]) -> Result<Allowlist, Vec<String>> {
        let mut entries: Vec<Entry> = Vec::new();
        let mut errors = Vec::new();
        for (idx, line) in src.lines().enumerate() {
            let lineno = idx + 1;
            let trimmed = line.trim();
            if trimmed.is_empty() || trimmed.starts_with('#') {
                continue;
            }
            let fields: Vec<&str> = line.split('\t').collect();
            if fields.len() != 4 {
                errors.push(format!(
                    "lint.allow:{lineno}: expected 4 tab-separated fields \
                     (rule, path, source line, justification), got {}",
                    fields.len()
                ));
                continue;
            }
            let rule = fields[0].trim();
            if !known_rules.contains(&rule) {
                errors.push(format!(
                    "lint.allow:{lineno}: unknown rule `{rule}` — known rules: {}",
                    known_rules.join(", ")
                ));
                continue;
            }
            let justification = fields[3].trim();
            if justification.is_empty() {
                errors.push(format!(
                    "lint.allow:{lineno}: empty justification — every accepted finding \
                     must say why it is sound"
                ));
                continue;
            }
            if let Some(dup) = entries
                .iter()
                .find(|e| e.rule == rule && e.path == fields[1].trim() && e.key == fields[2].trim())
            {
                errors.push(format!(
                    "lint.allow:{lineno}: duplicate of line {} (`{rule}` in {}) — remove one",
                    dup.allow_line,
                    fields[1].trim()
                ));
                continue;
            }
            entries.push(Entry {
                rule: fields[0].trim().to_string(),
                path: fields[1].trim().to_string(),
                key: fields[2].trim().to_string(),
                justification: justification.to_string(),
                allow_line: lineno,
                used: Cell::new(false),
            });
        }
        if errors.is_empty() {
            Ok(Allowlist { entries })
        } else {
            Err(errors)
        }
    }

    /// Whether a finding is covered by the baseline. Marks the matching
    /// entry used for later stale detection.
    pub fn covers(&self, f: &Finding) -> bool {
        for e in &self.entries {
            if e.rule == f.rule && e.path == f.path && e.key == f.key {
                e.used.set(true);
                return true;
            }
        }
        false
    }

    /// Entries that never matched a finding: the code they excused has
    /// changed or been removed, so they must be dropped from the file.
    pub fn stale(&self) -> Vec<&Entry> {
        self.entries.iter().filter(|e| !e.used.get()).collect()
    }

    /// Look up an existing justification for (rule, path, key) — used by
    /// `--write-baseline` to preserve hand-written rationales.
    pub fn justification_for(&self, rule: &str, path: &str, key: &str) -> Option<&str> {
        self.entries
            .iter()
            .find(|e| e.rule == rule && e.path == path && e.key == key)
            .map(|e| e.justification.as_str())
    }
}

/// Render a baseline file covering `findings`, preserving justifications
/// from `previous` where available.
pub fn render(findings: &[Finding], previous: &Allowlist) -> String {
    let mut out = String::from(
        "# uhscm lint baseline — accepted findings, one per line.\n\
         # Format: rule<TAB>path<TAB>trimmed source line<TAB>justification\n\
         # Regenerate with `cargo run -p uhscm-xtask -- lint --write-baseline`,\n\
         # then replace any `PENDING:` placeholder with a real justification.\n",
    );
    let mut seen = std::collections::BTreeSet::new();
    let mut rows: Vec<&Finding> = findings.iter().collect();
    rows.sort_by(|a, b| (&a.path, a.line, a.rule).cmp(&(&b.path, b.line, b.rule)));
    for f in rows {
        if !seen.insert((f.rule, f.path.clone(), f.key.clone())) {
            continue; // identical line flagged twice — one entry covers both
        }
        let just = previous
            .justification_for(f.rule, &f.path, &f.key)
            .unwrap_or("PENDING: justify or fix");
        out.push_str(&format!("{}\t{}\t{}\t{}\n", f.rule, f.path, f.key, just));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::{Severity, ALL_RULES};

    fn finding(rule: &'static str, path: &str, key: &str) -> Finding {
        Finding {
            rule,
            path: path.to_string(),
            line: 1,
            message: String::new(),
            key: key.to_string(),
            severity: Severity::Error,
            witness: Vec::new(),
        }
    }

    #[test]
    fn parses_and_matches() {
        let a = Allowlist::parse(
            "# comment\nno-unwrap\tcrates/core/src/a.rs\tx.unwrap();\tinvariant: x set above\n",
            ALL_RULES,
        )
        .unwrap();
        assert!(a.covers(&finding("no-unwrap", "crates/core/src/a.rs", "x.unwrap();")));
        assert!(!a.covers(&finding("no-unwrap", "crates/core/src/a.rs", "y.unwrap();")));
        assert!(a.stale().is_empty());
    }

    #[test]
    fn unused_entries_are_stale() {
        let a = Allowlist::parse("no-unwrap\tp.rs\tx.unwrap();\twhy\n", ALL_RULES).unwrap();
        assert_eq!(a.stale().len(), 1);
    }

    #[test]
    fn rejects_missing_justification() {
        assert!(Allowlist::parse("no-unwrap\tp.rs\tx.unwrap();\t \n", ALL_RULES).is_err());
        assert!(Allowlist::parse("no-unwrap\tp.rs\tx.unwrap();\n", ALL_RULES).is_err());
    }

    #[test]
    fn rejects_unknown_rule_names() {
        let err = Allowlist::parse("no-unwrp\tp.rs\tx.unwrap();\twhy\n", ALL_RULES).unwrap_err();
        assert!(err[0].contains("unknown rule"), "{err:?}");
        // `panic-budget` is deliberately not allowlistable.
        assert!(Allowlist::parse("panic-budget\txtask/panic.budget\tk\twhy\n", ALL_RULES).is_err());
    }

    #[test]
    fn rejects_duplicate_entries() {
        let src = "no-unwrap\tp.rs\tx.unwrap();\twhy\nno-unwrap\tp.rs\tx.unwrap();\twhy again\n";
        let err = Allowlist::parse(src, ALL_RULES).unwrap_err();
        assert!(err[0].contains("duplicate"), "{err:?}");
    }

    #[test]
    fn render_preserves_existing_justifications() {
        let prev = Allowlist::parse("float-cmp\tp.rs\ta == 0.0\texact sparsity check\n", ALL_RULES)
            .unwrap();
        let out = render(&[finding("float-cmp", "p.rs", "a == 0.0")], &prev);
        assert!(out.contains("exact sparsity check"));
        let fresh = render(&[finding("no-unwrap", "p.rs", "x.unwrap();")], &prev);
        assert!(fresh.contains("PENDING"));
    }
}
