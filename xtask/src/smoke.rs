//! CI smoke test for the online retrieval service: a full cross-process
//! start → query → drain cycle against the real `uhscm` binary.
//!
//! The smoke stays std-only by speaking the wire protocol by hand (it is
//! four length bytes plus JSON) and discovering the model's input
//! dimension from the server's own structured `bad_request` response —
//! which conveniently also proves the error path carries machine-usable
//! detail.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::path::Path;
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

/// Run the smoke; returns a human-readable error on any failure.
pub fn serve_smoke(root: &Path) -> Result<(), String> {
    let bundle = root.join("target/serve-smoke-bundle");
    if !bundle.join("model.nn").exists() {
        let status = Command::new("cargo")
            .args(["run", "-q", "--release", "-p", "uhscm", "--bin", "uhscm", "--"])
            .args(["train", "--out"])
            .arg(&bundle)
            .args(["--bits", "16", "--epochs", "2"])
            .args(["--train", "60", "--query", "15", "--database", "150"])
            .current_dir(root)
            .status()
            .map_err(|e| format!("cannot run `uhscm train`: {e}"))?;
        if !status.success() {
            return Err(format!("`uhscm train` failed: {status}"));
        }
    }

    let mut child = Command::new("cargo")
        .args(["run", "-q", "--release", "-p", "uhscm", "--bin", "uhscm", "--"])
        .args(["serve", "--bundle"])
        .arg(&bundle)
        .args(["--addr", "127.0.0.1:0", "--shards", "2"])
        .current_dir(root)
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .spawn()
        .map_err(|e| format!("cannot spawn `uhscm serve`: {e}"))?;

    let result = drive(&mut child);
    if result.is_err() {
        let _ = child.kill();
        let _ = child.wait();
    }
    result
}

fn drive(child: &mut Child) -> Result<(), String> {
    let stdout = child.stdout.take().ok_or("child stdout not captured")?;
    let mut lines = BufReader::new(stdout);

    // The server prints `uhscm-serve listening on HOST:PORT (...)` once up.
    let mut banner = String::new();
    lines.read_line(&mut banner).map_err(|e| format!("reading serve banner: {e}"))?;
    let addr = banner
        .split("listening on ")
        .nth(1)
        .and_then(|rest| rest.split_whitespace().next())
        .ok_or_else(|| format!("no address in serve banner: {banner:?}"))?;

    let mut stream = TcpStream::connect(addr)
        .map_err(|e| format!("cannot connect to served address {addr}: {e}"))?;
    stream
        .set_read_timeout(Some(Duration::from_secs(20)))
        .map_err(|e| format!("set_read_timeout: {e}"))?;

    // 1. Liveness.
    write_frame(&mut stream, "{\"type\":\"ping\"}")?;
    expect_contains(&read_frame(&mut stream)?, "\"pong\"", "ping")?;

    // 2. A wrong-dimension query must come back as a structured
    //    bad_request whose detail names the expected dimension.
    write_frame(&mut stream, "{\"type\":\"query\",\"id\":1,\"top_k\":3,\"features\":[0.5]}")?;
    let reject = read_frame(&mut stream)?;
    expect_contains(&reject, "\"bad_request\"", "wrong-dim query")?;
    let dim: usize = reject
        .split("expected ")
        .nth(1)
        .and_then(|rest| rest.split_whitespace().next())
        .and_then(|n| n.parse().ok())
        .ok_or_else(|| format!("no expected-dimension hint in rejection: {reject}"))?;

    // 3. A well-formed query returns hits.
    let features = vec!["0.25"; dim].join(",");
    write_frame(
        &mut stream,
        &format!("{{\"type\":\"query\",\"id\":2,\"top_k\":3,\"features\":[{features}]}}"),
    )?;
    let hits = read_frame(&mut stream)?;
    expect_contains(&hits, "\"hits\"", "well-formed query")?;

    // 4. Drain: closing stdin asks the server to shut down gracefully.
    drop(child.stdin.take());
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        match child.try_wait() {
            Ok(Some(status)) if status.success() => break,
            Ok(Some(status)) => return Err(format!("serve exited uncleanly: {status}")),
            Ok(None) if Instant::now() < deadline => {
                std::thread::sleep(Duration::from_millis(50));
            }
            Ok(None) => return Err("serve did not drain within 30s of stdin closing".into()),
            Err(e) => return Err(format!("waiting for serve: {e}")),
        }
    }
    let mut rest = String::new();
    lines.read_to_string(&mut rest).map_err(|e| format!("reading serve output: {e}"))?;
    expect_contains(&rest, "drained cleanly", "drain message")?;
    Ok(())
}

fn write_frame(stream: &mut TcpStream, body: &str) -> Result<(), String> {
    let mut frame = Vec::with_capacity(4 + body.len());
    frame.extend_from_slice(&(body.len() as u32).to_le_bytes());
    frame.extend_from_slice(body.as_bytes());
    stream.write_all(&frame).map_err(|e| format!("writing frame: {e}"))
}

fn read_frame(stream: &mut TcpStream) -> Result<String, String> {
    let mut len = [0u8; 4];
    stream.read_exact(&mut len).map_err(|e| format!("reading frame length: {e}"))?;
    let len = u32::from_le_bytes(len) as usize;
    if len > (1 << 20) {
        return Err(format!("oversized frame ({len} bytes)"));
    }
    let mut body = vec![0u8; len];
    stream.read_exact(&mut body).map_err(|e| format!("reading frame body: {e}"))?;
    String::from_utf8(body).map_err(|_| "frame body is not UTF-8".into())
}

fn expect_contains(frame: &str, needle: &str, what: &str) -> Result<(), String> {
    if frame.contains(needle) {
        Ok(())
    } else {
        Err(format!("{what}: expected {needle} in response, got: {frame}"))
    }
}
