//! CI smoke tests driven against the real `uhscm` binary: a full
//! cross-process start → query → insert → remove → reload → drain cycle
//! for the online retrieval service ([`serve_smoke`]), and an out-of-core
//! build → info → verify cycle for the segment store ([`scale_smoke`]).
//!
//! The smoke stays std-only by speaking the wire protocol by hand (it is
//! four length bytes plus JSON) and discovering the model's input
//! dimension from the server's own structured `bad_request` response —
//! which conveniently also proves the error path carries machine-usable
//! detail.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::path::Path;
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

/// Run the smoke; returns a human-readable error on any failure.
pub fn serve_smoke(root: &Path) -> Result<(), String> {
    let bundle = root.join("target/serve-smoke-bundle");
    if !bundle.join("model.nn").exists() {
        let status = Command::new("cargo")
            .args(["run", "-q", "--release", "-p", "uhscm", "--bin", "uhscm", "--"])
            .args(["train", "--out"])
            .arg(&bundle)
            .args(["--bits", "16", "--epochs", "2"])
            .args(["--train", "60", "--query", "15", "--database", "150"])
            .current_dir(root)
            .status()
            .map_err(|e| format!("cannot run `uhscm train`: {e}"))?;
        if !status.success() {
            return Err(format!("`uhscm train` failed: {status}"));
        }
    }

    let mut child = Command::new("cargo")
        .args(["run", "-q", "--release", "-p", "uhscm", "--bin", "uhscm", "--"])
        .args(["serve", "--bundle"])
        .arg(&bundle)
        .args(["--addr", "127.0.0.1:0", "--shards", "2"])
        .current_dir(root)
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .spawn()
        .map_err(|e| format!("cannot spawn `uhscm serve`: {e}"))?;

    let result = drive(&mut child, &bundle);
    if result.is_err() {
        let _ = child.kill();
        let _ = child.wait();
    }
    result
}

fn drive(child: &mut Child, bundle: &Path) -> Result<(), String> {
    let stdout = child.stdout.take().ok_or("child stdout not captured")?;
    let mut lines = BufReader::new(stdout);

    // The server prints `uhscm-serve listening on HOST:PORT (...)` once up.
    let mut banner = String::new();
    lines.read_line(&mut banner).map_err(|e| format!("reading serve banner: {e}"))?;
    let addr = banner
        .split("listening on ")
        .nth(1)
        .and_then(|rest| rest.split_whitespace().next())
        .ok_or_else(|| format!("no address in serve banner: {banner:?}"))?;

    let mut stream = TcpStream::connect(addr)
        .map_err(|e| format!("cannot connect to served address {addr}: {e}"))?;
    stream
        .set_read_timeout(Some(Duration::from_secs(20)))
        .map_err(|e| format!("set_read_timeout: {e}"))?;

    // 1. Liveness.
    write_frame(&mut stream, "{\"type\":\"ping\"}")?;
    expect_contains(&read_frame(&mut stream)?, "\"pong\"", "ping")?;

    // 2. A wrong-dimension query must come back as a structured
    //    bad_request whose detail names the expected dimension.
    write_frame(&mut stream, "{\"type\":\"query\",\"id\":1,\"top_k\":3,\"features\":[0.5]}")?;
    let reject = read_frame(&mut stream)?;
    expect_contains(&reject, "\"bad_request\"", "wrong-dim query")?;
    let dim: usize = reject
        .split("expected ")
        .nth(1)
        .and_then(|rest| rest.split_whitespace().next())
        .and_then(|n| n.parse().ok())
        .ok_or_else(|| format!("no expected-dimension hint in rejection: {reject}"))?;

    // 3. A well-formed query returns hits.
    let features = vec!["0.25"; dim].join(",");
    write_frame(
        &mut stream,
        &format!("{{\"type\":\"query\",\"id\":2,\"top_k\":3,\"features\":[{features}]}}"),
    )?;
    let hits = read_frame(&mut stream)?;
    expect_contains(&hits, "\"hits\"", "well-formed query")?;

    // 4. Write path: the training database holds 150 codes (indices
    //    0..149), so the first insert must land at global index 150.
    write_frame(
        &mut stream,
        &format!("{{\"type\":\"insert\",\"id\":10,\"rows\":[[{features}]]}}"),
    )?;
    let receipt = read_frame(&mut stream)?;
    expect_contains(&receipt, "\"inserted\"", "insert receipt")?;
    expect_contains(&receipt, "\"committed_generation\":1", "insert commit")?;
    expect_contains(&receipt, "\"first_index\":150", "insert offset")?;

    // 5. The inserted row encodes the same features as the query, so a
    //    deep re-query must find item 150 at Hamming distance 0.
    write_frame(
        &mut stream,
        &format!("{{\"type\":\"query\",\"id\":11,\"top_k\":200,\"features\":[{features}]}}"),
    )?;
    let hits = read_frame(&mut stream)?;
    expect_contains(&hits, "[0,150]", "inserted item retrievable at distance 0")?;
    expect_contains(&hits, "\"generation\":1", "query pinned the committed generation")?;

    // 6. Remove it again: the receipt commits a new generation, and the
    //    same deep query no longer returns the tombstoned index.
    write_frame(&mut stream, "{\"type\":\"remove\",\"id\":12,\"index\":150}")?;
    let receipt = read_frame(&mut stream)?;
    expect_contains(&receipt, "\"removed\":true", "remove receipt")?;
    expect_contains(&receipt, "\"committed_generation\":2", "remove commit")?;
    write_frame(
        &mut stream,
        &format!("{{\"type\":\"query\",\"id\":13,\"top_k\":200,\"features\":[{features}]}}"),
    )?;
    let hits = read_frame(&mut stream)?;
    expect_contains(&hits, "\"hits\"", "post-remove query")?;
    expect_absent(&hits, ",150]", "tombstoned item must not be returned")?;

    // 7. Flush readback: 150 live of 151 total, still on bundle 0.
    write_frame(&mut stream, "{\"type\":\"flush\",\"id\":14}")?;
    let readback = read_frame(&mut stream)?;
    expect_contains(&readback, "\"flushed\"", "flush readback")?;
    expect_contains(&readback, "\"live\":150", "flush live count")?;
    expect_contains(&readback, "\"total\":151", "flush total count")?;

    // 8. Hot reload (the training bundle doubles as the reload source):
    //    version bumps to 1 and queries still answer afterwards.
    write_frame(
        &mut stream,
        &format!(
            "{{\"type\":\"reload\",\"id\":15,\"path\":\"{}\"}}",
            bundle.display().to_string().replace('\\', "/")
        ),
    )?;
    let reloaded = read_frame(&mut stream)?;
    expect_contains(&reloaded, "\"reloaded\"", "reload receipt")?;
    expect_contains(&reloaded, "\"bundle\":1", "reload version bump")?;
    write_frame(
        &mut stream,
        &format!("{{\"type\":\"query\",\"id\":16,\"top_k\":3,\"features\":[{features}]}}"),
    )?;
    let hits = read_frame(&mut stream)?;
    expect_contains(&hits, "\"hits\"", "post-reload query")?;
    expect_contains(&hits, "\"bundle\":1", "post-reload query reports the new bundle")?;

    // 9. Drain: closing stdin asks the server to shut down gracefully.
    drop(child.stdin.take());
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        match child.try_wait() {
            Ok(Some(status)) if status.success() => break,
            Ok(Some(status)) => return Err(format!("serve exited uncleanly: {status}")),
            Ok(None) if Instant::now() < deadline => {
                std::thread::sleep(Duration::from_millis(50));
            }
            Ok(None) => return Err("serve did not drain within 30s of stdin closing".into()),
            Err(e) => return Err(format!("waiting for serve: {e}")),
        }
    }
    let mut rest = String::new();
    lines.read_to_string(&mut rest).map_err(|e| format!("reading serve output: {e}"))?;
    expect_contains(&rest, "drained cleanly", "drain message")?;
    Ok(())
}

/// Out-of-core scale smoke: stream-build a 10k-item segment store with
/// the real `uhscm` binary (chunked so it lands in several segments),
/// verify and summarize it with `db info`, then let `db verify` prove the
/// store-backed index answers bitwise-identically to the in-memory index
/// at shard counts {1, 2, 4}.
pub fn scale_smoke(root: &Path) -> Result<(), String> {
    let store = root.join("target/scale-smoke-store");
    let _ = std::fs::remove_dir_all(&store);

    let uhscm = ["run", "-q", "--release", "-p", "uhscm", "--bin", "uhscm", "--"];
    let build = Command::new("cargo")
        .args(uhscm)
        .args(["db", "build", "--out"])
        .arg(&store)
        .args(["--items", "10000", "--bits", "32", "--dim", "32", "--chunk", "2500"])
        .args(["--seed", "7"])
        .current_dir(root)
        .output()
        .map_err(|e| format!("cannot run `uhscm db build`: {e}"))?;
    if !build.status.success() {
        return Err(format!("`uhscm db build` failed: {}", String::from_utf8_lossy(&build.stderr)));
    }
    let built = String::from_utf8_lossy(&build.stdout);
    if !built.contains("10000 codes in 4 segments") {
        return Err(format!("db build: expected 10000 codes in 4 segments, got: {built}"));
    }

    let info = Command::new("cargo")
        .args(uhscm)
        .args(["db", "info", "--store"])
        .arg(&store)
        .current_dir(root)
        .output()
        .map_err(|e| format!("cannot run `uhscm db info`: {e}"))?;
    let summary = String::from_utf8_lossy(&info.stdout);
    if !info.status.success() || !summary.contains("10000") || !summary.contains("checksums ok") {
        return Err(format!("db info: expected a verified 10000-code summary, got: {summary}"));
    }

    let verify = Command::new("cargo")
        .args(uhscm)
        .args(["db", "verify", "--store"])
        .arg(&store)
        .args(["--queries", "50", "--top", "10"])
        .current_dir(root)
        .output()
        .map_err(|e| format!("cannot run `uhscm db verify`: {e}"))?;
    let verdict = String::from_utf8_lossy(&verify.stdout);
    if !verify.status.success() || !verdict.contains("bitwise-identical") {
        return Err(format!(
            "db verify: expected a bitwise-identical verdict, got: {verdict}{}",
            String::from_utf8_lossy(&verify.stderr)
        ));
    }

    let _ = std::fs::remove_dir_all(&store);
    Ok(())
}

fn write_frame(stream: &mut TcpStream, body: &str) -> Result<(), String> {
    let mut frame = Vec::with_capacity(4 + body.len());
    frame.extend_from_slice(&(body.len() as u32).to_le_bytes());
    frame.extend_from_slice(body.as_bytes());
    stream.write_all(&frame).map_err(|e| format!("writing frame: {e}"))
}

fn read_frame(stream: &mut TcpStream) -> Result<String, String> {
    let mut len = [0u8; 4];
    stream.read_exact(&mut len).map_err(|e| format!("reading frame length: {e}"))?;
    let len = u32::from_le_bytes(len) as usize;
    if len > (1 << 20) {
        return Err(format!("oversized frame ({len} bytes)"));
    }
    let mut body = vec![0u8; len];
    stream.read_exact(&mut body).map_err(|e| format!("reading frame body: {e}"))?;
    String::from_utf8(body).map_err(|_| "frame body is not UTF-8".into())
}

fn expect_contains(frame: &str, needle: &str, what: &str) -> Result<(), String> {
    if frame.contains(needle) {
        Ok(())
    } else {
        Err(format!("{what}: expected {needle} in response, got: {frame}"))
    }
}

fn expect_absent(frame: &str, needle: &str, what: &str) -> Result<(), String> {
    if frame.contains(needle) {
        Err(format!("{what}: unexpected {needle} in response: {frame}"))
    } else {
        Ok(())
    }
}
